package repro

import (
	"strings"
	"testing"
)

// The facade tests exercise the public API exactly as the examples and
// downstream users would; deep behavior is tested in the internal
// packages.

func TestFacadeTaskAlgebra(t *testing.T) {
	spec := NewSym(6, 3, 1, 4)
	if !spec.Feasible() || spec.String() != "<6,3,1,4>-GSB" {
		t.Fatalf("spec misbehaves: %v", spec)
	}
	if len(CanonicalFamily(6, 3)) != 7 {
		t.Error("CanonicalFamily(6,3) should have 7 members")
	}
	if len(Hasse(CanonicalFamily(6, 3))) != 7 {
		t.Error("Figure 1 should have 7 edges")
	}
	if !WSB(6).Synonym(KSlot(6, 2)) {
		t.Error("WSB must equal the 2-slot task")
	}
	if !Hardest(6, 3).SameParams(NewSym(6, 3, 2, 2)) {
		t.Error("Hardest(6,3) should be <6,3,2,2>")
	}
}

func TestFacadeEndToEndProtocol(t *testing.T) {
	const n = 5
	spec := Renaming(n, n+1)
	for seed := int64(0); seed < 5; seed++ {
		res, err := RunVerified(spec, DefaultIDs(n), NewRandomPolicy(seed),
			func(n int) Solver {
				return NewSlotRenaming("F2", n, SlotBox("KS", n, n-1, seed))
			})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Steps == 0 {
			t.Error("no steps recorded")
		}
	}
}

func TestFacadeUniversalConstruction(t *testing.T) {
	spec := Election(5)
	res, err := RunVerified(spec, DefaultIDs(5), NewRoundRobinPolicy(),
		func(n int) Solver {
			return NewUniversalConstruction(spec, NewTASRenaming("TAS", n))
		})
	if err != nil {
		t.Fatal(err)
	}
	leaders := 0
	for _, v := range res.Outputs {
		if v == 1 {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders", leaders)
	}
}

func TestFacadeClassification(t *testing.T) {
	if Classify(WSB(6)).Status != StatusSolvable {
		t.Error("WSB(6) should classify solvable")
	}
	if Classify(PerfectRenaming(6)).Status != StatusNotSolvable {
		t.Error("perfect renaming should classify not solvable")
	}
	if Classify(Renaming(6, 11)).Status != StatusTrivial {
		t.Error("(2n-1)-renaming should classify trivial")
	}
	if BinomialGCD(6) != 1 || BinomialsPrime(8) {
		t.Error("binomial arithmetic misbehaves")
	}
	if _, ok := NoCommBuild(WSB(5)); ok {
		t.Error("WSB must not be communication-free")
	}
	delta := IdentityRenamingMap(4)
	if err := NoCommVerify(Renaming(4, 7), delta); err != nil {
		t.Error(err)
	}
}

func TestFacadeArtifacts(t *testing.T) {
	if !strings.Contains(Table1(6, 3), "<6,3,1,4>-GSB    yes") {
		t.Error("Table1 misrendered")
	}
	if !strings.Contains(Figure1DOT(6, 3), "digraph") {
		t.Error("Figure1DOT misrendered")
	}
	rows, err := Figure2Experiment([]int{3}, 5)
	if err != nil || len(rows) != 1 {
		t.Fatalf("Figure2Experiment: %v", err)
	}
	if !strings.Contains(Figure2Text(rows), "renaming") {
		t.Error("Figure2Text misrendered")
	}
	if !strings.Contains(GCDTableText(10), "NOT solvable") {
		t.Error("GCDTableText misrendered")
	}
}

func TestFacadeTopologyCertificate(t *testing.T) {
	if BoundedRoundsCheck(Election(3), 1) {
		t.Error("election must not be 1-round solvable")
	}
	c := BuildIIS(3, 1)
	if len(c.Facets) != 13 {
		t.Errorf("chromatic subdivision of a triangle has 13 facets, got %d", len(c.Facets))
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := Ring(10)
	res, err := LubyMIS(g, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	col, err := RingThreeColor(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(Ring(100), col.Colors, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSampling(t *testing.T) {
	const n = 6
	spec := Renaming(n, n+1)
	build := func(n int) Solver {
		return NewSlotRenaming("F2", n, SlotBox("KS", n, n-1, 1))
	}
	for _, mode := range []SampleMode{SampleWalk, SamplePCT} {
		rep, err := SampleVerified(nil, spec, DefaultIDs(n),
			ExploreOptions{Workers: 2, SampleRuns: 40, SampleMode: mode, Seed: 1}, build)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rep.Runs != 40 || rep.Classes < 2 || rep.FailedRun != -1 {
			t.Errorf("%v: unexpected report %+v", mode, rep)
		}
	}
	// Replay plumbing: the derived seed of walk run 7 drives the same
	// schedule (same trace class) through the plain seeded-run entry
	// point on every replay, and distinct runs get distinct seeds.
	seed7 := DeriveRunSeed(1, 7)
	if seed7 == DeriveRunSeed(1, 8) {
		t.Error("DeriveRunSeed gave runs 7 and 8 the same policy seed")
	}
	var hashes [2]uint64
	for i := range hashes {
		res, err := RunVerified(spec, DefaultIDs(n), NewRandomPolicy(seed7), build)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		hashes[i] = CanonicalTraceHash(res.Schedule, OpIndependent)
	}
	if hashes[0] != hashes[1] {
		t.Error("replaying the derived seed changed the schedule's trace class")
	}
	rows, err := SampleExperiment([]int{5}, 2, 30, SamplePCT, 0)
	if err != nil || len(rows) != 1 {
		t.Fatalf("SampleExperiment: %v", err)
	}
	if !strings.Contains(SampleText(rows), "pct") {
		t.Error("SampleText misrendered")
	}
}
