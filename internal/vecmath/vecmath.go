// Package vecmath provides the combinatorial primitives used by the GSB
// task algebra: bounded integer partitions (kernel vectors), compositions
// (counting vectors), binomial coefficients, gcd utilities and vector
// comparisons.
//
// All enumeration functions produce vectors in deterministic order so that
// callers can rely on reproducible output (golden tests pin the paper's
// Table 1 to the exact enumeration order).
package vecmath

import (
	"fmt"
	"sort"
)

// Vec is an integer vector. Kernel vectors and counting vectors from the
// paper are represented as Vec values.
type Vec []int

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Sum returns the sum of the entries of v.
func (v Vec) Sum() int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

// Key returns a canonical string encoding of v, usable as a map key.
func (v Vec) Key() string {
	b := make([]byte, 0, len(v)*3)
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, []byte(fmt.Sprint(x))...)
	}
	return string(b)
}

// String renders v as "[a,b,c]".
func (v Vec) String() string { return "[" + v.Key() + "]" }

// Equal reports whether v and w have the same length and entries.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// CompareLex compares v and w lexicographically, returning -1, 0 or +1.
// Shorter vectors compare before longer ones when they are a prefix.
func CompareLex(v, w Vec) int {
	for i := 0; i < len(v) && i < len(w); i++ {
		switch {
		case v[i] < w[i]:
			return -1
		case v[i] > w[i]:
			return 1
		}
	}
	switch {
	case len(v) < len(w):
		return -1
	case len(v) > len(w):
		return 1
	}
	return 0
}

// NonIncreasing reports whether v is sorted in non-increasing order.
func (v Vec) NonIncreasing() bool {
	for i := 1; i < len(v); i++ {
		if v[i] > v[i-1] {
			return false
		}
	}
	return true
}

// SortedDesc returns a copy of v sorted in non-increasing order. This is
// the "kernel vector" normalization of a counting vector (Definition 4 of
// the paper).
func (v Vec) SortedDesc() Vec {
	w := v.Clone()
	sort.Sort(sort.Reverse(sort.IntSlice(w)))
	return w
}

// BoundedPartitions enumerates all non-increasing vectors of length m with
// entries in [lo..hi] summing to total, in descending lexicographic order
// (the order used by the paper's Table 1 columns). It returns nil when no
// such vector exists.
//
// These are exactly the kernel vectors of the symmetric
// <n,m,lo,hi>-GSB task when total = n.
func BoundedPartitions(total, m, lo, hi int) []Vec {
	if m < 0 || lo > hi {
		return nil
	}
	if m == 0 {
		if total == 0 {
			return []Vec{{}}
		}
		return nil
	}
	var out []Vec
	cur := make(Vec, m)
	var rec func(idx, remaining, maxEntry int)
	rec = func(idx, remaining, maxEntry int) {
		if idx == m {
			if remaining == 0 {
				out = append(out, cur.Clone())
			}
			return
		}
		slots := m - idx - 1
		// Entry x must satisfy lo <= x <= min(maxEntry, hi), and leave a
		// remainder achievable by the remaining slots.
		upper := maxEntry
		if hi < upper {
			upper = hi
		}
		if remaining < upper {
			// An entry can never exceed what remains (entries are >= 0 when
			// lo >= 0; when lo < 0 this prune is invalid, but GSB bounds are
			// always non-negative).
			if lo >= 0 && remaining < upper {
				upper = remaining
			}
		}
		for x := upper; x >= lo; x-- {
			rest := remaining - x
			if rest < slots*lo || rest > slots*x {
				// Remaining slots must each hold in [lo..x] (non-increasing).
				if rest < slots*lo {
					continue
				}
				if rest > slots*x {
					// Entries after this one can be at most x each.
					continue
				}
			}
			cur[idx] = x
			rec(idx+1, rest, x)
		}
	}
	rec(0, total, total)
	return out
}

// Compositions enumerates all vectors of length m with entries in
// [lo..hi] summing to total (order matters), in descending lexicographic
// order. These are the counting vectors of a symmetric GSB task.
func Compositions(total, m, lo, hi int) []Vec {
	if m < 0 || lo > hi {
		return nil
	}
	if m == 0 {
		if total == 0 {
			return []Vec{{}}
		}
		return nil
	}
	var out []Vec
	cur := make(Vec, m)
	var rec func(idx, remaining int)
	rec = func(idx, remaining int) {
		if idx == m {
			if remaining == 0 {
				out = append(out, cur.Clone())
			}
			return
		}
		slots := m - idx - 1
		for x := hi; x >= lo; x-- {
			rest := remaining - x
			if rest < slots*lo || rest > slots*hi {
				continue
			}
			cur[idx] = x
			rec(idx+1, rest)
		}
	}
	rec(0, total)
	return out
}

// BoundedCompositions enumerates all vectors c of length m with
// lo[v] <= c[v] <= hi[v] for every v and sum equal to total, in descending
// lexicographic order. These are the counting vectors of an asymmetric GSB
// task.
func BoundedCompositions(total int, lo, hi Vec) []Vec {
	m := len(lo)
	if len(hi) != m {
		panic("vecmath: lo and hi must have the same length")
	}
	// Suffix bounds for pruning.
	sufLo := make([]int, m+1)
	sufHi := make([]int, m+1)
	for i := m - 1; i >= 0; i-- {
		sufLo[i] = sufLo[i+1] + lo[i]
		sufHi[i] = sufHi[i+1] + hi[i]
	}
	var out []Vec
	cur := make(Vec, m)
	var rec func(idx, remaining int)
	rec = func(idx, remaining int) {
		if idx == m {
			if remaining == 0 {
				out = append(out, cur.Clone())
			}
			return
		}
		for x := hi[idx]; x >= lo[idx]; x-- {
			rest := remaining - x
			if rest < sufLo[idx+1] || rest > sufHi[idx+1] {
				continue
			}
			cur[idx] = x
			rec(idx+1, rest)
		}
	}
	rec(0, total)
	return out
}

// GCD returns the greatest common divisor of a and b; GCD(0, 0) = 0.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDAll returns the gcd of all values; GCDAll() = 0.
func GCDAll(xs ...int) int {
	g := 0
	for _, x := range xs {
		g = GCD(g, x)
	}
	return g
}

// Binomial returns C(n, k) computed exactly with int64 intermediates.
// It panics on overflow for the sizes used in this repository (n <= 61).
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := int64(1)
	for i := 1; i <= k; i++ {
		res = res * int64(n-k+i)
		if res < 0 {
			panic(fmt.Sprintf("vecmath: binomial overflow for C(%d,%d)", n, k))
		}
		res /= int64(i)
	}
	return int(res)
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CeilDiv returns ceil(a/b) for b > 0.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("vecmath: CeilDiv requires b > 0")
	}
	return (a + b - 1) / b
}

// FloorDiv returns floor(a/b) for b > 0 and non-negative a.
func FloorDiv(a, b int) int {
	if b <= 0 {
		panic("vecmath: FloorDiv requires b > 0")
	}
	return a / b
}

// Permutations invokes fn with every permutation of [0..n-1]. The slice
// passed to fn is reused between calls; fn must not retain it. If fn
// returns false the enumeration stops early.
func Permutations(n int, fn func(perm []int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return fn(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				perm[k], perm[i] = perm[i], perm[k]
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	rec(0)
}

// Subsets invokes fn with every k-element subset of [0..n-1] in increasing
// lexicographic order. The slice passed to fn is reused; fn must not
// retain it. If fn returns false the enumeration stops early.
func Subsets(n, k int, fn func(subset []int) bool) {
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
