package vecmath

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBoundedPartitionsTable1Column(t *testing.T) {
	// The paper's Table 1 (n=6, m=3, entries in [0..6]) lists exactly these
	// seven kernel vectors, in this order.
	want := []Vec{
		{6, 0, 0}, {5, 1, 0}, {4, 2, 0}, {4, 1, 1}, {3, 3, 0}, {3, 2, 1}, {2, 2, 2},
	}
	got := BoundedPartitions(6, 3, 0, 6)
	if len(got) != len(want) {
		t.Fatalf("got %d partitions %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("partition %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBoundedPartitionsCases(t *testing.T) {
	tests := []struct {
		name             string
		total, m, lo, hi int
		want             []Vec
		wantCountOnly    int
		checkCountOnly   bool
	}{
		{name: "single value forced", total: 6, m: 3, lo: 2, hi: 2, want: []Vec{{2, 2, 2}}},
		{name: "infeasible low", total: 6, m: 3, lo: 3, hi: 6, want: nil},
		{name: "infeasible high", total: 10, m: 3, lo: 0, hi: 2, want: nil},
		{name: "m zero total zero", total: 0, m: 0, lo: 0, hi: 5, want: []Vec{{}}},
		{name: "m zero total nonzero", total: 3, m: 0, lo: 0, hi: 5, want: nil},
		{name: "renaming-like", total: 3, m: 5, lo: 0, hi: 1,
			want: []Vec{{1, 1, 1, 0, 0}}},
		{name: "wsb n4", total: 4, m: 2, lo: 1, hi: 3, want: []Vec{{3, 1}, {2, 2}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := BoundedPartitions(tc.total, tc.m, tc.lo, tc.hi)
			if tc.checkCountOnly {
				if len(got) != tc.wantCountOnly {
					t.Fatalf("got %d partitions, want %d", len(got), tc.wantCountOnly)
				}
				return
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if !got[i].Equal(tc.want[i]) {
					t.Errorf("partition %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestBoundedPartitionsInvariants(t *testing.T) {
	for total := 0; total <= 9; total++ {
		for m := 1; m <= 4; m++ {
			for lo := 0; lo <= 3; lo++ {
				for hi := lo; hi <= total+1; hi++ {
					parts := BoundedPartitions(total, m, lo, hi)
					seen := map[string]bool{}
					for _, p := range parts {
						if len(p) != m {
							t.Fatalf("partition %v has length %d, want %d", p, len(p), m)
						}
						if p.Sum() != total {
							t.Fatalf("partition %v sums to %d, want %d", p, p.Sum(), total)
						}
						if !p.NonIncreasing() {
							t.Fatalf("partition %v not non-increasing", p)
						}
						for _, x := range p {
							if x < lo || x > hi {
								t.Fatalf("partition %v entry %d outside [%d..%d]", p, x, lo, hi)
							}
						}
						if seen[p.Key()] {
							t.Fatalf("duplicate partition %v", p)
						}
						seen[p.Key()] = true
					}
					// Descending lexicographic enumeration order.
					for i := 1; i < len(parts); i++ {
						if CompareLex(parts[i-1], parts[i]) <= 0 {
							t.Fatalf("partitions out of order: %v before %v", parts[i-1], parts[i])
						}
					}
				}
			}
		}
	}
}

func TestCompositionsMatchPartitions(t *testing.T) {
	// Sorting every composition non-increasingly and deduplicating must give
	// exactly the set of bounded partitions.
	for total := 0; total <= 8; total++ {
		for m := 1; m <= 3; m++ {
			for lo := 0; lo <= 2; lo++ {
				for hi := lo; hi <= total; hi++ {
					comps := Compositions(total, m, lo, hi)
					fromComps := map[string]bool{}
					for _, c := range comps {
						if c.Sum() != total {
							t.Fatalf("composition %v sums to %d", c, c.Sum())
						}
						fromComps[c.SortedDesc().Key()] = true
					}
					parts := BoundedPartitions(total, m, lo, hi)
					if len(fromComps) != len(parts) {
						t.Fatalf("total=%d m=%d lo=%d hi=%d: %d distinct sorted compositions, %d partitions",
							total, m, lo, hi, len(fromComps), len(parts))
					}
					for _, p := range parts {
						if !fromComps[p.Key()] {
							t.Fatalf("partition %v missing from compositions", p)
						}
					}
				}
			}
		}
	}
}

func TestBoundedCompositions(t *testing.T) {
	// Election for n=4: exactly one process decides 1, three decide 2.
	got := BoundedCompositions(4, Vec{1, 3}, Vec{1, 3})
	if len(got) != 1 || !got[0].Equal(Vec{1, 3}) {
		t.Fatalf("election counting vectors = %v, want [[1,3]]", got)
	}
	// Symmetric case must agree with Compositions.
	lo := Vec{0, 0, 0}
	hi := Vec{2, 2, 2}
	a := BoundedCompositions(4, lo, hi)
	b := Compositions(4, 3, 0, 2)
	if len(a) != len(b) {
		t.Fatalf("asymmetric/symmetric mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("entry %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBoundedCompositionsPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched bound lengths")
		}
	}()
	BoundedCompositions(3, Vec{0}, Vec{1, 2})
}

func TestGCD(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {6, 4, 2}, {4, 6, 2},
		{-6, 4, 2}, {6, -4, 2}, {7, 13, 1}, {21, 14, 7},
	}
	for _, tc := range tests {
		if got := GCD(tc.a, tc.b); got != tc.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestGCDAll(t *testing.T) {
	if got := GCDAll(); got != 0 {
		t.Errorf("GCDAll() = %d, want 0", got)
	}
	if got := GCDAll(6, 15, 20); got != 1 {
		t.Errorf("GCDAll(6,15,20) = %d, want 1 (n=6 binomials are prime)", got)
	}
	if got := GCDAll(4, 6, 4); got != 2 {
		t.Errorf("GCDAll(4,6,4) = %d, want 2", got)
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct{ n, k, want int }{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {6, 3, 20},
		{6, 1, 6}, {6, 2, 15}, {10, 5, 252}, {5, 6, 0}, {5, -1, 0},
		{30, 15, 155117520},
	}
	for _, tc := range tests {
		if got := Binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	// Property: Pascal's identity across a triangle.
	for n := 1; n <= 25; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at C(%d,%d)", n, k)
			}
		}
	}
}

func TestPermutations(t *testing.T) {
	for n := 0; n <= 5; n++ {
		seen := map[string]bool{}
		count := 0
		Permutations(n, func(perm []int) bool {
			count++
			v := Vec(perm).Clone()
			if seen[v.Key()] {
				t.Fatalf("duplicate permutation %v", v)
			}
			seen[v.Key()] = true
			s := v.Clone()
			sort.Ints(s)
			for i := range s {
				if s[i] != i {
					t.Fatalf("%v is not a permutation of 0..%d", v, n-1)
				}
			}
			return true
		})
		want := 1
		for i := 2; i <= n; i++ {
			want *= i
		}
		if count != want {
			t.Fatalf("n=%d: %d permutations, want %d", n, count, want)
		}
	}
}

func TestPermutationsEarlyStop(t *testing.T) {
	count := 0
	Permutations(4, func([]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop after %d permutations, want 3", count)
	}
}

func TestSubsets(t *testing.T) {
	for n := 0; n <= 7; n++ {
		for k := 0; k <= n+1; k++ {
			count := 0
			var prev Vec
			Subsets(n, k, func(s []int) bool {
				count++
				v := Vec(s).Clone()
				for i := 1; i < len(v); i++ {
					if v[i] <= v[i-1] {
						t.Fatalf("subset %v not strictly increasing", v)
					}
				}
				if prev != nil && CompareLex(prev, v) >= 0 {
					t.Fatalf("subsets out of order: %v before %v", prev, v)
				}
				prev = v
				return true
			})
			if count != Binomial(n, k) {
				t.Fatalf("Subsets(%d,%d) produced %d, want C(%d,%d)=%d",
					n, k, count, n, k, Binomial(n, k))
			}
		}
	}
}

func TestVecHelpers(t *testing.T) {
	v := Vec{3, 1, 2}
	if v.Sum() != 6 {
		t.Errorf("Sum = %d, want 6", v.Sum())
	}
	if v.Key() != "3,1,2" {
		t.Errorf("Key = %q", v.Key())
	}
	if v.String() != "[3,1,2]" {
		t.Errorf("String = %q", v.String())
	}
	if !v.SortedDesc().Equal(Vec{3, 2, 1}) {
		t.Errorf("SortedDesc = %v", v.SortedDesc())
	}
	if v.NonIncreasing() {
		t.Error("NonIncreasing = true for unsorted vector")
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 3 {
		t.Error("Clone aliases original storage")
	}
	if !v.Equal(Vec{3, 1, 2}) || v.Equal(Vec{3, 1}) || v.Equal(Vec{3, 1, 3}) {
		t.Error("Equal misbehaves")
	}
}

func TestCompareLex(t *testing.T) {
	tests := []struct {
		a, b Vec
		want int
	}{
		{Vec{1, 2}, Vec{1, 2}, 0},
		{Vec{1, 2}, Vec{1, 3}, -1},
		{Vec{2, 0}, Vec{1, 9}, 1},
		{Vec{1}, Vec{1, 0}, -1},
		{Vec{1, 0}, Vec{1}, 1},
		{nil, nil, 0},
	}
	for _, tc := range tests {
		if got := CompareLex(tc.a, tc.b); got != tc.want {
			t.Errorf("CompareLex(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSortedDescProperty(t *testing.T) {
	f := func(xs []int8) bool {
		v := make(Vec, len(xs))
		for i, x := range xs {
			v[i] = int(x)
		}
		s := v.SortedDesc()
		if !s.NonIncreasing() || s.Sum() != v.Sum() || len(s) != len(v) {
			return false
		}
		// Same multiset.
		a := v.Clone()
		b := s.Clone()
		sort.Ints(a)
		sort.Ints(b)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxCeilFloor(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Min/Max misbehave")
	}
	if CeilDiv(7, 3) != 3 || CeilDiv(6, 3) != 2 || CeilDiv(0, 3) != 0 {
		t.Error("CeilDiv misbehaves")
	}
	if FloorDiv(7, 3) != 2 || FloorDiv(6, 3) != 2 {
		t.Error("FloorDiv misbehaves")
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive divisor")
		}
	}()
	CeilDiv(1, 0)
}

func TestBoundedCompositionsRandomizedAgainstFilter(t *testing.T) {
	// Cross-check BoundedCompositions against brute-force filtering of the
	// full cube for random small bounds.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(3)
		lo := make(Vec, m)
		hi := make(Vec, m)
		for v := 0; v < m; v++ {
			lo[v] = rng.Intn(3)
			hi[v] = lo[v] + rng.Intn(4)
		}
		total := rng.Intn(10)
		got := BoundedCompositions(total, lo, hi)
		want := map[string]bool{}
		var rec func(idx int, cur Vec)
		rec = func(idx int, cur Vec) {
			if idx == m {
				if cur.Sum() == total {
					want[cur.Key()] = true
				}
				return
			}
			for x := lo[idx]; x <= hi[idx]; x++ {
				rec(idx+1, append(cur, x))
			}
		}
		rec(0, Vec{})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d compositions, want %d", trial, len(got), len(want))
		}
		for _, g := range got {
			if !want[g.Key()] {
				t.Fatalf("trial %d: unexpected composition %v", trial, g)
			}
		}
	}
}
