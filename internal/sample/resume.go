package sample

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/stats"
)

// MetricClasses is the sampling subsystem's observability counter (see
// docs/metrics.md): distinct Mazurkiewicz trace classes discovered by
// this shard. Each shard counts its own first sightings, so per-shard
// values sum to at least — not exactly — the merged distinct-class count
// (two shards can each discover the same class); merged reports recompute
// the exact figure from the coverage maps.
const MetricClasses = "gsb_classes_total"

// This file is the checkpoint layer of the sampling subsystem: a sampling
// batch advances in bounded slices over the resumable seeded-run pool
// (sched.SeededSlice), and between slices its state — the next run index,
// the per-run trace-class hashes backing the coverage figure, and the
// smallest failing run — is a plain serializable value. Because run i's
// schedule is a pure function of DeriveRunSeed(Seed, i), a resumed (or
// sharded) batch executes exactly the runs the uninterrupted batch would
// have: kill/resume and shard/merge both preserve the report bit for bit.

// BatchState is the serializable state of one shard of a sampling batch.
//
//gsb:serialized
type BatchState struct {
	// Depth and Horizon are the PCT parameters fixed at batch start
	// (zero in walk mode). Horizon is measured once by a deterministic
	// probe run, so every shard agrees on it without coordination; it is
	// carried in the state so a resume does not depend on the probe
	// staying cheap.
	Depth   int `json:"depth,omitempty"`
	Horizon int `json:"horizon,omitempty"`
	// Pool is the seeded-run pool position: shard/of, next local index,
	// executed-run count, smallest pool-level failure.
	Pool sched.SeededState `json:"pool"`
	// Classes maps each canonical trace-class hash seen by this shard to
	// the smallest (global) run index that produced it — the coverage
	// tracker's full state. First-occurrence indices are what let a
	// finalize or merge count distinct classes below any run cutoff
	// (class h occurred before run c iff Classes[h] < c), while the map
	// grows with the distinct-class count rather than the run count.
	Classes map[uint64]int `json:"classes"`
	// FailedRun is the smallest failing run of this shard (-1 when every
	// run verified); Violation distinguishes a property violation from a
	// runner error, and FailedMessage is the inner error's rendering —
	// together they rebuild the *RunError verdict after a restore.
	FailedRun     int    `json:"failed_run"`
	Violation     bool   `json:"violation,omitempty"`
	FailedMessage string `json:"failed_message,omitempty"`
	failedErr     error  // live inner error when recorded in this process
}

// ResumableBatch drives a sampling batch in bounded slices with
// serializable state between them. N, IDs, Opts, Build and Check play
// exactly the roles they do for Explore; Opts must select a sampling mode
// (SampleRuns > 0).
type ResumableBatch struct {
	N     int
	IDs   []int
	Opts  sched.ExploreOptions
	Build func() sched.Body
	Check func(*sched.Result) error
}

func (r *ResumableBatch) validate() error {
	if err := r.Opts.Validate(); err != nil {
		return err
	}
	if r.Opts.SampleRuns <= 0 {
		return fmt.Errorf("sample: resumable batch needs SampleRuns > 0 (got %d)", r.Opts.SampleRuns)
	}
	return nil
}

func (r *ResumableBatch) maxSteps() int {
	if r.Opts.MaxSteps > 0 {
		return r.Opts.MaxSteps
	}
	return 4096 * r.N
}

// Init returns the initial state of shard `shard` of `of`: an empty
// coverage map, the shard's position at the start of its index space,
// and — in PCT mode — the measured depth/horizon parameters.
func (r *ResumableBatch) Init(shard, of int) (*BatchState, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("sample: shard %d of %d outside [0, of)", shard, of)
	}
	st := &BatchState{
		Pool:      sched.SeededState{Shard: shard, Of: of},
		Classes:   map[uint64]int{},
		FailedRun: -1,
	}
	if r.Opts.SampleMode == sched.SamplePCT {
		st.Depth = r.Opts.Depth
		if st.Depth <= 0 {
			st.Depth = DefaultDepth
		}
		st.Horizon = ProbeHorizon(r.N, r.IDs, r.maxSteps(), r.Build)
	}
	return st, nil
}

// policyFor returns the per-run policy constructor for the batch's mode,
// identical to the one Explore uses.
func (r *ResumableBatch) policyFor(st *BatchState) (func(int) sched.Policy, error) {
	switch r.Opts.SampleMode {
	case sched.SampleWalk:
		return func(i int) sched.Policy {
			return sched.NewRandom(sched.DeriveRunSeed(r.Opts.Seed, i))
		}, nil
	case sched.SamplePCT:
		depth, horizon := st.Depth, st.Horizon
		return func(i int) sched.Policy {
			return NewPCT(sched.DeriveRunSeed(r.Opts.Seed, i), r.N, depth, horizon)
		}, nil
	default:
		return nil, fmt.Errorf("sample: unknown SampleMode(%d)", int(r.Opts.SampleMode))
	}
}

// Slice advances the batch from state by at most sliceRuns runs (0 means
// no bound), recording coverage and failure detail into the returned
// state, and reports whether the shard's batch is complete. Pause
// semantics are those of sched.SeededSlice: runs already claimed finish,
// and the returned state is an exact resume point. The input state's
// coverage map is reused (not copied) by the returned state.
func (r *ResumableBatch) Slice(ctx context.Context, state *BatchState, sliceRuns int, pause func() bool) (*BatchState, bool, error) {
	if err := r.validate(); err != nil {
		return state, false, err
	}
	if state == nil {
		return state, false, fmt.Errorf("sample: nil batch state (use Init)")
	}
	policyFor, err := r.policyFor(state)
	if err != nil {
		return state, false, err
	}
	if state.Classes == nil {
		state.Classes = map[uint64]int{}
	}

	var mu sync.Mutex // guards Classes and the failure-detail fields below
	failedRun, violation := state.FailedRun, state.Violation
	failedMsg, failedErr := state.FailedMessage, state.failedErr
	var classes *stats.Counter
	if r.Opts.Stats != nil {
		classes = r.Opts.Stats.Counter(MetricClasses, "Distinct Mazurkiewicz trace classes discovered by sampling (per-shard first sightings).")
	}

	visit := func(i int, res *sched.Result, err error) error {
		seed := sched.DeriveRunSeed(r.Opts.Seed, i)
		record := func(violates bool, inner error) *RunError {
			mu.Lock()
			if failedRun < 0 || i < failedRun {
				failedRun, violation = i, violates
				failedMsg, failedErr = inner.Error(), inner
			}
			mu.Unlock()
			return &RunError{Mode: r.Opts.SampleMode, Run: i, Seed: seed, Violation: violates, Err: inner}
		}
		if err != nil {
			return record(false, err)
		}
		// Record coverage before checking, so the failing run's own
		// class is part of the reported coverage. Keep the smallest run
		// index per class: the minimum is interleaving-independent.
		h := sched.CanonicalTraceHash(res.Schedule, sched.OpIndependent)
		mu.Lock()
		first, ok := state.Classes[h]
		if !ok || i < first {
			state.Classes[h] = i
		}
		mu.Unlock()
		if !ok && classes != nil {
			classes.Inc()
		}
		if r.Check != nil {
			if cerr := r.Check(res); cerr != nil {
				return record(true, cerr)
			}
		}
		return nil
	}

	pool, done, err := sched.SeededSlice(ctx, r.N, r.IDs, r.Opts, r.Opts.SampleRuns,
		policyFor, r.Build, visit, &state.Pool, sliceRuns, pause)
	if err != nil {
		return state, false, err
	}
	next := &BatchState{
		Depth:         state.Depth,
		Horizon:       state.Horizon,
		Pool:          *pool,
		Classes:       state.Classes,
		FailedRun:     failedRun,
		Violation:     violation,
		FailedMessage: failedMsg,
		failedErr:     failedErr,
	}
	return next, done, nil
}

// Finalize merges completed shard states into the batch's Report and
// verdict, identical to what the uninterrupted single-process Explore
// returns: the coverage figure counts distinct trace classes over the
// runs up to and including the smallest failing one (all runs, when every
// shard verified), and a failure is reported as a *RunError for that
// smallest run. States must be the complete shard set of one batch: one
// state per shard, all complete, with matching PCT parameters.
func (r *ResumableBatch) Finalize(states ...*BatchState) (Report, error) {
	rep := Report{Mode: r.Opts.SampleMode, FailedRun: -1}
	if err := r.validate(); err != nil {
		return rep, err
	}
	if len(states) == 0 {
		return rep, fmt.Errorf("sample: finalize needs at least one batch state")
	}
	of := len(states)
	seen := make(map[int]bool, of)
	best := -1 // smallest failing global run index across shards
	var bestState *BatchState
	for i, st := range states {
		if st == nil {
			return rep, fmt.Errorf("sample: finalize: state %d is nil", i)
		}
		pool := st.Pool
		if pool.Of == 0 {
			pool.Of = 1
		}
		if pool.Of != of {
			return rep, fmt.Errorf("sample: finalize: state %d is shard %d of %d, but %d states were given", i, pool.Shard, pool.Of, of)
		}
		if pool.Shard < 0 || pool.Shard >= of || seen[pool.Shard] {
			return rep, fmt.Errorf("sample: finalize: duplicate or out-of-range shard %d", pool.Shard)
		}
		seen[pool.Shard] = true
		if !st.Pool.SeededDone(r.Opts.SampleRuns) {
			return rep, fmt.Errorf("sample: finalize: shard %d has not completed (next run %d)", pool.Shard, pool.Next)
		}
		if st.Depth != states[0].Depth || st.Horizon != states[0].Horizon {
			return rep, fmt.Errorf("sample: finalize: shard %d PCT parameters (depth %d, horizon %d) differ from shard 0's (depth %d, horizon %d)",
				pool.Shard, st.Depth, st.Horizon, states[0].Depth, states[0].Horizon)
		}
		if st.FailedRun >= 0 && (best < 0 || st.FailedRun < best) {
			best, bestState = st.FailedRun, st
		}
	}
	rep.Depth, rep.Horizon = states[0].Depth, states[0].Horizon

	count := r.Opts.SampleRuns
	if best >= 0 {
		count = best + 1
	}
	rep.Runs = count
	classes := make(map[uint64]struct{})
	for _, st := range states {
		for h, first := range st.Classes {
			if first < count {
				classes[h] = struct{}{}
			}
		}
	}
	rep.Classes = len(classes)
	if best < 0 {
		return rep, nil
	}
	inner := bestState.failedErr
	if inner == nil {
		inner = errors.New(bestState.FailedMessage)
	}
	re := &RunError{
		Mode:      r.Opts.SampleMode,
		Run:       best,
		Seed:      sched.DeriveRunSeed(r.Opts.Seed, best),
		Violation: bestState.Violation,
		Err:       inner,
	}
	rep.FailedRun, rep.FailedSeed = re.Run, re.Seed
	return rep, re
}
