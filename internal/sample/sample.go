// Package sample is the statistical sampling subsystem of the engine:
// instead of enumerating the schedule tree, it executes a fixed number of
// independently seeded runs drawn by a sampler — a uniform random walk
// (sched.SampleWalk) or probabilistic concurrency testing
// (sched.SamplePCT) — and reports schedule-space coverage as the number
// of distinct Mazurkiewicz trace classes among the verified runs.
//
// Both samplers ride the seeded-run pool (sched.SeededSlice): run i's
// schedule is a pure function of sched.DeriveRunSeed(Seed, i), so every
// report is reproducible at any worker count, any failing run is
// replayable from its derived seed alone, and batches checkpoint, resume
// and shard exactly (ResumableBatch). Explore is the one-shot entry
// point; tasks.ExploreVerified dispatches here when
// sched.ExploreOptions.SampleRuns is set.
package sample

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/sched"
)

// Report is the outcome of a sampling batch. All fields are deterministic
// given the options (worker count included): the set of schedules is a
// pure function of Seed, and classes are counted over the runs up to and
// including the reported one, which is itself interleaving-independent.
type Report struct {
	Mode  sched.SampleMode
	Depth int // PCT bug depth used; 0 in walk mode
	// Horizon is the step horizon over which PCT priority-change points
	// were drawn — measured by a deterministic probe run (round-robin
	// schedule), falling back to the step budget if the probe fails.
	// 0 in walk mode.
	Horizon int
	// Runs is the number of runs executed and verified: SampleRuns on
	// success, the failing run's 1-based index on failure.
	Runs int
	// Classes is the number of distinct Mazurkiewicz trace classes
	// among those runs (Foata canonical-trace hash over the
	// OpIndependent commutation relation) — the batch's measured
	// schedule-space coverage, as opposed to its raw run count.
	Classes int
	// FailedRun is the smallest failing run index, -1 when every run
	// verified. FailedSeed is that run's derived policy seed: rebuild
	// the run's policy from it (sched.NewRandom in walk mode, NewPCT
	// with the report's Depth and Horizon in PCT mode) to replay the
	// violating schedule exactly.
	FailedRun  int
	FailedSeed int64
}

// Coverage is the distinct-class fraction of the batch: Classes/Runs.
// Values near 1 mean nearly every run found a new trace class (the
// sampled space is far from saturated); values near 0 mean the batch is
// revisiting classes and Classes approaches the true class count.
func (r Report) Coverage() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Classes) / float64(r.Runs)
}

// RunError is the failure of one sampled run: the property violation (or
// runner error) of the smallest failing run index. It wraps the
// underlying error and carries everything needed to replay the run.
type RunError struct {
	Mode      sched.SampleMode
	Run       int   // run index within the batch
	Seed      int64 // derived policy seed (sched.DeriveRunSeed)
	Violation bool  // property violation (vs. a runner error)
	Err       error
}

// Error implements error.
func (e *RunError) Error() string {
	if e.Violation {
		return fmt.Sprintf("sample: %v run %d (seed %d) violates property: %v", e.Mode, e.Run, e.Seed, e.Err)
	}
	return fmt.Sprintf("sample: %v run %d (seed %d): %v", e.Mode, e.Run, e.Seed, e.Err)
}

// Unwrap implements errors.Unwrap.
func (e *RunError) Unwrap() error { return e.Err }

// Explore executes opts.SampleRuns sampled failure-free schedules of the
// protocol over the seeded-run pool (opts.Workers goroutines), invoking
// check on each completed run, and reports distinct-trace-class coverage.
// opts.SampleMode picks the sampler (SampleWalk or SamplePCT, with
// opts.Depth the PCT bug-depth knob); run i is scheduled by a policy
// seeded with sched.DeriveRunSeed(opts.Seed, i), so the batch is
// reproducible at any worker count.
//
// On a failing run the returned error is a *RunError for the smallest
// failing index (interleaving-independent, mirroring the crash sweep) and
// the report's FailedRun/FailedSeed identify the replayable run; the
// report is returned alongside the error with the coverage measured over
// the runs up to and including the failing one.
func Explore(ctx context.Context, n int, ids []int, opts sched.ExploreOptions, build func() sched.Body, check func(*sched.Result) error) (Report, error) {
	rep := Report{Mode: opts.SampleMode, FailedRun: -1}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return rep, err
	}
	if opts.SampleRuns <= 0 {
		return rep, fmt.Errorf("sample: sampling needs SampleRuns > 0 (got %d)", opts.SampleRuns)
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4096 * n
	}

	var policyFor func(i int) sched.Policy
	switch opts.SampleMode {
	case sched.SampleWalk:
		policyFor = func(i int) sched.Policy {
			return sched.NewRandom(sched.DeriveRunSeed(opts.Seed, i))
		}
	case sched.SamplePCT:
		depth := opts.Depth
		if depth <= 0 {
			depth = DefaultDepth
		}
		horizon := ProbeHorizon(n, ids, maxSteps, build)
		rep.Depth, rep.Horizon = depth, horizon
		policyFor = func(i int) sched.Policy {
			return NewPCT(sched.DeriveRunSeed(opts.Seed, i), n, depth, horizon)
		}
	default:
		// Validate already rejected anything else.
		return rep, fmt.Errorf("sample: unknown SampleMode(%d)", int(opts.SampleMode))
	}

	cov := &coverage{byRun: make(map[int]uint64)}
	visit := func(i int, res *sched.Result, err error) error {
		seed := sched.DeriveRunSeed(opts.Seed, i)
		if err != nil {
			return &RunError{Mode: opts.SampleMode, Run: i, Seed: seed, Err: err}
		}
		// Record coverage before checking, so the failing run's own
		// class is part of the reported coverage.
		cov.record(i, sched.CanonicalTraceHash(res.Schedule, sched.OpIndependent))
		if check != nil {
			if cerr := check(res); cerr != nil {
				return &RunError{Mode: opts.SampleMode, Run: i, Seed: seed, Violation: true, Err: cerr}
			}
		}
		return nil
	}

	count, err := sched.ExploreSeeded(ctx, n, ids, opts, opts.SampleRuns, policyFor, build, visit)
	rep.Runs = count
	// Count classes over run indices below the settled count: on success
	// that is every run; on failure it is exactly the runs up to and
	// including the smallest failing one, all of which executed (indices
	// are claimed in order), so the figure is interleaving-independent.
	// Only a cancellation — already nondeterministic — can leave gaps.
	rep.Classes = cov.distinct(count)
	var re *RunError
	if errors.As(err, &re) {
		rep.FailedRun, rep.FailedSeed = re.Run, re.Seed
	}
	return rep, err
}

// ProbeHorizon measures the protocol's run length under a deterministic
// round-robin schedule, for drawing PCT change points over a realistic
// step range: drawing over the worst-case step budget (4096*n by default)
// would land almost every change point past the end of the run and
// silently degrade PCT to plain priority scheduling. It is deterministic,
// which is what lets every shard of a campaign measure it independently
// and agree.
func ProbeHorizon(n int, ids []int, maxSteps int, build func() sched.Body) int {
	runner := sched.NewRunner(n, ids, sched.NewRoundRobin(), sched.WithMaxSteps(maxSteps))
	res, err := runner.Run(build())
	if err != nil || res.Steps < 1 {
		return maxSteps
	}
	return res.Steps
}

// coverage maps run index to the run's canonical trace-class hash. Runs
// record concurrently from the pool workers; distinct() is called once
// after the pool drains.
type coverage struct {
	mu    sync.Mutex
	byRun map[int]uint64
}

func (c *coverage) record(i int, h uint64) {
	c.mu.Lock()
	c.byRun[i] = h
	c.mu.Unlock()
}

// distinct counts distinct class hashes among run indices < limit.
func (c *coverage) distinct(limit int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[uint64]struct{}, len(c.byRun))
	for i, h := range c.byRun {
		if i < limit {
			seen[h] = struct{}{}
		}
	}
	return len(seen)
}
