package sample

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sched"
)

// mixedBuild is a small protocol mixing commuting steps (a write to the
// process's own register) with conflicting ones (read-increment of a
// shared object), so schedules spread over many trace classes.
func mixedBuild() sched.Body {
	shared := 0
	return func(p *sched.Proc) {
		p.Exec(fmt.Sprintf("r%d.write", p.Index()), func() any { return nil })
		v := p.Exec("X.read", func() any { return shared }).(int)
		p.Exec("X.write", func() any { shared = v + 1; return nil })
		p.Decide(p.ID())
	}
}

func scheduleKey(schedule []sched.Step) string {
	key := ""
	for _, s := range schedule {
		key += fmt.Sprintf("%d:%s;", s.Proc, s.Op)
	}
	return key
}

// TestSampleReproducibleAcrossWorkers is the acceptance contract: for
// both samplers, the same seed executes exactly the same multiset of
// schedules — and therefore the same Report — at 1, 2 and 8 workers.
func TestSampleReproducibleAcrossWorkers(t *testing.T) {
	const n, runs = 3, 60
	for _, mode := range []sched.SampleMode{sched.SampleWalk, sched.SamplePCT} {
		var wantRep Report
		var wantScheds map[string]int
		for i, workers := range []int{1, 2, 8} {
			var mu sync.Mutex
			scheds := map[string]int{}
			rep, err := Explore(context.Background(), n, sched.DefaultIDs(n),
				sched.ExploreOptions{Workers: workers, SampleRuns: runs, SampleMode: mode, Seed: 9},
				mixedBuild,
				func(res *sched.Result) error {
					mu.Lock()
					scheds[scheduleKey(res.Schedule)]++
					mu.Unlock()
					return nil
				})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			if rep.Runs != runs || rep.FailedRun != -1 {
				t.Fatalf("%v workers=%d: report %+v", mode, workers, rep)
			}
			if rep.Classes < 2 || rep.Classes > runs {
				t.Fatalf("%v workers=%d: implausible class count %d", mode, workers, rep.Classes)
			}
			if i == 0 {
				wantRep, wantScheds = rep, scheds
				continue
			}
			if rep != wantRep {
				t.Errorf("%v workers=%d: report %+v, want %+v", mode, workers, rep, wantRep)
			}
			if len(scheds) != len(wantScheds) {
				t.Errorf("%v workers=%d: %d distinct schedules, want %d", mode, workers, len(scheds), len(wantScheds))
			}
			for k, c := range wantScheds {
				if scheds[k] != c {
					t.Errorf("%v workers=%d: schedule multiplicity mismatch", mode, workers)
					break
				}
			}
		}
	}
}

// TestSampleDeterministicFailure: a failing property reports the
// smallest failing run index with its replayable derived seed,
// identically at every worker count — and replaying that seed through
// the same policy reproduces a failing schedule.
func TestSampleDeterministicFailure(t *testing.T) {
	const n, runs = 3, 400
	// Reject any schedule where process 2 decides first: plenty of runs
	// violate it, but not the vast majority, so the smallest failing
	// index is a meaningful aggregate.
	lastDecider := func(res *sched.Result) error {
		for _, s := range res.Schedule {
			if s.Op == "decide" {
				if s.Proc == 2 {
					return fmt.Errorf("process 2 decided first")
				}
				return nil
			}
		}
		return nil
	}
	for _, mode := range []sched.SampleMode{sched.SampleWalk, sched.SamplePCT} {
		var wantRep Report
		var wantErr string
		for i, workers := range []int{1, 2, 8} {
			rep, err := Explore(context.Background(), n, sched.DefaultIDs(n),
				sched.ExploreOptions{Workers: workers, SampleRuns: runs, SampleMode: mode, Seed: 3},
				mixedBuild, lastDecider)
			if err == nil {
				t.Fatalf("%v workers=%d: no violation in %d runs", mode, workers, runs)
			}
			var re *RunError
			if !errors.As(err, &re) || !re.Violation {
				t.Fatalf("%v workers=%d: err = %v, want a *RunError violation", mode, workers, err)
			}
			if rep.FailedRun != re.Run || rep.FailedSeed != re.Seed || rep.Runs != re.Run+1 {
				t.Fatalf("%v workers=%d: report %+v inconsistent with %v", mode, workers, rep, re)
			}
			if i == 0 {
				wantRep, wantErr = rep, err.Error()
				continue
			}
			if rep != wantRep || err.Error() != wantErr {
				t.Errorf("%v workers=%d: (%+v, %q), want (%+v, %q)", mode, workers, rep, err, wantRep, wantErr)
			}
		}
		// Replay: rebuild the failing run's policy from the derived seed
		// alone and re-execute; the violation must reproduce.
		var policy sched.Policy
		if mode == sched.SamplePCT {
			policy = NewPCT(wantRep.FailedSeed, n, wantRep.Depth, wantRep.Horizon)
		} else {
			policy = sched.NewRandom(wantRep.FailedSeed)
		}
		res, err := sched.NewRunner(n, sched.DefaultIDs(n), policy).Run(mixedBuild())
		if err != nil {
			t.Fatalf("%v replay: %v", mode, err)
		}
		if lastDecider(res) == nil {
			t.Errorf("%v: replayed seed %d did not reproduce the violation", mode, wantRep.FailedSeed)
		}
	}
}

// TestPCTDeterministicPolicy: the PCT policy is a pure function of its
// seed — two instances with the same seed drive identical schedules, and
// a different seed changes the schedule for at least one of a handful of
// seeds (the policy is actually randomized).
func TestPCTDeterministicPolicy(t *testing.T) {
	const n = 4
	run := func(seed int64) string {
		res, err := sched.NewRunner(n, sched.DefaultIDs(n), NewPCT(seed, n, 3, 16)).Run(mixedBuild())
		if err != nil {
			t.Fatal(err)
		}
		return scheduleKey(res.Schedule)
	}
	distinct := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		a, b := run(seed), run(seed)
		if a != b {
			t.Fatalf("seed %d: schedules differ across replays", seed)
		}
		distinct[a] = true
	}
	if len(distinct) < 2 {
		t.Error("8 distinct seeds produced a single schedule; PCT is not randomizing")
	}
}

// TestPCTPrioritiesRespected: with depth 1 (no change points) the policy
// is pure priority scheduling — the process order in the schedule is a
// fixed sequence of "highest-priority pending runs to completion" blocks,
// i.e. no process appears after a process with lower priority has taken a
// step (processes only block on the scheduler, never on each other).
func TestPCTPrioritiesRespected(t *testing.T) {
	const n = 3
	p := NewPCT(5, n, 1, 8)
	res, err := sched.NewRunner(n, sched.DefaultIDs(n), p).Run(func(pr *sched.Proc) {
		pr.Exec("X.write", func() any { return nil })
		pr.Exec("X.write", func() any { return nil })
		pr.Decide(pr.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every process's steps must form one contiguous block.
	seen := map[int]bool{}
	last := -1
	for _, s := range res.Schedule {
		if s.Proc != last {
			if seen[s.Proc] {
				t.Fatalf("process %d scheduled in two separate blocks without a change point:\n%v", s.Proc, res.Schedule)
			}
			seen[s.Proc] = true
			last = s.Proc
		}
	}
}

// TestSampleCoverageConvergesToClassCount: on a protocol whose exact
// class count the reduced exploration establishes, a large enough walk
// batch observes every class — the coverage metric converges to the
// ground truth (the full differential against the <4,2> GSB family lives
// in internal/tasks).
func TestSampleCoverageConvergesToClassCount(t *testing.T) {
	const n = 3
	want, err := sched.Explore(context.Background(), n, sched.DefaultIDs(n),
		sched.ExploreOptions{Workers: 1, MaxSteps: 1000, Reduction: sched.ReductionSleepSets},
		mixedBuild, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(context.Background(), n, sched.DefaultIDs(n),
		sched.ExploreOptions{Workers: 4, SampleRuns: 4000, Seed: 1}, mixedBuild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes != want {
		t.Errorf("walk coverage %d classes, POR ground truth %d", rep.Classes, want)
	}
	if rep.Coverage() <= 0 || rep.Coverage() > 1 {
		t.Errorf("implausible coverage fraction %v", rep.Coverage())
	}
}

// TestSampleOptionValidation: sampling rejects the same bad options up
// front as the exhaustive engine, plus its own cross-field rules; and
// sched.Explore refuses SampleRuns instead of silently ignoring it.
func TestSampleOptionValidation(t *testing.T) {
	cases := []sched.ExploreOptions{
		{SampleRuns: -1},
		{SampleRuns: 10, SampleMode: sched.SampleMode(7)},
		{SampleRuns: 10, Depth: -2},
		{SampleRuns: 10, CrashRuns: 10},
	}
	for _, opts := range cases {
		if _, err := Explore(context.Background(), 2, sched.DefaultIDs(2), opts, mixedBuild, nil); !errors.Is(err, sched.ErrInvalidOptions) {
			t.Errorf("opts %+v: err = %v, want ErrInvalidOptions", opts, err)
		}
	}
	if _, err := Explore(context.Background(), 2, sched.DefaultIDs(2), sched.ExploreOptions{}, mixedBuild, nil); err == nil {
		t.Error("SampleRuns = 0 should be rejected by sample.Explore")
	}
	if _, err := sched.Explore(context.Background(), 2, sched.DefaultIDs(2),
		sched.ExploreOptions{SampleRuns: 5}, func() sched.Body { return mixedBuild() }, nil); err == nil {
		t.Error("sched.Explore should refuse SampleRuns > 0")
	}
}

// TestSampleCanceled: cancellation surfaces as context.Canceled with a
// best-effort run count, mirroring the crash sweep.
func TestSampleCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Explore(ctx, 3, sched.DefaultIDs(3),
		sched.ExploreOptions{Workers: 4, SampleRuns: 10000, Seed: 1}, mixedBuild, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Runs >= 10000 {
		t.Errorf("canceled batch reports %d runs", rep.Runs)
	}
}
