package sample

import (
	"testing"

	"repro/internal/lint"
)

// TestCheckpointStateRoundTrips: see the statefield analyzer
// (internal/lint) — every exported field of the //gsb:serialized structs
// must survive an encode/decode cycle.
func TestCheckpointStateRoundTrips(t *testing.T) {
	if err := lint.RoundTripJSON(&BatchState{}); err != nil {
		t.Error(err)
	}
}
