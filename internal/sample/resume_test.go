package sample

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/sched"
)

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// racyBuild decides the value each process read from a shared counter
// plus one: lost updates make some (seed-dependent) sampled runs decide
// duplicate low values, so a check requiring distinct outputs fails on a
// deterministic subset of run indices.
func racyBuild() sched.Body {
	counter := 0
	return func(p *sched.Proc) {
		v := p.Exec("X.read", func() any { return counter }).(int)
		p.Exec("X.write", func() any { counter = v + 1; return nil })
		p.Decide(v + 1)
	}
}

func distinctOutputs(res *sched.Result) error {
	seen := map[int]int{}
	for i, v := range res.Outputs {
		if j, dup := seen[v]; dup {
			return &dupError{a: j, b: i, v: v}
		}
		seen[v] = i
	}
	return nil
}

type dupError struct{ a, b, v int }

func (e *dupError) Error() string {
	return "processes " + itoa(e.a) + " and " + itoa(e.b) + " both decided " + itoa(e.v)
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// roundTrip serializes and restores a BatchState, as a campaign snapshot
// would.
func roundTrip(t *testing.T, st *BatchState) *BatchState {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out := &BatchState{}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

// TestBatchSliceResumeMatchesExplore drives sampling batches in tiny
// slices with a JSON round-trip at every checkpoint and asserts the
// finalized report and verdict are identical to the uninterrupted
// Explore, for both samplers, clean and failing runs, workers 1/2/8.
func TestBatchSliceResumeMatchesExplore(t *testing.T) {
	const n, runs = 3, 120
	cases := []struct {
		name  string
		build func() sched.Body
		check func(*sched.Result) error
	}{
		{"clean", func() sched.Body { return mixedBuild() }, nil},
		{"racy", func() sched.Body { return racyBuild() }, distinctOutputs},
	}
	for _, tc := range cases {
		for _, mode := range []sched.SampleMode{sched.SampleWalk, sched.SamplePCT} {
			for _, workers := range []int{1, 2, 8} {
				opts := sched.ExploreOptions{Workers: workers, SampleRuns: runs, SampleMode: mode, Seed: 5}
				wantRep, wantErr := Explore(context.Background(), n, sched.DefaultIDs(n), opts, tc.build, tc.check)

				r := &ResumableBatch{N: n, IDs: sched.DefaultIDs(n), Opts: opts, Build: tc.build, Check: tc.check}
				st, err := r.Init(0, 1)
				if err != nil {
					t.Fatalf("%s %v workers=%d: init: %v", tc.name, mode, workers, err)
				}
				for {
					next, done, serr := r.Slice(context.Background(), st, 17, nil)
					if serr != nil {
						t.Fatalf("%s %v workers=%d: slice: %v", tc.name, mode, workers, serr)
					}
					st = roundTrip(t, next)
					if done {
						break
					}
				}
				gotRep, gotErr := r.Finalize(st)
				if gotRep != wantRep || errText(gotErr) != errText(wantErr) {
					t.Errorf("%s %v workers=%d:\n sliced (%+v, %q)\noneshot (%+v, %q)",
						tc.name, mode, workers, gotRep, errText(gotErr), wantRep, errText(wantErr))
				}
			}
		}
	}
}

// TestBatchShardMergeMatchesExplore splits batches across m shards, runs
// each shard independently (in slices, through serialization), and
// asserts the merged report equals the single-process one.
func TestBatchShardMergeMatchesExplore(t *testing.T) {
	const n, runs = 3, 120
	cases := []struct {
		name  string
		build func() sched.Body
		check func(*sched.Result) error
	}{
		{"clean", func() sched.Body { return mixedBuild() }, nil},
		{"racy", func() sched.Body { return racyBuild() }, distinctOutputs},
	}
	for _, tc := range cases {
		for _, mode := range []sched.SampleMode{sched.SampleWalk, sched.SamplePCT} {
			for _, m := range []int{1, 3} {
				opts := sched.ExploreOptions{Workers: 2, SampleRuns: runs, SampleMode: mode, Seed: 5}
				wantRep, wantErr := Explore(context.Background(), n, sched.DefaultIDs(n), opts, tc.build, tc.check)

				r := &ResumableBatch{N: n, IDs: sched.DefaultIDs(n), Opts: opts, Build: tc.build, Check: tc.check}
				finals := make([]*BatchState, m)
				for shard := 0; shard < m; shard++ {
					st, err := r.Init(shard, m)
					if err != nil {
						t.Fatalf("init shard %d: %v", shard, err)
					}
					for {
						next, done, serr := r.Slice(context.Background(), st, 13, nil)
						if serr != nil {
							t.Fatalf("shard %d: %v", shard, serr)
						}
						st = roundTrip(t, next)
						if done {
							break
						}
					}
					finals[shard] = st
				}
				gotRep, gotErr := r.Finalize(finals...)
				if gotRep != wantRep || errText(gotErr) != errText(wantErr) {
					t.Errorf("%s %v m=%d:\n merged (%+v, %q)\noneshot (%+v, %q)",
						tc.name, mode, m, gotRep, errText(gotErr), wantRep, errText(wantErr))
				}
			}
		}
	}
}

// TestBatchFinalizeRejectsIncompleteShardSets asserts the loud-failure
// contract of merges: missing shards, duplicate shards and unfinished
// shards are errors, not silently wrong reports.
func TestBatchFinalizeRejectsIncompleteShardSets(t *testing.T) {
	const n, runs = 3, 40
	opts := sched.ExploreOptions{Workers: 1, SampleRuns: runs, Seed: 5}
	r := &ResumableBatch{N: n, IDs: sched.DefaultIDs(n), Opts: opts, Build: func() sched.Body { return mixedBuild() }}

	complete := func(shard, of int) *BatchState {
		st, err := r.Init(shard, of)
		if err != nil {
			t.Fatal(err)
		}
		st, _, err = r.Slice(context.Background(), st, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	s0, s1 := complete(0, 2), complete(1, 2)
	if _, err := r.Finalize(s0); err == nil {
		t.Error("finalize of 1 of 2 shards succeeded")
	}
	if _, err := r.Finalize(s0, s0); err == nil {
		t.Error("finalize of a duplicated shard succeeded")
	}
	unfinished, err := r.Init(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finalize(s0, unfinished); err == nil {
		t.Error("finalize with an unfinished shard succeeded")
	}
	if rep, err := r.Finalize(s0, s1); err != nil || rep.Runs != runs {
		t.Errorf("complete shard set: (%+v, %v)", rep, err)
	}
}
