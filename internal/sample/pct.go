// Package sample is the statistical schedule-sampling subsystem: bounded-
// guarantee exploration for instances whose schedule tree is far beyond
// the exhaustive engine (even with partial-order reduction). Instead of
// enumerating interleavings it executes a seeded batch of independent
// runs — a uniform random walk over the pending set, or PCT
// (probabilistic concurrency testing) runs with its per-run bug-depth
// guarantee — on the same worker pool as the crash sweep, and reports
// coverage as the number of distinct Mazurkiewicz trace classes hit
// (sched.CanonicalTraceHash), not just raw run counts.
//
// Everything is deterministic given ExploreOptions.Seed: run i is
// scheduled by a policy seeded with sched.DeriveRunSeed(Seed, i), so the
// batch executes the same set of schedules at any worker count, the
// reported class coverage is interleaving-independent, and the smallest
// failing run can be replayed from its derived seed alone.
package sample

import (
	"math/rand"

	"repro/internal/sched"
)

// DefaultDepth is the PCT bug depth used when ExploreOptions.Depth is 0:
// depth 3 covers single-ordering bugs (d=2) and the common
// atomicity-violation shapes (d=3) while keeping the k^(d-1) denominator
// of the detection guarantee small.
const DefaultDepth = 3

// PCT is the probabilistic concurrency testing policy of Burckhardt,
// Kothari, Musuvathi and Nagarakatte ("A Randomized Scheduler with
// Probabilistic Guarantees of Finding Bugs", ASPLOS 2010), adapted to the
// pending-set scheduler interface: each process gets a distinct random
// initial priority in [depth, depth+n), the scheduler always grants the
// highest-priority pending process, and depth-1 priority-change points
// are drawn uniformly over the reachable decision numbers [1, horizon-1]
// — when step number hits change point j, the process granted the
// previous step drops to priority depth-1-j (below every initial
// priority, and below every earlier change point's value).
//
// For a bug that manifests whenever d specific ordering constraints hold
// (a "depth-d" bug), a PCT run triggers it with probability at least
// 1/(n*k^(d-1)) for n processes and k steps — a per-run guarantee that a
// uniform random walk does not give, because walk probability mass
// concentrates on balanced interleavings.
//
// The policy is a deterministic function of its seed: the priorities and
// change points are drawn up front, so the schedule depends only on
// (seed, protocol), never on wall clock or worker interleaving.
type PCT struct {
	prio   []int
	change map[int]int // step number -> replacement (low) priority
	last   int         // process granted the previous step
}

// NewPCT returns a seeded PCT policy for n processes with the given bug
// depth (>= 1; depth-1 priority-change points) over a horizon of
// expected run length horizon (change points past the actual run length
// simply never fire). depth <= 0 means DefaultDepth.
func NewPCT(seed int64, n, depth, horizon int) *PCT {
	if depth <= 0 {
		depth = DefaultDepth
	}
	if horizon < 1 {
		horizon = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := &PCT{
		prio:   make([]int, n),
		change: make(map[int]int, depth-1),
		last:   -1,
	}
	for i, r := range rng.Perm(n) {
		p.prio[i] = depth + r
	}
	// Change point j gets priority value depth-1-j, so later change
	// points push processes lower still; two points landing on the same
	// step coalesce (the run simply behaves as one of depth-1). Points
	// are drawn over the reachable decision numbers [1, horizon-1]:
	// stepNo at a decision is the count of steps already granted, so a
	// run of exactly horizon steps never presents stepNo == horizon and
	// a point there could never fire.
	span := horizon - 1
	if span < 1 {
		span = 1
	}
	for j := 0; j < depth-1; j++ {
		p.change[1+rng.Intn(span)] = depth - 1 - j
	}
	return p
}

// Next implements sched.Policy: apply any priority-change point scheduled
// for this step to the previously granted process, then grant the
// highest-priority pending process.
func (p *PCT) Next(pending []int, stepNo int) sched.Decision {
	if v, ok := p.change[stepNo]; ok && p.last >= 0 {
		p.prio[p.last] = v
		delete(p.change, stepNo)
	}
	best := pending[0]
	for _, q := range pending[1:] {
		if p.prio[q] > p.prio[best] {
			best = q
		}
	}
	p.last = best
	return sched.Decision{Proc: best}
}
