// Package stats is the engine observability registry: a low-overhead
// collection of named counters, gauges and histograms that the
// exploration/POR engine, the seeded-run pool, the samplers and the
// campaign checkpointer publish into while a verification runs.
//
// The design constraints come from the hot path they instrument (the
// runner executes >10^5 runs/sec with zero steady-state allocations):
//
//   - Registration is the only synchronized, allocating operation.
//     Callers resolve a metric handle once — Registry.Counter and friends
//     are idempotent by name — and publish through the handle.
//   - Publishing (Counter.Inc/Add, Gauge.Set/Add, Histogram.Observe) is
//     one or two atomic operations and allocates nothing, pinned by
//     testing.AllocsPerRun in the package tests.
//   - The whole registry is serializable: Snapshot renders every metric
//     to a plain JSON value, Restore folds a snapshot back into the live
//     metrics, and Snapshot.Add sums snapshots. That is what lets a
//     campaign checkpoint its counters, a resumed campaign keep reporting
//     cumulative (not per-process-life) totals, and a shard merge sum its
//     shards' totals.
//
// Rendering is Prometheus text exposition format (WritePrometheus), so a
// `-metrics` endpoint needs no client library; internal/campaign builds
// the /metrics and /status HTTP endpoints on top of this package, and
// docs/metrics.md is the reference for every metric the engines register.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing metric (runs executed, steals,
// checkpoint writes). All methods are safe for concurrent use and the
// publishing methods (Inc, Add) never allocate.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1 to the counter.
//
//gsb:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter. Counters are monotone by convention;
// Restore uses Add internally, so negative deltas are not rejected, but
// engine code must never pass one.
//
//gsb:hotpath
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a point-in-time level (frontier depth, last snapshot size).
// All methods are safe for concurrent use and never allocate.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
//
//gsb:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
//
//gsb:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram accumulates observations (checkpoint write latencies) into
// fixed buckets chosen at registration. Observe is lock-free — a bucket
// increment, a count increment and a CAS loop for the sum — and never
// allocates.
type Histogram struct {
	bounds  []float64 // immutable upper bounds, ascending; +Inf implied
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

// DefBuckets are the default histogram bounds, in seconds: sized for
// checkpoint write latencies from sub-millisecond tmpfs writes to
// multi-second snapshots of saturated coverage maps.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Observe records one observation.
//
//gsb:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric is one registered metric: a name, a help line, and exactly one
// of the three kinds.
type metric struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

func (m metric) kind() string {
	switch {
	case m.c != nil:
		return "counter"
	case m.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry is an ordered set of named metrics. The zero value is not
// usable; call New. Registration is idempotent by name: asking twice for
// the same name (with the same kind) returns the same handle, which is
// what lets independent engine slices resolve their handles without
// coordinating. Asking for an existing name with a different kind panics —
// that is a programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]int
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]int)}
}

func (r *Registry) lookup(name, help, kind string) (metric, bool) {
	if i, ok := r.byName[name]; ok {
		m := r.metrics[i]
		if m.kind() != kind {
			panic(fmt.Sprintf("stats: metric %q registered as %s, requested as %s", name, m.kind(), kind))
		}
		return m, true
	}
	return metric{name: name, help: help}, false
}

// Counter registers (or fetches) the counter called name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.lookup(name, help, "counter")
	if !ok {
		m.c = &Counter{}
		r.byName[name] = len(r.metrics)
		r.metrics = append(r.metrics, m)
	}
	return m.c
}

// Gauge registers (or fetches) the gauge called name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.lookup(name, help, "gauge")
	if !ok {
		m.g = &Gauge{}
		r.byName[name] = len(r.metrics)
		r.metrics = append(r.metrics, m)
	}
	return m.g
}

// Histogram registers (or fetches) the histogram called name with the
// given bucket upper bounds (ascending; a +Inf bucket is implicit; nil
// means DefBuckets). The bounds of an already-registered histogram win —
// re-registration never resizes live buckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.lookup(name, help, "histogram")
	if !ok {
		if bounds == nil {
			bounds = DefBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("stats: histogram %q bounds not ascending: %v", name, bounds))
			}
		}
		m.h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.byName[name] = len(r.metrics)
		r.metrics = append(r.metrics, m)
	}
	return m.h
}

// snapshotLocked returns a copy of the metric list; rendering and
// snapshotting read metric values outside the lock (the handles are
// atomic) so a slow writer never blocks publishers.
func (r *Registry) list() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]metric(nil), r.metrics...)
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (text/plain; version=0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.list() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind()); err != nil {
			return err
		}
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case m.h != nil:
			cum := int64(0)
			for i, b := range m.h.bounds {
				cum += m.h.buckets[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatBound(b), cum); err != nil {
					return err
				}
			}
			cum += m.h.buckets[len(m.h.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %g\n", m.name, m.h.Sum()); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", m.name, m.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// HistogramSnapshot is the serializable state of one histogram.
//
//gsb:serialized
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (+Inf implicit); Counts has one
	// entry per bucket plus the +Inf bucket, non-cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a serializable point-in-time copy of a registry: the value
// every campaign checkpoint carries (docs/checkpoint-format.md) so
// counters survive kills and sum across shards.
//
//gsb:serialized
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	for _, m := range r.list() {
		switch {
		case m.c != nil:
			if s.Counters == nil {
				s.Counters = map[string]int64{}
			}
			s.Counters[m.name] = m.c.Value()
		case m.g != nil:
			if s.Gauges == nil {
				s.Gauges = map[string]int64{}
			}
			s.Gauges[m.name] = m.g.Value()
		case m.h != nil:
			if s.Histograms == nil {
				s.Histograms = map[string]HistogramSnapshot{}
			}
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), m.h.bounds...),
				Counts: make([]int64, len(m.h.buckets)),
				Sum:    m.h.Sum(),
				Count:  m.h.Count(),
			}
			for i := range m.h.buckets {
				hs.Counts[i] = m.h.buckets[i].Load()
			}
			s.Histograms[m.name] = hs
		}
	}
	return s
}

// Restore folds a snapshot's totals into the live registry: counters and
// histogram buckets are added (the intended use restores a checkpoint
// into a fresh registry, making the live totals cumulative across process
// lives), gauges are set (a level has no meaningful sum). Metrics absent
// from the registry are registered; a histogram whose live bounds differ
// from the snapshot's folds only sum and count (the buckets are not
// comparable), which can only happen if the bucket layout changed between
// the writing and the restoring build.
func (r *Registry) Restore(s Snapshot) {
	for _, name := range sortedKeys(s.Counters) {
		r.Counter(name, "").Add(s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		r.Gauge(name, "").Set(s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		h := r.Histogram(name, "", hs.Bounds)
		if len(h.buckets) == len(hs.Counts) && boundsEqual(h.bounds, hs.Bounds) {
			for i, c := range hs.Counts {
				h.buckets[i].Add(c)
			}
		}
		h.count.Add(hs.Count)
		for {
			old := h.sumBits.Load()
			v := math.Float64frombits(old) + hs.Sum
			if h.sumBits.CompareAndSwap(old, math.Float64bits(v)) {
				break
			}
		}
	}
}

// Add returns the element-wise sum of two snapshots (counters and
// histograms summed, gauges taken from t where present — the later/other
// snapshot's level wins). Merging shard snapshots uses it.
func (s Snapshot) Add(t Snapshot) Snapshot {
	out := Snapshot{}
	for _, src := range []map[string]int64{s.Counters, t.Counters} {
		for k, v := range src {
			if out.Counters == nil {
				out.Counters = map[string]int64{}
			}
			out.Counters[k] += v
		}
	}
	for _, src := range []map[string]int64{s.Gauges, t.Gauges} {
		for k, v := range src {
			if out.Gauges == nil {
				out.Gauges = map[string]int64{}
			}
			out.Gauges[k] = v
		}
	}
	for _, src := range []map[string]HistogramSnapshot{s.Histograms, t.Histograms} {
		for k, v := range src {
			if out.Histograms == nil {
				out.Histograms = map[string]HistogramSnapshot{}
			}
			have, ok := out.Histograms[k]
			if !ok {
				out.Histograms[k] = HistogramSnapshot{
					Bounds: append([]float64(nil), v.Bounds...),
					Counts: append([]int64(nil), v.Counts...),
					Sum:    v.Sum,
					Count:  v.Count,
				}
				continue
			}
			if len(have.Counts) == len(v.Counts) && boundsEqual(have.Bounds, v.Bounds) {
				for i := range have.Counts {
					have.Counts[i] += v.Counts[i]
				}
			}
			have.Sum += v.Sum
			have.Count += v.Count
			out.Histograms[k] = have
		}
	}
	return out
}

// Counter returns the snapshot's value for a counter (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Sum folds any number of snapshots with Add: the element-wise total of
// the set (counters and histograms summed; for gauges the last
// snapshot's level wins). The fleet coordinator aggregates shard
// snapshots with it — one snapshot per shard, each already cumulative
// across that shard's process lives, so summing the latest snapshot per
// shard equals an uninterrupted unsharded run and never double-counts a
// re-dealt shard's pre-crash work.
func Sum(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out = out.Add(s)
	}
	return out
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
