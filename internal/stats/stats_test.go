package stats

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from 1/2/8 goroutines (run
// under -race in CI) and checks the totals are exact.
func TestRegistryConcurrency(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r := New()
			const perWorker = 10000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Handles resolved per goroutine: registration must be
					// idempotent and race-free.
					c := r.Counter("gsb_runs_total", "runs")
					g := r.Gauge("gsb_frontier_depth", "depth")
					h := r.Histogram("gsb_checkpoint_write_seconds", "latency", nil)
					for i := 0; i < perWorker; i++ {
						c.Inc()
						g.Set(int64(i))
						h.Observe(0.002)
					}
				}(w)
			}
			wg.Wait()
			want := int64(workers * perWorker)
			if got := r.Counter("gsb_runs_total", "").Value(); got != want {
				t.Fatalf("counter = %d, want %d", got, want)
			}
			h := r.Histogram("gsb_checkpoint_write_seconds", "", nil)
			if h.Count() != want {
				t.Fatalf("histogram count = %d, want %d", h.Count(), want)
			}
			if wantSum := 0.002 * float64(want); h.Sum() < wantSum*0.999 || h.Sum() > wantSum*1.001 {
				t.Fatalf("histogram sum = %g, want ~%g", h.Sum(), wantSum)
			}
		})
	}
}

// TestHotPathZeroAllocs pins the publishing operations at zero
// allocations: these run once per engine run (>10^5/sec), so any
// allocation here would show up in the gsbbench allocs gauge.
func TestHotPathZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(2) }); n != 0 {
		t.Fatalf("counter ops allocate %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-1) }); n != 0 {
		t.Fatalf("gauge ops allocate %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Fatalf("histogram observe allocates %v/op, want 0", n)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting counter name as gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestWritePrometheus is a golden test for the text exposition rendering.
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("gsb_runs_total", "Runs executed.").Add(42)
	r.Gauge("gsb_frontier_depth", "Pending frontier prefixes.").Set(7)
	h := r.Histogram("gsb_checkpoint_write_seconds", "Checkpoint write latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP gsb_runs_total Runs executed.
# TYPE gsb_runs_total counter
gsb_runs_total 42
# HELP gsb_frontier_depth Pending frontier prefixes.
# TYPE gsb_frontier_depth gauge
gsb_frontier_depth 7
# HELP gsb_checkpoint_write_seconds Checkpoint write latency.
# TYPE gsb_checkpoint_write_seconds histogram
gsb_checkpoint_write_seconds_bucket{le="0.01"} 1
gsb_checkpoint_write_seconds_bucket{le="0.1"} 2
gsb_checkpoint_write_seconds_bucket{le="+Inf"} 3
gsb_checkpoint_write_seconds_sum 0.555
gsb_checkpoint_write_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus output mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotRestoreRoundTrip checks the checkpoint path: snapshot →
// JSON → restore into a fresh registry reproduces every total, and a
// second restore doubles counters (restore adds, making resumed lives
// cumulative) while gauges stay set.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := New()
	r.Counter("gsb_runs_total", "").Add(100)
	r.Gauge("gsb_frontier_depth", "").Set(9)
	h := r.Histogram("gsb_checkpoint_write_seconds", "", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}

	fresh := New()
	fresh.Restore(snap)
	if got := fresh.Counter("gsb_runs_total", "").Value(); got != 100 {
		t.Fatalf("restored counter = %d, want 100", got)
	}
	if got := fresh.Gauge("gsb_frontier_depth", "").Value(); got != 9 {
		t.Fatalf("restored gauge = %d, want 9", got)
	}
	h2 := fresh.Histogram("gsb_checkpoint_write_seconds", "", nil)
	if h2.Count() != 2 || h2.Sum() != 0.055 {
		t.Fatalf("restored histogram = (%d, %g), want (2, 0.055)", h2.Count(), h2.Sum())
	}

	fresh.Restore(snap)
	if got := fresh.Counter("gsb_runs_total", "").Value(); got != 200 {
		t.Fatalf("double-restored counter = %d, want 200 (restore must add)", got)
	}
	if got := fresh.Gauge("gsb_frontier_depth", "").Value(); got != 9 {
		t.Fatalf("double-restored gauge = %d, want 9 (restore must set)", got)
	}
}

// TestSnapshotAdd checks shard-merge summing.
func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{
		Counters:   map[string]int64{"gsb_runs_total": 10, "gsb_steals_total": 1},
		Gauges:     map[string]int64{"gsb_frontier_depth": 3},
		Histograms: map[string]HistogramSnapshot{"h": {Bounds: []float64{1}, Counts: []int64{2, 0}, Sum: 0.5, Count: 2}},
	}
	b := Snapshot{
		Counters:   map[string]int64{"gsb_runs_total": 5},
		Gauges:     map[string]int64{"gsb_frontier_depth": 8},
		Histograms: map[string]HistogramSnapshot{"h": {Bounds: []float64{1}, Counts: []int64{1, 1}, Sum: 2.5, Count: 2}},
	}
	sum := a.Add(b)
	if sum.Counters["gsb_runs_total"] != 15 || sum.Counters["gsb_steals_total"] != 1 {
		t.Fatalf("counters = %v", sum.Counters)
	}
	if sum.Gauges["gsb_frontier_depth"] != 8 {
		t.Fatalf("gauge merge = %d, want 8 (other wins)", sum.Gauges["gsb_frontier_depth"])
	}
	h := sum.Histograms["h"]
	if h.Count != 4 || h.Sum != 3.0 || h.Counts[0] != 3 || h.Counts[1] != 1 {
		t.Fatalf("histogram merge = %+v", h)
	}
}

// TestSnapshotOfEmptyRegistry ensures an empty snapshot marshals to {}
// and restores as a no-op.
func TestSnapshotOfEmptyRegistry(t *testing.T) {
	raw, err := json.Marshal(New().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "{}" {
		t.Fatalf("empty snapshot = %s, want {}", raw)
	}
	New().Restore(Snapshot{})
}
