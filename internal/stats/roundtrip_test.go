package stats

import (
	"testing"

	"repro/internal/lint"
)

// TestCheckpointStateRoundTrips: see the statefield analyzer
// (internal/lint) — every exported field of the //gsb:serialized structs
// must survive an encode/decode cycle.
func TestCheckpointStateRoundTrips(t *testing.T) {
	for _, v := range []any{
		&Snapshot{},
		&HistogramSnapshot{},
	} {
		if err := lint.RoundTripJSON(v); err != nil {
			t.Error(err)
		}
	}
}
