package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/stats"
)

// testSubmission is the standing fleet workload: a registry protocol
// with enough schedules that a shard spans many checkpoint uploads, so
// a kill always lands mid-flight.
func testSubmission(shards int) Submission {
	return Submission{
		Schema: Schema, Protocol: "slot-renaming", N: 4, Mode: "por",
		Seed: 1, Shards: shards, CheckpointEvery: 100,
	}
}

// testCoordinator spins up a coordinator with test-speed timeouts and an
// HTTP server in front of it.
func testCoordinator(t *testing.T) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		DataDir:          t.TempDir(),
		HeartbeatTimeout: 500 * time.Millisecond,
		StaleCheckpoint:  30 * time.Second,
		ReconcileEvery:   25 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, srv
}

// testWorker starts a worker against the server and returns it plus a
// done channel carrying Run's error.
func testWorker(t *testing.T, ctx context.Context, srv *httptest.Server, name string) (*Worker, <-chan error) {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: srv.URL, Name: name, WorkDir: t.TempDir(),
		PollEvery: 20 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return w, done
}

// waitFleet polls the coordinator until cond holds or the deadline
// passes.
func waitFleet(t *testing.T, c *Coordinator, what string, cond func(FleetStatus) bool) FleetStatus {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		st := c.status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			raw, _ := json.Marshal(st)
			t.Fatalf("timed out waiting for %s; fleet: %s", what, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// localShardReports runs the submission's shards uninterrupted in
// process and merges them — the reference the fleet's merged report must
// equal exactly.
func localMergedReference(t *testing.T, sub Submission) campaign.Report {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, sub.Shards)
	for s := 0; s < sub.Shards; s++ {
		paths[s] = filepath.Join(dir, fmt.Sprintf("shard%d.ckpt", s))
		cfg, err := sub.config(s, paths[s])
		if err != nil {
			t.Fatal(err)
		}
		cfg.Observer = campaign.NewObserver()
		// Checkpoint rarely: the interval is an execution detail outside
		// the options hash, and the reference needs no kill-resilience.
		cfg.CheckpointEvery = 100000
		if _, err := campaign.Start(context.Background(), cfg); err != nil {
			t.Fatalf("reference shard %d: %v", s, err)
		}
	}
	cfg, err := sub.config(0, paths[0])
	if err != nil {
		t.Fatal(err)
	}
	rep, verdict := campaign.Merge(context.Background(), cfg, paths)
	if verdict != nil {
		t.Fatalf("reference merge: %v", verdict)
	}
	return rep
}

// unshardedReference runs the whole campaign as one uninterrupted
// single-process shard.
func unshardedReference(t *testing.T, sub Submission) campaign.Report {
	t.Helper()
	ref := sub
	ref.Shards = 1
	cfg, err := ref.config(0, filepath.Join(t.TempDir(), "ref.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = campaign.NewObserver()
	cfg.CheckpointEvery = 100000
	rep, verr := campaign.Start(context.Background(), cfg)
	if verr != nil {
		t.Fatalf("unsharded reference: %v", verr)
	}
	return rep
}

// stripExecution blanks the fields that legitimately differ between two
// exact-equal campaigns: sharding geometry, checkpoint bookkeeping, and
// the stats snapshot (whose deterministic counters are compared
// separately — the full snapshot also carries wall-clock histograms and
// scheduling-dependent counters like work steals).
func stripExecution(rep campaign.Report) campaign.Report {
	rep.Shard, rep.Of, rep.Checkpoints = 0, 0, 0
	rep.Stats = nil
	return rep
}

func reportJSON(t *testing.T, rep campaign.Report) string {
	t.Helper()
	b, err := json.Marshal(stripExecution(rep))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// deterministicCounters picks the engine counters that are exact across
// process lives and re-deals: runs, verified schedules, distinct
// classes.
func deterministicCounters(s *stats.Snapshot) map[string]int64 {
	out := map[string]int64{}
	if s == nil {
		return out
	}
	for _, name := range []string{sched.MetricRuns, sched.MetricSchedules, sample.MetricClasses} {
		out[name] = s.Counters[name]
	}
	return out
}

// TestFleetKillDifferential is the fleet's acceptance differential: a
// 3-shard campaign on two workers, one worker hard-killed mid-shard (no
// release, no final upload — the coordinator only notices the missing
// heartbeats), the shard re-dealt and resumed from its last uploaded
// checkpoint. The merged report must equal BOTH the uninterrupted
// single-process run and an uninterrupted local 3-shard merge — verdict,
// schedule count, classes, and the deterministic cumulative counters —
// proving the re-dealt shard's pre-crash runs were neither lost nor
// counted twice.
func TestFleetKillDifferential(t *testing.T) {
	sub := testSubmission(3)
	c, srv := testCoordinator(t)
	resp, err := c.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	victim, victimDone := testWorker(t, ctx, srv, "victim")
	_, survivorDone := testWorker(t, ctx, srv, "survivor")

	// Kill the victim once it has uploaded a few checkpoints of some
	// still-unfinished shard: a death that strands real progress.
	var killedRuns int64
	var killedShard int
	waitFleet(t, c, "victim mid-shard", func(st FleetStatus) bool {
		for _, cs := range st.Campaigns {
			for _, sh := range cs.Shards {
				if sh.Worker == "victim" && sh.State == "running" && sh.Runs >= 150 && !sh.Done {
					killedRuns, killedShard = sh.Runs, sh.Shard
					return true
				}
			}
		}
		return false
	})
	victim.Kill()
	t.Logf("killed victim at %d uploaded runs on shard %d", killedRuns, killedShard)
	if err := <-victimDone; err != nil {
		t.Fatalf("killed worker Run: %v", err)
	}

	final := waitFleet(t, c, "campaign done", func(st FleetStatus) bool {
		return len(st.Campaigns) == 1 && (st.Campaigns[0].State == "done" || st.Campaigns[0].State == "failed")
	})
	cs := final.Campaigns[0]
	if cs.State != "done" || cs.Report == nil {
		t.Fatalf("campaign %s ended %q (error %q), want done", resp.ID, cs.State, cs.Error)
	}
	if cs.Redeals < 1 {
		t.Errorf("campaign finished with %d redeals, want >= 1 (the kill must have forced one)", cs.Redeals)
	}
	if got := cs.Shards[killedShard].Runs; got <= killedRuns {
		t.Errorf("killed shard %d ended at %d runs, want > %d (must resume past the kill point)", killedShard, got, killedRuns)
	}

	// Differential 1: against the uninterrupted single-process run.
	unsharded := unshardedReference(t, sub)
	if got, want := reportJSON(t, *cs.Report), reportJSON(t, unsharded); got != want {
		t.Errorf("fleet report != unsharded single-process reference\nfleet: %s\n  ref: %s", got, want)
	}
	// Differential 2: against an uninterrupted local 3-shard merge,
	// including the deterministic cumulative counters — equal counters
	// mean the re-dealt shard's pre-crash work was counted exactly once.
	local := localMergedReference(t, sub)
	if got, want := reportJSON(t, *cs.Report), reportJSON(t, local); got != want {
		t.Errorf("fleet report != local 3-shard merge\nfleet: %s\n  ref: %s", got, want)
	}
	gotC, wantC := deterministicCounters(cs.Report.Stats), deterministicCounters(local.Stats)
	for name, want := range wantC {
		if gotC[name] != want {
			t.Errorf("merged stats %s = %d, reference %d (re-deal double-count or loss)", name, gotC[name], want)
		}
	}

	cancel()
	<-survivorDone
}

// TestFleetDrain: SIGTERM semantics. Cancelling a worker's context
// pauses its shard at the next checkpoint, uploads the paused snapshot,
// releases the shard for immediate re-deal, and deregisters. A second
// worker then finishes the campaign; nothing is lost or repeated.
func TestFleetDrain(t *testing.T) {
	sub := Submission{
		Schema: Schema, Protocol: "wsb", N: 4, Mode: "exhaustive",
		Seed: 1, Shards: 1, CheckpointEvery: 50,
	}
	c, srv := testCoordinator(t)
	if _, err := c.Submit(sub); err != nil {
		t.Fatal(err)
	}

	ctx1, drain := context.WithCancel(context.Background())
	_, done1 := testWorker(t, ctx1, srv, "draining")
	waitFleet(t, c, "first checkpoint upload", func(st FleetStatus) bool {
		return st.Runs >= 50
	})
	drain()
	if err := <-done1; err != nil {
		t.Fatalf("drained worker Run: %v", err)
	}
	st := c.status()
	if len(st.Workers) != 0 {
		t.Errorf("drained worker still registered: %+v", st.Workers)
	}
	sh := st.Campaigns[0].Shards[0]
	if sh.State != "queued" {
		t.Errorf("drained shard state %q, want queued (released for immediate re-deal)", sh.State)
	}
	if sh.Runs < 50 {
		t.Errorf("drained shard lost its uploaded progress: %d runs", sh.Runs)
	}
	if sh.Redeals != 1 {
		t.Errorf("drained shard redeals = %d, want 1", sh.Redeals)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, done2 := testWorker(t, ctx2, srv, "finisher")
	final := waitFleet(t, c, "campaign done", func(st FleetStatus) bool {
		return st.Campaigns[0].State == "done"
	})
	want := unshardedReference(t, sub)
	if got := final.Campaigns[0].Report; got == nil || got.Schedules != want.Schedules || got.Violation != want.Violation {
		t.Errorf("drained+resumed report %+v, want schedules=%d violation=%q", got, want.Schedules, want.Violation)
	}
	cancel2()
	<-done2
}

// captureUploads runs one shard locally and keeps the snapshot bytes of
// every checkpoint write — the exact sequence of uploads a worker would
// send.
func captureUploads(t *testing.T, sub Submission, shard int) ([][]byte, []campaign.Header) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cap.ckpt")
	cfg, err := sub.config(shard, path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = campaign.NewObserver()
	var blobs [][]byte
	var heads []campaign.Header
	cfg.OnCheckpoint = func(h campaign.Header) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("capture: %v", err)
			return
		}
		blobs = append(blobs, data)
		heads = append(heads, h)
	}
	if _, err := campaign.Start(context.Background(), cfg); err != nil {
		t.Fatalf("capture campaign: %v", err)
	}
	if len(blobs) < 3 {
		t.Fatalf("capture produced only %d checkpoints; need >= 3", len(blobs))
	}
	return blobs, heads
}

// TestFleetNoDoubleCountOnRedeal pins the latest-snapshot-per-shard
// aggregation rule directly: successive cumulative uploads of one shard
// must never be summed with each other. After uploading checkpoints at
// increasing run counts, the campaign aggregate equals the LAST upload's
// counters, not their sum; and an upload that would regress progress —
// the one failure mode that could double-count, a zombie replaying an
// old snapshot — is rejected.
func TestFleetNoDoubleCountOnRedeal(t *testing.T) {
	sub := Submission{
		Schema: Schema, Protocol: "wsb", N: 4, Mode: "exhaustive",
		Seed: 1, Shards: 1, CheckpointEvery: 50,
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	blobs, heads := captureUploads(t, sub, 0)

	c, _ := testCoordinator(t)
	resp, err := c.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	// Operator imports (no worker id): allowed while the shard is
	// unowned — this is the `gsbfleet upload` path.
	for i, blob := range blobs[:3] {
		if _, err := c.upload(resp.ID, 0, UploadRequest{Schema: Schema, Snapshot: blob}); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	st := c.status()
	agg := st.Campaigns[0].Runs
	last := heads[2].Runs
	var sum int64
	for _, h := range heads[:3] {
		sum += h.Runs
	}
	if agg != last {
		t.Errorf("aggregate runs = %d, want latest upload's %d (sum of uploads would be %d)", agg, last, sum)
	}
	if agg == sum && sum != last {
		t.Errorf("aggregate equals the sum of uploads (%d): re-dealt shards double-count", sum)
	}

	// Replaying an older snapshot must be rejected, not re-counted.
	_, err = c.upload(resp.ID, 0, UploadRequest{Schema: Schema, Snapshot: blobs[0]})
	var he *httpError
	if !errors.As(err, &he) || he.code != 409 {
		t.Errorf("regressing upload: got %v, want a 409 conflict", err)
	}
	if got := c.status().Campaigns[0].Runs; got != last {
		t.Errorf("aggregate moved to %d after a rejected upload, want %d", got, last)
	}
}

// TestFleetUploadFences: every invalid upload is rejected with the right
// status and mutates nothing.
func TestFleetUploadFences(t *testing.T) {
	sub := Submission{
		Schema: Schema, Protocol: "wsb", N: 4, Mode: "exhaustive",
		Seed: 1, Shards: 1, CheckpointEvery: 50,
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	blobs, _ := captureUploads(t, sub, 0)
	good := blobs[0]

	// A snapshot from a different campaign (same protocol, different
	// seed => different options hash).
	otherSub := sub
	otherSub.Seed = 99
	if err := otherSub.Validate(); err != nil {
		t.Fatal(err)
	}
	otherBlobs, _ := captureUploads(t, otherSub, 0)

	c, _ := testCoordinator(t)
	resp, err := c.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-edit the header: bump the first digit in the header line, so
	// it stays valid JSON but no longer matches its own hash.
	tamperedHeader := append([]byte(nil), good...)
	headerEnd := 0
	for i, b := range tamperedHeader {
		if b == '\n' {
			headerEnd = i
			break
		}
	}
	digitAt := -1
	for i := 0; i < headerEnd; i++ {
		if b := tamperedHeader[i]; b >= '0' && b <= '9' {
			digitAt = i
			break
		}
	}
	if digitAt < 0 {
		t.Fatal("no digit in snapshot header line to tamper with")
	}
	if tamperedHeader[digitAt] == '9' {
		tamperedHeader[digitAt] = '8'
	} else {
		tamperedHeader[digitAt]++
	}

	// Corrupt the payload: a NUL in the middle breaks its JSON.
	corruptPayload := append([]byte(nil), good...)
	corruptPayload[headerEnd+(len(corruptPayload)-headerEnd)/2] = 0x00

	cases := []struct {
		name     string
		id       string
		shard    int
		req      UploadRequest
		wantCode int
	}{
		{"tampered header", resp.ID, 0, UploadRequest{Schema: Schema, Snapshot: tamperedHeader}, 400},
		{"corrupt payload", resp.ID, 0, UploadRequest{Schema: Schema, Snapshot: corruptPayload}, 400},
		{"truncated blob", resp.ID, 0, UploadRequest{Schema: Schema, Snapshot: good[:len(good)/3]}, 400},
		{"wrong campaign hash", resp.ID, 0, UploadRequest{Schema: Schema, Snapshot: otherBlobs[0]}, 400},
		{"unknown campaign", "c9999", 0, UploadRequest{Schema: Schema, Snapshot: good}, 404},
		{"shard out of range", resp.ID, 5, UploadRequest{Schema: Schema, Snapshot: good}, 404},
		{"stale owner", resp.ID, 0, UploadRequest{Schema: Schema, WorkerID: "w9999", Snapshot: good}, 409},
	}
	for _, tc := range cases {
		_, err := c.upload(tc.id, tc.shard, tc.req)
		var he *httpError
		if !errors.As(err, &he) || he.code != tc.wantCode {
			t.Errorf("%s: got %v, want HTTP %d", tc.name, err, tc.wantCode)
		}
	}
	if got := c.status().Campaigns[0].Runs; got != 0 {
		t.Errorf("rejected uploads changed the aggregate to %d runs, want 0", got)
	}
	if got := c.reg.Counter(MetricUploadsRejected, "").Value(); got != int64(len(cases)) {
		t.Errorf("%s = %d, want %d", MetricUploadsRejected, got, len(cases))
	}

	// The valid upload still lands after all that.
	if _, err := c.upload(resp.ID, 0, UploadRequest{Schema: Schema, Snapshot: good}); err != nil {
		t.Errorf("valid upload after rejections: %v", err)
	}
}

// TestFleetCoordinatorAnchoredRate: the campaign rate is measured over
// the aggregate cumulative run count at the coordinator, so a re-deal
// (which never decreases the aggregate) does not reset it — unlike a
// process-local observer, whose rate base restarts with each process
// life.
func TestFleetCoordinatorAnchoredRate(t *testing.T) {
	sub := Submission{
		Schema: Schema, Protocol: "wsb", N: 4, Mode: "walk",
		Runs: 100000, Seed: 1, Shards: 1, CheckpointEvery: 1000,
	}
	c, _ := testCoordinator(t)
	c.Close() // drive reconcile by hand
	resp, err := c.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	c.mu.Lock()
	cs := c.campaigns[resp.ID]
	c.mu.Unlock()

	c.reconcile(t0) // anchors the base at 0 runs
	setRuns := func(runs int64) {
		c.mu.Lock()
		cs.shards[0].header.Runs = runs
		c.mu.Unlock()
	}
	setRuns(10000)
	c.reconcile(t0.Add(10 * time.Second))
	if got := cs.runsPerSec; got < 999 || got > 1001 {
		t.Fatalf("rate after first window = %.1f runs/s, want ~1000", got)
	}

	// A worker dies and the shard is re-dealt: the aggregate holds (the
	// latest snapshot survives), and the next window's rate comes from
	// the same anchor — no reset to zero, no ETA spike.
	c.mu.Lock()
	cs.shards[0].redeals++
	c.mu.Unlock()
	setRuns(20000)
	c.reconcile(t0.Add(20 * time.Second))
	if got := cs.runsPerSec; got < 999 || got > 1001 {
		t.Errorf("rate across a re-deal = %.1f runs/s, want ~1000 (rate must not re-anchor)", got)
	}

	c.mu.Lock()
	st := c.campaignStatusLocked(cs, t0.Add(20*time.Second))
	c.mu.Unlock()
	if st.TotalRuns != 100000 {
		t.Fatalf("TotalRuns = %d, want 100000", st.TotalRuns)
	}
	wantETA := float64(100000-20000) / 1000
	if st.ETASec < wantETA-1 || st.ETASec > wantETA+1 {
		t.Errorf("ETA = %.1fs, want ~%.1fs ((total-done)/rate from the coordinator anchor)", st.ETASec, wantETA)
	}
}

// TestSubmissionValidate: the single validation gate rejects malformed
// submissions with specific errors and normalizes defaults.
func TestSubmissionValidate(t *testing.T) {
	valid := func() Submission {
		return Submission{Schema: Schema, Protocol: "wsb", N: 4, Mode: "exhaustive", Shards: 2}
	}
	if err := (&Submission{Protocol: "wsb", N: 4, Mode: "exhaustive"}).Validate(); err != nil {
		t.Errorf("schema-less submission rejected: %v", err)
	}
	s := valid()
	s.Shards = 0
	if err := s.Validate(); err != nil || s.Shards != 1 {
		t.Errorf("shards=0 should normalize to 1, got shards=%d err=%v", s.Shards, err)
	}
	bad := []struct {
		name string
		mut  func(*Submission)
	}{
		{"wrong schema", func(s *Submission) { s.Schema = "gsbfleet/v0" }},
		{"n too small", func(s *Submission) { s.N = 1 }},
		{"negative shards", func(s *Submission) { s.Shards = -1 }},
		{"negative checkpoint interval", func(s *Submission) { s.CheckpointEvery = -5 }},
		{"unknown protocol", func(s *Submission) { s.Protocol = "nope" }},
		{"unknown mode", func(s *Submission) { s.Mode = "bogus" }},
		{"unknown model", func(s *Submission) { s.Model = "nope" }},
		{"unknown adversary", func(s *Submission) { s.Adversary = "nope"; s.Mode = "crash"; s.Runs = 10 }},
		{"adversary outside crash mode", func(s *Submission) { s.Adversary = "uniform-crash" }},
		{"sampling without runs", func(s *Submission) { s.Mode = "walk" }},
	}
	for _, tc := range bad {
		s := valid()
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: submission validated, want an error", tc.name)
		}
	}
}
