package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/timeline"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	// Required.
	Coordinator string
	// Name is the worker's self-chosen label (default: hostname).
	Name string
	// WorkDir is the scratch directory for shard snapshots while they
	// run locally. Required. The authoritative copies live on the
	// coordinator; this dir is disposable.
	WorkDir string
	// PollEvery is the lease-poll interval while the queue is empty
	// (default 500ms).
	PollEvery time.Duration
	// Logf, when set, receives worker event logs.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests inject a short timeout).
	Client *http.Client
}

func (c *WorkerConfig) normalize() error {
	if c.Coordinator == "" {
		return fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if c.WorkDir == "" {
		return fmt.Errorf("fleet: worker needs a work dir")
	}
	if c.Name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		c.Name = host
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return nil
}

// errAbandoned marks a run cut short because the coordinator fenced this
// worker off its shard (the shard was re-dealt while we ran — a zombie's
// view). The worker discards the run: nothing to release or fail.
var errAbandoned = errors.New("fleet: shard re-dealt to another worker; abandoning")

// Worker is one fleet agent: it registers with the coordinator, leases
// shards, runs them through campaign.Start/Resume, uploads the snapshot
// after every checkpoint write, and heartbeats in the background. Cancel
// the context passed to Run to drain: the in-flight shard pauses at its
// next checkpoint, the final snapshot is uploaded, the shard is released
// for immediate re-deal, and Run returns.
type Worker struct {
	cfg WorkerConfig

	id           string
	heartbeatSec float64

	// killed simulates a SIGKILL for tests: every outbound request is
	// suppressed from the instant it is set, so the coordinator can
	// learn of the death only by missed heartbeats.
	killed   atomic.Bool
	hardStop context.CancelFunc
	hardCtx  context.Context

	// abandon cancels the in-flight run when an upload is fenced (409).
	mu      sync.Mutex
	abandon context.CancelFunc
}

// NewWorker creates a worker; Run does the registering.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.WorkDir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: work dir: %w", err)
	}
	return &Worker{cfg: cfg}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Kill hard-stops the worker as a crash would: all outbound requests —
// uploads, heartbeats, release — are suppressed immediately and the
// in-flight campaign is cancelled. The coordinator finds out the way it
// would for a real SIGKILL: heartbeats stop arriving, the timeout
// expires, and the shard is re-dealt from its last uploaded checkpoint.
// Tests use it to produce worker deaths at exact points.
func (w *Worker) Kill() {
	w.killed.Store(true)
	if w.hardStop != nil {
		w.hardStop()
	}
}

// Run is the worker's whole life: register, heartbeat, lease/run until
// ctx is cancelled, then drain. The returned error is nil after a clean
// drain or kill.
func (w *Worker) Run(ctx context.Context) error {
	w.hardCtx, w.hardStop = context.WithCancel(ctx)
	defer w.hardStop()

	var reg RegisterResponse
	if err := w.post("/v1/workers", RegisterRequest{Schema: Schema, Name: w.cfg.Name}, &reg); err != nil {
		return err
	}
	w.id = reg.WorkerID
	w.heartbeatSec = reg.HeartbeatSec
	w.logf("fleet: worker %s registered as %s (heartbeat every %.1fs)", reg.Name, reg.WorkerID, reg.HeartbeatSec)

	// The heartbeat loop outlives ctx on purpose: a graceful drain
	// cancels ctx but the in-flight campaign still needs to reach its
	// next checkpoint, upload, and release — the worker must stay alive
	// in the coordinator's eyes for that whole window. Only Run's return
	// (or a kill, which suppresses all sends anyway) stops the beats.
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(hbStop, hbDone)
	defer func() { close(hbStop); <-hbDone }()

	for {
		if w.killed.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			// Drain complete: the last task (if any) already paused,
			// uploaded and released below before the loop came back here.
			w.deregister()
			return nil
		default:
		}
		task, ok, err := w.lease()
		if err != nil {
			if !w.killed.Load() && ctx.Err() == nil {
				w.logf("fleet: lease failed: %v", err)
				sleepCtx(ctx, w.cfg.PollEvery)
			}
			continue
		}
		if !ok {
			sleepCtx(ctx, w.cfg.PollEvery)
			continue
		}
		w.runTask(ctx, task)
	}
}

// heartbeatLoop beats until Run returns or the worker is killed.
func (w *Worker) heartbeatLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	interval := time.Duration(w.heartbeatSec * float64(time.Second))
	if interval <= 0 {
		interval = 3 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if w.killed.Load() {
				return
			}
			var resp HeartbeatResponse
			if err := w.post("/v1/workers/"+w.id+"/heartbeat", struct{}{}, &resp); err != nil {
				w.logf("fleet: heartbeat failed: %v", err)
			}
		}
	}
}

// lease asks for a task; ok is false on an empty queue (204).
func (w *Worker) lease() (Task, bool, error) {
	resp, err := w.do("POST", "/v1/workers/"+w.id+"/lease", struct{}{})
	if err != nil {
		return Task{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return Task{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return Task{}, false, decodeAPIError(resp)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return Task{}, false, fmt.Errorf("fleet: lease response: %w", err)
	}
	return lr.Task, true, nil
}

// runTask runs one dealt shard to completion, pause, or death.
func (w *Worker) runTask(ctx context.Context, task Task) {
	path := filepath.Join(w.cfg.WorkDir, fmt.Sprintf("%s-shard%d.ckpt", task.CampaignID, task.Shard))
	cfg, err := task.Submission.config(task.Shard, path)
	if err != nil {
		w.failTask(task, err.Error())
		return
	}
	resume := len(task.Snapshot) > 0
	if resume {
		// Re-seed the local disk from the coordinator's authoritative
		// copy: the previous owner's scratch files died with it.
		if err := atomicWrite(path, task.Snapshot); err != nil {
			w.failTask(task, err.Error())
			return
		}
		side := timeline.SidecarPath(path)
		if len(task.Timeline) > 0 {
			if err := atomicWrite(side, task.Timeline); err != nil {
				w.failTask(task, err.Error())
				return
			}
		} else {
			os.Remove(side)
		}
	} else {
		// A fresh deal must not trip over scratch left by an earlier
		// unrelated task with a recycled campaign id.
		cfg.Force = true
		os.Remove(timeline.SidecarPath(path))
	}

	runCtx, cancelRun := context.WithCancel(w.hardCtx)
	defer cancelRun()
	w.mu.Lock()
	w.abandon = cancelRun
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.abandon = nil
		w.mu.Unlock()
	}()

	abandoned := false
	// The campaign calls OnCheckpoint after EVERY snapshot write — the
	// periodic ones, the pause-on-cancel one, and the final one carrying
	// the shard result — so uploading here is all the coordinator needs
	// to track progress, accept the drain handoff, and detect shard
	// completion.
	cfg.Observer = campaign.NewObserver()
	cfg.OnCheckpoint = func(h campaign.Header) {
		if w.killed.Load() || abandoned {
			return
		}
		if err := w.uploadSnapshot(task, path); err != nil {
			var fence *httpError
			if errors.As(err, &fence) && fence.code == http.StatusConflict {
				w.logf("fleet: campaign %s shard %d: %v", task.CampaignID, task.Shard, errAbandoned)
				abandoned = true
				cancelRun()
				return
			}
			// Transient upload failure: keep running; the next
			// checkpoint retries with strictly more progress.
			w.logf("fleet: upload failed (will retry at next checkpoint): %v", err)
		}
	}

	w.logf("fleet: running campaign %s shard %d/%d (resume=%v)", task.CampaignID, task.Shard, task.Submission.Shards, resume)
	var rep campaign.Report
	if resume {
		rep, err = campaign.Resume(runCtx, cfg)
	} else {
		rep, err = campaign.Start(runCtx, cfg)
	}
	switch {
	case w.killed.Load() || abandoned:
		// Dead workers tell no tales: no release, no fail report.
	case rep.Done:
		// Finished (verified or violation found) — the final snapshot
		// upload already flipped the shard to done; the verdict rides in
		// its header's Result.
		w.logf("fleet: campaign %s shard %d done: %d schedules, violation=%q", task.CampaignID, task.Shard, rep.Schedules, rep.Violation)
	case errors.Is(err, campaign.ErrPaused):
		// Drain: the pause checkpoint was uploaded by OnCheckpoint;
		// hand the shard back so it re-deals immediately.
		w.logf("fleet: campaign %s shard %d paused for drain after %d schedules", task.CampaignID, task.Shard, rep.Schedules)
		w.release(task)
	case err != nil:
		// Terminal engine error a resume cannot fix (exhausted budget,
		// invalid config): report it so the campaign fails loudly
		// instead of re-dealing forever.
		w.failTask(task, err.Error())
	}
}

// uploadSnapshot posts the shard's current snapshot file (and sidecar).
func (w *Worker) uploadSnapshot(task Task, path string) error {
	snap, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	side, err := os.ReadFile(timeline.SidecarPath(path))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("fleet: %w", err)
	}
	var resp UploadResponse
	return w.post(
		fmt.Sprintf("/v1/campaigns/%s/shards/%d/snapshot", task.CampaignID, task.Shard),
		UploadRequest{Schema: Schema, WorkerID: w.id, Snapshot: snap, Timeline: side},
		&resp,
	)
}

func (w *Worker) release(task Task) {
	err := w.post("/v1/workers/"+w.id+"/release",
		ReleaseRequest{Schema: Schema, CampaignID: task.CampaignID, Shard: task.Shard}, &struct {
			Schema string `json:"schema"`
		}{})
	if err != nil {
		w.logf("fleet: release failed (coordinator will re-deal on heartbeat timeout): %v", err)
	}
}

func (w *Worker) failTask(task Task, msg string) {
	err := w.post(
		fmt.Sprintf("/v1/campaigns/%s/shards/%d/fail", task.CampaignID, task.Shard),
		struct {
			Schema   string `json:"schema"`
			WorkerID string `json:"worker_id"`
			Error    string `json:"error"`
		}{Schema, w.id, msg},
		&struct {
			Schema string `json:"schema"`
		}{})
	if err != nil {
		w.logf("fleet: fail report rejected: %v", err)
	}
}

func (w *Worker) deregister() {
	req, err := http.NewRequest("DELETE", w.cfg.Coordinator+"/v1/workers/"+w.id, nil)
	if err != nil {
		return
	}
	if resp, err := w.cfg.Client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// post sends a JSON request and decodes a 2xx JSON response into out.
func (w *Worker) post(path string, in, out any) error {
	resp, err := w.do("POST", path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fleet: response from %s: %w", path, err)
	}
	return nil
}

func (w *Worker) do(method, path string, in any) (*http.Response, error) {
	if w.killed.Load() {
		return nil, fmt.Errorf("fleet: worker killed")
	}
	body, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	req, err := http.NewRequest(method, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return resp, nil
}

// decodeAPIError turns a non-2xx response into an *httpError carrying
// the body's error message (so callers can switch on the status code —
// the 409 fence in particular).
func decodeAPIError(resp *http.Response) error {
	var ae apiError
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
		return &httpError{resp.StatusCode, ae.Error}
	}
	return &httpError{resp.StatusCode, fmt.Sprintf("fleet: coordinator returned %s", resp.Status)}
}

// sleepCtx sleeps d or until ctx is done; reports whether it slept the
// whole interval.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
