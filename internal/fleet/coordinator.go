package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/timeline"
)

// Fleet-level metric names (docs/metrics.md). The engine-layer
// aggregates served on /metrics are the shards' own cumulative counters
// summed from their latest uploaded snapshots; these count the
// coordinator's own control-plane events.
const (
	// MetricRedeals counts shard re-deals: a queued-again shard whose
	// previous owner died, went stale, or drained.
	MetricRedeals = "gsb_fleet_redeals_total"
	// MetricUploads counts accepted snapshot uploads;
	// MetricUploadsRejected counts rejected ones (tampered, stale owner,
	// wrong campaign, regressing progress).
	MetricUploads         = "gsb_fleet_uploads_total"
	MetricUploadsRejected = "gsb_fleet_uploads_rejected_total"
	// MetricWorkers gauges currently registered workers.
	MetricWorkers = "gsb_fleet_workers"
	// MetricShardsQueued/Running/Done gauge the shard queue.
	MetricShardsQueued  = "gsb_fleet_shards_queued"
	MetricShardsRunning = "gsb_fleet_shards_running"
	MetricShardsDone    = "gsb_fleet_shards_done"
)

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// DataDir is where uploaded shard snapshots and sidecars are
	// persisted (one subdirectory per campaign). Required.
	DataDir string
	// HeartbeatTimeout is how long a worker may go silent before it is
	// declared dead and its shard re-dealt (default 10s). The interval
	// workers are told to heartbeat at is a third of it.
	HeartbeatTimeout time.Duration
	// StaleCheckpoint re-deals a running shard whose last accepted
	// snapshot upload (or deal, if none yet) is older than this, even if
	// its worker still heartbeats — a wedged worker holds a lease but
	// makes no progress (default 2m; <0 disables).
	StaleCheckpoint time.Duration
	// ReconcileEvery is the reconcile-loop tick (default 1s).
	ReconcileEvery time.Duration
	// Logf, when set, receives control-plane event logs.
	Logf func(format string, args ...any)
}

func (c *CoordinatorConfig) normalize() error {
	if c.DataDir == "" {
		return fmt.Errorf("fleet: coordinator needs a data dir")
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.StaleCheckpoint == 0 {
		c.StaleCheckpoint = 2 * time.Minute
	}
	if c.ReconcileEvery <= 0 {
		c.ReconcileEvery = time.Second
	}
	return nil
}

// shardRef addresses one shard of one campaign in the job queue.
type shardRef struct {
	id    string
	shard int
}

// shardState is the coordinator's view of one shard.
type shardState struct {
	state   string // "queued" | "running" | "done" | "failed"
	worker  string // owning worker id while running
	redeals int
	errMsg  string // terminal engine error (failed state)

	// Latest accepted upload: the snapshot blob (what a re-deal hands
	// to the next worker), its sidecar, its header, and the cumulative
	// stats it carries. Aggregations read ONLY these per-shard latest
	// values — never a sum over uploads — which is what keeps a
	// re-dealt shard's pre-crash runs from being counted twice.
	snapshot  []byte
	timeline  []byte
	header    campaign.Header
	stats     *stats.Snapshot
	haveCkpt  bool
	touchedAt time.Time // last accepted upload, or the deal time
}

// campaignState is one submitted campaign.
type campaignState struct {
	id      string
	sub     Submission
	task    string // rendered task spec
	want    campaign.Header
	shards  []*shardState
	dir     string
	merging bool
	done    bool
	report  *campaign.Report
	errMsg  string // merge / shard failure

	// Coordinator-anchored rate: previous aggregate run count and its
	// observation time. Unlike a worker-side observer, this base never
	// resets when a process dies — the aggregate is over cumulative
	// per-shard counters, so the rate and ETA survive re-deals.
	lastRuns   int64
	lastRunsAt time.Time
	runsPerSec float64
}

// workerState is one registered worker session.
type workerState struct {
	id       string
	name     string
	lastBeat time.Time
	owns     *shardRef
	draining bool
}

// Coordinator is the fleet control plane: an http.Handler serving the
// gsbfleet/v1 API plus the aggregated /status, /metrics and /timeline
// endpoints. Create with NewCoordinator, serve its Handler, and Close it
// to stop the reconcile loop.
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string
	workers   map[string]*workerState
	queue     []shardRef
	campSeq   int
	workerSeq int

	reg             *stats.Registry
	redeals         *stats.Counter
	uploads         *stats.Counter
	uploadsRejected *stats.Counter
	workersGauge    *stats.Gauge
	queuedGauge     *stats.Gauge
	runningGauge    *stats.Gauge
	doneGauge       *stats.Gauge

	stop    chan struct{}
	stopped sync.WaitGroup
	mux     *http.ServeMux
}

// NewCoordinator creates a coordinator and starts its reconcile loop.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: data dir: %w", err)
	}
	reg := stats.New()
	c := &Coordinator{
		cfg:       cfg,
		campaigns: map[string]*campaignState{},
		workers:   map[string]*workerState{},
		reg:       reg,
		redeals:   reg.Counter(MetricRedeals, "Shard re-deals after a worker died, went stale, or drained."),
		uploads:   reg.Counter(MetricUploads, "Accepted shard snapshot uploads."),
		uploadsRejected: reg.Counter(MetricUploadsRejected,
			"Rejected shard snapshot uploads (tampered, stale owner, wrong campaign, regressing progress)."),
		workersGauge: reg.Gauge(MetricWorkers, "Currently registered workers."),
		queuedGauge:  reg.Gauge(MetricShardsQueued, "Shards waiting in the job queue."),
		runningGauge: reg.Gauge(MetricShardsRunning, "Shards currently leased to a worker."),
		doneGauge:    reg.Gauge(MetricShardsDone, "Shards completed."),
		stop:         make(chan struct{}),
	}
	c.buildMux()
	c.stopped.Add(1)
	go c.reconcileLoop()
	return c, nil
}

// Close stops the reconcile loop. In-flight HTTP requests finish.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.stopped.Wait()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// reconcileLoop periodically expires dead workers, re-deals stale
// shards, refreshes the rate anchors and triggers merges.
func (c *Coordinator) reconcileLoop() {
	defer c.stopped.Done()
	t := time.NewTicker(c.cfg.ReconcileEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.reconcile(time.Now())
		}
	}
}

// reconcile is one pass of the control loop.
func (c *Coordinator) reconcile(now time.Time) {
	c.mu.Lock()
	for id, w := range c.workers {
		if now.Sub(w.lastBeat) > c.cfg.HeartbeatTimeout {
			c.logf("fleet: worker %s (%s) missed heartbeats for %s, declaring dead", w.name, id, now.Sub(w.lastBeat).Round(time.Millisecond))
			c.dropWorkerLocked(w, "died")
		}
	}
	if c.cfg.StaleCheckpoint > 0 {
		for _, id := range c.order {
			cs := c.campaigns[id]
			for i, sh := range cs.shards {
				if sh.state == "running" && now.Sub(sh.touchedAt) > c.cfg.StaleCheckpoint {
					c.logf("fleet: campaign %s shard %d checkpoint is stale (%s), re-dealing", id, i, now.Sub(sh.touchedAt).Round(time.Millisecond))
					c.requeueShardLocked(cs, i, "stale")
				}
			}
		}
	}
	for _, id := range c.order {
		c.refreshRateLocked(c.campaigns[id], now)
	}
	c.refreshGaugesLocked()
	merges := c.collectMergesLocked()
	c.mu.Unlock()
	for _, id := range merges {
		c.merge(id)
	}
}

// dropWorkerLocked removes a worker session and re-queues its shard.
func (c *Coordinator) dropWorkerLocked(w *workerState, why string) {
	if w.owns != nil {
		if cs, ok := c.campaigns[w.owns.id]; ok {
			c.requeueShardLocked(cs, w.owns.shard, why)
		}
	}
	delete(c.workers, w.id)
}

// requeueShardLocked returns a running shard to the queue (a re-deal:
// the next lease resumes it from its latest uploaded snapshot).
func (c *Coordinator) requeueShardLocked(cs *campaignState, shard int, why string) {
	sh := cs.shards[shard]
	if sh.state != "running" {
		return
	}
	if w, ok := c.workers[sh.worker]; ok && w.owns != nil && w.owns.id == cs.id && w.owns.shard == shard {
		w.owns = nil
	}
	sh.state = "queued"
	sh.worker = ""
	sh.redeals++
	sh.touchedAt = time.Now()
	c.redeals.Inc()
	c.queue = append(c.queue, shardRef{cs.id, shard})
	c.logf("fleet: campaign %s shard %d re-queued (%s, redeal %d, resumes at %d runs)", cs.id, shard, why, sh.redeals, sh.header.Runs)
}

// refreshRateLocked updates the campaign's coordinator-anchored rate
// from the aggregate cumulative run count. The base advances only when
// runs advance, so worker deaths (which never decrease the aggregate —
// it sums latest-per-shard cumulative counters) never reset the rate.
func (c *Coordinator) refreshRateLocked(cs *campaignState, now time.Time) {
	runs := aggregateRunsLocked(cs)
	if cs.lastRunsAt.IsZero() {
		cs.lastRuns, cs.lastRunsAt = runs, now
		return
	}
	dt := now.Sub(cs.lastRunsAt).Seconds()
	if dt <= 0 {
		return
	}
	if runs > cs.lastRuns {
		cs.runsPerSec = float64(runs-cs.lastRuns) / dt
		cs.lastRuns, cs.lastRunsAt = runs, now
	} else if dt > 30 {
		// No progress for a long window: decay the rate so the ETA does
		// not advertise a throughput the fleet no longer has.
		cs.runsPerSec = 0
		cs.lastRunsAt = now
	}
}

func aggregateRunsLocked(cs *campaignState) int64 {
	var runs int64
	for _, sh := range cs.shards {
		runs += sh.header.Runs
	}
	return runs
}

func (c *Coordinator) refreshGaugesLocked() {
	var queued, running, done int64
	for _, cs := range c.campaigns {
		for _, sh := range cs.shards {
			switch sh.state {
			case "queued":
				queued++
			case "running":
				running++
			case "done":
				done++
			}
		}
	}
	c.queuedGauge.Set(queued)
	c.runningGauge.Set(running)
	c.doneGauge.Set(done)
	c.workersGauge.Set(int64(len(c.workers)))
}

// collectMergesLocked flags campaigns whose whole shard set is done and
// whose merge has not started yet.
func (c *Coordinator) collectMergesLocked() []string {
	var ids []string
	for _, id := range c.order {
		cs := c.campaigns[id]
		if cs.done || cs.merging || cs.errMsg != "" {
			continue
		}
		all := true
		for _, sh := range cs.shards {
			if sh.state != "done" {
				all = false
				break
			}
		}
		if all {
			cs.merging = true
			ids = append(ids, id)
		}
	}
	return ids
}

// merge runs the exact shard merge of a finished campaign and stores the
// final report. The heavy counting pass runs outside the lock.
func (c *Coordinator) merge(id string) {
	c.mu.Lock()
	cs := c.campaigns[id]
	paths := make([]string, len(cs.shards))
	for i := range cs.shards {
		paths[i] = c.shardPath(cs, i)
	}
	cfg, err := cs.sub.config(0, paths[0])
	c.mu.Unlock()
	var rep campaign.Report
	var verdict error
	if err == nil {
		rep, verdict = campaign.Merge(context.Background(), cfg, paths)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cs.merging = false
	switch {
	case err != nil:
		cs.errMsg = err.Error()
	case verdict != nil && !rep.Done:
		// Merge itself failed (missing/duplicate shard, hash drift) —
		// operational error, not a campaign verdict.
		cs.errMsg = verdict.Error()
	default:
		cs.done = true
		cs.report = &rep
		c.logf("fleet: campaign %s merged: %d schedules, violation=%q", id, rep.Schedules, rep.Violation)
	}
}

// shardPath is the on-disk home of a shard's latest uploaded snapshot.
func (c *Coordinator) shardPath(cs *campaignState, shard int) string {
	return filepath.Join(cs.dir, fmt.Sprintf("shard%d.ckpt", shard))
}

// persistShard writes a shard's uploaded snapshot (and sidecar) to the
// data dir with the checkpoint layer's atomic rename discipline.
func (c *Coordinator) persistShard(cs *campaignState, shard int, snapshot, sidecar []byte) error {
	path := c.shardPath(cs, shard)
	if err := atomicWrite(path, snapshot); err != nil {
		return err
	}
	if len(sidecar) > 0 {
		if err := atomicWrite(timeline.SidecarPath(path), sidecar); err != nil {
			return err
		}
	}
	return nil
}

func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	return nil
}

// Submit registers a new campaign and queues its shards. It is the
// programmatic form of POST /v1/campaigns.
func (c *Coordinator) Submit(sub Submission) (SubmitResponse, error) {
	if err := sub.Validate(); err != nil {
		return SubmitResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.campSeq++
	id := fmt.Sprintf("c%04d", c.campSeq)
	dir := filepath.Join(c.cfg.DataDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return SubmitResponse{}, fmt.Errorf("fleet: %w", err)
	}
	cfg, err := sub.config(0, filepath.Join(dir, "shard0.ckpt"))
	if err != nil {
		return SubmitResponse{}, err
	}
	want, err := campaign.Identity(cfg)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("fleet: %w", err)
	}
	cs := &campaignState{id: id, sub: sub, task: cfg.Spec.String(), want: want, dir: dir}
	now := time.Now()
	for i := 0; i < sub.Shards; i++ {
		cs.shards = append(cs.shards, &shardState{state: "queued", touchedAt: now})
		c.queue = append(c.queue, shardRef{id, i})
	}
	c.campaigns[id] = cs
	c.order = append(c.order, id)
	c.logf("fleet: campaign %s submitted: %s n=%d mode=%s, %d shards", id, sub.Protocol, sub.N, sub.Mode, sub.Shards)
	return SubmitResponse{Schema: Schema, ID: id, Shards: sub.Shards}, nil
}

// register adds a worker session.
func (c *Coordinator) register(req RegisterRequest) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workerSeq++
	id := fmt.Sprintf("w%04d", c.workerSeq)
	name := req.Name
	if name == "" {
		name = id
	}
	for _, w := range c.workers {
		if w.name == name {
			name = name + "-" + id
			break
		}
	}
	c.workers[id] = &workerState{id: id, name: name, lastBeat: time.Now()}
	c.workersGauge.Set(int64(len(c.workers)))
	c.logf("fleet: worker %s registered as %s", name, id)
	return RegisterResponse{
		Schema: Schema, WorkerID: id, Name: name,
		HeartbeatSec: (c.cfg.HeartbeatTimeout / 3).Seconds(),
	}
}

// lease hands the queue head to a worker; ok is false when the queue is
// empty or the worker is draining.
func (c *Coordinator) lease(workerID string) (Task, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return Task{}, false, fmt.Errorf("fleet: unknown worker %q (register first)", workerID)
	}
	w.lastBeat = time.Now()
	if w.draining || w.owns != nil {
		return Task{}, false, nil
	}
	for len(c.queue) > 0 {
		ref := c.queue[0]
		c.queue = c.queue[1:]
		cs, ok := c.campaigns[ref.id]
		if !ok {
			continue
		}
		sh := cs.shards[ref.shard]
		if sh.state != "queued" {
			continue // completed by an import, or re-queued twice
		}
		sh.state = "running"
		sh.worker = workerID
		sh.touchedAt = time.Now()
		w.owns = &shardRef{ref.id, ref.shard}
		c.logf("fleet: campaign %s shard %d dealt to %s (resume from %d runs)", ref.id, ref.shard, w.name, sh.header.Runs)
		return Task{
			CampaignID: ref.id, Shard: ref.shard, Submission: cs.sub,
			Snapshot: sh.snapshot, Timeline: sh.timeline,
		}, true, nil
	}
	return Task{}, false, nil
}

// heartbeat refreshes a worker's liveness.
func (c *Coordinator) heartbeat(workerID string) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return HeartbeatResponse{}, fmt.Errorf("fleet: unknown worker %q (lease lost; re-register)", workerID)
	}
	w.lastBeat = time.Now()
	return HeartbeatResponse{Schema: Schema, Drain: w.draining}, nil
}

// release returns a draining worker's shard to the queue.
func (c *Coordinator) release(workerID string, req ReleaseRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return fmt.Errorf("fleet: unknown worker %q", workerID)
	}
	cs, ok := c.campaigns[req.CampaignID]
	if !ok {
		return fmt.Errorf("fleet: unknown campaign %q", req.CampaignID)
	}
	if req.Shard < 0 || req.Shard >= len(cs.shards) {
		return fmt.Errorf("fleet: campaign %s has no shard %d", req.CampaignID, req.Shard)
	}
	sh := cs.shards[req.Shard]
	if sh.worker != workerID {
		return nil // already re-dealt; nothing to release
	}
	c.requeueShardLocked(cs, req.Shard, "released by "+w.name)
	return nil
}

// deregister removes a worker session (the drain handshake's last step).
func (c *Coordinator) deregister(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[workerID]; ok {
		c.dropWorkerLocked(w, "deregistered")
		c.workersGauge.Set(int64(len(c.workers)))
	}
}

// failShard records a terminal engine error on a shard (invalid or
// exhausted budget — errors a resume cannot fix), failing the campaign.
func (c *Coordinator) failShard(workerID, campaignID string, shard int, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[campaignID]
	if !ok {
		return fmt.Errorf("fleet: unknown campaign %q", campaignID)
	}
	if shard < 0 || shard >= len(cs.shards) {
		return fmt.Errorf("fleet: campaign %s has no shard %d", campaignID, shard)
	}
	sh := cs.shards[shard]
	if workerID != "" && sh.worker != workerID {
		return fmt.Errorf("fleet: worker %s no longer owns campaign %s shard %d", workerID, campaignID, shard)
	}
	if w, ok := c.workers[sh.worker]; ok {
		w.owns = nil
	}
	sh.state = "failed"
	sh.worker = ""
	sh.errMsg = msg
	if cs.errMsg == "" {
		cs.errMsg = fmt.Sprintf("shard %d failed: %s", shard, msg)
	}
	c.logf("fleet: campaign %s shard %d failed: %s", campaignID, shard, msg)
	return nil
}

// upload validates and accepts a shard snapshot. The fences, in order:
// the campaign and shard must exist; the uploader must own the shard (an
// empty worker id — an operator import — is accepted only while no
// worker does); the blob must decode as a snapshot whose header hash,
// shard index and shard count match the campaign identity; and progress
// must not regress the latest accepted snapshot. Every rejection is
// loud, counted, and changes nothing.
func (c *Coordinator) upload(campaignID string, shard int, req UploadRequest) (UploadResponse, error) {
	h, snapStats, err := campaign.DecodeUploaded(req.Snapshot, fmt.Sprintf("upload for %s shard %d", campaignID, shard))
	if err != nil {
		c.uploadsRejected.Inc()
		return UploadResponse{}, &httpError{http.StatusBadRequest, err.Error()}
	}
	if len(req.Timeline) > 0 {
		if _, terr := timeline.Decode(req.Timeline, "uploaded sidecar"); terr != nil {
			c.uploadsRejected.Inc()
			return UploadResponse{}, &httpError{http.StatusBadRequest, terr.Error()}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[campaignID]
	if !ok {
		c.uploadsRejected.Inc()
		return UploadResponse{}, &httpError{http.StatusNotFound, fmt.Sprintf("fleet: unknown campaign %q", campaignID)}
	}
	if shard < 0 || shard >= len(cs.shards) {
		c.uploadsRejected.Inc()
		return UploadResponse{}, &httpError{http.StatusNotFound, fmt.Sprintf("fleet: campaign %s has no shard %d", campaignID, shard)}
	}
	sh := cs.shards[shard]
	if sh.state == "done" {
		c.uploadsRejected.Inc()
		return UploadResponse{}, &httpError{http.StatusConflict, fmt.Sprintf("fleet: campaign %s shard %d is already done", campaignID, shard)}
	}
	if req.WorkerID != "" {
		if sh.worker != req.WorkerID {
			// The fencing that makes re-deals safe: a zombie worker whose
			// shard moved on gets a conflict, abandons the run, and its
			// stale bytes never land.
			c.uploadsRejected.Inc()
			return UploadResponse{}, &httpError{http.StatusConflict,
				fmt.Sprintf("fleet: worker %s no longer owns campaign %s shard %d", req.WorkerID, campaignID, shard)}
		}
	} else if sh.state == "running" {
		c.uploadsRejected.Inc()
		return UploadResponse{}, &httpError{http.StatusConflict,
			fmt.Sprintf("fleet: campaign %s shard %d is leased to a worker; imports need an idle shard", campaignID, shard)}
	}
	if h.OptionsHash != cs.want.OptionsHash {
		c.uploadsRejected.Inc()
		return UploadResponse{}, &httpError{http.StatusBadRequest,
			fmt.Sprintf("fleet: snapshot hash %s does not match campaign %s (%s): wrong campaign or tampered header", h.OptionsHash, campaignID, cs.want.OptionsHash)}
	}
	if h.Shard != shard || h.Of != cs.sub.Shards {
		c.uploadsRejected.Inc()
		return UploadResponse{}, &httpError{http.StatusBadRequest,
			fmt.Sprintf("fleet: snapshot is shard %d/%d, endpoint is shard %d/%d", h.Shard, h.Of, shard, cs.sub.Shards)}
	}
	if sh.haveCkpt && h.Runs < sh.header.Runs {
		c.uploadsRejected.Inc()
		return UploadResponse{}, &httpError{http.StatusConflict,
			fmt.Sprintf("fleet: snapshot regresses shard %d from %d to %d runs", shard, sh.header.Runs, h.Runs)}
	}
	if err := c.persistShard(cs, shard, req.Snapshot, req.Timeline); err != nil {
		return UploadResponse{}, err
	}
	sh.snapshot = req.Snapshot
	if len(req.Timeline) > 0 {
		sh.timeline = req.Timeline
	}
	sh.header = h
	sh.stats = snapStats
	sh.haveCkpt = true
	sh.touchedAt = time.Now()
	c.uploads.Inc()
	if h.Done {
		sh.state = "done"
		sh.worker = ""
		if req.WorkerID != "" {
			if w, ok := c.workers[req.WorkerID]; ok && w.owns != nil && w.owns.id == campaignID && w.owns.shard == shard {
				w.owns = nil
			}
		}
		c.logf("fleet: campaign %s shard %d done after %d runs", campaignID, shard, h.Runs)
	}
	return UploadResponse{Schema: Schema, Done: h.Done, Runs: h.Runs}, nil
}

// campaignStatusLocked renders one campaign's live view.
func (c *Coordinator) campaignStatusLocked(cs *campaignState, now time.Time) CampaignStatus {
	st := CampaignStatus{
		Schema: Schema, ID: cs.id, Submission: cs.sub, Task: cs.task,
		Done: cs.done, Report: cs.report, Error: cs.errMsg,
	}
	if cs.report != nil {
		st.Violation = cs.report.Violation
	}
	snaps := make([]stats.Snapshot, 0, len(cs.shards))
	running, done, failed := 0, 0, 0
	for i, sh := range cs.shards {
		row := ShardStatus{
			Shard: i, State: sh.state, Runs: sh.header.Runs,
			Done: sh.header.Done, Redeals: sh.redeals, Error: sh.errMsg,
		}
		if w, ok := c.workers[sh.worker]; ok {
			row.Worker = w.name
		}
		if sh.haveCkpt {
			row.UploadAgeSec = now.Sub(sh.touchedAt).Seconds()
			snaps = append(snaps, *orEmpty(sh.stats))
		}
		st.Shards = append(st.Shards, row)
		st.Redeals += sh.redeals
		switch sh.state {
		case "running":
			running++
		case "done":
			done++
		case "failed":
			failed++
		}
	}
	// Aggregate = sum of the LATEST snapshot per shard. Each shard's
	// snapshot is already cumulative across its own process lives, so
	// this equals an uninterrupted run's totals and never double-counts
	// a re-dealt shard's pre-crash work (fleet_test pins this).
	agg := stats.Sum(snaps...)
	st.Runs = aggregateRunsLocked(cs) // header progress, also the rate anchor's input
	st.Schedules = agg.Counter(sched.MetricSchedules)
	st.Classes = agg.Counter(sample.MetricClasses)
	switch cs.sub.Mode {
	case "walk", "pct", "crash":
		st.TotalRuns = int64(cs.sub.Runs)
	}
	st.RunsPerSec = cs.runsPerSec
	if st.TotalRuns > 0 && st.RunsPerSec > 0 && !cs.done {
		if left := st.TotalRuns - st.Runs; left > 0 {
			st.ETASec = float64(left) / st.RunsPerSec
		}
	}
	switch {
	case cs.done:
		st.State = "done"
	case cs.errMsg != "" && cs.report == nil:
		st.State = "failed"
	case cs.merging:
		st.State = "merging"
	case running > 0:
		st.State = "running"
	case done+failed == len(cs.shards):
		st.State = "merging"
	default:
		st.State = "queued"
	}
	return st
}

func orEmpty(s *stats.Snapshot) *stats.Snapshot {
	if s == nil {
		return &stats.Snapshot{}
	}
	return s
}

// status renders the fleet-wide aggregate view.
func (c *Coordinator) status() FleetStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := FleetStatus{Schema: FleetStatusSchema, Workers: []WorkerStatus{}, Campaigns: []CampaignStatus{}}
	names := make([]string, 0, len(c.workers))
	byName := map[string]*workerState{}
	for _, w := range c.workers {
		names = append(names, w.name)
		byName[w.name] = w
	}
	sort.Strings(names)
	for _, name := range names {
		w := byName[name]
		row := WorkerStatus{Name: name, HeartbeatAgeSec: now.Sub(w.lastBeat).Seconds(), Draining: w.draining}
		if w.owns != nil {
			row.Shard = fmt.Sprintf("%s/%d", w.owns.id, w.owns.shard)
		}
		st.Workers = append(st.Workers, row)
	}
	for _, id := range c.order {
		cst := c.campaignStatusLocked(c.campaigns[id], now)
		st.Campaigns = append(st.Campaigns, cst)
		st.Redeals += cst.Redeals
		st.Runs += cst.Runs
		for _, sh := range cst.Shards {
			switch sh.State {
			case "queued":
				st.Queued++
			case "running":
				st.Running++
			case "done":
				st.Done++
			case "failed":
				st.Failed++
			}
		}
	}
	return st
}

// httpError carries a status code through the handler plumbing.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// Handler serves the gsbfleet/v1 API and the fleet observability
// endpoints (GET /status, /metrics, /timeline and the campaign and
// worker routes under /v1/; docs/fleet.md documents every route).
func (c *Coordinator) Handler() http.Handler { return c.mux }

func (c *Coordinator) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var sub Submission
		if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "fleet: submission is not JSON: " + err.Error()})
			return
		}
		resp, err := c.Submit(sub)
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, err.Error()})
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		c.mu.Lock()
		out := make([]CampaignStatus, 0, len(c.order))
		for _, id := range c.order {
			out = append(out, c.campaignStatusLocked(c.campaigns[id], now))
		}
		c.mu.Unlock()
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		cs, ok := c.campaigns[r.PathValue("id")]
		var st CampaignStatus
		if ok {
			st = c.campaignStatusLocked(cs, time.Now())
		}
		c.mu.Unlock()
		if !ok {
			writeErr(w, &httpError{http.StatusNotFound, fmt.Sprintf("fleet: unknown campaign %q", r.PathValue("id"))})
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /v1/campaigns/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		cs, ok := c.campaigns[r.PathValue("id")]
		var st CampaignStatus
		if ok {
			st = c.campaignStatusLocked(cs, time.Now())
		}
		c.mu.Unlock()
		switch {
		case !ok:
			writeErr(w, &httpError{http.StatusNotFound, fmt.Sprintf("fleet: unknown campaign %q", r.PathValue("id"))})
		case st.State == "failed":
			writeJSON(w, st)
		case !st.Done:
			writeErr(w, &httpError{http.StatusConflict, fmt.Sprintf("fleet: campaign %s is not done (%s)", st.ID, st.State)})
		default:
			writeJSON(w, st)
		}
	})
	mux.HandleFunc("GET /v1/campaigns/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		recs, err := c.campaignTimeline(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, recs)
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/shards/{shard}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		shard, err := strconv.Atoi(r.PathValue("shard"))
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "fleet: shard index is not an integer"})
			return
		}
		var req UploadRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "fleet: upload is not JSON: " + err.Error()})
			return
		}
		resp, uerr := c.upload(r.PathValue("id"), shard, req)
		if uerr != nil {
			writeErr(w, uerr)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/shards/{shard}/fail", func(w http.ResponseWriter, r *http.Request) {
		shard, err := strconv.Atoi(r.PathValue("shard"))
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "fleet: shard index is not an integer"})
			return
		}
		var req struct {
			Schema   string `json:"schema"`
			WorkerID string `json:"worker_id"`
			Error    string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "fleet: fail report is not JSON: " + err.Error()})
			return
		}
		if err := c.failShard(req.WorkerID, r.PathValue("id"), shard, req.Error); err != nil {
			writeErr(w, &httpError{http.StatusConflict, err.Error()})
			return
		}
		writeJSON(w, map[string]string{"schema": Schema})
	})
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "fleet: registration is not JSON: " + err.Error()})
			return
		}
		writeJSON(w, c.register(req))
	})
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		resp, err := c.heartbeat(r.PathValue("id"))
		if err != nil {
			writeErr(w, &httpError{http.StatusNotFound, err.Error()})
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/workers/{id}/lease", func(w http.ResponseWriter, r *http.Request) {
		task, ok, err := c.lease(r.PathValue("id"))
		if err != nil {
			writeErr(w, &httpError{http.StatusNotFound, err.Error()})
			return
		}
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, LeaseResponse{Schema: Schema, Task: task})
	})
	mux.HandleFunc("POST /v1/workers/{id}/release", func(w http.ResponseWriter, r *http.Request) {
		var req ReleaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "fleet: release is not JSON: " + err.Error()})
			return
		}
		if err := c.release(r.PathValue("id"), req); err != nil {
			writeErr(w, &httpError{http.StatusNotFound, err.Error()})
			return
		}
		writeJSON(w, map[string]string{"schema": Schema})
	})
	mux.HandleFunc("DELETE /v1/workers/{id}", func(w http.ResponseWriter, r *http.Request) {
		c.deregister(r.PathValue("id"))
		writeJSON(w, map[string]string{"schema": Schema})
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Fleet control-plane metrics first, then the engine counters
		// aggregated from the latest snapshot of every shard, rendered
		// through a scratch registry (restoring into the live fleet
		// registry would double-count across scrapes).
		_ = c.reg.WritePrometheus(w)
		c.mu.Lock()
		snaps := make([]stats.Snapshot, 0)
		for _, cs := range c.campaigns {
			for _, sh := range cs.shards {
				if sh.haveCkpt {
					snaps = append(snaps, *orEmpty(sh.stats))
				}
			}
		}
		c.mu.Unlock()
		scratch := stats.New()
		scratch.Restore(stats.Sum(snaps...))
		_ = scratch.WritePrometheus(w)
	})
	mux.HandleFunc("GET /timeline", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("campaign")
		if id == "" {
			c.mu.Lock()
			if len(c.order) == 1 {
				id = c.order[0]
			}
			n := len(c.order)
			c.mu.Unlock()
			if id == "" {
				writeErr(w, &httpError{http.StatusBadRequest,
					fmt.Sprintf("fleet: /timeline needs ?campaign=ID (%d campaigns submitted)", n)})
				return
			}
		}
		recs, err := c.campaignTimeline(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, recs)
	})
	c.mux = mux
}

// campaignTimeline merges the latest uploaded sidecar of every shard of
// a campaign into one fleet-wide series — the same (index, shard)
// interleaving `gsbcampaign merge -timeline` produces.
func (c *Coordinator) campaignTimeline(id string) ([]timeline.Record, error) {
	c.mu.Lock()
	cs, ok := c.campaigns[id]
	var series [][]timeline.Record
	if ok {
		for i, sh := range cs.shards {
			if len(sh.timeline) == 0 {
				continue
			}
			recs, err := timeline.Decode(sh.timeline, fmt.Sprintf("campaign %s shard %d sidecar", id, i))
			if err != nil {
				c.mu.Unlock()
				return nil, &httpError{http.StatusInternalServerError, err.Error()}
			}
			series = append(series, recs)
		}
	}
	c.mu.Unlock()
	if !ok {
		return nil, &httpError{http.StatusNotFound, fmt.Sprintf("fleet: unknown campaign %q", id)}
	}
	merged, err := timeline.Merge(series...)
	if err != nil {
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	if merged == nil {
		merged = []timeline.Record{}
	}
	return merged, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		code = he.code
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(apiError{Schema: Schema, Error: err.Error()})
}
