// Package fleet turns the coordination-free shard math of
// internal/campaign into a managed verification fleet: a coordinator
// that accepts campaign submissions over an HTTP/JSON API (schema
// gsbfleet/v1), deals shards from a job queue to registered workers,
// collects their periodically uploaded checkpoint snapshots and timeline
// sidecars, re-deals the shard of a dead or stale worker (the
// replacement resumes from the last uploaded checkpoint), and
// auto-merges the finished shard set into the final campaign report —
// which internal/campaign's exact-merge guarantee makes equal to an
// uninterrupted single-process run, no matter how many workers died on
// the way.
//
// The package splits along the classic control-plane line (docs/fleet.md):
//
//   - Coordinator is the state holder: campaigns, shard queue, worker
//     registry, uploaded snapshots, the reconcile loop that detects
//     missed heartbeats and stale checkpoints, and the fleet-level
//     observability surface (/status, /metrics, /timeline) aggregated
//     from the shards' uploaded snapshots.
//   - Worker is the agent: it wraps the campaign.Start/Resume facade,
//     heartbeats, uploads a snapshot after every checkpoint write, and
//     drains gracefully on context cancellation (SIGTERM in the CLI).
//
// Determinism is inherited, not re-proven: every shard is the same
// deterministic computation it would be under `gsbcampaign -shard i/m`,
// checkpoints carry cumulative counters, and the options hash in every
// snapshot header fences uploads from a different campaign. The
// coordinator only ever keeps the latest accepted snapshot per shard, so
// fleet aggregates never double-count a re-dealt shard's pre-crash runs.
package fleet

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/sched"
)

// Schema tags every gsbfleet/v1 API request and response body.
const Schema = "gsbfleet/v1"

// Submission is the body of POST /v1/campaigns: a whole campaign —
// protocol, instance size, verification mode and its options, and how
// many shards to deal it as. It is the fleet-level mirror of the
// gsbcampaign start flags; Validate resolves it against the same
// registries, so a typo is rejected at submission time, before any
// worker sees a task.
type Submission struct {
	Schema   string `json:"schema"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	// Mode is the verification mode: exhaustive | por | por-memo |
	// walk | pct | crash.
	Mode string `json:"mode"`
	// Runs is the sampled/swept run budget (walk, pct, crash modes).
	Runs      int     `json:"runs,omitempty"`
	PCTDepth  int     `json:"pct_depth,omitempty"`
	CrashProb float64 `json:"crash_prob,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Model     string  `json:"model,omitempty"`
	Adversary string  `json:"adversary,omitempty"`
	MaxRuns   int     `json:"max_runs,omitempty"`
	MaxSteps  int     `json:"max_steps,omitempty"`
	// Shards is the number of shards the campaign is dealt as (>= 1).
	Shards int `json:"shards"`
	// CheckpointEvery is the per-shard checkpoint interval in runs
	// (0: the campaign default). Each checkpoint write is also a
	// snapshot upload, so this is the fleet's progress granularity and
	// the most work a dying worker can lose.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Validate resolves the submission against the protocol, mode, model and
// adversary registries and normalizes defaults (Shards 0 -> 1). It is
// the single gate both the CLI and the coordinator use.
func (s *Submission) Validate() error {
	if s.Schema != "" && s.Schema != Schema {
		return fmt.Errorf("fleet: submission schema %q, want %q", s.Schema, Schema)
	}
	if s.N < 2 {
		return fmt.Errorf("fleet: need n >= 2, got %d", s.N)
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Shards < 1 {
		return fmt.Errorf("fleet: need shards >= 1, got %d", s.Shards)
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("fleet: need checkpoint_every >= 0, got %d", s.CheckpointEvery)
	}
	if _, _, err := harness.SelectProtocol(s.Protocol, s.N, s.Seed); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	opts, err := s.options()
	if err != nil {
		return err
	}
	if err := opts.Validate(); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return nil
}

// options maps the submission's mode fields to engine options — the same
// mapping gsbcampaign start applies, kept here so the coordinator and
// every worker derive the identical campaign identity.
func (s *Submission) options() (sched.ExploreOptions, error) {
	opts := sched.ExploreOptions{Seed: s.Seed, MaxRuns: s.MaxRuns, MaxSteps: s.MaxSteps}
	if _, err := sched.MemModelByName(s.Model); err != nil {
		return opts, fmt.Errorf("fleet: %w", err)
	}
	if _, err := sched.AdversaryByName(s.Adversary); err != nil {
		return opts, fmt.Errorf("fleet: %w", err)
	}
	if s.Adversary != "" && s.Mode != "crash" {
		return opts, fmt.Errorf("fleet: adversary %q needs mode crash, got mode %s", s.Adversary, s.Mode)
	}
	opts.Model = s.Model
	opts.Adversary = s.Adversary
	switch s.Mode {
	case "exhaustive":
	case "por":
		opts.Reduction = sched.ReductionSleepSets
	case "por-memo":
		opts.Reduction = sched.ReductionSleepMemo
	case "walk":
		opts.SampleRuns = s.Runs
	case "pct":
		opts.SampleRuns = s.Runs
		opts.SampleMode = sched.SamplePCT
		opts.Depth = s.PCTDepth
	case "crash":
		opts.CrashRuns = s.Runs
		opts.CrashProb = s.CrashProb
	default:
		return opts, fmt.Errorf("fleet: unknown mode %q (want exhaustive, por, por-memo, walk, pct or crash)", s.Mode)
	}
	if (s.Mode == "walk" || s.Mode == "pct" || s.Mode == "crash") && s.Runs <= 0 {
		return opts, fmt.Errorf("fleet: mode %s needs runs > 0", s.Mode)
	}
	return opts, nil
}

// config builds the campaign config of one shard of the submission.
// path is where the shard's snapshot lives on the caller's disk; the
// coordinator and each worker call this with their own paths, and the
// resulting campaign identity (options hash) is identical on both sides
// — the fence every snapshot upload is checked against.
func (s *Submission) config(shard int, path string) (campaign.Config, error) {
	spec, build, err := harness.SelectProtocol(s.Protocol, s.N, s.Seed)
	if err != nil {
		return campaign.Config{}, fmt.Errorf("fleet: %w", err)
	}
	opts, err := s.options()
	if err != nil {
		return campaign.Config{}, err
	}
	return campaign.Config{
		Protocol: s.Protocol, Spec: spec, Opts: opts, Build: build,
		Shard: shard, Of: s.Shards, CheckpointEvery: s.CheckpointEvery,
		Path: path,
	}, nil
}

// SubmitResponse answers POST /v1/campaigns.
type SubmitResponse struct {
	Schema string `json:"schema"`
	// ID is the campaign's fleet-wide identifier (stable across worker
	// deaths; all shard endpoints are keyed by it).
	ID string `json:"id"`
	// Shards echoes the normalized shard count.
	Shards int `json:"shards"`
}

// RegisterRequest is the body of POST /v1/workers.
type RegisterRequest struct {
	Schema string `json:"schema"`
	// Name is the worker's self-chosen label (hostname, container name);
	// the coordinator makes it unique by suffixing when taken.
	Name string `json:"name"`
}

// RegisterResponse answers a worker registration.
type RegisterResponse struct {
	Schema string `json:"schema"`
	// WorkerID authenticates every later heartbeat, lease and upload of
	// this worker session.
	WorkerID string `json:"worker_id"`
	// Name is the (possibly uniquified) registered name.
	Name string `json:"name"`
	// HeartbeatSec is the interval the coordinator expects heartbeats
	// at; missing several in a row marks the worker dead and re-deals
	// its shard.
	HeartbeatSec float64 `json:"heartbeat_sec"`
}

// HeartbeatResponse answers POST /v1/workers/{id}/heartbeat.
type HeartbeatResponse struct {
	Schema string `json:"schema"`
	// Drain asks the worker to finish (or pause and upload) its current
	// shard and exit — the coordinator-initiated graceful shutdown.
	Drain bool `json:"drain,omitempty"`
}

// Task is one shard assignment, the payload of a successful lease.
type Task struct {
	CampaignID string     `json:"campaign_id"`
	Shard      int        `json:"shard"`
	Submission Submission `json:"submission"`
	// Snapshot is the shard's latest uploaded checkpoint when the shard
	// was dealt before (a re-deal after a worker death, or a drained
	// shard): the worker writes it to disk and resumes from it, so no
	// verified run is ever repeated or lost. Nil for a fresh shard.
	Snapshot []byte `json:"snapshot,omitempty"`
	// Timeline is the snapshot's sidecar series, re-seeded alongside so
	// the resumed shard continues one monotone coverage timeline.
	Timeline []byte `json:"timeline,omitempty"`
}

// LeaseResponse answers POST /v1/workers/{id}/lease; a 204 means the
// queue is empty.
type LeaseResponse struct {
	Schema string `json:"schema"`
	Task   Task   `json:"task"`
}

// UploadRequest is the body of POST
// /v1/campaigns/{id}/shards/{shard}/snapshot: the complete snapshot
// file as written by the shard's checkpointer, plus its timeline
// sidecar. WorkerID must name the shard's current owner (empty for an
// operator import via `gsbfleet upload`, accepted only while no worker
// owns the shard).
type UploadRequest struct {
	Schema   string `json:"schema"`
	WorkerID string `json:"worker_id,omitempty"`
	Snapshot []byte `json:"snapshot"`
	Timeline []byte `json:"timeline,omitempty"`
}

// UploadResponse answers an accepted snapshot upload.
type UploadResponse struct {
	Schema string `json:"schema"`
	// Done reports that this upload completed the shard.
	Done bool `json:"done"`
	// Runs echoes the accepted snapshot's cumulative run count.
	Runs int64 `json:"runs"`
}

// ReleaseRequest is the body of POST /v1/workers/{id}/release: a
// draining worker hands its shard back (the final paused snapshot was
// already uploaded), so the coordinator can re-deal it immediately
// instead of waiting out the heartbeat timeout.
type ReleaseRequest struct {
	Schema     string `json:"schema"`
	CampaignID string `json:"campaign_id"`
	Shard      int    `json:"shard"`
}

// ShardStatus is the per-shard slice of a campaign status.
type ShardStatus struct {
	Shard int `json:"shard"`
	// State is queued | running | done | failed.
	State string `json:"state"`
	// Worker is the owning worker's name while running.
	Worker string `json:"worker,omitempty"`
	// Runs is the cumulative run count of the latest accepted snapshot.
	Runs int64 `json:"runs"`
	// Done mirrors the snapshot header's done flag.
	Done bool `json:"done,omitempty"`
	// Redeals counts how many times the shard was handed to a new
	// worker after its previous owner died, went stale, or drained.
	Redeals int `json:"redeals"`
	// UploadAgeSec is the age of the latest accepted snapshot upload.
	UploadAgeSec float64 `json:"upload_age_sec,omitempty"`
	// Error is the terminal engine error of a failed shard.
	Error string `json:"error,omitempty"`
}

// CampaignStatus is the live view of one campaign: GET
// /v1/campaigns/{id}, and the per-campaign rows of the fleet /status.
type CampaignStatus struct {
	Schema     string     `json:"schema"`
	ID         string     `json:"id"`
	Submission Submission `json:"submission"`
	Task       string     `json:"task"`
	// State is queued | running | merging | done | failed.
	State  string        `json:"state"`
	Shards []ShardStatus `json:"shards"`
	// Runs/Schedules/Classes are fleet aggregates: the sum over shards
	// of each shard's LATEST snapshot (cumulative per shard), so a
	// re-dealt shard's pre-crash work is never counted twice.
	Runs      int64 `json:"runs"`
	Schedules int64 `json:"schedules"`
	Classes   int64 `json:"classes,omitempty"`
	// TotalRuns is the campaign-wide run budget of the seeded modes (0
	// when unknowable: the enumerating family).
	TotalRuns int64 `json:"total_runs,omitempty"`
	// RunsPerSec and ETASec are coordinator-anchored: the rate is
	// measured over the aggregate cumulative run count, so it does NOT
	// re-anchor when a worker dies or a shard is re-dealt (unlike a
	// single process's observer, whose rate base is per process life).
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
	ETASec     float64 `json:"eta_sec,omitempty"`
	Redeals    int     `json:"redeals"`
	Done       bool    `json:"done"`
	// Report is the merged final report once every shard finished and
	// the auto-merge settled the campaign-wide verdict; Violation is its
	// verdict ("" when every run verified). Error records a terminal
	// failure (a failed shard or merge).
	Report    *campaign.Report `json:"report,omitempty"`
	Violation string           `json:"violation,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// WorkerStatus is one registered worker in the fleet /status.
type WorkerStatus struct {
	Name string `json:"name"`
	// Shard is "campaign/shard" while the worker owns one.
	Shard string `json:"shard,omitempty"`
	// HeartbeatAgeSec is the age of the last heartbeat.
	HeartbeatAgeSec float64 `json:"heartbeat_age_sec"`
	Draining        bool    `json:"draining,omitempty"`
}

// FleetStatusSchema tags the fleet-level /status response.
const FleetStatusSchema = "gsbfleetstatus/v1"

// FleetStatus is the coordinator's aggregate view: GET /status.
type FleetStatus struct {
	Schema  string         `json:"schema"`
	Workers []WorkerStatus `json:"workers"`
	// Queued/Running/Done/Failed count shards across all campaigns.
	Queued    int              `json:"queued"`
	Running   int              `json:"running"`
	Done      int              `json:"done"`
	Failed    int              `json:"failed"`
	Redeals   int              `json:"redeals"`
	Runs      int64            `json:"runs"`
	Campaigns []CampaignStatus `json:"campaigns"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
}
