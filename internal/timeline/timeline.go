// Package timeline is the time-series layer of the observability
// pipeline (docs/metrics.md): a durable, append-only NDJSON series of
// gsbtimeline/v1 records sampled from the stats registry at every
// campaign checkpoint, written to a sidecar file next to the campaign
// snapshot. Where /metrics and /status are point-in-time views, the
// timeline is the history — the coverage-growth curve, the runs/sec
// trend, the checkpoint cadence — and it obeys the same durability
// contract as the checkpoint it rides along with:
//
//   - Appends are atomic (one O_APPEND write of one complete line), so a
//     kill at any instant leaves whole records plus at most one torn
//     trailing line, which Open truncates away before the next append.
//   - The series is resumable: each life continues the monotone sample
//     index where the previous life stopped, and the dedup rule (a
//     sample whose progress does not advance past the last recorded one
//     is skipped) makes a killed-and-resumed campaign's series equal an
//     uninterrupted run's in every deterministic column.
//   - Shard series merge by sample index: Merge is exactly a
//     concatenation of the shard series ordered by (index, shard),
//     validated against the same monotonicity every reader enforces.
//
// The package is deliberately dependency-free (stdlib only) and knows
// nothing about engines or registries: internal/campaign's Observer maps
// registry snapshots into Records and owns every timestamp — sample
// times are wall-clock and live only in this observer layer, never in
// result-computing code.
package timeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Schema tags every gsbtimeline/v1 record.
const Schema = "gsbtimeline/v1"

// Record is one timeline sample: the cumulative engine counters at a
// checkpoint boundary plus this-life rate and checkpoint-health figures.
// Counter columns (Runs, Schedules, Classes, Aborts) are cumulative
// across resumed lives and deterministic exactly where the underlying
// metrics are (docs/metrics.md); the timing columns (Time, RunsPerSec,
// CheckpointAgeSec, CheckpointWriteSec) describe the sampling life and
// are never compared across runs.
//
//gsb:serialized
type Record struct {
	Schema string `json:"schema"`
	// Index is the monotone sample index: strictly increasing across the
	// whole sidecar file, lives included. The Writer assigns it.
	Index int64 `json:"index"`
	// Time is the sample's wall-clock timestamp (RFC 3339), assigned by
	// the observer layer.
	Time  string `json:"time,omitempty"`
	Shard int    `json:"shard"`
	Of    int    `json:"of"`
	// Done marks the final sample of a finished campaign (or shard).
	Done bool `json:"done,omitempty"`
	// Cumulative counters, as of this sample (see docs/metrics.md for
	// the underlying metrics).
	Runs      int64 `json:"runs"`
	Schedules int64 `json:"schedules,omitempty"`
	Classes   int64 `json:"classes,omitempty"`
	Steals    int64 `json:"steals,omitempty"`
	Aborts    int64 `json:"aborts,omitempty"`
	// Frontier is the exploration frontier gauge (explore family only).
	Frontier int64 `json:"frontier,omitempty"`
	// Checkpoints counts snapshot writes before this sample (cumulative).
	Checkpoints int64 `json:"checkpoints,omitempty"`
	// RunsPerSec is the throughput since the previous sample of this
	// process life (first sample of a life: since the life started).
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
	// CheckpointAgeSec is the age of the newest snapshot write when the
	// sample was taken; CheckpointWriteSec is the mean snapshot write
	// latency over the interval since the previous sample.
	CheckpointAgeSec   float64 `json:"checkpoint_age_sec,omitempty"`
	CheckpointWriteSec float64 `json:"checkpoint_write_sec,omitempty"`
}

// SidecarPath derives the timeline sidecar file of a campaign snapshot:
// the snapshot path plus a ".timeline" suffix, so the series always
// lives alongside the checkpoint it describes.
func SidecarPath(snapshotPath string) string { return snapshotPath + ".timeline" }

// ErrNotMonotone reports a timeline whose sample indices do not strictly
// increase — a corrupted or hand-edited series.
var ErrNotMonotone = errors.New("timeline: sample indices are not strictly increasing")

// Writer appends records to a sidecar file. It is not safe for
// concurrent use; the campaign run loop is its only writer (readers —
// the /timeline endpoint, status -watch — open the file independently
// and tolerate a concurrent append).
type Writer struct {
	f    *os.File
	path string
	last Record
	any  bool // a last record exists (file was non-empty or we appended)
}

// Open opens (creating if needed) the sidecar at path for appending and
// recovers the append position from the existing series: the last
// record's index and progress columns. A torn trailing line (a kill
// mid-append) is truncated away; an undecodable or non-monotone interior
// is a loud error, never silently extended.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	w := &Writer{f: f, path: path}
	if err := w.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// recover scans the existing file, validates monotonicity, truncates a
// torn trailing line, and positions the fd at the end.
func (w *Writer) recover() error {
	data, err := io.ReadAll(w.f)
	if err != nil {
		return fmt.Errorf("timeline: %s: %w", w.path, err)
	}
	complete := len(data)
	if complete > 0 && data[complete-1] != '\n' {
		// Torn trailing line: keep everything up to the last newline.
		if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
			complete = i + 1
		} else {
			complete = 0
		}
	}
	recs, err := decodeAll(data[:complete], w.path)
	if err != nil {
		return err
	}
	if len(recs) > 0 {
		w.last, w.any = recs[len(recs)-1], true
	}
	if complete != len(data) {
		if err := w.f.Truncate(int64(complete)); err != nil {
			return fmt.Errorf("timeline: %s: truncating torn tail: %w", w.path, err)
		}
	}
	if _, err := w.f.Seek(int64(complete), io.SeekStart); err != nil {
		return fmt.Errorf("timeline: %s: %w", w.path, err)
	}
	return nil
}

// Last returns the newest record of the series, if any.
func (w *Writer) Last() (Record, bool) { return w.last, w.any }

// Append adds one sample to the series, assigning its schema and the
// next monotone index. Samples that do not advance the series — same or
// lower run count and an unchanged done flag, which happens when a
// resumed life re-reaches a checkpoint the previous life already
// recorded, or when an already-finished campaign is resumed — are
// skipped, which is what keeps a killed-and-resumed series equal to an
// uninterrupted one. Returns the record as written and whether it was
// appended.
func (w *Writer) Append(rec Record) (Record, bool, error) {
	if w.any && rec.Runs <= w.last.Runs && rec.Done == w.last.Done {
		return w.last, false, nil
	}
	rec.Schema = Schema
	rec.Index = 0
	if w.any {
		rec.Index = w.last.Index + 1
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return Record{}, false, fmt.Errorf("timeline: encode: %w", err)
	}
	line = append(line, '\n')
	// One write of one complete line: concurrent readers see whole
	// records (plus at most a torn tail if the process dies mid-write,
	// which both Open and Read tolerate).
	if _, err := w.f.Write(line); err != nil {
		return Record{}, false, fmt.Errorf("timeline: %s: append: %w", w.path, err)
	}
	w.last, w.any = rec, true
	return rec, true, nil
}

// Close closes the sidecar file.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// decodeAll parses a complete NDJSON series, enforcing schema and
// monotonicity: strictly increasing (index, shard) pairs. For a
// single-shard sidecar this is exactly strict index monotonicity; a
// merged campaign timeline additionally carries index ties across
// distinct shards, in shard order.
func decodeAll(data []byte, path string) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("timeline: %s line %d: %w", path, line, err)
		}
		if r.Schema != Schema {
			return nil, fmt.Errorf("timeline: %s line %d: schema %q, want %q", path, line, r.Schema, Schema)
		}
		if len(recs) > 0 {
			prev := recs[len(recs)-1]
			if r.Index < prev.Index || (r.Index == prev.Index && r.Shard <= prev.Shard) {
				return nil, fmt.Errorf("%w: %s line %d: index %d shard %d after index %d shard %d",
					ErrNotMonotone, path, line, r.Index, r.Shard, prev.Index, prev.Shard)
			}
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("timeline: %s: %w", path, err)
	}
	return recs, nil
}

// Read loads a whole timeline series. A torn trailing line (a reader
// racing the writer's append, or a kill mid-write) is ignored; interior
// corruption is a loud error.
func Read(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	return Decode(data, path)
}

// Decode parses a timeline series from raw sidecar bytes — the form the
// fleet coordinator receives in checkpoint uploads — with Read's
// tolerance for a torn trailing line and its loud rejection of interior
// corruption or non-monotone indices. name labels errors.
func Decode(data []byte, name string) ([]Record, error) {
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		data = data[:i+1]
	} else {
		data = nil
	}
	return decodeAll(data, name)
}

// Since filters a series to the records with Index >= since — the
// /timeline endpoint's incremental-poll parameter.
func Since(recs []Record, since int64) []Record {
	i := sort.Search(len(recs), func(i int) bool { return recs[i].Index >= since })
	return recs[i:]
}

// Merge combines per-shard timeline series into one campaign-wide
// series: exactly the concatenation of the shards' records ordered by
// sample index, ties broken by shard — the deterministic order a single
// interleaved log would have. Every input series must be internally
// monotone (readers enforce this already; Merge re-checks so a
// hand-assembled slice fails just as loudly).
func Merge(series ...[]Record) ([]Record, error) {
	var out []Record
	for s, recs := range series {
		for i, r := range recs {
			if i > 0 && r.Index <= recs[i-1].Index {
				return nil, fmt.Errorf("%w: series %d record %d", ErrNotMonotone, s, i)
			}
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		return out[i].Shard < out[j].Shard
	})
	return out, nil
}

// WriteFile atomically writes a series (a merged campaign timeline) as
// NDJSON to path, via the same temp-and-rename discipline as campaign
// snapshots.
func WriteFile(path string, recs []Record) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("timeline: encode: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("timeline: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("timeline: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("timeline: rename: %w", err)
	}
	return nil
}
