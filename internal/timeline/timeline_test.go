package timeline

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sample(runs int64, done bool) Record {
	return Record{Shard: 0, Of: 1, Runs: runs, Schedules: runs * 2, Classes: runs / 2, Done: done}
}

func TestWriterAssignsMonotoneIndices(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.timeline")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, runs := range []int64{10, 25, 40} {
		rec, ok, err := w.Append(sample(runs, false))
		if err != nil || !ok {
			t.Fatalf("append %d: ok=%v err=%v", i, ok, err)
		}
		if rec.Index != int64(i) {
			t.Fatalf("append %d: index %d", i, rec.Index)
		}
		if rec.Schema != Schema {
			t.Fatalf("append %d: schema %q", i, rec.Schema)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Runs != 40 || recs[2].Index != 2 {
		t.Fatalf("read back %+v", recs)
	}
}

func TestWriterDedupsNonAdvancingSamples(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.timeline")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mustAppend := func(r Record, want bool) {
		t.Helper()
		_, ok, err := w.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Fatalf("append %+v: appended=%v want %v", r, ok, want)
		}
	}
	mustAppend(sample(10, false), true)
	mustAppend(sample(10, false), false) // same progress: dropped
	mustAppend(sample(5, false), false)  // regressed (resumed life replay): dropped
	mustAppend(sample(10, true), true)   // same runs but done flips: kept
	mustAppend(sample(10, true), false)  // resumed finished campaign: dropped
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !recs[1].Done || recs[1].Index != 1 {
		t.Fatalf("got %+v", recs)
	}
}

func TestWriterResumeContinuesSeries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.timeline")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Append(sample(10, false)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Append(sample(20, false)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	last, ok := w2.Last()
	if !ok || last.Index != 1 || last.Runs != 20 {
		t.Fatalf("recovered last %+v ok=%v", last, ok)
	}
	// A resumed life re-reaching the recorded checkpoint is deduped...
	if _, ok, _ := w2.Append(sample(20, false)); ok {
		t.Fatal("non-advancing resume sample appended")
	}
	// ...and fresh progress continues the index sequence.
	rec, ok, err := w2.Append(sample(30, false))
	if err != nil || !ok || rec.Index != 2 {
		t.Fatalf("resume append: %+v ok=%v err=%v", rec, ok, err)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.timeline")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Append(sample(10, false)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Simulate a kill mid-append: a torn trailing line without newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"gsbtimeline/v1","index":1,"runs":2`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("Read with torn tail: %+v", recs)
	}

	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	rec, ok, err := w2.Append(sample(20, false))
	if err != nil || !ok || rec.Index != 1 {
		t.Fatalf("append after torn tail: %+v ok=%v err=%v", rec, ok, err)
	}
	recs, err = Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Index != 1 {
		t.Fatalf("after recovery: %+v", recs)
	}
}

func TestReadRejectsInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.timeline")
	body := `{"schema":"gsbtimeline/v1","index":0,"shard":0,"of":1,"runs":1}
not json
{"schema":"gsbtimeline/v1","index":2,"shard":0,"of":1,"runs":3}
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("interior corruption accepted")
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted interior corruption")
	}
}

func TestReadRejectsNonMonotoneIndices(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.timeline")
	body := `{"schema":"gsbtimeline/v1","index":0,"shard":0,"of":1,"runs":1}
{"schema":"gsbtimeline/v1","index":0,"shard":0,"of":1,"runs":2}
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Read(path)
	if !errors.Is(err, ErrNotMonotone) {
		t.Fatalf("err = %v, want ErrNotMonotone", err)
	}
}

func TestSince(t *testing.T) {
	recs := []Record{{Index: 0}, {Index: 1}, {Index: 2}, {Index: 5}}
	if got := Since(recs, 0); len(got) != 4 {
		t.Fatalf("since 0: %d", len(got))
	}
	if got := Since(recs, 2); len(got) != 2 || got[0].Index != 2 {
		t.Fatalf("since 2: %+v", got)
	}
	if got := Since(recs, 6); len(got) != 0 {
		t.Fatalf("since 6: %+v", got)
	}
}

func TestMergeIsConcatenationBySampleIndex(t *testing.T) {
	s0 := []Record{{Index: 0, Shard: 0, Of: 3, Runs: 10}, {Index: 1, Shard: 0, Of: 3, Runs: 20}}
	s1 := []Record{{Index: 0, Shard: 1, Of: 3, Runs: 9}, {Index: 1, Shard: 1, Of: 3, Runs: 19}, {Index: 2, Shard: 1, Of: 3, Runs: 29}}
	s2 := []Record{{Index: 0, Shard: 2, Of: 3, Runs: 11}}
	merged, err := Merge(s0, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []struct{ idx, shard int }{
		{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 1},
	}
	if len(merged) != len(wantOrder) {
		t.Fatalf("merged %d records, want %d", len(merged), len(wantOrder))
	}
	for i, w := range wantOrder {
		if merged[i].Index != int64(w.idx) || merged[i].Shard != w.shard {
			t.Fatalf("merged[%d] = index %d shard %d, want %d/%d", i, merged[i].Index, merged[i].Shard, w.idx, w.shard)
		}
	}
	if _, err := Merge([]Record{{Index: 1}, {Index: 1}}); !errors.Is(err, ErrNotMonotone) {
		t.Fatalf("non-monotone input: %v", err)
	}
}

func TestWriteFileRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "merged.timeline")
	recs := []Record{
		{Schema: Schema, Index: 0, Shard: 0, Of: 2, Runs: 10},
		{Schema: Schema, Index: 0, Shard: 1, Of: 2, Runs: 12},
		{Schema: Schema, Index: 1, Shard: 0, Of: 2, Runs: 20, Done: true},
	}
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Runs != 20 || !got[2].Done {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestSidecarPath(t *testing.T) {
	if got := SidecarPath("/tmp/c.ckpt"); got != "/tmp/c.ckpt.timeline" {
		t.Fatal(got)
	}
}
