// Package luby implements the classic randomized and deterministic
// message-passing symmetry-breaking baselines the paper's related work
// points to: Luby-style maximal independent set, randomized
// (Delta+1)-coloring, and deterministic Cole-Vishkin ring 3-coloring.
// They run on the synchronous rounds substrate of package msgnet and are
// compared against the shared-memory GSB protocols in the benchmarks.
package luby

import (
	"fmt"
	"math/rand"

	"repro/internal/msgnet"
)

type misMsgKind int

const (
	misRand misMsgKind = iota
	misJoined
)

type misMsg struct {
	kind misMsgKind
	val  float64
	id   int
}

// misProto is one vertex of Luby's MIS algorithm. Even rounds: process
// neighbor decisions and broadcast a fresh random value; odd rounds: join
// the MIS when the own value is a strict local minimum (ties broken by
// id), announce, and halt. A vertex halts "out" when a neighbor joined.
type misProto struct {
	rng    *rand.Rand
	myRand float64
	inMIS  *bool
}

func (m *misProto) Step(node msgnet.Node, recv map[int]any) (map[int]any, bool) {
	if node.Round%2 == 0 {
		for _, raw := range recv {
			msg := raw.(misMsg)
			if msg.kind == misJoined {
				*m.inMIS = false
				return nil, true // a neighbor joined: halt out
			}
		}
		m.myRand = m.rng.Float64()
		out := make(map[int]any, len(node.Neighbors))
		for _, nb := range node.Neighbors {
			out[nb] = misMsg{kind: misRand, val: m.myRand, id: node.ID}
		}
		return out, false
	}
	// Odd round: compare with the random values of still-undecided
	// neighbors (only they sent).
	local := true
	for _, raw := range recv {
		msg := raw.(misMsg)
		if msg.kind != misRand {
			continue
		}
		if msg.val < m.myRand || (msg.val == m.myRand && msg.id < node.ID) {
			local = false
			break
		}
	}
	if !local {
		return nil, false
	}
	*m.inMIS = true
	out := make(map[int]any, len(node.Neighbors))
	for _, nb := range node.Neighbors {
		out[nb] = misMsg{kind: misJoined, id: node.ID}
	}
	return out, true
}

// MISResult reports a maximal-independent-set execution.
type MISResult struct {
	InMIS  []bool
	Rounds int
}

// MIS runs Luby's algorithm on g with a seeded generator and returns the
// computed set. maxRounds bounds the execution (the algorithm terminates
// in O(log n) phases with high probability).
func MIS(g *msgnet.Graph, seed int64, maxRounds int) (*MISResult, error) {
	inMIS := make([]bool, g.N)
	protos := make([]msgnet.Proto, g.N)
	base := rand.New(rand.NewSource(seed))
	for v := 0; v < g.N; v++ {
		protos[v] = &misProto{
			rng:   rand.New(rand.NewSource(base.Int63())),
			inMIS: &inMIS[v],
		}
	}
	res, err := msgnet.Run(g, protos, maxRounds)
	if err != nil {
		return nil, err
	}
	return &MISResult{InMIS: inMIS, Rounds: res.Rounds}, nil
}

// VerifyMIS checks independence and maximality.
func VerifyMIS(g *msgnet.Graph, inMIS []bool) error {
	if len(inMIS) != g.N {
		return fmt.Errorf("luby: result has %d entries for %d vertices", len(inMIS), g.N)
	}
	for v := 0; v < g.N; v++ {
		covered := inMIS[v]
		for _, nb := range g.Neighbors(v) {
			if inMIS[v] && inMIS[nb] {
				return fmt.Errorf("luby: adjacent vertices %d and %d both in MIS", v, nb)
			}
			covered = covered || inMIS[nb]
		}
		if !covered {
			return fmt.Errorf("luby: vertex %d neither in MIS nor dominated (not maximal)", v)
		}
	}
	return nil
}

type colorMsgKind int

const (
	colorCandidate colorMsgKind = iota
	colorFixed
)

type colorMsg struct {
	kind  colorMsgKind
	color int
	id    int
}

// colorProto is one vertex of the randomized (Delta+1)-coloring baseline:
// undecided vertices repeatedly propose a random color from their
// remaining palette; a proposal is kept unless a smaller-id neighbor
// proposed the same color this phase. Fixed vertices announce and halt.
type colorProto struct {
	rng       *rand.Rand
	palette   int
	taken     map[int]bool
	candidate int
	color     *int
}

func (c *colorProto) Step(node msgnet.Node, recv map[int]any) (map[int]any, bool) {
	if node.Round%2 == 0 {
		for _, raw := range recv {
			msg := raw.(colorMsg)
			if msg.kind == colorFixed {
				c.taken[msg.color] = true
			}
		}
		free := make([]int, 0, c.palette)
		for col := 1; col <= c.palette; col++ {
			if !c.taken[col] {
				free = append(free, col)
			}
		}
		if len(free) == 0 {
			panic(fmt.Sprintf("luby: vertex %d ran out of palette; Delta+1 colors must suffice", node.ID))
		}
		c.candidate = free[c.rng.Intn(len(free))]
		out := make(map[int]any, len(node.Neighbors))
		for _, nb := range node.Neighbors {
			out[nb] = colorMsg{kind: colorCandidate, color: c.candidate, id: node.ID}
		}
		return out, false
	}
	keep := true
	for _, raw := range recv {
		msg := raw.(colorMsg)
		if msg.kind == colorCandidate && msg.color == c.candidate && msg.id < node.ID {
			keep = false
			break
		}
	}
	if !keep {
		return nil, false
	}
	*c.color = c.candidate
	out := make(map[int]any, len(node.Neighbors))
	for _, nb := range node.Neighbors {
		out[nb] = colorMsg{kind: colorFixed, color: c.candidate, id: node.ID}
	}
	return out, true
}

// ColoringResult reports a graph-coloring execution.
type ColoringResult struct {
	Colors []int // 1-based colors
	Rounds int
}

// Coloring runs the randomized (Delta+1)-coloring baseline.
func Coloring(g *msgnet.Graph, seed int64, maxRounds int) (*ColoringResult, error) {
	colors := make([]int, g.N)
	protos := make([]msgnet.Proto, g.N)
	base := rand.New(rand.NewSource(seed))
	palette := g.MaxDegree() + 1
	for v := 0; v < g.N; v++ {
		protos[v] = &colorProto{
			rng:     rand.New(rand.NewSource(base.Int63())),
			palette: palette,
			taken:   map[int]bool{},
			color:   &colors[v],
		}
	}
	res, err := msgnet.Run(g, protos, maxRounds)
	if err != nil {
		return nil, err
	}
	return &ColoringResult{Colors: colors, Rounds: res.Rounds}, nil
}

// VerifyColoring checks properness and the palette bound (maxColors = 0
// skips the bound check). Colors are 1-based; 0 means uncolored.
func VerifyColoring(g *msgnet.Graph, colors []int, maxColors int) error {
	if len(colors) != g.N {
		return fmt.Errorf("luby: %d colors for %d vertices", len(colors), g.N)
	}
	for v := 0; v < g.N; v++ {
		if colors[v] < 1 {
			return fmt.Errorf("luby: vertex %d uncolored", v)
		}
		if maxColors > 0 && colors[v] > maxColors {
			return fmt.Errorf("luby: vertex %d has color %d > %d", v, colors[v], maxColors)
		}
		for _, nb := range g.Neighbors(v) {
			if colors[v] == colors[nb] {
				return fmt.Errorf("luby: edge (%d,%d) monochromatic (color %d)", v, nb, colors[v])
			}
		}
	}
	return nil
}
