package luby

import (
	"math/rand"
	"testing"

	"repro/internal/msgnet"
	"repro/internal/stats"
)

// The *Under variants run the baselines under the message adversary via
// the synchronizer: faults must cost rounds, never correctness, and the
// executions must be deterministic per (seed, adversary).

func testAdv(seed int64) *msgnet.NetAdversary {
	return &msgnet.NetAdversary{Seed: seed, LossProb: 0.15, DelayProb: 0.1, ReorderProb: 0.1}
}

func TestMISUnderAdversary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := msgnet.GNP(24, 0.2, rng.Float64)
	res, err := MISUnder(g, 7, 20000, testAdv(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, res.InMIS); err != nil {
		t.Fatalf("MIS under faults is invalid: %v", err)
	}
	// nil adversary is the fault-free run.
	ref, err := MISUnder(g, 7, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, ref.InMIS); err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= ref.Rounds {
		t.Errorf("adversarial run took %d rounds, fault-free %d; synchronization must cost rounds", res.Rounds, ref.Rounds)
	}
	// Determinism per (seed, adversary).
	again, err := MISUnder(g, 7, 20000, testAdv(11))
	if err != nil {
		t.Fatal(err)
	}
	if again.Rounds != res.Rounds {
		t.Errorf("same seeds: %d rounds vs %d", again.Rounds, res.Rounds)
	}
	for v := range res.InMIS {
		if again.InMIS[v] != res.InMIS[v] {
			t.Fatalf("same seeds: vertex %d membership diverged", v)
		}
	}
}

func TestColoringUnderAdversary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := msgnet.GNP(20, 0.25, rng.Float64)
	res, err := ColoringUnder(g, 9, 20000, testAdv(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(g, res.Colors, g.MaxDegree()+1); err != nil {
		t.Fatalf("coloring under faults is invalid: %v", err)
	}
}

// TestRingThreeColorUnderMatchesFaultFree: Cole-Vishkin is deterministic,
// so the synchronizer-wrapped adversarial run must produce exactly the
// fault-free coloring — the adversary can delay the answer, not change it.
func TestRingThreeColorUnderMatchesFaultFree(t *testing.T) {
	const n = 32
	ref, err := RingThreeColor(n, 1000)
	if err != nil {
		t.Fatal(err)
	}
	adv := testAdv(17)
	reg := stats.New()
	adv.Stats = reg
	res, err := RingThreeColorUnder(n, 20000, adv)
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref.Colors {
		if res.Colors[v] != ref.Colors[v] {
			t.Fatalf("vertex %d: color %d under faults, %d fault-free", v, res.Colors[v], ref.Colors[v])
		}
	}
	if events := reg.Snapshot().Counter(msgnet.MetricAdversaryEvents); events == 0 {
		t.Error("adversary injected no faults (the test is vacuous)")
	}
	if res.Rounds <= ref.Rounds {
		t.Errorf("adversarial run took %d rounds, fault-free %d", res.Rounds, ref.Rounds)
	}
}
