package luby

import (
	"math/rand"
	"testing"

	"repro/internal/msgnet"
)

func TestMISOnRings(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 25} {
		for seed := int64(0); seed < 10; seed++ {
			g := msgnet.Ring(n)
			res, err := MIS(g, seed, 10000)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if err := VerifyMIS(g, res.InMIS); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestMISOnCompleteGraph(t *testing.T) {
	// In K_n the MIS is a single vertex.
	for seed := int64(0); seed < 10; seed++ {
		g := msgnet.Complete(8)
		res, err := MIS(g, seed, 10000)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := VerifyMIS(g, res.InMIS); err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, in := range res.InMIS {
			if in {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("seed=%d: MIS of K8 has %d vertices", seed, count)
		}
	}
}

func TestMISOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := msgnet.GNP(30, 0.2, rng.Float64)
		res, err := MIS(g, seed, 10000)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestMISDeterministicGivenSeed(t *testing.T) {
	g := msgnet.Ring(12)
	a, err := MIS(g, 7, 10000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MIS(msgnet.Ring(12), 7, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatal("same seed produced different MIS")
		}
	}
}

func TestVerifyMISRejectsBadSets(t *testing.T) {
	g := msgnet.Ring(4)
	if err := VerifyMIS(g, []bool{true, true, false, false}); err == nil {
		t.Error("adjacent pair accepted")
	}
	if err := VerifyMIS(g, []bool{false, false, false, false}); err == nil {
		t.Error("empty set accepted as maximal")
	}
	if err := VerifyMIS(g, []bool{true}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestColoringOnGraphs(t *testing.T) {
	graphs := map[string]*msgnet.Graph{
		"ring10":    msgnet.Ring(10),
		"K6":        msgnet.Complete(6),
		"singleton": msgnet.NewGraph(1),
	}
	rng := rand.New(rand.NewSource(3))
	graphs["gnp"] = msgnet.GNP(25, 0.3, rng.Float64)
	for name, g := range graphs {
		for seed := int64(0); seed < 10; seed++ {
			res, err := Coloring(g, seed, 10000)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if err := VerifyColoring(g, res.Colors, g.MaxDegree()+1); err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
		}
	}
}

func TestVerifyColoringRejects(t *testing.T) {
	g := msgnet.Ring(4)
	if err := VerifyColoring(g, []int{1, 1, 2, 2}, 3); err == nil {
		t.Error("monochromatic edge accepted")
	}
	if err := VerifyColoring(g, []int{1, 2, 1, 0}, 3); err == nil {
		t.Error("uncolored vertex accepted")
	}
	if err := VerifyColoring(g, []int{1, 2, 1, 9}, 3); err == nil {
		t.Error("palette overflow accepted")
	}
	if err := VerifyColoring(g, []int{1}, 3); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestRingThreeColor(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 16, 33, 100, 1000} {
		res, err := RingThreeColor(n, 100000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n >= 2 {
			if err := VerifyColoring(msgnet.Ring(n), res.Colors, 3); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestRingThreeColorRoundsGrowSlowly(t *testing.T) {
	// Cole-Vishkin runs in O(log* n) + O(1) rounds; even n = 10^6 must
	// finish in very few rounds.
	res, err := RingThreeColor(1<<20, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 12 {
		t.Errorf("Cole-Vishkin used %d rounds for n=2^20; expected O(log* n)", res.Rounds)
	}
	if err := VerifyColoring(msgnet.Ring(1<<20), res.Colors, 3); err != nil {
		t.Fatal(err)
	}
}

func TestCVStepPreservesDistinctness(t *testing.T) {
	// Property: for any distinct colors a != b (successor chain a -> b),
	// cvStep(a, b) != cvStep(b, c) whenever b != c as well.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		a, b, c := rng.Intn(1024), rng.Intn(1024), rng.Intn(1024)
		if a == b || b == c {
			continue
		}
		if cvStep(a, b) == cvStep(b, c) {
			t.Fatalf("cvStep collision: a=%d b=%d c=%d", a, b, c)
		}
	}
}

func TestCVStepPanicsOnEqual(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cvStep(5, 5)
}
