package luby

import (
	"fmt"
	"math/bits"

	"repro/internal/msgnet"
)

// This file implements the deterministic Cole-Vishkin 3-coloring of an
// oriented ring: starting from colors equal to the vertex identities, the
// bit trick reduces the color space to [0..5] in O(log* n) rounds, and
// three final recoloring rounds eliminate colors 5, 4 and 3. It is the
// classic deterministic symmetry-breaking baseline; note that it breaks
// symmetry only because identities exist — exactly the paper's premise
// that identity-free symmetry breaking is impossible.

// cvSchedule computes the number of Cole-Vishkin iterations needed to
// bring n initial colors into [0..5] (all vertices know n, so the
// schedule is globally agreed upon).
func cvSchedule(n int) int {
	widthOf := func(colors int) int {
		if colors <= 1 {
			return 1
		}
		return bits.Len(uint(colors - 1))
	}
	rounds := 0
	w := widthOf(n)
	for w > 3 {
		// One iteration maps b-bit colors to colors 2i+bit with
		// i in [0..b-1], so the new width is len(2(b-1)+1).
		w = bits.Len(uint(2*(w-1))) + 0
		if w < 3 {
			w = 3
		}
		rounds++
	}
	// A last iteration inside width 3 maps into 2i+b with i in [0..2],
	// i.e. colors [0..5]; one extra round guarantees we are inside [0..5]
	// even when the width-3 space still uses colors 6 and 7.
	return rounds + 1
}

// cvProto is one ring vertex. Every round it broadcasts its current
// color; the round schedule (known to all from n) is: CV iterations,
// then three recolor rounds removing colors 5, 4, 3, then halt.
type cvProto struct {
	succ  int
	cv    int // number of CV iterations
	color *int
}

func (c *cvProto) Step(node msgnet.Node, recv map[int]any) (map[int]any, bool) {
	round := node.Round
	if round > 0 && round <= c.cv {
		// Apply one Cole-Vishkin step using the successor's color from the
		// previous round.
		succColor, ok := recv[c.succ].(int)
		if !ok {
			panic(fmt.Sprintf("luby: vertex %d missing successor color in round %d", node.ID, round))
		}
		*c.color = cvStep(*c.color, succColor)
	} else if round > c.cv && round <= c.cv+3 {
		// Recolor round k removes color 5, 4, 3 respectively.
		target := 5 - (round - c.cv - 1)
		if *c.color == target {
			used := map[int]bool{}
			for _, raw := range recv {
				used[raw.(int)] = true
			}
			for col := 0; col <= 2; col++ {
				if !used[col] {
					*c.color = col
					break
				}
			}
		}
	}
	if round == c.cv+3 {
		return nil, true
	}
	out := make(map[int]any, len(node.Neighbors))
	for _, nb := range node.Neighbors {
		out[nb] = *c.color
	}
	return out, false
}

// cvStep is the Cole-Vishkin bit trick: find the lowest bit position i at
// which own differs from succ, and return 2i + bit_i(own). Adjacent
// (distinct) colors map to distinct colors.
func cvStep(own, succ int) int {
	if own == succ {
		panic(fmt.Sprintf("luby: Cole-Vishkin invariant broken: equal colors %d", own))
	}
	diff := own ^ succ
	i := bits.TrailingZeros(uint(diff))
	return 2*i + (own>>i)&1
}

// RingThreeColor 3-colors the oriented n-ring deterministically with
// Cole-Vishkin; colors are returned 1-based (1..3) for consistency with
// VerifyColoring.
func RingThreeColor(n int, maxRounds int) (*ColoringResult, error) {
	if n == 1 {
		return &ColoringResult{Colors: []int{1}, Rounds: 0}, nil
	}
	g := msgnet.Ring(n)
	colors := make([]int, n)
	protos := make([]msgnet.Proto, n)
	cv := cvSchedule(n)
	for v := 0; v < n; v++ {
		colors[v] = v // initial color = identity
		protos[v] = &cvProto{succ: (v + 1) % n, cv: cv, color: &colors[v]}
	}
	res, err := msgnet.Run(g, protos, maxRounds)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for v := range colors {
		if colors[v] < 0 || colors[v] > 2 {
			return nil, fmt.Errorf("luby: vertex %d finished with color %d outside [0..2]", v, colors[v])
		}
		out[v] = colors[v] + 1
	}
	return &ColoringResult{Colors: out, Rounds: res.Rounds}, nil
}
