package luby

import (
	"fmt"
	"math/rand"

	"repro/internal/msgnet"
)

// This file runs the symmetry-breaking baselines under the message
// adversary (msgnet.NetAdversary): the protocols themselves are written
// for the reliable lockstep substrate, so they are wrapped with
// msgnet.Synchronize, which repairs loss by retransmission and absorbs
// delay and reordering. Executions stay deterministic per (seed,
// adversary) pair; maxRounds must be scaled up versus the fault-free
// runs because each simulated round costs at least one real exchange.

// syncGrace is the synchronizer linger period used by the *Under
// variants: enough settle rounds that final acknowledgments survive
// moderate loss rates.
const syncGrace = 12

// MISUnder runs Luby's MIS under a message adversary (nil behaves like
// MIS). The returned set satisfies VerifyMIS exactly as in the
// fault-free execution — faults cost rounds, not correctness.
func MISUnder(g *msgnet.Graph, seed int64, maxRounds int, adv *msgnet.NetAdversary) (*MISResult, error) {
	if adv == nil {
		return MIS(g, seed, maxRounds)
	}
	inMIS := make([]bool, g.N)
	protos := make([]msgnet.Proto, g.N)
	base := rand.New(rand.NewSource(seed))
	for v := 0; v < g.N; v++ {
		protos[v] = &misProto{
			rng:   rand.New(rand.NewSource(base.Int63())),
			inMIS: &inMIS[v],
		}
	}
	res, err := msgnet.RunAdversarial(g, msgnet.Synchronize(protos, syncGrace), maxRounds, adv)
	if err != nil {
		return nil, err
	}
	return &MISResult{InMIS: inMIS, Rounds: res.Rounds}, nil
}

// ColoringUnder runs the randomized (Delta+1)-coloring baseline under a
// message adversary (nil behaves like Coloring).
func ColoringUnder(g *msgnet.Graph, seed int64, maxRounds int, adv *msgnet.NetAdversary) (*ColoringResult, error) {
	if adv == nil {
		return Coloring(g, seed, maxRounds)
	}
	colors := make([]int, g.N)
	protos := make([]msgnet.Proto, g.N)
	base := rand.New(rand.NewSource(seed))
	palette := g.MaxDegree() + 1
	for v := 0; v < g.N; v++ {
		protos[v] = &colorProto{
			rng:     rand.New(rand.NewSource(base.Int63())),
			palette: palette,
			taken:   map[int]bool{},
			color:   &colors[v],
		}
	}
	res, err := msgnet.RunAdversarial(g, msgnet.Synchronize(protos, syncGrace), maxRounds, adv)
	if err != nil {
		return nil, err
	}
	return &ColoringResult{Colors: colors, Rounds: res.Rounds}, nil
}

// RingThreeColorUnder runs Cole-Vishkin ring 3-coloring under a message
// adversary (nil behaves like RingThreeColor). cvProto panics when a
// successor color goes missing, which is exactly what the synchronizer
// wrapper rules out: the deterministic baseline survives loss, delay and
// reordering unchanged.
func RingThreeColorUnder(n, maxRounds int, adv *msgnet.NetAdversary) (*ColoringResult, error) {
	if adv == nil {
		return RingThreeColor(n, maxRounds)
	}
	if n == 1 {
		return &ColoringResult{Colors: []int{1}, Rounds: 0}, nil
	}
	g := msgnet.Ring(n)
	colors := make([]int, n)
	protos := make([]msgnet.Proto, n)
	cv := cvSchedule(n)
	for v := 0; v < n; v++ {
		colors[v] = v
		protos[v] = &cvProto{succ: (v + 1) % n, cv: cv, color: &colors[v]}
	}
	res, err := msgnet.RunAdversarial(g, msgnet.Synchronize(protos, syncGrace), maxRounds, adv)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for v := range colors {
		if colors[v] < 0 || colors[v] > 2 {
			return nil, fmt.Errorf("luby: vertex %d finished with color %d outside [0..2]", v, colors[v])
		}
		out[v] = colors[v] + 1
	}
	return &ColoringResult{Colors: out, Rounds: res.Rounds}, nil
}
