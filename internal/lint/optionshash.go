package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// The optionshash analyzer guards campaign option identity: a campaign
// snapshot's OptionsHash is what stops a resume (or merge) from silently
// verifying something other than what the snapshot started
// (internal/campaign/snapshot.go). Every field of sched.ExploreOptions
// must therefore be accounted for — either captured into the snapshot
// header by optionsHeader (and from there into the hash by optionsHash),
// or deliberately excluded in the OptionsHashExcluded list with a reason
// (execution details like Workers, observability sinks like Stats).
// Every new ExploreOptions field — the memory-model and adversary
// registries added Model and Adversary this way; ROADMAP items (DPOR
// knobs, fuzzing energy parameters) will add more — is a silent
// resume-correctness landmine until it is hashed or consciously
// excluded, which is exactly the decision this analyzer forces.
//
// Mechanically, in any package that defines func optionsHeader (in this
// tree: internal/campaign):
//
//  1. every field of optionsHeader's parameter struct (ExploreOptions)
//     must be read in optionsHeader's body or be a key of the
//     package-level map OptionsHashExcluded;
//  2. exclusions must be live: an OptionsHashExcluded key that names no
//     current field, or a field that is both captured and excluded, is an
//     error;
//  3. every field of optionsHeader's result struct (OptionsHeader) must
//     be read in optionsHash's body, so a field cannot reach the header
//     but miss the hash.
//
// There is no suppression verb: the exclusion list is the mechanism, and
// it demands a reason string per field.
var OptionsHashAnalyzer = &Analyzer{
	Name: "optionshash",
	Doc:  "every ExploreOptions field must be campaign-hashed or explicitly excluded with a reason",
	Run:  runOptionsHash,
}

func runOptionsHash(pass *Pass) error {
	header := findFuncDecl(pass, "optionsHeader")
	if header == nil {
		return nil // not the campaign-identity package
	}
	optType := singleParamStruct(pass, header)
	if optType == nil {
		pass.Reportf(header.Pos(), "optionsHeader must take the options struct as its single parameter")
		return nil
	}

	captured := structFieldReads(pass, header.Body, optType)
	excluded, exclPos := optionsHashExclusions(pass)

	for i := 0; i < optType.NumFields(); i++ {
		f := optType.Field(i)
		_, isCaptured := captured[f.Name()]
		_, isExcluded := excluded[f.Name()]
		switch {
		case isCaptured && isExcluded:
			pass.Reportf(exclPos[f.Name()], "options field %s is captured by optionsHeader but also listed in OptionsHashExcluded: remove the stale exclusion", f.Name())
		case !isCaptured && !isExcluded:
			pass.Reportf(header.Pos(), "options field %s is not captured by optionsHeader and not excluded in OptionsHashExcluded: a resume could silently verify different semantics — hash it, or exclude it with a reason", f.Name())
		}
	}
	for _, name := range sortedStringKeys(excluded) {
		if fieldByName(optType, name) == nil {
			pass.Reportf(exclPos[name], "OptionsHashExcluded lists %q, which is not a field of the options struct: remove the stale entry", name)
		}
	}

	// Leg 3: header fields must all reach the hash.
	hash := findFuncDecl(pass, "optionsHash")
	if hash == nil {
		pass.Reportf(header.Pos(), "package defines optionsHeader but no optionsHash: the options header is not part of campaign identity")
		return nil
	}
	headerType := resultStruct(pass, header)
	if headerType == nil {
		return nil
	}
	hashed := structFieldReads(pass, hash.Body, headerType)
	for i := 0; i < headerType.NumFields(); i++ {
		f := headerType.Field(i)
		if _, ok := hashed[f.Name()]; !ok {
			pass.Reportf(hash.Pos(), "options-header field %s is serialized into snapshots but never read by optionsHash: two campaigns differing only in it would collide", f.Name())
		}
	}
	return nil
}

func findFuncDecl(pass *Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == name {
				return fn
			}
		}
	}
	return nil
}

// singleParamStruct returns the struct type of fn's single parameter.
func singleParamStruct(pass *Pass, fn *ast.FuncDecl) *types.Struct {
	if fn.Type.Params == nil || len(fn.Type.Params.List) != 1 {
		return nil
	}
	tv, ok := pass.Info.Types[fn.Type.Params.List[0].Type]
	if !ok {
		return nil
	}
	st, _ := tv.Type.Underlying().(*types.Struct)
	return st
}

// resultStruct returns the struct type of fn's first result.
func resultStruct(pass *Pass, fn *ast.FuncDecl) *types.Struct {
	if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
		return nil
	}
	tv, ok := pass.Info.Types[fn.Type.Results.List[0].Type]
	if !ok {
		return nil
	}
	st, _ := tv.Type.Underlying().(*types.Struct)
	return st
}

// structFieldReads collects the names of st's fields selected anywhere in
// body (o.Seed, h.Options.Seed, ...).
func structFieldReads(pass *Pass, body *ast.BlockStmt, st *types.Struct) map[string]bool {
	fields := map[types.Object]string{}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = st.Field(i).Name()
	}
	reads := map[string]bool{}
	if body == nil {
		return reads
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if name, ok := fields[s.Obj()]; ok {
			reads[name] = true
		}
		return true
	})
	return reads
}

func fieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

// optionsHashExclusions reads the package-level OptionsHashExcluded map
// literal: field name -> reason. Each entry's value must be a non-empty
// reason string literal.
func optionsHashExclusions(pass *Pass) (map[string]string, map[string]token.Pos) {
	excluded := map[string]string{}
	positions := map[string]token.Pos{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "OptionsHashExcluded" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						pass.Reportf(vs.Values[i].Pos(), "OptionsHashExcluded must be a map composite literal so gsbvet can read its keys")
						continue
					}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, okK := stringLit(pass, kv.Key)
						reason, okV := stringLit(pass, kv.Value)
						if !okK {
							pass.Reportf(kv.Pos(), "OptionsHashExcluded keys must be string literals naming options fields")
							continue
						}
						if !okV || reason == "" {
							pass.Reportf(kv.Pos(), "OptionsHashExcluded entry %q needs a non-empty reason string", key)
						}
						excluded[key] = reason
						positions[key] = kv.Pos()
					}
				}
			}
		}
	}
	return excluded, positions
}

// stringLit evaluates e as a constant string.
func stringLit(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func sortedStringKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
