package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file loads type-checked packages for the analyzers without
// golang.org/x/tools/go/packages: `go list -export -deps` resolves the
// import graph and produces gc export data for every dependency (entirely
// from the local build cache — no network), the target packages are parsed
// from source with comments, and go/types checks them against the export
// data through go/importer's lookup interface.

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPatterns loads the packages matching the go-list patterns (relative
// to dir, typically a module root) together with export data for their
// dependencies, and type-checks each matched package from source. Test
// files are not analyzed: the contracts gsbvet enforces (determinism,
// checkpoint identity, hot-path allocation discipline) bind the engine,
// not its tests.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the non-test Go files of one directory
// as a package with the given import path. deps supplies pre-checked
// packages for non-stdlib imports (golden-test fixtures that fake
// cross-package types); everything else resolves through the source
// importer, so tests need no export data. The import path is the caller's
// claim, which is what lets golden tests exercise path-scoped analyzers
// against testdata (e.g. loading a fixture as "repro/internal/sched").
func LoadDir(fset *token.FileSet, dir, path string, deps map[string]*types.Package) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	src := importer.ForCompiler(fset, "source", nil)
	imp := depImporter{deps: deps, fallback: src}
	return typeCheck(fset, path, files, imp)
}

// depImporter resolves imports from a fixed map first, then a fallback.
type depImporter struct {
	deps     map[string]*types.Package
	fallback types.Importer
}

func (d depImporter) Import(path string) (*types.Package, error) {
	if p, ok := d.deps[path]; ok {
		return p, nil
	}
	return d.fallback.Import(path)
}

func typeCheck(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
