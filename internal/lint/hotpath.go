package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The hotpath analyzer defends the 0 allocs/run invariant established by
// the direct-handoff runner work (gsbbench's committed baseline, enforced
// in CI by `gsbbench -compare`): the per-run exploration path must not
// allocate, because a single stray allocation costs ~30% throughput on
// million-run campaigns and turns the GC into a source of timing noise in
// the sampler. The benchmark gate catches a regression after the fact and
// as an aggregate number; this analyzer names the exact expression, at
// review time, without running anything.
//
// Functions on the hot path are marked //gsb:hotpath in their doc
// comment. Inside a marked function the analyzer flags the expressions
// that usually allocate:
//
//   - append(...) — growth allocates; appends into pre-grown reusable
//     scratch (r.result.Schedule, r.opsBuf) are the idiom and carry
//     //gsb:alloc-ok annotations citing the reuse;
//   - make(...) and new(...);
//   - slice and map composite literals ([]T{...}, map[K]V{...}), which
//     allocate their backing store, and pointer literals &T{...}, which
//     escape; plain struct values (Decision{...}, stepReq{...}) stay on
//     the stack and are deliberately not flagged;
//   - function literals (closures capture by reference and escape);
//   - conversions of a concrete value to an interface type (boxing).
//
// The analyzer is syntactic by design: it does not run escape analysis,
// so stack-proven allocations still need an //gsb:alloc-ok with the
// argument (the benchmark gate keeps the annotation honest). Marking is
// manual; a function reachable from a marked one is not automatically
// checked, so mark the whole call chain (Exec → pull → nextDecision).
var HotPathAnalyzer = &Analyzer{
	Name:       "hotpath",
	Doc:        "flags allocating expressions inside //gsb:hotpath-marked functions",
	Suppressor: "alloc-ok",
	Run:        runHotPath,
}

// HotPathMarker marks a function as part of the zero-allocation run path.
const HotPathMarker = "hotpath"

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.FuncMarked(fn, HotPathMarker) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&T{} literal in hotpath func %s escapes to the heap", name)
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal in hotpath func %s allocates its backing store", describeLitKind(tv.Type), name)
					return false // element literals are covered by the outer report
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in hotpath func %s: closures escape and allocate", name)
			return false
		case *ast.CallExpr:
			checkHotCall(pass, n, name)
		}
		return true
	})
}

func describeLitKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

func checkHotCall(pass *Pass, call *ast.CallExpr, fname string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append in hotpath func %s: growth allocates — append only into pre-grown reusable scratch and annotate the reuse", fname)
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hotpath func %s allocates", obj.Name(), fname)
			}
			return
		}
	}
	// A call expression whose Fun is a type is a conversion; converting a
	// concrete value to an interface boxes it on the heap.
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	if !types.IsInterface(tv.Type) {
		return
	}
	if argTV, ok := pass.Info.Types[call.Args[0]]; ok && !types.IsInterface(argTV.Type) {
		pass.Reportf(call.Pos(), "conversion to interface type %s in hotpath func %s boxes its operand", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), fname)
	}
}
