package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The statshandle analyzer enforces the metrics convention set by the
// observability work (internal/stats, internal/sched/metrics.go): a
// stats.Registry lookup — Counter(name), Gauge(name), Histogram(name) —
// takes a mutex and hashes the name, so handles are resolved once at
// construction (newEngineMetrics, campaign run() preamble) and the
// resolved, nil-tolerant handles are what hot code touches. A lookup
// inside a loop or a hot-path function silently reintroduces a
// lock-and-hash per iteration, which is both a throughput cliff and a
// contention point across workers.
//
// The analyzer flags Counter/Gauge/Histogram method calls on a receiver
// whose named type is Registry (any package's) when the call site is
// lexically inside a for/range statement or inside a //gsb:hotpath
// function. The stats package itself is exempt: Registry internals
// (Restore, Snapshot) legitimately loop over their own lookups under the
// one lock they already hold. Waive a deliberate lookup-in-loop (e.g. a
// cold path iterating a dynamic metric set) with //gsb:statslookup-ok
// <reason>.
var StatsHandleAnalyzer = &Analyzer{
	Name:       "statshandle",
	Doc:        "stats registry lookups are forbidden inside loops and hotpath functions — resolve handles once",
	Suppressor: "statslookup-ok",
	Run:        runStatsHandle,
}

var registryLookupMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runStatsHandle(pass *Pass) error {
	if pass.Path == "internal/stats" || strings.HasSuffix(pass.Path, "/internal/stats") {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot := pass.FuncMarked(fn, HotPathMarker)
			checkStatsLookups(pass, fn, hot)
		}
	}
	return nil
}

// checkStatsLookups walks fn's body tracking loop depth; registry lookups
// are flagged inside any loop, or anywhere when the function is hot.
func checkStatsLookups(pass *Pass, fn *ast.FuncDecl, hot bool) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(child ast.Node) bool {
			switch child := child.(type) {
			case *ast.ForStmt:
				if child.Init != nil {
					walk(child.Init, inLoop)
				}
				if child.Cond != nil {
					walk(child.Cond, inLoop)
				}
				if child.Post != nil {
					walk(child.Post, inLoop)
				}
				walk(child.Body, true)
				return false
			case *ast.RangeStmt:
				walk(child.X, inLoop)
				walk(child.Body, true)
				return false
			case *ast.CallExpr:
				if name, ok := registryLookup(pass, child); ok {
					switch {
					case inLoop:
						pass.Reportf(child.Pos(), "stats registry lookup %s inside a loop: each call locks and hashes — resolve the handle once before the loop", name)
					case hot:
						pass.Reportf(child.Pos(), "stats registry lookup %s in hotpath func %s: resolve the handle at construction and use it here", name, fn.Name.Name)
					}
				}
			}
			return true
		})
	}
	walk(fn.Body, false)
}

// registryLookup reports whether call is Counter/Gauge/Histogram on a
// value whose named type is Registry.
func registryLookup(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryLookupMethods[sel.Sel.Name] {
		return "", false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	return "Registry." + sel.Sel.Name, true
}
