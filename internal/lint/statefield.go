package lint

import (
	"go/ast"
	"reflect"
	"strings"
)

// The statefield analyzer guards the checkpoint wire format: the structs
// serialized into campaign snapshots (docs/checkpoint-format.md) are the
// contract between a dying process and the one that resumes it, and
// between shards on different machines and the merge. A field added
// without a JSON tag serializes under its Go name — which then silently
// changes on a rename; a field tagged "-" silently vanishes from
// checkpoints and corrupts every resumed campaign that needed it. Both
// become vet errors here, long before a differential test has to catch a
// corrupted campaign.
//
// The serialized structs are marked //gsb:serialized at their type
// declaration. The marking itself is enforced: stateFieldRequired lists
// the known snapshot state structs per package, and a listed struct that
// is missing or unmarked is an error — so the marker set cannot rot as
// the format evolves. For every marked struct:
//
//   - each exported field must carry an explicit json name tag (not "-"),
//     or be waived with //gsb:notserialized <reason> on its line;
//   - json names must be unique within the struct;
//   - unexported fields are ignored (encoding/json cannot see them; the
//     convention for live-process-only state, e.g. FailureState.err).
//
// The complement — that every tagged field actually survives an
// encode/decode cycle — is enforced dynamically by the reflection
// round-trip tests built on lint.RoundTripJSON, which populate every
// exported field and fail on any that does not round-trip.
var StateFieldAnalyzer = &Analyzer{
	Name:       "statefield",
	Doc:        "serialized checkpoint structs must tag every exported field with an explicit, unique json name",
	Suppressor: "notserialized",
	Run:        runStateField,
}

// stateFieldRequired names the structs that are part of the checkpoint
// wire format, per import-path suffix. Adding a struct to a snapshot
// payload means adding it here (and marking it //gsb:serialized);
// removing or renaming one without updating this list is a vet error by
// design — checkpoint-format drift must be explicit.
var stateFieldRequired = map[string][]string{
	"internal/sched": {
		"ExploreState", "FrontierState", "FailureState",
		"SeededState", "SeededFailure",
	},
	"internal/sample":   {"BatchState"},
	"internal/stats":    {"Snapshot", "HistogramSnapshot"},
	"internal/campaign": {"Header", "OptionsHeader", "Report", "payload"},
}

// SerializedMarker marks a checkpoint-serialized struct declaration.
const SerializedMarker = "serialized"

func runStateField(pass *Pass) error {
	required := map[string]bool{}
	for suffix, names := range stateFieldRequired {
		if pass.Path == suffix || strings.HasSuffix(pass.Path, "/"+suffix) {
			for _, n := range names {
				required[n] = true
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				marked := pass.TypeMarked(gen, ts, SerializedMarker)
				if required[ts.Name.Name] {
					delete(required, ts.Name.Name)
					if !marked {
						pass.Reportf(ts.Pos(), "%s is checkpoint state (see stateFieldRequired) but is not marked //gsb:serialized", ts.Name.Name)
						continue
					}
				}
				if marked {
					checkSerializedStruct(pass, ts.Name.Name, st)
				}
			}
		}
	}
	for _, name := range sortedBoolKeys(required) {
		pass.Reportf(pass.Files[0].Name.Pos(), "checkpoint state struct %s is required in this package but not declared: renamed or moved? update stateFieldRequired in internal/lint/statefield.go", name)
	}
	return nil
}

func checkSerializedStruct(pass *Pass, structName string, st *ast.StructType) {
	seen := map[string]string{}
	for _, field := range st.Fields.List {
		names := field.Names
		if len(names) == 0 {
			pass.Reportf(field.Pos(), "%s embeds a field: embedded fields flatten into the wire format implicitly — name it and tag it", structName)
			continue
		}
		for _, name := range names {
			if !name.IsExported() {
				continue
			}
			jsonName, ok := jsonTagName(field)
			switch {
			case !ok:
				pass.Reportf(name.Pos(), "%s.%s has no json tag: it would serialize under its Go name and silently change on a rename", structName, name.Name)
				continue
			case jsonName == "-":
				pass.Reportf(name.Pos(), "%s.%s is tagged json:\"-\": it silently vanishes from checkpoints — resumed campaigns lose it", structName, name.Name)
				continue
			case jsonName == "":
				pass.Reportf(name.Pos(), "%s.%s json tag sets options but no name: name it explicitly", structName, name.Name)
				continue
			}
			if prev, dup := seen[jsonName]; dup {
				pass.Reportf(name.Pos(), "%s.%s reuses json name %q already taken by %s: the later field silently wins on decode", structName, name.Name, jsonName, prev)
			}
			seen[jsonName] = name.Name
		}
	}
}

// jsonTagName extracts the json tag's name part; ok is false when the
// field has no json tag at all.
func jsonTagName(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	// field.Tag.Value includes the surrounding backquotes.
	raw := strings.Trim(field.Tag.Value, "`")
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", false
	}
	name, _, _ := strings.Cut(tag, ",")
	return name, true
}

func sortedBoolKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Sorted so diagnostics are deterministic.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
