package lint

import (
	"encoding/json"
	"fmt"
	"reflect"
)

// RoundTripJSON is the dynamic complement of the statefield analyzer: the
// analyzer proves every exported field of a serialized struct carries a
// json tag; this helper proves the tagged fields actually survive an
// encode/decode cycle. It fills every exported field of a fresh value of
// v's type with a distinguishable non-zero value, marshals, unmarshals
// into a second fresh value, and returns an error naming the first field
// that did not round-trip. Packages with //gsb:serialized structs call it
// from a table-driven test (TestCheckpointStateRoundTrips) so that a
// field dropped from the wire format — a "-" tag, an omitempty-swallowed
// zero, a custom MarshalJSON that forgets a field — fails the suite with
// the field's name rather than a downstream campaign-corruption symptom.
//
// v must be a non-nil pointer to a struct.
func RoundTripJSON(v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() || rv.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("RoundTripJSON: need non-nil pointer to struct, got %T", v)
	}
	t := rv.Elem().Type()

	in := reflect.New(t)
	if err := populate(in.Elem(), 1); err != nil {
		return fmt.Errorf("RoundTripJSON: populating %s: %w", t, err)
	}
	data, err := json.Marshal(in.Interface())
	if err != nil {
		return fmt.Errorf("RoundTripJSON: marshal %s: %w", t, err)
	}
	out := reflect.New(t)
	if err := json.Unmarshal(data, out.Interface()); err != nil {
		return fmt.Errorf("RoundTripJSON: unmarshal %s: %w", t, err)
	}
	if bad := firstMismatch(t.Name(), in.Elem(), out.Elem()); bad != "" {
		return fmt.Errorf("RoundTripJSON: field %s did not survive the wire format (wire: %s)", bad, data)
	}
	return nil
}

// populate fills every exported, settable field of v with a value derived
// from seed, recursing into structs, slices, maps and pointers so nested
// state (FrontierState inside ExploreState) is exercised too.
func populate(v reflect.Value, seed int) error {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if err := populate(v.Field(i), seed+i+1); err != nil {
				return fmt.Errorf("%s: %w", t.Field(i).Name, err)
			}
		}
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(seed))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(seed))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(seed) + 0.5)
	case reflect.String:
		v.SetString(fmt.Sprintf("s%d", seed))
	case reflect.Slice:
		elem := reflect.New(v.Type().Elem()).Elem()
		if err := populate(elem, seed+1); err != nil {
			return err
		}
		v.Set(reflect.Append(reflect.MakeSlice(v.Type(), 0, 1), elem))
	case reflect.Map:
		// encoding/json carries string and integer keys faithfully
		// (integers render as decimal object keys); anything else would
		// need a TextMarshaler and is rejected as un-serializable state.
		key := reflect.New(v.Type().Key()).Elem()
		switch key.Kind() {
		case reflect.String:
			key.SetString(fmt.Sprintf("k%d", seed))
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			key.SetInt(int64(seed))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			key.SetUint(uint64(seed))
		default:
			return fmt.Errorf("map key %s is neither string nor integer: JSON objects cannot carry it faithfully", v.Type().Key())
		}
		m := reflect.MakeMap(v.Type())
		elem := reflect.New(v.Type().Elem()).Elem()
		if err := populate(elem, seed+1); err != nil {
			return err
		}
		m.SetMapIndex(key, elem)
		v.Set(m)
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		if err := populate(p.Elem(), seed+1); err != nil {
			return err
		}
		v.Set(p)
	default:
		return fmt.Errorf("unsupported kind %s in serialized state", v.Kind())
	}
	return nil
}

// firstMismatch compares exported fields of a and b and returns the
// dotted path of the first that differs, or "".
func firstMismatch(path string, a, b reflect.Value) string {
	if a.Kind() != reflect.Struct {
		if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			return path
		}
		return ""
	}
	t := a.Type()
	for i := 0; i < a.NumField(); i++ {
		if !t.Field(i).IsExported() {
			continue
		}
		fa, fb := a.Field(i), b.Field(i)
		if fa.Kind() == reflect.Pointer && !fa.IsNil() && !fb.IsNil() {
			fa, fb = fa.Elem(), fb.Elem()
		}
		if bad := firstMismatch(path+"."+t.Field(i).Name, fa, fb); bad != "" {
			return bad
		}
	}
	return ""
}
