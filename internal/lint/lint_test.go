package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The golden tests load each testdata/src fixture with LoadDir under a
// chosen import path (so the path-scoped analyzers apply to fixtures the
// same way they apply to the real tree), run one analyzer, and match the
// surviving diagnostics against `want` comments in the fixture:
//
//	expr // want `regex`
//	expr /* want `regex` */ //gsb:...
//
// Every diagnostic must match a want on its line, and every want must be
// matched — the analysistest contract, on the stdlib only.

var goldenCases = []struct {
	dir      string
	path     string // import path the fixture is loaded under
	analyzer *Analyzer
}{
	{"determinism", "repro/internal/sched", DeterminismAnalyzer},
	{"optionshash", "repro/internal/campaign", OptionsHashAnalyzer},
	{"statefield", "repro/internal/sample", StateFieldAnalyzer},
	{"hotpath", "repro/internal/hotfixture", HotPathAnalyzer},
	{"statshandle", "repro/internal/statsfixture", StatsHandleAnalyzer},
	{"annotations", "repro/internal/annofixture", AnnotationsAnalyzer},
}

func TestAnalyzersGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			fset := token.NewFileSet()
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := LoadDir(fset, dir, tc.path, nil)
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			diags, err := Run(pkg, []*Analyzer{tc.analyzer})
			if err != nil {
				t.Fatalf("running %s: %v", tc.analyzer.Name, err)
			}

			wants := collectWants(t, pkg)
			for _, d := range diags {
				if !claimWant(wants, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.claimed {
					t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.pattern)
				}
			}
		})
	}
}

type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	claimed bool
}

var wantRe = regexp.MustCompile("want `([^`]+)`" + `|want "([^"]+)"`)

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern := m[1]
				if pattern == "" {
					pattern = m[2]
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pattern, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: pattern, re: re})
			}
		}
	}
	return wants
}

func claimWant(wants []*want, d Diagnostic) bool {
	for _, w := range wants {
		if !w.claimed && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.claimed = true
			return true
		}
	}
	return false
}

// TestTreeClean is the in-process version of the CI gate: the real tree
// must produce zero findings. A failure prints each finding, which is the
// fix-or-annotate worklist.
func TestTreeClean(t *testing.T) {
	pkgs, err := LoadPatterns(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, pkg := range pkgs {
		diags, err := Run(pkg, Analyzers())
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestSuppressorVerbsRegistered pins the annotations analyzer's verb
// table to the Suppressor fields of the registered analyzers (the table
// is duplicated to break an initialization cycle).
func TestSuppressorVerbsRegistered(t *testing.T) {
	fromAnalyzers := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Suppressor != "" {
			fromAnalyzers[a.Suppressor] = true
		}
	}
	for v := range fromAnalyzers {
		if !suppressorVerbs[v] {
			t.Errorf("analyzer suppressor %q missing from suppressorVerbs", v)
		}
	}
	for v := range suppressorVerbs {
		if !fromAnalyzers[v] {
			t.Errorf("suppressorVerbs lists %q, which no analyzer declares", v)
		}
	}
}

// TestAnalyzerMetadata keeps the suite presentable: names, docs, and
// distinct suppressor verbs.
func TestAnalyzerMetadata(t *testing.T) {
	seenName := map[string]bool{}
	seenVerb := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seenName[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seenName[a.Name] = true
		if a.Suppressor != "" {
			if seenVerb[a.Suppressor] {
				t.Errorf("duplicate suppressor verb %q", a.Suppressor)
			}
			seenVerb[a.Suppressor] = true
			if markerVerbs[a.Suppressor] {
				t.Errorf("suppressor %q collides with a marker verb", a.Suppressor)
			}
		}
	}
}

// TestSuppressionScope pins the two legal annotation placements — end of
// the offending line, and the line immediately above — and that two lines
// above does not suppress.
func TestSuppressionScope(t *testing.T) {
	src := `package p

import "time"

func sameLine() time.Time {
	return time.Now() //gsb:nondeterminism-ok same line
}

func lineAbove() time.Time {
	//gsb:nondeterminism-ok line above
	return time.Now()
}

func tooFar() time.Time {
	//gsb:nondeterminism-ok two lines above: out of scope

	return time.Now()
}
`
	pkg := parseFixture(t, src, "repro/internal/sched")
	diags, err := Run(pkg, []*Analyzer{DeterminismAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly the out-of-scope one", len(diags), diags)
	}
	if diags[0].Pos.Line != 17 {
		t.Errorf("surviving diagnostic at line %d, want 17 (the annotation two lines up must not reach it)", diags[0].Pos.Line)
	}
}

// parseFixture type-checks one in-memory file under the given import path.
func parseFixture(t *testing.T, src, path string) *Package {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := LoadDir(fset, dir, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
