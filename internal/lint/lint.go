// Package lint is gsbvet: a project-specific static-analysis suite that
// mechanically enforces the engine's prose contracts — worker-count
// determinism, checkpoint-format completeness, campaign option identity,
// and the zero-allocation hot path (docs/static-analysis.md).
//
// The suite is built directly on the standard library's go/ast and
// go/types (no golang.org/x/tools dependency: the analyzers must build
// from the tree with no network fetch, in CI and offline alike). The API
// deliberately mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic, Reportf — so the analyzers could be ported to a multichecker
// driver verbatim if the dependency ever lands.
//
// Findings are suppressed, never silenced: each analyzer names an
// annotation verb (for example //gsb:nondeterminism-ok <reason>) that
// waives a finding on its line — with a mandatory reason, enforced by the
// annotations analyzer. The annotation grammar is
//
//	//gsb:<verb>            marker (hotpath, serialized)
//	//gsb:<verb> <reason>   suppression (nondeterminism-ok, alloc-ok,
//	                        statslookup-ok, notserialized)
//
// placed either at the end of the offending line or on the line
// immediately above it (markers go in the doc comment of the func or type
// they mark).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one gsbvet check: a named invariant, the
// annotation verb that waives its findings, and the function that walks a
// package and reports violations.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is the one-line description printed by gsbvet -list.
	Doc string
	// Suppressor is the //gsb: annotation verb that suppresses this
	// analyzer's diagnostics ("" means findings cannot be waived).
	Suppressor string
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding: a position, the analyzer that produced it,
// and the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Path is the package's import path; several analyzers scope
	// themselves by path suffix (e.g. determinism applies to
	// internal/sched but not internal/stats).
	Path string
	Pkg  *types.Package
	Info *types.Info

	notes  *annotationIndex
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// An Annotation is one parsed //gsb: comment.
type Annotation struct {
	Verb   string
	Reason string
	Pos    token.Pos
}

// annotationIndex maps filename and line to the //gsb: annotations that
// govern that line.
type annotationIndex struct {
	byLine map[string]map[int][]Annotation
	all    []Annotation
}

// AnnotationPrefix introduces a gsbvet annotation comment.
const AnnotationPrefix = "//gsb:"

// parseAnnotation parses one comment; ok is false for ordinary comments.
func parseAnnotation(c *ast.Comment) (Annotation, bool) {
	text, found := strings.CutPrefix(c.Text, AnnotationPrefix)
	if !found {
		return Annotation{}, false
	}
	verb, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
	return Annotation{Verb: verb, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// indexAnnotations collects every //gsb: comment of the files.
func indexAnnotations(fset *token.FileSet, files []*ast.File) *annotationIndex {
	idx := &annotationIndex{byLine: map[string]map[int][]Annotation{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := parseAnnotation(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Annotation{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], a)
				idx.all = append(idx.all, a)
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic at pos is waived by an
// annotation with the given verb on its own line or the line above.
func (idx *annotationIndex) suppressed(pos token.Position, verb string) bool {
	lines := idx.byLine[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range lines[line] {
			if a.Verb == verb {
				return true
			}
		}
	}
	return false
}

// Annotations returns every //gsb: annotation of the package, in file
// order (the annotations analyzer validates them).
func (p *Pass) Annotations() []Annotation { return p.notes.all }

// FuncMarked reports whether fn's doc comment carries //gsb:<verb>.
func (p *Pass) FuncMarked(fn *ast.FuncDecl, verb string) bool {
	return groupMarked(fn.Doc, verb)
}

// TypeMarked reports whether the type declaration carries //gsb:<verb> in
// the doc comment of either the TypeSpec or its enclosing GenDecl.
func (p *Pass) TypeMarked(decl *ast.GenDecl, spec *ast.TypeSpec, verb string) bool {
	return groupMarked(spec.Doc, verb) || groupMarked(decl.Doc, verb)
}

func groupMarked(doc *ast.CommentGroup, verb string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if a, ok := parseAnnotation(c); ok && a.Verb == verb {
			return true
		}
	}
	return false
}

// Run executes the analyzers over one loaded package and returns the
// surviving (unsuppressed) diagnostics in position order.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	notes := indexAnnotations(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			notes:    notes,
			report: func(d Diagnostic) {
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		verb := suppressorOf(analyzers, d.Analyzer)
		if verb != "" && notes.suppressed(d.Pos, verb) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

func suppressorOf(analyzers []*Analyzer, name string) string {
	for _, a := range analyzers {
		if a.Name == name {
			return a.Suppressor
		}
	}
	return ""
}

// Analyzers is the full gsbvet suite, in documentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		OptionsHashAnalyzer,
		StateFieldAnalyzer,
		HotPathAnalyzer,
		StatsHandleAnalyzer,
		AnnotationsAnalyzer,
	}
}
