package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The determinism analyzer polices the engine's load-bearing contract:
// schedule and class counts are a pure function of the protocol, the
// property and the options — never of worker interleaving, wall-clock
// time, or map iteration order (explore_parallel.go's determinism
// contract, docs/architecture.md). It applies to the packages that
// compute results (sched, sample, campaign) and flags the four constructs
// that historically smuggle nondeterminism into them:
//
//   - wall-clock reads (time.Now, time.Since, time.Until): results must
//     not depend on when the engine runs. Timing histograms and progress
//     timestamps are legitimate — annotate them.
//   - global math/rand draws (rand.Intn and friends): the process-global
//     source is shared and unseeded; all engine randomness must flow from
//     an explicit seed via rand.New(rand.NewSource(seed)), which is why
//     the constructors New/NewSource/NewZipf are exempt.
//   - `go` statements: goroutines outside the audited worker pools make
//     aggregation order a scheduling artifact. Worker-pool spawns carry
//     annotations pointing at the interleaving-independence argument.
//   - map-range loops whose body writes result-bearing outer state: map
//     iteration order is randomized per run, so appending to an outer
//     slice or overwriting an outer variable inside one yields a
//     different value each run. Commutative writes (set/map inserts,
//     which the analyzer skips) and ranges whose output is canonicalized
//     afterwards (annotate, citing the sort) are fine.
//
// Findings are waived with //gsb:nondeterminism-ok <reason>. The test of
// a legitimate waiver: the flagged value must never influence schedule or
// class counts, verdicts, or checkpoint identity.
var DeterminismAnalyzer = &Analyzer{
	Name:       "determinism",
	Doc:        "flags wall-clock reads, global rand, bare goroutines, and order-dependent map iteration in the result-computing packages",
	Suppressor: "nondeterminism-ok",
	Run:        runDeterminism,
}

// determinismPackages are the result-computing packages the analyzer
// applies to, matched by import-path suffix.
var determinismPackages = []string{
	"internal/sched",
	"internal/sample",
	"internal/campaign",
}

// globalRandExempt are the package-level math/rand functions that do not
// draw from the process-global source.
var globalRandExempt = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func determinismApplies(path string) bool {
	for _, suffix := range determinismPackages {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *Pass) error {
	if !determinismApplies(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "bare `go` statement: goroutines outside the audited worker pools make results interleaving-dependent")
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				checkMapRangeWrites(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDeterminismCall flags wall-clock reads and global math/rand draws.
func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if ok && fn.Type().(*types.Signature).Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are seeded/value-local
	}
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "wall-clock read time.%s: results must be a pure function of protocol, property and options", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandExempt[fn.Name()] {
			pass.Reportf(call.Pos(), "global rand.%s draws from the process-global source: derive a seeded generator via rand.New(rand.NewSource(seed)) instead", fn.Name())
		}
	}
}

// checkMapRangeWrites flags order-dependent writes inside a map-range
// body: plain assignments (including x = append(x, ...)) whose target is
// declared outside the range statement. Map/slice-element writes and
// compound assignments are deliberately not flagged — set inserts and
// additive accumulation commute across iteration orders.
func checkMapRangeWrites(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				continue
			}
			if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
				pass.Reportf(assign.Pos(), "map-range body writes %s, declared outside the loop: map iteration order is randomized, so the result is order-dependent", id.Name)
			}
		}
		return true
	})
}
