package lint

// The annotations analyzer keeps the //gsb: grammar itself honest. The
// suppression system only works if annotations stay meaningful: a typoed
// verb (//gsb:nondeterminism_ok) would silently suppress nothing while
// the author believes the finding is waived — or worse, the finding
// appears and the author "fixes" it by typo-matching the verb the
// diagnostic names. And a bare //gsb:alloc-ok with no reason defeats the
// point of suppression-with-rationale: six months later nobody can tell a
// considered waiver from a drive-by silencing.
//
// Two rules:
//
//   - every //gsb: verb must be a known marker (hotpath, serialized) or a
//     known suppression verb (the Suppressor of some registered
//     analyzer);
//   - every suppression verb must carry a non-empty reason.
//
// There is deliberately no way to suppress this analyzer.
var AnnotationsAnalyzer = &Analyzer{
	Name: "annotations",
	Doc:  "//gsb: verbs must be known, and suppression verbs must carry a reason",
	Run:  runAnnotations,
}

// markerVerbs are the non-suppression annotation verbs.
var markerVerbs = map[string]bool{
	HotPathMarker:    true,
	SerializedMarker: true,
}

// suppressorVerbs lists the known suppression verbs without referring to
// Analyzers() (which would form an initialization cycle through this
// analyzer itself). TestAnnotationVerbsMatchAnalyzers pins it to the
// Suppressor fields of the registered analyzers.
var suppressorVerbs = map[string]bool{
	"nondeterminism-ok": true,
	"notserialized":     true,
	"alloc-ok":          true,
	"statslookup-ok":    true,
}

func runAnnotations(pass *Pass) error {
	suppressors := suppressorVerbs
	for _, a := range pass.Annotations() {
		switch {
		case markerVerbs[a.Verb]:
			// Markers take no reason; trailing text is treated as prose.
		case suppressors[a.Verb]:
			if a.Reason == "" {
				pass.Reportf(a.Pos, "//gsb:%s needs a reason: a waiver nobody can audit is a silencing", a.Verb)
			}
		default:
			pass.Reportf(a.Pos, "unknown //gsb: verb %q: known markers are hotpath, serialized; known suppressions are the analyzer Suppressor verbs (gsbvet -list)", a.Verb)
		}
	}
	return nil
}
