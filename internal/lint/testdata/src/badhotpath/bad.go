// Package badhotpath is a deliberately failing fixture for the gsbvet
// exit-code test: TestGsbvetExitCodes runs the driver against this
// directory (testdata is invisible to ./... wildcards, so the tree stays
// clean) and asserts a non-zero exit and a hotpath finding.
package badhotpath

//gsb:hotpath
func leaky(n int) []int {
	return make([]int, n)
}
