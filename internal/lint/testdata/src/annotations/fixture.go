// Package fixture is an annotations-analyzer golden fixture.
package fixture

//gsb:hotpath
func marked() {}

//gsb:serialized
type state struct {
	N int `json:"n"`
}

func reasons() {
	_ = state{} //gsb:alloc-ok a considered waiver with a reason
	_ = 1       /* want `//gsb:alloc-ok needs a reason` */           //gsb:alloc-ok
	_ = 2       /* want `unknown //gsb: verb "nondeterminism_ok"` */ //gsb:nondeterminism_ok typoed verb
	_ = 3       /* want `unknown //gsb: verb "allocok"` */           //gsb:allocok another typo
	_ = 4       //gsb:notserialized live-process scratch only
}
