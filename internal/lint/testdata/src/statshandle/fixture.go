// Package fixture is a statshandle-analyzer golden fixture: a miniature
// Registry with the real lookup-method names.
package fixture

type Counter struct{ v int64 }

func (c *Counter) Inc() { c.v++ }

type Gauge struct{ v int64 }

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge     { return &Gauge{} }

type notRegistry struct{}

func (notRegistry) Counter(name string) *Counter { return &Counter{} }

func lookupInLoops(r *Registry, names []string, m map[string]int) {
	for i := 0; i < 3; i++ {
		r.Counter("runs", "").Inc() // want `stats registry lookup Registry\.Counter inside a loop`
	}
	for _, name := range names {
		_ = r.Gauge(name, "") // want `stats registry lookup Registry\.Gauge inside a loop`
	}
	for range m {
		r.Counter("x", "").Inc() //gsb:statslookup-ok golden fixture: cold path over a dynamic metric set
	}
}

func lookupOnce(r *Registry) {
	c := r.Counter("runs", "") // outside any loop, not hot: fine
	for i := 0; i < 3; i++ {
		c.Inc() // handle use, not a lookup
	}
}

//gsb:hotpath
func hotLookup(r *Registry) {
	r.Counter("runs", "").Inc() // want `stats registry lookup Registry\.Counter in hotpath func hotLookup`
}

func otherReceiver(n notRegistry) {
	for i := 0; i < 3; i++ {
		_ = n.Counter("x") // receiver is not a Registry: fine
	}
}
