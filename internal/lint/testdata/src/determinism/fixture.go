// Package fixture is a determinism-analyzer golden fixture; the golden
// test loads it under the import path "repro/internal/sched" so the
// path-scoped analyzer applies.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock read time\.Now`
	_ = time.Until(start)    // want `wall-clock read time\.Until`
	return time.Since(start) // want `wall-clock read time\.Since`
}

func wallClockWaived() time.Time {
	return time.Now() //gsb:nondeterminism-ok golden fixture: observability timestamp
}

func methodsAreFine(r *rand.Rand, t time.Time) {
	_ = r.Intn(10) // method on a seeded *rand.Rand: not flagged
	_ = t.Add(time.Second)
}

func globalRand() int {
	r := rand.New(rand.NewSource(1)) // constructors are exempt
	_ = r
	rand.Shuffle(3, func(i, j int) {}) // want `global rand\.Shuffle`
	return rand.Intn(10)               // want `global rand\.Intn`
}

func bareGoroutine() {
	go wallClockWaived() // want "bare `go` statement"
}

func goroutineWaived() {
	//gsb:nondeterminism-ok golden fixture: audited pool
	go wallClockWaived()
}

func mapRangeWrites(m map[string]int) ([]string, int) {
	var keys []string
	total := 0
	sum := 0
	for k, v := range m {
		keys = append(keys, k) // want `map-range body writes keys`
		total = v              // want `map-range body writes total`
		sum += v               // compound assignment commutes: not flagged
		local := v             // := declares inside the range: not flagged
		_ = local
	}
	return keys, total + sum
}

func mapRangeWaived(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //gsb:nondeterminism-ok golden fixture: sorted by the caller
	}
	return keys
}

func mapRangeSetInsert(m map[string]int) map[string]bool {
	set := map[string]bool{}
	for k := range m {
		set[k] = true // index-expression write commutes: not flagged
	}
	return set
}

func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered: not flagged
	}
	return out
}
