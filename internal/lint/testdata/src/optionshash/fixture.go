// Package fixture is an optionshash-analyzer golden fixture: a miniature
// of internal/campaign's option-identity plumbing with one field of every
// failure class.
package fixture

import "fmt"

type ExploreOptions struct {
	Seed     int64
	MaxRuns  int
	Workers  int // excluded with a reason: fine
	Stats    int // captured AND excluded: stale exclusion
	Orphan   int // neither captured nor excluded
	Quiet    int // excluded with an empty reason
	MaxSteps int // captured: fine
}

type OptionsHeader struct {
	Seed     int64
	MaxRuns  int
	MaxSteps int
	Stats    int
	Dangling int // serialized but never hashed
}

var OptionsHashExcluded = map[string]string{
	"Workers": "execution-resource knob",
	"Stats":   "stale: the field is captured below", // want `options field Stats is captured by optionsHeader but also listed`
	"Gone":    "names no current field",             // want `OptionsHashExcluded lists "Gone", which is not a field`
	"Quiet":   "",                                   // want `OptionsHashExcluded entry "Quiet" needs a non-empty reason`
}

func optionsHeader(o ExploreOptions) OptionsHeader { // want `options field Orphan is not captured`
	return OptionsHeader{
		Seed:     o.Seed,
		MaxRuns:  o.MaxRuns,
		MaxSteps: o.MaxSteps,
		Stats:    o.Stats,
	}
}

func optionsHash(h OptionsHeader) string { // want `options-header field Dangling is serialized into snapshots but never read`
	return fmt.Sprintf("%d|%d|%d|%d", h.Seed, h.MaxRuns, h.MaxSteps, h.Stats)
}
