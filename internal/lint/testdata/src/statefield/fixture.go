// Package fixture is a statefield-analyzer golden fixture; the golden
// test loads it as "repro/internal/sample", where stateFieldRequired
// demands a //gsb:serialized BatchState.
package fixture // want `checkpoint state struct BatchState is required in this package but not declared`

// Missing the //gsb:serialized marker while being required would be its
// own diagnostic; here BatchState is absent entirely (renamed to
// BatchStat), exercising the required-but-not-declared arm.

//gsb:serialized
type BatchStat struct {
	Next      int64 `json:"next"`
	Untagged  int64 // want `BatchStat\.Untagged has no json tag`
	Dropped   int64 `json:"-"`          // want `BatchStat\.Dropped is tagged json:"-"`
	Anonymous int64 `json:",omitempty"` // want `BatchStat\.Anonymous json tag sets options but no name`
	Dup       int64 `json:"next"`       // want `BatchStat\.Dup reuses json name "next" already taken by Next`
	Waived    int64 //gsb:notserialized golden fixture: live-process scratch
	internal  int64 // unexported: ignored
}

//gsb:serialized
type Embedding struct {
	BatchStat `json:"inner"` // want `Embedding embeds a field`
}

type unmarked struct {
	NoTag int64 // unmarked struct: statefield does not apply
}

var _ = unmarked{}
var _ = Embedding{}
var _ int64 = BatchStat{}.internal
