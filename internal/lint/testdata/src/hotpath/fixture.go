// Package fixture is a hotpath-analyzer golden fixture.
package fixture

type step struct {
	proc int
	op   string
}

type runner struct {
	schedule []step
	scratch  []int
}

//gsb:hotpath
func (r *runner) hot(n int) any {
	r.scratch = append(r.scratch, n) // want `append in hotpath func hot`
	buf := make([]int, n)            // want `make in hotpath func hot`
	p := new(step)                   // want `new in hotpath func hot`
	_ = &step{proc: n}               // want `&T\{\} literal in hotpath func hot escapes`
	_ = []int{1, 2, 3}               // want `slice literal in hotpath func hot allocates`
	_ = map[string]int{"a": 1}       // want `map literal in hotpath func hot allocates`
	f := func() int { return n }     // want `function literal in hotpath func hot`
	s := step{proc: n, op: "w"}      // plain struct value: stays on the stack, not flagged
	var boxed any = interfaceOf(n)
	_ = buf
	_ = p
	_ = f
	_ = s
	return boxed
}

type boxer interface{ box() }

type impl struct{ n int }

func (impl) box() {}

//gsb:hotpath
func convert(v impl, b boxer) boxer {
	_ = boxer(v)    // want `conversion to interface type boxer in hotpath func convert boxes`
	return boxer(b) // interface-to-interface: no box, not flagged
}

//gsb:hotpath
func waived(r *runner, n int) {
	r.scratch = append(r.scratch, n) //gsb:alloc-ok golden fixture: reused scratch, pre-grown at construction
}

func cold(n int) []int {
	return make([]int, n) // unmarked function: not flagged
}

func interfaceOf(n int) any { return n }
