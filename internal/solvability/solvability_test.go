package solvability

import (
	"strings"
	"testing"

	"repro/internal/gsb"
)

func TestBinomialGCDKnownValues(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 2}, {3, 3}, {4, 2}, {5, 5}, {6, 1}, {7, 7},
		{8, 2}, {9, 3}, {10, 1}, {11, 11}, {12, 1}, {16, 2}, {25, 5},
		{27, 3}, {30, 1}, {32, 2},
	}
	for _, tc := range tests {
		if got := BinomialGCD(tc.n); got != tc.want {
			t.Errorf("BinomialGCD(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBinomialsPrimeIffNotPrimePower(t *testing.T) {
	// Kummer's theorem: gcd{C(n,i)} > 1 exactly when n is a prime power.
	for n := 2; n <= 48; n++ {
		if got, want := BinomialsPrime(n), !IsPrimePower(n); got != want {
			t.Errorf("n=%d: BinomialsPrime=%v, IsPrimePower=%v", n, got, !want)
		}
	}
}

func TestIsPrimePower(t *testing.T) {
	powers := map[int]bool{
		2: true, 3: true, 4: true, 5: true, 7: true, 8: true, 9: true,
		11: true, 13: true, 16: true, 25: true, 27: true, 32: true, 49: true,
		1: false, 6: false, 10: false, 12: false, 15: false, 36: false,
		100: false,
	}
	for n, want := range powers {
		if got := IsPrimePower(n); got != want {
			t.Errorf("IsPrimePower(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestClassifyCornerstonesOfSection5(t *testing.T) {
	tests := []struct {
		name string
		spec gsb.Spec
		want Status
	}{
		{"(2n-1)-renaming trivial", gsb.Renaming(6, 11), StatusTrivial},
		{"perfect renaming not solvable", gsb.PerfectRenaming(6), StatusNotSolvable},
		{"perfect renaming n=7 not solvable", gsb.PerfectRenaming(7), StatusNotSolvable},
		{"WSB n=6 solvable (gcd prime)", gsb.WSB(6), StatusSolvable},
		{"WSB n=10 solvable", gsb.WSB(10), StatusSolvable},
		{"WSB n=4 not solvable (prime power)", gsb.WSB(4), StatusNotSolvable},
		{"WSB n=8 not solvable", gsb.WSB(8), StatusNotSolvable},
		{"(2n-2)-renaming n=6 solvable", gsb.Renaming(6, 10), StatusSolvable},
		{"(2n-2)-renaming n=8 not solvable", gsb.Renaming(8, 14), StatusNotSolvable},
		{"3-slot n=8 not solvable", gsb.KSlot(8, 3), StatusNotSolvable},
		{"infeasible", gsb.NewSym(5, 2, 0, 1), StatusInfeasible},
		{"m=1 trivial", gsb.NewSym(5, 1, 0, 5), StatusTrivial},
		{"election not solvable", gsb.Election(5), StatusNotSolvable},
		{"election n=12 not solvable", gsb.Election(12), StatusNotSolvable},
		{"bounded homonymous trivial", gsb.BoundedHomonymous(6, 3), StatusTrivial},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Classify(tc.spec)
			if got.Status != tc.want {
				t.Fatalf("Classify(%v) = %v (%s), want %v", tc.spec, got.Status, got.Reason, tc.want)
			}
			if got.Reason == "" {
				t.Error("empty reason")
			}
		})
	}
}

func TestClassifyKSlotUnsolvableOnPrimePowers(t *testing.T) {
	// Theorem 10: <n,m,1,u> not wait-free solvable for prime-power n and
	// any u, m > 1 — via the canonical representative, even when the given
	// bounds have l = 0 but the task is a synonym of one with l >= 1.
	spec := gsb.NewSym(8, 2, 0, 4) // synonym of <8,2,4,4>, l >= 1
	got := Classify(spec)
	if got.Status != StatusNotSolvable {
		t.Fatalf("Classify(%v) = %v (%s), want not solvable", spec, got.Status, got.Reason)
	}
	if !strings.Contains(got.Reason, "Theorem 10") {
		t.Errorf("reason %q should cite Theorem 10", got.Reason)
	}
}

func TestClassifyRenamingBelow2NMinus2Unknown(t *testing.T) {
	// (2n-3)-renaming for gcd-prime n is not settled by the reproduced
	// results; the classifier must stay conservative.
	got := Classify(gsb.Renaming(6, 9))
	if got.Status != StatusUnknown {
		t.Fatalf("Classify = %v (%s), want unknown", got.Status, got.Reason)
	}
}

func TestClassifyWSBStrictlyWeakerThanElection(t *testing.T) {
	// Section 5.3: election is strictly stronger than WSB; for gcd-prime n
	// the classifier must separate them (WSB solvable, election not).
	n := 6
	wsb := Classify(gsb.WSB(n))
	el := Classify(gsb.Election(n))
	if wsb.Status != StatusSolvable || el.Status != StatusNotSolvable {
		t.Fatalf("WSB=%v election=%v; want solvable vs not solvable", wsb.Status, el.Status)
	}
}

func TestFamilyReportCoversFamily(t *testing.T) {
	reports := FamilyReport(6, 3)
	if len(reports) != len(gsb.Family(6, 3)) {
		t.Fatalf("%d reports for %d specs", len(reports), len(gsb.Family(6, 3)))
	}
	for _, r := range reports {
		if r.Status == StatusInfeasible {
			t.Errorf("family member %v reported infeasible", r.Spec)
		}
		if !r.Canonical.IsCanonical() {
			t.Errorf("report for %v has non-canonical representative %v", r.Spec, r.Canonical)
		}
	}
}

func TestGCDTable(t *testing.T) {
	rows := GCDTable(12)
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	for _, row := range rows {
		if row.Prime != (row.GCD == 1) {
			t.Errorf("n=%d: Prime flag inconsistent with gcd %d", row.N, row.GCD)
		}
		if row.Prime == row.PrimePower {
			t.Errorf("n=%d: prime-power flag should be the negation of gcd-primality", row.N)
		}
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusInfeasible, StatusTrivial, StatusSolvable, StatusNotSolvable, StatusUnknown} {
		if s.String() == "" || strings.HasPrefix(s.String(), "Status(") {
			t.Errorf("missing String for %d", int(s))
		}
	}
	if Status(99).String() != "Status(99)" {
		t.Error("unknown status should render numerically")
	}
}

func TestClassifyAsymmetricUnknown(t *testing.T) {
	// A committee task that needs coordination but is not election.
	spec := gsb.NewAsym(6, []int{1, 2, 1}, []int{2, 3, 4})
	got := Classify(spec)
	if got.Status != StatusUnknown {
		t.Fatalf("Classify(%v) = %v, want unknown", spec, got.Status)
	}
}
