// Package solvability implements the wait-free solvability results of
// Section 5: the binomial-gcd condition of Theorem 10 (via the results of
// Castañeda and Rajsbaum on weak symmetry breaking and (2n-2)-renaming),
// and a classifier that combines Theorems 8-11, Lemmas 4-5 and the
// communication-free characterization into a per-task status report.
package solvability

import (
	"fmt"

	"repro/internal/gsb"
	"repro/internal/nocomm"
	"repro/internal/vecmath"
)

// BinomialGCD returns gcd{ C(n,i) : 1 <= i <= floor(n/2) }, the quantity
// whose primality governs the wait-free solvability of WSB and
// (2n-2)-renaming (Theorem 10, citing Castañeda-Rajsbaum). For n = 1 the
// set is empty and the gcd is 0 by convention.
func BinomialGCD(n int) int {
	g := 0
	for i := 1; 2*i <= n; i++ {
		g = vecmath.GCD(g, vecmath.Binomial(n, i))
	}
	return g
}

// BinomialsPrime reports whether the set {C(n,i)} is prime in the paper's
// sense, i.e. its gcd is 1.
func BinomialsPrime(n int) bool { return BinomialGCD(n) == 1 }

// IsPrimePower reports whether n = p^k for a prime p and k >= 1. Kummer's
// theorem implies gcd{C(n,i)} = p exactly when n is a power of the prime
// p, and 1 otherwise; the tests cross-check BinomialsPrime against this.
func IsPrimePower(n int) bool {
	if n < 2 {
		return false
	}
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			for n%p == 0 {
				n /= p
			}
			return n == 1
		}
	}
	return true // n itself is prime
}

// Status is the wait-free solvability classification of a GSB task in the
// base model ASM_{n,n-1}[emptyset].
type Status int

// Classification outcomes.
const (
	// StatusInfeasible: the task has no legal output vector (Lemma 1).
	StatusInfeasible Status = iota
	// StatusTrivial: solvable with no communication at all (Theorem 9).
	StatusTrivial
	// StatusSolvable: wait-free solvable (with communication).
	StatusSolvable
	// StatusNotSolvable: provably not wait-free solvable.
	StatusNotSolvable
	// StatusUnknown: not determined by the results reproduced here.
	StatusUnknown
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusInfeasible:
		return "infeasible"
	case StatusTrivial:
		return "trivial (no communication)"
	case StatusSolvable:
		return "wait-free solvable"
	case StatusNotSolvable:
		return "not wait-free solvable"
	case StatusUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Report explains a classification.
type Report struct {
	Spec      gsb.Spec
	Canonical gsb.Spec // canonical representative actually classified
	Status    Status
	Reason    string
}

// Classify determines the wait-free solvability status of a symmetric GSB
// task from the paper's results:
//
//  1. infeasible tasks (Lemma 1);
//  2. communication-free tasks (Theorem 9);
//  3. election-equivalent and perfect-renaming tasks (Theorem 11,
//     Corollary 5): not solvable;
//  4. <n,m,l>=1,u> tasks when {C(n,i)} is not prime (Theorem 10 with
//     Lemmas 4-5): not solvable;
//  5. WSB and (2n-2)-renaming when {C(n,i)} is prime (the cited
//     Castañeda-Rajsbaum upper bound): solvable;
//  6. otherwise unknown.
func Classify(spec gsb.Spec) Report {
	if !spec.Symmetric() {
		return classifyAsymmetric(spec)
	}
	if !spec.Feasible() {
		return Report{Spec: spec, Canonical: spec, Status: StatusInfeasible,
			Reason: "sum of lower bounds exceeds n or sum of upper bounds is below n (Lemma 1)"}
	}
	canon := spec.Canonical()
	n, m := canon.N(), canon.M()
	l, u := canon.SymBounds()

	if nocomm.Solvable(canon) {
		return Report{Spec: spec, Canonical: canon, Status: StatusTrivial,
			Reason: "l = 0 and ceil((2n-1)/m) <= u: a fixed identity partition decides (Theorem 9)"}
	}
	if m == n && l == 1 && u == 1 {
		return Report{Spec: spec, Canonical: canon, Status: StatusNotSolvable,
			Reason: "perfect renaming is universal for GSB and election reduces to it (Theorem 8, Corollary 5)"}
	}
	if l >= 1 && m > 1 && !BinomialsPrime(n) {
		return Report{Spec: spec, Canonical: canon, Status: StatusNotSolvable,
			Reason: fmt.Sprintf("l >= 1 and gcd{C(%d,i)} = %d is not prime (Theorem 10)", n, BinomialGCD(n))}
	}
	if m == 2*n-2 && l == 0 && u == 1 && !BinomialsPrime(n) {
		return Report{Spec: spec, Canonical: canon, Status: StatusNotSolvable,
			Reason: fmt.Sprintf("(2n-2)-renaming is equivalent to WSB, and WSB is not solvable because gcd{C(%d,i)} = %d is not prime (Section 5.3)", n, BinomialGCD(n))}
	}
	if BinomialsPrime(n) {
		if m == 2 && l == 1 {
			return Report{Spec: spec, Canonical: canon, Status: StatusSolvable,
				Reason: "the task is WSB (2-slot) and {C(n,i)} is prime (Castañeda-Rajsbaum via Theorem 10's converse direction)"}
		}
		if l == 0 && vecmath.CeilDiv(2*n-2, m) <= u {
			return Report{Spec: spec, Canonical: canon, Status: StatusSolvable,
				Reason: "solvable from (2n-2)-renaming (equivalent to WSB, solvable when {C(n,i)} is prime) by a fixed partition of the 2n-2 names"}
		}
	}
	return Report{Spec: spec, Canonical: canon, Status: StatusUnknown,
		Reason: "not determined by the results reproduced from the paper"}
}

func classifyAsymmetric(spec gsb.Spec) Report {
	if !spec.Feasible() {
		return Report{Spec: spec, Canonical: spec, Status: StatusInfeasible,
			Reason: "sum of lower bounds exceeds n or sum of upper bounds is below n (Lemma 1)"}
	}
	if nocomm.Solvable(spec) {
		return Report{Spec: spec, Canonical: spec, Status: StatusTrivial,
			Reason: "a fixed identity partition satisfies the per-value bounds (Theorem 9 generalized)"}
	}
	if isElection(spec) {
		return Report{Spec: spec, Canonical: spec, Status: StatusNotSolvable,
			Reason: "election is not wait-free solvable (Theorem 11)"}
	}
	return Report{Spec: spec, Canonical: spec, Status: StatusUnknown,
		Reason: "asymmetric task not determined by the results reproduced from the paper"}
}

func isElection(spec gsb.Spec) bool {
	n := spec.N()
	return spec.M() == 2 &&
		spec.Lower(1) == 1 && spec.Upper(1) == 1 &&
		spec.Lower(2) == n-1 && spec.Upper(2) == n-1
}

// FamilyReport classifies every feasible member of the <n,m,-,-> family.
func FamilyReport(n, m int) []Report {
	var out []Report
	for _, spec := range gsb.Family(n, m) {
		out = append(out, Classify(spec))
	}
	return out
}

// GCDRow is one row of the Theorem 10 classification table.
type GCDRow struct {
	N          int
	GCD        int
	Prime      bool // gcd == 1: WSB and (2n-2)-renaming solvable
	PrimePower bool // n is a prime power (the arithmetic reason gcd > 1)
}

// GCDTable tabulates the binomial-gcd condition for n in [2..maxN].
func GCDTable(maxN int) []GCDRow {
	var rows []GCDRow
	for n := 2; n <= maxN; n++ {
		rows = append(rows, GCDRow{
			N:          n,
			GCD:        BinomialGCD(n),
			Prime:      BinomialsPrime(n),
			PrimePower: IsPrimePower(n),
		})
	}
	return rows
}
