package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialCases(t *testing.T) {
	s := New(1)
	s.AddClause(1)
	if s.Solve() != Sat {
		t.Fatal("single unit should be SAT")
	}
	if !s.Model()[1] {
		t.Fatal("model should set var 1 true")
	}

	s = New(1)
	s.AddClause(1)
	s.AddClause(-1)
	if s.Solve() != Unsat {
		t.Fatal("contradictory units should be UNSAT")
	}

	s = New(2)
	s.AddClause() // empty clause
	if s.Solve() != Unsat {
		t.Fatal("empty clause should be UNSAT")
	}

	s = New(0)
	if s.Solve() != Sat {
		t.Fatal("empty formula should be SAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New(2)
	s.AddClause(1, -1)
	s.AddClause(2)
	if s.Solve() != Sat || !s.Model()[2] {
		t.Fatal("tautology handling broken")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x1 & (x1->x2) & (x2->x3) & (x3->x4): all true.
	s := New(4)
	s.AddClause(1)
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	s.AddClause(-3, 4)
	if s.Solve() != Sat {
		t.Fatal("chain should be SAT")
	}
	m := s.Model()
	for v := 1; v <= 4; v++ {
		if !m[v] {
			t.Fatalf("var %d should be true", v)
		}
	}
}

// pigeonhole adds the classic PHP(p, h) clauses: p pigeons, h holes,
// each pigeon in some hole, no two pigeons share a hole.
func pigeonhole(p, h int) *Solver {
	varOf := func(pigeon, hole int) int { return pigeon*h + hole + 1 }
	s := New(p * h)
	for i := 0; i < p; i++ {
		lits := make([]int, h)
		for j := 0; j < h; j++ {
			lits[j] = varOf(i, j)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < h; j++ {
		for a := 0; a < p; a++ {
			for b := a + 1; b < p; b++ {
				s.AddClause(-varOf(a, j), -varOf(b, j))
			}
		}
	}
	return s
}

func TestPigeonhole(t *testing.T) {
	// PHP(h+1, h) is UNSAT (famously hard for resolution, but tiny sizes
	// are instant); PHP(h, h) is SAT.
	for h := 2; h <= 6; h++ {
		if got := pigeonhole(h+1, h).Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want UNSAT", h+1, h, got)
		}
		if got := pigeonhole(h, h).Solve(); got != Sat {
			t.Errorf("PHP(%d,%d) = %v, want SAT", h, h, got)
		}
	}
}

// bruteForce checks satisfiability of a clause list over nVars by
// enumeration.
func bruteForce(nVars int, clauses [][]int) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := mask&(1<<(v-1)) != 0
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		nVars := 4 + rng.Intn(9) // 4..12
		nClauses := 2 + rng.Intn(6*nVars)
		clauses := make([][]int, nClauses)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			cl := make([]int, width)
			for k := range cl {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[k] = v
			}
			clauses[i] = cl
		}
		s := New(nVars)
		for _, cl := range clauses {
			s.AddClause(cl...)
		}
		got := s.Solve()
		want := bruteForce(nVars, clauses)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v bruteforce=%v clauses=%v", trial, got, want, clauses)
		}
		if got == Sat {
			// The returned model must actually satisfy the clauses.
			m := s.Model()
			for _, cl := range clauses {
				sat := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == m[v] {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy %v", trial, cl)
				}
			}
		}
	}
}

func TestConflictBudget(t *testing.T) {
	s := pigeonhole(8, 7)
	s.MaxConflicts = 1
	if got := s.Solve(); got != Aborted && got != Unsat {
		t.Fatalf("budgeted solve = %v", got)
	}
}

func TestLitValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range literal")
		}
	}()
	New(2).AddClause(3)
}

func TestResultString(t *testing.T) {
	if Unsat.String() != "UNSAT" || Sat.String() != "SAT" || Aborted.String() != "ABORTED" {
		t.Error("Result strings wrong")
	}
}
