// Package sat is a compact conflict-driven clause-learning (CDCL) SAT
// solver: two-watched-literal propagation, first-UIP clause learning with
// backjumping, exponential VSIDS-style activity ordering, phase saving
// and Luby restarts. It exists to exhaust the decision-map searches of
// package topology whose constraints (e.g. weak symmetry breaking's
// not-all-equal facets) propagate too weakly for chronological
// backtracking.
//
// Literal convention: a literal is a non-zero int; +v means variable v is
// true, -v means variable v is false, with v in [1..NumVars].
package sat

import "fmt"

// Result is the outcome of Solve.
type Result int

// Solve outcomes.
const (
	Unsat Result = iota
	Sat
	Aborted // conflict budget exhausted
)

// String renders the result.
func (r Result) String() string {
	switch r {
	case Unsat:
		return "UNSAT"
	case Sat:
		return "SAT"
	case Aborted:
		return "ABORTED"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

const (
	unassigned int8 = iota
	assignedTrue
	assignedFalse
)

type clause struct {
	lits     []int
	learnt   bool
	activity float64
}

// Solver is a one-shot CDCL solver: add clauses, call Solve once.
type Solver struct {
	nVars   int
	clauses []*clause
	watches map[int][]*clause // literal -> clauses watching it

	assign  []int8 // 1-based by variable
	level   []int
	reason  []*clause
	trail   []int
	trailLo []int // decision-level boundaries in trail

	activity []float64
	varInc   float64
	phase    []int8

	propHead int
	unsatNow bool // empty/contradictory clause added at level 0

	// MaxConflicts aborts the search when exceeded (0 = unlimited).
	MaxConflicts int64
	conflicts    int64
}

// New creates a solver over variables 1..nVars.
func New(nVars int) *Solver {
	if nVars < 0 {
		panic("sat: negative variable count")
	}
	return &Solver{
		nVars:    nVars,
		watches:  map[int][]*clause{},
		assign:   make([]int8, nVars+1),
		level:    make([]int, nVars+1),
		reason:   make([]*clause, nVars+1),
		activity: make([]float64, nVars+1),
		phase:    make([]int8, nVars+1),
		varInc:   1,
	}
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) checkLit(l int) {
	v := l
	if v < 0 {
		v = -v
	}
	if l == 0 || v > s.nVars {
		panic(fmt.Sprintf("sat: literal %d outside variable range 1..%d", l, s.nVars))
	}
}

// AddClause installs a clause (disjunction of literals). Duplicate
// literals are removed; tautologies are dropped. Must be called before
// Solve.
func (s *Solver) AddClause(lits ...int) {
	seen := map[int]bool{}
	var cl []int
	for _, l := range lits {
		s.checkLit(l)
		if seen[-l] {
			return // tautology
		}
		if !seen[l] {
			seen[l] = true
			cl = append(cl, l)
		}
	}
	if len(cl) == 0 {
		s.unsatNow = true
		return
	}
	if len(cl) == 1 {
		// Enqueue at level 0 (conflicts detected during initial propagation).
		switch s.value(cl[0]) {
		case assignedFalse:
			s.unsatNow = true
		case unassigned:
			s.enqueue(cl[0], nil)
		}
		return
	}
	c := &clause{lits: cl}
	s.clauses = append(s.clauses, c)
	s.watch(c, cl[0])
	s.watch(c, cl[1])
}

func (s *Solver) watch(c *clause, lit int) {
	s.watches[-lit] = append(s.watches[-lit], c)
}

func (s *Solver) value(lit int) int8 {
	v := lit
	neg := false
	if v < 0 {
		v, neg = -v, true
	}
	a := s.assign[v]
	if a == unassigned {
		return unassigned
	}
	if (a == assignedTrue) != neg {
		return assignedTrue
	}
	return assignedFalse
}

func (s *Solver) enqueue(lit int, from *clause) {
	v := lit
	val := assignedTrue
	if v < 0 {
		v = -v
		val = assignedFalse
	}
	s.assign[v] = val
	s.level[v] = len(s.trailLo)
	s.reason[v] = from
	s.trail = append(s.trail, lit)
}

// propagate performs unit propagation; it returns the conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.propHead < len(s.trail) {
		lit := s.trail[s.propHead]
		s.propHead++
		watching := s.watches[lit]
		kept := watching[:0]
		for i := 0; i < len(watching); i++ {
			c := watching[i]
			// Ensure the falsified literal is at position 1.
			if c.lits[0] == -lit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == assignedTrue {
				kept = append(kept, c) // satisfied; keep watching
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != assignedFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watch(c, c.lits[1])
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if s.value(c.lits[0]) == assignedFalse {
				// Conflict: keep remaining watchers, then report.
				kept = append(kept, watching[i+1:]...)
				s.watches[lit] = kept
				return c
			}
			s.enqueue(c.lits[0], c)
		}
		s.watches[lit] = kept
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]int, int) {
	curLevel := len(s.trailLo)
	seen := make(map[int]bool)
	var learnt []int
	counter := 0
	var assertLit int
	idx := len(s.trail) - 1

	reasonLits := confl.lits
	for {
		for _, l := range reasonLits {
			v := l
			if v < 0 {
				v = -v
			}
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, l)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for {
			v := s.trail[idx]
			if v < 0 {
				v = -v
			}
			if seen[v] {
				break
			}
			idx--
		}
		v := s.trail[idx]
		sign := 1
		if v < 0 {
			v, sign = -v, -1
		}
		counter--
		seen[v] = false
		idx--
		if counter == 0 {
			assertLit = -sign * v
			break
		}
		if s.reason[v] == nil {
			panic("sat: decision reached before UIP")
		}
		// Skip the asserting literal itself in the reason (lits[0]).
		reasonLits = s.reason[v].lits[1:]
	}

	out := append([]int{assertLit}, learnt...)
	// Backjump level: highest level among the non-asserting literals.
	back := 0
	for _, l := range learnt {
		v := l
		if v < 0 {
			v = -v
		}
		if s.level[v] > back {
			back = s.level[v]
		}
	}
	return out, back
}

func (s *Solver) cancelUntil(level int) {
	for len(s.trailLo) > level {
		lo := s.trailLo[len(s.trailLo)-1]
		for i := len(s.trail) - 1; i >= lo; i-- {
			lit := s.trail[i]
			v := lit
			if v < 0 {
				v = -v
			}
			s.phase[v] = s.assign[v]
			s.assign[v] = unassigned
			s.reason[v] = nil
		}
		s.trail = s.trail[:lo]
		s.trailLo = s.trailLo[:len(s.trailLo)-1]
	}
	if s.propHead > len(s.trail) {
		s.propHead = len(s.trail)
	}
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == unassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby returns the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve runs the CDCL search. On Sat, Model reports the assignment.
func (s *Solver) Solve() Result {
	if s.unsatNow {
		return Unsat
	}
	if confl := s.propagate(); confl != nil {
		return Unsat
	}
	var restartIdx int64 = 1
	conflictsAtRestart := int64(0)
	restartBudget := luby(restartIdx) * 64

	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictsAtRestart++
			if len(s.trailLo) == 0 {
				return Unsat
			}
			if s.MaxConflicts > 0 && s.conflicts > s.MaxConflicts {
				return Aborted
			}
			learnt, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.clauses = append(s.clauses, c)
				s.watch(c, c.lits[0])
				s.watch(c, c.lits[1])
				s.enqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			continue
		}

		if conflictsAtRestart >= restartBudget {
			restartIdx++
			conflictsAtRestart = 0
			restartBudget = luby(restartIdx) * 64
			s.cancelUntil(0)
			continue
		}

		v := s.pickBranchVar()
		if v == 0 {
			return Sat
		}
		s.trailLo = append(s.trailLo, len(s.trail))
		lit := v
		if s.phase[v] == assignedFalse {
			lit = -v
		}
		s.enqueue(lit, nil)
	}
}

// Model returns the satisfying assignment (index 1..NumVars) after a Sat
// result; entry v is the value of variable v.
func (s *Solver) Model() []bool {
	model := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		model[v] = s.assign[v] == assignedTrue
	}
	return model
}

// Conflicts reports the number of conflicts encountered.
func (s *Solver) Conflicts() int64 { return s.conflicts }
