package universal

import (
	"strings"
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/tasks"
)

func TestUniversalitySymmetricExhaustive(t *testing.T) {
	// Theorem 8: every feasible symmetric <n,m,l,u>-GSB task is solvable
	// from perfect renaming. Exhaustive over the full family for n <= 7,
	// with both an oracle box and a real TAS-row perfect renaming protocol.
	for n := 2; n <= 7; n++ {
		for m := 1; m <= n; m++ {
			for _, spec := range gsb.Family(n, m) {
				spec := spec
				for seed := int64(0); seed < 6; seed++ {
					// Oracle-box perfect renaming (adversarial name order).
					_, err := tasks.RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
						func(n int) tasks.Solver {
							box := mem.PerfectRenamingBox("PR", n, seed)
							return New(spec, tasks.NewBoxSolver(box))
						})
					if err != nil {
						t.Fatalf("%v seed=%d (box): %v", spec, seed, err)
					}
					// Protocol-based perfect renaming (ASM[test&set]).
					_, err = tasks.RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
						func(n int) tasks.Solver {
							return New(spec, tasks.NewTASRenaming("TAS", n))
						})
					if err != nil {
						t.Fatalf("%v seed=%d (tas): %v", spec, seed, err)
					}
				}
			}
		}
	}
}

func TestUniversalityAsymmetric(t *testing.T) {
	specs := []gsb.Spec{
		gsb.Election(4),
		gsb.Election(7),
		// The committee example from the introduction: three committees
		// with sizes in [1..2], [2..3] and [1..4] for 6 people.
		gsb.NewAsym(6, []int{1, 2, 1}, []int{2, 3, 4}),
		// A skewed task: value 1 never decided, value 2 decided by all.
		gsb.NewAsym(3, []int{0, 3}, []int{0, 3}),
	}
	for _, spec := range specs {
		spec := spec
		for seed := int64(0); seed < 15; seed++ {
			_, err := tasks.RunVerified(spec, sched.DefaultIDs(spec.N()), sched.NewRandom(seed),
				func(n int) tasks.Solver {
					box := mem.PerfectRenamingBox("PR", n, seed)
					return New(spec, tasks.NewBoxSolver(box))
				})
			if err != nil {
				t.Fatalf("%v seed=%d: %v", spec, seed, err)
			}
		}
	}
}

func TestUniversalityWithCrashes(t *testing.T) {
	spec := gsb.KSlot(6, 4)
	for seed := int64(0); seed < 30; seed++ {
		_, err := tasks.RunVerified(spec, sched.DefaultIDs(6),
			sched.NewRandomCrash(seed, 0.05, 5),
			func(n int) tasks.Solver {
				return New(spec, tasks.NewTASRenaming("TAS", n))
			})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestFirstOutputVectorDeterministicAndLegal(t *testing.T) {
	specs := []gsb.Spec{
		gsb.Election(5),
		gsb.NewAsym(6, []int{1, 2, 1}, []int{2, 3, 4}),
		gsb.NewAsym(4, []int{0, 0}, []int{4, 4}),
	}
	for _, spec := range specs {
		v1 := firstOutputVector(spec)
		v2 := firstOutputVector(spec)
		if len(v1) != spec.N() {
			t.Fatalf("%v: vector length %d", spec, len(v1))
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("%v: firstOutputVector not deterministic", spec)
			}
		}
		if err := spec.Verify(v1); err != nil {
			t.Fatalf("%v: first output vector %v illegal: %v", spec, v1, err)
		}
	}
}

func TestNewPanicsOnInfeasible(t *testing.T) {
	defer func() {
		rec := recover()
		if rec == nil || !strings.Contains(rec.(string), "infeasible") {
			t.Fatalf("recover = %v", rec)
		}
	}()
	New(gsb.NewSym(5, 2, 0, 1), nil)
}

func TestSolveRejectsBadRenamer(t *testing.T) {
	spec := gsb.WSB(3)
	bad := tasks.SolverFunc(func(*sched.Proc, int) int { return 7 })
	c := New(spec, bad)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range perfect name")
		}
	}()
	r := sched.NewRunner(1, []int{1}, sched.NewRoundRobin())
	_, _ = r.Run(func(p *sched.Proc) { p.Decide(c.Solve(p, p.ID())) })
}

func TestSymmetricConstructionIsBalanced(t *testing.T) {
	// The symmetric construction must realize the balanced kernel vector.
	n, m := 7, 3
	spec := gsb.NewSym(n, m, 0, n)
	res, err := tasks.Run(n, sched.DefaultIDs(n), sched.NewRoundRobin(),
		func(n int) tasks.Solver {
			return New(spec, tasks.NewFetchIncRenaming("FI", n))
		})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.DecidedVector()
	if err != nil {
		t.Fatal(err)
	}
	counting := spec.CountingVector(out)
	balanced := gsb.BalancedKernelVector(n, m)
	if !counting.SortedDesc().Equal(balanced) {
		t.Fatalf("counting vector %v not balanced (%v)", counting, balanced)
	}
}

func TestUniversalExhaustiveSchedules(t *testing.T) {
	// Theorem 8's construction over EVERY failure-free schedule (model
	// checking via sched.ExploreAll) for the hardest <3,2,-,-> task and
	// an asymmetric task.
	for _, spec := range []gsb.Spec{gsb.Hardest(3, 2), gsb.NewAsym(3, []int{1, 1}, []int{1, 2})} {
		spec := spec
		_, err := sched.ExploreAll(spec.N(), sched.DefaultIDs(spec.N()), 200000, 1000,
			func() sched.Body {
				return tasks.Body(New(spec, tasks.NewFetchIncRenaming("FI", spec.N())))
			},
			func(res *sched.Result) error {
				out, err := res.DecidedVector()
				if err != nil {
					return err
				}
				return spec.Verify(out)
			})
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
	}
}
