// Package universal implements Theorem 8 of the paper: perfect renaming
// (the <n,n,1,1>-GSB task) is universal for the family of GSB tasks. Given
// any solver for perfect renaming, the construction solves an arbitrary
// feasible <n,m,l⃗,u⃗>-GSB task with no further communication.
package universal

import (
	"fmt"

	"repro/internal/gsb"
	"repro/internal/sched"
	"repro/internal/tasks"
)

// Construction solves an arbitrary feasible GSB task from perfect
// renaming, exactly as in the proof of Theorem 8:
//
//   - symmetric <n,m,l,u>-GSB: a process with perfect name dec outputs
//     ((dec-1) mod m) + 1; the resulting counting vector is the balanced
//     one, which feasibility (l <= floor(n/m) <= ceil(n/m) <= u) makes
//     legal;
//   - asymmetric <n,m,l⃗,u⃗>-GSB: the set of output vectors is ordered
//     deterministically and its first element V is fixed in advance; a
//     process with perfect name dec outputs V[dec-1]. Every entry of V is
//     taken by exactly one process, so the output vector is V itself.
type Construction struct {
	spec    gsb.Spec
	renamer tasks.Solver
	vector  []int // deterministic output vector for the asymmetric case
}

// New builds the construction for a feasible spec from a perfect renaming
// solver for spec.N() processes.
func New(spec gsb.Spec, renamer tasks.Solver) *Construction {
	if !spec.Feasible() {
		panic(fmt.Sprintf("universal: spec %v is infeasible", spec))
	}
	c := &Construction{spec: spec, renamer: renamer}
	if !spec.Symmetric() {
		c.vector = firstOutputVector(spec)
	}
	return c
}

// firstOutputVector returns the first legal output vector in the
// deterministic order induced by descending-lexicographic counting
// vectors expanded value-by-value ("all 1s, then all 2s, ...").
func firstOutputVector(spec gsb.Spec) []int {
	counting := spec.CountingVectors()
	if len(counting) == 0 {
		panic(fmt.Sprintf("universal: spec %v has no counting vectors", spec))
	}
	cv := counting[0]
	out := make([]int, 0, spec.N())
	for v, c := range cv {
		for k := 0; k < c; k++ {
			out = append(out, v+1)
		}
	}
	return out
}

// Solve implements tasks.Solver.
func (c *Construction) Solve(p *sched.Proc, id int) int {
	dec := c.renamer.Solve(p, id)
	if dec < 1 || dec > c.spec.N() {
		panic(fmt.Sprintf("universal: perfect renaming produced %d outside [1..%d]", dec, c.spec.N()))
	}
	if c.spec.Symmetric() {
		return ((dec - 1) % c.spec.M()) + 1
	}
	return c.vector[dec-1]
}
