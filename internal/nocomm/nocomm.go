// Package nocomm implements Theorem 9 of the paper: the characterization
// of GSB tasks solvable with no communication at all. An algorithm that
// never accesses shared memory is a decision function delta mapping each
// identity in [1..2n-1] to an output value; it solves the task iff every
// possible set of n participants (with distinct identities) produces a
// legal output vector.
//
// The package provides the paper's constructive partition solver, the
// closed-form characterization (generalized to asymmetric bounds via
// per-value group-size intervals), and independent brute-force and
// subset-exhaustive checkers used to cross-validate the theorem.
package nocomm

import (
	"fmt"

	"repro/internal/gsb"
	"repro/internal/vecmath"
)

// DecisionFunc is a communication-free algorithm: entry id-1 is the value
// in [1..m] decided by a process whose identity is id. Identities range
// over [1..2n-1] (Theorem 1 fixes N = 2n-1).
type DecisionFunc []int

// IDSpace returns the identity-space size for n processes, 2n-1.
func IDSpace(n int) int { return 2*n - 1 }

// Solvable reports whether the task is solvable with no communication,
// evaluated via per-value group-size intervals (valid for asymmetric
// specs too):
//
// A decision function with group sizes g_v = |delta^{-1}(v)| solves the
// task iff for every value v, min(g_v, n) <= u_v (the adversary can place
// up to g_v participants in group v) and max(0, g_v-(n-1)) >= l_v (the
// adversary can avoid group v except for g_v-(n-1) forced members).
// Such sizes exist iff sum of the per-value lower interval ends is at
// most 2n-1 and the sum of upper ends is at least 2n-1.
func Solvable(spec gsb.Spec) bool {
	if !spec.Feasible() {
		return false
	}
	loSum, hiSum := 0, 0
	n := spec.N()
	for v := 1; v <= spec.M(); v++ {
		lo, hi := groupInterval(spec, v)
		if lo > hi {
			return false
		}
		loSum += lo
		hiSum += hi
	}
	return loSum <= IDSpace(n) && IDSpace(n) <= hiSum
}

// groupInterval returns the allowed size range [lo..hi] for delta's group
// of value v.
func groupInterval(spec gsb.Spec, v int) (lo, hi int) {
	n := spec.N()
	l, u := spec.Lower(v), spec.Upper(v)
	lo = 0
	if l > 0 {
		// Need g_v - (n-1) >= l so that even participant sets avoiding the
		// group contain at least l members of it.
		lo = n - 1 + l
	}
	hi = IDSpace(n)
	if u < n {
		// Need min(g_v, n) <= u, i.e. g_v <= u when u < n.
		hi = u
	}
	return lo, hi
}

// SolvableFormula evaluates the paper's Theorem 9 statement for symmetric
// specs: with m > 1, solvable iff l = 0 and ceil((2n-1)/m) <= u; with
// m = 1, solvable iff feasible. Panics on asymmetric specs.
func SolvableFormula(spec gsb.Spec) bool {
	l, u := spec.SymBounds()
	if !spec.Feasible() {
		return false
	}
	if spec.M() == 1 {
		return true
	}
	return l == 0 && vecmath.CeilDiv(IDSpace(spec.N()), spec.M()) <= u
}

// Build returns a decision function solving the task with no
// communication, or false when none exists. The construction follows the
// proof of Theorem 9: pick group sizes within the per-value intervals
// summing to 2n-1 (greedily topping up from the interval lower ends), and
// map identity ranges to values.
func Build(spec gsb.Spec) (DecisionFunc, bool) {
	if !Solvable(spec) {
		return nil, false
	}
	n, m := spec.N(), spec.M()
	sizes := make([]int, m)
	total := 0
	for v := 1; v <= m; v++ {
		lo, _ := groupInterval(spec, v)
		sizes[v-1] = lo
		total += lo
	}
	for v := 1; v <= m && total < IDSpace(n); v++ {
		_, hi := groupInterval(spec, v)
		add := vecmath.Min(hi-sizes[v-1], IDSpace(n)-total)
		sizes[v-1] += add
		total += add
	}
	if total != IDSpace(n) {
		return nil, false // unreachable when Solvable holds
	}
	delta := make(DecisionFunc, IDSpace(n))
	id := 0
	for v := 1; v <= m; v++ {
		for k := 0; k < sizes[v-1]; k++ {
			delta[id] = v
			id++
		}
	}
	return delta, true
}

// BoundedHomonymous returns the Corollary 2 decision function for
// x-bounded homonymous renaming: delta(id) = ceil(id/x).
func BoundedHomonymous(n, x int) DecisionFunc {
	delta := make(DecisionFunc, IDSpace(n))
	for id := 1; id <= IDSpace(n); id++ {
		delta[id-1] = vecmath.CeilDiv(id, x)
	}
	return delta
}

// IdentityRenaming returns the trivial (2n-1)-renaming decision function
// (each process outputs its own identity), the <n,2n-1,0,1>-GSB solver of
// Section 5.2.
func IdentityRenaming(n int) DecisionFunc {
	delta := make(DecisionFunc, IDSpace(n))
	for id := 1; id <= IDSpace(n); id++ {
		delta[id-1] = id
	}
	return delta
}

// Verify checks that delta solves the task for every participant set,
// using the group-size argument (exact, any size).
func Verify(spec gsb.Spec, delta DecisionFunc) error {
	n := spec.N()
	if len(delta) != IDSpace(n) {
		return fmt.Errorf("nocomm: delta has %d entries, want %d", len(delta), IDSpace(n))
	}
	sizes := make([]int, spec.M())
	for id, v := range delta {
		if v < 1 || v > spec.M() {
			return fmt.Errorf("nocomm: delta(%d) = %d outside [1..%d]", id+1, v, spec.M())
		}
		sizes[v-1]++
	}
	for v := 1; v <= spec.M(); v++ {
		g := sizes[v-1]
		if maxCount := vecmath.Min(g, n); maxCount > spec.Upper(v) {
			return fmt.Errorf("nocomm: a participant set can decide value %d %d times, above upper bound %d",
				v, maxCount, spec.Upper(v))
		}
		if minCount := vecmath.Max(0, g-(n-1)); minCount < spec.Lower(v) {
			return fmt.Errorf("nocomm: a participant set can decide value %d only %d times, below lower bound %d",
				v, minCount, spec.Lower(v))
		}
	}
	return nil
}

// VerifyExhaustive checks delta against every n-subset of identities
// explicitly (cross-check of Verify; cost C(2n-1, n)).
func VerifyExhaustive(spec gsb.Spec, delta DecisionFunc) error {
	n := spec.N()
	if len(delta) != IDSpace(n) {
		return fmt.Errorf("nocomm: delta has %d entries, want %d", len(delta), IDSpace(n))
	}
	var failure error
	vecmath.Subsets(IDSpace(n), n, func(subset []int) bool {
		outputs := make([]int, n)
		for i, id := range subset {
			outputs[i] = delta[id]
		}
		if err := spec.Verify(outputs); err != nil {
			failure = fmt.Errorf("nocomm: participant identities %v: %w", subset, err)
			return false
		}
		return true
	})
	return failure
}

// BruteForceSolvable searches all m^(2n-1) decision functions (for tiny
// parameters only) and reports whether any solves the task. It is the
// independent validation of Theorem 9 used in tests; cost grows as
// m^(2n-1) * m.
func BruteForceSolvable(spec gsb.Spec) bool {
	n, m := spec.N(), spec.M()
	size := IDSpace(n)
	delta := make(DecisionFunc, size)
	var rec func(idx int) bool
	rec = func(idx int) bool {
		if idx == size {
			return Verify(spec, delta) == nil
		}
		for v := 1; v <= m; v++ {
			delta[idx] = v
			if rec(idx + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}
