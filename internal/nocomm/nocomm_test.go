package nocomm

import (
	"math/rand"
	"testing"

	"repro/internal/gsb"
	"repro/internal/vecmath"
)

func TestTheorem9AgainstIntervalCharacterization(t *testing.T) {
	// The paper's closed form (symmetric case) must agree with the
	// interval-based characterization on every symmetric spec, n <= 8 and
	// m <= 2n-1.
	for n := 2; n <= 8; n++ {
		for m := 1; m <= 2*n-1; m++ {
			for l := 0; l*m <= n; l++ {
				for u := vecmath.Max(l, vecmath.CeilDiv(n, m)); u <= n; u++ {
					spec := gsb.NewSym(n, m, l, u)
					if !spec.Feasible() {
						continue
					}
					if got, want := Solvable(spec), SolvableFormula(spec); got != want {
						t.Fatalf("%v: interval=%v formula=%v", spec, got, want)
					}
				}
			}
		}
	}
}

func TestTheorem9AgainstBruteForce(t *testing.T) {
	// Independent validation: exhaustive search over all decision
	// functions for tiny parameters.
	for n := 2; n <= 4; n++ {
		maxM := 2*n - 1
		if n == 4 {
			maxM = 4 // keep m^(2n-1) manageable
		}
		for m := 1; m <= maxM; m++ {
			for l := 0; l*m <= n; l++ {
				for u := vecmath.Max(l, vecmath.CeilDiv(n, m)); u <= n; u++ {
					spec := gsb.NewSym(n, m, l, u)
					if !spec.Feasible() {
						continue
					}
					if got, want := Solvable(spec), BruteForceSolvable(spec); got != want {
						t.Fatalf("%v: characterization=%v bruteforce=%v", spec, got, want)
					}
				}
			}
		}
	}
}

func TestBuildProducesVerifiedSolutions(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for m := 1; m <= 2*n-1; m++ {
			for u := vecmath.CeilDiv(n, m); u <= n; u++ {
				spec := gsb.NewSym(n, m, 0, u)
				delta, ok := Build(spec)
				if ok != Solvable(spec) {
					t.Fatalf("%v: Build ok=%v but Solvable=%v", spec, ok, Solvable(spec))
				}
				if !ok {
					continue
				}
				if err := Verify(spec, delta); err != nil {
					t.Fatalf("%v: built delta fails: %v", spec, err)
				}
				if n <= 6 {
					if err := VerifyExhaustive(spec, delta); err != nil {
						t.Fatalf("%v: built delta fails exhaustively: %v", spec, err)
					}
				}
			}
		}
	}
}

func TestBuildAsymmetric(t *testing.T) {
	// The interval characterization generalizes Theorem 9 to asymmetric
	// specs: e.g. <4,[0,0],[2,4]> is solvable (value 2 can absorb all) but
	// election never is.
	solvable := gsb.NewAsym(4, []int{0, 0}, []int{2, 4})
	delta, ok := Build(solvable)
	if !ok {
		t.Fatalf("%v should be solvable without communication", solvable)
	}
	if err := VerifyExhaustive(solvable, delta); err != nil {
		t.Fatal(err)
	}
	if _, ok := Build(gsb.Election(4)); ok {
		t.Fatal("election must not be solvable without communication")
	}
}

func TestVerifyMatchesVerifyExhaustive(t *testing.T) {
	// The group-size argument and explicit subset enumeration must agree
	// on random decision functions.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4) // 2..5
		m := 1 + rng.Intn(2*n-1)
		l := rng.Intn(n/m + 1)
		u := l + rng.Intn(n-l+1)
		if u == 0 {
			u = 1
		}
		spec := gsb.NewSym(n, m, l, u)
		delta := make(DecisionFunc, IDSpace(n))
		for i := range delta {
			delta[i] = 1 + rng.Intn(m)
		}
		fast := Verify(spec, delta)
		slow := VerifyExhaustive(spec, delta)
		if (fast == nil) != (slow == nil) {
			t.Fatalf("%v delta=%v: Verify=%v VerifyExhaustive=%v", spec, delta, fast, slow)
		}
	}
}

func TestCorollary3WSBNotSolvable(t *testing.T) {
	for n := 2; n <= 10; n++ {
		if Solvable(gsb.WSB(n)) {
			t.Errorf("WSB(%d) must not be communication-free solvable", n)
		}
	}
}

func TestTrivialRenamingSolvable(t *testing.T) {
	// <n,2n-1,0,1>-GSB (classic (2n-1)-renaming with ids in [1..2n-1]) is
	// solvable by outputting one's own identity.
	for n := 2; n <= 8; n++ {
		spec := gsb.Renaming(n, 2*n-1)
		if !Solvable(spec) {
			t.Fatalf("(2n-1)-renaming should be communication-free for n=%d", n)
		}
		delta := IdentityRenaming(n)
		if err := Verify(spec, delta); err != nil {
			t.Fatalf("identity delta fails: %v", err)
		}
	}
	// (2n-2)-renaming is NOT communication-free (and in fact not always
	// wait-free solvable at all).
	for n := 2; n <= 8; n++ {
		if Solvable(gsb.Renaming(n, 2*n-2)) {
			t.Errorf("(2n-2)-renaming must not be communication-free for n=%d", n)
		}
	}
}

func TestCorollary2BoundedHomonymous(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for x := 1; x <= n; x++ {
			spec := gsb.BoundedHomonymous(n, x)
			delta := BoundedHomonymous(n, x)
			if err := Verify(spec, delta); err != nil {
				t.Fatalf("n=%d x=%d: %v", n, x, err)
			}
			if !Solvable(spec) {
				t.Fatalf("n=%d x=%d: spec should be solvable", n, x)
			}
		}
	}
}

func TestPerfectRenamingNotSolvable(t *testing.T) {
	for n := 2; n <= 8; n++ {
		if Solvable(gsb.PerfectRenaming(n)) {
			t.Errorf("perfect renaming must not be communication-free for n=%d", n)
		}
	}
}

func TestKSlotNotSolvable(t *testing.T) {
	// Any task with l >= 1 and m > 1 is not communication-free
	// (Theorem 9).
	for n := 3; n <= 8; n++ {
		for k := 2; k <= n-1; k++ {
			if Solvable(gsb.KSlot(n, k)) {
				t.Errorf("%d-slot must not be communication-free for n=%d", k, n)
			}
		}
	}
}

func TestM1AlwaysSolvable(t *testing.T) {
	for n := 1; n <= 6; n++ {
		spec := gsb.NewSym(n, 1, 0, n)
		if !Solvable(spec) || !SolvableFormula(spec) {
			t.Errorf("m=1 spec %v should be trivially solvable", spec)
		}
		delta, ok := Build(spec)
		if !ok {
			t.Fatalf("Build failed for %v", spec)
		}
		if err := Verify(spec, delta); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVerifyRejectsBadDeltas(t *testing.T) {
	spec := gsb.WSB(3)
	// Wrong length.
	if err := Verify(spec, DecisionFunc{1, 2}); err == nil {
		t.Error("short delta accepted")
	}
	// Out-of-range value.
	if err := Verify(spec, DecisionFunc{1, 2, 3, 1, 2}); err == nil {
		t.Error("out-of-range delta accepted")
	}
	// All-same (violates WSB upper bound n-1 when all participants land
	// in one group).
	if err := Verify(spec, DecisionFunc{1, 1, 1, 1, 1}); err == nil {
		t.Error("constant delta accepted for WSB")
	}
}

func TestInfeasibleNotSolvable(t *testing.T) {
	if Solvable(gsb.NewSym(5, 2, 0, 1)) {
		t.Error("infeasible spec reported solvable")
	}
	if SolvableFormula(gsb.NewSym(5, 2, 0, 1)) {
		t.Error("infeasible spec reported solvable by formula")
	}
}
