package harness

import (
	"fmt"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/tasks"
	"repro/internal/universal"
)

// SelectProtocol maps a protocol name — the vocabulary shared by
// cmd/gsbrun and cmd/gsbcampaign — to the task specification it solves
// and a per-run solver constructor. seed seeds the oracle-box assignment
// draws of the protocols that use one, so a protocol selection is fully
// reproducible from (name, n, seed).
//
// Names:
//
//	renaming       snapshot-based adaptive (2n-1)-renaming
//	grid           Moir-Anderson splitter-grid renaming (n(n+1)/2 names)
//	slot-renaming  Figure 2: (n+1)-renaming from an (n-1)-slot object
//	wsb            WSB from a (2n-2)-renaming oracle
//	renaming-wsb   (2n-2)-renaming from a WSB oracle
//	election       election from perfect renaming (TAS row)
//	universal      <n,3,1,n>-GSB via Theorem 8 from perfect renaming
func SelectProtocol(protocol string, n int, seed int64) (gsb.Spec, func(n int) tasks.Solver, error) {
	switch protocol {
	case "renaming":
		return gsb.Renaming(n, 2*n-1),
			func(n int) tasks.Solver { return tasks.NewSnapshotRenaming("R", n) }, nil
	case "grid":
		return gsb.Renaming(n, n*(n+1)/2),
			func(n int) tasks.Solver { return tasks.NewGridRenaming("G", n) }, nil
	case "slot-renaming":
		return gsb.Renaming(n, n+1), func(n int) tasks.Solver {
			return tasks.NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, seed))
		}, nil
	case "wsb":
		return gsb.WSB(n), func(n int) tasks.Solver {
			box := mem.NewTaskBox("R", gsb.Renaming(n, 2*n-2), seed)
			return tasks.NewWSBFromRenaming(n, tasks.NewBoxSolver(box))
		}, nil
	case "renaming-wsb":
		return gsb.Renaming(n, 2*n-2), func(n int) tasks.Solver {
			return tasks.NewRenamingFromWSB("RW", n, mem.WSBBox("WSB", n, seed))
		}, nil
	case "election":
		return gsb.Election(n), func(n int) tasks.Solver {
			return tasks.NewElectionFromPerfectRenaming(tasks.NewTASRenaming("TAS", n))
		}, nil
	case "universal":
		spec := gsb.KSlot(n, 3)
		return spec, func(n int) tasks.Solver {
			return universal.New(spec, tasks.NewTASRenaming("TAS", n))
		}, nil
	default:
		return gsb.Spec{}, nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}
