package harness

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestTable1Golden(t *testing.T) {
	// Pin the regenerated Table 1 exactly. The paper's table shows the
	// same kernel sets and canonical flags; our table additionally lists
	// the feasible <6,3,2,6> row that the paper omits (see EXPERIMENTS.md).
	got := Table1(6, 3)
	want := strings.Join([]string{
		"Kernels of <6,3,l,u>-GSB tasks",
		"task             canonical [6,0,0] [5,1,0] [4,2,0] [4,1,1] [3,3,0] [3,2,1] [2,2,2]",
		"<6,3,0,6>-GSB    yes          x       x       x       x       x       x       x   ",
		"<6,3,1,6>-GSB                                         x               x       x   ",
		"<6,3,2,6>-GSB                                                                 x   ",
		"<6,3,0,5>-GSB    yes                  x       x       x       x       x       x   ",
		"<6,3,1,5>-GSB                                         x               x       x   ",
		"<6,3,2,5>-GSB                                                                 x   ",
		"<6,3,0,4>-GSB    yes                          x       x       x       x       x   ",
		"<6,3,1,4>-GSB    yes                                  x               x       x   ",
		"<6,3,2,4>-GSB                                                                 x   ",
		"<6,3,0,3>-GSB    yes                                          x       x       x   ",
		"<6,3,1,3>-GSB    yes                                                  x       x   ",
		"<6,3,2,3>-GSB                                                                 x   ",
		"<6,3,0,2>-GSB                                                                 x   ",
		"<6,3,1,2>-GSB                                                                 x   ",
		"<6,3,2,2>-GSB    yes                                                          x   ",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Table1(6,3) mismatch.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTable1KernelColumnsMatchPaper(t *testing.T) {
	got := Table1(6, 3)
	for _, col := range []string{"[6,0,0]", "[5,1,0]", "[4,2,0]", "[4,1,1]", "[3,3,0]", "[3,2,1]", "[2,2,2]"} {
		if !strings.Contains(got, col) {
			t.Errorf("Table1 missing kernel column %s", col)
		}
	}
	// Exactly 7 canonical rows.
	if got := strings.Count(got, "yes"); got != 7 {
		t.Errorf("Table1 has %d canonical rows, want 7", got)
	}
}

func TestTable1Infeasible(t *testing.T) {
	if got := Table1(3, 10); !strings.Contains(got, "Kernels") {
		// m*1 > n only when l>0; with l=0 family is non-empty for any m.
		t.Errorf("unexpected output %q", got)
	}
}

func TestFigure1TextGolden(t *testing.T) {
	got := Figure1Text(6, 3)
	// The seven canonical tasks, in Figure 1's order.
	for _, s := range []string{
		"<6,3,0,6>-GSB", "<6,3,0,5>-GSB", "<6,3,0,4>-GSB",
		"<6,3,1,4>-GSB", "<6,3,0,3>-GSB", "<6,3,1,3>-GSB", "<6,3,2,2>-GSB",
	} {
		if !strings.Contains(got, s) {
			t.Errorf("Figure1Text missing %s", s)
		}
	}
	// The seven Hasse edges of Figure 1.
	for _, e := range []string{
		"<6,3,0,6>-GSB -> <6,3,0,5>-GSB",
		"<6,3,0,5>-GSB -> <6,3,0,4>-GSB",
		"<6,3,0,4>-GSB -> <6,3,1,4>-GSB",
		"<6,3,0,4>-GSB -> <6,3,0,3>-GSB",
		"<6,3,1,4>-GSB -> <6,3,1,3>-GSB",
		"<6,3,0,3>-GSB -> <6,3,1,3>-GSB",
		"<6,3,1,3>-GSB -> <6,3,2,2>-GSB",
	} {
		if !strings.Contains(got, e) {
			t.Errorf("Figure1Text missing edge %s", e)
		}
	}
	// 7 Hasse edge lines (the title and legend also contain "->" as a
	// substring of "<6,3,-,->" and the legend arrow).
	edgeLines := 0
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "  <") && strings.Contains(line, " -> ") {
			edgeLines++
		}
	}
	if edgeLines != 7 {
		t.Errorf("Figure1Text has %d edge lines, want 7", edgeLines)
	}
}

func TestFigure1DOT(t *testing.T) {
	got := Figure1DOT(6, 3)
	if !strings.HasPrefix(got, "digraph gsb {") || !strings.HasSuffix(got, "}\n") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(got, `"<6,3,1,3>-GSB" -> "<6,3,2,2>-GSB";`) {
		t.Error("DOT missing final edge")
	}
	if !strings.Contains(got, "doubleoctagon") {
		t.Error("DOT should mark the (l,u)-anchored task")
	}
}

func TestFigure2Experiment(t *testing.T) {
	rows, err := Figure2Experiment([]int{2, 3, 5}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.AllValid {
			t.Errorf("n=%d: invalid outputs", r.N)
		}
		if r.MaxName > r.N+1 {
			t.Errorf("n=%d: max name %d exceeds n+1", r.N, r.MaxName)
		}
		if r.MeanSteps <= 0 {
			t.Errorf("n=%d: nonpositive mean steps", r.N)
		}
	}
	text := Figure2Text(rows)
	if !strings.Contains(text, "(n+1)-renaming") || strings.Count(text, "\n") < 4 {
		t.Errorf("Figure2Text malformed:\n%s", text)
	}
}

func TestSolvabilityText(t *testing.T) {
	got := SolvabilityText(6, 3)
	if !strings.Contains(got, "<6,3,2,2>-GSB") {
		t.Error("missing family member")
	}
	if !strings.Contains(got, "trivial") {
		t.Error("the <6,3,0,6> task should be trivial")
	}
}

func TestGCDTableText(t *testing.T) {
	got := GCDTableText(12)
	if !strings.Contains(got, "NOT solvable") || !strings.Contains(got, "solvable") {
		t.Errorf("GCD table should contain both statuses:\n%s", got)
	}
	for _, frag := range []string{"    6    1", "    8    2", "    9    3", "   12    1"} {
		if !strings.Contains(got, frag) {
			t.Errorf("GCD table missing row fragment %q:\n%s", frag, got)
		}
	}
}

func TestExploreExperiment(t *testing.T) {
	rows, err := ExploreExperiment([]int{2}, 2, 50, sched.ReductionNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	// 2 processes x 4 steps each (slot invoke, write, snapshot, decide):
	// C(8,4) = 70 distinct failure-free schedules.
	if r.Schedules != 70 {
		t.Errorf("n=2: explored %d schedules, want 70", r.Schedules)
	}
	if r.CrashRuns != 50 {
		t.Errorf("n=2: %d crash runs, want 50", r.CrashRuns)
	}
	if r.Workers != 2 {
		t.Errorf("n=2: workers = %d, want 2", r.Workers)
	}
	text := ExploreText(rows)
	if !strings.Contains(text, "every failure-free schedule") || !strings.Contains(text, "70") {
		t.Errorf("ExploreText malformed:\n%s", text)
	}
}

func TestExploreExperimentPOR(t *testing.T) {
	exhaustive, err := ExploreExperiment([]int{2, 3}, 2, 20, sched.ReductionNone)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := ExploreExperiment([]int{2, 3}, 2, 20, sched.ReductionSleepSets)
	if err != nil {
		t.Fatalf("reduced exploration changed the verdict: %v", err)
	}
	for i := range reduced {
		if reduced[i].Schedules >= exhaustive[i].Schedules {
			t.Errorf("n=%d: reduction explored %d schedules, want fewer than %d",
				reduced[i].N, reduced[i].Schedules, exhaustive[i].Schedules)
		}
	}
	text := ExploreText(reduced)
	if !strings.Contains(text, "sleep-sets") {
		t.Errorf("ExploreText missing the reduction column:\n%s", text)
	}
}

func TestSampleExperiment(t *testing.T) {
	// n=5 slot renaming: beyond both the exhaustive and the reduced
	// exploration (the class count alone exceeds 10^8), but trivially
	// sampleable. The batch is seeded, so every field is deterministic.
	rows, err := SampleExperiment([]int{5}, 2, 60, sched.SampleWalk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Runs != 60 {
		t.Errorf("runs = %d, want 60", r.Runs)
	}
	if r.Classes < 2 || r.Classes > r.Runs {
		t.Errorf("implausible class count %d over %d runs", r.Classes, r.Runs)
	}
	if r.Coverage() <= 0 || r.Coverage() > 1 {
		t.Errorf("implausible coverage %v", r.Coverage())
	}
	again, err := SampleExperiment([]int{5}, 1, 60, sched.SampleWalk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Classes != r.Classes {
		t.Errorf("class coverage differs across worker counts: %d vs %d", again[0].Classes, r.Classes)
	}

	pct, err := SampleExperiment([]int{5}, 2, 60, sched.SamplePCT, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pct[0].Depth != 3 {
		t.Errorf("PCT depth = %d, want 3", pct[0].Depth)
	}

	text := SampleText(append(rows, pct...))
	if !strings.Contains(text, "walk") || !strings.Contains(text, "pct") || !strings.Contains(text, "coverage") {
		t.Errorf("SampleText malformed:\n%s", text)
	}
}

func TestCampaignExperiment(t *testing.T) {
	for _, axis := range []struct {
		name             string
		model, adversary string
	}{
		{"defaults", "", ""},
		{"regular+t-resilient", sched.ModelRegular, sched.AdversaryTResilient},
	} {
		t.Run(axis.name, func(t *testing.T) {
			rows, err := CampaignExperiment(3, 2, 120, axis.model, axis.adversary)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 3 {
				t.Fatalf("got %d rows", len(rows))
			}
			for _, r := range rows {
				if !r.Match {
					t.Errorf("%s: kill/resume or 3-shard merge diverged from the uninterrupted run: %+v", r.Mode, r)
				}
				if r.Resumes == 0 {
					t.Errorf("%s: the campaign was never actually interrupted (the experiment is vacuous)", r.Mode)
				}
				if r.Schedules == 0 {
					t.Errorf("%s: no schedules verified: %+v", r.Mode, r)
				}
				if r.Samples < 2 {
					t.Errorf("%s: kill/resume chain appended %d timeline samples, want a multi-sample series", r.Mode, r.Samples)
				}
			}
			text := CampaignText(rows)
			if !strings.Contains(text, "kill/resume") || !strings.Contains(text, "OK") || strings.Contains(text, "MISMATCH") {
				t.Errorf("CampaignText malformed:\n%s", text)
			}
		})
	}
}

func TestCampaignExperimentRejectsUnknownNames(t *testing.T) {
	if _, err := CampaignExperiment(3, 1, 20, "bogus", ""); err == nil {
		t.Error("unknown memory model accepted")
	}
	if _, err := CampaignExperiment(3, 1, 20, "", "bogus"); err == nil {
		t.Error("unknown adversary accepted")
	}
}
