// Package harness regenerates the paper's evaluation artifacts — Table 1
// (kernel vectors of the <6,3,-,-> family), Figure 1 (the inclusion order
// of canonical tasks) and the Figure 2 experiment (slot-task renaming) —
// as text and DOT, for the golden tests and the cmd/ tools.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/solvability"
	"repro/internal/tasks"
)

// Table1 renders the kernel-vector table of the <n,m,-,-> family in the
// layout of the paper's Table 1: one column per kernel vector of the
// loosest task (descending lexicographic order), one row per feasible
// (l,u) pair (decreasing u, increasing l), an x where the kernel vector
// belongs to the task, and a "canonical" marker on canonical rows.
func Table1(n, m int) string {
	family := gsb.Family(n, m)
	if len(family) == 0 {
		return fmt.Sprintf("no feasible <%d,%d,-,-> tasks\n", n, m)
	}
	columns := family[0].KernelSet() // loosest task has every kernel vector
	var b strings.Builder
	fmt.Fprintf(&b, "Kernels of <%d,%d,l,u>-GSB tasks\n", n, m)
	fmt.Fprintf(&b, "%-16s %-9s", "task", "canonical")
	for _, k := range columns {
		fmt.Fprintf(&b, " %-*s", len(k.String()), k)
	}
	b.WriteByte('\n')
	for _, spec := range family {
		name := spec.String()
		canonical := ""
		if spec.IsCanonical() {
			canonical = "yes"
		}
		fmt.Fprintf(&b, "%-16s %-9s", name, canonical)
		members := map[string]bool{}
		for _, k := range spec.KernelSet() {
			members[k.Key()] = true
		}
		for _, k := range columns {
			mark := ""
			if members[k.Key()] {
				mark = "x"
			}
			fmt.Fprintf(&b, " %-*s", len(k.String()), center(mark, len(k.String())))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// Figure1Text renders the canonical tasks of the <n,m,-,-> family and the
// Hasse diagram of strict inclusion ("A -> B" means S(B) is strictly
// contained in S(A), i.e. B is harder).
func Figure1Text(n, m int) string {
	reps := gsb.CanonicalFamily(n, m)
	edges := gsb.Hasse(reps)
	var b strings.Builder
	fmt.Fprintf(&b, "Canonical <%d,%d,-,-> GSB tasks, ordered by strict inclusion\n", n, m)
	for _, r := range reps {
		flags := []string{}
		if r.LAnchored() {
			flags = append(flags, "l-anchored")
		}
		if r.UAnchored() {
			flags = append(flags, "u-anchored")
		}
		fmt.Fprintf(&b, "  %s  kernel %s  %s\n", r, kernelString(r), strings.Join(flags, " "))
	}
	b.WriteString("edges (A -> B means A strictly includes B):\n")
	lines := make([]string, 0, len(edges))
	for _, e := range edges {
		lines = append(lines, fmt.Sprintf("  %s -> %s", e.From, e.To))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func kernelString(s gsb.Spec) string {
	ks := s.KernelSet()
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = k.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Figure1DOT renders the Hasse diagram in Graphviz DOT format.
func Figure1DOT(n, m int) string {
	reps := gsb.CanonicalFamily(n, m)
	edges := gsb.Hasse(reps)
	var b strings.Builder
	b.WriteString("digraph gsb {\n  rankdir=LR;\n")
	for _, r := range reps {
		shape := "ellipse"
		if r.LUAnchored() {
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", r.String(), shape)
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q;\n", e.From.String(), e.To.String())
	}
	b.WriteString("}\n")
	return b.String()
}

// Figure2Row is one data point of the Figure 2 experiment: the slot-task
// renaming protocol run at size n over many seeds.
type Figure2Row struct {
	N         int
	Runs      int
	AllValid  bool
	MaxName   int
	MeanSteps float64
}

// Figure2Experiment runs the Figure 2 algorithm (slot-task renaming) for
// each n with `runs` seeded-random schedules and verifies every output
// against the <n,n+1,0,1>-GSB task.
func Figure2Experiment(ns []int, runs int) ([]Figure2Row, error) {
	var rows []Figure2Row
	for _, n := range ns {
		row, err := figure2Sweep(n, runs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// figure2Sweep runs one n-row of the Figure 2 experiment on a single
// reusable runner: each seed re-arms it with a fresh policy instead of
// respawning n process coroutines and reallocating the run state per run.
func figure2Sweep(n, runs int) (Figure2Row, error) {
	spec := gsb.Renaming(n, n+1)
	row := Figure2Row{N: n, Runs: runs, AllValid: true}
	totalSteps := 0
	runner := sched.NewRunner(n, sched.DefaultIDs(n), nil, sched.WithMaxSteps(tasks.DefaultRunMaxSteps), sched.WithReuse())
	defer runner.Close()
	for seed := int64(0); seed < int64(runs); seed++ {
		res, err := tasks.RunVerifiedOn(spec, runner, sched.NewRandom(seed),
			func(n int) tasks.Solver {
				return tasks.NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, seed))
			})
		if err != nil {
			return row, fmt.Errorf("harness: n=%d seed=%d: %w", n, seed, err)
		}
		totalSteps += res.Steps
		for i, name := range res.Outputs {
			if res.Decided[i] && name > row.MaxName {
				row.MaxName = name
			}
		}
	}
	row.MeanSteps = float64(totalSteps) / float64(runs)
	return row, nil
}

// Figure2Text renders the Figure 2 experiment rows.
func Figure2Text(rows []Figure2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: (n+1)-renaming from the (n-1)-slot task\n")
	b.WriteString("    n   runs  valid  max-name  mean-steps\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %3d  %5d  %-5v  %8d  %10.1f\n", r.N, r.Runs, r.AllValid, r.MaxName, r.MeanSteps)
	}
	return b.String()
}

// ExploreRow is one line of the exhaustive-exploration experiment: the
// Figure 2 protocol at size n model-checked over every failure-free
// schedule (or every Mazurkiewicz trace class under partial-order
// reduction), plus a randomized crash-injection sweep, both on the
// parallel exploration engine.
type ExploreRow struct {
	N         int
	Schedules int // failure-free schedules (trace classes under POR), all verified
	CrashRuns int // randomized crash-injected runs, all verified
	Workers   int
	Reduction sched.Reduction
}

// ExploreExperiment model-checks the Figure 2 algorithm ((n+1)-renaming
// from the (n-1)-slot task) against its task for each n: exhaustively
// over the complete failure-free schedule tree — pruned to one schedule
// per commuting-step equivalence class when reduction is enabled — then
// under crashRuns seeded crash-injection runs, using workers exploration
// goroutines (0 means GOMAXPROCS). This upgrades the seeded sampling of
// Figure2Experiment to a proof over every adversary schedule at small n;
// partial-order reduction extends the reachable n.
func ExploreExperiment(ns []int, workers, crashRuns int, reduction sched.Reduction) ([]ExploreRow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []ExploreRow
	for _, n := range ns {
		spec := gsb.Renaming(n, n+1)
		build := func(n int) tasks.Solver {
			return tasks.NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, 1))
		}
		opts := sched.ExploreOptions{Workers: workers, Reduction: reduction}
		schedules, err := tasks.ExploreVerified(context.Background(), spec, sched.DefaultIDs(n), opts, build)
		if err != nil {
			return nil, fmt.Errorf("harness: exhaustive exploration n=%d: %w", n, err)
		}
		opts.CrashRuns = crashRuns
		opts.CrashProb = 0.05
		opts.Reduction = sched.ReductionNone // sweep mode ignores reduction
		sweeps, err := tasks.ExploreVerified(context.Background(), spec, sched.DefaultIDs(n), opts, build)
		if err != nil {
			return nil, fmt.Errorf("harness: crash sweep n=%d: %w", n, err)
		}
		rows = append(rows, ExploreRow{N: n, Schedules: schedules, CrashRuns: sweeps, Workers: opts.Workers, Reduction: reduction})
	}
	return rows, nil
}

// ExploreText renders the exhaustive-exploration experiment rows.
func ExploreText(rows []ExploreRow) string {
	var b strings.Builder
	b.WriteString("Exhaustive exploration: Figure 2 verified under every failure-free schedule\n")
	b.WriteString("    n  schedules  crash-runs  workers  reduction\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %3d  %9d  %10d  %7d  %s\n", r.N, r.Schedules, r.CrashRuns, r.Workers, r.Reduction)
	}
	return b.String()
}

// SampleRow is one line of the statistical-sampling experiment: the
// Figure 2 protocol at a size n beyond the reach of exhaustive
// exploration (even partial-order reduced), sampled with a seeded batch
// and measured by distinct-trace-class coverage.
type SampleRow struct {
	N       int
	Mode    sched.SampleMode
	Depth   int // PCT bug depth; 0 in walk mode
	Runs    int // sampled runs, all verified
	Classes int // distinct Mazurkiewicz trace classes observed
	Workers int
}

// Coverage is the distinct-class fraction Classes/Runs (1 means every
// run found a new class: the space is far from saturated).
func (r SampleRow) Coverage() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Classes) / float64(r.Runs)
}

// SampleExperiment statistically samples the Figure 2 algorithm
// ((n+1)-renaming from the (n-1)-slot task) for each n: runs seeded
// schedules drawn by mode (depth is the PCT bug-depth knob, 0 for the
// default), verified against the task, with measured class coverage.
// This opens the sizes the exploration experiment cannot reach — the
// slot-renaming tree at n=5 already has ~10^12 interleavings and beyond
// 10^8 trace classes, where ExploreExperiment's exhaustive and reduced
// walks are both infeasible — trading enumeration for a per-run PCT
// bug-depth guarantee and a coverage measurement.
func SampleExperiment(ns []int, workers, runs int, mode sched.SampleMode, depth int) ([]SampleRow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []SampleRow
	for _, n := range ns {
		spec := gsb.Renaming(n, n+1)
		build := func(n int) tasks.Solver {
			return tasks.NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, 1))
		}
		opts := sched.ExploreOptions{Workers: workers, SampleRuns: runs, SampleMode: mode, Depth: depth, Seed: 1}
		rep, err := tasks.SampleVerified(context.Background(), spec, sched.DefaultIDs(n), opts, build)
		if err != nil {
			return nil, fmt.Errorf("harness: sampling n=%d mode=%v: %w", n, mode, err)
		}
		rows = append(rows, SampleRow{N: n, Mode: mode, Depth: rep.Depth, Runs: rep.Runs, Classes: rep.Classes, Workers: workers})
	}
	return rows, nil
}

// SampleText renders the statistical-sampling experiment rows.
func SampleText(rows []SampleRow) string {
	var b strings.Builder
	b.WriteString("Statistical sampling: Figure 2 at sizes beyond exhaustive exploration\n")
	b.WriteString("    n  mode  depth    runs  classes  coverage  workers\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %3d  %-4s  %5d  %6d  %7d  %8.3f  %7d\n", r.N, r.Mode, r.Depth, r.Runs, r.Classes, r.Coverage(), r.Workers)
	}
	return b.String()
}

// SolvabilityText renders the classification of a family (used by
// cmd/gsbclassify).
func SolvabilityText(n, m int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wait-free solvability of the <%d,%d,-,-> family\n", n, m)
	for _, r := range solvability.FamilyReport(n, m) {
		fmt.Fprintf(&b, "  %-16s -> %-28s (%s)\n", r.Spec, r.Status, r.Reason)
	}
	return b.String()
}

// GCDTableText renders the Theorem 10 arithmetic table.
func GCDTableText(maxN int) string {
	var b strings.Builder
	b.WriteString("Theorem 10 arithmetic: gcd{C(n,i) : 1<=i<=n/2}\n")
	b.WriteString("    n  gcd  prime-set  n-is-prime-power  WSB/(2n-2)-renaming\n")
	for _, row := range solvability.GCDTable(maxN) {
		status := "solvable"
		if !row.Prime {
			status = "NOT solvable"
		}
		fmt.Fprintf(&b, "  %3d  %3d  %-9v  %-16v  %s\n", row.N, row.GCD, row.Prime, row.PrimePower, status)
	}
	return b.String()
}
