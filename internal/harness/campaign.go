package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/campaign"
	"repro/internal/sched"
	"repro/internal/tasks"
	"repro/internal/timeline"
)

// CampaignRow is one line of the campaign-resilience experiment: one
// verification mode of the Figure 2 protocol run three ways — the
// uninterrupted single process, a campaign killed at its first checkpoint
// and resumed, and a 3-way shard split merged back — with Match
// confirming all three produced the identical report.
type CampaignRow struct {
	Mode      campaign.Mode
	N         int
	Schedules int // uninterrupted reference count
	Classes   int // sampling coverage (0 outside the sampling modes)
	Resumes   int // kill/resume cycles the interrupted campaign needed
	Samples   int // timeline samples the kill/resume chain appended
	Match     bool
}

// CampaignExperiment exercises the durable-campaign subsystem on the
// Figure 2 slot-renaming protocol at size n: for each mode, it compares
// the uninterrupted engines against a kill/resume campaign chain and a
// 3-shard merge, in a temporary directory that is removed afterwards.
// It is the harness-level smoke of the differential guarantees the
// campaign package's tests establish exhaustively.
//
// model and adversary select the execution model (registry names,
// empty = defaults): model applies to every mode, adversary to the
// crash-sweep mode. The differential guarantees are model-independent —
// kill/resume and shard-merge must reproduce the uninterrupted run under
// weak registers and biased crash adversaries exactly as under the
// defaults.
func CampaignExperiment(n, workers, sampleRuns int, model, adversary string) ([]CampaignRow, error) {
	if workers <= 0 {
		workers = 1
	}
	if _, err := sched.MemModelByName(model); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if _, err := sched.AdversaryByName(adversary); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	dir, err := os.MkdirTemp("", "gsb-campaign-experiment-*")
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	defer os.RemoveAll(dir)

	spec, build, err := SelectProtocol("slot-renaming", n, 1)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	modes := []struct {
		mode campaign.Mode
		opts sched.ExploreOptions
	}{
		{campaign.ModePOR, sched.ExploreOptions{Workers: workers, Seed: 1, Reduction: sched.ReductionSleepSets, Model: model}},
		{campaign.ModeWalk, sched.ExploreOptions{Workers: workers, Seed: 1, SampleRuns: sampleRuns, Model: model}},
		{campaign.ModeCrash, sched.ExploreOptions{Workers: workers, Seed: 1, CrashRuns: sampleRuns, CrashProb: 0.05, Model: model, Adversary: adversary}},
	}

	var rows []CampaignRow
	for _, m := range modes {
		row := CampaignRow{Mode: m.mode, N: n}

		// Uninterrupted single-process reference.
		var refCount int
		if m.opts.SampleRuns > 0 {
			rep, rerr := tasks.SampleVerified(context.Background(), spec, sched.DefaultIDs(n), m.opts, build)
			if rerr != nil {
				return nil, fmt.Errorf("harness: campaign reference %s: %w", m.mode, rerr)
			}
			refCount, row.Classes = rep.Runs, rep.Classes
		} else {
			refCount, err = tasks.ExploreVerified(context.Background(), spec, sched.DefaultIDs(n), m.opts, build)
			if err != nil {
				return nil, fmt.Errorf("harness: campaign reference %s: %w", m.mode, err)
			}
		}
		row.Schedules = refCount

		// Kill at the first checkpoint, then resume to completion.
		cfg := campaign.Config{
			Protocol: "slot-renaming", Spec: spec, Opts: m.opts, Build: build,
			CheckpointEvery: 50, Path: filepath.Join(dir, string(m.mode)+".ckpt"),
		}
		ctx, cancel := context.WithCancel(context.Background())
		cfg.OnCheckpoint = func(campaign.Header) { cancel() }
		cfg.Observer = campaign.NewObserver() // a fresh observer per life, like the CLI
		rep, rerr := campaign.Start(ctx, cfg)
		cancel()
		for errors.Is(rerr, campaign.ErrPaused) {
			row.Resumes++
			if row.Resumes > 1000 {
				return nil, fmt.Errorf("harness: campaign %s failed to finish", m.mode)
			}
			cfg.OnCheckpoint = nil
			cfg.Observer = campaign.NewObserver()
			rep, rerr = campaign.Resume(context.Background(), cfg)
		}
		if rerr != nil {
			return nil, fmt.Errorf("harness: campaign %s: %w", m.mode, rerr)
		}
		resumedOK := rep.Schedules == refCount && rep.Classes == row.Classes

		// Timeline continuity: across every kill/resume life the sidecar
		// must hold one gapless sample series ending done — the observable
		// form of the "kill/resume is invisible" guarantee.
		recs, terr := timeline.Read(timeline.SidecarPath(cfg.Path))
		if terr != nil {
			return nil, fmt.Errorf("harness: campaign %s timeline: %w", m.mode, terr)
		}
		row.Samples = len(recs)
		timelineOK := len(recs) > 0
		for i, rec := range recs {
			if rec.Index != int64(i) {
				timelineOK = false
			}
		}
		if timelineOK {
			last := recs[len(recs)-1]
			// Runs counts executed budget slots, so it can exceed the
			// verified-schedule count under reduction but never trail it.
			timelineOK = last.Done && last.Runs >= int64(refCount)
		}

		// 3-way shard split, merged.
		const shards = 3
		paths := make([]string, shards)
		for s := 0; s < shards; s++ {
			paths[s] = filepath.Join(dir, fmt.Sprintf("%s-shard%d.ckpt", m.mode, s))
			scfg := cfg
			scfg.OnCheckpoint = nil
			scfg.Shard, scfg.Of, scfg.Path = s, shards, paths[s]
			if _, serr := campaign.Start(context.Background(), scfg); serr != nil {
				return nil, fmt.Errorf("harness: campaign %s shard %d: %w", m.mode, s, serr)
			}
		}
		mcfg := cfg
		mcfg.OnCheckpoint = nil
		merged, merr := campaign.Merge(context.Background(), mcfg, paths)
		if merr != nil {
			return nil, fmt.Errorf("harness: campaign %s merge: %w", m.mode, merr)
		}
		row.Match = resumedOK && timelineOK && merged.Schedules == refCount && merged.Classes == row.Classes
		rows = append(rows, row)
	}
	return rows, nil
}

// CampaignText renders the campaign-resilience experiment rows.
func CampaignText(rows []CampaignRow) string {
	var b strings.Builder
	b.WriteString("Durable campaigns: kill/resume and 3-shard merge reproduce the uninterrupted run\n")
	b.WriteString("  mode         n  schedules  classes  resumes  samples  match\n")
	for _, r := range rows {
		match := "OK"
		if !r.Match {
			match = "MISMATCH"
		}
		fmt.Fprintf(&b, "  %-11s %2d  %9d  %7d  %7d  %7d  %s\n", r.Mode, r.N, r.Schedules, r.Classes, r.Resumes, r.Samples, match)
	}
	return b.String()
}
