package harness

import (
	"strings"
	"testing"
)

// TestModelMatrixExperiment pins the experiment's load-bearing facts:
// the atomic column reproduces the pre-registry trace-class counts
// exactly, the weak models demonstrably change the explored state space,
// the safe model breaks the splitter grid, and the oracle-based universal
// construction is model-immune under every crash adversary.
func TestModelMatrixExperiment(t *testing.T) {
	res, err := ModelMatrixExperiment(2, 1000, 25, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) < 3 || len(res.Adversaries) < 3 {
		t.Fatalf("matrix spans %d models x %d adversaries, want >= 3 on each axis", len(res.Models), len(res.Adversaries))
	}

	classes := map[[2]string]int{}
	verdicts := map[[2]string]string{}
	for _, row := range res.Explore {
		classes[[2]string{row.Protocol, row.Model}] = row.Classes
		verdicts[[2]string{row.Protocol, row.Model}] = row.Verdict
	}
	// Pre-registry golden counts: the atomic model is bit-identical to the
	// engine before the model axis existed.
	if got := classes[[2]string{"snapshot-renaming", "atomic"}]; got != 14 {
		t.Errorf("snapshot-renaming atomic classes = %d, want the pre-registry 14", got)
	}
	if got := classes[[2]string{"grid-renaming", "atomic"}]; got != 10 {
		t.Errorf("grid-renaming atomic classes = %d, want the pre-registry 10", got)
	}
	// The model axis changes the explored state space.
	for _, proto := range []string{"snapshot-renaming", "grid-renaming"} {
		atomic := classes[[2]string{proto, "atomic"}]
		if reg := classes[[2]string{proto, "regular"}]; reg <= atomic {
			t.Errorf("%s: regular classes %d <= atomic %d", proto, reg, atomic)
		}
	}
	if stale, atomic := classes[[2]string{"snapshot-renaming", "stale-snapshot"}], classes[[2]string{"snapshot-renaming", "atomic"}]; stale <= atomic {
		t.Errorf("snapshot-renaming: stale-snapshot classes %d <= atomic %d", stale, atomic)
	}
	// Splitters require atomic registers: the safe model breaks the grid.
	if v := verdicts[[2]string{"grid-renaming", "safe"}]; !strings.Contains(v, "VIOLATION") {
		t.Errorf("grid-renaming under safe registers = %q, want a violation", v)
	}
	if v := verdicts[[2]string{"grid-renaming", "atomic"}]; v != "ok" {
		t.Errorf("grid-renaming under atomic registers = %q, want ok", v)
	}

	// The universal construction communicates only through oracle objects:
	// model-independent, adversary-tolerant.
	if len(res.Diff) == 0 {
		t.Fatal("no family rows")
	}
	for _, row := range res.Diff {
		if len(row.Cells) != len(res.Models)*len(res.Adversaries) {
			t.Fatalf("%s: %d cells, want %d", row.Spec, len(row.Cells), len(res.Models)*len(res.Adversaries))
		}
		for _, c := range row.Cells {
			if c.Verdict != "ok" {
				t.Errorf("%s model=%s adversary=%s: %q — the oracle-based construction must be model-immune",
					row.Spec, c.Model, c.Adversary, c.Verdict)
			}
		}
	}

	text := ModelMatrixText(res)
	for _, want := range []string{"Memory-model axis", "Adversary axis", "snapshot-renaming", "uniform-crash", "t-resilient", "adaptive"} {
		if !strings.Contains(text, want) {
			t.Errorf("ModelMatrixText missing %q:\n%s", want, text)
		}
	}
}

// TestModelMatrixExperimentFilters: the axis filters restrict the matrix
// and reject unknown names.
func TestModelMatrixExperimentFilters(t *testing.T) {
	res, err := ModelMatrixExperiment(2, 200, 10, []string{"atomic"}, []string{"adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 || res.Models[0] != "atomic" || len(res.Adversaries) != 1 || res.Adversaries[0] != "adaptive" {
		t.Fatalf("filtered axes = %v x %v", res.Models, res.Adversaries)
	}
	for _, row := range res.Diff {
		if len(row.Cells) != 1 {
			t.Fatalf("%s: %d cells under a 1x1 filter", row.Spec, len(row.Cells))
		}
	}
	if _, err := ModelMatrixExperiment(2, 200, 10, []string{"bogus"}, nil); err == nil {
		t.Error("unknown model filter accepted")
	}
	if _, err := ModelMatrixExperiment(2, 200, 10, nil, []string{"bogus"}); err == nil {
		t.Error("unknown adversary filter accepted")
	}
}
