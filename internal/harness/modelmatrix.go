package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/gsb"
	"repro/internal/sched"
	"repro/internal/solvability"
	"repro/internal/tasks"
	"repro/internal/universal"
)

// This file is the model-matrix experiment: the execution model — the
// memory-model and adversary registries of internal/sched — treated as an
// experimental axis. It has two parts:
//
//   - The model axis, measured on the two register-based renaming
//     protocols (the Attiya et al. snapshot protocol and the
//     Moir-Anderson splitter grid). Each is POR-explored exhaustively at
//     n=2 under every registered memory model — the weak models decompose
//     writes into scheduler-visible step pairs and snapshots into
//     collects, so the trace-class counts change per model, with the
//     atomic row bit-identical to the pre-registry engine — and
//     PCT-sampled at n=3, where the safe model genuinely breaks the
//     splitter grid (a read overlapping the torn 'door' write returns the
//     unwritten zero, letting two processes stop on the same splitter and
//     decide the same name). Splitters require atomic registers; the
//     experiment finds the violation deterministically from a fixed seed.
//
//   - The adversary axis, measured on the GSB families: every feasible
//     member of the <4,2> and <5,3> families, solved by the Theorem 8
//     universal construction (perfect renaming from test-and-set), is
//     crash-swept under every registered adversary × memory model. The
//     universal construction communicates only through oracle objects, so
//     its verdicts are model-independent — the contrast with the
//     register-based protocols above is the point: weakening the
//     registers breaks register-based renaming while the oracle-based
//     construction survives every model under every crash adversary.

// ModelExploreRow is one (protocol, memory model) measurement: exact
// POR trace-class count at n=2, and the PCT verdict at n=3.
type ModelExploreRow struct {
	Protocol string
	Model    string
	Classes  int    // exhaustive POR classes at n=2
	Verdict  string // n=3 PCT-sampled verdict: "ok" or the violation
}

// ModelDiffCell is one (model, adversary) crash sweep of one spec.
type ModelDiffCell struct {
	Model     string
	Adversary string
	Runs      int
	Verdict   string // "ok" or the violation
}

// ModelDiffRow is one family member's sweep across the full matrix.
type ModelDiffRow struct {
	Spec     string
	Solvable string // the theoretical classification (internal/solvability)
	Cells    []ModelDiffCell
}

// ModelMatrixResult is the full experiment.
type ModelMatrixResult struct {
	SampleRuns  int // PCT budget behind each n=3 verdict
	Explore     []ModelExploreRow
	Models      []string
	Adversaries []string
	Diff        []ModelDiffRow
}

// ModelMatrixExperiment runs the experiment: the model axis on the
// register-based renaming protocols (exact POR counts at n=2, PCT
// verdicts at n=3 with sampleRuns runs per cell), and the model ×
// adversary matrix on the <4,2> and <5,3> families with crashRuns seeded
// runs per cell. workers <= 0 means GOMAXPROCS. models and adversaries
// restrict the matrix to the named registry entries (nil = all
// registered); unknown names error.
func ModelMatrixExperiment(workers, sampleRuns, crashRuns int, models, adversaries []string) (*ModelMatrixResult, error) {
	if sampleRuns <= 0 {
		sampleRuns = 20000
	}
	if crashRuns <= 0 {
		crashRuns = 100
	}
	if len(models) == 0 {
		models = sched.MemModels()
	}
	if len(adversaries) == 0 {
		adversaries = sched.Adversaries()
	}
	for _, m := range models {
		if _, err := sched.MemModelByName(m); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	for _, a := range adversaries {
		if _, err := sched.AdversaryByName(a); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	res := &ModelMatrixResult{
		SampleRuns:  sampleRuns,
		Models:      models,
		Adversaries: adversaries,
	}

	// Part 1: the model axis on the register-based protocols.
	protocols := []struct {
		name  string
		spec  func(n int) gsb.Spec
		build func(n int) tasks.Solver
	}{
		{
			name:  "snapshot-renaming",
			spec:  func(n int) gsb.Spec { return gsb.Renaming(n, 2*n-1) },
			build: func(n int) tasks.Solver { return tasks.NewSnapshotRenaming("R", n) },
		},
		{
			name:  "grid-renaming",
			spec:  func(n int) gsb.Spec { return gsb.Renaming(n, n*(n+1)/2) },
			build: func(n int) tasks.Solver { return tasks.NewGridRenaming("G", n) },
		},
	}
	for _, proto := range protocols {
		for _, model := range res.Models {
			opts := sched.ExploreOptions{
				Workers:   workers,
				Reduction: sched.ReductionSleepMemo,
				Model:     model,
			}
			classes, err := tasks.ExploreVerified(context.Background(), proto.spec(2), sched.DefaultIDs(2), opts, proto.build)
			if err != nil {
				return nil, fmt.Errorf("harness: model matrix explore %s model=%s: %w", proto.name, model, err)
			}
			sopts := sched.ExploreOptions{
				Workers:    workers,
				Seed:       1,
				SampleRuns: sampleRuns,
				SampleMode: sched.SamplePCT,
				Depth:      3,
				Model:      model,
			}
			_, serr := tasks.SampleVerified(context.Background(), proto.spec(3), sched.DefaultIDs(3), sopts, proto.build)
			if serr != nil && !isViolation(serr) {
				return nil, fmt.Errorf("harness: model matrix sample %s model=%s: %w", proto.name, model, serr)
			}
			res.Explore = append(res.Explore, ModelExploreRow{
				Protocol: proto.name, Model: model, Classes: classes, Verdict: verdictOf(serr),
			})
		}
	}

	// Part 2: the adversary axis on the GSB families, under each model.
	for _, fam := range [][2]int{{4, 2}, {5, 3}} {
		n, m := fam[0], fam[1]
		for _, s := range gsb.Family(n, m) {
			row := ModelDiffRow{Spec: s.String(), Solvable: solvability.Classify(s).Status.String()}
			solver := func(n int) tasks.Solver {
				return universal.New(s, tasks.NewTASRenaming("TAS", n))
			}
			for _, model := range res.Models {
				for _, adv := range res.Adversaries {
					opts := sched.ExploreOptions{
						Workers:   workers,
						Seed:      1,
						CrashRuns: crashRuns,
						CrashProb: 0.1,
						Model:     model,
						Adversary: adv,
					}
					_, err := tasks.ExploreVerified(context.Background(), s, sched.DefaultIDs(n), opts, solver)
					if err != nil && !isViolation(err) {
						return nil, fmt.Errorf("harness: model matrix sweep spec=%v model=%s adversary=%s: %w", s, model, adv, err)
					}
					row.Cells = append(row.Cells, ModelDiffCell{
						Model: model, Adversary: adv, Runs: crashRuns, Verdict: verdictOf(err),
					})
				}
			}
			res.Diff = append(res.Diff, row)
		}
	}
	return res, nil
}

// isViolation distinguishes a property violation (an experimental
// result: the model/adversary broke the protocol) from an engine error
// (budget exhaustion, invalid options), which aborts the experiment.
func isViolation(err error) bool {
	return err != nil && strings.Contains(err.Error(), "violates")
}

func verdictOf(err error) string {
	if err == nil {
		return "ok"
	}
	v := err.Error()
	if i := strings.IndexByte(v, '\n'); i >= 0 {
		v = v[:i]
	}
	const max = 80
	if len(v) > max {
		v = v[:max] + "..."
	}
	return "VIOLATION: " + v
}

// ModelMatrixText renders the experiment.
func ModelMatrixText(r *ModelMatrixResult) string {
	var b strings.Builder
	b.WriteString("Model matrix: execution model as an experimental axis\n")
	fmt.Fprintf(&b, "\nMemory-model axis: register-based renaming (POR classes at n=2; %d-run PCT verdict at n=3)\n", r.SampleRuns)
	b.WriteString("  protocol           model           classes  n=3 verdict\n")
	for _, row := range r.Explore {
		fmt.Fprintf(&b, "  %-17s  %-14s  %7d  %s\n", row.Protocol, row.Model, row.Classes, row.Verdict)
	}
	b.WriteString("\nAdversary axis: <4,2> and <5,3> families via the universal construction (crash sweeps)\n")
	fmt.Fprintf(&b, "  %-16s  %-26s  %-14s", "spec", "solvable (theory)", "model")
	for _, adv := range r.Adversaries {
		fmt.Fprintf(&b, "  %-13s", adv)
	}
	b.WriteString("\n")
	for _, row := range r.Diff {
		for mi, model := range r.Models {
			label, solv := "", ""
			if mi == 0 {
				label, solv = row.Spec, row.Solvable
			}
			fmt.Fprintf(&b, "  %-16s  %-26s  %-14s", label, solv, model)
			for _, c := range row.Cells {
				if c.Model != model {
					continue
				}
				v := c.Verdict
				if len(v) > 13 {
					v = v[:13]
				}
				fmt.Fprintf(&b, "  %-13s", v)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
