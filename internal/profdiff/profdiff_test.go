package profdiff

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The committed fixture pair (testdata/gen regenerates them): base has
// hotStep at 40% of cpu time, regressed at 70% — with decideSlot
// improving, so the diff carries both signs.
const (
	baseFixture      = "testdata/base.pprof"
	regressedFixture = "testdata/regressed.pprof"
)

func TestParseFixture(t *testing.T) {
	p, err := ParseFile(baseFixture)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SampleTypes) != 2 || p.SampleTypes[1].Type != "cpu" || p.SampleTypes[1].Unit != "nanoseconds" {
		t.Fatalf("sample types = %+v", p.SampleTypes)
	}
	if p.ValueIndex != 1 || p.Unit() != "nanoseconds" {
		t.Fatalf("value index %d unit %q, want the cpu dimension", p.ValueIndex, p.Unit())
	}
	if p.Total != 1000 {
		t.Fatalf("base total = %d, want 1000", p.Total)
	}
	if got := p.Flat["repro/internal/sched.(*runner).hotStep"]; got != 400 {
		t.Fatalf("hotStep flat = %d, want 400", got)
	}
}

// TestDiffGolden pins the full explanation for the committed fixture
// pair: the exact deltas, their order (largest absolute move first,
// regression leading) and the rendered table.
func TestDiffGolden(t *testing.T) {
	base, err := ParseFile(baseFixture)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ParseFile(regressedFixture)
	if err != nil {
		t.Fatal(err)
	}
	deltas := Diff(base, cur)
	want := []struct {
		fn   string
		diff float64
	}{
		{"repro/internal/sched.(*runner).hotStep", 0.30},     // 40% -> 70%
		{"repro/internal/sched.(*runner).decideSlot", -0.20}, // 30% -> 10%
		{"repro/internal/mem.(*TaskBox).Read", -0.075},       // 20% -> 12.5%
		{"repro/internal/sched.(*frontier).pop", -0.025},     // 10% -> 7.5%
	}
	if len(deltas) != len(want) {
		t.Fatalf("%d deltas, want %d: %+v", len(deltas), len(want), deltas)
	}
	for i, w := range want {
		d := deltas[i]
		if d.Func != w.fn {
			t.Errorf("delta[%d] = %s, want %s", i, d.Func, w.fn)
		}
		if diff := d.Diff - w.diff; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("delta[%d] %s diff = %v, want %v", i, d.Func, d.Diff, w.diff)
		}
	}

	out, err := Explain(baseFixture, regressedFixture, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"function (flat)",
		"repro/internal/sched.(*runner).hotStep",
		"+30.00%",
		"-20.00%",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("explanation missing %q:\n%s", line, out)
		}
	}
	// Top-1 truncation keeps only the regression line.
	top1, err := Explain(baseFixture, regressedFixture, 1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(top1, "decideSlot") || !strings.Contains(top1, "hotStep") {
		t.Errorf("top-1 explanation wrong:\n%s", top1)
	}
}

func TestDiffIdentical(t *testing.T) {
	p, err := ParseFile(baseFixture)
	if err != nil {
		t.Fatal(err)
	}
	if deltas := Diff(p, p); len(deltas) != 0 {
		t.Fatalf("self-diff = %+v, want empty", deltas)
	}
	if out := Format(nil, 10); out != "" {
		t.Fatalf("empty format = %q", out)
	}
}

// TestParseCommittedProfiles: every real baseline profile under
// profiles/ must parse — these are genuine Go runtime pprof outputs, so
// this is the compatibility test for the minimal decoder.
func TestParseCommittedProfiles(t *testing.T) {
	paths, err := filepath.Glob("../../profiles/*.pprof")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed baseline profiles")
	}
	for _, path := range paths {
		p, err := ParseFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(p.SampleTypes) == 0 {
			t.Errorf("%s: no sample types", path)
		}
		// A profile may legitimately be empty (sub-millisecond bench),
		// but a non-empty one must attribute every sampled value.
		var flat int64
		for _, v := range p.Flat {
			flat += v
		}
		if flat != p.Total {
			t.Errorf("%s: flat sum %d != total %d", path, flat, p.Total)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(bytes.NewReader([]byte{0xff, 0xff, 0xff})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Parse(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Valid gzip wrapping garbage proto.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write([]byte{0x0a}) // field 1 wire 2, then truncated
	gz.Close()
	if _, err := Parse(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("truncated proto accepted")
	}
}

func TestParseUncompressed(t *testing.T) {
	// The decoder accepts a bare (non-gzipped) proto stream too.
	raw, err := os.ReadFile(baseFixture)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != 1000 {
		t.Fatalf("uncompressed parse total = %d", p.Total)
	}
}
