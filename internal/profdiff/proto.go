package profdiff

// Minimal protobuf wire-format decoding for the slice of pprof's
// profile.proto the diff needs. Field numbers (profile.proto):
//
//	Profile:  sample_type=1  sample=2  location=4  function=5  string_table=6
//	ValueType: type=1 unit=2            (string-table indices)
//	Sample:   location_id=1 value=2     (repeated; packed or not)
//	Location: id=1 line=4
//	Line:     function_id=1
//	Function: id=1 name=2               (name: string-table index)
//
// Everything else is skipped by wire type. Samples attribute their value
// to the innermost frame: the first location id's first line's function.

import (
	"errors"
	"fmt"
)

var errTruncated = errors.New("truncated protobuf message")

// wire types
const (
	wireVarint = 0
	wireFix64  = 1
	wireBytes  = 2
	wireFix32  = 5
)

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) done() bool { return d.pos >= len(d.data) }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.data) {
			return 0, errTruncated
		}
		b := d.data[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("varint overflows 64 bits")
}

// key reads the next field key and returns (field number, wire type).
func (d *decoder) key() (int, int, error) {
	k, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(k >> 3), int(k & 7), nil
}

// bytes reads a length-delimited payload.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.pos) {
		return nil, errTruncated
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// skip discards a field of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireFix64:
		if len(d.data)-d.pos < 8 {
			return errTruncated
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytes()
		return err
	case wireFix32:
		if len(d.data)-d.pos < 4 {
			return errTruncated
		}
		d.pos += 4
		return nil
	}
	return fmt.Errorf("unsupported wire type %d", wire)
}

// uints reads a repeated uint64 field occurrence: either one varint or a
// packed run, appending to dst.
func uints(d *decoder, wire int, dst []uint64) ([]uint64, error) {
	if wire == wireVarint {
		v, err := d.varint()
		if err != nil {
			return dst, err
		}
		return append(dst, v), nil
	}
	if wire != wireBytes {
		return dst, fmt.Errorf("repeated varint field with wire type %d", wire)
	}
	raw, err := d.bytes()
	if err != nil {
		return dst, err
	}
	pd := &decoder{data: raw}
	for !pd.done() {
		v, err := pd.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// rawSample is one decoded Sample: innermost location plus values.
type rawSample struct {
	locs   []uint64
	values []int64
}

func decodeProfile(raw []byte) (*Profile, error) {
	var (
		sampleTypes [][]byte // deferred: need the string table first
		samples     []rawSample
		locFunc     = map[uint64]uint64{} // location id → innermost function id
		funcName    = map[uint64]int64{}  // function id → string index
		strtab      []string
	)
	d := &decoder{data: raw}
	for !d.done() {
		field, wire, err := d.key()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1, 2, 4, 5: // submessages
			if wire != wireBytes {
				return nil, fmt.Errorf("profile field %d: wire type %d", field, wire)
			}
			msg, err := d.bytes()
			if err != nil {
				return nil, err
			}
			switch field {
			case 1:
				sampleTypes = append(sampleTypes, msg)
			case 2:
				s, err := decodeSample(msg)
				if err != nil {
					return nil, err
				}
				samples = append(samples, s)
			case 4:
				id, fn, err := decodeLocation(msg)
				if err != nil {
					return nil, err
				}
				locFunc[id] = fn
			case 5:
				id, name, err := decodeFunction(msg)
				if err != nil {
					return nil, err
				}
				funcName[id] = name
			}
		case 6:
			if wire != wireBytes {
				return nil, fmt.Errorf("string_table: wire type %d", wire)
			}
			s, err := d.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(s))
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i >= 0 && i < int64(len(strtab)) {
			return strtab[i]
		}
		return fmt.Sprintf("?str%d", i)
	}

	p := &Profile{Flat: map[string]int64{}}
	for _, msg := range sampleTypes {
		ti, ui, err := decodeValueType(msg)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(ti), Unit: str(ui)})
	}
	// Diff the cpu/nanoseconds dimension when present, else the last one.
	p.ValueIndex = len(p.SampleTypes) - 1
	for i, st := range p.SampleTypes {
		if st.Type == "cpu" {
			p.ValueIndex = i
			break
		}
	}
	if p.ValueIndex < 0 {
		p.ValueIndex = 0
	}

	for _, s := range samples {
		if p.ValueIndex >= len(s.values) || len(s.locs) == 0 {
			continue
		}
		v := s.values[p.ValueIndex]
		name := "?unknown"
		if fn, ok := locFunc[s.locs[0]]; ok {
			name = str(funcName[fn])
		}
		p.Flat[name] += v
		p.Total += v
	}
	return p, nil
}

func decodeValueType(raw []byte) (typ, unit int64, err error) {
	d := &decoder{data: raw}
	for !d.done() {
		field, wire, err := d.key()
		if err != nil {
			return 0, 0, err
		}
		if (field == 1 || field == 2) && wire == wireVarint {
			v, err := d.varint()
			if err != nil {
				return 0, 0, err
			}
			if field == 1 {
				typ = int64(v)
			} else {
				unit = int64(v)
			}
			continue
		}
		if err := d.skip(wire); err != nil {
			return 0, 0, err
		}
	}
	return typ, unit, nil
}

func decodeSample(raw []byte) (rawSample, error) {
	var s rawSample
	d := &decoder{data: raw}
	for !d.done() {
		field, wire, err := d.key()
		if err != nil {
			return s, err
		}
		switch field {
		case 1:
			if s.locs, err = uints(d, wire, s.locs); err != nil {
				return s, err
			}
		case 2:
			var vals []uint64
			if vals, err = uints(d, wire, nil); err != nil {
				return s, err
			}
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func decodeLocation(raw []byte) (id, funcID uint64, err error) {
	d := &decoder{data: raw}
	first := true
	for !d.done() {
		field, wire, err := d.key()
		if err != nil {
			return 0, 0, err
		}
		switch {
		case field == 1 && wire == wireVarint:
			if id, err = d.varint(); err != nil {
				return 0, 0, err
			}
		case field == 4 && wire == wireBytes:
			msg, err := d.bytes()
			if err != nil {
				return 0, 0, err
			}
			// The first Line entry is the innermost (post-inlining) frame.
			if first {
				if funcID, err = decodeLine(msg); err != nil {
					return 0, 0, err
				}
				first = false
			}
		default:
			if err := d.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, funcID, nil
}

func decodeLine(raw []byte) (funcID uint64, err error) {
	d := &decoder{data: raw}
	for !d.done() {
		field, wire, err := d.key()
		if err != nil {
			return 0, err
		}
		if field == 1 && wire == wireVarint {
			if funcID, err = d.varint(); err != nil {
				return 0, err
			}
			continue
		}
		if err := d.skip(wire); err != nil {
			return 0, err
		}
	}
	return funcID, nil
}

func decodeFunction(raw []byte) (id uint64, name int64, err error) {
	d := &decoder{data: raw}
	for !d.done() {
		field, wire, err := d.key()
		if err != nil {
			return 0, 0, err
		}
		if (field == 1 || field == 2) && wire == wireVarint {
			v, err := d.varint()
			if err != nil {
				return 0, 0, err
			}
			if field == 1 {
				id = v
			} else {
				name = int64(v)
			}
			continue
		}
		if err := d.skip(wire); err != nil {
			return 0, 0, err
		}
	}
	return id, name, nil
}
