// Command gen writes the two committed profdiff fixture profiles:
// base.pprof and regressed.pprof, a pair of tiny synthetic CPU profiles
// whose hand-chosen flat distributions shift between base and regressed
// (hotStep grows from 40% to 70% of total), so the diff golden is exact
// and human-checkable. Run from the repository root:
//
//	go run ./internal/profdiff/testdata/gen
//
// The encoder below is the write-side mirror of the decoder in
// internal/profdiff/proto.go and exercises both packed and unpacked
// repeated encodings, which real pprof writers are free to mix.
package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
)

func varint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func key(b []byte, field, wire int) []byte {
	return varint(b, uint64(field)<<3|uint64(wire))
}

func msg(b []byte, field int, sub []byte) []byte {
	b = key(b, field, 2)
	b = varint(b, uint64(len(sub)))
	return append(b, sub...)
}

// frame is one leaf function with its cpu time in each profile.
type frame struct {
	name      string
	base, cur int64 // nanoseconds
}

// The synthetic hot paths: hotStep regresses hard, decideSlot improves,
// the rest barely move. Names mimic the repository's real hot path so
// the golden output reads like a real explanation.
var frames = []frame{
	{"repro/internal/sched.(*runner).hotStep", 400, 1400},
	{"repro/internal/sched.(*runner).decideSlot", 300, 200},
	{"repro/internal/mem.(*TaskBox).Read", 200, 250},
	{"repro/internal/sched.(*frontier).pop", 100, 150},
}

// encode builds one gzipped profile.proto with sample_type
// [samples/count, cpu/nanoseconds] and one sample per frame.
func encode(pick func(frame) int64, packed bool) []byte {
	// String table; index 0 must be "".
	strs := []string{"", "samples", "count", "cpu", "nanoseconds"}
	idx := map[string]int64{}
	for i, s := range strs {
		idx[s] = int64(i)
	}
	intern := func(s string) int64 {
		if i, ok := idx[s]; ok {
			return i
		}
		idx[s] = int64(len(strs))
		strs = append(strs, s)
		return idx[s]
	}

	var p []byte
	// sample_type: samples/count, cpu/nanoseconds
	for _, st := range [][2]string{{"samples", "count"}, {"cpu", "nanoseconds"}} {
		var vt []byte
		vt = key(vt, 1, 0)
		vt = varint(vt, uint64(idx[st[0]]))
		vt = key(vt, 2, 0)
		vt = varint(vt, uint64(idx[st[1]]))
		p = msg(p, 1, vt)
	}
	for i, f := range frames {
		fid := uint64(i + 1)
		// function: id + name
		var fn []byte
		fn = key(fn, 1, 0)
		fn = varint(fn, fid)
		fn = key(fn, 2, 0)
		fn = varint(fn, uint64(intern(f.name)))
		p = msg(p, 5, fn)
		// location: id + one line pointing at the function
		var line []byte
		line = key(line, 1, 0)
		line = varint(line, fid)
		var loc []byte
		loc = key(loc, 1, 0)
		loc = varint(loc, fid)
		loc = msg(loc, 4, line)
		p = msg(p, 4, loc)
		// sample: the frame as innermost location, values [1, ns]
		var s []byte
		ns := pick(f)
		if packed {
			var locs, vals []byte
			locs = varint(locs, fid)
			s = msg(s, 1, locs)
			vals = varint(vals, 1)
			vals = varint(vals, uint64(ns))
			s = msg(s, 2, vals)
		} else {
			s = key(s, 1, 0)
			s = varint(s, fid)
			s = key(s, 2, 0)
			s = varint(s, 1)
			s = key(s, 2, 0)
			s = varint(s, uint64(ns))
		}
		p = msg(p, 2, s)
	}
	for _, s := range strs {
		var b []byte
		b = key(b, 6, 2)
		b = varint(b, uint64(len(s)))
		b = append(b, s...)
		p = append(p, b...)
	}

	var out bytes.Buffer
	gz, _ := gzip.NewWriterLevel(&out, gzip.BestCompression)
	if _, err := gz.Write(p); err != nil {
		panic(err)
	}
	if err := gz.Close(); err != nil {
		panic(err)
	}
	return out.Bytes()
}

func main() {
	dir := "internal/profdiff/testdata"
	if _, err := os.Stat(dir); err != nil {
		fmt.Fprintln(os.Stderr, "run from the repository root:", err)
		os.Exit(1)
	}
	// base uses packed repeated encoding, regressed unpacked: the decoder
	// must accept both.
	for _, f := range []struct {
		name   string
		pick   func(frame) int64
		packed bool
	}{
		{"base.pprof", func(f frame) int64 { return f.base }, true},
		{"regressed.pprof", func(f frame) int64 { return f.cur }, false},
	} {
		path := filepath.Join(dir, f.name)
		if err := os.WriteFile(path, encode(f.pick, f.packed), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
