// Package profdiff explains performance regressions: it parses pprof
// CPU profiles (the gzipped profile.proto files gsbbench commits under
// profiles/) with a minimal stdlib-only protobuf decoder, attributes
// each sample's value to its innermost frame, and diffs the per-function
// flat totals of a current profile against a baseline — so a failed
// `gsbbench -compare` gate can name the suspect hot path instead of just
// the regressed number.
//
// The decoder understands exactly the slice of profile.proto the diff
// needs — sample types, samples, locations, functions, the string
// table — and ignores every other field, so it stays a few hundred lines
// with no dependency on the pprof module.
package profdiff

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Profile is the flat-value view of one pprof profile.
type Profile struct {
	// SampleTypes are the profile's value dimensions ("samples/count",
	// "cpu/nanoseconds", ...); ValueIndex is the dimension Flat sums —
	// the cpu/nanoseconds column when present, the last column otherwise
	// (pprof's own default).
	SampleTypes []ValueType
	ValueIndex  int
	// Flat maps function name → value attributed to samples whose
	// innermost frame is that function. Total is the sum over all
	// samples.
	Flat  map[string]int64
	Total int64
}

// ValueType is one sample value dimension.
type ValueType struct {
	Type string // e.g. "cpu"
	Unit string // e.g. "nanoseconds"
}

// Unit is the unit of the diffed value dimension.
func (p *Profile) Unit() string {
	if p.ValueIndex < len(p.SampleTypes) {
		return p.SampleTypes[p.ValueIndex].Unit
	}
	return ""
}

// ParseFile reads a pprof profile from disk (gzipped or raw proto).
func ParseFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("profdiff: %s: %w", path, err)
	}
	return p, nil
}

// Parse decodes a pprof profile. The stream may be gzip-compressed (the
// standard on-disk form) or a bare profile.proto message.
func Parse(r io.Reader) (*Profile, error) {
	br := &peekReader{r: r}
	magic, err := br.peek2()
	if err != nil {
		return nil, fmt.Errorf("read profile: %w", err)
	}
	var src io.Reader = br
	if magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("gunzip profile: %w", err)
		}
		defer gz.Close()
		src = gz
	}
	raw, err := io.ReadAll(src)
	if err != nil {
		return nil, fmt.Errorf("read profile: %w", err)
	}
	return decodeProfile(raw)
}

// Delta is one function's flat-value change between two profiles,
// normalized to fractions of each profile's total so profiles of
// different durations compare meaningfully.
type Delta struct {
	Func string
	// Base/Cur are the function's flat share of its profile's total, in
	// [0, 1]; Diff = Cur - Base (positive: the function grew).
	Base, Cur, Diff float64
	// BaseVal/CurVal are the raw flat values (profile units).
	BaseVal, CurVal int64
}

// Diff compares per-function flat shares of cur against base and
// returns every function whose share moved, largest absolute change
// first. Functions absent from one profile count as zero there.
func Diff(base, cur *Profile) []Delta {
	names := map[string]bool{}
	for f := range base.Flat {
		names[f] = true
	}
	for f := range cur.Flat {
		names[f] = true
	}
	share := func(p *Profile, f string) float64 {
		if p.Total == 0 {
			return 0
		}
		return float64(p.Flat[f]) / float64(p.Total)
	}
	var out []Delta
	for f := range names {
		d := Delta{
			Func: f,
			Base: share(base, f), Cur: share(cur, f),
			BaseVal: base.Flat[f], CurVal: cur.Flat[f],
		}
		d.Diff = d.Cur - d.Base
		if d.Diff != 0 {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := abs(out[i].Diff), abs(out[j].Diff)
		if di != dj {
			return di > dj
		}
		return out[i].Func < out[j].Func // deterministic order on ties
	})
	return out
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Format renders the top n deltas as an aligned explanation table,
// growth first — the text gsbbench prints under a failed regression
// gate. Returns "" when there is nothing to explain.
func Format(deltas []Delta, n int) string {
	if len(deltas) == 0 {
		return ""
	}
	if n > 0 && len(deltas) > n {
		deltas = deltas[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "    %-52s %9s %9s %9s\n", "function (flat)", "base", "current", "delta")
	for _, d := range deltas {
		name := d.Func
		if len(name) > 52 {
			name = "…" + name[len(name)-51:]
		}
		fmt.Fprintf(&b, "    %-52s %8.2f%% %8.2f%% %+8.2f%%\n",
			name, 100*d.Base, 100*d.Cur, 100*d.Diff)
	}
	return b.String()
}

// Explain parses two profile files and renders the top-n flat-time
// deltas — the one-call form gsbbench uses per regressed entry.
func Explain(basePath, curPath string, n int) (string, error) {
	base, err := ParseFile(basePath)
	if err != nil {
		return "", err
	}
	cur, err := ParseFile(curPath)
	if err != nil {
		return "", err
	}
	if base.Total == 0 || cur.Total == 0 {
		return "", errors.New("profdiff: profile has no samples to attribute")
	}
	return Format(Diff(base, cur), n), nil
}

// peekReader lets Parse sniff the gzip magic without losing bytes.
type peekReader struct {
	r      io.Reader
	buf    [2]byte
	n      int // buffered bytes not yet returned
	peeked bool
}

func (p *peekReader) peek2() ([]byte, error) {
	if !p.peeked {
		if _, err := io.ReadFull(p.r, p.buf[:]); err != nil {
			return nil, err
		}
		p.n = 2
		p.peeked = true
	}
	return p.buf[:], nil
}

func (p *peekReader) Read(b []byte) (int, error) {
	if p.n > 0 {
		k := copy(b, p.buf[2-p.n:])
		p.n -= k
		return k, nil
	}
	return p.r.Read(b)
}
