package topology

import (
	"fmt"

	"repro/internal/gsb"
)

// FindDecisionMap searches for an assignment of output values in [1..m]
// to the canonical comparison-based classes of the complex such that
// every facet's output vector is legal for spec. It returns the per-class
// assignment, or nil when none exists — in which case the complex
// certifies that no Rounds-round full-information comparison-based
// protocol solves the task.
//
// The search is exact: backtracking over classes with per-facet forward
// checking (upper bounds can never be exceeded; lower bounds must remain
// coverable by the facet's unassigned vertices).
func (c *Complex) FindDecisionMap(spec gsb.Spec) []int {
	if spec.N() != c.N {
		panic(fmt.Sprintf("topology: spec %v is for n=%d, complex has n=%d", spec, spec.N(), c.N))
	}
	m := spec.M()

	// Facet class multisets.
	facetClasses := make([][]int, len(c.Facets))
	for f, facet := range c.Facets {
		cls := make([]int, len(facet))
		for i, v := range facet {
			cls[i] = c.Vertices[v].Class
		}
		facetClasses[f] = cls
	}
	// For each class, the facets it appears in (deduplicated).
	occursIn := make([][]int, c.Classes)
	for f, cls := range facetClasses {
		seen := map[int]bool{}
		for _, cl := range cls {
			if !seen[cl] {
				seen[cl] = true
				occursIn[cl] = append(occursIn[cl], f)
			}
		}
	}

	assign := make([]int, c.Classes) // 0 = unassigned, else value in [1..m]
	counts := make([][]int, len(c.Facets))
	unassigned := make([]int, len(c.Facets))
	for f := range c.Facets {
		counts[f] = make([]int, m)
		unassigned[f] = len(facetClasses[f])
	}

	feasible := func(f int) bool {
		need := 0
		for v := 1; v <= m; v++ {
			cv := counts[f][v-1]
			if cv > spec.Upper(v) {
				return false
			}
			if d := spec.Lower(v) - cv; d > 0 {
				need += d
			}
		}
		return need <= unassigned[f]
	}

	apply := func(cls, val, dir int) bool {
		ok := true
		for _, f := range occursIn[cls] {
			for _, cl := range facetClasses[f] {
				if cl == cls {
					counts[f][val-1] += dir
					unassigned[f] -= dir
				}
			}
			if dir > 0 && !feasible(f) {
				ok = false
			}
		}
		return ok
	}

	// Most-constrained-facet heuristic: always branch on a class of the
	// facet with the fewest unassigned vertices, so that near-complete
	// facets are finished (and contradictions detected) as early as
	// possible. This makes exhausting unsatisfiable instances tractable.
	pickClass := func() int {
		bestF, bestCount := -1, 0
		for f := range facetClasses {
			u := unassigned[f]
			if u == 0 {
				continue
			}
			if bestF == -1 || u < bestCount {
				bestF, bestCount = f, u
			}
		}
		if bestF == -1 {
			return -1
		}
		for _, cl := range facetClasses[bestF] {
			if assign[cl] == 0 {
				return cl
			}
		}
		return -1
	}

	remaining := c.Classes
	var rec func() bool
	rec = func() bool {
		if remaining == 0 {
			return true
		}
		cls := pickClass()
		if cls == -1 {
			// Some classes appear in no facet (impossible by construction)
			// or all facets are complete: assign leftovers arbitrarily.
			for cl := range assign {
				if assign[cl] == 0 {
					assign[cl] = 1
					remaining--
				}
			}
			return true
		}
		remaining--
		for val := 1; val <= m; val++ {
			assign[cls] = val
			ok := apply(cls, val, +1)
			if ok && rec() {
				return true
			}
			apply(cls, val, -1)
			assign[cls] = 0
		}
		remaining++
		return false
	}
	if !rec() {
		return nil
	}
	return assign
}

// CheckDecisionMap verifies that a per-class assignment solves spec on
// every facet; it is used to validate maps returned by FindDecisionMap
// and maps induced by executable protocols.
func (c *Complex) CheckDecisionMap(spec gsb.Spec, assign []int) error {
	if len(assign) != c.Classes {
		return fmt.Errorf("topology: assignment has %d entries, want %d classes", len(assign), c.Classes)
	}
	outputs := make([]int, c.N)
	for f, facet := range c.Facets {
		for i, v := range facet {
			outputs[i] = assign[c.Vertices[v].Class]
		}
		if err := spec.Verify(outputs); err != nil {
			return fmt.Errorf("topology: facet %d outputs %v: %w", f, outputs, err)
		}
	}
	return nil
}

// Solvable reports whether a decision map exists at the given number of
// rounds, with a convenience constructor.
func Solvable(spec gsb.Spec, rounds int) bool {
	c := BuildIIS(spec.N(), rounds)
	return c.FindDecisionMap(spec) != nil
}
