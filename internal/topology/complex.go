// Package topology provides the combinatorial-topology machinery behind
// Theorem 11 (election is not wait-free solvable): it builds the protocol
// complex of r rounds of iterated immediate snapshots (the r-iterated
// standard chromatic subdivision), groups vertices into the equivalence
// classes that any comparison-based, index-independent algorithm must
// respect, and searches exhaustively for a decision map that solves a
// given GSB task on every complete execution.
//
// When the search fails, the complex is a machine-checked certificate
// that no r-round full-information comparison-based protocol solves the
// task. Wait-free read/write solvability equals solvability in *some*
// finite number of IIS rounds, so these are bounded-round impossibility
// certificates (documented as such in EXPERIMENTS.md); when the search
// succeeds, the returned map is a concrete protocol, and the tests replay
// it against the executable iis package.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// OSP is an ordered set partition of the process identities {0..n-1}: the
// sequence of concurrency blocks of one immediate-snapshot round.
type OSP [][]int

// OSPs enumerates all ordered set partitions of {0..n-1} in a
// deterministic order. Their count is the ordered Bell number (1, 3, 13,
// 75, 541, ... for n = 1..5).
func OSPs(n int) []OSP {
	elems := make([]int, n)
	for i := range elems {
		elems[i] = i
	}
	return ospsOf(elems)
}

func ospsOf(elems []int) []OSP {
	if len(elems) == 0 {
		return []OSP{{}}
	}
	var out []OSP
	// Choose a nonempty subset of elems as the first block (encoded by a
	// bitmask), then recurse on the remainder.
	total := 1 << len(elems)
	for mask := 1; mask < total; mask++ {
		var block, rest []int
		for i, e := range elems {
			if mask&(1<<i) != 0 {
				block = append(block, e)
			} else {
				rest = append(rest, e)
			}
		}
		for _, tail := range ospsOf(rest) {
			osp := make(OSP, 0, 1+len(tail))
			osp = append(osp, block)
			osp = append(osp, tail...)
			out = append(out, osp)
		}
	}
	return out
}

// state is a full-information local state: either the initial identity or
// the view of one immediate-snapshot round (pairs of identity and that
// identity's previous state, ordered by identity).
type state struct {
	base  bool
	id    int
	pairs []statePair
}

type statePair struct {
	id int
	st *state
}

// support accumulates every identity mentioned anywhere in the state.
func (s *state) support(into map[int]bool) {
	if s.base {
		into[s.id] = true
		return
	}
	for _, p := range s.pairs {
		into[p.id] = true
		p.st.support(into)
	}
}

// render serializes the state with identities mapped through rank (the
// canonical, comparison-based encoding) or verbatim when rank is nil.
func (s *state) render(b *strings.Builder, rank map[int]int) {
	mapped := func(id int) int {
		if rank == nil {
			return id
		}
		return rank[id]
	}
	if s.base {
		fmt.Fprintf(b, "p%d", mapped(s.id))
		return
	}
	b.WriteByte('{')
	for i, p := range s.pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d:", mapped(p.id))
		p.st.render(b, rank)
	}
	b.WriteByte('}')
}

// Vertex is a process-local final state in some execution.
type Vertex struct {
	ID    int // the process identity at this vertex
	Class int // canonical comparison-based class (see Complex.Classes)
	key   string
}

// Complex is the r-round IIS protocol complex for n processes.
type Complex struct {
	N      int
	Rounds int

	// Facets lists, per complete execution, the vertex index of each
	// process (position i = identity i).
	Facets [][]int

	// Vertices are the distinct (identity, final state) pairs.
	Vertices []Vertex

	// Classes is the number of canonical comparison-based classes; the
	// Class field of every vertex is in [0..Classes).
	Classes int

	classKeys []string
}

// BuildIIS constructs the complex of all executions of `rounds` iterated
// immediate snapshot rounds with full participation of n processes.
// rounds = 0 yields the input complex (a single facet whose vertices are
// the initial states).
func BuildIIS(n, rounds int) *Complex {
	if n < 1 {
		panic("topology: need n >= 1")
	}
	if rounds < 0 {
		panic("topology: need rounds >= 0")
	}
	osps := OSPs(n)
	c := &Complex{N: n, Rounds: rounds}
	vertexIndex := map[string]int{}
	classIndex := map[string]int{}

	// Iterate over all r-tuples of OSPs.
	counters := make([]int, rounds)
	for {
		states := initialStates(n)
		for _, ci := range counters {
			states = applyRound(states, osps[ci])
		}
		facet := make([]int, n)
		for i := 0; i < n; i++ {
			vkey := concreteKey(i, states[i])
			idx, ok := vertexIndex[vkey]
			if !ok {
				ckey := canonicalKey(i, states[i])
				cls, ok := classIndex[ckey]
				if !ok {
					cls = len(classIndex)
					classIndex[ckey] = cls
					c.classKeys = append(c.classKeys, ckey)
				}
				idx = len(c.Vertices)
				vertexIndex[vkey] = idx
				c.Vertices = append(c.Vertices, Vertex{ID: i, Class: cls, key: vkey})
			}
			facet[i] = idx
		}
		c.Facets = append(c.Facets, facet)

		// Advance the tuple counter.
		k := rounds - 1
		for ; k >= 0; k-- {
			counters[k]++
			if counters[k] < len(osps) {
				break
			}
			counters[k] = 0
		}
		if k < 0 {
			break
		}
	}
	c.Classes = len(classIndex)
	return c
}

func initialStates(n int) []*state {
	states := make([]*state, n)
	for i := range states {
		states[i] = &state{base: true, id: i}
	}
	return states
}

// applyRound computes each process's view of one immediate-snapshot round
// given the ordered set partition of the round.
func applyRound(prev []*state, osp OSP) []*state {
	n := len(prev)
	next := make([]*state, n)
	var prefix []int
	for _, block := range osp {
		prefix = append(prefix, block...)
		sorted := append([]int(nil), prefix...)
		sort.Ints(sorted)
		view := &state{pairs: make([]statePair, len(sorted))}
		for k, id := range sorted {
			view.pairs[k] = statePair{id: id, st: prev[id]}
		}
		for _, id := range block {
			next[id] = view
		}
	}
	return next
}

// concreteKey identifies a vertex within the fixed-input complex.
func concreteKey(id int, st *state) string {
	var b strings.Builder
	fmt.Fprintf(&b, "me%d|", id)
	st.render(&b, nil)
	return b.String()
}

// canonicalKey is the comparison-based equivalence class of a vertex: all
// identities appearing in the view are replaced by their rank within the
// view's support, and the process's own identity by its rank. Two vertices
// with equal canonical keys have order-isomorphic full-information views,
// so any comparison-based, index-independent algorithm (with identities
// from [1..2n-1]; Theorems 1 and 2) decides the same value at both.
func canonicalKey(id int, st *state) string {
	support := map[int]bool{}
	st.support(support)
	ids := make([]int, 0, len(support))
	for v := range support {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	rank := make(map[int]int, len(ids))
	for r, v := range ids {
		rank[v] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "me%d|", rank[id])
	st.render(&b, rank)
	return b.String()
}

// ClassOfSolo returns the class index of the solo view (a process that ran
// entirely alone each round). It panics if rounds = 0 complexes have no
// such notion distinct from the single facet.
func (c *Complex) ClassOfSolo() int {
	// The solo execution of process 0: every round's OSP begins with the
	// block {0}; its vertex appears in some facet. Find the vertex whose
	// class key mentions only rank 0.
	for _, v := range c.Vertices {
		if v.ID == 0 {
			// Solo keys contain no identity other than p0's rank 0.
			if soloKey(c.Rounds) == c.classKeys[v.Class] {
				return v.Class
			}
		}
	}
	panic("topology: solo class not found")
}

func soloKey(rounds int) string {
	inner := "p0"
	for k := 0; k < rounds; k++ {
		inner = "{0:" + inner + "}"
	}
	return "me0|" + inner
}

// HasVertexKey reports whether some vertex of the complex has the given
// concrete key (as produced by ReconstructKey); used to cross-validate
// the combinatorial complex against the executable iis package.
func (c *Complex) HasVertexKey(key string) bool {
	for _, v := range c.Vertices {
		if v.key == key {
			return true
		}
	}
	return false
}

// HasFacetKeys reports whether some facet's vertex keys are exactly the
// given keys (position i = process i).
func (c *Complex) HasFacetKeys(keys []string) bool {
	if len(keys) != c.N {
		return false
	}
	for _, facet := range c.Facets {
		match := true
		for i, v := range facet {
			if c.Vertices[v].key != keys[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// VertexKey returns the concrete key of vertex v (for diagnostics).
func (c *Complex) VertexKey(v int) string { return c.Vertices[v].key }

// ClassKey returns the canonical key of a class (for diagnostics).
func (c *Complex) ClassKey(cls int) string { return c.classKeys[cls] }

// ReconstructKey rebuilds the concrete vertex key of process `me` after
// `rounds` IIS rounds from observed participation sets: present(i, k)
// reports which processes appear in process i's round-k view (k in
// [0..rounds)). It mirrors the full-information state construction used
// by BuildIIS, so keys from real executions of the iis package can be
// matched against the combinatorial complex.
func ReconstructKey(me, n, rounds int, present func(proc, round int) []bool) string {
	var build func(proc, round int) *state
	build = func(proc, round int) *state {
		if round == 0 {
			return &state{base: true, id: proc}
		}
		mask := present(proc, round-1)
		view := &state{}
		for j := 0; j < n; j++ {
			if mask[j] {
				view.pairs = append(view.pairs, statePair{id: j, st: build(j, round-1)})
			}
		}
		return view
	}
	return concreteKey(me, build(me, rounds))
}
