package topology

import (
	"testing"

	"repro/internal/gsb"
)

func TestSATSearchAgreesWithBacktracking(t *testing.T) {
	// On every instance the chronological search can handle, the CDCL
	// encoding must reach the same verdict.
	specs := func(n int) []gsb.Spec {
		out := []gsb.Spec{
			gsb.Election(n),
			gsb.WSB(n),
			gsb.PerfectRenaming(n),
			gsb.Renaming(n, 2*n-1),
			gsb.Renaming(n, n*(n+1)/2),
			gsb.NewSym(n, 2, 0, n),
		}
		return out
	}
	for _, tc := range []struct{ n, rounds int }{
		{2, 0}, {2, 1}, {2, 2}, {3, 0}, {3, 1}, {4, 1},
	} {
		c := BuildIIS(tc.n, tc.rounds)
		for _, spec := range specs(tc.n) {
			bt := c.FindDecisionMap(spec) != nil
			cdcl := c.FindDecisionMapSAT(spec) != nil
			if bt != cdcl {
				t.Fatalf("n=%d r=%d %v: backtracking=%v CDCL=%v", tc.n, tc.rounds, spec, bt, cdcl)
			}
		}
	}
}

func TestSATSearchClosesWSBn3r2(t *testing.T) {
	// The instance that defeats chronological backtracking (see
	// EXPERIMENTS.md): WSB at n=3, rounds=2. Clause learning exhausts it,
	// completing the Theorem 10 bounded-round certificate series.
	c := BuildIIS(3, 2)
	if got := c.FindDecisionMapSAT(gsb.WSB(3)); got != nil {
		t.Fatalf("WSB n=3 r=2 decision map found: %v; contradicts Theorem 10 (gcd{C(3,i)}=3)", got)
	}
}

func TestSATSearchElectionDeeperRounds(t *testing.T) {
	// Push the election certificate deeper than the backtracking tests:
	// n=3 at three rounds has 2197 facets and ~1086 classes, and the CDCL
	// search still exhausts it in milliseconds.
	if SolvableSAT(gsb.Election(2), 4) {
		t.Error("election n=2 solvable at 4 rounds")
	}
	if SolvableSAT(gsb.Election(3), 2) {
		t.Error("election n=3 solvable at 2 rounds")
	}
	if SolvableSAT(gsb.Election(3), 3) {
		t.Error("election n=3 solvable at 3 rounds")
	}
}

func TestSATSearchFiveProcessesOneRound(t *testing.T) {
	// One-round certificates at n=5 (541 facets): WSB (gcd{C(5,i)}=5 not
	// prime), election and perfect renaming all provably unsolvable.
	c := BuildIIS(5, 1)
	for _, spec := range []gsb.Spec{gsb.WSB(5), gsb.Election(5), gsb.PerfectRenaming(5)} {
		if c.FindDecisionMapSAT(spec) != nil {
			t.Errorf("%v solvable in one IIS round for n=5", spec)
		}
	}
	// Positive control at the same size: one-round renaming into
	// n(n+1)/2 = 15 names exists.
	if c.FindDecisionMapSAT(gsb.Renaming(5, 15)) == nil {
		t.Error("15-renaming for n=5 should be one-round solvable")
	}
}

func TestSATSearchPositiveModelsVerify(t *testing.T) {
	// SAT results are double-checked against CheckDecisionMap inside
	// FindDecisionMapSAT; exercise a few satisfiable instances.
	for _, tc := range []struct {
		spec   gsb.Spec
		rounds int
	}{
		{gsb.Renaming(2, 3), 1},
		{gsb.Renaming(3, 6), 1},
		{gsb.NewSym(3, 3, 0, 3), 0},
		{gsb.NewSym(4, 2, 0, 4), 1},
	} {
		c := BuildIIS(tc.spec.N(), tc.rounds)
		if c.FindDecisionMapSAT(tc.spec) == nil {
			t.Errorf("%v at %d rounds: no map found", tc.spec, tc.rounds)
		}
	}
}

func TestSATSearchPanicsOnWrongN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildIIS(2, 1).FindDecisionMapSAT(gsb.Election(3))
}
