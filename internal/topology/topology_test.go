package topology

import (
	"testing"

	"repro/internal/gsb"
	"repro/internal/iis"
	"repro/internal/sched"
)

func TestOSPCounts(t *testing.T) {
	// Ordered Bell numbers (Fubini numbers).
	want := []int{1, 1, 3, 13, 75, 541}
	for n := 0; n <= 5; n++ {
		if got := len(OSPs(n)); got != want[n] {
			t.Errorf("|OSPs(%d)| = %d, want %d", n, got, want[n])
		}
	}
}

func TestOSPsArePartitions(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for _, osp := range OSPs(n) {
			seen := map[int]bool{}
			for _, block := range osp {
				if len(block) == 0 {
					t.Fatalf("empty block in %v", osp)
				}
				for _, e := range block {
					if e < 0 || e >= n || seen[e] {
						t.Fatalf("bad element %d in %v", e, osp)
					}
					seen[e] = true
				}
			}
			if len(seen) != n {
				t.Fatalf("%v does not cover {0..%d}", osp, n-1)
			}
		}
	}
}

func TestComplexSizes(t *testing.T) {
	tests := []struct {
		n, rounds        int
		facets, vertices int
	}{
		{1, 1, 1, 1},
		{2, 0, 1, 2},
		{2, 1, 3, 4},
		{2, 2, 9, 10},
		{3, 1, 13, 12}, // vertices: n * 2^(n-1) = 12
		{4, 1, 75, 32}, // 4 * 8
	}
	for _, tc := range tests {
		c := BuildIIS(tc.n, tc.rounds)
		if len(c.Facets) != tc.facets {
			t.Errorf("n=%d r=%d: %d facets, want %d", tc.n, tc.rounds, len(c.Facets), tc.facets)
		}
		if len(c.Vertices) != tc.vertices {
			t.Errorf("n=%d r=%d: %d vertices, want %d", tc.n, tc.rounds, len(c.Vertices), tc.vertices)
		}
	}
}

func TestComplexStructure(t *testing.T) {
	for _, tc := range []struct{ n, rounds int }{
		{2, 1}, {2, 2}, {2, 3}, {3, 1}, {3, 2}, {4, 1},
	} {
		c := BuildIIS(tc.n, tc.rounds)
		if !c.IsPseudomanifold() {
			t.Errorf("n=%d r=%d: not a pseudomanifold", tc.n, tc.rounds)
		}
		if !c.IsStronglyConnected() {
			t.Errorf("n=%d r=%d: not strongly connected", tc.n, tc.rounds)
		}
		if tc.n >= 2 && c.BoundaryRidges() == 0 {
			t.Errorf("n=%d r=%d: subdivided simplex must have a boundary", tc.n, tc.rounds)
		}
	}
}

func TestSoloClassSharedByAllProcesses(t *testing.T) {
	// Comparison-based algorithms decide the same value in every solo
	// execution (the key step of Theorem 11's proof): all n solo vertices
	// must be in one class.
	for _, tc := range []struct{ n, rounds int }{{2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1}} {
		c := BuildIIS(tc.n, tc.rounds)
		solo := c.ClassOfSolo()
		count := 0
		for _, v := range c.Vertices {
			if v.Class == solo {
				count++
			}
		}
		if count != tc.n {
			t.Errorf("n=%d r=%d: solo class has %d vertices, want %d", tc.n, tc.rounds, count, tc.n)
		}
	}
}

func TestElectionImpossible(t *testing.T) {
	// Theorem 11 (bounded-round certificates): no comparison-based
	// protocol solves election in r IIS rounds.
	for _, tc := range []struct{ n, rounds int }{
		{2, 0}, {2, 1}, {2, 2}, {2, 3},
		{3, 0}, {3, 1}, {3, 2},
		{4, 1},
	} {
		if Solvable(gsb.Election(tc.n), tc.rounds) {
			t.Errorf("election n=%d solvable in %d rounds; contradicts Theorem 11", tc.n, tc.rounds)
		}
	}
}

func TestPerfectRenamingImpossible(t *testing.T) {
	// Corollary 5 certificates.
	for _, tc := range []struct{ n, rounds int }{
		{2, 0}, {2, 1}, {2, 2}, {2, 3},
		{3, 0}, {3, 1}, {3, 2},
		{4, 1},
	} {
		if Solvable(gsb.PerfectRenaming(tc.n), tc.rounds) {
			t.Errorf("perfect renaming n=%d solvable in %d rounds; contradicts Corollary 5", tc.n, tc.rounds)
		}
	}
}

func TestWSBImpossibleForPrimePowerN(t *testing.T) {
	// Theorem 10: for n = 2, 3, 4 (prime powers), WSB is not wait-free
	// solvable; certify for small round counts. (n=3, r=2 is excluded:
	// WSB's not-all-equal constraints prune too weakly for the
	// chronological backtracking search to exhaust that instance in
	// reasonable time; see EXPERIMENTS.md.)
	for _, tc := range []struct{ n, rounds int }{
		{2, 1}, {2, 2}, {2, 3},
		{3, 1},
		{4, 1},
	} {
		if Solvable(gsb.WSB(tc.n), tc.rounds) {
			t.Errorf("WSB n=%d solvable in %d rounds; contradicts Theorem 10 (gcd not prime)", tc.n, tc.rounds)
		}
	}
}

func TestPositiveControls(t *testing.T) {
	// Tasks that ARE solvable must admit decision maps, and the maps must
	// verify on every facet.
	tests := []struct {
		name   string
		spec   gsb.Spec
		rounds int
	}{
		{"m=1 trivial at 0 rounds", gsb.NewSym(3, 1, 0, 3), 0},
		{"loose slot-free task at 0 rounds", gsb.NewSym(3, 3, 0, 3), 0},
		{"3-renaming n=2 at 1 round", gsb.Renaming(2, 3), 1},
		{"6-renaming n=3 at 1 round", gsb.Renaming(3, 6), 1},
		{"2-bounded homonymous n=2", gsb.NewSym(2, 2, 0, 2), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := BuildIIS(tc.spec.N(), tc.rounds)
			m := c.FindDecisionMap(tc.spec)
			if m == nil {
				t.Fatalf("no decision map found for %v at %d rounds", tc.spec, tc.rounds)
			}
			if err := c.CheckDecisionMap(tc.spec, m); err != nil {
				t.Fatalf("returned map fails verification: %v", err)
			}
		})
	}
}

func TestRenamingLowerBoundAtOneRound(t *testing.T) {
	// One IIS round cannot solve (2n-1)-renaming for n >= 2 (the
	// comparison-based one-round protocols reach only n(n+1)/2 names);
	// n=2: 3-renaming IS solvable in one round (3 = n(n+1)/2), but n=3:
	// 5-renaming in one round must fail while 6-renaming succeeds.
	if Solvable(gsb.Renaming(3, 5), 1) {
		t.Error("5-renaming for n=3 should not be solvable in one IIS round")
	}
	if !Solvable(gsb.Renaming(3, 6), 1) {
		t.Error("6-renaming for n=3 should be solvable in one IIS round")
	}
}

func TestCheckDecisionMapRejectsBadMaps(t *testing.T) {
	c := BuildIIS(2, 1)
	spec := gsb.Renaming(2, 3)
	bad := make([]int, c.Classes)
	for i := range bad {
		bad[i] = 1 // everyone decides 1: violates distinctness
	}
	if err := c.CheckDecisionMap(spec, bad); err == nil {
		t.Error("constant map accepted for renaming")
	}
	if err := c.CheckDecisionMap(spec, []int{1}); err == nil {
		t.Error("short map accepted")
	}
}

func TestBuildIISValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { BuildIIS(0, 1) },
		func() { BuildIIS(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFindDecisionMapPanicsOnWrongN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildIIS(2, 1).FindDecisionMap(gsb.Election(3))
}

func TestComplexMatchesExecutableIIS(t *testing.T) {
	// Every execution of the real iis package must correspond to a facet
	// of the combinatorial complex (same full-information views).
	for _, tc := range []struct{ n, rounds int }{{2, 1}, {2, 2}, {3, 1}, {3, 2}} {
		c := BuildIIS(tc.n, tc.rounds)
		for seed := int64(0); seed < 25; seed++ {
			presents := make([][][]bool, tc.n) // [proc][round] participation
			it := iis.NewIterated[int]("X", tc.n, tc.rounds)
			r := sched.NewRunner(tc.n, sched.DefaultIDs(tc.n), sched.NewRandom(seed),
				sched.WithMaxSteps(1<<20))
			_, err := r.Run(func(p *sched.Proc) {
				views := it.Run(p, p.Index())
				masks := make([][]bool, tc.rounds)
				for k, v := range views {
					masks[k] = append([]bool(nil), v.Present...)
				}
				p.Exec("record", func() any { presents[p.Index()] = masks; return nil })
				p.Decide(1)
			})
			if err != nil {
				t.Fatalf("n=%d r=%d seed=%d: %v", tc.n, tc.rounds, seed, err)
			}
			present := func(proc, round int) []bool { return presents[proc][round] }
			keys := make([]string, tc.n)
			for i := 0; i < tc.n; i++ {
				keys[i] = ReconstructKey(i, tc.n, tc.rounds, present)
				if !c.HasVertexKey(keys[i]) {
					t.Fatalf("n=%d r=%d seed=%d: executable view of %d (%s) not a complex vertex",
						tc.n, tc.rounds, seed, i, keys[i])
				}
			}
			if !c.HasFacetKeys(keys) {
				t.Fatalf("n=%d r=%d seed=%d: executable run %v is not a facet", tc.n, tc.rounds, seed, keys)
			}
		}
	}
}
