package topology

import (
	"sort"
	"strings"
)

// This file checks the structural properties of the protocol complex that
// the proof of Theorem 11 relies on: the complex of immediate-snapshot
// executions is a pseudomanifold (every ridge belongs to one or two
// facets) and is strongly connected (any two facets are linked by a chain
// of facets sharing ridges).

// ridgeKey identifies an (n-2)-dimensional face: a facet with one vertex
// removed.
func ridgeKey(facet []int, omit int) string {
	ids := make([]int, 0, len(facet)-1)
	for i, v := range facet {
		if i != omit {
			ids = append(ids, v)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, v := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(itoa(v))
	}
	return b.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

// IsPseudomanifold reports whether every ridge of the complex belongs to
// at most two facets (with boundary ridges belonging to exactly one).
func (c *Complex) IsPseudomanifold() bool {
	count := map[string]int{}
	for _, facet := range c.Facets {
		for omit := range facet {
			count[ridgeKey(facet, omit)]++
		}
	}
	for _, k := range count {
		if k > 2 {
			return false
		}
	}
	return true
}

// BoundaryRidges returns the number of ridges contained in exactly one
// facet (the boundary of the subdivided simplex).
func (c *Complex) BoundaryRidges() int {
	count := map[string]int{}
	for _, facet := range c.Facets {
		for omit := range facet {
			count[ridgeKey(facet, omit)]++
		}
	}
	boundary := 0
	for _, k := range count {
		if k == 1 {
			boundary++
		}
	}
	return boundary
}

// IsStronglyConnected reports whether the facet adjacency graph (facets
// sharing a ridge) is connected — the connectivity property used in the
// Theorem 11 argument to propagate solo decisions.
func (c *Complex) IsStronglyConnected() bool {
	if len(c.Facets) <= 1 {
		return true
	}
	byRidge := map[string][]int{}
	for f, facet := range c.Facets {
		for omit := range facet {
			key := ridgeKey(facet, omit)
			byRidge[key] = append(byRidge[key], f)
		}
	}
	adj := make([][]int, len(c.Facets))
	for _, fs := range byRidge {
		for i := 0; i < len(fs); i++ {
			for j := i + 1; j < len(fs); j++ {
				adj[fs[i]] = append(adj[fs[i]], fs[j])
				adj[fs[j]] = append(adj[fs[j]], fs[i])
			}
		}
	}
	seen := make([]bool, len(c.Facets))
	stack := []int{0}
	seen[0] = true
	visited := 1
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range adj[f] {
			if !seen[g] {
				seen[g] = true
				visited++
				stack = append(stack, g)
			}
		}
	}
	return visited == len(c.Facets)
}
