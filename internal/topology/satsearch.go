package topology

import (
	"fmt"

	"repro/internal/gsb"
	"repro/internal/sat"
)

// FindDecisionMapSAT performs the same exhaustive search as
// FindDecisionMap through a CNF encoding and the CDCL solver of package
// sat. Clause learning handles instances whose constraints propagate too
// weakly for chronological backtracking (notably weak symmetry breaking,
// whose facet constraints are pure not-all-equal). It returns a per-class
// assignment or nil when provably none exists.
//
// Encoding: boolean variable x[c][v] = "class c decides value v";
// exactly-one constraints per class, and per facet and value the counting
// bounds become blocking clauses over minimal violating class sets
// (multiplicities of a class within a facet are respected).
func (c *Complex) FindDecisionMapSAT(spec gsb.Spec) []int {
	assign, res := c.findDecisionMapSAT(spec, 0)
	if res == sat.Aborted {
		panic("topology: unbounded SAT search aborted unexpectedly")
	}
	return assign
}

// findDecisionMapSAT is the budgeted core; maxConflicts 0 = unlimited.
func (c *Complex) findDecisionMapSAT(spec gsb.Spec, maxConflicts int64) ([]int, sat.Result) {
	if spec.N() != c.N {
		panic(fmt.Sprintf("topology: spec %v is for n=%d, complex has n=%d", spec, spec.N(), c.N))
	}
	m := spec.M()
	varOf := func(cls, val int) int { return cls*m + val } // val is 1-based

	solver := sat.New(c.Classes * m)
	solver.MaxConflicts = maxConflicts

	// Exactly one value per class.
	for cls := 0; cls < c.Classes; cls++ {
		lits := make([]int, m)
		for v := 1; v <= m; v++ {
			lits[v-1] = varOf(cls, v)
		}
		solver.AddClause(lits...)
		for a := 1; a <= m; a++ {
			for b := a + 1; b <= m; b++ {
				solver.AddClause(-varOf(cls, a), -varOf(cls, b))
			}
		}
	}

	// Facet counting constraints over class multiplicities.
	for _, facet := range c.Facets {
		mult := map[int]int{}
		for _, vtx := range facet {
			mult[c.Vertices[vtx].Class]++
		}
		cms := make([]classMult, 0, len(mult))
		for cls, t := range mult {
			cms = append(cms, classMult{cls, t})
		}
		k := len(cms)
		// Enumerate subsets of the facet's classes.
		for v := 1; v <= m; v++ {
			upper, lower := spec.Upper(v), spec.Lower(v)
			for mask := 1; mask < 1<<k; mask++ {
				total := 0
				for i := 0; i < k; i++ {
					if mask&(1<<i) != 0 {
						total += cms[i].mult
					}
				}
				// Upper bound: the classes in the subset cannot all pick v
				// if their combined multiplicity exceeds u_v. Only minimal
				// violating subsets are needed: every proper subset must be
				// within the bound.
				if total > upper && minimalOver(cms, mask, upper) {
					lits := make([]int, 0, k)
					for i := 0; i < k; i++ {
						if mask&(1<<i) != 0 {
							lits = append(lits, -varOf(cms[i].cls, v))
						}
					}
					solver.AddClause(lits...)
				}
				// Lower bound: the complement of the subset cannot supply
				// l_v instances, so some class in the subset must pick v.
				rest := c.N - total
				if rest < lower && minimalUnder(cms, mask, c.N, lower) {
					lits := make([]int, 0, k)
					for i := 0; i < k; i++ {
						if mask&(1<<i) != 0 {
							lits = append(lits, varOf(cms[i].cls, v))
						}
					}
					solver.AddClause(lits...)
				}
			}
		}
	}

	switch solver.Solve() {
	case sat.Unsat:
		return nil, sat.Unsat
	case sat.Aborted:
		return nil, sat.Aborted
	}
	model := solver.Model()
	assign := make([]int, c.Classes)
	for cls := 0; cls < c.Classes; cls++ {
		for v := 1; v <= m; v++ {
			if model[varOf(cls, v)] {
				assign[cls] = v
				break
			}
		}
		if assign[cls] == 0 {
			panic("topology: SAT model left a class unassigned")
		}
	}
	if err := c.CheckDecisionMap(spec, assign); err != nil {
		panic(fmt.Sprintf("topology: SAT model fails verification: %v", err))
	}
	return assign, sat.Sat
}

type classMult struct {
	cls, mult int
}

// minimalOver reports whether removing any single element of the subset
// brings the multiplicity total to at most the bound (so the subset is a
// minimal violator of the upper bound).
func minimalOver(cms []classMult, mask, upper int) bool {
	total := 0
	for i := range cms {
		if mask&(1<<i) != 0 {
			total += cms[i].mult
		}
	}
	for i := range cms {
		if mask&(1<<i) != 0 && total-cms[i].mult > upper {
			return false
		}
	}
	return true
}

// minimalUnder reports whether the subset is a minimal set whose
// complement cannot reach the lower bound (removing any element restores
// feasibility of the complement).
func minimalUnder(cms []classMult, mask, n, lower int) bool {
	total := 0
	for i := range cms {
		if mask&(1<<i) != 0 {
			total += cms[i].mult
		}
	}
	for i := range cms {
		if mask&(1<<i) != 0 && n-(total-cms[i].mult) < lower {
			return false
		}
	}
	return true
}

// SolvableSAT is the CDCL-backed variant of Solvable.
func SolvableSAT(spec gsb.Spec, rounds int) bool {
	c := BuildIIS(spec.N(), rounds)
	return c.FindDecisionMapSAT(spec) != nil
}
