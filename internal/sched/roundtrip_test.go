package sched

import (
	"testing"

	"repro/internal/lint"
)

// TestCheckpointStateRoundTrips is the dynamic half of gsbvet's
// statefield contract: the analyzer proves every exported field of the
// //gsb:serialized structs carries a json tag; this test proves each
// field actually survives an encode/decode cycle, so a field silently
// dropped by the wire format fails here by name.
func TestCheckpointStateRoundTrips(t *testing.T) {
	for _, v := range []any{
		&ExploreState{},
		&FrontierState{},
		&FailureState{},
		&SeededState{},
		&SeededFailure{},
	} {
		if err := lint.RoundTripJSON(v); err != nil {
			t.Error(err)
		}
	}
}
