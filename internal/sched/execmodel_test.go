package sched

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/stats"
)

// The execution-model registries (memmodel.go, adversary.go) are part of
// campaign identity and CLI surface, so their names, order and error
// messages are contractual: these tests pin them.

func TestMemModelRegistry(t *testing.T) {
	want := []string{ModelAtomic, ModelRegular, ModelSafe, ModelStaleSnapshot}
	got := MemModels()
	if len(got) != len(want) {
		t.Fatalf("MemModels() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MemModels() = %v, want %v (order is contractual: default first)", got, want)
		}
	}
	for _, name := range want {
		m, err := MemModelByName(name)
		if err != nil {
			t.Fatalf("MemModelByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("MemModelByName(%q).Name() = %q", name, m.Name())
		}
	}
	// The empty name is the default, and the zero value is atomic.
	def, err := MemModelByName("")
	if err != nil {
		t.Fatalf("MemModelByName(\"\"): %v", err)
	}
	if def != (MemModel{}) || def.Name() != ModelAtomic {
		t.Errorf("default model = %+v (%q), want the zero (atomic) model", def, def.Name())
	}
	// Capabilities per model.
	caps := func(name string) [3]bool {
		m, _ := MemModelByName(name)
		return [3]bool{m.TwoPhaseWrites(), m.SafeReads(), m.StaleSnapshots()}
	}
	if caps(ModelAtomic) != [3]bool{false, false, false} {
		t.Errorf("atomic capabilities = %v, want none", caps(ModelAtomic))
	}
	if caps(ModelRegular) != [3]bool{true, false, false} {
		t.Errorf("regular capabilities = %v, want two-phase writes only", caps(ModelRegular))
	}
	if caps(ModelSafe) != [3]bool{true, true, false} {
		t.Errorf("safe capabilities = %v, want two-phase writes + safe reads", caps(ModelSafe))
	}
	if caps(ModelStaleSnapshot) != [3]bool{false, false, true} {
		t.Errorf("stale-snapshot capabilities = %v, want stale snapshots only", caps(ModelStaleSnapshot))
	}
	// Unknown names list the registry.
	_, err = MemModelByName("bogus")
	if err == nil || !strings.Contains(err.Error(), "atomic, regular, safe, stale-snapshot") {
		t.Errorf("MemModelByName(bogus) = %v, want the registered list", err)
	}
}

func TestAdversaryRegistry(t *testing.T) {
	want := []string{AdversaryUniformCrash, AdversaryTResilient, AdversaryAdaptive}
	got := Adversaries()
	if len(got) != len(want) {
		t.Fatalf("Adversaries() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Adversaries() = %v, want %v (order is contractual: default first)", got, want)
		}
	}
	for _, name := range want {
		a, err := AdversaryByName(name)
		if err != nil {
			t.Fatalf("AdversaryByName(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("AdversaryByName(%q).Name() = %q", name, a.Name())
		}
	}
	if def, err := AdversaryByName(""); err != nil || def.Name() != AdversaryUniformCrash {
		t.Errorf("default adversary = (%q, %v), want uniform-crash", def.Name(), err)
	}
	_, err := AdversaryByName("bogus")
	if err == nil || !strings.Contains(err.Error(), "uniform-crash, t-resilient, adaptive") {
		t.Errorf("AdversaryByName(bogus) = %v, want the registered list", err)
	}
}

func TestValidateRejectsUnknownExecModel(t *testing.T) {
	err := ExploreOptions{Model: "bogus"}.Validate()
	if !errors.Is(err, ErrInvalidOptions) || !strings.Contains(err.Error(), `unknown memory model "bogus"`) {
		t.Errorf("Model=bogus: %v, want ErrInvalidOptions naming the model", err)
	}
	err = ExploreOptions{Adversary: "bogus"}.Validate()
	if !errors.Is(err, ErrInvalidOptions) || !strings.Contains(err.Error(), `unknown adversary "bogus"`) {
		t.Errorf("Adversary=bogus: %v, want ErrInvalidOptions naming the adversary", err)
	}
	if err := (ExploreOptions{Model: ModelSafe, Adversary: AdversaryAdaptive}).Validate(); err != nil {
		t.Errorf("registered names rejected: %v", err)
	}
}

// TestExplicitDefaultNamesIdentical is the engine half of the
// default-preservation differential: naming the defaults explicitly
// ("atomic", "uniform-crash") must reproduce the zero-valued options'
// counts and lex-min violations exactly, at workers 1, 2 and 8, in every
// exploration mode — the registry refactor must be invisible at the
// defaults.
func TestExplicitDefaultNamesIdentical(t *testing.T) {
	const n = 3
	check := distinctOutputs // raceBody violates on some schedules
	for _, red := range []Reduction{ReductionNone, ReductionSleepSets, ReductionSleepMemo} {
		for _, workers := range []int{1, 2, 8} {
			base := ExploreOptions{Workers: workers, MaxSteps: 1000, Reduction: red}
			named := base
			named.Model, named.Adversary = ModelAtomic, AdversaryUniformCrash
			wantCount, wantErr := Explore(context.Background(), n, DefaultIDs(n), base, raceBody(n), check)
			gotCount, gotErr := Explore(context.Background(), n, DefaultIDs(n), named, raceBody(n), check)
			if gotCount != wantCount || errText(gotErr) != errText(wantErr) {
				t.Errorf("reduction=%v workers=%d: named defaults (%d, %q), zero defaults (%d, %q)",
					red, workers, gotCount, errText(gotErr), wantCount, errText(wantErr))
			}
		}
	}
	for _, workers := range []int{1, 2, 8} {
		base := ExploreOptions{Workers: workers, Seed: 5, CrashRuns: 400, CrashProb: 0.1, MaxSteps: 1000}
		named := base
		named.Model, named.Adversary = ModelAtomic, AdversaryUniformCrash
		wantCount, wantErr := ExploreCrashes(context.Background(), n, DefaultIDs(n), base, raceBody(n), check)
		gotCount, gotErr := ExploreCrashes(context.Background(), n, DefaultIDs(n), named, raceBody(n), check)
		if gotCount != wantCount || errText(gotErr) != errText(wantErr) {
			t.Errorf("crash sweep workers=%d: named defaults (%d, %q), zero defaults (%d, %q)",
				workers, gotCount, errText(gotErr), wantCount, errText(wantErr))
		}
	}
}

// TestAdversarySweepsDeterministicAcrossWorkers: each registered
// adversary yields a worker-count-independent sweep verdict — counts and
// the first failing run are pure functions of (adversary, seed), which is
// what makes adversary sweeps checkpoint- and shard-safe.
func TestAdversarySweepsDeterministicAcrossWorkers(t *testing.T) {
	const n = 3
	for _, adv := range Adversaries() {
		var wantCount int
		var wantErr string
		for i, workers := range []int{1, 2, 8} {
			opts := ExploreOptions{Workers: workers, Seed: 7, CrashRuns: 300, CrashProb: 0.15, MaxSteps: 1000, Adversary: adv}
			count, err := ExploreCrashes(context.Background(), n, DefaultIDs(n), opts, raceBody(n), distinctOutputs)
			if i == 0 {
				wantCount, wantErr = count, errText(err)
				continue
			}
			if count != wantCount || errText(err) != wantErr {
				t.Errorf("adversary=%s workers=%d: (%d, %q), want (%d, %q) as at workers=1",
					adv, workers, count, errText(err), wantCount, wantErr)
			}
		}
	}
}

// TestTResilientCrashSemantics: the t-resilient adversary crashes only
// processes in its pre-drawn victim set, never more than maxCrashes of
// them, and is deterministic per seed.
func TestTResilientCrashSemantics(t *testing.T) {
	const n, maxCrashes = 4, 2
	pending := []int{0, 1, 2, 3}
	crashed := map[int]bool{}
	a := NewTResilientCrash(42, 1, maxCrashes, n) // crashProb 1: victims crash on first pick
	b := NewTResilientCrash(42, 1, maxCrashes, n)
	for i := 0; i < 200; i++ {
		d := a.Next(pending, i)
		if d2 := b.Next(pending, i); d != d2 {
			t.Fatalf("step %d: same seed diverged: %+v vs %+v", i, d, d2)
		}
		if d.Crash {
			crashed[d.Proc] = true
		}
	}
	if len(crashed) == 0 {
		t.Fatal("crashProb 1 never crashed a victim")
	}
	if len(crashed) > maxCrashes {
		t.Errorf("crashed %d distinct processes, victim budget is %d", len(crashed), maxCrashes)
	}
}

// TestAdaptiveCrashTargetsFrontRunner: every crash decision of the
// adaptive adversary fells the pending process with the most granted
// steps (ties to the smallest index).
func TestAdaptiveCrashTargetsFrontRunner(t *testing.T) {
	const n = 3
	pending := []int{0, 1, 2}
	granted := make([]int, n)
	a := NewAdaptiveCrash(9, 0.3, n-1, n)
	crashes := 0
	for i := 0; i < 400 && len(pending) > 1; i++ {
		d := a.Next(pending, i)
		if d.Crash {
			crashes++
			best := pending[0]
			for _, p := range pending[1:] {
				if granted[p] > granted[best] {
					best = p
				}
			}
			if d.Proc != best {
				t.Fatalf("step %d: crashed %d (granted %v), front-runner is %d", i, d.Proc, granted, best)
			}
			keep := pending[:0]
			for _, p := range pending {
				if p != d.Proc {
					keep = append(keep, p)
				}
			}
			pending = keep
			continue
		}
		granted[d.Proc]++
	}
	if crashes == 0 {
		t.Fatal("adaptive adversary never crashed anyone at crashProb 0.3 over 400 decisions")
	}
}

// TestAdversaryEventsMetric: sweeps publish the injected-crash count as
// MetricAdversaryEvents, identically at every worker count (the events of
// an erroring run are not counted, so the total is deterministic).
func TestAdversaryEventsMetric(t *testing.T) {
	const n = 3
	for _, adv := range Adversaries() {
		var want int64 = -1
		for _, workers := range []int{1, 2, 8} {
			reg := stats.New()
			opts := ExploreOptions{Workers: workers, Seed: 11, CrashRuns: 300, CrashProb: 0.2, MaxSteps: 1000, Adversary: adv, Stats: reg}
			if _, err := ExploreCrashes(context.Background(), n, DefaultIDs(n), opts, stepsBodyBuild(2), func(*Result) error { return nil }); err != nil {
				t.Fatalf("adversary=%s workers=%d: %v", adv, workers, err)
			}
			events := reg.Snapshot().Counter(MetricAdversaryEvents)
			if events == 0 {
				t.Fatalf("adversary=%s: no adversary events at crashProb 0.2 over 300 runs", adv)
			}
			if want == -1 {
				want = events
			} else if events != want {
				t.Errorf("adversary=%s workers=%d: %d events, want %d as at workers=1", adv, workers, events, want)
			}
		}
	}
}

// stepsBodyBuild adapts stepsBody to the build-function shape.
func stepsBodyBuild(k int) func() Body {
	return func() Body { return stepsBody(k) }
}
