package sched

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// waitGoroutines polls until the live goroutine count drops back to at
// most want (coroutine teardown is synchronous, but the runtime may lag a
// tick when tests run in parallel).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d live, want <= %d\n%s", runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSchedulerOpPanicUnwindsProcesses is the regression test for the
// scheduler-side panic leak: a panic inside an op (here the double-Decide
// guard) used to unwind Run and leave every process goroutine parked
// forever. Run must now crash-unwind the suspended processes, then
// re-raise the original value wrapped with the process index.
func TestSchedulerOpPanicUnwindsProcesses(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("expected panic on double decide")
			}
			pps, ok := rec.(ProcessPanics)
			if !ok {
				t.Fatalf("panic value is %T, want ProcessPanics", rec)
			}
			if len(pps) != 1 {
				t.Fatalf("got %d process panics, want 1: %v", len(pps), pps)
			}
			// The original panic value must be preserved verbatim, not
			// flattened through fmt.Sprintf.
			s, ok := pps[0].Value.(string)
			if !ok || !strings.Contains(s, "decided twice") {
				t.Fatalf("original panic value not preserved: %#v", pps[0].Value)
			}
		}()
		r := NewRunner(3, DefaultIDs(3), NewRoundRobin())
		_, _ = r.Run(func(p *Proc) {
			p.Decide(1)
			p.Decide(2)
		})
	}()
	waitGoroutines(t, before)
}

// procPanicValue is a sentinel panic payload that would not survive
// stringification.
type procPanicValue struct{ code int }

// TestBodyPanicReportsEveryProcess checks the fidelity of the re-raise
// path for panics in body code: every panicking process is reported (not
// just the lowest index), each with its original panic value, and no
// goroutine leaks.
func TestBodyPanicReportsEveryProcess(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("expected panic from protocol bodies")
			}
			pps, ok := rec.(ProcessPanics)
			if !ok {
				t.Fatalf("panic value is %T, want ProcessPanics", rec)
			}
			if len(pps) != 2 {
				t.Fatalf("got %d process panics, want 2: %v", len(pps), pps)
			}
			for k, want := range []int{0, 2} {
				if pps[k].Proc != want {
					t.Errorf("panic %d attributed to process %d, want %d", k, pps[k].Proc, want)
				}
				v, ok := pps[k].Value.(procPanicValue)
				if !ok || v.code != 40+want {
					t.Errorf("panic %d value = %#v, want procPanicValue{%d}", k, pps[k].Value, 40+want)
				}
			}
			if !strings.Contains(pps.Error(), "process 0") || !strings.Contains(pps.Error(), "process 2") {
				t.Errorf("Error() does not name both processes: %s", pps.Error())
			}
		}()
		r := NewRunner(3, DefaultIDs(3), NewRoundRobin())
		_, _ = r.Run(func(p *Proc) {
			p.Exec("noop", func() any { return nil })
			if p.Index() != 1 {
				panic(procPanicValue{code: 40 + p.Index()})
			}
			p.Decide(1)
		})
	}()
	waitGoroutines(t, before)
}

// TestReusedRunnerAllocsPerStep pins the steady-state hot path at zero
// allocations per step (and, since the whole run is measured, per run):
// after warm-up, re-executing a run on a reused runner must not allocate
// at all.
func TestReusedRunnerAllocsPerStep(t *testing.T) {
	const n, k = 4, 8
	counter := 0
	op := func() any { counter++; return nil } // hoisted: body-level closures are not the runner's
	body := func(p *Proc) {
		for i := 0; i < k; i++ {
			p.Exec("inc", op)
		}
		p.Decide(1)
	}
	r := NewRunner(n, DefaultIDs(n), nil, WithReuse())
	defer r.Close()
	rr := NewRoundRobin()
	var steps int
	runOnce := func() {
		rr.last = -1 // re-arm the preallocated policy in place
		r.Reset(rr)
		res, err := r.Run(body)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		steps = res.Steps
	}
	runOnce() // warm-up: Schedule backing array reaches steady state
	allocs := testing.AllocsPerRun(200, runOnce)
	if allocs != 0 {
		t.Fatalf("reused runner allocates %.2f allocs/run (%.4f allocs/step), want 0", allocs, allocs/float64(steps))
	}
}

// TestReusedRunnerAllocsPerStepWithStats is the observability variant of
// the pinned zero-allocation bound: re-executing a run on a reused
// runner while publishing the engine metrics a live campaign consumes —
// the run/schedule counters and the frontier gauge, per run — must still
// allocate nothing. This is what keeps the timeline feature free on the
// hot path: the sampler only reads the registry at checkpoint
// boundaries, and the publishing side it rides on is allocation-free.
func TestReusedRunnerAllocsPerStepWithStats(t *testing.T) {
	const n, k = 4, 8
	counter := 0
	op := func() any { counter++; return nil }
	body := func(p *Proc) {
		for i := 0; i < k; i++ {
			p.Exec("inc", op)
		}
		p.Decide(1)
	}
	reg := stats.New()
	m := newEngineMetrics(reg)
	r := NewRunner(n, DefaultIDs(n), nil, WithReuse())
	defer r.Close()
	rr := NewRoundRobin()
	runOnce := func() {
		rr.last = -1
		r.Reset(rr)
		if _, err := r.Run(body); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		m.incRuns()
		m.incSchedules()
		m.setFrontier(int64(counter & 0xff))
	}
	runOnce() // warm-up
	allocs := testing.AllocsPerRun(200, runOnce)
	if allocs != 0 {
		t.Fatalf("reused runner with stats publishing allocates %.2f allocs/run, want 0", allocs)
	}
	if got := reg.Snapshot().Counter(MetricRuns); got < 200 {
		t.Fatalf("runs counter = %d after the measured batch, want >= 200", got)
	}
}

// TestReusedRunnerMatchesFresh is the reuse-vs-fresh differential: a
// sequence of runs on one reused runner must produce Results identical to
// fresh single-use runners, across plain, random and crash-injecting
// policies.
func TestReusedRunnerMatchesFresh(t *testing.T) {
	const n = 4
	newBody := func() (Body, *int) {
		counter := new(int)
		return counterBody(counter, 5), counter
	}
	policies := []struct {
		name string
		mk   func() Policy
	}{
		{"round-robin", func() Policy { return NewRoundRobin() }},
		{"random-3", func() Policy { return NewRandom(3) }},
		{"random-9", func() Policy { return NewRandom(9) }},
		{"crash-at", func() Policy { return &CrashAt{Inner: NewRoundRobin(), Proc: 2, StepsBeforeCrash: 1} }},
		{"random-crash", func() Policy { return NewRandomCrash(7, 0.2, n-1) }},
	}

	reused := NewRunner(n, DefaultIDs(n), nil, WithReuse())
	defer reused.Close()
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			fbody, _ := newBody()
			fresh, ferr := NewRunner(n, DefaultIDs(n), tc.mk()).Run(fbody)
			rbody, _ := newBody()
			reused.Reset(tc.mk())
			got, rerr := reused.Run(rbody)
			if (ferr == nil) != (rerr == nil) {
				t.Fatalf("error mismatch: fresh %v, reused %v", ferr, rerr)
			}
			if fresh.Steps != got.Steps {
				t.Fatalf("Steps: fresh %d, reused %d", fresh.Steps, got.Steps)
			}
			if len(fresh.Schedule) != len(got.Schedule) {
				t.Fatalf("schedule length: fresh %d, reused %d", len(fresh.Schedule), len(got.Schedule))
			}
			for i := range fresh.Schedule {
				if fresh.Schedule[i] != got.Schedule[i] {
					t.Fatalf("schedule[%d]: fresh %v, reused %v", i, fresh.Schedule[i], got.Schedule[i])
				}
			}
			for i := 0; i < n; i++ {
				if fresh.Outputs[i] != got.Outputs[i] || fresh.Decided[i] != got.Decided[i] ||
					fresh.Crashed[i] != got.Crashed[i] || fresh.Participating(i) != got.Participating(i) {
					t.Fatalf("process %d state differs: fresh (%d,%v,%v,%v), reused (%d,%v,%v,%v)",
						i, fresh.Outputs[i], fresh.Decided[i], fresh.Crashed[i], fresh.Participating(i),
						got.Outputs[i], got.Decided[i], got.Crashed[i], got.Participating(i))
				}
			}
		})
	}
}

// TestReuseAfterFailedRuns checks that a reused runner recovers cleanly
// from error-producing runs (budget exhaustion, aborts) and still executes
// subsequent runs correctly.
func TestReuseAfterFailedRuns(t *testing.T) {
	counter := 0
	r := NewRunner(2, DefaultIDs(2), nil, WithMaxSteps(4), WithReuse())
	defer r.Close()

	r.Reset(NewRoundRobin())
	if _, err := r.Run(func(p *Proc) {
		for {
			p.Exec("spin", func() any { return nil })
		}
	}); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}

	r.Reset(NewRoundRobin())
	res, err := r.Run(counterBody(&counter, 1))
	if err != nil {
		t.Fatalf("run after budget failure: %v", err)
	}
	if !res.Decided[0] || !res.Decided[1] {
		t.Fatalf("run after budget failure did not complete: %+v", res)
	}
}

// TestRunnerCloseReleasesCoroutines checks that Close unwinds the parked
// process coroutines of a reusable runner.
func TestRunnerCloseReleasesCoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	counter := 0
	r := NewRunner(3, DefaultIDs(3), NewRoundRobin(), WithReuse())
	if _, err := r.Run(counterBody(&counter, 2)); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	r.Close()
	r.Close() // idempotent
	waitGoroutines(t, before)
}

// TestOneShotRunnerLeavesNoCoroutines checks that a runner without
// WithReuse needs no Close: its process coroutines are torn down at the
// end of each Run.
func TestOneShotRunnerLeavesNoCoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	counter := 0
	r := NewRunner(3, DefaultIDs(3), NewRoundRobin())
	if _, err := r.Run(counterBody(&counter, 2)); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	waitGoroutines(t, before)
}

// TestCrashIsFinalDespiteRecoveringBody checks that a crash cannot be
// escaped by protocol code: a body whose defer recovers the crash unwind
// and re-enters Exec is denied every further step (a crashed process
// never re-enters the pending set), and a reused runner stays clean on
// the next run.
func TestCrashIsFinalDespiteRecoveringBody(t *testing.T) {
	body := func(p *Proc) {
		defer func() {
			if recover() != nil {
				p.Exec("cleanup", func() any { return nil }) // must be denied
			}
		}()
		p.Exec("work", func() any { return nil })
		p.Exec("work", func() any { return nil })
		p.Decide(1)
	}
	r := NewRunner(2, DefaultIDs(2), nil, WithReuse())
	defer r.Close()

	r.Reset(&CrashAt{Inner: NewRoundRobin(), Proc: 0, StepsBeforeCrash: 1})
	res, err := r.Run(body)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.Crashed[0] || res.Decided[0] {
		t.Fatalf("process 0 not cleanly crashed: %+v", res)
	}
	if !res.Decided[1] {
		t.Fatal("process 1 did not run to completion")
	}
	crashedAt := -1
	for i, s := range res.Schedule {
		if s.Proc == 0 && s.Crash {
			crashedAt = i
		}
		if s.Proc == 0 && !s.Crash && crashedAt >= 0 {
			t.Fatalf("process 0 granted %q after its crash (schedule %v)", s.Op, res.Schedule)
		}
		if s.Op == "cleanup" {
			t.Fatalf("denied cleanup step appears in the schedule: %v", res.Schedule)
		}
	}
	if crashedAt < 0 {
		t.Fatalf("no crash event recorded: %v", res.Schedule)
	}

	// The next run on the reused runner must be unaffected by the denied
	// re-entry: both processes decide.
	r.Reset(NewRoundRobin())
	res, err = r.Run(body)
	if err != nil {
		t.Fatalf("run after recovered crash: %v", err)
	}
	if !res.Decided[0] || !res.Decided[1] || res.Crashed[0] || res.Crashed[1] {
		t.Fatalf("reused runner polluted by recovered crash: %+v", res)
	}
}

// TestParticipatingHandBuiltResult checks the Schedule-scan fallback for
// Results constructed outside a runner.
func TestParticipatingHandBuiltResult(t *testing.T) {
	res := &Result{Schedule: []Step{{Proc: 1, Op: "x"}, {Proc: 0, Crash: true}}}
	if res.Participating(0) {
		t.Error("crash-only process reported participating")
	}
	if !res.Participating(1) {
		t.Error("stepping process reported not participating")
	}
}

// TestBrokenPolicyUnwindsRun checks that a policy choosing a process with
// no pending step fails the run with an error instead of leaking every
// suspended process.
func TestBrokenPolicyUnwindsRun(t *testing.T) {
	before := runtime.NumGoroutine()
	counter := 0
	bad := policyFunc(func(pending []int, stepNo int) Decision { return Decision{Proc: 99} })
	_, err := NewRunner(2, DefaultIDs(2), bad).Run(counterBody(&counter, 2))
	if err == nil || !strings.Contains(err.Error(), "no pending step") {
		t.Fatalf("err = %v, want no-pending-step error", err)
	}
	waitGoroutines(t, before)
}

// policyFunc adapts a function to Policy for tests.
type policyFunc func(pending []int, stepNo int) Decision

func (f policyFunc) Next(pending []int, stepNo int) Decision { return f(pending, stepNo) }

// TestExploreWorkersReuseDifferential cross-checks the reused-runner
// parallel engine against the fresh-runner sequential baseline at workers
// 1, 2 and 8: same schedule count on a full exploration.
func TestExploreWorkersReuseDifferential(t *testing.T) {
	const n = 3
	build := func() Body {
		counter := new(int)
		return counterBody(counter, 2)
	}
	check := func(res *Result) error {
		if _, err := res.DecidedVector(); err != nil {
			return err
		}
		return nil
	}
	want, err := ExploreSequential(n, DefaultIDs(n), 1<<20, 1<<16, build, check)
	if err != nil {
		t.Fatalf("sequential exploration failed: %v", err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := ExploreAllWorkers(t, n, workers, build, check)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d explored %d schedules, sequential (fresh runners) explored %d", workers, got, want)
		}
	}
}

// ExploreAllWorkers runs a full exploration at the given worker count.
func ExploreAllWorkers(t *testing.T, n, workers int, build func() Body, check func(*Result) error) (int, error) {
	t.Helper()
	return Explore(nil, n, DefaultIDs(n), ExploreOptions{Workers: workers, MaxRuns: 1 << 20, MaxSteps: 1 << 16}, build, check)
}
