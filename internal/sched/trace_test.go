package sched

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestTimeline(t *testing.T) {
	schedule := []Step{
		{Proc: 0, Op: "A.write"},
		{Proc: 1, Op: "A.read"},
		{Proc: 0, Op: "A.snapshot"},
		{Proc: 2, Crash: true},
		{Proc: 1, Op: "KS.invoke"},
		{Proc: 0, Op: "decide"},
		{Proc: 1, Op: "something.else"},
	}
	got := Timeline(3, schedule)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 { // 3 rows + legend
		t.Fatalf("got %d lines:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "W.S..D.") {
		t.Errorf("p0 row wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], ".R..I.o") {
		t.Errorf("p1 row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "...x...") {
		t.Errorf("p2 row wrong: %q", lines[2])
	}
}

func TestTimelineEmpty(t *testing.T) {
	if got := Timeline(2, nil); !strings.Contains(got, "empty") {
		t.Errorf("got %q", got)
	}
}

func TestSummary(t *testing.T) {
	schedule := []Step{
		{Proc: 0, Op: "A.write"},
		{Proc: 0, Op: "decide"},
		{Proc: 1, Crash: true},
	}
	got := Summary(2, schedule)
	if !strings.Contains(got, "p0: 2 steps") {
		t.Errorf("summary missing p0 count: %q", got)
	}
	if !strings.Contains(got, "p1: 0 steps (crashed)") {
		t.Errorf("summary missing crash: %q", got)
	}
}

func TestTimelineFromRealRun(t *testing.T) {
	counter := 0
	r := NewRunner(3, DefaultIDs(3), NewRoundRobin())
	res, err := r.Run(counterBody(&counter, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := Timeline(3, res.Schedule)
	if strings.Count(got, "\n") != 4 {
		t.Errorf("unexpected timeline shape:\n%s", got)
	}
	for _, row := range []string{"p0 ", "p1 ", "p2 "} {
		if !strings.Contains(got, row) {
			t.Errorf("missing row %q", row)
		}
	}
}

// foataString is a test-local, independent rendering of a schedule's
// Foata normal form: steps are placed level by level exactly as
// CanonicalTraceHash does, but the result is the readable level structure
// instead of an FNV digest. Distinct strings are distinct trace classes
// by construction, which makes the hash checkable for collisions.
func foataString(schedule []Step, indep Independence) string {
	var levels [][]Step
	for _, s := range schedule {
		d := 0
		for l := len(levels); l >= 1; l-- {
			if levelDepends(levels[l-1], s, indep) {
				d = l
				break
			}
		}
		if d == len(levels) {
			levels = append(levels, nil)
		}
		levels[d] = append(levels[d], s)
	}
	var b strings.Builder
	for _, level := range levels {
		sort.Slice(level, func(i, j int) bool { return level[i].Proc < level[j].Proc })
		b.WriteByte('[')
		for _, s := range level {
			fmt.Fprintf(&b, "%d:%s ", s.Proc, s.Op)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// TestTraceHashCollisionSmoke42 enumerates every failure-free schedule of
// the <4,2>-family oracle-box shape (four processes, one conflicting
// "R.invoke" each plus a commuting decide — the step structure of the
// WSB(4)-from-renaming protocol) and cross-checks the Foata hash against
// an independently computed normal form on all of them: equal forms must
// hash equal, distinct forms must hash distinct (the class-coverage
// metric of the sampling subsystem depends on this hash being collision-
// free on real schedule populations), and the class count must be exactly
// the 4! = 24 orderings of the four conflicting invokes.
func TestTraceHashCollisionSmoke42(t *testing.T) {
	const n = 4
	build := func() Body {
		return func(p *Proc) {
			p.Exec("R.invoke", func() any { return nil })
			p.Decide(p.ID())
		}
	}
	byForm := map[string]uint64{}
	byHash := map[uint64]string{}
	schedules := 0
	_, err := Explore(context.Background(), n, DefaultIDs(n),
		ExploreOptions{Workers: 1, MaxSteps: 1000}, build,
		func(res *Result) error {
			schedules++
			form := foataString(res.Schedule, OpIndependent)
			hash := CanonicalTraceHash(res.Schedule, OpIndependent)
			if prev, ok := byForm[form]; ok && prev != hash {
				return fmt.Errorf("same normal form %q hashed %d and %d", form, prev, hash)
			}
			if prev, ok := byHash[hash]; ok && prev != form {
				return fmt.Errorf("hash collision %d: forms %q and %q", hash, prev, form)
			}
			byForm[form] = hash
			byHash[hash] = form
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// (8)!/(2!)^4 = 2520 interleavings, 4! = 24 orders of the invokes.
	if schedules != 2520 {
		t.Errorf("explored %d schedules, want 2520", schedules)
	}
	if len(byForm) != 24 {
		t.Errorf("found %d trace classes, want 24", len(byForm))
	}
}

// TestTraceHashStableAcrossWorkers: the set of class hashes observed over
// a full exploration is identical at 1, 2 and 8 workers — the hash
// depends only on the schedule, never on which worker executed the run,
// so the sampling subsystem's coverage counts are interleaving-
// independent.
func TestTraceHashStableAcrossWorkers(t *testing.T) {
	const n = 3
	build := func() Body {
		shared := 0
		return func(p *Proc) {
			p.Exec(fmt.Sprintf("r%d.write", p.Index()), func() any { return nil })
			v := p.Exec("X.read", func() any { return shared }).(int)
			p.Exec("X.write", func() any { shared = v + 1; return nil })
			p.Decide(p.ID())
		}
	}
	classes := func(workers int) map[uint64]struct{} {
		var mu sync.Mutex
		set := map[uint64]struct{}{}
		_, err := Explore(context.Background(), n, DefaultIDs(n),
			ExploreOptions{Workers: workers, MaxSteps: 1000}, build,
			func(res *Result) error {
				h := CanonicalTraceHash(res.Schedule, OpIndependent)
				mu.Lock()
				set[h] = struct{}{}
				mu.Unlock()
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return set
	}
	want := classes(1)
	if len(want) < 2 {
		t.Fatalf("only %d classes; test is vacuous", len(want))
	}
	for _, workers := range []int{2, 8} {
		got := classes(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d classes, want %d", workers, len(got), len(want))
		}
		for h := range want {
			if _, ok := got[h]; !ok {
				t.Errorf("workers=%d: class %d missing", workers, h)
			}
		}
	}
}
