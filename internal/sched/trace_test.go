package sched

import (
	"strings"
	"testing"
)

func TestTimeline(t *testing.T) {
	schedule := []Step{
		{Proc: 0, Op: "A.write"},
		{Proc: 1, Op: "A.read"},
		{Proc: 0, Op: "A.snapshot"},
		{Proc: 2, Crash: true},
		{Proc: 1, Op: "KS.invoke"},
		{Proc: 0, Op: "decide"},
		{Proc: 1, Op: "something.else"},
	}
	got := Timeline(3, schedule)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 { // 3 rows + legend
		t.Fatalf("got %d lines:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "W.S..D.") {
		t.Errorf("p0 row wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], ".R..I.o") {
		t.Errorf("p1 row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "...x...") {
		t.Errorf("p2 row wrong: %q", lines[2])
	}
}

func TestTimelineEmpty(t *testing.T) {
	if got := Timeline(2, nil); !strings.Contains(got, "empty") {
		t.Errorf("got %q", got)
	}
}

func TestSummary(t *testing.T) {
	schedule := []Step{
		{Proc: 0, Op: "A.write"},
		{Proc: 0, Op: "decide"},
		{Proc: 1, Crash: true},
	}
	got := Summary(2, schedule)
	if !strings.Contains(got, "p0: 2 steps") {
		t.Errorf("summary missing p0 count: %q", got)
	}
	if !strings.Contains(got, "p1: 0 steps (crashed)") {
		t.Errorf("summary missing crash: %q", got)
	}
}

func TestTimelineFromRealRun(t *testing.T) {
	counter := 0
	r := NewRunner(3, DefaultIDs(3), NewRoundRobin())
	res, err := r.Run(counterBody(&counter, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := Timeline(3, res.Schedule)
	if strings.Count(got, "\n") != 4 {
		t.Errorf("unexpected timeline shape:\n%s", got)
	}
	for _, row := range []string{"p0 ", "p1 ", "p2 "} {
		if !strings.Contains(got, row) {
			t.Errorf("missing row %q", row)
		}
	}
}
