// Package sched simulates the asynchronous wait-free shared-memory model
// ASM_{n,t} of the paper: n processes that communicate through atomic
// operations, scheduled by an adversary, of which up to n-1 may crash.
//
// Processes run as goroutines. Every shared-memory operation is funneled
// through the scheduler, which grants one operation at a time according to
// a pluggable Policy (round-robin, seeded random, scripted adversary, with
// optional crash injection). This yields a totally ordered sequence of
// steps — exactly the runs/schedules formalism of Section 2 of the paper —
// and makes executions reproducible: the same policy, identities and body
// always produce the same run.
//
// A crash is simulated by never granting the process another step; its
// goroutine is unwound via a recovered panic so that no goroutine leaks.
package sched

import (
	"errors"
	"fmt"
	"sort"
)

// Proc is the handle through which a process body interacts with the run.
// Its index is an addressing mechanism only (Section 2.1): protocol code
// must base decisions on ID and observed values, never on Index. The
// verifier in verify.go checks this discipline by replaying permuted runs.
type Proc struct {
	r     *Runner
	index int // 0-based slot in the shared arrays
	id    int // identity drawn from [1..N], the only input
}

// Index returns the process's register index (0-based, addressing only).
func (p *Proc) Index() int { return p.index }

// ID returns the process's identity (its input).
func (p *Proc) ID() int { return p.id }

// N returns the number of processes in the system.
func (p *Proc) N() int { return p.r.n }

// errCrashed unwinds a crashed process's goroutine. It is recovered by the
// runner's wrapper; any other panic value is re-raised.
var errCrashed = errors.New("sched: process crashed")

// Exec performs one atomic step: op runs with exclusive access to all
// shared state and is assigned the next position in the linearization
// order. The name labels the step in the recorded schedule.
//
// If the scheduler crashes the process instead of granting the step, Exec
// never returns (the goroutine unwinds).
func (p *Proc) Exec(name string, op func() any) any {
	reply := make(chan stepReply, 1)
	p.r.events <- event{kind: evRequest, proc: p.index, name: name, op: op, reply: reply}
	rep := <-reply
	if rep.crashed {
		panic(errCrashed)
	}
	return rep.val
}

// Decide records v as the process's output (the write to the write-once
// output_i register of the paper) as one atomic step.
func (p *Proc) Decide(v int) {
	p.Exec("decide", func() any {
		if p.r.result.Decided[p.index] {
			panic(fmt.Sprintf("sched: process %d decided twice", p.index))
		}
		p.r.result.Decided[p.index] = true
		p.r.result.Outputs[p.index] = v
		return nil
	})
}

// Body is a process's local algorithm.
type Body func(p *Proc)

// Step is one entry of a recorded schedule.
type Step struct {
	Proc  int    // process index
	Op    string // operation label ("write", "snapshot", "decide", ...)
	Crash bool   // true if this entry records a crash, not an operation
}

// Result describes a completed run.
type Result struct {
	Outputs  []int  // decided values (1-based); 0 when undecided
	Decided  []bool // per-process: did it write its output register?
	Crashed  []bool // per-process: was it crashed by the adversary?
	Schedule []Step // the linearized schedule, including crash events
	Steps    int    // number of operation steps granted (crashes excluded)
}

// DecidedVector returns the output vector when every process decided, or
// an error naming the first process that did not.
func (r *Result) DecidedVector() ([]int, error) {
	for i, d := range r.Decided {
		if !d {
			return nil, fmt.Errorf("sched: process %d did not decide (crashed=%v)", i, r.Crashed[i])
		}
	}
	return append([]int(nil), r.Outputs...), nil
}

// Participating reports whether process i took at least one step.
func (r *Result) Participating(i int) bool {
	for _, s := range r.Schedule {
		if s.Proc == i && !s.Crash {
			return true
		}
	}
	return false
}

// Runner executes one run of a distributed algorithm.
type Runner struct {
	n        int
	ids      []int
	policy   Policy
	maxSteps int

	events chan event
	result *Result
}

type evKind int

const (
	evRequest evKind = iota
	evDone
)

type event struct {
	kind  evKind
	proc  int
	name  string
	op    func() any
	reply chan stepReply
}

type stepReply struct {
	val     any
	crashed bool
}

// Option configures a Runner.
type Option func(*Runner)

// WithMaxSteps overrides the safety budget on total steps (default
// 4096*n). Exceeding the budget aborts the run with an error; this is how
// non-wait-free loops and livelocks surface in tests.
func WithMaxSteps(max int) Option {
	return func(r *Runner) { r.maxSteps = max }
}

// NewRunner creates a runner for n processes with the given distinct
// identities (ids[i] is the input of the process at index i) and policy.
func NewRunner(n int, ids []int, policy Policy, opts ...Option) *Runner {
	if n < 1 {
		panic("sched: need n >= 1")
	}
	if len(ids) != n {
		panic(fmt.Sprintf("sched: got %d ids for %d processes", len(ids), n))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			panic(fmt.Sprintf("sched: duplicate identity %d", id))
		}
		seen[id] = true
	}
	r := &Runner{
		n:        n,
		ids:      append([]int(nil), ids...),
		policy:   policy,
		maxSteps: 4096 * n,
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// DefaultIDs returns the identity assignment {1, 2, ..., n}.
func DefaultIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// ErrStepBudget is returned when a run exceeds its step budget.
var ErrStepBudget = errors.New("sched: step budget exhausted (protocol not wait-free under this schedule?)")

type procState int

const (
	stateRunning procState = iota
	stateCrashed
	stateFinished
)

// Run executes body on all n processes until every process has finished
// or crashed, and returns the recorded result.
func (r *Runner) Run(body Body) (*Result, error) {
	r.events = make(chan event, r.n)
	r.result = &Result{
		Outputs: make([]int, r.n),
		Decided: make([]bool, r.n),
		Crashed: make([]bool, r.n),
	}

	states := make([]procState, r.n)
	pending := make(map[int]event, r.n)
	exited := 0

	// Panics raised by protocol code run in process goroutines, where the
	// caller's recover cannot see them; capture them and re-raise from Run.
	panics := make([]any, r.n)
	for i := 0; i < r.n; i++ {
		p := &Proc{r: r, index: i, id: r.ids[i]}
		go func() {
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); !ok || !errors.Is(err, errCrashed) {
						panics[p.index] = rec // protocol bug: re-raise from Run
					}
				}
				r.events <- event{kind: evDone, proc: p.index}
			}()
			body(p)
		}()
	}

	running := r.n
	crashedCount := 0
	var budgetErr error
	for exited < r.n {
		// Wait until every running process has a pending request, so the
		// policy choice (and hence the run) is deterministic. When no
		// process is running anymore, keep draining exit notifications.
		for len(pending) < running || (running == 0 && exited < r.n) {
			ev := <-r.events
			switch ev.kind {
			case evRequest:
				if states[ev.proc] == stateCrashed {
					// Request raced with a crash decision: deny it.
					ev.reply <- stepReply{crashed: true}
					continue
				}
				pending[ev.proc] = ev
			case evDone:
				if states[ev.proc] == stateRunning {
					states[ev.proc] = stateFinished
					running--
				}
				exited++
			}
		}
		if len(pending) == 0 {
			continue // all processes exited; outer condition terminates
		}

		pendingIdx := make([]int, 0, len(pending))
		for i := range pending {
			pendingIdx = append(pendingIdx, i)
		}
		sort.Ints(pendingIdx)

		var dec Decision
		if budgetErr != nil || r.result.Steps >= r.maxSteps {
			// Budget exhausted: crash everyone still pending to unwind
			// their goroutines, then report the error.
			if budgetErr == nil {
				budgetErr = ErrStepBudget
			}
			dec = Decision{Proc: pendingIdx[0], Crash: true}
		} else {
			dec = r.nextDecision(pendingIdx, pending)
			if dec.Abort {
				// The policy discards the rest of the run (e.g. a
				// partial-order-reduction probe whose continuations are
				// all covered elsewhere): unwind like a budget overrun
				// and report ErrRunAborted — or the policy's own
				// structured error (e.g. ErrScheduleDiverged) when it
				// set one.
				budgetErr = ErrRunAborted
				if dec.Err != nil {
					budgetErr = dec.Err
				}
				dec = Decision{Proc: pendingIdx[0], Crash: true}
			} else if _, ok := pending[dec.Proc]; !ok {
				return nil, fmt.Errorf("sched: policy chose process %d which has no pending step", dec.Proc)
			}
		}

		ev := pending[dec.Proc]
		delete(pending, dec.Proc)
		if dec.Crash {
			if crashedCount+1 == r.n && budgetErr == nil {
				// Record the violation but keep unwinding so no goroutine
				// leaks; the error is reported after the run drains.
				budgetErr = fmt.Errorf("sched: policy crashed all %d processes; the wait-free model allows at most n-1 crashes", r.n)
			}
			crashedCount++
			states[dec.Proc] = stateCrashed
			r.result.Crashed[dec.Proc] = true
			running--
			r.result.Schedule = append(r.result.Schedule, Step{Proc: dec.Proc, Crash: true})
			ev.reply <- stepReply{crashed: true}
			continue
		}

		val := ev.op() // exclusive: the linearization point of the step
		r.result.Steps++
		r.result.Schedule = append(r.result.Schedule, Step{Proc: dec.Proc, Op: ev.name})
		ev.reply <- stepReply{val: val}
	}

	for i, rec := range panics {
		if rec != nil {
			panic(fmt.Sprintf("sched: process %d panicked: %v", i, rec))
		}
	}
	if budgetErr != nil {
		return r.result, budgetErr
	}
	return r.result, nil
}

// nextDecision consults the policy for the next scheduling decision,
// passing the pending operations' labels when the policy asks for them
// (OpAwarePolicy).
func (r *Runner) nextDecision(pendingIdx []int, pending map[int]event) Decision {
	if oap, ok := r.policy.(OpAwarePolicy); ok {
		ops := make([]string, len(pendingIdx))
		for k, i := range pendingIdx {
			ops[k] = pending[i].name
		}
		return oap.NextOps(pendingIdx, ops, r.result.Steps)
	}
	return r.policy.Next(pendingIdx, r.result.Steps)
}
