// Package sched simulates the asynchronous wait-free shared-memory model
// ASM_{n,t} of the paper: n processes that communicate through atomic
// operations, scheduled by an adversary, of which up to n-1 may crash.
//
// Every shared-memory operation is funneled through the scheduler, which
// grants one operation at a time according to a pluggable Policy
// (round-robin, seeded random, scripted adversary, with optional crash
// injection). This yields a totally ordered sequence of steps — exactly
// the runs/schedules formalism of Section 2 of the paper — and makes
// executions reproducible: the same policy, identities and body always
// produce the same run.
//
// Processes run as coroutines (iter.Pull) rather than free-running
// goroutines: a process executes until its next Exec, hands its pending
// request directly to the scheduler in a single stack switch, and stays
// suspended until the scheduler grants (or crash-denies) the step. The
// direct handoff costs no channel operations and no trips through the
// runtime scheduler, and gives the runner a hard invariant — between
// scheduler decisions every live process is suspended at its yield point —
// that makes crash unwinding and panic recovery leak-free by construction.
//
// The hot path is also allocation-free in steady state: every per-run and
// per-step structure (the pending-request table, the scratch buffers
// handed to the policy, the Result and its Schedule backing array) is
// allocated once in NewRunner and reused across runs. Exploration engines
// re-execute millions of short runs, so a Runner can be re-armed with
// Reset and — with WithReuse — keep its process coroutines parked between
// runs instead of recreating them.
//
// A crash is simulated by never granting the process another step; its
// coroutine is unwound via a recovered panic so that nothing leaks.
package sched

import (
	"errors"
	"fmt"
	"iter"
	"strings"
)

// stepReq is what a process coroutine hands the scheduler when it
// suspends: the operation it wants to execute, or — with parked set — the
// notification that its body has finished and the coroutine is parked
// waiting for the next run.
type stepReq struct {
	name   string
	op     func() any
	parked bool
}

// Proc is the handle through which a process body interacts with the run.
// Its index is an addressing mechanism only (Section 2.1): protocol code
// must base decisions on ID and observed values, never on Index. The
// verifier in verify.go checks this discipline by replaying permuted runs.
type Proc struct {
	r     *Runner
	index int // 0-based slot in the shared arrays
	id    int // identity drawn from [1..N], the only input

	// Coroutine state: yield suspends the process with its pending
	// request; next resumes it (from the scheduler side); stop unwinds a
	// parked coroutine on teardown.
	yield func(stepReq) bool
	next  func() (stepReq, bool)
	stop  func()

	body     Body // the current run's body, delivered while parked
	replyVal any  // the granted op's result, set before resuming
	crashed  bool // crash-denial flag, consumed by Exec on resume
	dead     bool // the adversary crashed the process: a crash is final

	// decideVal/decideOp make Decide allocation-free: the op closure is
	// bound once per runner instead of once per call.
	decideVal int
	decideOp  func() any
}

// Index returns the process's register index (0-based, addressing only).
func (p *Proc) Index() int { return p.index }

// ID returns the process's identity (its input).
func (p *Proc) ID() int { return p.id }

// N returns the number of processes in the system.
func (p *Proc) N() int { return p.r.n }

// Model returns the memory model the run executes under (the zero value —
// atomic registers — unless the runner was built WithModel). internal/mem
// consults it on every register operation.
//
//gsb:hotpath
func (p *Proc) Model() MemModel { return p.r.model }

// errCrashed unwinds a crashed process's coroutine. It is recovered by the
// runner's wrapper; any other panic value is re-raised.
var errCrashed = errors.New("sched: process crashed")

// Exec performs one atomic step: op runs with exclusive access to all
// shared state and is assigned the next position in the linearization
// order. The name labels the step in the recorded schedule.
//
// If the scheduler crashes the process instead of granting the step, Exec
// never returns (the coroutine unwinds).
//
//gsb:hotpath
func (p *Proc) Exec(name string, op func() any) any {
	if !p.yield(stepReq{name: name, op: op}) {
		// The runner was closed mid-run; unwind like a crash.
		panic(errCrashed)
	}
	if p.crashed {
		p.crashed = false
		panic(errCrashed)
	}
	val := p.replyVal
	p.replyVal = nil
	return val
}

// Decide records v as the process's output (the write to the write-once
// output_i register of the paper) as one atomic step.
//
//gsb:hotpath
func (p *Proc) Decide(v int) {
	p.decideVal = v
	p.Exec("decide", p.decideOp)
}

// run is the process coroutine: parked between runs, one body per run.
func (p *Proc) run(yield func(stepReq) bool) {
	p.yield = yield
	for yield(stepReq{parked: true}) {
		p.runBody()
	}
}

// runBody executes one run's body. Panics raised by protocol code outside
// ops surface here, where the scheduler's recover cannot see them; capture
// them (crash unwinds excepted) for Run to re-raise.
func (p *Proc) runBody() {
	defer func() {
		if rec := recover(); rec != nil {
			if err, ok := rec.(error); !ok || !errors.Is(err, errCrashed) {
				p.r.panics[p.index] = rec // protocol bug: re-raise from Run
			}
		}
	}()
	body := p.body
	p.body = nil
	body(p)
}

// Body is a process's local algorithm.
type Body func(p *Proc)

// Step is one entry of a recorded schedule.
type Step struct {
	Proc  int    // process index
	Op    string // operation label ("write", "snapshot", "decide", ...)
	Crash bool   // true if this entry records a crash, not an operation
}

// Result describes a completed run.
//
// A Result returned by a Runner is reused by that runner's next Run (its
// slices are re-filled in place); callers that keep results across runs of
// the same runner must copy what they need first. One-shot callers — one
// NewRunner per Run — are unaffected.
type Result struct {
	Outputs  []int  // decided values (1-based); 0 when undecided
	Decided  []bool // per-process: did it write its output register?
	Crashed  []bool // per-process: was it crashed by the adversary?
	Schedule []Step // the linearized schedule, including crash events
	Steps    int    // number of operation steps granted (crashes excluded)

	// procSteps counts the operation steps granted to each process,
	// maintained by the runner during the run so that Participating is
	// O(1) instead of a Schedule scan (property checks call it per
	// process on the exploration hot path).
	procSteps []int
}

// DecidedVector returns the output vector when every process decided, or
// an error naming the first process that did not.
func (r *Result) DecidedVector() ([]int, error) {
	for i, d := range r.Decided {
		if !d {
			return nil, fmt.Errorf("sched: process %d did not decide (crashed=%v)", i, r.Crashed[i])
		}
	}
	return append([]int(nil), r.Outputs...), nil
}

// Participating reports whether process i took at least one step.
func (r *Result) Participating(i int) bool {
	if r.procSteps != nil {
		return r.procSteps[i] > 0
	}
	// Hand-built Result (no per-process counts): fall back to the scan.
	for _, s := range r.Schedule {
		if s.Proc == i && !s.Crash {
			return true
		}
	}
	return false
}

// ProcessPanic is a panic raised by protocol code, captured by the runner
// and re-raised from Run wrapped with the index of the process it came
// from. Value is the original panic value, preserved verbatim.
type ProcessPanic struct {
	Proc  int // process index
	Value any // the original recovered value
}

// Error implements error (panic values print through it).
func (p ProcessPanic) Error() string {
	return fmt.Sprintf("sched: process %d panicked: %v", p.Proc, p.Value)
}

// ProcessPanics is the panic value re-raised by Run when protocol code
// panicked: one entry per panicking process, in index order. Recover it to
// get at every original panic value, not a flattened string.
type ProcessPanics []ProcessPanic

// Error implements error.
func (ps ProcessPanics) Error() string {
	msgs := make([]string, len(ps))
	for i, p := range ps {
		msgs[i] = p.Error()
	}
	return strings.Join(msgs, "; ")
}

// Runner executes runs of a distributed algorithm. A Runner is not safe
// for concurrent use; run loops give each worker its own.
type Runner struct {
	n        int
	ids      []int
	policy   Policy
	maxSteps int
	reuse    bool
	model    MemModel

	result *Result
	procs  []*Proc

	// Fixed-size per-run state, allocated once and reset by each Run.
	panics     []any
	pendingReq []stepReq // pending request of process i (valid iff pendingOn[i])
	pendingOn  []bool
	// Reusable scratch handed to the policy each decision. Policies must
	// treat the pending and ops slices as valid only for the duration of
	// the call (every policy in this repository copies what it keeps).
	pendingIdx []int
	opsBuf     []string

	// Live loop state (fields so the panic-unwind path can see them).
	exited       int // processes whose body finished, crashed or panicked
	crashedCount int
	granting     int // process whose op is executing right now; -1 otherwise

	live   bool // the process coroutines exist and are parked
	closed bool
}

// Option configures a Runner.
type Option func(*Runner)

// WithMaxSteps overrides the safety budget on total steps (default
// 4096*n). Exceeding the budget aborts the run with an error; this is how
// non-wait-free loops and livelocks surface in tests.
func WithMaxSteps(max int) Option {
	return func(r *Runner) { r.maxSteps = max }
}

// WithModel selects the memory model the runner's runs execute under
// (MemModelByName; the zero value is the default atomic model). The model
// only changes which steps internal/mem objects request from the
// scheduler — the runner itself schedules identically.
func WithModel(m MemModel) Option {
	return func(r *Runner) { r.model = m }
}

// WithReuse keeps the n process coroutines parked between runs instead of
// recreating them per Run. Combined with Reset this makes re-executing a
// run allocation-free in steady state, which is what the exploration
// engines ride on. The caller must Close the runner when done with it;
// without WithReuse the coroutines are torn down at the end of each Run
// and no Close is needed.
func WithReuse() Option {
	return func(r *Runner) { r.reuse = true }
}

// NewRunner creates a runner for n processes with the given distinct
// identities (ids[i] is the input of the process at index i) and policy.
// Everything the hot path needs is allocated here, once, so that Run does
// not allocate in steady state. policy may be nil if Reset is called
// before the first Run.
func NewRunner(n int, ids []int, policy Policy, opts ...Option) *Runner {
	if n < 1 {
		panic("sched: need n >= 1")
	}
	if len(ids) != n {
		panic(fmt.Sprintf("sched: got %d ids for %d processes", len(ids), n))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			panic(fmt.Sprintf("sched: duplicate identity %d", id))
		}
		seen[id] = true
	}
	r := &Runner{
		n:        n,
		ids:      append([]int(nil), ids...),
		policy:   policy,
		maxSteps: 4096 * n,

		result: &Result{
			Outputs:   make([]int, n),
			Decided:   make([]bool, n),
			Crashed:   make([]bool, n),
			procSteps: make([]int, n),
		},
		procs:      make([]*Proc, n),
		panics:     make([]any, n),
		pendingReq: make([]stepReq, n),
		pendingOn:  make([]bool, n),
		pendingIdx: make([]int, 0, n),
		opsBuf:     make([]string, 0, n),
		granting:   -1,
	}
	for i := 0; i < n; i++ {
		p := &Proc{r: r, index: i, id: r.ids[i]}
		p.decideOp = func() any {
			if r.result.Decided[p.index] {
				panic(fmt.Sprintf("sched: process %d decided twice", p.index))
			}
			r.result.Decided[p.index] = true
			r.result.Outputs[p.index] = p.decideVal
			return nil
		}
		r.procs[i] = p
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// DefaultIDs returns the identity assignment {1, 2, ..., n}.
func DefaultIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// ErrStepBudget is returned when a run exceeds its step budget.
var ErrStepBudget = errors.New("sched: step budget exhausted (protocol not wait-free under this schedule?)")

// N returns the number of processes the runner executes.
func (r *Runner) N() int { return r.n }

// Reset re-arms the runner to execute another run under a new policy,
// reusing every buffer — the Result, its Schedule backing array, the
// coroutines (under WithReuse) and the scratch tables — from the previous
// run. The previous Result is invalidated. Exploration run loops call
// Reset once per schedule prefix instead of constructing a fresh Runner.
func (r *Runner) Reset(policy Policy) { r.policy = policy }

// Close unwinds the process coroutines a WithReuse runner keeps parked
// between runs. It is safe to call multiple times, and a no-op for
// runners without reuse. Run must not be called after Close.
func (r *Runner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.teardown()
}

// spawn creates the n process coroutines and advances each to its initial
// park, so that every Run starts from the same parked state.
func (r *Runner) spawn() {
	r.live = true
	for _, p := range r.procs {
		p.next, p.stop = iter.Pull(p.run)
		p.next()
	}
}

// teardown unwinds the parked coroutines (their park yield returns false
// and Proc.run returns).
func (r *Runner) teardown() {
	if !r.live {
		return
	}
	r.live = false
	for _, p := range r.procs {
		p.stop()
		p.next, p.stop = nil, nil
	}
}

// Run executes body on all n processes until every process has finished
// or crashed, and returns the recorded result.
//
// The returned Result is owned by the runner and re-filled by the next
// Run; copy anything that must outlive it. If protocol code panics — on a
// process coroutine, or inside an op on the scheduler side — Run first
// crash-unwinds every other process so nothing leaks, then re-raises the
// original panic values as a ProcessPanics.
func (r *Runner) Run(body Body) (*Result, error) {
	if r.closed {
		panic("sched: Run called on a closed Runner")
	}
	if r.policy == nil {
		panic("sched: Run called without a policy (NewRunner with a nil policy requires Reset first)")
	}
	r.beginRun()
	if !r.live {
		r.spawn()
	}
	if !r.reuse {
		defer r.teardown()
	}
	for _, p := range r.procs {
		p.body = body
		r.pull(p) // resume: runs the body up to its first request
	}
	budgetErr := r.schedule()

	var pps ProcessPanics
	for i, rec := range r.panics {
		if rec != nil {
			pps = append(pps, ProcessPanic{Proc: i, Value: rec})
		}
	}
	if pps != nil {
		panic(pps)
	}
	if budgetErr != nil {
		return r.result, budgetErr
	}
	return r.result, nil
}

// beginRun resets the per-run state in place (no allocation).
//
//gsb:hotpath
func (r *Runner) beginRun() {
	res := r.result
	for i := 0; i < r.n; i++ {
		res.Outputs[i] = 0
		res.Decided[i] = false
		res.Crashed[i] = false
		res.procSteps[i] = 0
		r.panics[i] = nil
		r.pendingReq[i] = stepReq{}
		r.pendingOn[i] = false
		r.procs[i].dead = false
	}
	res.Schedule = res.Schedule[:0]
	res.Steps = 0
	r.exited = 0
	r.crashedCount = 0
	r.granting = -1
}

// pull resumes a process coroutine and records its next pending request;
// a parked (or terminated) coroutine means the process exited this run.
// A crash is final: if a crashed process's body re-enters Exec (e.g. a
// defer that recovered the crash unwind), every further request is denied
// until the coroutine parks — it can never re-enter the pending set. The
// denials terminate because each one unwinds to the body's next enclosing
// defer, and the defer stack is finite.
//
//gsb:hotpath
func (r *Runner) pull(p *Proc) {
	req, ok := p.next()
	for ok && !req.parked && p.dead {
		p.crashed = true
		req, ok = p.next()
	}
	if !ok || req.parked {
		r.exited++
		return
	}
	r.pendingReq[p.index] = req
	r.pendingOn[p.index] = true
}

// crashPull denies the process's step: the resumed Exec unwinds the
// coroutine back to its park, and the process exits the run.
//
//gsb:hotpath
func (r *Runner) crashPull(p *Proc) {
	p.dead = true
	p.crashed = true
	r.pull(p)
}

// schedule is the scheduler loop. Between decisions every live process is
// suspended at its yield point with a pending request — the coroutine
// invariant — so the policy always chooses among all live processes and
// the run is deterministic. If an op (or the policy) panics here, the
// deferred recovery crash-unwinds every suspended process, so the panic
// cannot leak a coroutine; op panics are attributed to the granted process
// and re-raised by Run, any other panic is re-raised as-is.
//
//gsb:hotpath
func (r *Runner) schedule() (budgetErr error) {
	//gsb:alloc-ok open-coded defer in a function whose closure does not escape: stack-allocated; gsbbench pins the hot path at 0 allocs/run
	defer func() {
		if rec := recover(); rec != nil {
			g := r.granting
			r.unwind()
			if g >= 0 {
				r.panics[g] = rec
			} else {
				panic(rec)
			}
		}
	}()

	for r.exited < r.n {
		// The pending table is indexed by process, so an ascending scan
		// yields the sorted index list the Policy contract promises.
		idx := r.pendingIdx[:0]
		for i := 0; i < r.n; i++ {
			if r.pendingOn[i] {
				idx = append(idx, i) //gsb:alloc-ok appends into r.pendingIdx[:0], pre-grown to n at NewRunner
			}
		}
		r.pendingIdx = idx

		var dec Decision
		if budgetErr != nil || r.result.Steps >= r.maxSteps {
			// Budget exhausted: crash everyone still pending to unwind
			// their coroutines, then report the error.
			if budgetErr == nil {
				budgetErr = ErrStepBudget
			}
			dec = Decision{Proc: idx[0], Crash: true}
		} else {
			dec = r.nextDecision(idx)
			if dec.Abort {
				// The policy discards the rest of the run (e.g. a
				// partial-order-reduction probe whose continuations are
				// all covered elsewhere): unwind like a budget overrun
				// and report ErrRunAborted — or the policy's own
				// structured error (e.g. ErrScheduleDiverged) when it
				// set one.
				budgetErr = ErrRunAborted
				if dec.Err != nil {
					budgetErr = dec.Err
				}
				dec = Decision{Proc: idx[0], Crash: true}
			} else if dec.Proc < 0 || dec.Proc >= r.n || !r.pendingOn[dec.Proc] {
				// A broken policy: unwind the run (rather than leaking
				// every suspended process) and surface the error.
				budgetErr = fmt.Errorf("sched: policy chose process %d which has no pending step", dec.Proc)
				dec = Decision{Proc: idx[0], Crash: true}
			}
		}

		req := r.pendingReq[dec.Proc]
		r.pendingReq[dec.Proc] = stepReq{} // drop the op/name references
		r.pendingOn[dec.Proc] = false
		if dec.Crash {
			if r.crashedCount+1 == r.n && budgetErr == nil {
				// Record the violation but keep unwinding so nothing
				// leaks; the error is reported after the run drains.
				budgetErr = fmt.Errorf("sched: policy crashed all %d processes; the wait-free model allows at most n-1 crashes", r.n)
			}
			r.crashedCount++
			r.result.Crashed[dec.Proc] = true
			r.result.Schedule = append(r.result.Schedule, Step{Proc: dec.Proc, Crash: true}) //gsb:alloc-ok reused Result.Schedule scratch, steady-state capacity after the first run
			r.crashPull(r.procs[dec.Proc])
			continue
		}

		r.granting = dec.Proc
		val := req.op() // exclusive: the linearization point of the step
		r.granting = -1
		r.result.Steps++
		r.result.procSteps[dec.Proc]++
		r.result.Schedule = append(r.result.Schedule, Step{Proc: dec.Proc, Op: req.name}) //gsb:alloc-ok reused Result.Schedule scratch, steady-state capacity after the first run
		p := r.procs[dec.Proc]
		p.replyVal = val
		r.pull(p)
	}
	return budgetErr
}

// unwind crash-denies every process still suspended after a scheduler
// panic — the one whose op was executing, and everyone parked on a
// pending request — so the panic leaks no coroutine. The coroutine
// invariant guarantees there is no third kind of live process.
func (r *Runner) unwind() {
	if g := r.granting; g >= 0 {
		r.granting = -1
		r.crashPull(r.procs[g])
	}
	for i := 0; i < r.n; i++ {
		if r.pendingOn[i] {
			r.pendingOn[i] = false
			r.pendingReq[i] = stepReq{}
			r.crashPull(r.procs[i])
		}
	}
}

// nextDecision consults the policy for the next scheduling decision,
// passing the pending operations' labels when the policy asks for them
// (OpAwarePolicy). The slices are the runner's reusable scratch buffers.
//
//gsb:hotpath
func (r *Runner) nextDecision(pendingIdx []int) Decision {
	if oap, ok := r.policy.(OpAwarePolicy); ok {
		ops := r.opsBuf[:0]
		for _, i := range pendingIdx {
			ops = append(ops, r.pendingReq[i].name) //gsb:alloc-ok appends into r.opsBuf[:0], pre-grown to n at NewRunner
		}
		r.opsBuf = ops
		return oap.NextOps(pendingIdx, ops, r.result.Steps)
	}
	return r.policy.Next(pendingIdx, r.result.Steps)
}
