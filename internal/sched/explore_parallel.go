package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// This file is the work-distributing exploration engine: a pool of workers
// pulls schedule prefixes from a sharded frontier with work-stealing,
// re-executes the protocol under each prefix, and pushes the unexplored
// sibling prefixes back. Stateless re-execution makes the tree walk
// embarrassingly parallel: runs share nothing but the frontier, an atomic
// run budget and the violation aggregate.
//
// Determinism contract. The tree of failure-free schedules is a fixed
// object, so on a full exploration every worker count visits exactly the
// same set of schedules and the reported count is interleaving-independent.
// When the property fails, workers do not race to report whichever
// violation they saw first: each failure is aggregated under a mutex as
// the lexicographically smallest violating choice sequence, the frontier
// is pruned against that bound (prefixes that can only lead to larger
// schedules are dropped), and a final counting pass with the settled bound
// recomputes how many schedules precede the reported one. The returned
// (count, trace) pair is therefore a pure function of the protocol, the
// property and the options — never of worker interleaving. Only a budget
// exhausted mid-failure (MaxRuns smaller than the tree) can make the
// outcome scheduling-dependent, which is why budget errors are reported
// with the exact budget as the count.

// DefaultMaxRuns is the exploration run budget used when
// ExploreOptions.MaxRuns is zero.
const DefaultMaxRuns = 1 << 20

// ExploreOptions configures Explore.
type ExploreOptions struct {
	// Workers is the number of exploration goroutines; <= 0 means
	// runtime.GOMAXPROCS(0). With more than one worker, build and check
	// must be safe for concurrent use (each run still gets its own
	// protocol instance, so protocols that allocate fresh shared memory
	// in build need no extra care).
	Workers int
	// MaxRuns bounds the number of schedules executed in exhaustive
	// exploration; beyond it the exploration stops with
	// ErrExplorationBudget. <= 0 means DefaultMaxRuns. Crash sweep mode
	// is bounded by CrashRuns instead and ignores MaxRuns.
	MaxRuns int
	// MaxSteps bounds each individual run (ErrStepBudget past it);
	// <= 0 means the Runner default of 4096*n.
	MaxSteps int
	// Seed seeds work-stealing victim selection and, in crash sweep
	// mode, the per-run crash-injection policies. Results never depend
	// on the victim-selection stream; sweep results depend on Seed only.
	Seed int64

	// CrashRuns > 0 selects crash sweep mode: instead of exhaustively
	// enumerating failure-free schedules, Explore executes CrashRuns
	// randomized schedules with crash injection, distributed over the
	// same worker pool. Seeds are derived deterministically from Seed,
	// so the sweep is reproducible and the first failing run (smallest
	// run index) is interleaving-independent.
	CrashRuns int

	// SampleRuns > 0 selects statistical sampling mode: instead of
	// enumerating the schedule tree, execute SampleRuns failure-free
	// schedules drawn by the SampleMode sampler, each seeded via
	// DeriveRunSeed(Seed, i), and report distinct-trace-class coverage.
	// Sampling is implemented by internal/sample (sample.Explore);
	// tasks.ExploreVerified dispatches there automatically, while
	// calling sched.Explore directly with SampleRuns set is an error.
	// Mutually exclusive with CrashRuns (Validate).
	SampleRuns int
	// SampleMode picks the sampler: SampleWalk (uniform over the
	// pending set each step) or SamplePCT (probabilistic concurrency
	// testing: random priorities plus Depth-1 priority-change points).
	SampleMode SampleMode
	// Depth is the PCT bug-depth knob: runs use Depth-1 priority-change
	// points, giving the classic 1/(n*k^(Depth-1)) detection guarantee
	// for bugs of that depth. <= 0 means the sample package default
	// (3); ignored by SampleWalk.
	Depth int
	// CrashProb is the per-decision crash probability in sweep mode;
	// it must lie in [0, 1] (Validate).
	CrashProb float64
	// MaxCrashes caps injected crashes per run; <= 0 means n-1 (the
	// wait-free maximum).
	MaxCrashes int

	// Model names the registered memory model runs execute under (see
	// MemModels, docs/models.md). "" or "atomic" is the default atomic
	// register semantics — bit-identical to the pre-registry engine;
	// "regular" and "safe" weaken writes into scheduler-visible
	// write-start/write-commit step pairs; "stale-snapshot" degrades
	// one-step snapshots into per-register collects. Unknown names are
	// rejected by Validate with the registered list. The model is part of
	// campaign identity (the options hash), so a checkpoint resumes only
	// under the model that produced it.
	Model string
	// Adversary names the registered crash adversary that drives sweep
	// mode (CrashRuns > 0; see Adversaries, docs/models.md). "" or
	// "uniform-crash" is the default uniform sweep; "t-resilient"
	// restricts crashes to a pre-drawn victim set of at most MaxCrashes
	// processes; "adaptive" targets the most-advanced pending process.
	// Unknown names are rejected by Validate with the registered list.
	// Ignored outside sweep mode; part of campaign identity like Model.
	Adversary string

	// Stats, when non-nil, receives engine observability counters (runs,
	// schedules, steals, aborts, prunes, frontier depth — see the Metric
	// constants and docs/metrics.md). Publishing is a handful of atomic
	// adds per run; nil disables it entirely. Stats never influences
	// results and is excluded from campaign option identity
	// (internal/campaign hashes only the semantic fields), so the same
	// checkpoint can be resumed with or without observability attached.
	Stats *stats.Registry

	// Reduction selects the partial-order reduction applied to
	// exhaustive exploration (see the Reduction constants). With
	// reduction on, the engine executes one schedule per Mazurkiewicz
	// trace class — the class's lexicographically smallest member —
	// instead of every interleaving, and the returned count is the
	// number of classes. Verdicts and the lex-min violation report are
	// unchanged; checks must not depend on the relative order of
	// commuting steps in Result.Schedule (true of every property in
	// this repository, which inspect outputs and crash flags only).
	// MaxRuns then bounds executed runs, which include pruned probe
	// runs, not only counted schedules. Crash sweep mode ignores it.
	Reduction Reduction
}

// ErrInvalidOptions reports semantically unusable ExploreOptions; Explore
// and ExploreCrashes return it (wrapped) instead of executing anything,
// so a bad CrashProb surfaces as an error rather than a panic inside a
// worker goroutine.
var ErrInvalidOptions = errors.New("sched: invalid exploration options")

// Validate checks the option fields whose bad values would otherwise
// surface only mid-exploration: a crash probability outside [0, 1],
// negative budgets, and unregistered model/adversary names (the error
// lists the registered names). Zero-valued fields mean "use the default"
// and are always valid.
func (o ExploreOptions) Validate() error {
	if o.MaxRuns < 0 {
		return fmt.Errorf("%w: MaxRuns %d is negative (0 means the default budget)", ErrInvalidOptions, o.MaxRuns)
	}
	if o.MaxSteps < 0 {
		return fmt.Errorf("%w: MaxSteps %d is negative (0 means the runner default)", ErrInvalidOptions, o.MaxSteps)
	}
	if o.CrashRuns < 0 {
		return fmt.Errorf("%w: CrashRuns %d is negative (0 disables the crash sweep)", ErrInvalidOptions, o.CrashRuns)
	}
	if math.IsNaN(o.CrashProb) || o.CrashProb < 0 || o.CrashProb > 1 {
		return fmt.Errorf("%w: CrashProb %v outside [0, 1]", ErrInvalidOptions, o.CrashProb)
	}
	if !o.Reduction.valid() {
		return fmt.Errorf("%w: unknown Reduction(%d)", ErrInvalidOptions, int(o.Reduction))
	}
	if o.SampleRuns < 0 {
		return fmt.Errorf("%w: SampleRuns %d is negative (0 disables sampling)", ErrInvalidOptions, o.SampleRuns)
	}
	if !o.SampleMode.valid() {
		return fmt.Errorf("%w: unknown SampleMode(%d)", ErrInvalidOptions, int(o.SampleMode))
	}
	if o.Depth < 0 {
		return fmt.Errorf("%w: Depth %d is negative (0 means the PCT default)", ErrInvalidOptions, o.Depth)
	}
	if o.SampleRuns > 0 && o.CrashRuns > 0 {
		return fmt.Errorf("%w: SampleRuns and CrashRuns are mutually exclusive modes", ErrInvalidOptions)
	}
	if _, err := MemModelByName(o.Model); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	if _, err := AdversaryByName(o.Adversary); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	return nil
}

func (o ExploreOptions) withDefaults(n int) ExploreOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = DefaultMaxRuns
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4096 * n
	}
	if o.MaxCrashes <= 0 || o.MaxCrashes > n-1 {
		o.MaxCrashes = n - 1
	}
	return o
}

// Explore runs the protocol under every failure-free schedule (or, when
// opts.CrashRuns > 0, under a randomized crash-injection sweep) using a
// pool of opts.Workers goroutines, and invokes check on each completed
// run. build is called once per run and must return a fresh protocol
// instance. It returns the number of distinct schedules explored; on a
// property violation the error names the lexicographically smallest
// violating choice sequence and the count is the number of schedules up
// to and including it (both independent of worker interleaving). With
// opts.Reduction enabled the walk executes one schedule per commuting-
// step equivalence class (the class's lex-min member) and counts
// classes; verdict and violation report are unchanged.
//
// ctx cancellation aborts the exploration early; a nil ctx means
// context.Background().
func Explore(ctx context.Context, n int, ids []int, opts ExploreOptions, build func() Body, check func(*Result) error) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	if opts.SampleRuns > 0 {
		// Statistical sampling lives one layer up (internal/sample would
		// import this package back); refuse loudly rather than silently
		// running an exhaustive walk the caller did not ask for.
		return 0, fmt.Errorf("sched: SampleRuns > 0 selects statistical sampling, which is implemented by internal/sample (call sample.Explore, or tasks.ExploreVerified which dispatches)")
	}
	opts = opts.withDefaults(n)
	if opts.CrashRuns > 0 {
		return ExploreCrashes(ctx, n, ids, opts, build, check)
	}

	e := newRootExplorer(ctx, n, ids, opts, build, check, nil)
	e.runWorkers()

	if f := e.best; f != nil {
		// Deterministic aggregation: recount the schedules preceding the
		// settled lexicographic-minimum failure with a fixed bound. If the
		// discovery pass drained without exhausting MaxRuns, the recount —
		// which visits a subset of the discovery pass's prefixes — cannot
		// exhaust it either, so the count is exact; otherwise the
		// truncation is surfaced on the returned error. The recount re-runs
		// schedules the discovery pass already counted, so it publishes no
		// stats: the observed totals describe the verification work, not
		// the bookkeeping replay.
		ropts := opts
		ropts.Stats = nil
		recount := newRootExplorer(ctx, n, ids, ropts, build, nil, f.choices)
		recount.runWorkers()
		count := int(recount.countBelow.Load()) + 1
		err := f.err
		if e.budgetHit.Load() || recount.budgetHit.Load() {
			err = fmt.Errorf("%w (schedule count truncated: %w)", f.err, ErrExplorationBudget)
		} else if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("%w (schedule count truncated: exploration canceled: %w)", f.err, cerr)
		}
		return count, err
	}
	if e.budgetHit.Load() {
		count := opts.MaxRuns
		if opts.Reduction != ReductionNone {
			// Under reduction the claimed budget slots include pruned
			// probe runs; report only the schedules actually verified.
			count = int(e.completed.Load())
		}
		return count, fmt.Errorf("%w (after %d runs)", ErrExplorationBudget, opts.MaxRuns)
	}
	if err := ctx.Err(); err != nil {
		return int(e.completed.Load()), fmt.Errorf("sched: exploration canceled: %w", err)
	}
	return int(e.completed.Load()), nil
}

// exploreFailure is a failed run: a property violation or a runner error,
// keyed by its choice sequence for lexicographic aggregation.
type exploreFailure struct {
	choices []int
	err     error
}

// frontierItem is one unit of exploration work: re-execute the run
// scripted by choices and push its unexplored siblings. sleep is the
// sleep set at the node reached after choices (partial-order reduction
// only; nil when ExploreOptions.Reduction is ReductionNone).
type frontierItem struct {
	choices []int
	sleep   []int
}

// explorerPolicy is what the engine needs from a prefix-replay policy:
// schedule the run, then report the choice sequence it took and the
// sibling prefixes left to explore.
type explorerPolicy interface {
	Policy
	runChoices() []int
	branchItems() []frontierItem
}

// exploreShard is one lane of the frontier. Its owner pushes and pops at
// the tail (depth-first, cache-warm deep prefixes); thieves take from the
// head, where the shallowest prefixes — the largest unexplored subtrees —
// sit, so one steal yields a meaningful chunk of work.
type exploreShard struct {
	mu    sync.Mutex
	items []frontierItem
}

type explorer struct {
	ctx    context.Context
	cancel context.CancelFunc
	n      int
	ids    []int
	opts   ExploreOptions
	build  func() Body
	check  func(*Result) error

	shards  []*exploreShard
	pending atomic.Int64 // prefixes queued or being processed

	claimed    atomic.Int64 // run-budget slots claimed
	completed  atomic.Int64 // runs that finished without error
	budgetHit  atomic.Bool
	countBelow atomic.Int64 // counting pass: runs lexicographically below bound

	bound []int // fixed pruning bound for the counting pass; nil during discovery

	// Checkpoint pause points (checkpoint.go). Workers stop claiming new
	// frontier items — leaving the remaining frontier collectable — when
	// pause returns true or total claimed runs reach sliceLimit; items
	// already popped are always processed to completion, so a paused
	// frontier plus the counters is an exact resume point.
	pause      func() bool
	sliceLimit int64

	indep Independence   // commutation oracle; nil without reduction
	memo  *traceMemo     // canonical-trace dedupe; nil unless ReductionSleepMemo
	met   *engineMetrics // resolved stats handles; nil when opts.Stats is nil
	model MemModel       // resolved opts.Model, applied to every worker runner

	mu   sync.Mutex
	best *exploreFailure // lexicographically smallest failure seen
}

func newExplorer(ctx context.Context, n int, ids []int, opts ExploreOptions, build func() Body, check func(*Result) error, bound []int) *explorer {
	e := &explorer{
		n:     n,
		ids:   ids,
		opts:  opts,
		build: build,
		check: check,
		bound: bound,
	}
	if opts.Reduction != ReductionNone {
		e.indep = OpIndependent
	}
	if opts.Reduction == ReductionSleepMemo {
		e.memo = newTraceMemo()
	}
	e.met = newEngineMetrics(opts.Stats)
	e.model = memModelFor(opts)
	e.ctx, e.cancel = context.WithCancel(ctx)
	e.shards = make([]*exploreShard, opts.Workers)
	for i := range e.shards {
		e.shards[i] = &exploreShard{}
	}
	return e
}

// newRootExplorer is newExplorer primed with the root frontier item (the
// unconstrained run); resumable explorations instead restore a saved
// frontier (checkpoint.go).
func newRootExplorer(ctx context.Context, n int, ids []int, opts ExploreOptions, build func() Body, check func(*Result) error, bound []int) *explorer {
	e := newExplorer(ctx, n, ids, opts, build, check, bound)
	e.pushTo(0, frontierItem{choices: []int{}})
	return e
}

// stopClaiming reports whether a checkpoint pause point fired: workers
// return without popping further frontier items (but finish the item in
// hand), so the frontier left behind is a complete description of the
// remaining work.
func (e *explorer) stopClaiming() bool {
	if e.sliceLimit > 0 && e.claimed.Load() >= e.sliceLimit {
		return true
	}
	return e.pause != nil && e.pause()
}

func (e *explorer) runWorkers() {
	defer e.cancel()
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		//gsb:nondeterminism-ok audited worker pool: the frontier hands out work under one lock and results are merged commutatively (TestExploreWorkerCountInvariance pins the counts)
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	wg.Wait()
}

func (e *explorer) worker(w int) {
	// The rng only picks steal victims; exploration results never depend
	// on it (see the determinism contract above).
	rng := rand.New(rand.NewSource(int64(uint64(e.opts.Seed) ^ 0x9e3779b97f4a7c15*uint64(w+1))))
	// One reusable runner per worker: Reset re-arms it for every prefix
	// re-execution, so the steady-state hot path allocates nothing but
	// the per-run policy and protocol instance.
	runner := NewRunner(e.n, e.ids, nil, WithMaxSteps(e.opts.MaxSteps), WithReuse(), WithModel(e.model))
	defer runner.Close()
	idle := 0
	for {
		if e.ctx.Err() != nil {
			return
		}
		if e.stopClaiming() {
			return
		}
		item, ok := e.popOwn(w)
		if !ok {
			item, ok = e.steal(w, rng)
		}
		if !ok {
			if e.pending.Load() == 0 {
				return
			}
			// Another worker is still expanding a prefix; back off briefly.
			if idle++; idle > 64 {
				time.Sleep(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		e.process(w, item, runner)
		e.pending.Add(-1)
		e.met.setFrontier(e.pending.Load())
	}
}

func (e *explorer) pushTo(w int, item frontierItem) {
	e.pending.Add(1)
	s := e.shards[w]
	s.mu.Lock()
	s.items = append(s.items, item)
	s.mu.Unlock()
}

func (e *explorer) popOwn(w int) (frontierItem, bool) {
	s := e.shards[w]
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return frontierItem{}, false
	}
	it := s.items[len(s.items)-1]
	s.items[len(s.items)-1] = frontierItem{} // release the slot for GC
	s.items = s.items[:len(s.items)-1]
	return it, true
}

func (e *explorer) steal(w int, rng *rand.Rand) (frontierItem, bool) {
	start := rng.Intn(len(e.shards))
	for k := 0; k < len(e.shards); k++ {
		v := (start + k) % len(e.shards)
		if v == w {
			continue
		}
		s := e.shards[v]
		s.mu.Lock()
		if len(s.items) > 0 {
			it := s.items[0]
			// Re-slicing from the head keeps the backing array's dead
			// prefix reachable for as long as the slice lives; on long
			// explorations that retained every stolen prefix. Zero the
			// slot, and drop the whole array once the lane drains.
			s.items[0] = frontierItem{}
			s.items = s.items[1:]
			if len(s.items) == 0 {
				s.items = nil
			}
			s.mu.Unlock()
			e.met.incSteals()
			return it, true
		}
		s.mu.Unlock()
	}
	return frontierItem{}, false
}

// pruneBound returns the current lexicographic pruning bound: the fixed
// bound of a counting pass, or the best failure found so far.
func (e *explorer) pruneBound() []int {
	if e.bound != nil {
		return e.bound
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.best == nil {
		return nil
	}
	return e.best.choices
}

func (e *explorer) recordFailure(choices []int, err error) {
	c := append([]int(nil), choices...)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.best == nil || lexLess(c, e.best.choices) {
		e.best = &exploreFailure{choices: c, err: err}
	}
}

// process executes the run scripted by item's prefix on the worker's
// reused runner and pushes its unexplored sibling prefixes.
func (e *explorer) process(w int, item frontierItem, runner *Runner) {
	if b := e.pruneBound(); b != nil && !prefixViable(item.choices, b) {
		e.met.incPrunes()
		return
	}
	if e.claimed.Add(1) > int64(e.opts.MaxRuns) {
		e.budgetHit.Store(true)
		e.cancel()
		return
	}
	e.met.incRuns()

	var policy explorerPolicy
	if e.opts.Reduction != ReductionNone {
		policy = &porPolicy{indep: e.indep, prefix: item.choices, sleep0: item.sleep}
	} else {
		policy = &explorePolicy{prefix: item.choices}
	}
	runner.Reset(policy)
	res, err := runner.Run(e.build())
	switch {
	case errors.Is(err, ErrRunAborted):
		// A sleep-set probe: every continuation of this run is
		// equivalent to a schedule explored under a smaller prefix. It
		// consumed a run-budget slot but counts as no schedule; its
		// pre-abort decision points still seed sibling branches below.
		e.met.incAborts()
	case err != nil:
		if e.bound == nil {
			e.recordFailure(policy.runChoices(), fmt.Errorf("sched: exploration run with prefix %v: %w", item.choices, err))
		}
	case e.bound != nil:
		if lexLess(policy.runChoices(), e.bound) && e.admit(res) {
			e.countBelow.Add(1)
		}
	default:
		if e.admit(res) {
			e.completed.Add(1)
			e.met.incSchedules()
		}
		if e.check != nil {
			// Checked even when the memo already saw the trace class, so
			// a hash collision can merge counts but never hide a
			// violation.
			if cerr := e.check(res); cerr != nil {
				e.recordFailure(policy.runChoices(), fmt.Errorf("sched: schedule %v violates property: %w", policy.runChoices(), cerr))
			}
		}
	}

	b := e.pruneBound()
	for _, branch := range policy.branchItems() {
		if b != nil && !prefixViable(branch.choices, b) {
			e.met.incPrunes()
			continue
		}
		e.pushTo(w, branch)
	}
}

// admit reports whether the completed run should be counted: always,
// unless the canonical-trace memo has already counted an equivalent run.
func (e *explorer) admit(res *Result) bool {
	if e.memo == nil {
		return true
	}
	return e.memo.admit(CanonicalTraceHash(res.Schedule, e.indep))
}

// lexLess reports whether choice sequence a precedes b lexicographically
// (a proper prefix precedes its extensions).
func lexLess(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// prefixViable reports whether some completion of prefix can precede the
// bound lexicographically (equivalently: whether the subtree under prefix
// may still matter once bound is the smallest known failure).
func prefixViable(prefix, bound []int) bool {
	for i, c := range prefix {
		if i >= len(bound) {
			return false // strict extension of bound: every completion is larger
		}
		if c != bound[i] {
			return c < bound[i]
		}
	}
	return true
}
