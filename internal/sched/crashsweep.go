package sched

import (
	"context"
	"fmt"
)

// ExploreCrashes runs a randomized crash-injection sweep behind the same
// worker-pool API as the exhaustive exploration: opts.CrashRuns runs, each
// scheduled by the registered adversary's crash policy (opts.Adversary,
// uniform-crash by default) seeded deterministically from
// opts.Seed and the run index (DeriveRunSeed), distributed over
// opts.Workers goroutines by the seeded-run pool (ExploreSeeded). check
// sees every completed run, including runs with crashed processes
// (Result.Crashed reports which).
//
// On success the returned count is exactly opts.CrashRuns. On failure the
// reported run is the one with the smallest index whose property check
// (or execution) failed — independent of worker interleaving — and the
// count is that run's 1-based index. Explore dispatches here when
// opts.CrashRuns > 0.
func ExploreCrashes(ctx context.Context, n int, ids []int, opts ExploreOptions, build func() Body, check func(*Result) error) (int, error) {
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	if opts.CrashRuns <= 0 {
		return 0, fmt.Errorf("sched: crash sweep needs CrashRuns > 0 (got %d)", opts.CrashRuns)
	}
	opts = opts.withDefaults(n)
	return ExploreSeeded(ctx, n, ids, opts, opts.CrashRuns,
		CrashSweepPolicies(n, opts), build, CrashSweepCheck(n, opts, check))
}

// CrashSweepPolicies returns the per-run policy constructor of a crash
// sweep under opts: run i is scheduled by the registered adversary's
// policy (opts.Adversary; uniform-crash — RandomCrash — by default)
// seeded with DeriveRunSeed(opts.Seed, i). The campaign subsystem uses
// it to resume a sweep through the seeded-run pool (SeededSlice) with
// exactly the policies ExploreCrashes would construct: every adversary's
// state is a pure function of the run index, so resuming reconstructs it
// without serializing policy internals.
func CrashSweepPolicies(n int, opts ExploreOptions) func(run int) Policy {
	opts = opts.withDefaults(n)
	return adversaryFor(opts).policies(n, opts)
}

// CrashSweepCheck returns the per-run visit function of a crash sweep:
// run errors and property violations are wrapped with the run index and
// its derived (replayable) seed, exactly as ExploreCrashes reports them.
func CrashSweepCheck(n int, opts ExploreOptions, check func(*Result) error) func(run int, res *Result, err error) error {
	opts = opts.withDefaults(n)
	return func(i int, res *Result, err error) error {
		if err != nil {
			return fmt.Errorf("sched: crash sweep run %d (seed %d): %w", i, DeriveRunSeed(opts.Seed, i), err)
		}
		if check == nil {
			return nil
		}
		if cerr := check(res); cerr != nil {
			return fmt.Errorf("sched: crash sweep run %d (seed %d) violates property: %w", i, DeriveRunSeed(opts.Seed, i), cerr)
		}
		return nil
	}
}
