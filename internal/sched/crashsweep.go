package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// ExploreCrashes runs a randomized crash-injection sweep behind the same
// worker-pool API as the exhaustive exploration: opts.CrashRuns runs, each
// scheduled by a RandomCrash policy seeded deterministically from
// opts.Seed and the run index, distributed over opts.Workers goroutines.
// check sees every completed run, including runs with crashed processes
// (Result.Crashed reports which).
//
// On success the returned count is exactly opts.CrashRuns. On failure the
// reported run is the one with the smallest index whose property check
// (or execution) failed — independent of worker interleaving — and the
// count is that run's 1-based index. Explore dispatches here when
// opts.CrashRuns > 0.
func ExploreCrashes(ctx context.Context, n int, ids []int, opts ExploreOptions, build func() Body, check func(*Result) error) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	opts = opts.withDefaults(n)
	if opts.CrashRuns <= 0 {
		return 0, fmt.Errorf("sched: crash sweep needs CrashRuns > 0 (got %d)", opts.CrashRuns)
	}

	var (
		next      atomic.Int64
		completed atomic.Int64 // runs actually executed to completion
		mu        sync.Mutex
		bestIdx   = -1
		bestErr   error
		wg        sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if bestIdx < 0 || i < bestIdx {
			bestIdx, bestErr = i, err
		}
	}
	failedBefore := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return bestIdx >= 0 && i > bestIdx
	}

	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= opts.CrashRuns {
					return
				}
				if failedBefore(i) {
					// An earlier run already failed; later runs cannot
					// change the reported outcome. Indices are claimed in
					// order, so returning drains the sweep.
					return
				}
				policy := NewRandomCrash(crashSweepSeed(opts.Seed, i), opts.CrashProb, opts.MaxCrashes)
				runner := NewRunner(n, ids, policy, WithMaxSteps(opts.MaxSteps))
				res, err := runner.Run(build())
				completed.Add(1)
				if err != nil {
					record(i, fmt.Errorf("sched: crash sweep run %d (seed %d): %w", i, crashSweepSeed(opts.Seed, i), err))
					continue
				}
				if check == nil {
					continue
				}
				if cerr := check(res); cerr != nil {
					record(i, fmt.Errorf("sched: crash sweep run %d (seed %d) violates property: %w", i, crashSweepSeed(opts.Seed, i), cerr))
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if bestIdx >= 0 {
		return bestIdx + 1, bestErr
	}
	if err := ctx.Err(); err != nil {
		// Report runs that actually executed, not claimed run indices:
		// a worker that claimed an index and then saw the cancellation
		// (or the i >= CrashRuns sentinel) exited without running it.
		return int(completed.Load()), fmt.Errorf("sched: crash sweep canceled: %w", err)
	}
	return opts.CrashRuns, nil
}

// crashSweepSeed derives the per-run policy seed: a splitmix-style mix of
// the sweep seed and the run index, so sweeps are reproducible and runs
// are decorrelated.
func crashSweepSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
