package sched

import (
	"errors"
	"fmt"
	"testing"
)

// stepsBody performs k shared steps then decides 1.
func stepsBody(k int) Body {
	return func(p *Proc) {
		for i := 0; i < k; i++ {
			p.Exec("noop", func() any { return nil })
		}
		p.Decide(1)
	}
}

func TestExploreAllCountsInterleavings(t *testing.T) {
	// Two processes with s total steps each (k noops + 1 decide) have
	// C(2s, s) distinct schedules.
	tests := []struct {
		k    int
		want int
	}{
		{0, 2},  // C(2,1)
		{1, 6},  // C(4,2)
		{2, 20}, // C(6,3)
		{3, 70}, // C(8,4)
	}
	for _, tc := range tests {
		runs, err := ExploreAll(2, DefaultIDs(2), 10000, 1000, func() Body { return stepsBody(tc.k) },
			func(*Result) error { return nil })
		if err != nil {
			t.Fatalf("k=%d: %v", tc.k, err)
		}
		if runs != tc.want {
			t.Errorf("k=%d: %d schedules, want %d", tc.k, runs, tc.want)
		}
	}
}

func TestExploreAllThreeProcesses(t *testing.T) {
	// Multinomial(6; 2,2,2) = 90 schedules for 3 processes x 2 steps.
	runs, err := ExploreAll(3, DefaultIDs(3), 10000, 1000, func() Body { return stepsBody(1) },
		func(*Result) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if runs != 90 {
		t.Errorf("%d schedules, want 90", runs)
	}
}

func TestExploreAllDetectsViolations(t *testing.T) {
	// A racy protocol: both processes read-modify-write a counter without
	// atomicity (two separate steps); under some schedule the final value
	// is 1, violating the expected 2.
	counter := 0
	build := func() Body {
		counter = 0
		return func(p *Proc) {
			v := p.Exec("read", func() any { return counter }).(int)
			p.Exec("write", func() any { counter = v + 1; return nil })
			p.Decide(1)
		}
	}
	check := func(*Result) error {
		if counter != 2 {
			return fmt.Errorf("lost update: counter = %d", counter)
		}
		return nil
	}
	_, err := ExploreAll(2, DefaultIDs(2), 1000, 100, build, check)
	if err == nil {
		t.Fatal("exploration missed the lost-update schedule")
	}
}

func TestExploreAllBudget(t *testing.T) {
	_, err := ExploreAll(3, DefaultIDs(3), 5, 1000, func() Body { return stepsBody(3) },
		func(*Result) error { return nil })
	if !errors.Is(err, ErrExplorationBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestExploreAllSingleProcess(t *testing.T) {
	runs, err := ExploreAll(1, DefaultIDs(1), 100, 100, func() Body { return stepsBody(4) },
		func(*Result) error { return nil })
	if err != nil || runs != 1 {
		t.Fatalf("runs=%d err=%v, want 1 run", runs, err)
	}
}
