// Adversary registry: the crash-injection strategy of a sweep, as a
// first-class axis of the execution model alongside the memory model.
//
// An adversary is a named constructor of per-run crash policies. Every
// strategy is a pure function of (opts.Seed, run index) through
// DeriveRunSeed — no state beyond the seeded-run pool's watermark — so
// sweeps under any adversary checkpoint, resume and shard exactly like
// the uniform sweep: the adversary's "RNG state" is reconstructed from
// the run index, never serialized.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Registered adversary names (ExploreOptions.Adversary, gsbrun
// -adversary). All drive crash sweeps (CrashRuns > 0).
const (
	// AdversaryUniformCrash is the pre-registry sweep and the default:
	// every decision picks a uniform pending process and crashes it with
	// probability CrashProb, up to MaxCrashes crashes (RandomCrash).
	AdversaryUniformCrash = "uniform-crash"
	// AdversaryTResilient models a t-resilient environment: each run
	// pre-draws a victim set of at most MaxCrashes processes, and only
	// victims may crash — the other n-t processes are reliable.
	AdversaryTResilient = "t-resilient"
	// AdversaryAdaptive crashes adaptively: with probability CrashProb
	// per decision it crashes the pending process that has been granted
	// the most steps so far (ties to the smallest index) — targeting the
	// processes furthest along instead of a uniform pick.
	AdversaryAdaptive = "adaptive"
)

// Adversary is a registered crash-injection strategy. The zero value is
// not meaningful; obtain instances through AdversaryByName.
type Adversary struct {
	name string
	// policies builds the per-run policy constructor for a sweep of n
	// processes under opts (opts already has its defaults filled in).
	policies func(n int, opts ExploreOptions) func(run int) Policy
}

// Name returns the adversary's registered name.
func (a Adversary) Name() string { return a.name }

// String implements fmt.Stringer.
func (a Adversary) String() string { return a.name }

// adversaryRegistry is the fixed, ordered adversary registry (default
// first). A slice (not a map) so listings and lookups are deterministic.
var adversaryRegistry = []Adversary{
	{name: AdversaryUniformCrash, policies: func(n int, opts ExploreOptions) func(run int) Policy {
		return func(i int) Policy {
			return NewRandomCrash(DeriveRunSeed(opts.Seed, i), opts.CrashProb, opts.MaxCrashes)
		}
	}},
	{name: AdversaryTResilient, policies: func(n int, opts ExploreOptions) func(run int) Policy {
		return func(i int) Policy {
			return NewTResilientCrash(DeriveRunSeed(opts.Seed, i), opts.CrashProb, opts.MaxCrashes, n)
		}
	}},
	{name: AdversaryAdaptive, policies: func(n int, opts ExploreOptions) func(run int) Policy {
		return func(i int) Policy {
			return NewAdaptiveCrash(DeriveRunSeed(opts.Seed, i), opts.CrashProb, opts.MaxCrashes, n)
		}
	}},
}

// Adversaries lists the registered adversary names in registry order
// (the default first).
func Adversaries() []string {
	names := make([]string, len(adversaryRegistry))
	for i, a := range adversaryRegistry {
		names[i] = a.name
	}
	return names
}

// AdversaryByName resolves a registered adversary name. The empty string
// means the default (uniform-crash). Unknown names error with the
// registered list — the message ExploreOptions.Validate and the CLIs
// surface.
func AdversaryByName(name string) (Adversary, error) {
	if name == "" {
		return adversaryRegistry[0], nil
	}
	for _, a := range adversaryRegistry {
		if a.name == name {
			return a, nil
		}
	}
	return Adversary{}, fmt.Errorf("unknown adversary %q (registered: %s)", name, strings.Join(Adversaries(), ", "))
}

// adversaryFor resolves opts.Adversary inside an engine whose options
// already passed Validate.
func adversaryFor(opts ExploreOptions) Adversary {
	a, err := AdversaryByName(opts.Adversary)
	if err != nil {
		panic("sched: " + err.Error() + " (options not validated?)")
	}
	return a
}

// TResilientCrash schedules like Random but restricts crash injection to
// a pre-drawn victim set of at most maxCrashes of the n processes: a
// t-resilient environment where the other processes are reliable. The
// victim set is drawn from the seed, so the policy — like every sweep
// policy — is a pure function of its constructor arguments.
type TResilientCrash struct {
	rng       *rand.Rand
	crashProb float64
	victim    []bool
	remaining int
}

// NewTResilientCrash returns a seeded t-resilient crash policy over n
// processes with a victim budget of maxCrashes.
func NewTResilientCrash(seed int64, crashProb float64, maxCrashes, n int) *TResilientCrash {
	if math.IsNaN(crashProb) || crashProb < 0 || crashProb > 1 {
		panic(fmt.Sprintf("sched: crashProb %v outside [0,1]", crashProb))
	}
	if maxCrashes > n {
		maxCrashes = n
	}
	rng := rand.New(rand.NewSource(seed))
	victim := make([]bool, n)
	for _, v := range rng.Perm(n)[:maxCrashes] {
		victim[v] = true
	}
	return &TResilientCrash{rng: rng, crashProb: crashProb, victim: victim, remaining: maxCrashes}
}

// Next implements Policy.
//
//gsb:hotpath
func (t *TResilientCrash) Next(pending []int, _ int) Decision {
	p := pending[t.rng.Intn(len(pending))]
	if t.remaining > 0 && t.victim[p] && t.rng.Float64() < t.crashProb {
		t.remaining--
		t.victim[p] = false
		return Decision{Proc: p, Crash: true}
	}
	return Decision{Proc: p}
}

// AdaptiveCrash schedules like Random but crashes adaptively: with
// probability crashProb per decision it crashes the pending process with
// the most granted steps (ties to the smallest index), up to maxCrashes
// crashes — the adversary watches the run and fells the front-runner.
type AdaptiveCrash struct {
	rng        *rand.Rand
	crashProb  float64
	maxCrashes int
	crashes    int
	granted    []int
}

// NewAdaptiveCrash returns a seeded adaptive crash policy over n
// processes.
func NewAdaptiveCrash(seed int64, crashProb float64, maxCrashes, n int) *AdaptiveCrash {
	if math.IsNaN(crashProb) || crashProb < 0 || crashProb > 1 {
		panic(fmt.Sprintf("sched: crashProb %v outside [0,1]", crashProb))
	}
	return &AdaptiveCrash{
		rng:        rand.New(rand.NewSource(seed)),
		crashProb:  crashProb,
		maxCrashes: maxCrashes,
		granted:    make([]int, n),
	}
}

// Next implements Policy.
//
//gsb:hotpath
func (a *AdaptiveCrash) Next(pending []int, _ int) Decision {
	if a.crashes < a.maxCrashes && a.rng.Float64() < a.crashProb {
		best := pending[0]
		for _, p := range pending[1:] {
			if a.granted[p] > a.granted[best] {
				best = p
			}
		}
		a.crashes++
		return Decision{Proc: best, Crash: true}
	}
	p := pending[a.rng.Intn(len(pending))]
	a.granted[p]++
	return Decision{Proc: p}
}
