package sched

import (
	"context"
	"testing"

	"repro/internal/stats"
)

// TestExploreStatsDeterministic checks the observability counters against
// the engine's determinism contract: on a clean exploration, runs,
// schedules and aborts are pure functions of the options — the same at
// every worker count — schedules equals the returned count, and the
// frontier gauge has drained to zero. Steals are inherently
// interleaving-dependent (and zero at one worker); prunes stay zero
// without a violation bound.
func TestExploreStatsDeterministic(t *testing.T) {
	for _, red := range []Reduction{ReductionNone, ReductionSleepSets, ReductionSleepMemo} {
		var wantRuns, wantScheds, wantAborts int64
		for _, workers := range []int{1, 2, 8} {
			reg := stats.New()
			build := func() Body { return stepsBody(2) }
			count, err := Explore(context.Background(), 3, DefaultIDs(3),
				ExploreOptions{Workers: workers, MaxSteps: 1000, Reduction: red, Stats: reg},
				build, func(*Result) error { return nil })
			if err != nil {
				t.Fatalf("reduction=%v workers=%d: %v", red, workers, err)
			}
			snap := reg.Snapshot()
			runs, scheds, aborts := snap.Counter(MetricRuns), snap.Counter(MetricSchedules), snap.Counter(MetricAborts)
			if scheds != int64(count) {
				t.Fatalf("reduction=%v workers=%d: %s = %d, Explore returned %d", red, workers, MetricSchedules, scheds, count)
			}
			if runs != scheds+aborts {
				t.Fatalf("reduction=%v workers=%d: runs %d != schedules %d + aborts %d", red, workers, runs, scheds, aborts)
			}
			if p := snap.Counter(MetricPrunes); p != 0 {
				t.Fatalf("reduction=%v workers=%d: %s = %d on a violation-free exploration", red, workers, MetricPrunes, p)
			}
			if d := snap.Gauges[MetricFrontierDepth]; d != 0 {
				t.Fatalf("reduction=%v workers=%d: frontier gauge = %d after drain", red, workers, d)
			}
			if workers == 1 {
				wantRuns, wantScheds, wantAborts = runs, scheds, aborts
				if s := snap.Counter(MetricSteals); s != 0 {
					t.Fatalf("reduction=%v: %d steals at one worker", red, s)
				}
				continue
			}
			if runs != wantRuns || scheds != wantScheds || aborts != wantAborts {
				t.Fatalf("reduction=%v workers=%d: (runs, schedules, aborts) = (%d, %d, %d), want (%d, %d, %d) as at workers=1",
					red, workers, runs, scheds, aborts, wantRuns, wantScheds, wantAborts)
			}
		}
	}
}

// TestSeededSliceStats checks the seeded pool publishes one run per
// executed index, cumulative across slices.
func TestSeededSliceStats(t *testing.T) {
	reg := stats.New()
	opts := ExploreOptions{Workers: 2, MaxSteps: 1000, Stats: reg}
	policy := func(i int) Policy { return NewRandom(DeriveRunSeed(7, i)) }
	build := func() Body { return stepsBody(2) }
	visit := func(int, *Result, error) error { return nil }

	var state *SeededState
	for {
		next, done, err := SeededSlice(context.Background(), 3, DefaultIDs(3), opts, 50,
			policy, build, visit, state, 20, nil)
		if err != nil {
			t.Fatal(err)
		}
		state = next
		if done {
			break
		}
	}
	if got := reg.Snapshot().Counter(MetricRuns); got != 50 {
		t.Fatalf("%s = %d after 50 seeded runs, want 50", MetricRuns, got)
	}
}
