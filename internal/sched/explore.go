package sched

import (
	"context"
	"errors"
	"fmt"
)

// This file is a "model checker lite": it enumerates EVERY failure-free
// schedule of a deterministic protocol (the tree of adversary choices)
// and checks a property on each complete run. Protocols are deterministic
// given the schedule, so stateless re-execution with a scripted prefix
// explores the full tree. Crash choices are excluded from the exhaustive
// tree — the crash-free schedule space is already exponential — and are
// covered instead by the randomized crash sweep mode of Explore (set
// ExploreOptions.CrashRuns), which distributes seeded crash-injected runs
// over the same worker pool.
//
// The exhaustive engine itself lives in explore_parallel.go; this file
// keeps the prefix-replay policy and the single-goroutine reference
// implementation that the parallel engine is differentially tested
// against.

// ErrExplorationBudget is returned when the schedule tree exceeds the
// caller's run budget.
var ErrExplorationBudget = errors.New("sched: exploration budget exhausted")

// ErrScheduleDiverged is returned (wrapped) by Runner.Run when a
// prefix-replay policy finds that the scripted process has no pending
// step: the protocol behaved differently than it did when the prefix was
// recorded, i.e. it is not a deterministic function of the schedule.
// Exploration and sampling surface it as a per-run failure instead of a
// panic, so one non-deterministic protocol cannot kill a worker pool.
var ErrScheduleDiverged = errors.New("sched: schedule replay diverged (non-deterministic protocol?)")

// explorePolicy replays a fixed prefix of choices, then always picks the
// smallest pending process, recording every decision point's pending set.
type explorePolicy struct {
	prefix  []int
	choices []int   // process chosen at each decision
	pending [][]int // pending set observed at each decision
}

// Next implements Policy.
func (e *explorePolicy) Next(pending []int, _ int) Decision {
	step := len(e.choices)
	var pick int
	if step < len(e.prefix) {
		pick = e.prefix[step]
		found := false
		for _, p := range pending {
			if p == pick {
				found = true
				break
			}
		}
		if !found {
			return Decision{Abort: true, Err: fmt.Errorf("%w: exploration prefix chose %d but pending is %v", ErrScheduleDiverged, pick, pending)}
		}
	} else {
		pick = pending[0]
	}
	e.choices = append(e.choices, pick)
	e.pending = append(e.pending, append([]int(nil), pending...))
	return Decision{Proc: pick}
}

// runChoices implements explorerPolicy.
func (e *explorePolicy) runChoices() []int { return e.choices }

// branchItems implements explorerPolicy (exhaustive mode: no sleep sets).
func (e *explorePolicy) branchItems() []frontierItem {
	bs := e.branches()
	out := make([]frontierItem, len(bs))
	for i, b := range bs {
		out[i] = frontierItem{choices: b}
	}
	return out
}

// branches returns the unexplored sibling prefixes of a completed (or
// aborted) run: for every decision point at or past the replayed prefix,
// one new prefix per pending process larger than the one chosen (the
// chosen process is always the smallest pending).
func (e *explorePolicy) branches() [][]int {
	var out [][]int
	for i := len(e.prefix); i < len(e.choices); i++ {
		chosen := e.choices[i]
		for _, alt := range e.pending[i] {
			if alt <= chosen {
				continue
			}
			branch := make([]int, i+1)
			copy(branch, e.choices[:i])
			branch[i] = alt
			out = append(out, branch)
		}
	}
	return out
}

// ExploreAll runs the protocol under every failure-free schedule and
// invokes check on each completed run. build is called once per run and
// must return a fresh protocol instance (fresh shared memory). It returns
// the number of distinct schedules explored. maxRuns bounds the
// exploration (ErrExplorationBudget beyond it); maxSteps bounds each
// individual run.
//
// ExploreAll is the single-worker entry point of the work-distributing
// engine in explore_parallel.go; build and check may therefore keep state
// across runs. Note one difference from the historical depth-first
// implementation: on a property violation the engine keeps exploring
// lexicographically smaller schedules and then re-executes the runs below
// the reported one to make the returned count deterministic, so build and
// check are invoked more times (and in a different order) than a DFS that
// stops at the first violation. Builds whose behavior depends on the
// invocation count should use ExploreSequential instead. Use Explore with
// ExploreOptions{Workers: N} to spread the tree over N workers (build and
// check must then be safe for concurrent use).
//
// The protocol must be deterministic given the schedule (true for every
// protocol in this repository; randomized protocols would make prefix
// replay diverge, which is detected and reported as ErrScheduleDiverged).
func ExploreAll(n int, ids []int, maxRuns, maxSteps int, build func() Body, check func(*Result) error) (int, error) {
	return Explore(context.Background(), n, ids, ExploreOptions{
		Workers:  1,
		MaxRuns:  maxRuns,
		MaxSteps: maxSteps,
	}, build, check)
}

// ExploreSequential is the historical LIFO-stack depth-first exploration,
// kept as the reference implementation: the parallel engine is
// differentially tested and benchmarked against it. Semantics are those
// of ExploreAll. It deliberately constructs a fresh Runner per run —
// unlike the parallel engine, whose workers reuse one runner each via
// Reset — so the differential tests double as a reuse-versus-fresh
// equivalence check.
func ExploreSequential(n int, ids []int, maxRuns, maxSteps int, build func() Body, check func(*Result) error) (int, error) {
	stack := [][]int{{}}
	runs := 0
	for len(stack) > 0 {
		if runs >= maxRuns {
			return runs, fmt.Errorf("%w (after %d runs)", ErrExplorationBudget, runs)
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		policy := &explorePolicy{prefix: prefix}
		runner := NewRunner(n, ids, policy, WithMaxSteps(maxSteps))
		res, err := runner.Run(build())
		if err != nil {
			return runs, fmt.Errorf("sched: exploration run with prefix %v: %w", prefix, err)
		}
		runs++
		if err := check(res); err != nil {
			return runs, fmt.Errorf("sched: schedule %v violates property: %w", policy.choices, err)
		}
		stack = append(stack, policy.branches()...)
	}
	return runs, nil
}
