package sched

import (
	"errors"
	"fmt"
)

// This file is a "model checker lite": it enumerates EVERY failure-free
// schedule of a deterministic protocol (the tree of adversary choices)
// and checks a property on each complete run. Protocols are deterministic
// given the schedule, so stateless re-execution with a scripted prefix
// explores the full tree. Crash choices are deliberately excluded — the
// crash-free schedule space is already exponential, and crash coverage is
// handled by randomized injection elsewhere.

// ErrExplorationBudget is returned when the schedule tree exceeds the
// caller's run budget.
var ErrExplorationBudget = errors.New("sched: exploration budget exhausted")

// explorePolicy replays a fixed prefix of choices, then always picks the
// smallest pending process, recording every decision point's pending set.
type explorePolicy struct {
	prefix  []int
	choices []int   // process chosen at each decision
	pending [][]int // pending set observed at each decision
}

// Next implements Policy.
func (e *explorePolicy) Next(pending []int, _ int) Decision {
	step := len(e.choices)
	var pick int
	if step < len(e.prefix) {
		pick = e.prefix[step]
		found := false
		for _, p := range pending {
			if p == pick {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("sched: exploration prefix chose %d but pending is %v (non-deterministic protocol?)", pick, pending))
		}
	} else {
		pick = pending[0]
	}
	e.choices = append(e.choices, pick)
	e.pending = append(e.pending, append([]int(nil), pending...))
	return Decision{Proc: pick}
}

// ExploreAll runs the protocol under every failure-free schedule and
// invokes check on each completed run. build is called once per run and
// must return a fresh protocol instance (fresh shared memory). It returns
// the number of distinct schedules explored. maxRuns bounds the
// exploration (ErrExplorationBudget beyond it); maxSteps bounds each
// individual run.
//
// The protocol must be deterministic given the schedule (true for every
// protocol in this repository; randomized protocols would make prefix
// replay diverge, which is detected and reported as a panic).
func ExploreAll(n int, ids []int, maxRuns, maxSteps int, build func() Body, check func(*Result) error) (int, error) {
	stack := [][]int{{}}
	runs := 0
	for len(stack) > 0 {
		if runs >= maxRuns {
			return runs, fmt.Errorf("%w (after %d runs)", ErrExplorationBudget, runs)
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		policy := &explorePolicy{prefix: prefix}
		runner := NewRunner(n, ids, policy, WithMaxSteps(maxSteps))
		res, err := runner.Run(build())
		if err != nil {
			return runs, fmt.Errorf("sched: exploration run with prefix %v: %w", prefix, err)
		}
		runs++
		if err := check(res); err != nil {
			return runs, fmt.Errorf("sched: schedule %v violates property: %w", policy.choices, err)
		}

		// Branch on every decision point past the prefix where another
		// process could have been chosen instead.
		for i := len(prefix); i < len(policy.choices); i++ {
			chosen := policy.choices[i]
			for _, alt := range policy.pending[i] {
				if alt <= chosen {
					continue // chosen is always the smallest pending
				}
				branch := make([]int, i+1)
				copy(branch, policy.choices[:i])
				branch[i] = alt
				stack = append(stack, branch)
			}
		}
	}
	return runs, nil
}
