package sched

import (
	"fmt"
	"strings"
)

// Timeline renders a recorded schedule as an ASCII chart: one row per
// process, one column per step, labels showing operation kinds. It gives
// the runs/schedules formalism of Section 2 a human-readable form and is
// used by cmd/gsbrun's -trace flag.
//
//	p0 | W...S...D     |
//	p1 | ..W..S....D   |
//	p2 | ....x         |   (x = crashed)
func Timeline(n int, schedule []Step) string {
	if len(schedule) == 0 {
		return "(empty schedule)\n"
	}
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = make([]byte, len(schedule))
		for k := range rows[i] {
			rows[i][k] = '.'
		}
	}
	for k, s := range schedule {
		if s.Proc < 0 || s.Proc >= n {
			continue
		}
		rows[s.Proc][k] = opGlyph(s)
	}
	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "p%-2d | %s |\n", i, string(row))
	}
	b.WriteString(legend)
	return b.String()
}

const legend = "      W=write R=read S=snapshot I=invoke D=decide o=other x=crash\n"

func opGlyph(s Step) byte {
	if s.Crash {
		return 'x'
	}
	op := s.Op
	switch {
	case strings.HasSuffix(op, ".write"):
		return 'W'
	case strings.HasSuffix(op, ".read"):
		return 'R'
	case strings.HasSuffix(op, ".snapshot"):
		return 'S'
	case strings.HasSuffix(op, ".invoke"), strings.HasSuffix(op, ".tas"),
		strings.HasSuffix(op, ".fetchinc"), strings.HasSuffix(op, ".propose"),
		strings.HasSuffix(op, ".ktas"), strings.HasSuffix(op, ".kleader"):
		return 'I'
	case op == "decide":
		return 'D'
	default:
		return 'o'
	}
}

// Summary produces per-process step counts from a schedule.
func Summary(n int, schedule []Step) string {
	counts := make([]int, n)
	crashed := make([]bool, n)
	for _, s := range schedule {
		if s.Proc < 0 || s.Proc >= n {
			continue
		}
		if s.Crash {
			crashed[s.Proc] = true
			continue
		}
		counts[s.Proc]++
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		status := ""
		if crashed[i] {
			status = " (crashed)"
		}
		fmt.Fprintf(&b, "p%d: %d steps%s\n", i, counts[i], status)
	}
	return b.String()
}
