package sched

import "repro/internal/stats"

// This file is the engine's side of the observability pipeline
// (internal/stats, docs/metrics.md): one struct of pre-resolved metric
// handles, created once per explorer or seeded pool from
// ExploreOptions.Stats. Publishing goes through nil-tolerant methods so
// the hot path pays one predictable branch when observability is off and
// one atomic add when it is on — never a registry lookup, never an
// allocation.

// Engine metric names. The campaign layer (internal/campaign) registers
// the checkpoint metrics; docs/metrics.md is the reference for all of
// them.
const (
	// MetricRuns counts run-budget slots executed: verified schedules,
	// sleep-set probe runs, and seeded sampler/crash-sweep runs.
	MetricRuns = "gsb_runs_total"
	// MetricSchedules counts schedules verified by exhaustive
	// exploration — one per Mazurkiewicz trace class under reduction.
	MetricSchedules = "gsb_schedules_total"
	// MetricSteals counts frontier items taken from another worker's
	// lane. Steal opportunities depend on worker interleaving, so this
	// counter is never deterministic across runs.
	MetricSteals = "gsb_steals_total"
	// MetricAborts counts sleep-set probe runs aborted by partial-order
	// reduction (ErrRunAborted): budget slots that verified no new
	// schedule but seeded sibling branches.
	MetricAborts = "gsb_aborts_total"
	// MetricPrunes counts frontier prefixes dropped against the
	// lexicographic violation bound. Pruning races discovery of the
	// bound, so this counter is only deterministic on violation-free
	// explorations (where it stays 0).
	MetricPrunes = "gsb_prunes_total"
	// MetricFrontierDepth gauges the exploration frontier: schedule
	// prefixes queued or in flight.
	MetricFrontierDepth = "gsb_frontier_depth"
	// MetricAdversaryEvents counts adversary-injected fault events:
	// crashes injected by the crash adversaries (seeded sweeps), and
	// messages dropped, delayed or reordered by the message adversary
	// (internal/msgnet publishes into the same name). Cumulative across
	// kill/resume and summed by shard merges like every counter.
	MetricAdversaryEvents = "gsb_adversary_events_total"
)

// engineMetrics carries the engine's resolved metric handles. The nil
// *engineMetrics publishes nowhere; every method tolerates it so call
// sites need no guards.
type engineMetrics struct {
	runs      *stats.Counter
	schedules *stats.Counter
	steals    *stats.Counter
	aborts    *stats.Counter
	prunes    *stats.Counter
	advEvents *stats.Counter
	frontier  *stats.Gauge
}

// newEngineMetrics resolves the engine's handles in r, or returns nil
// when r is nil (observability off).
func newEngineMetrics(r *stats.Registry) *engineMetrics {
	if r == nil {
		return nil
	}
	return &engineMetrics{
		runs:      r.Counter(MetricRuns, "Engine runs executed (verified schedules, POR probe runs, seeded sampler and crash-sweep runs)."),
		schedules: r.Counter(MetricSchedules, "Schedules verified by exhaustive exploration (one per Mazurkiewicz trace class under reduction)."),
		steals:    r.Counter(MetricSteals, "Frontier work items stolen between exploration workers."),
		aborts:    r.Counter(MetricAborts, "Sleep-set probe runs aborted by partial-order reduction."),
		prunes:    r.Counter(MetricPrunes, "Frontier prefixes pruned against the lexicographic violation bound."),
		advEvents: r.Counter(MetricAdversaryEvents, "Adversary-injected fault events: crashes (crash adversaries) and message drops/delays/reorders (message adversary)."),
		frontier:  r.Gauge(MetricFrontierDepth, "Exploration frontier size: schedule prefixes queued or in flight."),
	}
}

//gsb:hotpath
func (m *engineMetrics) incRuns() {
	if m != nil {
		m.runs.Inc()
	}
}

//gsb:hotpath
func (m *engineMetrics) incSchedules() {
	if m != nil {
		m.schedules.Inc()
	}
}

//gsb:hotpath
func (m *engineMetrics) incSteals() {
	if m != nil {
		m.steals.Inc()
	}
}

//gsb:hotpath
func (m *engineMetrics) incAborts() {
	if m != nil {
		m.aborts.Inc()
	}
}

//gsb:hotpath
func (m *engineMetrics) incPrunes() {
	if m != nil {
		m.prunes.Inc()
	}
}

// addCrashEvents publishes a completed seeded run's adversary-injected
// crashes as adversary events.
//
//gsb:hotpath
func (m *engineMetrics) addCrashEvents(crashed []bool) {
	if m == nil {
		return
	}
	var k int64
	for _, c := range crashed {
		if c {
			k++
		}
	}
	if k > 0 {
		m.advEvents.Add(k)
	}
}

//gsb:hotpath
func (m *engineMetrics) setFrontier(depth int64) {
	if m != nil {
		m.frontier.Set(depth)
	}
}
