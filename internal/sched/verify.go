package sched

import (
	"fmt"
	"sort"
)

// This file implements the two solvability-notion checks of Section 2.2:
// index-independence and comparison-basedness. Both are semantic
// properties of an algorithm; we verify them on concrete runs by replaying
// transformed schedules and comparing outputs, which catches protocols
// that misuse indexes or identity arithmetic.

// CheckIndexIndependence runs body once under policy, then replays the run
// under every index permutation pi (inputs and schedule permuted as in the
// paper's definition) and verifies that output_{pi(i)} in the permuted run
// equals output_i in the original. perms is a list of permutations of
// [0..n-1]; pass nil to check a default set (identity, reversal, rotation).
func CheckIndexIndependence(n int, ids []int, policy Policy, body Body, perms [][]int) error {
	base := NewRunner(n, ids, policy)
	res, err := base.Run(body)
	if err != nil {
		return fmt.Errorf("base run failed: %w", err)
	}
	if perms == nil {
		perms = defaultPerms(n)
	}
	for _, perm := range perms {
		if err := checkPerm(n, ids, body, res, perm); err != nil {
			return err
		}
	}
	return nil
}

func checkPerm(n int, ids []int, body Body, res *Result, perm []int) error {
	// Permuted run: the process at index perm[i] receives input ids[i] and
	// steps whenever index i stepped in the base run.
	permIDs := make([]int, n)
	for i := 0; i < n; i++ {
		permIDs[perm[i]] = ids[i]
	}
	script := NewScript(decisionsFromSchedule(PermutedSchedule(res.Schedule, perm)))
	runner := NewRunner(n, permIDs, script)
	permRes, err := runner.Run(body)
	if err != nil {
		return fmt.Errorf("permuted run failed: %w", err)
	}
	for i := 0; i < n; i++ {
		if res.Decided[i] != permRes.Decided[perm[i]] ||
			res.Outputs[i] != permRes.Outputs[perm[i]] {
			return fmt.Errorf("index dependence: process %d output (%v,%d) but permuted process %d output (%v,%d) under perm %v",
				i, res.Decided[i], res.Outputs[i],
				perm[i], permRes.Decided[perm[i]], permRes.Outputs[perm[i]], perm)
		}
	}
	return nil
}

// CheckComparisonBased runs body once under policy with identities ids,
// then re-runs the same schedule with every provided order-isomorphic
// identity assignment (same relative order, different values) and verifies
// each process decides the same value at the same schedule position.
func CheckComparisonBased(n int, ids []int, policy Policy, body Body, altIDs [][]int) error {
	base := NewRunner(n, ids, policy)
	res, err := base.Run(body)
	if err != nil {
		return fmt.Errorf("base run failed: %w", err)
	}
	for _, alt := range altIDs {
		if len(alt) != n {
			return fmt.Errorf("alt identity vector %v has wrong length", alt)
		}
		if !orderIsomorphic(ids, alt) {
			return fmt.Errorf("identity vectors %v and %v are not order-isomorphic", ids, alt)
		}
		script := NewScript(decisionsFromSchedule(res.Schedule))
		runner := NewRunner(n, alt, script)
		altRes, err := runner.Run(body)
		if err != nil {
			return fmt.Errorf("replay with ids %v failed: %w", alt, err)
		}
		for i := 0; i < n; i++ {
			if res.Decided[i] != altRes.Decided[i] || res.Outputs[i] != altRes.Outputs[i] {
				return fmt.Errorf("not comparison-based: process %d decided (%v,%d) with ids %v but (%v,%d) with ids %v",
					i, res.Decided[i], res.Outputs[i], ids,
					altRes.Decided[i], altRes.Outputs[i], alt)
			}
		}
		if len(res.Schedule) != len(altRes.Schedule) {
			return fmt.Errorf("not comparison-based: schedule lengths differ (%d vs %d) with ids %v vs %v",
				len(res.Schedule), len(altRes.Schedule), ids, alt)
		}
	}
	return nil
}

func orderIsomorphic(a, b []int) bool {
	for i := range a {
		for j := range a {
			if (a[i] < a[j]) != (b[i] < b[j]) {
				return false
			}
		}
	}
	return true
}

func decisionsFromSchedule(schedule []Step) []Decision {
	out := make([]Decision, 0, len(schedule))
	for _, s := range schedule {
		out = append(out, Decision{Proc: s.Proc, Crash: s.Crash})
	}
	return out
}

func defaultPerms(n int) [][]int {
	identity := make([]int, n)
	reversal := make([]int, n)
	rotation := make([]int, n)
	swap01 := make([]int, n)
	for i := 0; i < n; i++ {
		identity[i] = i
		reversal[i] = n - 1 - i
		rotation[i] = (i + 1) % n
		swap01[i] = i
	}
	if n >= 2 {
		swap01[0], swap01[1] = 1, 0
	}
	return [][]int{identity, reversal, rotation, swap01}
}

// OrderIsomorphicIDs returns an identity assignment order-isomorphic to
// ids but shifted to larger values (each rank r mapped to base + 2r),
// useful as input to CheckComparisonBased.
func OrderIsomorphicIDs(ids []int, base int) []int {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	rank := map[int]int{}
	for r, v := range sorted {
		rank[v] = r
	}
	out := make([]int, len(ids))
	for i, v := range ids {
		out[i] = base + 2*rank[v]
	}
	return out
}
