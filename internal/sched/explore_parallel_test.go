package sched

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// raceBody returns a build function for a per-run racy counter protocol:
// every process reads the counter, writes it back incremented as a second
// step, and decides the value it read plus one. Under interleaved
// schedules updates are lost, so some processes decide equal values. Each
// run gets fresh state, making the protocol safe for concurrent
// exploration.
func raceBody(n int) func() Body {
	return func() Body {
		counter := 0
		return func(p *Proc) {
			v := p.Exec("read", func() any { return counter }).(int)
			p.Exec("write", func() any { counter = v + 1; return nil })
			p.Decide(v + 1)
		}
	}
}

// distinctOutputs fails when two processes decided the same value.
func distinctOutputs(res *Result) error {
	seen := map[int]int{}
	for i, v := range res.Outputs {
		if j, dup := seen[v]; dup {
			return fmt.Errorf("processes %d and %d both decided %d", j, i, v)
		}
		seen[v] = i
	}
	return nil
}

func TestExploreMatchesSequentialCount(t *testing.T) {
	cases := []struct {
		n, k int // n processes, k noop steps each (plus one decide)
	}{
		{2, 4}, // C(10,5) = 252 schedules
		{3, 2}, // multinomial(9;3,3,3) = 1680
		{4, 1}, // multinomial(8;2,2,2,2) = 2520
	}
	for _, tc := range cases {
		build := func() Body { return stepsBody(tc.k) }
		ok := func(*Result) error { return nil }
		want, err := ExploreSequential(tc.n, DefaultIDs(tc.n), 1<<20, 1000, build, ok)
		if err != nil {
			t.Fatalf("n=%d k=%d sequential: %v", tc.n, tc.k, err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := Explore(context.Background(), tc.n, DefaultIDs(tc.n),
				ExploreOptions{Workers: workers, MaxSteps: 1000}, build, ok)
			if err != nil {
				t.Fatalf("n=%d k=%d workers=%d: %v", tc.n, tc.k, workers, err)
			}
			if got != want {
				t.Errorf("n=%d k=%d workers=%d: %d schedules, sequential found %d", tc.n, tc.k, workers, got, want)
			}
		}
	}
}

func TestExploreDeterministicViolation(t *testing.T) {
	// Many schedules of the racy protocol violate output distinctness. The
	// engine must report the lexicographically smallest violating schedule
	// and the count of schedules up to it, identically at every worker
	// count and across repetitions.
	const n = 3
	var wantCount int
	var wantErr string
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 3; rep++ {
			count, err := Explore(context.Background(), n, DefaultIDs(n),
				ExploreOptions{Workers: workers, MaxSteps: 1000}, raceBody(n), distinctOutputs)
			if err == nil {
				t.Fatalf("workers=%d rep=%d: exploration missed the lost-update schedules", workers, rep)
			}
			if wantErr == "" {
				wantCount, wantErr = count, err.Error()
				continue
			}
			if count != wantCount || err.Error() != wantErr {
				t.Errorf("workers=%d rep=%d: got (%d, %q), want (%d, %q)", workers, rep, count, err.Error(), wantCount, wantErr)
			}
		}
	}
}

func TestExploreViolationMatchesSequentialTrace(t *testing.T) {
	// At one worker the engine's reported violation must be the
	// lexicographic minimum; the sequential baseline's smallest-first DFS
	// finds violations in stack order, so only cross-check that both see
	// a violation for the same protocol.
	const n = 2
	_, seqErr := ExploreSequential(n, DefaultIDs(n), 1<<20, 1000, raceBody(n), distinctOutputs)
	if seqErr == nil {
		t.Fatal("sequential baseline missed the lost-update schedules")
	}
	_, parErr := Explore(context.Background(), n, DefaultIDs(n),
		ExploreOptions{Workers: 1, MaxSteps: 1000}, raceBody(n), distinctOutputs)
	if parErr == nil {
		t.Fatal("parallel engine missed the lost-update schedules")
	}
}

func TestExploreBudgetConcurrent(t *testing.T) {
	for _, workers := range []int{2, 8} {
		for rep := 0; rep < 3; rep++ {
			count, err := Explore(context.Background(), 3, DefaultIDs(3),
				ExploreOptions{Workers: workers, MaxRuns: 50, MaxSteps: 1000},
				func() Body { return stepsBody(3) },
				func(*Result) error { return nil })
			if !errors.Is(err, ErrExplorationBudget) {
				t.Fatalf("workers=%d rep=%d: err = %v, want budget error", workers, rep, err)
			}
			if count != 50 {
				t.Errorf("workers=%d rep=%d: count = %d, want exactly the budget 50", workers, rep, count)
			}
		}
	}
}

func TestExploreContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Explore(ctx, 3, DefaultIDs(3),
		ExploreOptions{Workers: 4, MaxSteps: 1000},
		func() Body { return stepsBody(3) },
		func(*Result) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExploreCrashSweep(t *testing.T) {
	const n, runs = 4, 300
	build := func() Body {
		return func(p *Proc) { p.Decide(p.ID()) }
	}
	// Accept any run: crashed processes simply do not decide.
	okCheck := func(res *Result) error {
		for i, d := range res.Decided {
			if !d && !res.Crashed[i] {
				return fmt.Errorf("process %d neither decided nor crashed", i)
			}
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		count, err := Explore(context.Background(), n, DefaultIDs(n),
			ExploreOptions{Workers: workers, CrashRuns: runs, CrashProb: 0.1, Seed: 7},
			build, okCheck)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count != runs {
			t.Errorf("workers=%d: count = %d, want %d", workers, count, runs)
		}
	}
}

func TestExploreCrashSweepDeterministicFailure(t *testing.T) {
	// A check that rejects any crashed run fails at the first run whose
	// policy injects a crash; the reported run index must be the same at
	// every worker count.
	const n, runs = 3, 500
	build := func() Body {
		return func(p *Proc) { p.Decide(p.ID()) }
	}
	noCrashes := func(res *Result) error {
		for i, c := range res.Crashed {
			if c {
				return fmt.Errorf("process %d crashed", i)
			}
		}
		return nil
	}
	var wantCount int
	var wantErr string
	for _, workers := range []int{1, 2, 8} {
		count, err := Explore(context.Background(), n, DefaultIDs(n),
			ExploreOptions{Workers: workers, CrashRuns: runs, CrashProb: 0.2, Seed: 42},
			build, noCrashes)
		if err == nil {
			t.Fatalf("workers=%d: sweep with CrashProb=0.2 injected no crash in %d runs", workers, runs)
		}
		if wantErr == "" {
			wantCount, wantErr = count, err.Error()
			continue
		}
		if count != wantCount || err.Error() != wantErr {
			t.Errorf("workers=%d: got (%d, %q), want (%d, %q)", workers, count, err.Error(), wantCount, wantErr)
		}
	}
}

// TestExploreWorkerCountInvariance is the regression test behind the
// //gsb:nondeterminism-ok waiver on the exploration worker pool (and the
// optionshash exclusion of Workers from campaign identity): across every
// mode family — exhaustive, sleep-set reduced, memoized, and the seeded
// crash sweep — the (count, error) outcome must be byte-identical at
// every worker count. A failure here means an interleaving artifact
// reached a result, and the correct fix is in the engine, not a wider
// waiver.
func TestExploreWorkerCountInvariance(t *testing.T) {
	const n = 3
	cases := []struct {
		name string
		opts ExploreOptions
	}{
		{"exhaustive", ExploreOptions{MaxSteps: 1000}},
		{"sleepsets", ExploreOptions{MaxSteps: 1000, Reduction: ReductionSleepSets}},
		{"sleepmemo", ExploreOptions{MaxSteps: 1000, Reduction: ReductionSleepMemo}},
		{"crashsweep", ExploreOptions{CrashRuns: 300, CrashProb: 0.15, Seed: 11}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type outcome struct {
				count int
				err   string
			}
			var want outcome
			for i, workers := range []int{1, 2, 8} {
				opts := tc.opts
				opts.Workers = workers
				count, err := Explore(context.Background(), n, DefaultIDs(n),
					opts, raceBody(n), distinctOutputs)
				got := outcome{count: count}
				if err != nil {
					got.err = err.Error()
				}
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d: outcome %+v, workers=1 gave %+v", workers, got, want)
				}
			}
		})
	}
}
