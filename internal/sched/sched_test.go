package sched

import (
	"errors"
	"strings"
	"testing"
)

// counterBody increments a shared counter k times and decides its final
// observation; used to exercise the scheduler without the mem package
// (which would create an import cycle in tests).
func counterBody(counter *int, k int) Body {
	return func(p *Proc) {
		last := 0
		for i := 0; i < k; i++ {
			last = p.Exec("inc", func() any {
				*counter++
				return *counter
			}).(int)
		}
		p.Decide(last)
	}
}

func TestRunRoundRobinDeterministic(t *testing.T) {
	run := func() *Result {
		counter := 0
		r := NewRunner(3, DefaultIDs(3), NewRoundRobin())
		res, err := r.Run(counterBody(&counter, 4))
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("schedule differs at %d: %v vs %v", i, a.Schedule[i], b.Schedule[i])
		}
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}

func TestRunRandomSeedDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		counter := 0
		r := NewRunner(4, DefaultIDs(4), NewRandom(seed))
		res, err := r.Run(counterBody(&counter, 5))
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		out, err := res.DecidedVector()
		if err != nil {
			t.Fatalf("decided vector: %v", err)
		}
		return out
	}
	a1, a2 := run(7), run(7)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different outputs")
		}
	}
	// Different seeds should (for this body) usually differ; check at
	// least one of several seeds differs to avoid flakiness.
	diff := false
	base := run(1)
	for seed := int64(2); seed <= 6 && !diff; seed++ {
		other := run(seed)
		for i := range base {
			if base[i] != other[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("five different seeds all produced identical interleavings")
	}
}

func TestStepsCountAndSchedule(t *testing.T) {
	counter := 0
	n, k := 3, 4
	r := NewRunner(n, DefaultIDs(n), NewRoundRobin())
	res, err := r.Run(counterBody(&counter, k))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	wantSteps := n * (k + 1) // k increments + 1 decide each
	if res.Steps != wantSteps {
		t.Errorf("Steps = %d, want %d", res.Steps, wantSteps)
	}
	if len(res.Schedule) != wantSteps {
		t.Errorf("schedule length = %d, want %d", len(res.Schedule), wantSteps)
	}
	if counter != n*k {
		t.Errorf("counter = %d, want %d", counter, n*k)
	}
	perProc := map[int]int{}
	for _, s := range res.Schedule {
		perProc[s.Proc]++
	}
	for i := 0; i < n; i++ {
		if perProc[i] != k+1 {
			t.Errorf("process %d took %d steps, want %d", i, perProc[i], k+1)
		}
	}
}

func TestCrashInjection(t *testing.T) {
	counter := 0
	policy := &CrashAt{Inner: NewRoundRobin(), Proc: 1, StepsBeforeCrash: 2}
	r := NewRunner(3, DefaultIDs(3), policy)
	res, err := r.Run(counterBody(&counter, 5))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.Crashed[1] {
		t.Fatal("process 1 was not crashed")
	}
	if res.Decided[1] {
		t.Fatal("crashed process decided")
	}
	if !res.Decided[0] || !res.Decided[2] {
		t.Fatal("surviving processes did not decide")
	}
	// The crashed process took exactly 2 operation steps.
	steps := 0
	for _, s := range res.Schedule {
		if s.Proc == 1 && !s.Crash {
			steps++
		}
	}
	if steps != 2 {
		t.Errorf("crashed process took %d steps, want 2", steps)
	}
}

func TestCrashBeforeParticipation(t *testing.T) {
	counter := 0
	policy := &CrashAt{Inner: NewRoundRobin(), Proc: 0, StepsBeforeCrash: 0}
	r := NewRunner(2, DefaultIDs(2), policy)
	res, err := r.Run(counterBody(&counter, 3))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Participating(0) {
		t.Error("process 0 should not have participated")
	}
	if !res.Participating(1) || !res.Decided[1] {
		t.Error("process 1 should have run to completion")
	}
}

func TestStepBudget(t *testing.T) {
	counter := 0
	spin := func(p *Proc) {
		for { // deliberately non-terminating protocol
			p.Exec("spin", func() any { counter++; return nil })
		}
	}
	r := NewRunner(2, DefaultIDs(2), NewRoundRobin(), WithMaxSteps(50))
	_, err := r.Run(spin)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestPolicyCannotCrashEveryone(t *testing.T) {
	policy := NewRandomCrash(1, 1.0, 99) // tries to crash on every decision
	counter := 0
	r := NewRunner(2, DefaultIDs(2), policy)
	_, err := r.Run(counterBody(&counter, 2))
	if err == nil || !strings.Contains(err.Error(), "at most n-1") {
		t.Fatalf("err = %v, want wait-free violation", err)
	}
}

func TestRandomCrashRespectsMax(t *testing.T) {
	counter := 0
	policy := NewRandomCrash(3, 0.5, 2)
	r := NewRunner(4, DefaultIDs(4), policy)
	res, err := r.Run(counterBody(&counter, 6))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	crashes := 0
	for _, c := range res.Crashed {
		if c {
			crashes++
		}
	}
	if crashes > 2 {
		t.Errorf("%d crashes, want <= 2", crashes)
	}
	for i, c := range res.Crashed {
		if !c && !res.Decided[i] {
			t.Errorf("surviving process %d did not decide", i)
		}
	}
}

func TestScriptReplayReproducesRun(t *testing.T) {
	counter := 0
	r := NewRunner(3, DefaultIDs(3), NewRandom(99))
	res, err := r.Run(counterBody(&counter, 4))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	counter = 0
	r2 := NewRunner(3, DefaultIDs(3), ScriptFromSchedule(res.Schedule))
	res2, err := r2.Run(counterBody(&counter, 4))
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	for i := range res.Outputs {
		if res.Outputs[i] != res2.Outputs[i] {
			t.Fatalf("replay output %d differs: %d vs %d", i, res.Outputs[i], res2.Outputs[i])
		}
	}
	for i := range res.Schedule {
		if res.Schedule[i] != res2.Schedule[i] {
			t.Fatalf("replay schedule differs at %d", i)
		}
	}
}

func TestDecideTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double decide")
		}
	}()
	r := NewRunner(1, DefaultIDs(1), NewRoundRobin())
	_, _ = r.Run(func(p *Proc) {
		p.Decide(1)
		p.Decide(2)
	})
}

func TestNewRunnerValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"n zero", func() { NewRunner(0, nil, NewRoundRobin()) }},
		{"ids length", func() { NewRunner(2, []int{1}, NewRoundRobin()) }},
		{"duplicate ids", func() { NewRunner(2, []int{3, 3}, NewRoundRobin()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestDecidedVectorError(t *testing.T) {
	counter := 0
	policy := &CrashAt{Inner: NewRoundRobin(), Proc: 0, StepsBeforeCrash: 1}
	r := NewRunner(2, DefaultIDs(2), policy)
	res, err := r.Run(counterBody(&counter, 3))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if _, err := res.DecidedVector(); err == nil {
		t.Fatal("DecidedVector should fail when a process crashed undecided")
	}
}

// idParityBody decides 1 for odd identity, 2 for even: index-independent
// and NOT comparison-based (it inspects identity arithmetic).
func idParityBody(p *Proc) {
	p.Exec("noop", func() any { return nil })
	p.Decide(p.ID()%2 + 1)
}

// indexBody decides based on its register index: index-dependent.
func indexBody(p *Proc) {
	p.Exec("noop", func() any { return nil })
	p.Decide(p.Index()%2 + 1)
}

// rankBody decides its identity's rank among all identities it cannot see;
// here trivially decides 1: both index-independent and comparison-based.
func constBody(p *Proc) {
	p.Exec("noop", func() any { return nil })
	p.Decide(1)
}

func TestCheckIndexIndependence(t *testing.T) {
	if err := CheckIndexIndependence(3, []int{4, 1, 7}, NewRoundRobin(), constBody, nil); err != nil {
		t.Errorf("constBody flagged index-dependent: %v", err)
	}
	if err := CheckIndexIndependence(3, []int{4, 1, 7}, NewRoundRobin(), idParityBody, nil); err != nil {
		t.Errorf("idParityBody flagged index-dependent: %v", err)
	}
	if err := CheckIndexIndependence(3, []int{4, 1, 7}, NewRoundRobin(), indexBody, nil); err == nil {
		t.Error("indexBody not flagged index-dependent")
	}
}

func TestCheckComparisonBased(t *testing.T) {
	ids := []int{4, 1, 7}
	alts := [][]int{OrderIsomorphicIDs(ids, 100), OrderIsomorphicIDs(ids, 7)}
	if err := CheckComparisonBased(3, ids, NewRoundRobin(), constBody, alts); err != nil {
		t.Errorf("constBody flagged non-comparison-based: %v", err)
	}
	if err := CheckComparisonBased(3, ids, NewRoundRobin(), idParityBody, alts); err == nil {
		t.Error("idParityBody not flagged non-comparison-based")
	}
}

func TestCheckComparisonBasedRejectsBadAlt(t *testing.T) {
	ids := []int{4, 1, 7}
	err := CheckComparisonBased(3, ids, NewRoundRobin(), constBody, [][]int{{1, 2, 3}})
	if err == nil || !strings.Contains(err.Error(), "order-isomorphic") {
		t.Fatalf("err = %v, want order-isomorphism complaint", err)
	}
}

func TestOrderIsomorphicIDs(t *testing.T) {
	ids := []int{4, 1, 7}
	got := OrderIsomorphicIDs(ids, 10)
	want := []int{12, 10, 14}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OrderIsomorphicIDs = %v, want %v", got, want)
		}
	}
	if !orderIsomorphic(ids, got) {
		t.Fatal("result not order-isomorphic to input")
	}
}

func TestPermutedSchedule(t *testing.T) {
	sched := []Step{{Proc: 0, Op: "a"}, {Proc: 1, Op: "b", Crash: false}, {Proc: 2, Crash: true}}
	perm := []int{2, 0, 1}
	got := PermutedSchedule(sched, perm)
	want := []Step{{Proc: 2, Op: "a"}, {Proc: 0, Op: "b"}, {Proc: 1, Crash: true}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PermutedSchedule[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRoundRobinFairness(t *testing.T) {
	rr := NewRoundRobin()
	pending := []int{0, 1, 2}
	seen := []int{}
	for i := 0; i < 6; i++ {
		d := rr.Next(pending, i)
		seen = append(seen, d.Proc)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("round robin order %v, want %v", seen, want)
		}
	}
}

func TestSingleProcessRun(t *testing.T) {
	counter := 0
	r := NewRunner(1, []int{5}, NewRoundRobin())
	res, err := r.Run(counterBody(&counter, 3))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.Decided[0] || res.Outputs[0] != 3 {
		t.Fatalf("solo run output = %v", res.Outputs)
	}
}
