// Memory-model registry: the register/snapshot semantics a run executes
// under, as a first-class axis of the execution model.
//
// The paper's results are stated over atomic read/write registers; the
// registry adds the classically weaker register families (Lamport's safe
// and regular registers) and a stale-snapshot variant, so the solvability
// map can be diffed across models (harness.ModelMatrixExperiment). A
// model weakens semantics exclusively by adding scheduler-visible
// decision points — a non-atomic write becomes a write-start/write-commit
// step pair — never by hidden nondeterminism, so every run stays a pure
// function of (model, schedule) and the exploration engines' determinism,
// checkpointing and sharding guarantees carry over unchanged.
//
// Partial-order reduction stays sound by construction: the extra op kinds
// ("write-start", "write-commit") are not in the independence relation's
// read-only set, so they conflict with every other op on the same object
// exactly as a one-step write does (see independence.go).
package sched

import (
	"fmt"
	"strings"
)

// Registered memory-model names (ExploreOptions.Model, gsbrun -model).
const (
	// ModelAtomic is the paper's model — atomic (linearizable) registers
	// and one-step snapshots — and the default. Runs under it are
	// bit-identical to the pre-registry engine.
	ModelAtomic = "atomic"
	// ModelRegular weakens writes to regular-register semantics: a write
	// is a scheduler-visible write-start/write-commit step pair, and a
	// read scheduled between the two returns the old (committed) value.
	ModelRegular = "regular"
	// ModelSafe weakens registers to safe-register semantics: writes are
	// two-phase as under ModelRegular, and a read that overlaps an open
	// write window returns an arbitrary value — represented
	// deterministically as the unwritten zero value.
	ModelSafe = "safe"
	// ModelStaleSnapshot keeps registers atomic but degrades the one-step
	// array snapshot into a per-register collect (n individual reads), so
	// snapshots are no longer guaranteed to be mutually comparable.
	ModelStaleSnapshot = "stale-snapshot"
)

// MemModel describes the shared-memory semantics of a run. The zero value
// is the atomic model (the default): every capability reports false and
// the runner's hot path is untouched. Obtain non-default models through
// MemModelByName; internal/mem consults the capabilities through
// Proc.Model on every register operation.
type MemModel struct {
	name           string
	twoPhaseWrites bool
	safeReads      bool
	staleSnapshots bool
}

// Name returns the model's registered name ("atomic" for the zero value).
func (m MemModel) Name() string {
	if m.name == "" {
		return ModelAtomic
	}
	return m.name
}

// String implements fmt.Stringer.
func (m MemModel) String() string { return m.Name() }

// TwoPhaseWrites reports whether a register write executes as a
// scheduler-visible write-start/write-commit step pair instead of one
// atomic step (regular and safe registers).
func (m MemModel) TwoPhaseWrites() bool { return m.twoPhaseWrites }

// SafeReads reports whether a read overlapping an open write window
// returns the arbitrary (zero, unwritten) value instead of the committed
// one (safe registers).
func (m MemModel) SafeReads() bool { return m.safeReads }

// StaleSnapshots reports whether array snapshots degrade to per-register
// collects (n reads, each its own step) instead of one atomic step.
func (m MemModel) StaleSnapshots() bool { return m.staleSnapshots }

// memModelRegistry is the fixed, ordered model registry. A slice (not a
// map) so listings and lookups are deterministic without sorting.
var memModelRegistry = []MemModel{
	{name: ModelAtomic},
	{name: ModelRegular, twoPhaseWrites: true},
	{name: ModelSafe, twoPhaseWrites: true, safeReads: true},
	{name: ModelStaleSnapshot, staleSnapshots: true},
}

// MemModels lists the registered memory-model names in registry order
// (the default first).
func MemModels() []string {
	names := make([]string, len(memModelRegistry))
	for i, m := range memModelRegistry {
		names[i] = m.name
	}
	return names
}

// MemModelByName resolves a registered model name. The empty string means
// the default (atomic). Unknown names error with the registered list —
// the message ExploreOptions.Validate and the CLIs surface.
func MemModelByName(name string) (MemModel, error) {
	if name == "" {
		return MemModel{}, nil
	}
	for _, m := range memModelRegistry {
		if m.name == name {
			return m, nil
		}
	}
	return MemModel{}, fmt.Errorf("unknown memory model %q (registered: %s)", name, strings.Join(MemModels(), ", "))
}

// memModelFor resolves opts.Model inside an engine whose options already
// passed Validate; an unknown name here is an engine bug, not user input.
func memModelFor(opts ExploreOptions) MemModel {
	m, err := MemModelByName(opts.Model)
	if err != nil {
		panic("sched: " + err.Error() + " (options not validated?)")
	}
	return m
}
