package sched

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
)

// This file is the checkpoint layer of the exhaustive/POR engine: the
// discovery pass runs in bounded slices, and between slices its entire
// state — the unexplored frontier (with sleep sets), the run counters,
// the best failure, and the canonical-trace memo — is a plain serializable
// value. The key invariant making this exact rather than approximate:
// the sleep-set walk keeps no cross-subtree state outside the frontier
// items themselves (each item carries its own sleep set), so the set of
// runs executed from a frontier F is a pure function of F, never of how
// the engine arrived at F. Processing any subset of F and collecting the
// remainder therefore commutes with worker interleaving, process death
// and machine boundaries alike — which is what lets a campaign resume
// after a kill, and lets disjoint partitions of F run as shards on
// different machines and be merged.
//
// Two deliberate deviations from the one-shot Explore path, both settled
// at Finalize time: a failure restored from a checkpoint carries only its
// rendered message (error chains do not serialize), and the counting pass
// that fixes the schedule count below a violation is re-run from the root
// rather than checkpointed — it is read-only, pruned by the settled bound,
// and much cheaper than discovery.

// ExploreState is the serializable discovery-pass state of the
// exhaustive/partial-order-reduced exploration engine: everything needed
// to continue (or merge) an exploration is in this value. The zero value
// is not meaningful; use RootExploreState for a fresh exploration.
//
//gsb:serialized
type ExploreState struct {
	// Frontier is the unexplored work: one entry per schedule prefix
	// whose subtree has not been walked, sorted lexicographically (the
	// order is cosmetic — any permutation resumes to the same outcome).
	Frontier []FrontierState `json:"frontier"`
	// Claimed counts run-budget slots consumed so far (schedules plus,
	// under reduction, pruned probe runs); MaxRuns is enforced against
	// it across resumes.
	Claimed int64 `json:"claimed"`
	// Completed counts verified schedules (trace classes under
	// reduction).
	Completed int64 `json:"completed"`
	// Failure is the lexicographically smallest failed run seen so far,
	// nil while every run has verified.
	Failure *FailureState `json:"failure,omitempty"`
	// MemoHashes is the canonical-trace memo (ReductionSleepMemo only):
	// the sorted class hashes already counted.
	MemoHashes []uint64 `json:"memo_hashes,omitempty"`
}

// FrontierState is one serialized frontier item: a schedule prefix and,
// under partial-order reduction, the sleep set at the node it reaches.
//
//gsb:serialized
type FrontierState struct {
	Choices []int `json:"choices"`
	Sleep   []int `json:"sleep,omitempty"`
}

// FailureState is a serialized exploration failure. Only the rendered
// message survives serialization; a restored failure compares equal to
// the original by text, not by errors.Is identity.
//
//gsb:serialized
type FailureState struct {
	Choices []int  `json:"choices"`
	Message string `json:"message"`
	err     error  // live error when the failure happened in this process
}

// Err returns the failure's error: the original error value when the
// failure was recorded in this process, or an opaque error carrying the
// checkpointed message after a restore.
func (f *FailureState) Err() error {
	if f.err != nil {
		return f.err
	}
	return errors.New(f.Message)
}

// RootExploreState is the initial state of a fresh exploration: the
// frontier holds only the root (unconstrained) prefix.
func RootExploreState() *ExploreState {
	return &ExploreState{Frontier: []FrontierState{{Choices: []int{}}}}
}

// done reports whether discovery has drained: no frontier left to walk.
func (s *ExploreState) done() bool { return len(s.Frontier) == 0 }

// ResumableExplorer drives the exhaustive/POR engine in bounded slices
// with serializable state between them — the campaign subsystem's view of
// the engine. N, IDs, Opts, Build and Check play exactly the roles they
// do for Explore; Opts must describe an enumerating mode (SampleRuns and
// CrashRuns are rejected — those modes resume via the seeded-run pool,
// see SeededSlice).
type ResumableExplorer struct {
	N     int
	IDs   []int
	Opts  ExploreOptions
	Build func() Body
	Check func(*Result) error
}

func (r *ResumableExplorer) validate() (ExploreOptions, error) {
	if err := r.Opts.Validate(); err != nil {
		return r.Opts, err
	}
	if r.Opts.SampleRuns > 0 || r.Opts.CrashRuns > 0 {
		return r.Opts, fmt.Errorf("sched: resumable exploration is the enumerating engine; sampling and crash sweeps resume via SeededSlice")
	}
	return r.Opts.withDefaults(r.N), nil
}

// Slice advances the discovery pass from state by at most sliceRuns
// claimed runs (0 means no slice bound), returning the advanced state and
// whether discovery is complete. A nil state means RootExploreState().
//
// Slice returns early — with the state of the work done so far, complete
// and resumable — when pause returns true or ctx is canceled: frontier
// items already popped by a worker are processed to completion (their
// results counted, their branches pushed), un-popped items are collected
// back into the state, so nothing is lost or double-counted. The only
// error conditions are invalid options and an exhausted MaxRuns budget
// (which, as in Explore, is terminal rather than resumable).
func (r *ResumableExplorer) Slice(ctx context.Context, state *ExploreState, sliceRuns int, pause func() bool) (*ExploreState, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := r.validate()
	if err != nil {
		return state, false, err
	}
	if state == nil {
		state = RootExploreState()
	}
	if state.done() {
		return state, true, nil
	}

	e := newExplorer(ctx, r.N, r.IDs, opts, r.Build, r.Check, nil)
	e.claimed.Store(state.Claimed)
	e.completed.Store(state.Completed)
	if state.Failure != nil {
		e.best = &exploreFailure{
			choices: append([]int(nil), state.Failure.Choices...),
			err:     state.Failure.Err(),
		}
	}
	if e.memo != nil {
		for _, h := range state.MemoHashes {
			e.memo.insert(h)
		}
	}
	for i, it := range state.Frontier {
		e.pushTo(i%len(e.shards), frontierItem{
			choices: append([]int(nil), it.Choices...),
			sleep:   append([]int(nil), it.Sleep...),
		})
	}
	if sliceRuns > 0 {
		e.sliceLimit = state.Claimed + int64(sliceRuns)
	}
	e.pause = pause
	e.runWorkers()

	if e.budgetHit.Load() {
		return state, false, fmt.Errorf("%w (after %d runs)", ErrExplorationBudget, opts.MaxRuns)
	}
	next := e.collectState()
	return next, next.done(), nil
}

// collectState snapshots an explorer whose workers have exited into a
// serializable state. The frontier is sorted lexicographically so the
// serialized form is a deterministic function of its contents.
func (e *explorer) collectState() *ExploreState {
	st := &ExploreState{
		Claimed:   e.claimed.Load(),
		Completed: e.completed.Load(),
	}
	for _, s := range e.shards {
		s.mu.Lock()
		for _, it := range s.items {
			st.Frontier = append(st.Frontier, FrontierState{Choices: it.choices, Sleep: it.sleep})
		}
		s.mu.Unlock()
	}
	sort.Slice(st.Frontier, func(i, j int) bool {
		return lexLess(st.Frontier[i].Choices, st.Frontier[j].Choices)
	})
	if st.Frontier == nil {
		st.Frontier = []FrontierState{}
	}
	e.mu.Lock()
	if e.best != nil {
		st.Failure = &FailureState{
			Choices: append([]int(nil), e.best.choices...),
			Message: e.best.err.Error(),
			err:     e.best.err,
		}
	}
	e.mu.Unlock()
	if e.memo != nil {
		st.MemoHashes = e.memo.hashes()
	}
	return st
}

// Finalize turns one or more completed discovery states — the one state
// of a single campaign, or the per-shard states of a sharded one — into
// the (count, err) verdict Explore would have returned: the number of
// verified schedules (distinct trace classes when the memo reduction
// merged counts), and on failure the lexicographically smallest violation
// with the count of schedules up to and including it, recomputed by a
// counting pass against the settled global bound. It is an error to
// finalize a state whose frontier has not drained.
func (r *ResumableExplorer) Finalize(ctx context.Context, states ...*ExploreState) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := r.validate()
	if err != nil {
		return 0, err
	}
	if len(states) == 0 {
		return 0, fmt.Errorf("sched: finalize needs at least one exploration state")
	}
	var (
		completed int64
		best      *FailureState
		union     map[uint64]struct{}
	)
	if opts.Reduction == ReductionSleepMemo {
		union = make(map[uint64]struct{})
	}
	for i, st := range states {
		if st == nil {
			return 0, fmt.Errorf("sched: finalize of shard %d: nil exploration state", i)
		}
		if !st.done() {
			return 0, fmt.Errorf("sched: finalize of shard %d: discovery has not drained (%d frontier items left)", i, len(st.Frontier))
		}
		completed += st.Completed
		if st.Failure != nil && (best == nil || lexLess(st.Failure.Choices, best.Choices)) {
			best = st.Failure
		}
		if union != nil {
			for _, h := range st.MemoHashes {
				union[h] = struct{}{}
			}
		}
	}
	if union != nil {
		// Memo mode counts distinct trace classes; shards deduplicate
		// only within themselves, so the merged figure is the union.
		completed = int64(len(union))
	}
	if best == nil {
		return int(completed), nil
	}
	// The counting pass: re-walk the tree pruned against the settled
	// lexicographic bound, exactly as Explore does after discovery. It
	// re-runs schedules already counted, so (as in Explore) it publishes
	// no stats.
	opts.Stats = nil
	recount := newRootExplorer(ctx, r.N, r.IDs, opts, r.Build, nil, best.Choices)
	recount.runWorkers()
	count := int(recount.countBelow.Load()) + 1
	ferr := best.Err()
	if recount.budgetHit.Load() {
		ferr = fmt.Errorf("%w (schedule count truncated: %w)", ferr, ErrExplorationBudget)
	} else if cerr := ctx.Err(); cerr != nil {
		ferr = fmt.Errorf("%w (schedule count truncated: exploration canceled: %w)", ferr, cerr)
	}
	return count, ferr
}

// SeedShards deterministically splits a fresh exploration into m shard
// states whose independent walks union to exactly the single-process
// walk: it expands the tree single-threaded in depth-first order for a
// fixed number of runs (a pure function of m), then deals the resulting
// frontier round-robin — in lexicographic order — across the shards.
// The expansion's own results (counted schedules, any failure, memo
// hashes) are attributed to shard 0 — and so is its stats output: every
// shard re-runs the same deterministic expansion, so shards other than 0
// expand with Opts.Stats stripped and the summed shard totals equal an
// unsharded run's. Shards beyond the frontier size receive empty
// (immediately complete) states.
//
// Each shard of a campaign calls SeedShards itself and keeps only its
// partition: the expansion is deterministic, so coordination-free.
func (r *ResumableExplorer) SeedShards(ctx context.Context, m int) ([]*ExploreState, error) {
	if m < 1 {
		return nil, fmt.Errorf("sched: shard count must be >= 1 (got %d)", m)
	}
	if m == 1 {
		return []*ExploreState{RootExploreState()}, nil
	}
	seed := *r
	seed.Opts.Workers = 1 // single-threaded: the expansion order is the DFS order
	seedRuns := 16 * m
	st, _, err := seed.Slice(ctx, nil, seedRuns, nil)
	if err != nil {
		return nil, fmt.Errorf("sched: shard seeding: %w", err)
	}
	states := make([]*ExploreState, m)
	for i := range states {
		states[i] = &ExploreState{Frontier: []FrontierState{}}
	}
	// Shard 0 carries the expansion's results; the frontier (already
	// lex-sorted by collectState) is dealt round-robin so every shard
	// gets a mix of shallow and deep prefixes.
	states[0].Claimed = st.Claimed
	states[0].Completed = st.Completed
	states[0].Failure = st.Failure
	states[0].MemoHashes = st.MemoHashes
	for j, it := range st.Frontier {
		s := states[j%m]
		s.Frontier = append(s.Frontier, it)
	}
	return states, nil
}

// EqualExploreStates reports whether two states describe the same point
// of the same exploration (used by tests and snapshot verification).
func EqualExploreStates(a, b *ExploreState) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Claimed != b.Claimed || a.Completed != b.Completed || len(a.Frontier) != len(b.Frontier) {
		return false
	}
	for i := range a.Frontier {
		if !slices.Equal(a.Frontier[i].Choices, b.Frontier[i].Choices) ||
			!slices.Equal(a.Frontier[i].Sleep, b.Frontier[i].Sleep) {
			return false
		}
	}
	if (a.Failure == nil) != (b.Failure == nil) {
		return false
	}
	if a.Failure != nil && (a.Failure.Message != b.Failure.Message || !slices.Equal(a.Failure.Choices, b.Failure.Choices)) {
		return false
	}
	return slices.Equal(a.MemoHashes, b.MemoHashes)
}
