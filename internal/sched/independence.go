package sched

import (
	"encoding/binary"
	"hash/fnv"
	"slices"
	"sort"
	"strings"
	"sync"
)

// This file derives the independence (commutation) relation that drives
// partial-order reduction from the op-naming contract of package mem:
// every shared-memory operation is labeled "<object>.<kind>" (for example
// "A.read", "KS.invoke", "T.tas"), and the decide step — the write to the
// process's own write-once output register — is labeled "decide". Two
// pending steps of distinct processes commute when they touch distinct
// objects, or when both only read the same object; swapping two commuting
// adjacent steps changes neither the final shared state nor any value
// returned to a process, so the two schedules are equivalent in the
// Mazurkiewicz-trace sense and only one representative needs executing.
//
// Labels that do not follow the contract (no '.' separator, e.g. the bare
// "noop"/"read"/"write" labels some tests use) are treated as touching one
// global unknown object with writes — i.e. dependent on everything — so
// reduction degrades to exhaustive exploration instead of becoming
// unsound.

// Independence reports whether the pending operations opA of process
// procA and opB of process procB (procA != procB) commute: executing them
// in either order yields the same shared state and the same return
// values. It must be symmetric and sound — claiming independence for two
// conflicting steps makes partial-order reduction skip real schedules.
type Independence func(procA int, opA string, procB int, opB string) bool

// readOnlyKinds are the op-name suffixes of operations that never mutate
// their object; any two of them on the same object commute.
//
// The weak memory models (memmodel.go) decompose a write into a
// "write-start"/"write-commit" step pair. Neither kind appears here, so
// both phases conflict with every other op on the same object exactly as
// a one-step "write" does — the relation consults the model's op labels
// and stays conservatively sound without model-specific cases, at the
// cost of exploring the (deliberately larger) weak-model state space.
var readOnlyKinds = map[string]bool{
	"read":     true,
	"snapshot": true,
}

// opFootprint parses an operation label into the object it touches.
// perProc marks labels (currently only "decide") whose object is private
// to the invoking process, so that invocations by distinct processes
// never conflict. known is false for labels outside the naming contract,
// which callers must treat as conflicting with everything.
func opFootprint(op string) (object string, perProc, readOnly, known bool) {
	if op == "decide" {
		return "decide", true, false, true
	}
	i := strings.LastIndexByte(op, '.')
	if i < 0 {
		return "", false, false, false
	}
	return op[:i], false, readOnlyKinds[op[i+1:]], true
}

// OpIndependent is the Independence relation used by ExploreOptions.
// Reduction: steps of distinct processes commute iff they touch distinct
// objects (per the "<object>.<kind>" naming contract, with "decide"
// touching a per-process output register) or are both read-only
// operations on the same object. Unrecognized labels conflict with
// everything (sound fallback).
func OpIndependent(procA int, opA string, procB int, opB string) bool {
	if procA == procB {
		return false
	}
	objA, perA, roA, okA := opFootprint(opA)
	objB, perB, roB, okB := opFootprint(opB)
	if !okA || !okB {
		return false
	}
	if perA != perB {
		return true // a per-process object never aliases a named object
	}
	if perA {
		return true // same per-process label, distinct processes
	}
	if objA != objB {
		return true
	}
	return roA && roB
}

// dependentStep reports whether recorded steps a and b conflict: same
// process (program order) or non-commuting operations.
func dependentStep(a, b Step, indep Independence) bool {
	if a.Proc == b.Proc {
		return true
	}
	return !indep(a.Proc, a.Op, b.Proc, b.Op)
}

// CanonicalTraceHash hashes the Foata normal form of a completed run's
// step sequence under indep. Equivalent schedules — those differing only
// by swaps of adjacent independent steps — have identical normal forms,
// so the hash identifies the run's Mazurkiewicz trace class (and, for the
// deterministic protocols this engine executes, the final register
// contents, which are a function of the class). The memo layer of the
// reduction uses it to avoid double-counting a class.
func CanonicalTraceHash(schedule []Step, indep Independence) uint64 {
	// Foata normal form: place each step in the level just below the
	// deepest level holding a step it depends on. Steps within a level
	// are pairwise independent, hence from distinct processes, and are
	// canonically ordered by process index.
	var levels [][]Step
	for _, s := range schedule {
		d := 0
		for l := len(levels); l >= 1; l-- {
			if levelDepends(levels[l-1], s, indep) {
				d = l
				break
			}
		}
		if d == len(levels) {
			levels = append(levels, nil)
		}
		levels[d] = append(levels[d], s)
	}
	h := fnv.New64a()
	var buf [4]byte
	for _, level := range levels {
		sort.Slice(level, func(i, j int) bool { return level[i].Proc < level[j].Proc })
		for _, s := range level {
			binary.LittleEndian.PutUint32(buf[:], uint32(s.Proc))
			h.Write(buf[:])
			h.Write([]byte(s.Op))
			h.Write([]byte{0})
		}
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

func levelDepends(level []Step, s Step, indep Independence) bool {
	for _, u := range level {
		if dependentStep(u, s, indep) {
			return true
		}
	}
	return false
}

// traceMemo is the optional second reduction layer: a concurrent set of
// canonical trace hashes. The count it yields — the number of distinct
// classes — is independent of which worker inserts a class first.
type traceMemo struct {
	mu   sync.Mutex
	seen map[uint64]struct{}
}

func newTraceMemo() *traceMemo {
	return &traceMemo{seen: make(map[uint64]struct{})}
}

// admit records h and reports whether it was new.
func (m *traceMemo) admit(h uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.seen[h]; dup {
		return false
	}
	m.seen[h] = struct{}{}
	return true
}

// insert records h without reporting novelty (checkpoint restore).
func (m *traceMemo) insert(h uint64) {
	m.mu.Lock()
	m.seen[h] = struct{}{}
	m.mu.Unlock()
}

// hashes returns the recorded class hashes in ascending order, so a
// serialized memo is a deterministic function of its contents.
func (m *traceMemo) hashes() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.seen))
	for h := range m.seen {
		out = append(out, h) //gsb:nondeterminism-ok canonicalized by the slices.Sort below before anything observes the order
	}
	slices.Sort(out)
	return out
}
