package sched

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

// sliceToCompletion drives a ResumableExplorer in slices of sliceRuns
// through a JSON round-trip at every checkpoint — the in-process
// equivalent of kill + resume-from-snapshot at each pause point.
func sliceToCompletion(t *testing.T, r *ResumableExplorer, state *ExploreState, sliceRuns int) *ExploreState {
	t.Helper()
	for slices := 0; ; slices++ {
		if slices > 1<<20 {
			t.Fatal("sliced exploration failed to make progress")
		}
		next, done, err := r.Slice(context.Background(), state, sliceRuns, nil)
		if err != nil {
			t.Fatalf("slice %d: %v", slices, err)
		}
		b, jerr := json.Marshal(next)
		if jerr != nil {
			t.Fatalf("slice %d: marshal: %v", slices, jerr)
		}
		restored := &ExploreState{}
		if jerr := json.Unmarshal(b, restored); jerr != nil {
			t.Fatalf("slice %d: unmarshal: %v", slices, jerr)
		}
		if !EqualExploreStates(next, restored) {
			t.Fatalf("slice %d: state did not survive the JSON round-trip", slices)
		}
		state = restored
		if done {
			return state
		}
	}
}

// TestExploreSliceResumeMatchesExplore drives the resumable engine in
// tiny slices — serializing and restoring the state at every checkpoint —
// and asserts the finalized (count, verdict) pair is identical to the
// one-shot engine's, for every reduction mode and worker count, on both
// a clean tree and one with property violations.
func TestExploreSliceResumeMatchesExplore(t *testing.T) {
	const n = 3
	protocols := []struct {
		name  string
		build func() Body
		check func(*Result) error
	}{
		{"clean", stepsBody2(n, 2), func(*Result) error { return nil }},
		{"racy", raceBody(n), distinctOutputs},
	}
	for _, p := range protocols {
		for _, reduction := range []Reduction{ReductionNone, ReductionSleepSets, ReductionSleepMemo} {
			for _, workers := range []int{1, 2, 8} {
				opts := ExploreOptions{Workers: workers, MaxSteps: 1000, Reduction: reduction}
				wantCount, wantErr := Explore(context.Background(), n, DefaultIDs(n), opts, p.build, p.check)

				r := &ResumableExplorer{N: n, IDs: DefaultIDs(n), Opts: opts, Build: p.build, Check: p.check}
				final := sliceToCompletion(t, r, nil, 7)
				gotCount, gotErr := r.Finalize(context.Background(), final)

				if gotCount != wantCount || errText(gotErr) != errText(wantErr) {
					t.Errorf("%s reduction=%v workers=%d: sliced (%d, %q), one-shot (%d, %q)",
						p.name, reduction, workers, gotCount, errText(gotErr), wantCount, errText(wantErr))
				}
			}
		}
	}
}

// stepsBody2 adapts stepsBody (k noop steps + decide) to a build func
// independent of n (stepsBody already is; this names the intent).
func stepsBody2(_, k int) func() Body {
	return func() Body { return stepsBody(k) }
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestSeedShardsMergeMatchesExplore splits explorations into m shard
// states, runs every shard independently to completion (each through its
// own checkpoint slices), and asserts the merged verdict is identical to
// the single-process one — for clean and failing trees, every reduction,
// several shard counts.
func TestSeedShardsMergeMatchesExplore(t *testing.T) {
	const n = 3
	protocols := []struct {
		name  string
		build func() Body
		check func(*Result) error
	}{
		{"clean", stepsBody2(n, 2), func(*Result) error { return nil }},
		{"racy", raceBody(n), distinctOutputs},
	}
	for _, p := range protocols {
		for _, reduction := range []Reduction{ReductionNone, ReductionSleepSets, ReductionSleepMemo} {
			for _, m := range []int{1, 3, 5} {
				opts := ExploreOptions{Workers: 2, MaxSteps: 1000, Reduction: reduction}
				wantCount, wantErr := Explore(context.Background(), n, DefaultIDs(n), opts, p.build, p.check)

				r := &ResumableExplorer{N: n, IDs: DefaultIDs(n), Opts: opts, Build: p.build, Check: p.check}
				states, err := r.SeedShards(context.Background(), m)
				if err != nil {
					t.Fatalf("%s reduction=%v m=%d: seed: %v", p.name, reduction, m, err)
				}
				if len(states) != m {
					t.Fatalf("%s reduction=%v m=%d: got %d shard states", p.name, reduction, m, len(states))
				}
				finals := make([]*ExploreState, m)
				for i, st := range states {
					finals[i] = sliceToCompletion(t, r, st, 11)
				}
				gotCount, gotErr := r.Finalize(context.Background(), finals...)
				if gotCount != wantCount || errText(gotErr) != errText(wantErr) {
					t.Errorf("%s reduction=%v m=%d: merged (%d, %q), one-shot (%d, %q)",
						p.name, reduction, m, gotCount, errText(gotErr), wantCount, errText(wantErr))
				}
			}
		}
	}
}

// TestExploreSlicePause asserts a pause returns a resumable mid-flight
// state: pausing immediately leaves work pending, and resuming completes
// to the one-shot outcome.
func TestExploreSlicePause(t *testing.T) {
	const n = 3
	build, check := stepsBody2(n, 2), func(*Result) error { return nil }
	opts := ExploreOptions{Workers: 2, MaxSteps: 1000}
	want, _ := Explore(context.Background(), n, DefaultIDs(n), opts, build, check)

	r := &ResumableExplorer{N: n, IDs: DefaultIDs(n), Opts: opts, Build: build, Check: check}
	// A pause that fires after the first few claims: the slice must stop
	// early with a non-empty frontier (the tree has 1680 schedules).
	st, done, err := r.Slice(context.Background(), nil, 0, func() bool { return true })
	if err != nil {
		t.Fatalf("paused slice: %v", err)
	}
	if done {
		t.Fatalf("pause-at-start completed the whole 1680-schedule tree")
	}
	final := sliceToCompletion(t, r, st, 100)
	got, gerr := r.Finalize(context.Background(), final)
	if gerr != nil || got != want {
		t.Fatalf("resumed after pause: (%d, %v), want (%d, nil)", got, gerr, want)
	}
}

// TestSeededSliceResumeMatchesExploreSeeded drives the seeded pool in
// slices and shards and asserts outcome equality with ExploreSeeded:
// same failing run (the protocol fails on a seeded subset of runs), same
// completed counts, at several worker counts.
func TestSeededSliceResumeMatchesExploreSeeded(t *testing.T) {
	const n, total = 3, 200
	build := func() Body { return stepsBody(2) }
	policyFor := func(i int) Policy { return NewRandom(DeriveRunSeed(7, i)) }
	// Fail deterministically on runs whose index is 3 mod 17: the
	// reference stops at run 3; shard merges must agree.
	visit := func(i int, res *Result, err error) error {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i%17 == 3 {
			return &testRunError{i}
		}
		return nil
	}
	for _, workers := range []int{1, 2, 8} {
		opts := ExploreOptions{Workers: workers, MaxSteps: 1000}
		wantCount, wantErr := ExploreSeeded(context.Background(), n, DefaultIDs(n), opts, total, policyFor, build, visit)

		// Sliced single shard with JSON round-trips between slices.
		var st *SeededState
		for {
			next, done, err := SeededSlice(context.Background(), n, DefaultIDs(n), opts, total, policyFor, build, visit, st, 13, nil)
			if err != nil {
				t.Fatalf("workers=%d: slice: %v", workers, err)
			}
			b, _ := json.Marshal(next)
			st = &SeededState{}
			if err := json.Unmarshal(b, st); err != nil {
				t.Fatalf("workers=%d: round-trip: %v", workers, err)
			}
			if done {
				break
			}
		}
		gotCount, gotErr := st.Failure.Run+1, st.Failure.Err()
		if gotCount != wantCount || errText(gotErr) != errText(wantErr) {
			t.Errorf("workers=%d: sliced (%d, %q), one-shot (%d, %q)", workers, gotCount, errText(gotErr), wantCount, errText(wantErr))
		}

		// 3-way sharded: the minimum failing global index across shards
		// must be the reference's failing run.
		best := -1
		for shard := 0; shard < 3; shard++ {
			st := &SeededState{Shard: shard, Of: 3}
			for {
				next, done, err := SeededSlice(context.Background(), n, DefaultIDs(n), opts, total, policyFor, build, visit, st, 9, nil)
				if err != nil {
					t.Fatalf("workers=%d shard=%d: %v", workers, shard, err)
				}
				st = next
				if done {
					break
				}
			}
			if st.Failure != nil && (best < 0 || st.Failure.Run < best) {
				best = st.Failure.Run
			}
		}
		if best+1 != wantCount {
			t.Errorf("workers=%d: sharded smallest failing run %d, one-shot count %d", workers, best, wantCount)
		}
	}
}

type testRunError struct{ run int }

func (e *testRunError) Error() string { return "seeded test failure at run " + itoa(e.run) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestSeedShardsDeterministic asserts the shard split is a pure function
// of (protocol, options, m): two invocations agree item for item.
func TestSeedShardsDeterministic(t *testing.T) {
	const n = 3
	r := &ResumableExplorer{
		N: n, IDs: DefaultIDs(n),
		Opts:  ExploreOptions{Workers: 4, MaxSteps: 1000, Reduction: ReductionSleepSets},
		Build: raceBody(n), Check: nil,
	}
	a, err := r.SeedShards(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SeedShards(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !EqualExploreStates(a[i], b[i]) {
			t.Errorf("shard %d differs between two deterministic seedings", i)
		}
	}
}

// TestExploreSliceRandomKill interleaves random pause points (killing the
// in-memory engine, resuming only from the serialized state) and asserts
// the final outcome never deviates from the one-shot engine.
func TestExploreSliceRandomKill(t *testing.T) {
	const n = 3
	rng := rand.New(rand.NewSource(42))
	build, check := raceBody(n), distinctOutputs
	opts := ExploreOptions{Workers: 2, MaxSteps: 1000, Reduction: ReductionSleepSets}
	wantCount, wantErr := Explore(context.Background(), n, DefaultIDs(n), opts, build, check)
	for trial := 0; trial < 5; trial++ {
		r := &ResumableExplorer{N: n, IDs: DefaultIDs(n), Opts: opts, Build: build, Check: check}
		var state *ExploreState
		for {
			next, done, err := r.Slice(context.Background(), state, 1+rng.Intn(9), nil)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			b, _ := json.Marshal(next)
			state = &ExploreState{}
			if err := json.Unmarshal(b, state); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if done {
				break
			}
		}
		gotCount, gotErr := r.Finalize(context.Background(), state)
		if gotCount != wantCount || errText(gotErr) != errText(wantErr) {
			t.Errorf("trial %d: (%d, %q), want (%d, %q)", trial, gotCount, errText(gotErr), wantCount, errText(wantErr))
		}
	}
}
