package sched

import (
	"fmt"
	"math"
	"math/rand"
)

// Decision is a scheduling choice: grant the pending step of Proc, or
// crash Proc instead (the process never takes another step).
type Decision struct {
	Proc  int
	Crash bool
	// Abort discards the rest of the run: the runner crashes every
	// remaining process to unwind their goroutines and Run returns
	// ErrRunAborted. The partial-order-reduction policy uses it to cut
	// short runs whose every continuation is provably explored
	// elsewhere. Proc and Crash are ignored when Abort is set.
	Abort bool
	// Err, when non-nil with Abort set, is returned by Run in place of
	// ErrRunAborted: the policy is reporting a structured failure, not a
	// routine prune. The prefix-replay policies use it to surface a
	// diverging replay (ErrScheduleDiverged — a non-deterministic
	// protocol) as a clean per-run error instead of a panic that would
	// kill an exploration worker. Ignored when Abort is false.
	Err error
}

// Policy chooses the next scheduling decision. pending is the sorted list
// of process indexes with a pending operation; stepNo is the number of
// operation steps granted so far. Policies must be deterministic functions
// of their own state so that runs are reproducible.
//
// The pending slice (and the ops slice of OpAwarePolicy) is the runner's
// reusable scratch buffer: it is valid only for the duration of the call
// and is overwritten by the next decision. Policies that keep it must
// copy it (every recording policy in this repository does).
type Policy interface {
	Next(pending []int, stepNo int) Decision
}

// OpAwarePolicy is an optional Policy extension. When a policy implements
// it, the runner calls NextOps instead of Next, additionally passing the
// label of each pending operation: ops[i] names the operation process
// pending[i] is blocked on (the name given to Proc.Exec, e.g. "A.read").
// A process's requested operation cannot change while it is pending, so
// the labels are exactly the steps the adversary is choosing among.
// Partial-order reduction uses them to decide which pending steps
// commute.
type OpAwarePolicy interface {
	Policy
	NextOps(pending []int, ops []string, stepNo int) Decision
}

// RoundRobin grants steps to pending processes in cyclic index order.
type RoundRobin struct {
	last int
}

// NewRoundRobin returns a fair deterministic policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next implements Policy.
//
//gsb:hotpath
func (rr *RoundRobin) Next(pending []int, _ int) Decision {
	for _, p := range pending {
		if p > rr.last {
			rr.last = p
			return Decision{Proc: p}
		}
	}
	rr.last = pending[0]
	return Decision{Proc: pending[0]}
}

// Random grants steps uniformly at random among pending processes, using
// a seeded generator for reproducibility.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Policy.
//
//gsb:hotpath
func (r *Random) Next(pending []int, _ int) Decision {
	return Decision{Proc: pending[r.rng.Intn(len(pending))]}
}

// RandomCrash behaves like Random but additionally crashes processes with
// probability crashProb per decision, up to maxCrashes crashes in total
// (the wait-free model allows up to n-1).
type RandomCrash struct {
	rng        *rand.Rand
	crashProb  float64
	maxCrashes int
	crashes    int
}

// NewRandomCrash returns a seeded random policy with crash injection.
func NewRandomCrash(seed int64, crashProb float64, maxCrashes int) *RandomCrash {
	if math.IsNaN(crashProb) || crashProb < 0 || crashProb > 1 {
		panic(fmt.Sprintf("sched: crashProb %v outside [0,1]", crashProb))
	}
	return &RandomCrash{
		rng:        rand.New(rand.NewSource(seed)),
		crashProb:  crashProb,
		maxCrashes: maxCrashes,
	}
}

// Next implements Policy.
//
//gsb:hotpath
func (r *RandomCrash) Next(pending []int, _ int) Decision {
	p := pending[r.rng.Intn(len(pending))]
	if r.crashes < r.maxCrashes && r.rng.Float64() < r.crashProb {
		r.crashes++
		return Decision{Proc: p, Crash: true}
	}
	return Decision{Proc: p}
}

// Script replays a fixed sequence of decisions, then falls back to
// round-robin when the script is exhausted (so that recorded schedules of
// shorter runs still drive longer replays to completion).
type Script struct {
	steps []Decision
	pos   int
	rr    *RoundRobin
}

// NewScript returns a scripted policy.
func NewScript(steps []Decision) *Script {
	return &Script{steps: append([]Decision(nil), steps...), rr: NewRoundRobin()}
}

// ScriptFromSchedule converts a recorded schedule into a script that
// replays it.
func ScriptFromSchedule(schedule []Step) *Script {
	steps := make([]Decision, 0, len(schedule))
	for _, s := range schedule {
		steps = append(steps, Decision{Proc: s.Proc, Crash: s.Crash})
	}
	return NewScript(steps)
}

// PermutedSchedule maps the process indexes of a recorded schedule through
// perm (new index = perm[old index]); used to replay a run r as the run
// r_pi of the index-independence definition (Section 2.2).
func PermutedSchedule(schedule []Step, perm []int) []Step {
	out := make([]Step, len(schedule))
	for i, s := range schedule {
		out[i] = Step{Proc: perm[s.Proc], Op: s.Op, Crash: s.Crash}
	}
	return out
}

// Next implements Policy.
//
//gsb:hotpath
func (s *Script) Next(pending []int, stepNo int) Decision {
	for s.pos < len(s.steps) {
		d := s.steps[s.pos]
		s.pos++
		for _, p := range pending {
			if p == d.Proc {
				return d
			}
		}
		// The scripted process has already finished; skip the entry.
	}
	return s.rr.Next(pending, stepNo)
}

// CrashAt wraps a policy and crashes process proc just before it would
// take its (k+1)-th step (k = stepsBeforeCrash); with k = 0 the process
// never participates.
type CrashAt struct {
	Inner            Policy
	Proc             int
	StepsBeforeCrash int

	taken   int
	crashed bool
}

// Next implements Policy. The crash guard runs before the inner policy
// is consulted: once proc has taken StepsBeforeCrash steps, the first
// decision at which it is pending again crashes it, so the inner policy
// can never over-grant the target — no steering of the inner policy is
// needed. (An inner policy that itself crashes proc early, e.g.
// RandomCrash, simply preempts the scripted crash.)
//
//gsb:hotpath
func (c *CrashAt) Next(pending []int, stepNo int) Decision {
	if !c.crashed {
		for _, p := range pending {
			if p == c.Proc && c.taken >= c.StepsBeforeCrash {
				c.crashed = true
				return Decision{Proc: c.Proc, Crash: true}
			}
		}
	}
	d := c.Inner.Next(pending, stepNo)
	if d.Proc == c.Proc {
		if d.Crash {
			c.crashed = true // the inner policy crashed the target itself
		} else if !c.crashed {
			c.taken++
		}
	}
	return d
}
