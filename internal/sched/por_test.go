package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// regBody returns a build function where every process performs k writes
// to its own private register ("r<i>.write") and decides: all cross-
// process steps commute, so the whole schedule tree is one Mazurkiewicz
// trace class.
func regBody(k int) func() Body {
	return func() Body {
		return func(p *Proc) {
			name := fmt.Sprintf("r%d.write", p.Index())
			for i := 0; i < k; i++ {
				p.Exec(name, func() any { return nil })
			}
			p.Decide(p.ID())
		}
	}
}

// mixedBody returns a build function mixing conflicting steps (writes to
// the shared object "X") with commuting ones (a write to the process's
// own register): the class count is strictly between 1 and the full
// interleaving count.
func mixedBody() func() Body {
	return func() Body {
		shared := 0
		return func(p *Proc) {
			p.Exec(fmt.Sprintf("r%d.write", p.Index()), func() any { return nil })
			v := p.Exec("X.read", func() any { return shared }).(int)
			p.Exec("X.write", func() any { shared = v + 1; return nil })
			p.Decide(p.ID())
		}
	}
}

func TestOpIndependent(t *testing.T) {
	cases := []struct {
		pa   int
		a    string
		pb   int
		b    string
		want bool
	}{
		{0, "A.read", 1, "A.read", true},      // read/read same object
		{0, "A.read", 1, "A.snapshot", true},  // both read-only
		{0, "A.read", 1, "A.write", false},    // read/write conflict
		{0, "A.write", 1, "A.write", false},   // write/write conflict
		{0, "A.write", 1, "B.write", true},    // distinct objects
		{0, "T.tas", 1, "T.tas", false},       // oracle mutates
		{0, "KS.invoke", 1, "A.read", true},   // distinct objects
		{0, "decide", 1, "decide", true},      // per-process outputs
		{0, "decide", 1, "A.write", true},     // output reg vs object
		{0, "noop", 1, "noop", false},         // outside the contract
		{0, "read", 1, "A.read", false},       // unlabeled conflicts
		{0, "A.read", 0, "A.read", false},     // same process: program order
		{0, "decide", 1, "decide.read", true}, // per-proc label never aliases an object
	}
	for _, tc := range cases {
		if got := OpIndependent(tc.pa, tc.a, tc.pb, tc.b); got != tc.want {
			t.Errorf("OpIndependent(%d,%q,%d,%q) = %v, want %v", tc.pa, tc.a, tc.pb, tc.b, got, tc.want)
		}
		if got := OpIndependent(tc.pb, tc.b, tc.pa, tc.a); got != tc.want {
			t.Errorf("OpIndependent not symmetric on (%q,%q)", tc.a, tc.b)
		}
	}
}

func TestCanonicalTraceHash(t *testing.T) {
	// Swapping adjacent independent steps preserves the hash; swapping
	// dependent ones changes it.
	a := []Step{{Proc: 0, Op: "A.write"}, {Proc: 1, Op: "B.write"}, {Proc: 0, Op: "X.read"}}
	b := []Step{{Proc: 1, Op: "B.write"}, {Proc: 0, Op: "A.write"}, {Proc: 0, Op: "X.read"}}
	if CanonicalTraceHash(a, OpIndependent) != CanonicalTraceHash(b, OpIndependent) {
		t.Error("equivalent schedules hash differently")
	}
	c := []Step{{Proc: 0, Op: "X.write"}, {Proc: 1, Op: "X.write"}}
	d := []Step{{Proc: 1, Op: "X.write"}, {Proc: 0, Op: "X.write"}}
	if CanonicalTraceHash(c, OpIndependent) == CanonicalTraceHash(d, OpIndependent) {
		t.Error("conflicting writes in either order hash equal")
	}
}

// TestPORIndependentCollapse: with fully commuting bodies the reduced
// walk executes exactly one schedule per worker count, where the
// exhaustive tree has hundreds.
func TestPORIndependentCollapse(t *testing.T) {
	const n, k = 3, 2
	exhaustive, err := Explore(context.Background(), n, DefaultIDs(n),
		ExploreOptions{Workers: 1, MaxSteps: 1000}, regBody(k), nil)
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive < 100 {
		t.Fatalf("exhaustive count %d unexpectedly small; test is vacuous", exhaustive)
	}
	for _, red := range []Reduction{ReductionSleepSets, ReductionSleepMemo} {
		for _, workers := range []int{1, 2, 8} {
			got, err := Explore(context.Background(), n, DefaultIDs(n),
				ExploreOptions{Workers: workers, MaxSteps: 1000, Reduction: red}, regBody(k), nil)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", red, workers, err)
			}
			if got != 1 {
				t.Errorf("%v workers=%d: %d schedules, want 1 (all steps commute)", red, workers, got)
			}
		}
	}
}

// classCount exhaustively explores build and counts distinct Mazurkiewicz
// trace classes among the completed schedules — the ground truth the
// reduced walk must reproduce exactly.
func classCount(t *testing.T, n int, build func() Body) int {
	t.Helper()
	var mu sync.Mutex
	classes := map[uint64]struct{}{}
	_, err := Explore(context.Background(), n, DefaultIDs(n),
		ExploreOptions{Workers: 1, MaxSteps: 1000}, build,
		func(res *Result) error {
			mu.Lock()
			classes[CanonicalTraceHash(res.Schedule, OpIndependent)] = struct{}{}
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return len(classes)
}

// TestPORCountsTraceClasses: on a protocol mixing commuting and
// conflicting steps, the reduced count equals the number of trace
// classes of the exhaustive tree — sleep sets prune every duplicate
// interleaving and nothing else — at every worker count.
func TestPORCountsTraceClasses(t *testing.T) {
	for _, n := range []int{2, 3} {
		want := classCount(t, n, mixedBody())
		if want < 2 {
			t.Fatalf("n=%d: only %d classes; test is vacuous", n, want)
		}
		for _, red := range []Reduction{ReductionSleepSets, ReductionSleepMemo} {
			for _, workers := range []int{1, 2, 8} {
				got, err := Explore(context.Background(), n, DefaultIDs(n),
					ExploreOptions{Workers: workers, MaxSteps: 1000, Reduction: red}, mixedBody(), nil)
				if err != nil {
					t.Fatalf("n=%d %v workers=%d: %v", n, red, workers, err)
				}
				if got != want {
					t.Errorf("n=%d %v workers=%d: %d schedules, want %d trace classes", n, red, workers, got, want)
				}
			}
		}
	}
}

// TestPORConservativeOnUnlabeledOps: bodies whose op labels are outside
// the "<object>.<kind>" contract (plus conflicting decides would not
// exist) must not be reduced beyond their true class structure; with
// every non-decide step conflicting, the reduction only collapses decide
// reorderings and stays sound.
func TestPORConservativeOnUnlabeledOps(t *testing.T) {
	const n = 2
	want := classCount(t, n, raceBody(n))
	got, err := Explore(context.Background(), n, DefaultIDs(n),
		ExploreOptions{Workers: 1, MaxSteps: 1000, Reduction: ReductionSleepSets}, raceBody(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("reduced count %d, want %d trace classes", got, want)
	}
}

// TestPORDeterministicViolation: the reduced exploration reports exactly
// the same lexicographically smallest violating schedule as the
// exhaustive engine, at every worker count (the lex-min violating run is
// the minimal member of its trace class, which sleep sets always
// explore).
func TestPORDeterministicViolation(t *testing.T) {
	const n = 3
	_, wantErr := Explore(context.Background(), n, DefaultIDs(n),
		ExploreOptions{Workers: 1, MaxSteps: 1000}, raceBody(n), distinctOutputs)
	if wantErr == nil {
		t.Fatal("exhaustive exploration missed the lost-update schedules")
	}
	for _, red := range []Reduction{ReductionSleepSets, ReductionSleepMemo} {
		for _, workers := range []int{1, 2, 8} {
			_, err := Explore(context.Background(), n, DefaultIDs(n),
				ExploreOptions{Workers: workers, MaxSteps: 1000, Reduction: red}, raceBody(n), distinctOutputs)
			if err == nil {
				t.Fatalf("%v workers=%d: reduced exploration missed the violation", red, workers)
			}
			if err.Error() != wantErr.Error() {
				t.Errorf("%v workers=%d: violation %q, want %q", red, workers, err, wantErr)
			}
		}
	}
}

// TestExploreOptionsValidation: bad options must surface as
// ErrInvalidOptions from both entry points before any run executes —
// notably a CrashProb outside [0,1], which previously panicked inside a
// worker goroutine via NewRandomCrash.
func TestExploreOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts ExploreOptions
	}{
		{"crashprob>1", ExploreOptions{CrashRuns: 10, CrashProb: 1.5}},
		{"crashprob<0", ExploreOptions{CrashRuns: 10, CrashProb: -0.1}},
		{"negative-maxruns", ExploreOptions{MaxRuns: -1}},
		{"negative-maxsteps", ExploreOptions{MaxSteps: -5}},
		{"negative-crashruns", ExploreOptions{CrashRuns: -2}},
		{"unknown-reduction", ExploreOptions{Reduction: Reduction(99)}},
	}
	build := func() Body { return stepsBody(1) }
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			count, err := Explore(context.Background(), 2, DefaultIDs(2), tc.opts, build, nil)
			if !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("Explore err = %v, want ErrInvalidOptions", err)
			}
			if count != 0 {
				t.Errorf("Explore count = %d, want 0", count)
			}
			if tc.opts.CrashRuns != 0 { // ExploreCrashes is also a public entry point
				if _, err := ExploreCrashes(context.Background(), 2, DefaultIDs(2), tc.opts, build, nil); !errors.Is(err, ErrInvalidOptions) {
					t.Fatalf("ExploreCrashes err = %v, want ErrInvalidOptions", err)
				}
			}
		})
	}
}

// TestExploreCrashSweepCanceledCount: on cancellation the sweep must
// report the number of runs that actually executed, not the number of
// claimed run indices (claiming races ahead of execution by up to one
// per worker).
func TestExploreCrashSweepCanceledCount(t *testing.T) {
	const n, runs = 3, 10000
	var executed atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	build := func() Body {
		executed.Add(1)
		return func(p *Proc) { p.Decide(p.ID()) }
	}
	stop := func(res *Result) error {
		if executed.Load() >= 20 {
			cancel()
		}
		return nil
	}
	count, err := ExploreCrashes(ctx, n, DefaultIDs(n),
		ExploreOptions{Workers: 4, CrashRuns: runs, CrashProb: 0.05, Seed: 1}, build, stop)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every run that called build ran to completion before wg.Wait
	// returned, so the reported count must equal the executed count.
	if int64(count) != executed.Load() {
		t.Errorf("count = %d, want the %d executed runs", count, executed.Load())
	}
	if count >= runs {
		t.Errorf("count = %d, want an early cancellation well below %d", count, runs)
	}
}

// TestCrashAtExactStep: CrashAt must crash the target exactly before its
// (k+1)-th step, for every k, as its doc promises.
func TestCrashAtExactStep(t *testing.T) {
	const n, steps = 3, 6
	body := func(p *Proc) {
		for i := 0; i < steps; i++ {
			p.Exec("noop", func() any { return nil })
		}
		p.Decide(p.ID())
	}
	for k := 0; k <= 4; k++ {
		policy := &CrashAt{Inner: NewRoundRobin(), Proc: 1, StepsBeforeCrash: k}
		res, err := NewRunner(n, DefaultIDs(n), policy).Run(body)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Crashed[1] {
			t.Fatalf("k=%d: process 1 was not crashed", k)
		}
		taken := 0
		for _, s := range res.Schedule {
			if s.Proc == 1 && !s.Crash {
				taken++
			}
		}
		if taken != k {
			t.Errorf("k=%d: process 1 took %d steps before the crash, want exactly %d", k, taken, k)
		}
	}
}

// TestPORBudgetReported: with reduction on, MaxRuns bounds executed runs
// (including pruned probes) and budget exhaustion still reports
// ErrExplorationBudget.
func TestPORBudgetReported(t *testing.T) {
	_, err := Explore(context.Background(), 3, DefaultIDs(3),
		ExploreOptions{Workers: 2, MaxRuns: 3, MaxSteps: 1000, Reduction: ReductionSleepSets},
		mixedBody(), nil)
	if !errors.Is(err, ErrExplorationBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error %q does not mention the budget", err)
	}
}
