package sched

import (
	"errors"
	"fmt"
)

// This file is the partial-order-reduction layer of the exploration
// engine: a sleep-set walk of the schedule tree (Godefroid-style, adapted
// to stateless prefix re-execution) plus an optional canonical-trace memo
// (independence.go).
//
// The exhaustive tree branches at every decision point on every pending
// process, so k mutually commuting steps are re-explored under all k!
// orders. Sleep sets prune exactly those re-explorations: after the
// engine explores the subtree that schedules process p at a node, the
// sibling subtrees carry p in their sleep set — "p's pending step is
// covered elsewhere; do not schedule it until some step that conflicts
// with it executes". A schedule is therefore pruned only when an
// equivalent schedule (same Mazurkiewicz trace) is explored under a
// lexicographically smaller choice sequence, which preserves both the
// engine's verdict and its lex-min violation report.
//
// A descent can reach a node where every pending process is asleep; the
// runs that continue from it are all covered elsewhere, so the policy
// aborts the run (Decision.Abort -> ErrRunAborted). Aborted probes count
// against MaxRuns — they did execute — but are not schedules.

// Reduction selects the partial-order reduction applied by Explore to
// exhaustive (failure-free) exploration. Crash sweep mode ignores it.
type Reduction int

const (
	// ReductionNone explores the schedule tree exhaustively (the
	// default; one run per interleaving).
	ReductionNone Reduction = iota
	// ReductionSleepSets prunes the frontier with sleep sets over the
	// OpIndependent commutation relation: one run per Mazurkiewicz
	// trace class, the class's lexicographically smallest member.
	ReductionSleepSets
	// ReductionSleepMemo is ReductionSleepSets plus a canonical-trace
	// memo that refuses to count a trace class twice (a cross-check
	// layer; with sound sleep sets it changes no counts).
	ReductionSleepMemo
)

// String implements fmt.Stringer.
func (r Reduction) String() string {
	switch r {
	case ReductionNone:
		return "none"
	case ReductionSleepSets:
		return "sleep-sets"
	case ReductionSleepMemo:
		return "sleep-sets+memo"
	default:
		return fmt.Sprintf("Reduction(%d)", int(r))
	}
}

func (r Reduction) valid() bool {
	return r >= ReductionNone && r <= ReductionSleepMemo
}

// ErrRunAborted is returned by Runner.Run when the policy discards the
// rest of a run via Decision.Abort. The exploration engine treats such
// runs as pruned probes: they consume run budget but are not schedules.
var ErrRunAborted = errors.New("sched: run aborted by the scheduling policy")

// porPolicy is the sleep-set variant of explorePolicy: it replays a fixed
// prefix of choices, then descends picking the smallest pending process
// that is not asleep, maintaining the sleep set across decisions and
// recording everything branch generation needs. It implements
// OpAwarePolicy to learn the label of every pending operation; without
// labels (plain Next) all steps are treated as conflicting and the walk
// degrades to the exhaustive one.
type porPolicy struct {
	indep  Independence
	prefix []int
	sleep0 []int // sleep set at the node reached after prefix

	choices []int
	// Recorded per post-prefix decision, aligned with
	// choices[len(prefix):]:
	pendings [][]int    // pending process set (sorted)
	opss     [][]string // pending op labels, aligned with pendings
	sleeps   [][]int    // sleep set at the node (sorted)

	cur     []int // current sleep set during the descent
	started bool
	aborted bool
}

// Next implements Policy (no op labels: conservative, no reduction).
func (e *porPolicy) Next(pending []int, stepNo int) Decision {
	return e.decide(pending, nil, stepNo)
}

// NextOps implements OpAwarePolicy.
func (e *porPolicy) NextOps(pending []int, ops []string, stepNo int) Decision {
	return e.decide(pending, ops, stepNo)
}

func (e *porPolicy) decide(pending []int, ops []string, _ int) Decision {
	step := len(e.choices)
	if step < len(e.prefix) {
		pick := e.prefix[step]
		if !containsSorted(pending, pick) {
			return Decision{Abort: true, Err: fmt.Errorf("%w: exploration prefix chose %d but pending is %v", ErrScheduleDiverged, pick, pending)}
		}
		e.choices = append(e.choices, pick)
		return Decision{Proc: pick}
	}
	if !e.started {
		e.started = true
		e.cur = append([]int(nil), e.sleep0...)
	}
	if ops == nil {
		ops = make([]string, len(pending)) // unlabeled: conflicts with everything
	}
	// A sleeping process is blocked on its pending request, so it cannot
	// leave the pending set; the intersection guards the invariant
	// cur ⊆ pending rather than doing real work.
	e.cur = intersectSorted(e.cur, pending)
	allowed := subtractSorted(pending, e.cur)
	if len(allowed) == 0 {
		// Every pending step is covered by a subtree explored under a
		// smaller choice sequence: discard the rest of the run.
		e.aborted = true
		return Decision{Abort: true}
	}
	pick := allowed[0]

	e.pendings = append(e.pendings, append([]int(nil), pending...))
	e.opss = append(e.opss, append([]string(nil), ops...))
	e.sleeps = append(e.sleeps, append([]int(nil), e.cur...))
	e.choices = append(e.choices, pick)

	// Descend into the followed child: a process stays asleep only while
	// it commutes with every step executed since it was put to sleep.
	pickOp := ops[indexSorted(pending, pick)]
	kept := e.cur[:0] // sleeps holds its own copy; reuse the backing array
	for _, u := range e.cur {
		if e.indep(u, ops[indexSorted(pending, u)], pick, pickOp) {
			kept = append(kept, u)
		}
	}
	e.cur = kept
	return Decision{Proc: pick}
}

// branchItems returns the unexplored sibling prefixes with their sleep
// sets: at every post-prefix decision, one child per pending process alt
// that is larger than the chosen one and not asleep. The child explored
// via alt sleeps on everything already asleep at the node plus every
// allowed transition ordered before alt (they are explored in their own
// subtrees first), filtered down to the transitions that commute with
// alt — the ones whose pending step survives alt unchanged.
func (e *porPolicy) branchItems() []frontierItem {
	var out []frontierItem
	for j := range e.pendings {
		i := len(e.prefix) + j
		pending, ops, sleep := e.pendings[j], e.opss[j], e.sleeps[j]
		chosen := e.choices[i]
		for ai, alt := range pending {
			if alt <= chosen || containsSorted(sleep, alt) {
				continue
			}
			altOp := ops[ai]
			var childSleep []int
			for ui, u := range pending {
				if u == alt {
					continue
				}
				if u > alt && !containsSorted(sleep, u) {
					continue // explored after alt, not yet covered
				}
				if e.indep(u, ops[ui], alt, altOp) {
					childSleep = append(childSleep, u)
				}
			}
			branch := make([]int, i+1)
			copy(branch, e.choices[:i])
			branch[i] = alt
			out = append(out, frontierItem{choices: branch, sleep: childSleep})
		}
	}
	return out
}

// runChoices implements explorerPolicy.
func (e *porPolicy) runChoices() []int { return e.choices }

// containsSorted reports whether sorted slice s contains x.
func containsSorted(s []int, x int) bool {
	return indexSorted(s, x) >= 0
}

// indexSorted returns the index of x in sorted slice s, or -1. The
// slices here are pending sets (a handful of process indexes), so a
// linear scan beats binary search.
func indexSorted(s []int, x int) int {
	for i, v := range s {
		if v == x {
			return i
		}
		if v > x {
			return -1
		}
	}
	return -1
}

// intersectSorted returns the elements of sorted a also in sorted b,
// reusing a's backing array.
func intersectSorted(a, b []int) []int {
	out := a[:0]
	for _, v := range a {
		if containsSorted(b, v) {
			out = append(out, v)
		}
	}
	return out
}

// subtractSorted returns the elements of sorted a not in sorted b.
func subtractSorted(a, b []int) []int {
	out := make([]int, 0, len(a))
	for _, v := range a {
		if !containsSorted(b, v) {
			out = append(out, v)
		}
	}
	return out
}
