package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the seeded-run pool: the worker-pool driver shared by every
// statistical mode of the engine — the crash-injection sweep
// (crashsweep.go) and the schedule samplers of internal/sample. Each run
// is scheduled by a policy derived deterministically from a sweep seed and
// the run index, so a sweep of any size is reproducible, any single run is
// replayable from its derived seed alone, and the aggregate outcome (the
// smallest failing run index) is independent of worker interleaving.

// DeriveRunSeed derives the per-run policy seed of run i of a seeded
// sweep: a splitmix64-style mix of the sweep seed and the run index.
// Sweeps are reproducible (same seed, same i, same derived seed — and,
// with a deterministic policy, the same schedule at any worker count) and
// runs are decorrelated (nearby indices yield unrelated streams).
//
// This is the single definition of seed→schedule reproducibility: the
// crash sweep, the random-walk sampler and the PCT sampler all seed their
// per-run policies through it, so a failing run reported by any of them
// can be replayed by reconstructing the same policy from the derived
// seed.
func DeriveRunSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SampleMode selects the statistical sampler run by the sample subsystem
// when ExploreOptions.SampleRuns > 0 (see internal/sample).
type SampleMode int

const (
	// SampleWalk is the uniform random walk: every decision picks
	// uniformly at random among the pending processes, seeded per run
	// via DeriveRunSeed. Schedules are sampled from the leaf
	// distribution of the pending-choice tree (not uniformly over
	// schedules), which in practice spreads probability over many
	// Mazurkiewicz trace classes per run batch.
	SampleWalk SampleMode = iota
	// SamplePCT is probabilistic concurrency testing (Burckhardt et al.):
	// random process priorities plus Depth-1 seeded priority-change
	// points, always granting the highest-priority pending process. A
	// bug of depth d is found with probability >= 1/(n*k^(d-1)) per run
	// (n processes, k steps), a guarantee uniform walks do not give.
	SamplePCT
)

// String implements fmt.Stringer.
func (m SampleMode) String() string {
	switch m {
	case SampleWalk:
		return "walk"
	case SamplePCT:
		return "pct"
	default:
		return fmt.Sprintf("SampleMode(%d)", int(m))
	}
}

func (m SampleMode) valid() bool {
	return m == SampleWalk || m == SamplePCT
}

// ExploreSeeded executes runs independently-seeded runs over a pool of
// opts.Workers goroutines: run i is scheduled by policyFor(i) and executed
// against a fresh build() instance, and visit(i, res, err) sees its
// outcome. The crash sweep and the statistical samplers are both built on
// this driver.
//
// visit is called concurrently from the workers (at most once per run
// index) and must be safe for concurrent use; a non-nil error it returns
// marks run i failed. On failure the reported error is that of the run
// with the smallest failing index — independent of worker interleaving,
// because indices are claimed in order and later runs cannot precede an
// already-recorded smaller failure — and the returned count is that run's
// 1-based index. On success the count is runs; on cancellation it is the
// number of runs that actually executed.
func ExploreSeeded(ctx context.Context, n int, ids []int, opts ExploreOptions, runs int,
	policyFor func(run int) Policy, build func() Body, visit func(run int, res *Result, err error) error) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st, _, err := SeededSlice(ctx, n, ids, opts, runs, policyFor, build, visit, nil, 0, nil)
	if err != nil {
		return 0, err
	}
	if st.Failure != nil {
		return st.Failure.Run + 1, st.Failure.Err()
	}
	if err := ctx.Err(); err != nil {
		// Report runs that actually executed, not claimed run indices:
		// a worker that claimed an index and then saw the cancellation
		// (or the end-of-batch sentinel) exited without running it.
		return int(st.Completed), fmt.Errorf("sched: seeded run pool canceled: %w", err)
	}
	return runs, nil
}

// SeededState is the serializable state of a (possibly sharded) seeded
// batch: shard Shard of Of owns the global run indices Shard, Shard+Of,
// Shard+2*Of, …, and has executed the first Next of them. Because local
// indices are claimed strictly in order and every claimed pre-failure
// index is executed before a slice returns, (Shard, Of, Next, Failure)
// is an exact resume point: re-running from it executes exactly the runs
// an uninterrupted batch would have. The zero value of Shard/Of means
// shard 0 of 1 (the whole batch).
//
//gsb:serialized
type SeededState struct {
	Shard int   `json:"shard"`
	Of    int   `json:"of"`
	Next  int64 `json:"next"`
	// Completed counts runs executed to completion (equal to Next except
	// after a failure, where claimed-but-skipped indices are not run).
	Completed int64 `json:"completed"`
	// Failure is the smallest failing run of the shard, nil while every
	// run has verified.
	Failure *SeededFailure `json:"failure,omitempty"`
}

// SeededFailure is a serialized seeded-run failure: the global run index
// and the rendered error. As with FailureState, only the message survives
// serialization.
//
//gsb:serialized
type SeededFailure struct {
	Run     int    `json:"run"`
	Message string `json:"message"`
	err     error
}

// Err returns the failure's error: the original value when recorded in
// this process, or an opaque error with the checkpointed message.
func (f *SeededFailure) Err() error {
	if f.err != nil {
		return f.err
	}
	return errors.New(f.Message)
}

// normalized returns the state with zero-valued sharding defaulted to
// shard 0 of 1.
func (s *SeededState) normalized() *SeededState {
	if s == nil {
		s = &SeededState{}
	}
	if s.Of <= 0 {
		s = &SeededState{Shard: s.Shard, Of: 1, Next: s.Next, Completed: s.Completed, Failure: s.Failure}
	}
	return s
}

// localTotal is the number of global indices < total owned by the shard.
func (s *SeededState) localTotal(total int) int64 {
	if total <= s.Shard {
		return 0
	}
	return int64((total-s.Shard-1)/s.Of + 1)
}

// SeededDone reports whether the batch described by state is complete for
// a batch of total runs: the shard's index space is exhausted, or a
// failure has settled the outcome (indices are claimed in order, so no
// later run can precede it).
func (s *SeededState) SeededDone(total int) bool {
	s = s.normalized()
	return s.Failure != nil || s.Next >= s.localTotal(total)
}

// SeededSlice advances a seeded batch from state by at most sliceRuns
// runs (0 means no slice bound): run i of the shard's index space is
// scheduled by policyFor(globalIndex) against a fresh build() instance,
// and visit sees its outcome exactly as in ExploreSeeded. It returns the
// advanced state and whether the batch is complete (see SeededDone). A
// nil state means shard 0 of 1 from the beginning.
//
// Like ResumableExplorer.Slice, a pause (pause() true or ctx canceled)
// returns early with an exact resume point: runs already claimed finish,
// no new ones start. The returned error reports only invalid arguments;
// per-run failures live in the state's Failure field, which settles the
// batch (SeededDone) without being an error of the pool itself.
func SeededSlice(ctx context.Context, n int, ids []int, opts ExploreOptions, total int,
	policyFor func(run int) Policy, build func() Body, visit func(run int, res *Result, err error) error,
	state *SeededState, sliceRuns int, pause func() bool) (*SeededState, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return state, false, err
	}
	if total <= 0 {
		return state, false, fmt.Errorf("sched: seeded run pool needs runs > 0 (got %d)", total)
	}
	state = state.normalized()
	if state.Shard < 0 || state.Shard >= state.Of {
		return state, false, fmt.Errorf("sched: seeded shard %d outside [0, %d)", state.Shard, state.Of)
	}
	if state.SeededDone(total) {
		return state, true, nil
	}
	opts = opts.withDefaults(n)

	localTotal := state.localTotal(total)
	sliceEnd := localTotal
	if sliceRuns > 0 && state.Next+int64(sliceRuns) < sliceEnd {
		sliceEnd = state.Next + int64(sliceRuns)
	}
	met := newEngineMetrics(opts.Stats)
	model := memModelFor(opts)

	var (
		next      atomic.Int64
		completed atomic.Int64 // runs executed during this slice
		mu        sync.Mutex
		bestIdx   = -1 // smallest failing global index
		bestErr   error
		wg        sync.WaitGroup
	)
	next.Store(state.Next)
	if state.Failure != nil {
		bestIdx, bestErr = state.Failure.Run, state.Failure.Err()
	}
	record := func(g int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if bestIdx < 0 || g < bestIdx {
			bestIdx, bestErr = g, err
		}
	}
	failedBefore := func(g int) bool {
		mu.Lock()
		defer mu.Unlock()
		return bestIdx >= 0 && g > bestIdx
	}

	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		//gsb:nondeterminism-ok audited worker pool: runs are claimed by atomic index and every result is a pure function of DeriveRunSeed(Seed, i), so interleaving cannot change the report
		go func() {
			defer wg.Done()
			// One reusable runner per worker: Reset re-arms it with run
			// i's derived policy, so the steady-state per-run cost is the
			// policy, the protocol instance, and nothing else.
			runner := NewRunner(n, ids, nil, WithMaxSteps(opts.MaxSteps), WithReuse(), WithModel(model))
			defer runner.Close()
			for {
				if ctx.Err() != nil {
					return
				}
				if pause != nil && pause() {
					return
				}
				k := next.Add(1) - 1
				if k >= sliceEnd {
					return
				}
				g := state.Shard + int(k)*state.Of
				if failedBefore(g) {
					// An earlier run already failed; later runs cannot
					// change the reported outcome. Indices are claimed in
					// order, so returning drains the pool.
					return
				}
				runner.Reset(policyFor(g))
				res, err := runner.Run(build())
				completed.Add(1)
				met.incRuns()
				if err == nil {
					// Crashes on a completed run are adversary-injected
					// (samplers never crash, so this counts 0 for them);
					// errored runs crash-unwind everyone, which is cleanup,
					// not an adversary event.
					met.addCrashEvents(res.Crashed)
				}
				if verr := visit(g, res, err); verr != nil {
					record(g, verr)
				}
			}
		}()
	}
	wg.Wait()

	// The executed local indices are contiguous from state.Next: a worker
	// that claims an index always runs it unless a stop condition that is
	// a pure function of the index fired (end of batch, slice bound, an
	// earlier failure) — ctx/pause are checked before claiming, never
	// after. The watermark therefore never overshoots an unexecuted run.
	claimed := next.Load()
	if claimed > sliceEnd {
		claimed = sliceEnd
	}
	out := &SeededState{
		Shard:     state.Shard,
		Of:        state.Of,
		Next:      claimed,
		Completed: state.Completed + completed.Load(),
	}
	mu.Lock()
	if bestIdx >= 0 {
		out.Failure = &SeededFailure{Run: bestIdx, Message: bestErr.Error(), err: bestErr}
	}
	mu.Unlock()
	return out, out.SeededDone(total), nil
}
