package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the seeded-run pool: the worker-pool driver shared by every
// statistical mode of the engine — the crash-injection sweep
// (crashsweep.go) and the schedule samplers of internal/sample. Each run
// is scheduled by a policy derived deterministically from a sweep seed and
// the run index, so a sweep of any size is reproducible, any single run is
// replayable from its derived seed alone, and the aggregate outcome (the
// smallest failing run index) is independent of worker interleaving.

// DeriveRunSeed derives the per-run policy seed of run i of a seeded
// sweep: a splitmix64-style mix of the sweep seed and the run index.
// Sweeps are reproducible (same seed, same i, same derived seed — and,
// with a deterministic policy, the same schedule at any worker count) and
// runs are decorrelated (nearby indices yield unrelated streams).
//
// This is the single definition of seed→schedule reproducibility: the
// crash sweep, the random-walk sampler and the PCT sampler all seed their
// per-run policies through it, so a failing run reported by any of them
// can be replayed by reconstructing the same policy from the derived
// seed.
func DeriveRunSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SampleMode selects the statistical sampler run by the sample subsystem
// when ExploreOptions.SampleRuns > 0 (see internal/sample).
type SampleMode int

const (
	// SampleWalk is the uniform random walk: every decision picks
	// uniformly at random among the pending processes, seeded per run
	// via DeriveRunSeed. Schedules are sampled from the leaf
	// distribution of the pending-choice tree (not uniformly over
	// schedules), which in practice spreads probability over many
	// Mazurkiewicz trace classes per run batch.
	SampleWalk SampleMode = iota
	// SamplePCT is probabilistic concurrency testing (Burckhardt et al.):
	// random process priorities plus Depth-1 seeded priority-change
	// points, always granting the highest-priority pending process. A
	// bug of depth d is found with probability >= 1/(n*k^(d-1)) per run
	// (n processes, k steps), a guarantee uniform walks do not give.
	SamplePCT
)

// String implements fmt.Stringer.
func (m SampleMode) String() string {
	switch m {
	case SampleWalk:
		return "walk"
	case SamplePCT:
		return "pct"
	default:
		return fmt.Sprintf("SampleMode(%d)", int(m))
	}
}

func (m SampleMode) valid() bool {
	return m == SampleWalk || m == SamplePCT
}

// ExploreSeeded executes runs independently-seeded runs over a pool of
// opts.Workers goroutines: run i is scheduled by policyFor(i) and executed
// against a fresh build() instance, and visit(i, res, err) sees its
// outcome. The crash sweep and the statistical samplers are both built on
// this driver.
//
// visit is called concurrently from the workers (at most once per run
// index) and must be safe for concurrent use; a non-nil error it returns
// marks run i failed. On failure the reported error is that of the run
// with the smallest failing index — independent of worker interleaving,
// because indices are claimed in order and later runs cannot precede an
// already-recorded smaller failure — and the returned count is that run's
// 1-based index. On success the count is runs; on cancellation it is the
// number of runs that actually executed.
func ExploreSeeded(ctx context.Context, n int, ids []int, opts ExploreOptions, runs int,
	policyFor func(run int) Policy, build func() Body, visit func(run int, res *Result, err error) error) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	if runs <= 0 {
		return 0, fmt.Errorf("sched: seeded run pool needs runs > 0 (got %d)", runs)
	}
	opts = opts.withDefaults(n)

	var (
		next      atomic.Int64
		completed atomic.Int64 // runs actually executed to completion
		mu        sync.Mutex
		bestIdx   = -1
		bestErr   error
		wg        sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if bestIdx < 0 || i < bestIdx {
			bestIdx, bestErr = i, err
		}
	}
	failedBefore := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return bestIdx >= 0 && i > bestIdx
	}

	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable runner per worker: Reset re-arms it with run
			// i's derived policy, so the steady-state per-run cost is the
			// policy, the protocol instance, and nothing else.
			runner := NewRunner(n, ids, nil, WithMaxSteps(opts.MaxSteps), WithReuse())
			defer runner.Close()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= runs {
					return
				}
				if failedBefore(i) {
					// An earlier run already failed; later runs cannot
					// change the reported outcome. Indices are claimed in
					// order, so returning drains the pool.
					return
				}
				runner.Reset(policyFor(i))
				res, err := runner.Run(build())
				completed.Add(1)
				if verr := visit(i, res, err); verr != nil {
					record(i, verr)
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if bestIdx >= 0 {
		return bestIdx + 1, bestErr
	}
	if err := ctx.Err(); err != nil {
		// Report runs that actually executed, not claimed run indices:
		// a worker that claimed an index and then saw the cancellation
		// (or the i >= runs sentinel) exited without running it.
		return int(completed.Load()), fmt.Errorf("sched: seeded run pool canceled: %w", err)
	}
	return runs, nil
}
