package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDeriveRunSeedDeterministicAndDecorrelated pins the contract of the
// single seed-derivation helper: pure function of (seed, index), distinct
// across a large index range, and sensitive to the sweep seed — the
// property both the crash sweep and the samplers build their
// reproducibility on.
func TestDeriveRunSeedDeterministicAndDecorrelated(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := DeriveRunSeed(42, i)
		if s != DeriveRunSeed(42, i) {
			t.Fatalf("DeriveRunSeed(42, %d) not deterministic", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("DeriveRunSeed(42, %d) == DeriveRunSeed(42, %d) == %d", i, j, s)
		}
		seen[s] = i
	}
	if DeriveRunSeed(1, 0) == DeriveRunSeed(2, 0) {
		t.Error("derived seed insensitive to the sweep seed")
	}
	// Negative sweep seeds are legal (Seed is an arbitrary int64).
	if DeriveRunSeed(-7, 3) != DeriveRunSeed(-7, 3) {
		t.Error("negative seed not deterministic")
	}
}

// scheduleKey renders a schedule compactly for set comparisons.
func scheduleKey(schedule []Step) string {
	key := ""
	for _, s := range schedule {
		if s.Crash {
			key += fmt.Sprintf("x%d;", s.Proc)
		} else {
			key += fmt.Sprintf("%d:%s;", s.Proc, s.Op)
		}
	}
	return key
}

// TestExploreSeededSchedulesReproducible is the seed→schedule
// reproducibility contract: the same seed yields exactly the same
// schedule for every run index, at 1, 2 and 8 workers.
func TestExploreSeededSchedulesReproducible(t *testing.T) {
	const n, runs = 3, 40
	build := func() Body {
		shared := 0
		return func(p *Proc) {
			p.Exec(fmt.Sprintf("r%d.write", p.Index()), func() any { return nil })
			v := p.Exec("X.read", func() any { return shared }).(int)
			p.Exec("X.write", func() any { shared = v + 1; return nil })
			p.Decide(p.ID())
		}
	}
	collect := func(workers int) map[int]string {
		var mu sync.Mutex
		got := map[int]string{}
		count, err := ExploreSeeded(context.Background(), n, DefaultIDs(n),
			ExploreOptions{Workers: workers, Seed: 11}, runs,
			func(i int) Policy { return NewRandom(DeriveRunSeed(11, i)) },
			build,
			func(i int, res *Result, err error) error {
				if err != nil {
					return err
				}
				mu.Lock()
				got[i] = scheduleKey(res.Schedule)
				mu.Unlock()
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count != runs {
			t.Fatalf("workers=%d: count = %d, want %d", workers, count, runs)
		}
		return got
	}
	want := collect(1)
	if len(want) != runs {
		t.Fatalf("baseline recorded %d schedules, want %d", len(want), runs)
	}
	for _, workers := range []int{2, 8} {
		got := collect(workers)
		for i := 0; i < runs; i++ {
			if got[i] != want[i] {
				t.Errorf("workers=%d: run %d schedule differs from single-worker run", workers, i)
			}
		}
	}
}

// TestExploreSeededSmallestFailure: the reported failure is the smallest
// failing index regardless of worker interleaving, and the count is its
// 1-based index.
func TestExploreSeededSmallestFailure(t *testing.T) {
	const n, runs, failAt = 2, 200, 37
	build := func() Body {
		return func(p *Proc) { p.Decide(p.ID()) }
	}
	for _, workers := range []int{1, 2, 8} {
		count, err := ExploreSeeded(context.Background(), n, DefaultIDs(n),
			ExploreOptions{Workers: workers}, runs,
			func(i int) Policy { return NewRandom(DeriveRunSeed(5, i)) },
			build,
			func(i int, res *Result, err error) error {
				if err != nil {
					return err
				}
				if i >= failAt {
					return fmt.Errorf("run %d fails", i)
				}
				return nil
			})
		if err == nil || count != failAt+1 {
			t.Errorf("workers=%d: (count, err) = (%d, %v), want (%d, run %d fails)", workers, count, err, failAt+1, failAt)
		}
	}
}

// TestExploreNondeterministicProtocolError: a protocol whose behavior
// depends on the build invocation count diverges from the recorded
// prefixes; the exploration must surface ErrScheduleDiverged as an
// error — at every worker count — instead of panicking inside a worker.
func TestExploreNondeterministicProtocolError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var builds atomic.Int64
		build := func() Body {
			first := builds.Add(1) == 1
			return func(p *Proc) {
				k := 1
				if first {
					k = 3
				}
				for i := 0; i < k; i++ {
					p.Exec("X.write", func() any { return nil })
				}
				p.Decide(p.ID())
			}
		}
		_, err := Explore(context.Background(), 3, DefaultIDs(3),
			ExploreOptions{Workers: workers, MaxSteps: 1000}, build, nil)
		if !errors.Is(err, ErrScheduleDiverged) {
			t.Errorf("workers=%d: err = %v, want ErrScheduleDiverged", workers, err)
		}
	}
}

// TestRunnerScheduleDivergedError: the runner itself reports the policy's
// structured error: a scripted prefix that names a process with no
// pending step yields ErrScheduleDiverged from Run, with every goroutine
// unwound (no leak, no panic).
func TestRunnerScheduleDivergedError(t *testing.T) {
	body := func(p *Proc) {
		p.Exec("X.write", func() any { return nil })
		p.Decide(p.ID())
	}
	// Process 0 takes write+decide = 2 steps; a prefix granting it a 3rd
	// step diverges.
	policy := &explorePolicy{prefix: []int{0, 0, 0}}
	_, err := NewRunner(2, DefaultIDs(2), policy).Run(body)
	if !errors.Is(err, ErrScheduleDiverged) {
		t.Fatalf("err = %v, want ErrScheduleDiverged", err)
	}
	// The POR replay policy takes the same path.
	por := &porPolicy{indep: OpIndependent, prefix: []int{0, 0, 0}}
	_, err = NewRunner(2, DefaultIDs(2), por).Run(body)
	if !errors.Is(err, ErrScheduleDiverged) {
		t.Fatalf("por: err = %v, want ErrScheduleDiverged", err)
	}
}
