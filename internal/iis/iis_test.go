package iis

import (
	"testing"

	"repro/internal/sched"
)

// runOnce executes one immediate-snapshot invocation per process under the
// given policy and returns each participant's view (nil for processes that
// crashed before returning).
func runOnce(t *testing.T, n int, policy sched.Policy) []*View[int] {
	t.Helper()
	is := New[int]("IS", n)
	views := make([]*View[int], n)
	r := sched.NewRunner(n, sched.DefaultIDs(n), policy, sched.WithMaxSteps(1<<20))
	_, err := r.Run(func(p *sched.Proc) {
		v := is.Invoke(p, p.ID()*10)
		p.Exec("record", func() any {
			vv := v
			views[p.Index()] = &vv
			return nil
		})
		p.Decide(1)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return views
}

func checkISProperties(t *testing.T, views []*View[int], label string) {
	t.Helper()
	for i, vi := range views {
		if vi == nil {
			continue
		}
		// Self-inclusion.
		if !vi.Contains(i) {
			t.Fatalf("%s: view of %d lacks itself: %+v", label, i, *vi)
		}
		// Values are the posted ones.
		for j, present := range vi.Present {
			if present && vi.Vals[j] != (j+1)*10 {
				t.Fatalf("%s: view of %d has wrong value for %d: %d", label, i, j, vi.Vals[j])
			}
		}
		for j, vj := range views {
			if vj == nil {
				continue
			}
			// Containment (comparability).
			if !vi.SubsetOf(*vj) && !vj.SubsetOf(*vi) {
				t.Fatalf("%s: views of %d and %d incomparable: %v vs %v",
					label, i, j, vi.Present, vj.Present)
			}
			// Immediacy.
			if vi.Contains(j) && !vj.SubsetOf(*vi) {
				t.Fatalf("%s: immediacy violated: %d in view of %d but view(%d) ⊄ view(%d)",
					label, j, i, j, i)
			}
		}
	}
}

func TestImmediateSnapshotPropertiesRandom(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for seed := int64(0); seed < 40; seed++ {
			views := runOnce(t, n, sched.NewRandom(seed))
			checkISProperties(t, views, "random")
		}
	}
}

func TestImmediateSnapshotPropertiesWithCrashes(t *testing.T) {
	for n := 2; n <= 5; n++ {
		for seed := int64(0); seed < 40; seed++ {
			views := runOnce(t, n, sched.NewRandomCrash(seed, 0.05, n-1))
			checkISProperties(t, views, "crashy")
		}
	}
}

func TestImmediateSnapshotSolo(t *testing.T) {
	views := runOnce(t, 1, sched.NewRoundRobin())
	if views[0] == nil || views[0].Size() != 1 || !views[0].Contains(0) {
		t.Fatalf("solo view = %+v", views[0])
	}
}

func TestImmediateSnapshotSequentialGivesPrefixViews(t *testing.T) {
	// Under round-robin... actually under a *sequential* schedule (each
	// process runs to completion before the next starts), views must be
	// strictly growing prefixes by the containment property, with sizes
	// 1, 2, ..., n.
	n := 4
	var script []sched.Decision
	// Each process needs at most n iterations of (write, snapshot) plus a
	// record and decide; grant generously: process i gets 4n+4 consecutive
	// steps.
	for i := 0; i < n; i++ {
		for k := 0; k < 4*n+4; k++ {
			script = append(script, sched.Decision{Proc: i})
		}
	}
	views := runOnce(t, n, sched.NewScript(script))
	for i := 0; i < n; i++ {
		if views[i] == nil {
			t.Fatalf("process %d has no view", i)
		}
		if got := views[i].Size(); got != i+1 {
			t.Fatalf("sequential run: view size of process %d = %d, want %d", i, got, i+1)
		}
	}
}

func TestImmediateSnapshotSimultaneousFullView(t *testing.T) {
	// A perfectly synchronous lockstep schedule makes everyone descend
	// together; all must obtain the full view of size n.
	n := 4
	var script []sched.Decision
	for round := 0; round < 16*n; round++ {
		for i := 0; i < n; i++ {
			script = append(script, sched.Decision{Proc: i})
		}
	}
	views := runOnce(t, n, sched.NewScript(script))
	for i := 0; i < n; i++ {
		if views[i] == nil || views[i].Size() != n {
			t.Fatalf("lockstep run: view of %d = %+v, want full", i, views[i])
		}
	}
}

func TestViewHelpers(t *testing.T) {
	v := View[int]{Vals: []int{7, 0, 9}, Present: []bool{true, false, true}}
	if v.Size() != 2 {
		t.Errorf("Size = %d", v.Size())
	}
	if !v.Contains(0) || v.Contains(1) {
		t.Error("Contains misbehaves")
	}
	w := View[int]{Vals: []int{7, 8, 9}, Present: []bool{true, true, true}}
	if !v.SubsetOf(w) || w.SubsetOf(v) {
		t.Error("SubsetOf misbehaves")
	}
}

func TestIteratedViewsShrinkOrStay(t *testing.T) {
	// In IIS, a process's round-(k+1) view participants are a subset of
	// the processes that were active; views remain comparable per round.
	const n, rounds = 4, 3
	for seed := int64(0); seed < 30; seed++ {
		it := NewIterated[int]("IIS", n, rounds)
		all := make([][]View[any], n)
		r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed),
			sched.WithMaxSteps(1<<20))
		_, err := r.Run(func(p *sched.Proc) {
			views := it.Run(p, p.ID())
			p.Exec("record", func() any { all[p.Index()] = views; return nil })
			p.Decide(1)
		})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		for k := 0; k < rounds; k++ {
			for i := 0; i < n; i++ {
				if all[i] == nil {
					continue
				}
				vi := all[i][k]
				if !vi.Contains(i) {
					t.Fatalf("round %d: self-inclusion violated for %d", k, i)
				}
				for j := 0; j < n; j++ {
					if all[j] == nil {
						continue
					}
					vj := all[j][k]
					if !viewSubset(vi, vj) && !viewSubset(vj, vi) {
						t.Fatalf("round %d: incomparable views %v vs %v", k, vi.Present, vj.Present)
					}
					if vi.Contains(j) && !viewSubset(vj, vi) {
						t.Fatalf("round %d: immediacy violated (%d sees %d)", k, i, j)
					}
				}
			}
		}
	}
}

func viewSubset(a, b View[any]) bool {
	for j, p := range a.Present {
		if p && !b.Present[j] {
			return false
		}
	}
	return true
}
