// Package iis implements one-shot immediate snapshot objects (the
// Borowsky-Gafni "levels" algorithm, PODC 1993) and their iteration, built
// on the shared-memory substrate of package mem.
//
// An immediate snapshot returns, to each participating process, a view
// (set of posted values) satisfying three properties that make the
// one-round protocol complex the standard chromatic subdivision used in
// the paper's Theorem 11:
//
//   - self-inclusion: a process's view contains its own value;
//   - containment:    any two views are ordered by inclusion;
//   - immediacy:      if j's value is in i's view, then j's view is a
//     subset of i's view.
//
// Package topology builds the same executions combinatorially; the two
// are cross-checked in tests.
package iis

import (
	"repro/internal/mem"
	"repro/internal/sched"
)

// View is the result of an immediate-snapshot invocation: Present[j]
// reports whether process j's value is in the view, and Vals[j] is that
// value when present.
type View[T any] struct {
	Vals    []T
	Present []bool
}

// Size returns the number of processes in the view.
func (v View[T]) Size() int {
	size := 0
	for _, p := range v.Present {
		if p {
			size++
		}
	}
	return size
}

// Contains reports whether process j is in the view.
func (v View[T]) Contains(j int) bool { return v.Present[j] }

// SubsetOf reports whether v's participant set is contained in w's.
func (v View[T]) SubsetOf(w View[T]) bool {
	for j, p := range v.Present {
		if p && !w.Present[j] {
			return false
		}
	}
	return true
}

type isCell[T any] struct {
	level int // n+1 = not started; processes descend toward 1
	val   T
}

// ImmediateSnapshot is a one-shot immediate snapshot object for n
// processes.
type ImmediateSnapshot[T any] struct {
	n    int
	regs *mem.Array[isCell[T]]
}

// New allocates a one-shot immediate snapshot object.
func New[T any](name string, n int) *ImmediateSnapshot[T] {
	return &ImmediateSnapshot[T]{n: n, regs: mem.NewArray[isCell[T]](name, n)}
}

// Invoke posts v and returns the caller's immediate-snapshot view. Each
// process must invoke at most once. The algorithm is the Borowsky-Gafni
// levels construction: descend one level at a time, snapshot, and return
// when at least `level` processes are observed at or below the current
// level.
func (is *ImmediateSnapshot[T]) Invoke(p *sched.Proc, v T) View[T] {
	level := is.n + 1
	for {
		level--
		is.regs.Write(p, isCell[T]{level: level, val: v})
		cells, oks := is.regs.Snapshot(p)
		view := View[T]{Vals: make([]T, is.n), Present: make([]bool, is.n)}
		size := 0
		for j := 0; j < is.n; j++ {
			if oks[j] && cells[j].level <= level {
				view.Present[j] = true
				view.Vals[j] = cells[j].val
				size++
			}
		}
		if size >= level {
			return view
		}
	}
}

// Iterated is a sequence of fresh immediate-snapshot objects; each round's
// input is the process's full-information state from the previous round.
// It realizes the r-round IIS executions whose complex is the r-iterated
// standard chromatic subdivision.
type Iterated[T any] struct {
	n      int
	rounds []*ImmediateSnapshot[any]
}

// NewIterated allocates r rounds of immediate snapshots for n processes.
func NewIterated[T any](name string, n, r int) *Iterated[T] {
	rounds := make([]*ImmediateSnapshot[any], r)
	for i := range rounds {
		rounds[i] = New[any](name, n)
	}
	return &Iterated[T]{n: n, rounds: rounds}
}

// Run invokes each round in order, threading the full-information state:
// the round-k input of a process is its round-(k-1) view (as an opaque
// value). It returns the view of every round; the last one is the
// process's final state.
func (it *Iterated[T]) Run(p *sched.Proc, input T) []View[any] {
	views := make([]View[any], len(it.rounds))
	var state any = input
	for k, is := range it.rounds {
		views[k] = is.Invoke(p, state)
		state = views[k]
	}
	return views
}
