// Package campaign turns the repository's verification modes —
// exhaustive and partial-order-reduced exploration, statistical sampling
// (random walk and PCT), and randomized crash sweeps — into durable,
// resumable, shardable campaigns: long runs that periodically checkpoint
// their entire engine state to disk, survive kills (resume from the last
// snapshot is exact, not approximate), split deterministically across
// shards, and merge shard snapshots into the same report a single
// uninterrupted process produces.
package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Snapshot format: a campaign checkpoint file is one JSON header object
// on the first line, then the JSON engine-state payload. The header is
// self-describing (magic, format version, campaign identity and its
// options hash) and carries cheap progress/result fields so `status` and
// CI never need to parse the — potentially large — payload. Writes are
// atomic: a temp file in the same directory is renamed over the target,
// so a kill at any instant leaves either the previous checkpoint or the
// new one, never a torn file.

const (
	// Magic identifies a campaign snapshot file.
	Magic = "gsb-campaign"
	// Version is the snapshot format version; readers reject anything
	// else (format evolution is explicit, never silent).
	Version = 1
)

// ErrOptionsMismatch reports a resume or merge whose campaign options do
// not match the snapshot's: resuming under different options would
// silently change what the campaign verifies, so it fails loudly instead.
var ErrOptionsMismatch = errors.New("campaign: options do not match the snapshot")

// Header is the first line of a snapshot file.
//
//gsb:serialized
type Header struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Mode names the verification mode (see Mode constants).
	Mode Mode `json:"mode"`
	// Protocol is the caller's protocol label (cmd/gsbcampaign rebuilds
	// the solver from it on resume/merge); Task renders the verified
	// task specification.
	Protocol string `json:"protocol"`
	Task     string `json:"task"`
	N        int    `json:"n"`
	IDs      []int  `json:"ids"`
	// Options is the campaign-defining subset of the exploration
	// options; OptionsHash is the FNV-64a hash of the canonical encoding
	// of (format version, task, protocol, n, ids, options, shard count),
	// shared by all shards of one campaign. Worker count and checkpoint
	// interval are execution details: they may change across resumes and
	// are excluded.
	Options     OptionsHeader `json:"options"`
	Shard       int           `json:"shard"`
	Of          int           `json:"of"`
	OptionsHash string        `json:"options_hash"`
	// Done marks a completed campaign (or shard); Runs and Frontier are
	// progress gauges (runs executed; unexplored frontier items, explore
	// family only); Result carries the shard's final report once done.
	Done     bool    `json:"done"`
	Runs     int64   `json:"runs"`
	Frontier int     `json:"frontier,omitempty"`
	Result   *Report `json:"result,omitempty"`
	Updated  string  `json:"updated"`
}

// OptionsHeader is the serializable, campaign-defining subset of
// sched.ExploreOptions. gsbvet's optionshash analyzer enforces the
// "subset" claim from both sides: every ExploreOptions field must be
// captured here or listed in OptionsHashExcluded, and every field here
// must be read by optionsHash.
//
//gsb:serialized
type OptionsHeader struct {
	Seed       int64   `json:"seed"`
	MaxRuns    int     `json:"max_runs,omitempty"`
	MaxSteps   int     `json:"max_steps,omitempty"`
	Reduction  int     `json:"reduction,omitempty"`
	SampleRuns int     `json:"sample_runs,omitempty"`
	SampleMode int     `json:"sample_mode,omitempty"`
	Depth      int     `json:"depth,omitempty"`
	CrashRuns  int     `json:"crash_runs,omitempty"`
	CrashProb  float64 `json:"crash_prob,omitempty"`
	MaxCrashes int     `json:"max_crashes,omitempty"`
	// Model and Adversary are normalized to "" when they name the
	// defaults (atomic, uniform-crash), so a campaign started with the
	// explicit default has the identity — and the options hash — of one
	// started with the field unset, and snapshots from before the
	// registries existed keep resuming.
	Model     string `json:"model,omitempty"`
	Adversary string `json:"adversary,omitempty"`
}

// OptionsHashExcluded names the sched.ExploreOptions fields that are
// deliberately NOT part of campaign identity, with the reason. gsbvet's
// optionshash analyzer fails the build when an ExploreOptions field is
// neither captured by optionsHeader nor listed here — adding an option
// forces the hash-or-exclude decision to be made explicitly.
var OptionsHashExcluded = map[string]string{
	"Workers": "execution-resource knob: worker count must not change what a campaign verifies (the determinism contract), so resumes may legally change it",
	"Stats":   "observability sink: where metrics go never affects what is computed",
}

// nonDefaultName normalizes a registry name for campaign identity: the
// empty string and the registry default are the same choice, so both
// render as "".
func nonDefaultName(name, def string) string {
	if name == def {
		return ""
	}
	return name
}

func optionsHeader(o sched.ExploreOptions) OptionsHeader {
	return OptionsHeader{
		Seed:       o.Seed,
		MaxRuns:    o.MaxRuns,
		MaxSteps:   o.MaxSteps,
		Reduction:  int(o.Reduction),
		SampleRuns: o.SampleRuns,
		SampleMode: int(o.SampleMode),
		Depth:      o.Depth,
		CrashRuns:  o.CrashRuns,
		CrashProb:  o.CrashProb,
		MaxCrashes: o.MaxCrashes,
		Model:      nonDefaultName(o.Model, sched.ModelAtomic),
		Adversary:  nonDefaultName(o.Adversary, sched.AdversaryUniformCrash),
	}
}

// ExploreOptions reconstructs the engine options a snapshot was taken
// under (worker count zero: the resumer picks its own).
func (h Header) ExploreOptions() sched.ExploreOptions {
	o := h.Options
	return sched.ExploreOptions{
		Seed:       o.Seed,
		MaxRuns:    o.MaxRuns,
		MaxSteps:   o.MaxSteps,
		Reduction:  sched.Reduction(o.Reduction),
		SampleRuns: o.SampleRuns,
		SampleMode: sched.SampleMode(o.SampleMode),
		Depth:      o.Depth,
		CrashRuns:  o.CrashRuns,
		CrashProb:  o.CrashProb,
		MaxCrashes: o.MaxCrashes,
		Model:      o.Model,
		Adversary:  o.Adversary,
	}
}

// payload is the engine-state part of a snapshot: exactly one engine
// field is set, matching the header's mode family. Stats rides along with
// whichever engine state is set: the observability registry's cumulative
// totals as of the checkpoint, restored on resume so a resumed campaign
// reports cumulative — not per-process-life — counters (docs/metrics.md).
//
//gsb:serialized
type payload struct {
	Explore *sched.ExploreState `json:"explore,omitempty"`
	Sample  *sample.BatchState  `json:"sample,omitempty"`
	Crash   *sched.SeededState  `json:"crash,omitempty"`
	Stats   *stats.Snapshot     `json:"stats,omitempty"`
}

// optionsHash computes the campaign identity hash of a header: the
// FNV-64a of a canonical rendering of everything that defines what the
// campaign computes. Shard index is excluded (shards of one campaign
// share the hash); shard count is included (a 3-way split is not the
// same campaign as a 5-way one).
func optionsHash(h Header) string {
	f := fnv.New64a()
	fmt.Fprintf(f, "v%d|mode=%s|task=%s|protocol=%s|n=%d|ids=%v|of=%d|", h.Version, h.Mode, h.Task, h.Protocol, h.N, h.IDs, h.Of)
	fmt.Fprintf(f, "seed=%d|maxruns=%d|maxsteps=%d|red=%d|sruns=%d|smode=%d|depth=%d|cruns=%d|cprob=%g|cmax=%d",
		h.Options.Seed, h.Options.MaxRuns, h.Options.MaxSteps, h.Options.Reduction,
		h.Options.SampleRuns, h.Options.SampleMode, h.Options.Depth,
		h.Options.CrashRuns, h.Options.CrashProb, h.Options.MaxCrashes)
	// Non-default memory model / adversary choices join the identity;
	// defaults contribute nothing, so hashes of snapshots from before the
	// registries existed are unchanged and keep resuming.
	if h.Options.Model != "" {
		fmt.Fprintf(f, "|model=%s", h.Options.Model)
	}
	if h.Options.Adversary != "" {
		fmt.Fprintf(f, "|adversary=%s", h.Options.Adversary)
	}
	return fmt.Sprintf("%016x", f.Sum64())
}

// writeSnapshot atomically writes header + payload to path, returning the
// snapshot size in bytes (the checkpoint-size gauge).
func writeSnapshot(path string, h Header, p payload) (int, error) {
	h.Magic, h.Version = Magic, Version
	h.OptionsHash = optionsHash(h)
	h.Updated = time.Now().UTC().Format(time.RFC3339) //gsb:nondeterminism-ok Updated is a freshness timestamp, excluded from optionsHash

	var buf bytes.Buffer
	henc := json.NewEncoder(&buf)
	if err := henc.Encode(h); err != nil {
		return 0, fmt.Errorf("campaign: encode header: %w", err)
	}
	penc := json.NewEncoder(&buf)
	if err := penc.Encode(p); err != nil {
		return 0, fmt.Errorf("campaign: encode payload: %w", err)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("campaign: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("campaign: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("campaign: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("campaign: checkpoint rename: %w", err)
	}
	return buf.Len(), nil
}

// decodeHeader parses and validates a snapshot's header line from the
// leading bytes of its content, returning the header and the bytes after
// the line (the payload). It is pure — no file I/O — so FuzzParseHeader
// can drive it with arbitrary inputs; the file-reading wrappers add path
// context to its errors.
func decodeHeader(data []byte) (Header, []byte, error) {
	var h Header
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return h, nil, errors.New("snapshot has no header line")
	}
	line, rest := data[:i+1], data[i+1:]
	if err := json.Unmarshal(line, &h); err != nil {
		return h, nil, fmt.Errorf("snapshot header is not JSON: %w", err)
	}
	if h.Magic != Magic {
		return h, nil, fmt.Errorf("not a campaign snapshot (magic %q)", h.Magic)
	}
	if h.Version != Version {
		return h, nil, fmt.Errorf("snapshot format version %d, this build reads version %d", h.Version, Version)
	}
	if want := optionsHash(h); h.OptionsHash != want {
		return h, nil, fmt.Errorf("header hash %s does not match its contents (%s): snapshot corrupted or hand-edited", h.OptionsHash, want)
	}
	if h.Of < 1 || h.Shard < 0 || h.Shard >= h.Of {
		return h, nil, fmt.Errorf("shard %d of %d is not a valid shard", h.Shard, h.Of)
	}
	return h, rest, nil
}

// decodeSnapshot parses and validates a whole snapshot (header line plus
// payload). Pure for the same reason as decodeHeader: FuzzDecodeSnapshot
// drives it directly.
func decodeSnapshot(data []byte) (Header, payload, error) {
	var p payload
	h, rest, err := decodeHeader(data)
	if err != nil {
		return h, p, err
	}
	dec := json.NewDecoder(bytes.NewReader(rest))
	if err := dec.Decode(&p); err != nil {
		return h, p, fmt.Errorf("snapshot payload: %w", err)
	}
	set := 0
	for _, ok := range []bool{p.Explore != nil, p.Sample != nil, p.Crash != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return h, p, fmt.Errorf("snapshot payload must carry exactly one engine state (has %d)", set)
	}
	if got, want := p.payloadFamily(), h.Mode.family(); got != want {
		return h, p, fmt.Errorf("payload family %q does not match mode %s", got, h.Mode)
	}
	return h, p, nil
}

// ReadHeader reads and validates only the snapshot header — the cheap
// read used by status and by merge's pre-flight checks. Only the first
// line of the file is read, so the cost is independent of payload size.
func ReadHeader(path string) (Header, error) {
	var h Header
	f, err := os.Open(path)
	if err != nil {
		return h, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return h, fmt.Errorf("campaign: %s: reading snapshot header: %w", path, err)
	}
	h, _, err = decodeHeader(line)
	if err != nil {
		return h, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return h, nil
}

// readSnapshot reads and validates a full snapshot.
func readSnapshot(path string) (Header, payload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, payload{}, fmt.Errorf("campaign: %w", err)
	}
	h, p, err := decodeSnapshot(data)
	if err != nil {
		return h, p, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return h, p, nil
}

func (p payload) payloadFamily() string {
	switch {
	case p.Explore != nil:
		return "explore"
	case p.Sample != nil:
		return "sample"
	case p.Crash != nil:
		return "crash"
	}
	return "none"
}
