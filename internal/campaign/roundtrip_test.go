package campaign

import (
	"testing"

	"repro/internal/lint"
)

// TestCheckpointStateRoundTrips: see the statefield analyzer
// (internal/lint) — every exported field of the //gsb:serialized structs,
// including the unexported payload struct's, must survive an
// encode/decode cycle.
func TestCheckpointStateRoundTrips(t *testing.T) {
	for _, v := range []any{
		&Header{},
		&OptionsHeader{},
		&Report{},
		&payload{},
	} {
		if err := lint.RoundTripJSON(v); err != nil {
			t.Error(err)
		}
	}
}
