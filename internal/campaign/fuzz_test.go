package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Fuzz targets for the snapshot wire format. Snapshots are the one input
// the campaign layer reads back from disk — written by possibly-killed
// earlier processes, copied between machines for merges, and occasionally
// hand-inspected — so the decoders must reject arbitrary corruption with
// an error, never a panic. decodeHeader and decodeSnapshot are pure
// functions of the file bytes precisely so these targets can drive them
// without any file I/O. CI runs each for a short -fuzztime as a smoke
// gate; longer local runs just work:
//
//	go test ./internal/campaign -fuzz FuzzDecodeSnapshot -fuzztime 60s

// seedSnapshots returns well-formed snapshot files (one per mode family)
// plus targeted mutants, produced by the real writer so the corpus tracks
// the format.
func seedSnapshots(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte

	write := func(h Header, p payload) {
		f.Helper()
		path := f.TempDir() + "/seed.gsb"
		if _, err := writeSnapshot(path, h, p); err != nil {
			f.Fatalf("writing seed snapshot: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, data)
	}

	reg := stats.New()
	reg.Counter("runs", "").Add(7)
	snap := reg.Snapshot()

	write(Header{
		Mode: ModeExhaustive, Protocol: "reg", Task: "wait-free", N: 3,
		IDs: []int{1, 2, 3}, Of: 1, Runs: 42,
		Options: optionsHeader(sched.ExploreOptions{Seed: 1, MaxSteps: 100}),
	}, payload{Explore: sched.RootExploreState(), Stats: &snap})

	write(Header{
		Mode: ModePCT, Protocol: "reg", Task: "wait-free", N: 2,
		IDs: []int{1, 2}, Of: 2, Shard: 1,
		Options: optionsHeader(sched.ExploreOptions{Seed: 9, SampleRuns: 10, Depth: 3}),
	}, payload{Sample: &sample.BatchState{
		Depth: 3, Horizon: 12,
		Pool:    sched.SeededState{Shard: 1, Of: 2, Next: 5, Completed: 5},
		Classes: map[uint64]int{0xdeadbeef: 2},
	}})

	write(Header{
		Mode: ModeCrash, Protocol: "reg", Task: "wait-free", N: 2,
		IDs: []int{1, 2}, Of: 1,
		Options: optionsHeader(sched.ExploreOptions{Seed: 5, CrashRuns: 10, CrashProb: 0.1}),
	}, payload{Crash: &sched.SeededState{Next: 4, Completed: 4}})

	// Targeted mutants: truncated, missing newline, header-only, junk.
	whole := seeds[0]
	seeds = append(seeds,
		whole[:len(whole)/2],
		bytes.ReplaceAll(whole, []byte("\n"), []byte(" ")),
		whole[:bytes.IndexByte(whole, '\n')+1],
		[]byte("{}\n{}\n"),
		[]byte("gsb-campaign but not json\n"),
	)
	return seeds
}

func FuzzParseHeader(f *testing.F) {
	for _, seed := range seedSnapshots(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, rest, err := decodeHeader(data)
		if err != nil {
			return
		}
		// A header the decoder accepts must uphold its invariants: the
		// declared magic/version, a self-consistent hash, a legal shard,
		// and a remainder that is a tail of the input.
		if h.Magic != Magic || h.Version != Version {
			t.Fatalf("accepted header with magic %q version %d", h.Magic, h.Version)
		}
		if h.OptionsHash != optionsHash(h) {
			t.Fatalf("accepted header whose hash does not cover its contents")
		}
		if h.Of < 1 || h.Shard < 0 || h.Shard >= h.Of {
			t.Fatalf("accepted invalid shard %d of %d", h.Shard, h.Of)
		}
		if len(rest) > len(data) {
			t.Fatalf("remainder longer than input")
		}
		// Accepted headers must re-encode: status endpoints marshal them.
		if _, err := json.Marshal(h); err != nil {
			t.Fatalf("accepted header does not re-encode: %v", err)
		}
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	for _, seed := range seedSnapshots(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, p, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		// An accepted snapshot carries exactly one engine state and its
		// family agrees with the header's mode.
		if got, want := p.payloadFamily(), h.Mode.family(); got != want || got == "none" {
			t.Fatalf("accepted payload family %q under mode %s", got, h.Mode)
		}
		// And it must survive a rewrite cycle: what a resume re-writes,
		// a later resume must accept (strings.Builder keeps this cheap).
		var b strings.Builder
		henc := json.NewEncoder(&b)
		if err := henc.Encode(h); err != nil {
			t.Fatalf("accepted snapshot header does not re-encode: %v", err)
		}
		penc := json.NewEncoder(&b)
		if err := penc.Encode(p); err != nil {
			t.Fatalf("accepted snapshot payload does not re-encode: %v", err)
		}
		if _, _, err := decodeSnapshot([]byte(b.String())); err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
	})
}
