package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/nocomm"
	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/tasks"
)

// campCase is a task plus solver small enough to campaign over in every
// mode: the same <4,2>/<5,3> family members the exploration engine's own
// differentials use, plus a seeded-bug case whose runs fail on a
// schedule-dependent subset.
type campCase struct {
	name  string
	spec  gsb.Spec
	build func(n int) tasks.Solver
}

func campCases(t *testing.T) []campCase {
	t.Helper()
	// <4,2,-,-> family member: WSB(4) solved from a (2n-2)-renaming
	// oracle box (2 scheduled steps per process, 2520 interleavings).
	wsb := campCase{
		name: "wsb-4-2",
		spec: gsb.WSB(4),
		build: func(n int) tasks.Solver {
			return tasks.NewWSBFromRenaming(n, tasks.NewBoxSolver(mem.NewTaskBox("R", gsb.Renaming(4, 6), 1)))
		},
	}
	// <5,3,-,-> family member: 3-bounded homonymous renaming solved
	// communication-free via Theorem 9 (1 step per process).
	spec53 := gsb.BoundedHomonymous(5, 3)
	delta, ok := nocomm.Build(spec53)
	if !ok {
		t.Fatalf("%v unexpectedly not solvable without communication", spec53)
	}
	bh := campCase{
		name: "bounded-homonymous-5-3",
		spec: spec53,
		build: func(n int) tasks.Solver {
			return tasks.SolverFunc(func(p *sched.Proc, id int) int { return delta[id-1] })
		},
	}
	return []campCase{wsb, bh}
}

// racyCase plants a schedule-dependent bug: a "perfect renaming" solver
// deciding off a racy shared counter, so lost updates yield duplicate
// names on some — not all — interleavings. Campaigns must report exactly
// the reference engines' lexicographically smallest violation.
func racyCase() campCase {
	return campCase{
		name: "racy-renaming-3",
		spec: gsb.PerfectRenaming(3),
		build: func(n int) tasks.Solver {
			counter := 0
			return tasks.SolverFunc(func(p *sched.Proc, id int) int {
				v := p.Exec("X.read", func() any { return counter }).(int)
				p.Exec("X.write", func() any { counter = v + 1; return nil })
				return v + 1
			})
		},
	}
}

var campModes = []Mode{ModeExhaustive, ModePOR, ModePORMemo, ModeWalk, ModePCT, ModeCrash}

// optsFor builds the exploration options selecting the given mode.
func optsFor(mode Mode, workers int) sched.ExploreOptions {
	opts := sched.ExploreOptions{Workers: workers, Seed: 3}
	switch mode {
	case ModePOR:
		opts.Reduction = sched.ReductionSleepSets
	case ModePORMemo:
		opts.Reduction = sched.ReductionSleepMemo
	case ModeWalk:
		opts.SampleRuns = 300
	case ModePCT:
		opts.SampleRuns = 300
		opts.SampleMode = sched.SamplePCT
		opts.Depth = 3
	case ModeCrash:
		opts.CrashRuns = 300
		opts.CrashProb = 0.05
	}
	return opts
}

// reference runs the uninterrupted single-process mode and returns its
// count, sampling report (zero outside sampling) and verdict text.
func reference(t *testing.T, tc campCase, opts sched.ExploreOptions) (int, sample.Report, string) {
	t.Helper()
	ids := sched.DefaultIDs(tc.spec.N())
	if opts.SampleRuns > 0 {
		rep, err := tasks.SampleVerified(context.Background(), tc.spec, ids, opts, tc.build)
		return rep.Runs, rep, errText(err)
	}
	count, err := tasks.ExploreVerified(context.Background(), tc.spec, ids, opts, tc.build)
	return count, sample.Report{}, errText(err)
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func cfgFor(tc campCase, opts sched.ExploreOptions, path string) Config {
	return Config{
		Protocol:        tc.name,
		Spec:            tc.spec,
		Opts:            opts,
		Build:           tc.build,
		CheckpointEvery: 100,
		Path:            path,
	}
}

// checkAgainstReference compares a campaign report + verdict against the
// uninterrupted single-process reference of the same options.
func checkAgainstReference(t *testing.T, label string, tc campCase, opts sched.ExploreOptions, rep Report, err error) {
	t.Helper()
	wantCount, wantSample, wantErr := reference(t, tc, opts)
	if rep.Schedules != wantCount || errText(err) != wantErr {
		t.Errorf("%s: campaign (%d, %q), reference (%d, %q)", label, rep.Schedules, errText(err), wantCount, wantErr)
	}
	if opts.SampleRuns > 0 && rep.Classes != wantSample.Classes {
		t.Errorf("%s: campaign found %d classes, reference %d", label, rep.Classes, wantSample.Classes)
	}
}

// TestCampaignUninterruptedMatchesReference: a campaign that never
// pauses reports exactly what the one-shot engines report, in every mode
// at workers 1, 2 and 8.
func TestCampaignUninterruptedMatchesReference(t *testing.T) {
	for _, tc := range campCases(t) {
		for _, mode := range campModes {
			for _, workers := range []int{1, 2, 8} {
				opts := optsFor(mode, workers)
				path := filepath.Join(t.TempDir(), "c.ckpt")
				rep, err := Start(context.Background(), cfgFor(tc, opts, path))
				label := fmt.Sprintf("%s %s workers=%d", tc.name, mode, workers)
				if !rep.Done {
					t.Errorf("%s: campaign not done", label)
				}
				checkAgainstReference(t, label, tc, opts, rep, err)
			}
		}
	}
}

// TestCampaignKillResumeMatchesReference kills campaigns at random
// checkpoints — the in-memory engine is discarded, only the snapshot
// file survives — and resumes until done, possibly dying several times.
// The final report must be identical to the uninterrupted reference, in
// every mode, for clean and violating protocols.
func TestCampaignKillResumeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := append(campCases(t), racyCase())
	for _, tc := range cases {
		for _, mode := range campModes {
			opts := optsFor(mode, 2)
			path := filepath.Join(t.TempDir(), "c.ckpt")
			label := fmt.Sprintf("%s %s", tc.name, mode)

			cfg := cfgFor(tc, opts, path)
			cfg.CheckpointEvery = 50
			var rep Report
			var err error
			for attempt := 0; ; attempt++ {
				if attempt > 1000 {
					t.Fatalf("%s: campaign failed to finish after %d kills", label, attempt)
				}
				ctx, cancel := context.WithCancel(context.Background())
				killAt := 1 + rng.Intn(3)
				seen := 0
				cfg.OnCheckpoint = func(Header) {
					if seen++; seen == killAt {
						cancel()
					}
				}
				if attempt == 0 {
					rep, err = Start(ctx, cfg)
				} else {
					rep, err = Resume(ctx, cfg)
				}
				cancel()
				if !errors.Is(err, ErrPaused) {
					break
				}
			}
			if !rep.Done {
				t.Errorf("%s: campaign not done after resume chain", label)
			}
			checkAgainstReference(t, label, tc, opts, rep, err)
		}
	}
}

// TestCampaignShardMergeMatchesReference runs every campaign as 3
// independent shards — each checkpointing and being killed/resumed on
// its own — and asserts the merged report is identical to the
// uninterrupted single-process reference, in every mode, for clean and
// violating protocols.
func TestCampaignShardMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := append(campCases(t), racyCase())
	for _, tc := range cases {
		for _, mode := range campModes {
			const shards = 3
			opts := optsFor(mode, 2)
			dir := t.TempDir()
			label := fmt.Sprintf("%s %s", tc.name, mode)
			paths := make([]string, shards)
			for s := 0; s < shards; s++ {
				paths[s] = filepath.Join(dir, fmt.Sprintf("shard-%d.ckpt", s))
				cfg := cfgFor(tc, opts, paths[s])
				cfg.Shard, cfg.Of = s, shards
				cfg.CheckpointEvery = 40
				var err error
				for attempt := 0; ; attempt++ {
					if attempt > 1000 {
						t.Fatalf("%s shard %d: failed to finish", label, s)
					}
					ctx, cancel := context.WithCancel(context.Background())
					if rng.Intn(2) == 0 { // half the attempts die at the first checkpoint
						cfg.OnCheckpoint = func(Header) { cancel() }
					} else {
						cfg.OnCheckpoint = nil
					}
					if attempt == 0 {
						_, err = Start(ctx, cfg)
					} else {
						_, err = Resume(ctx, cfg)
					}
					cancel()
					if !errors.Is(err, ErrPaused) {
						break
					}
				}
			}
			mergeCfg := cfgFor(tc, opts, paths[0])
			rep, err := Merge(context.Background(), mergeCfg, paths)
			checkAgainstReference(t, label, tc, opts, rep, err)
		}
	}
}

// TestCampaignResumeRejectsChangedOptions: resuming a snapshot under any
// changed campaign-defining option fails loudly with ErrOptionsMismatch.
func TestCampaignResumeRejectsChangedOptions(t *testing.T) {
	tc := campCases(t)[0]
	opts := optsFor(ModeWalk, 2)
	path := filepath.Join(t.TempDir(), "c.ckpt")
	cfg := cfgFor(tc, opts, path)
	cfg.CheckpointEvery = 50

	ctx, cancel := context.WithCancel(context.Background())
	cfg.OnCheckpoint = func(Header) { cancel() }
	_, err := Start(ctx, cfg)
	cancel()
	if !errors.Is(err, ErrPaused) {
		t.Fatalf("expected a paused campaign, got %v", err)
	}

	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"seed", func(c *Config) { c.Opts.Seed = 4 }},
		{"runs", func(c *Config) { c.Opts.SampleRuns = 301 }},
		{"mode", func(c *Config) { c.Opts.SampleMode = sched.SamplePCT }},
		{"reduction", func(c *Config) { c.Opts.SampleRuns = 0; c.Opts.Reduction = sched.ReductionSleepSets }},
		{"protocol", func(c *Config) { c.Protocol = "other" }},
	}
	for _, m := range mutations {
		bad := cfg
		bad.OnCheckpoint = nil
		m.mutate(&bad)
		if _, err := Resume(context.Background(), bad); !errors.Is(err, ErrOptionsMismatch) {
			t.Errorf("resume with changed %s: got %v, want ErrOptionsMismatch", m.name, err)
		}
	}
	// Changing only execution details must be allowed.
	ok := cfg
	ok.OnCheckpoint = nil
	ok.Opts.Workers = 7
	ok.CheckpointEvery = 999
	if rep, err := Resume(context.Background(), ok); err != nil || !rep.Done {
		t.Errorf("resume with changed workers/interval: (%+v, %v)", rep, err)
	}
}

// TestCampaignSnapshotValidation: corrupted and foreign files are
// rejected with specific errors, and Start refuses to overwrite an
// existing snapshot without Force.
func TestCampaignSnapshotValidation(t *testing.T) {
	dir := t.TempDir()
	tc := campCases(t)[1]
	opts := optsFor(ModeExhaustive, 1)
	path := filepath.Join(dir, "c.ckpt")
	cfg := cfgFor(tc, opts, path)
	if _, err := Start(context.Background(), cfg); err != nil {
		t.Fatalf("campaign: %v", err)
	}

	if _, err := Start(context.Background(), cfg); err == nil {
		t.Error("second Start over an existing snapshot succeeded without Force")
	}
	cfg.Force = true
	if _, err := Start(context.Background(), cfg); err != nil {
		t.Errorf("Start with Force: %v", err)
	}

	notSnap := filepath.Join(dir, "not-a-snapshot")
	if err := os.WriteFile(notSnap, []byte("{\"magic\":\"nope\"}\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Path = notSnap
	if _, err := Resume(context.Background(), bad); err == nil {
		t.Error("resume of a non-snapshot file succeeded")
	}

	// A truncated payload (header only) must be rejected, not treated as
	// an empty state.
	if _, err := ReadHeader(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := 0
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	trunc := filepath.Join(dir, "truncated.ckpt")
	if err := os.WriteFile(trunc, data[:nl+1], 0o644); err != nil {
		t.Fatal(err)
	}
	bad.Path = trunc
	if _, err := Resume(context.Background(), bad); err == nil {
		t.Error("resume of a truncated snapshot succeeded")
	}

	// Status on the good snapshot reports a finished campaign.
	st, err := Status(path)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if !st.Done || st.Mode != ModeExhaustive || st.Result == nil || st.Result.Schedules == 0 {
		t.Errorf("status of a finished campaign: %+v", st)
	}
}

// TestCampaignResumeAfterDone: resuming a finished campaign is a cheap
// no-op that reproduces the final report.
func TestCampaignResumeAfterDone(t *testing.T) {
	tc := campCases(t)[1]
	opts := optsFor(ModePOR, 2)
	path := filepath.Join(t.TempDir(), "c.ckpt")
	cfg := cfgFor(tc, opts, path)
	rep1, err1 := Start(context.Background(), cfg)
	if err1 != nil {
		t.Fatalf("start: %v", err1)
	}
	rep2, err2 := Resume(context.Background(), cfg)
	if err2 != nil || rep2.Schedules != rep1.Schedules || !rep2.Done {
		t.Errorf("resume after done: (%+v, %v), first run (%+v)", rep2, err2, rep1)
	}
}
