package campaign

import (
	_ "embed"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/timeline"
)

// This file is the live view of a running campaign: an Observer owns the
// stats registry the engines publish into and renders it four ways —
// Prometheus /metrics, a JSON /status endpoint (schema gsbstatus/v1),
// periodic NDJSON progress records (schema gsbprogress/v1) for shard
// logs, and the /timeline history endpoint backed by the gsbtimeline/v1
// sidecar (plus the embedded dashboard at / that charts it). The run
// loop feeds it identity and checkpoint events; rates are computed
// against a base that is re-anchored after a resume restores the
// checkpointed totals, so runs/sec measures this process life while the
// run counters stay cumulative. Every wall-clock read lives here, in the
// observer layer — never in result-computing code.

// Schema identifiers of the observer's JSON records.
const (
	// StatusSchema tags /status responses.
	StatusSchema = "gsbstatus/v1"
	// ProgressSchema tags the periodic NDJSON progress records written to
	// stderr by gsbcampaign -progress.
	ProgressSchema = "gsbprogress/v1"
)

// StatusRecord is one progress observation of a campaign shard — the
// /status response body and, with Time set, one gsbprogress/v1 NDJSON
// line. Counter fields are cumulative across resumed lives; rate fields
// measure the current process life.
type StatusRecord struct {
	Schema   string `json:"schema"`
	Time     string `json:"time,omitempty"` // RFC3339, progress records only
	Mode     Mode   `json:"mode"`
	Protocol string `json:"protocol"`
	Task     string `json:"task"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
	Done     bool   `json:"done"`
	// Runs is gsb_runs_total (every engine run, probe runs included);
	// Schedules and Classes are the verified-schedule and distinct-class
	// counters of the enumerating and sampling engines.
	Runs      int64 `json:"runs"`
	Schedules int64 `json:"schedules"`
	Classes   int64 `json:"classes,omitempty"`
	// Frontier is the exploration frontier gauge (explore family only).
	Frontier int64 `json:"frontier,omitempty"`
	// TotalRuns is the shard-local run budget (seeded modes; 0 when the
	// total is unknowable, explore family), the denominator behind
	// ETASec. ETASec is omitted until a rate is measurable.
	TotalRuns  int64   `json:"total_runs,omitempty"`
	RunsPerSec float64 `json:"runs_per_sec"`
	ETASec     float64 `json:"eta_sec,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// Checkpoints counts snapshot writes (cumulative);
	// LastCheckpointAgeSec is the age of the newest one, absent before
	// the first write of this life.
	Checkpoints          int64    `json:"checkpoints"`
	LastCheckpointAgeSec *float64 `json:"last_checkpoint_age_sec,omitempty"`
}

// Observer is the live observability endpoint of one campaign shard: set
// it as Config.Observer and serve Handler, or poll Progress. An Observer
// observes one campaign at a time (Start/Resume re-attach it); the zero
// value is not usable, use NewObserver.
type Observer struct {
	reg *stats.Registry

	mu          sync.Mutex
	h           Header    // identity + latest checkpointed progress
	total       int64     // shard-local run budget; 0 = unknown
	start       time.Time // rate base: attach time (post-restore)
	base        int64     // gsb_runs_total at the rate base
	lastCkpt    time.Time // last snapshot write of this life
	checkpoints int64     // cumulative, restored base included
	attached    bool

	// Timeline sampling state: the sidecar path /timeline reads, and the
	// previous sample's anchors for the per-interval rate and the mean
	// checkpoint write latency.
	timelinePath   string
	lastSample     time.Time
	lastSampleRuns int64
	lastCkptSum    float64
	lastCkptCount  int64
}

// NewObserver returns an observer with a fresh registry.
func NewObserver() *Observer {
	return &Observer{reg: stats.New()}
}

// Registry is the stats registry the observed campaign publishes into.
func (o *Observer) Registry() *stats.Registry { return o.reg }

// attach (re-)anchors the observer on a campaign: called by the run loop
// after any checkpointed totals have been restored into the registry, so
// the rate base separates this life's work from restored history.
func (o *Observer) attach(h Header, total int64, timelinePath string) {
	snap := o.reg.Snapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.h = h
	o.total = total
	o.start = time.Now() //gsb:nondeterminism-ok progress-rate baseline; Observer never touches results
	o.base = snap.Counter(sched.MetricRuns)
	o.lastCkpt = time.Time{}
	o.checkpoints = snap.Counter(MetricCheckpointWrites)
	o.attached = true
	o.timelinePath = timelinePath
	o.lastSample = o.start
	o.lastSampleRuns = o.base
	ckpt := snap.Histograms[MetricCheckpointSeconds]
	o.lastCkptSum, o.lastCkptCount = ckpt.Sum, ckpt.Count
}

// checkpoint records a snapshot write (the header just written).
func (o *Observer) checkpoint(h Header) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.h = h
	o.lastCkpt = time.Now() //gsb:nondeterminism-ok checkpoint-age display only
	o.checkpoints++
}

// sample maps a registry snapshot — the one the run loop is about to
// seal into a checkpoint — to a gsbtimeline/v1 record. The counter
// columns come straight from the snapshot, so they are deterministic
// exactly where the underlying metrics are; the timestamp and the rate
// and checkpoint-health columns describe this sampling interval and are
// the only wall-clock-derived fields in the whole timeline.
func (o *Observer) sample(h Header, snap stats.Snapshot) timeline.Record {
	now := time.Now() //gsb:nondeterminism-ok timeline sample timestamp/rate; observer layer only
	o.mu.Lock()
	defer o.mu.Unlock()
	rec := timeline.Record{
		Time:        now.UTC().Format(time.RFC3339Nano),
		Shard:       h.Shard,
		Of:          h.Of,
		Done:        h.Done,
		Runs:        snap.Counter(sched.MetricRuns),
		Schedules:   snap.Counter(sched.MetricSchedules),
		Classes:     snap.Counter(sample.MetricClasses),
		Steals:      snap.Counter(sched.MetricSteals),
		Aborts:      snap.Counter(sched.MetricAborts),
		Frontier:    snap.Gauges[sched.MetricFrontierDepth],
		Checkpoints: snap.Counter(MetricCheckpointWrites),
	}
	if dt := now.Sub(o.lastSample).Seconds(); dt > 0 {
		rec.RunsPerSec = float64(rec.Runs-o.lastSampleRuns) / dt
	}
	if !o.lastCkpt.IsZero() {
		rec.CheckpointAgeSec = now.Sub(o.lastCkpt).Seconds()
	}
	ckpt := snap.Histograms[MetricCheckpointSeconds]
	if n := ckpt.Count - o.lastCkptCount; n > 0 {
		rec.CheckpointWriteSec = (ckpt.Sum - o.lastCkptSum) / float64(n)
	}
	o.lastSample, o.lastSampleRuns = now, rec.Runs
	o.lastCkptSum, o.lastCkptCount = ckpt.Sum, ckpt.Count
	return rec
}

// Progress renders the current state as a gsbprogress/v1 record
// (timestamped, for NDJSON logs).
func (o *Observer) Progress() StatusRecord {
	rec := o.status()
	rec.Schema = ProgressSchema
	rec.Time = time.Now().UTC().Format(time.RFC3339) //gsb:nondeterminism-ok NDJSON progress timestamp
	return rec
}

func (o *Observer) status() StatusRecord {
	snap := o.reg.Snapshot()
	now := time.Now() //gsb:nondeterminism-ok rate/ETA arithmetic for status display
	o.mu.Lock()
	defer o.mu.Unlock()
	rec := StatusRecord{
		Schema:      StatusSchema,
		Mode:        o.h.Mode,
		Protocol:    o.h.Protocol,
		Task:        o.h.Task,
		Shard:       o.h.Shard,
		Of:          o.h.Of,
		Done:        o.h.Done,
		Runs:        snap.Counter(sched.MetricRuns),
		Schedules:   snap.Counter(sched.MetricSchedules),
		Classes:     snap.Counter(sample.MetricClasses),
		Frontier:    snap.Gauges[sched.MetricFrontierDepth],
		TotalRuns:   o.total,
		Checkpoints: o.checkpoints,
	}
	if !o.attached {
		return rec
	}
	elapsed := now.Sub(o.start).Seconds()
	rec.ElapsedSec = elapsed
	if elapsed > 0 {
		rec.RunsPerSec = float64(rec.Runs-o.base) / elapsed
	}
	rec.ETASec = etaSec(o.total, rec.Runs, rec.RunsPerSec, rec.Done)
	if !o.lastCkpt.IsZero() {
		age := now.Sub(o.lastCkpt).Seconds()
		rec.LastCheckpointAgeSec = &age
	}
	return rec
}

// etaSec is the remaining-time estimate behind the eta_sec field, and
// returns 0 — which omits the field — whenever no honest estimate
// exists: an unknown total (the enumerating family, whose run count is
// unknowable up front), no measurable rate yet, a finished campaign, or
// cumulative runs already at/past the budget (probe runs can overshoot
// it). Anything else would serialize a bogus ETA.
func etaSec(total, runs int64, rate float64, done bool) float64 {
	if total <= 0 || rate <= 0 || done {
		return 0
	}
	left := total - runs
	if left <= 0 {
		return 0
	}
	return float64(left) / rate
}

// dashboardHTML is the embedded zero-dependency HTML/SVG dashboard
// served at /: it charts coverage growth (classes vs runs), the
// runs/sec trend, frontier depth and checkpoint freshness by polling
// /status and /timeline.
//
//go:embed dashboard.html
var dashboardHTML []byte

// TimelinePath is the gsbtimeline/v1 sidecar file the observed campaign
// appends to ("" before a campaign with a timeline attaches).
func (o *Observer) TimelinePath() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.timelinePath
}

// Timeline reads the observed campaign's timeline series from its
// sidecar, skipping records before the since index. It returns an empty
// series (never an error) while no sidecar exists yet.
func (o *Observer) Timeline(since int64) ([]timeline.Record, error) {
	path := o.TimelinePath()
	if path == "" {
		return nil, nil
	}
	recs, err := timeline.Read(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return timeline.Since(recs, since), nil
}

// Handler serves the observability endpoints: GET /metrics (Prometheus
// text exposition of the registry), GET /status (a gsbstatus/v1 JSON
// StatusRecord), GET /timeline (the gsbtimeline/v1 series as a JSON
// array; ?since=N skips records below sample index N), and GET / (the
// embedded dashboard). It is what gsbcampaign -metrics binds.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(o.status())
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		var since int64
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "since: not an integer", http.StatusBadRequest)
				return
			}
			since = v
		}
		recs, err := o.Timeline(since)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if recs == nil {
			recs = []timeline.Record{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(recs)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(dashboardHTML)
	})
	return mux
}
