package campaign

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/stats"
)

// This file is the live view of a running campaign: an Observer owns the
// stats registry the engines publish into and renders it three ways —
// Prometheus /metrics, a JSON /status endpoint (schema gsbstatus/v1), and
// periodic NDJSON progress records (schema gsbprogress/v1) for shard
// logs. The run loop feeds it identity and checkpoint events; rates are
// computed against a base that is re-anchored after a resume restores the
// checkpointed totals, so runs/sec measures this process life while the
// run counters stay cumulative.

// Schema identifiers of the observer's JSON records.
const (
	// StatusSchema tags /status responses.
	StatusSchema = "gsbstatus/v1"
	// ProgressSchema tags the periodic NDJSON progress records written to
	// stderr by gsbcampaign -progress.
	ProgressSchema = "gsbprogress/v1"
)

// StatusRecord is one progress observation of a campaign shard — the
// /status response body and, with Time set, one gsbprogress/v1 NDJSON
// line. Counter fields are cumulative across resumed lives; rate fields
// measure the current process life.
type StatusRecord struct {
	Schema   string `json:"schema"`
	Time     string `json:"time,omitempty"` // RFC3339, progress records only
	Mode     Mode   `json:"mode"`
	Protocol string `json:"protocol"`
	Task     string `json:"task"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
	Done     bool   `json:"done"`
	// Runs is gsb_runs_total (every engine run, probe runs included);
	// Schedules and Classes are the verified-schedule and distinct-class
	// counters of the enumerating and sampling engines.
	Runs      int64 `json:"runs"`
	Schedules int64 `json:"schedules"`
	Classes   int64 `json:"classes,omitempty"`
	// Frontier is the exploration frontier gauge (explore family only).
	Frontier int64 `json:"frontier,omitempty"`
	// TotalRuns is the shard-local run budget (seeded modes; 0 when the
	// total is unknowable, explore family), the denominator behind
	// ETASec. ETASec is omitted until a rate is measurable.
	TotalRuns  int64   `json:"total_runs,omitempty"`
	RunsPerSec float64 `json:"runs_per_sec"`
	ETASec     float64 `json:"eta_sec,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// Checkpoints counts snapshot writes (cumulative);
	// LastCheckpointAgeSec is the age of the newest one, absent before
	// the first write of this life.
	Checkpoints          int64    `json:"checkpoints"`
	LastCheckpointAgeSec *float64 `json:"last_checkpoint_age_sec,omitempty"`
}

// Observer is the live observability endpoint of one campaign shard: set
// it as Config.Observer and serve Handler, or poll Progress. An Observer
// observes one campaign at a time (Start/Resume re-attach it); the zero
// value is not usable, use NewObserver.
type Observer struct {
	reg *stats.Registry

	mu          sync.Mutex
	h           Header    // identity + latest checkpointed progress
	total       int64     // shard-local run budget; 0 = unknown
	start       time.Time // rate base: attach time (post-restore)
	base        int64     // gsb_runs_total at the rate base
	lastCkpt    time.Time // last snapshot write of this life
	checkpoints int64     // cumulative, restored base included
	attached    bool
}

// NewObserver returns an observer with a fresh registry.
func NewObserver() *Observer {
	return &Observer{reg: stats.New()}
}

// Registry is the stats registry the observed campaign publishes into.
func (o *Observer) Registry() *stats.Registry { return o.reg }

// attach (re-)anchors the observer on a campaign: called by the run loop
// after any checkpointed totals have been restored into the registry, so
// the rate base separates this life's work from restored history.
func (o *Observer) attach(h Header, total int64) {
	snap := o.reg.Snapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.h = h
	o.total = total
	o.start = time.Now() //gsb:nondeterminism-ok progress-rate baseline; Observer never touches results
	o.base = snap.Counter(sched.MetricRuns)
	o.lastCkpt = time.Time{}
	o.checkpoints = snap.Counter(MetricCheckpointWrites)
	o.attached = true
}

// checkpoint records a snapshot write (the header just written).
func (o *Observer) checkpoint(h Header) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.h = h
	o.lastCkpt = time.Now() //gsb:nondeterminism-ok checkpoint-age display only
	o.checkpoints++
}

// Progress renders the current state as a gsbprogress/v1 record
// (timestamped, for NDJSON logs).
func (o *Observer) Progress() StatusRecord {
	rec := o.status()
	rec.Schema = ProgressSchema
	rec.Time = time.Now().UTC().Format(time.RFC3339) //gsb:nondeterminism-ok NDJSON progress timestamp
	return rec
}

func (o *Observer) status() StatusRecord {
	snap := o.reg.Snapshot()
	now := time.Now() //gsb:nondeterminism-ok rate/ETA arithmetic for status display
	o.mu.Lock()
	defer o.mu.Unlock()
	rec := StatusRecord{
		Schema:      StatusSchema,
		Mode:        o.h.Mode,
		Protocol:    o.h.Protocol,
		Task:        o.h.Task,
		Shard:       o.h.Shard,
		Of:          o.h.Of,
		Done:        o.h.Done,
		Runs:        snap.Counter(sched.MetricRuns),
		Schedules:   snap.Counter(sched.MetricSchedules),
		Classes:     snap.Counter(sample.MetricClasses),
		Frontier:    snap.Gauges[sched.MetricFrontierDepth],
		TotalRuns:   o.total,
		Checkpoints: o.checkpoints,
	}
	if !o.attached {
		return rec
	}
	elapsed := now.Sub(o.start).Seconds()
	rec.ElapsedSec = elapsed
	if elapsed > 0 {
		rec.RunsPerSec = float64(rec.Runs-o.base) / elapsed
	}
	if o.total > 0 && rec.RunsPerSec > 0 && !rec.Done {
		if left := o.total - rec.Runs; left > 0 {
			rec.ETASec = float64(left) / rec.RunsPerSec
		}
	}
	if !o.lastCkpt.IsZero() {
		age := now.Sub(o.lastCkpt).Seconds()
		rec.LastCheckpointAgeSec = &age
	}
	return rec
}

// Handler serves the observability endpoints: GET /metrics (Prometheus
// text exposition of the registry) and GET /status (a gsbstatus/v1 JSON
// StatusRecord). It is what gsbcampaign -metrics binds.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(o.status())
	})
	return mux
}
