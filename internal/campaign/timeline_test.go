package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/timeline"
)

// timelineKey is the deterministic projection of a timeline record used
// by the differentials: sample index, run count at the checkpoint
// boundary and the done flag are reproducible in every mode; schedules
// and classes additionally are for the seeded (sample/crash) families,
// whose slices execute a fixed index range. The explore family's
// mid-flight schedule/abort counts depend on worker interleaving and are
// never differential-tested (the same contract as statsCounters).
func timelineKey(mode Mode, r timeline.Record) string {
	k := fmt.Sprintf("i%d runs%d done%v", r.Index, r.Runs, r.Done)
	if mode.family() != "explore" {
		k += fmt.Sprintf(" sched%d classes%d", r.Schedules, r.Classes)
	}
	return k
}

func timelineKeys(mode Mode, recs []timeline.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = timelineKey(mode, r)
	}
	return out
}

// TestCampaignTimelineKillResumeContinuity is the timeline continuity
// differential in all 6 modes: a campaign killed at random checkpoints
// and resumed until done must leave exactly the timeline series of an
// uninterrupted run — one continuous monotone sequence of samples, no
// gap, duplicate or fork at any kill point. (The torn-tail and
// append-before-write recovery paths are what this exercises: every kill
// lands between a sample append and the next one.)
func TestCampaignTimelineKillResumeContinuity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	killed := 0
	tc := campCases(t)[0]
	for _, mode := range campModes {
		opts := optsFor(mode, 2)
		label := fmt.Sprintf("%s %s", tc.name, mode)

		refCfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "ref.ckpt"))
		refCfg.CheckpointEvery = 50
		refCfg.Observer = NewObserver()
		if _, err := Start(context.Background(), refCfg); err != nil {
			t.Fatalf("%s: reference campaign: %v", label, err)
		}
		want, err := timeline.Read(refCfg.timelinePath())
		if err != nil {
			t.Fatalf("%s: reference timeline: %v", label, err)
		}
		if len(want) == 0 || !want[len(want)-1].Done {
			t.Fatalf("%s: reference timeline %+v has no done sample", label, want)
		}

		cfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "c.ckpt"))
		cfg.CheckpointEvery = 50
		lives := 0
		for attempt := 0; ; attempt++ {
			if attempt > 1000 {
				t.Fatalf("%s: campaign failed to finish after %d kills", label, attempt)
			}
			ctx, cancel := context.WithCancel(context.Background())
			killAt := 1 + rng.Intn(3)
			seen := 0
			cfg.OnCheckpoint = func(Header) {
				if seen++; seen == killAt {
					cancel()
				}
			}
			cfg.Observer = NewObserver() // fresh observer per life, like the CLI
			var err error
			if attempt == 0 {
				_, err = Start(ctx, cfg)
			} else {
				_, err = Resume(ctx, cfg)
			}
			cancel()
			lives++
			if !errors.Is(err, ErrPaused) {
				if err != nil {
					t.Fatalf("%s: resumed campaign: %v", label, err)
				}
				break
			}
		}
		if lives >= 2 {
			killed++
		}
		got, err := timeline.Read(cfg.timelinePath())
		if err != nil {
			t.Fatalf("%s: resumed timeline: %v", label, err)
		}
		gk, wk := timelineKeys(mode, got), timelineKeys(mode, want)
		if fmt.Sprint(gk) != fmt.Sprint(wk) {
			t.Errorf("%s: killed-and-resumed timeline (%d lives) diverged from uninterrupted:\n got %v\nwant %v",
				label, lives, gk, wk)
		}
	}
	if killed == 0 {
		t.Fatal("no campaign in the matrix was ever killed; the differential tested nothing")
	}
}

// TestCampaignTimelineShardMergeConcat: merging shard timelines is
// exactly concatenation ordered by sample index (ties by shard) — the
// merged series contains every shard sample once, in (index, shard)
// order, and round-trips through the merged-file format.
func TestCampaignTimelineShardMergeConcat(t *testing.T) {
	const shards = 3
	tc := campCases(t)[0]
	opts := optsFor(ModeWalk, 2)

	dir := t.TempDir()
	series := make([][]timeline.Record, shards)
	var concat []timeline.Record
	for s := 0; s < shards; s++ {
		cfg := cfgFor(tc, opts, filepath.Join(dir, fmt.Sprintf("shard-%d.ckpt", s)))
		cfg.Shard, cfg.Of = s, shards
		cfg.CheckpointEvery = 40
		cfg.Observer = NewObserver()
		if _, err := Start(context.Background(), cfg); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		recs, err := timeline.Read(cfg.timelinePath())
		if err != nil {
			t.Fatalf("shard %d timeline: %v", s, err)
		}
		if len(recs) == 0 || !recs[len(recs)-1].Done {
			t.Fatalf("shard %d timeline has no done sample: %+v", s, recs)
		}
		for i, r := range recs {
			if r.Index != int64(i) || r.Shard != s || r.Of != shards {
				t.Fatalf("shard %d sample %d = index %d shard %d/%d", s, i, r.Index, r.Shard, r.Of)
			}
		}
		series[s] = recs
		concat = append(concat, recs...)
	}

	merged, err := timeline.Merge(series...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(merged) != len(concat) {
		t.Fatalf("merged %d samples, shards hold %d", len(merged), len(concat))
	}
	for i := 1; i < len(merged); i++ {
		a, b := merged[i-1], merged[i]
		if b.Index < a.Index || (b.Index == a.Index && b.Shard <= a.Shard) {
			t.Fatalf("merged[%d..%d] out of (index, shard) order: %+v, %+v", i-1, i, a, b)
		}
	}
	// Same multiset: every concatenated record appears exactly once.
	seen := map[string]int{}
	for _, r := range concat {
		seen[fmt.Sprintf("%d/%d", r.Shard, r.Index)]++
	}
	for _, r := range merged {
		seen[fmt.Sprintf("%d/%d", r.Shard, r.Index)]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("merge is not a permutation of the concatenation: %s count off by %d", k, v)
		}
	}

	out := filepath.Join(dir, "merged.timeline")
	if err := timeline.WriteFile(out, merged); err != nil {
		t.Fatalf("write merged: %v", err)
	}
	back, err := timeline.Read(out)
	if err != nil {
		t.Fatalf("read merged: %v", err)
	}
	if len(back) != len(merged) {
		t.Fatalf("merged file round trip: %d != %d", len(back), len(merged))
	}
}

// TestObserverTimelineEndpoint golden-checks the /timeline endpoint and
// the embedded dashboard against a completed walk campaign.
func TestObserverTimelineEndpoint(t *testing.T) {
	tc := campCases(t)[0]
	opts := optsFor(ModeWalk, 2)
	obs := NewObserver()
	cfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "c.ckpt"))
	cfg.CheckpointEvery = 100
	cfg.Observer = obs
	rep, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if got := obs.TimelinePath(); got != cfg.timelinePath() {
		t.Fatalf("observer timeline path = %q, want %q", got, cfg.timelinePath())
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	getJSON := func(url string) []timeline.Record {
		t.Helper()
		res, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != 200 {
			t.Fatalf("GET %s: %s", url, res.Status)
		}
		if ct := res.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s content type = %q", url, ct)
		}
		var recs []timeline.Record
		if err := json.NewDecoder(res.Body).Decode(&recs); err != nil {
			t.Fatal(err)
		}
		return recs
	}

	recs := getJSON(srv.URL + "/timeline")
	// 300 sample runs at CheckpointEvery 100: samples at 100, 200 and the
	// final done sample at 300.
	if len(recs) != 3 {
		t.Fatalf("/timeline returned %d samples, want 3: %+v", len(recs), recs)
	}
	for i, r := range recs {
		if r.Schema != timeline.Schema {
			t.Errorf("/timeline[%d] schema = %q", i, r.Schema)
		}
		if r.Index != int64(i) {
			t.Errorf("/timeline[%d] index = %d", i, r.Index)
		}
		if r.Time == "" {
			t.Errorf("/timeline[%d] has no timestamp", i)
		}
	}
	last := recs[len(recs)-1]
	if !last.Done || last.Runs != int64(opts.SampleRuns) || last.Classes != int64(rep.Classes) {
		t.Errorf("/timeline final sample = %+v, want done with runs=%d classes=%d",
			last, opts.SampleRuns, rep.Classes)
	}
	if last.Checkpoints != int64(rep.Checkpoints-1) {
		t.Errorf("/timeline final sample checkpoints = %d, want %d (writes before the final one)",
			last.Checkpoints, rep.Checkpoints-1)
	}

	tail := getJSON(srv.URL + "/timeline?since=2")
	if len(tail) != 1 || tail[0].Index != 2 {
		t.Errorf("/timeline?since=2 = %+v", tail)
	}
	if res, err := srv.Client().Get(srv.URL + "/timeline?since=x"); err != nil || res.StatusCode != 400 {
		t.Errorf("/timeline?since=x status = %v err = %v, want 400", res.Status, err)
	}

	// The dashboard is embedded at / (and only at /).
	res, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("/ content type = %q", ct)
	}
	for _, marker := range []string{"<!DOCTYPE html>", "Coverage growth", "timeline?since=", "fetch(\"status\")"} {
		if !strings.Contains(body, marker) {
			t.Errorf("dashboard missing %q", marker)
		}
	}
	if res, err := srv.Client().Get(srv.URL + "/nope"); err != nil || res.StatusCode != 404 {
		t.Errorf("GET /nope = %v err = %v, want 404", res.Status, err)
	}
}

// TestObserverTimelineBeforeAttach: an unattached observer (or one
// observing a campaign without a sidecar yet) serves an empty series,
// not an error.
func TestObserverTimelineBeforeAttach(t *testing.T) {
	obs := NewObserver()
	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var recs []timeline.Record
	if err := json.NewDecoder(res.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("unattached /timeline = %+v", recs)
	}
}

// TestStartDropsStaleTimeline: a fresh Start must not extend a previous
// campaign's sidecar series.
func TestStartDropsStaleTimeline(t *testing.T) {
	tc := campCases(t)[0]
	opts := optsFor(ModeWalk, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")

	cfg := cfgFor(tc, opts, path)
	cfg.CheckpointEvery = 100
	cfg.Observer = NewObserver()
	if _, err := Start(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	first, err := timeline.Read(cfg.timelinePath())
	if err != nil {
		t.Fatal(err)
	}

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	cfg.Observer = NewObserver()
	if _, err := Start(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	second, err := timeline.Read(cfg.timelinePath())
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first) || second[0].Index != 0 {
		t.Fatalf("restarted campaign timeline = %+v, want a fresh series like %+v", second, first)
	}
}
