package campaign

import (
	"fmt"

	"repro/internal/stats"
)

// This file is the snapshot upload/import surface the fleet layer
// (internal/fleet) builds on: a coordinator receives whole snapshot
// files as byte blobs from workers (or from an operator importing an
// externally-run shard), and must validate them and read their progress
// and observability totals without ever trusting the sender — the same
// decoder discipline the resume path applies to local files.

// DecodeUploaded validates a complete snapshot's bytes — magic, format
// version, header hash, exactly-one-engine-state payload — and returns
// its header plus the cumulative stats snapshot the payload carries (nil
// for snapshots written by a build predating the stats field). A
// tampered or truncated blob is a loud error; name labels it.
func DecodeUploaded(data []byte, name string) (Header, *stats.Snapshot, error) {
	h, p, err := decodeSnapshot(data)
	if err != nil {
		return h, nil, fmt.Errorf("campaign: %s: %w", name, err)
	}
	return h, p.Stats, nil
}

// Identity renders the campaign identity a config defines — mode, task,
// options and their hash — without running anything: the header every
// shard snapshot of the campaign must match. The fleet coordinator
// computes it once per submission and checks every uploaded snapshot's
// OptionsHash against it, so a worker (or operator) can never slip a
// shard from a different campaign, option set or shard count into the
// merge.
func Identity(cfg Config) (Header, error) {
	if err := cfg.normalize(); err != nil {
		return Header{}, err
	}
	return cfg.header(), nil
}
