package campaign

import (
	"context"
	"fmt"

	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/stats"
)

// mergeStats sums the shard snapshots' observability totals: the merged
// counters equal an uninterrupted unsharded run's (the exact-count
// counters are recomputed by Merge, see there). Nil when no shard carried
// stats — snapshots written by a build predating the stats payload field.
func mergeStats(payloads []payload) *stats.Snapshot {
	var sum stats.Snapshot
	found := false
	for _, p := range payloads {
		if p.Stats == nil {
			continue
		}
		sum = sum.Add(*p.Stats)
		found = true
	}
	if !found {
		return nil
	}
	return &sum
}

// Merge combines the finished shard snapshots of one campaign into the
// single report — verdict, schedule/class counts, lex-min violation —
// that one uninterrupted single-process run of the whole campaign
// produces. cfg supplies the campaign definition (the same one the
// shards ran under; verified against every snapshot's options hash) and,
// for the enumerating modes, the solver constructor: a merged violation
// re-runs the engine's counting pass against the settled
// lexicographically smallest failure, exactly as the one-shot engine
// does after discovery.
//
// paths must be the complete shard set: exactly one snapshot per shard
// of the campaign's Of, each marked done. Anything else — a missing or
// duplicate shard, an unfinished shard, a snapshot from a different
// campaign or option set — is a loud error, never a silently partial
// report.
func Merge(ctx context.Context, cfg Config, paths []string) (Report, error) {
	if len(paths) == 0 {
		return Report{}, fmt.Errorf("campaign: merge needs at least one snapshot")
	}
	cfg.Path = paths[0] // normalize() requires a path; merge never writes one
	cfg.Of = len(paths)
	cfg.Shard = 0
	if err := cfg.normalize(); err != nil {
		return Report{}, err
	}
	want := cfg.header()

	headers := make([]Header, len(paths))
	payloads := make([]payload, len(paths))
	seen := make(map[int]string, len(paths))
	for i, path := range paths {
		h, p, err := readSnapshot(path)
		if err != nil {
			return Report{}, err
		}
		if h.Of != len(paths) {
			return Report{}, fmt.Errorf("campaign: %s is shard %d of a %d-way campaign, but %d snapshots were given", path, h.Shard, h.Of, len(paths))
		}
		if h.OptionsHash != want.OptionsHash {
			return Report{}, fmt.Errorf("%w: %s has hash %s, the merge config hashes to %s", ErrOptionsMismatch, path, h.OptionsHash, want.OptionsHash)
		}
		if dup, ok := seen[h.Shard]; ok {
			return Report{}, fmt.Errorf("campaign: %s and %s are both shard %d", dup, path, h.Shard)
		}
		seen[h.Shard] = path
		if !h.Done {
			return Report{}, fmt.Errorf("campaign: %s (shard %d) has not finished (%d runs done); resume it before merging", path, h.Shard, h.Runs)
		}
		headers[i] = h
		payloads[i] = p
	}

	rep := Report{
		Mode: ModeOf(cfg.Opts), Protocol: cfg.Protocol, Task: cfg.Spec.String(),
		Shard: 0, Of: len(paths), Done: true, FailedRun: -1,
	}
	rep.Stats = mergeStats(payloads)
	defer func() {
		// The exact-count counters are recomputed from the merged report:
		// per-shard first sightings over-count classes shared between
		// shards, and under the memo reduction per-shard schedule counts
		// over-count classes the same way. On a violation the counters
		// keep the raw summed work figures — the report's counts then
		// describe the lex-min violation, not the work done.
		if rep.Stats == nil || rep.Violation != "" {
			return
		}
		switch ModeOf(cfg.Opts).family() {
		case "explore":
			if rep.Stats.Counters != nil {
				rep.Stats.Counters[sched.MetricSchedules] = int64(rep.Schedules)
			}
		case "sample":
			if rep.Stats.Counters != nil {
				rep.Stats.Counters[sample.MetricClasses] = int64(rep.Classes)
			}
		}
	}()
	n := cfg.Spec.N()
	switch ModeOf(cfg.Opts).family() {
	case "explore":
		states := make([]*sched.ExploreState, len(paths))
		for i, p := range payloads {
			states[headers[i].Shard] = p.Explore
		}
		r := &sched.ResumableExplorer{N: n, IDs: cfg.IDs, Opts: cfg.Opts, Build: cfg.body(), Check: cfg.check()}
		count, err := r.Finalize(ctx, states...)
		rep.Schedules = count
		if err != nil {
			rep.Violation = err.Error()
		}
		return rep, err
	case "sample":
		states := make([]*sample.BatchState, len(paths))
		for i, p := range payloads {
			states[headers[i].Shard] = p.Sample
		}
		r := &sample.ResumableBatch{N: n, IDs: cfg.IDs, Opts: cfg.Opts, Build: cfg.body(), Check: cfg.check()}
		srep, err := r.Finalize(states...)
		rep.Schedules, rep.Classes, rep.Coverage, rep.Depth = srep.Runs, srep.Classes, srep.Coverage(), srep.Depth
		rep.FailedRun, rep.FailedSeed = srep.FailedRun, srep.FailedSeed
		if err != nil {
			rep.Violation = err.Error()
		}
		return rep, err
	default: // crash sweep
		var best *sched.SeededFailure
		for _, p := range payloads {
			if f := p.Crash.Failure; f != nil && (best == nil || f.Run < best.Run) {
				best = f
			}
		}
		if best != nil {
			rep.Schedules = best.Run + 1
			rep.FailedRun = best.Run
			rep.FailedSeed = sched.DeriveRunSeed(cfg.Opts.Seed, best.Run)
			rep.Violation = best.Message
			return rep, best.Err()
		}
		rep.Schedules = cfg.Opts.CrashRuns
		return rep, nil
	}
}
