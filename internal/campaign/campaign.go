package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/gsb"
	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tasks"
	"repro/internal/timeline"
)

// Mode names a campaign's verification mode. It is derived from the
// exploration options (ModeOf), not chosen independently, so a snapshot's
// mode always agrees with its options.
type Mode string

const (
	ModeExhaustive Mode = "exhaustive"
	ModePOR        Mode = "por"
	ModePORMemo    Mode = "por-memo"
	ModeWalk       Mode = "sample-walk"
	ModePCT        Mode = "sample-pct"
	ModeCrash      Mode = "crash-sweep"
)

// ModeOf derives the campaign mode selected by opts.
func ModeOf(opts sched.ExploreOptions) Mode {
	switch {
	case opts.CrashRuns > 0:
		return ModeCrash
	case opts.SampleRuns > 0 && opts.SampleMode == sched.SamplePCT:
		return ModePCT
	case opts.SampleRuns > 0:
		return ModeWalk
	case opts.Reduction == sched.ReductionSleepMemo:
		return ModePORMemo
	case opts.Reduction == sched.ReductionSleepSets:
		return ModePOR
	default:
		return ModeExhaustive
	}
}

// family groups modes by engine: the enumerating explore/POR engine, the
// sampling batch, or the crash sweep.
func (m Mode) family() string {
	switch m {
	case ModeExhaustive, ModePOR, ModePORMemo:
		return "explore"
	case ModeWalk, ModePCT:
		return "sample"
	case ModeCrash:
		return "crash"
	}
	return "unknown"
}

// ErrPaused is returned (wrapped) by Start and Resume when the campaign
// was interrupted — context canceled, typically by a signal — after
// writing a checkpoint: the snapshot on disk resumes exactly where the
// campaign stopped.
var ErrPaused = errors.New("campaign: paused at a checkpoint (resume from the snapshot)")

// DefaultCheckpointEvery is the checkpoint interval (runs between
// snapshot writes) used when Config.CheckpointEvery is zero.
const DefaultCheckpointEvery = 5000

// Config describes one campaign (or one shard of one).
type Config struct {
	// Protocol is a free-form label recorded in snapshot headers;
	// cmd/gsbcampaign uses it to rebuild the solver on resume and merge.
	Protocol string
	// Spec is the task the campaign verifies every run against; Build
	// constructs a fresh solver per run, exactly as for ExploreVerified.
	Spec  gsb.Spec
	IDs   []int
	Opts  sched.ExploreOptions
	Build func(n int) tasks.Solver
	// Shard/Of select one shard of an Of-way campaign; zero values mean
	// the whole campaign (shard 0 of 1). Sharding is deterministic:
	// every shard derives its own slice of the work without
	// coordination, and Merge combines the finished snapshots.
	Shard, Of int
	// CheckpointEvery is the number of runs between checkpoint writes
	// (0: DefaultCheckpointEvery). Smaller means less work lost on a
	// kill and more write overhead.
	CheckpointEvery int
	// Path is the snapshot file.
	Path string
	// Force lets Start overwrite an existing snapshot file.
	Force bool
	// OnCheckpoint, when set, observes every snapshot write (the header
	// just written). Tests use it to kill campaigns at exact checkpoint
	// boundaries; the CLI uses it for progress logging.
	OnCheckpoint func(Header)
	// Observer, when set, is the campaign's live observability endpoint
	// (see NewObserver): the engines publish into its registry, and its
	// Handler/Progress views report live rates, ETA and checkpoint age.
	// When nil and Opts.Stats is also nil, the campaign still keeps a
	// private registry so checkpoints carry cumulative counters.
	Observer *Observer
	// TimelinePath overrides where the gsbtimeline/v1 sidecar is written
	// when an Observer is set (default: Path + ".timeline", see
	// timeline.SidecarPath). The timeline is only kept for observed
	// campaigns — its timestamps belong to the observer layer.
	TimelinePath string
}

// timelinePath resolves the timeline sidecar file of this campaign.
func (c *Config) timelinePath() string {
	if c.TimelinePath != "" {
		return c.TimelinePath
	}
	return timeline.SidecarPath(c.Path)
}

// Campaign-layer metric names (the engine-layer ones are the sched Metric
// constants; docs/metrics.md is the reference for all of them).
const (
	// MetricCheckpointWrites counts snapshot writes, cumulative across
	// resumed lives like every counter.
	MetricCheckpointWrites = "gsb_checkpoint_writes_total"
	// MetricCheckpointSeconds is the snapshot write latency histogram
	// (encode, write, sync, rename). The timed write happens after the
	// registry is snapshotted into the checkpoint, so write N's latency
	// first appears in checkpoint N+1 (and live on the endpoints).
	MetricCheckpointSeconds = "gsb_checkpoint_write_seconds"
	// MetricCheckpointBytes gauges the size of the last snapshot written.
	MetricCheckpointBytes = "gsb_checkpoint_bytes"
)

// ensureStats resolves the registry the campaign's engines publish into:
// the caller's (Opts.Stats), the observer's, or a fresh private one —
// checkpoints carry cumulative counters either way.
func (c *Config) ensureStats() *stats.Registry {
	if c.Opts.Stats == nil && c.Observer != nil {
		c.Opts.Stats = c.Observer.Registry()
	}
	if c.Opts.Stats == nil {
		c.Opts.Stats = stats.New()
	}
	return c.Opts.Stats
}

func (c *Config) normalize() error {
	if c.Of <= 0 {
		c.Of = 1
	}
	if c.Shard < 0 || c.Shard >= c.Of {
		return fmt.Errorf("campaign: shard %d outside [0, %d)", c.Shard, c.Of)
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = DefaultCheckpointEvery
	}
	if c.Path == "" {
		return fmt.Errorf("campaign: snapshot path is required")
	}
	if c.Build == nil {
		return fmt.Errorf("campaign: solver constructor is required")
	}
	if len(c.IDs) == 0 {
		c.IDs = sched.DefaultIDs(c.Spec.N())
	}
	if err := c.Opts.Validate(); err != nil {
		return err
	}
	return nil
}

// header renders the campaign identity of cfg (progress fields zero).
func (c *Config) header() Header {
	h := Header{
		Magic:    Magic,
		Version:  Version,
		Mode:     ModeOf(c.Opts),
		Protocol: c.Protocol,
		Task:     c.Spec.String(),
		N:        c.Spec.N(),
		IDs:      c.IDs,
		Options:  optionsHeader(c.Opts),
		Shard:    c.Shard,
		Of:       c.Of,
	}
	h.OptionsHash = optionsHash(h)
	return h
}

// Report is a campaign outcome. For a single-shard campaign (Of == 1) it
// is final and identical to the uninterrupted mode's report; for one
// shard of many it is provisional (raw shard counts) until Merge combines
// the shard set.
//
//gsb:serialized
type Report struct {
	Mode     Mode   `json:"mode"`
	Protocol string `json:"protocol"`
	Task     string `json:"task"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
	// Schedules is the verified schedule count with exactly the mode's
	// usual semantics: interleavings (exhaustive), trace classes (POR),
	// sampled/swept runs, or — on a violation — the count up to and
	// including the reported run.
	Schedules int `json:"schedules"`
	// Classes/Coverage are the sampling modes' distinct-trace-class
	// coverage figures.
	Classes  int     `json:"classes,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	Depth    int     `json:"pct_depth,omitempty"`
	// Violation is the verdict of a failed campaign ("" when every run
	// verified); FailedRun/FailedSeed identify the replayable failing
	// run in the seeded modes (-1/0 otherwise).
	Violation  string `json:"violation,omitempty"`
	FailedRun  int    `json:"failed_run"`
	FailedSeed int64  `json:"failed_seed,omitempty"`
	// Done distinguishes a finished campaign from a paused one;
	// Checkpoints counts snapshot writes in this process.
	Done        bool `json:"done"`
	Checkpoints int  `json:"checkpoints"`
	// Stats is the observability registry's cumulative totals at
	// completion: summed across resumed lives, and — for a merged report —
	// across shards (with the exact-count counters recomputed, see Merge).
	Stats *stats.Snapshot `json:"stats,omitempty"`
}

func (c *Config) body() func() sched.Body {
	n := c.Spec.N()
	return func() sched.Body { return tasks.Body(c.Build(n)) }
}

func (c *Config) check() func(*sched.Result) error {
	spec := c.Spec
	return func(res *sched.Result) error { return tasks.VerifyResult(spec, res) }
}

// Start begins a fresh campaign (shard): it derives this shard's initial
// engine state, then runs checkpointed slices until done or interrupted.
// An existing snapshot at cfg.Path is refused unless cfg.Force — resuming
// by accident is confusing, overwriting a half-done campaign is worse.
//
// The returned error is the campaign verdict: nil when every run
// verified, the violation otherwise, or one wrapping ErrPaused when ctx
// was canceled after a checkpoint.
func Start(ctx context.Context, cfg Config) (Report, error) {
	if err := cfg.normalize(); err != nil {
		return Report{}, err
	}
	if !cfg.Force {
		if _, err := os.Stat(cfg.Path); err == nil {
			return Report{}, fmt.Errorf("campaign: snapshot %s already exists (resume it, or pass force to overwrite)", cfg.Path)
		}
	}
	cfg.ensureStats()
	// A fresh campaign starts a fresh timeline: drop any stale sidecar
	// left by a previous campaign at the same path.
	_ = os.Remove(cfg.timelinePath())
	p, err := initialState(ctx, &cfg)
	if err != nil {
		return Report{}, err
	}
	return run(ctx, &cfg, p)
}

// Resume continues a campaign from its snapshot. The snapshot's campaign
// identity (mode, task, protocol, n, ids, options, shard) must match
// cfg exactly — ErrOptionsMismatch otherwise, because a resume under
// different options would verify something other than what the snapshot
// started. Worker count and checkpoint interval may differ freely.
func Resume(ctx context.Context, cfg Config) (Report, error) {
	if err := cfg.normalize(); err != nil {
		return Report{}, err
	}
	h, p, err := readSnapshot(cfg.Path)
	if err != nil {
		return Report{}, err
	}
	if err := matchHeader(cfg.header(), h); err != nil {
		return Report{}, err
	}
	cfg.ensureStats()
	return run(ctx, &cfg, p)
}

// matchHeader compares the campaign identity of a config against a
// snapshot header.
func matchHeader(want, got Header) error {
	if want.OptionsHash != got.OptionsHash || want.Shard != got.Shard {
		return fmt.Errorf("%w: snapshot is %s shard %d/%d of %q on %s (hash %s), resume asked for %s shard %d/%d of %q on %s (hash %s)",
			ErrOptionsMismatch,
			got.Mode, got.Shard, got.Of, got.Protocol, got.Task, got.OptionsHash,
			want.Mode, want.Shard, want.Of, want.Protocol, want.Task, want.OptionsHash)
	}
	return nil
}

// initialState derives the fresh engine state of cfg's shard.
func initialState(ctx context.Context, cfg *Config) (payload, error) {
	n := cfg.Spec.N()
	switch ModeOf(cfg.Opts).family() {
	case "explore":
		// Every shard re-runs the same deterministic expansion, whose
		// results are attributed to shard 0 — so only shard 0 publishes
		// the expansion's stats, keeping summed shard totals equal to an
		// unsharded run's (see sched.ResumableExplorer.SeedShards).
		opts := cfg.Opts
		if cfg.Shard != 0 {
			opts.Stats = nil
		}
		r := &sched.ResumableExplorer{N: n, IDs: cfg.IDs, Opts: opts, Build: cfg.body(), Check: cfg.check()}
		states, err := r.SeedShards(ctx, cfg.Of)
		if err != nil {
			return payload{}, err
		}
		return payload{Explore: states[cfg.Shard]}, nil
	case "sample":
		r := &sample.ResumableBatch{N: n, IDs: cfg.IDs, Opts: cfg.Opts, Build: cfg.body(), Check: cfg.check()}
		st, err := r.Init(cfg.Shard, cfg.Of)
		if err != nil {
			return payload{}, err
		}
		return payload{Sample: st}, nil
	case "crash":
		return payload{Crash: &sched.SeededState{Shard: cfg.Shard, Of: cfg.Of}}, nil
	}
	return payload{}, fmt.Errorf("campaign: options select no known mode")
}

// run drives checkpointed slices of the engine from state p to
// completion, pause, or error.
func run(ctx context.Context, cfg *Config, p payload) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := cfg.Spec.N()
	h := cfg.header()
	checkpoints := 0

	reg := cfg.ensureStats()
	if p.Stats != nil {
		// Cumulative counters: fold the checkpointed totals of previous
		// process lives into this life's registry before any engine runs.
		reg.Restore(*p.Stats)
	}
	ckptWrites := reg.Counter(MetricCheckpointWrites, "Campaign snapshot writes.")
	ckptSeconds := reg.Histogram(MetricCheckpointSeconds, "Campaign snapshot write latency in seconds (encode, write, sync, rename).", nil)
	ckptBytes := reg.Gauge(MetricCheckpointBytes, "Size in bytes of the last campaign snapshot written.")
	var tl *timeline.Writer
	if cfg.Observer != nil {
		// Observed campaigns keep the timeline sidecar. Open recovers the
		// append position from previous lives (and truncates a torn tail),
		// so a resumed campaign continues the same monotone series.
		var terr error
		tl, terr = timeline.Open(cfg.timelinePath())
		if terr != nil {
			return Report{}, terr
		}
		defer tl.Close()
		cfg.Observer.attach(h, shardTotal(cfg), cfg.timelinePath())
	}

	slice := func(p payload) (payload, bool, error) {
		switch {
		case p.Explore != nil:
			r := &sched.ResumableExplorer{N: n, IDs: cfg.IDs, Opts: cfg.Opts, Build: cfg.body(), Check: cfg.check()}
			st, done, err := r.Slice(ctx, p.Explore, cfg.CheckpointEvery, nil)
			return payload{Explore: st}, done, err
		case p.Sample != nil:
			r := &sample.ResumableBatch{N: n, IDs: cfg.IDs, Opts: cfg.Opts, Build: cfg.body(), Check: cfg.check()}
			st, done, err := r.Slice(ctx, p.Sample, cfg.CheckpointEvery, nil)
			return payload{Sample: st}, done, err
		default:
			st, done, err := sched.SeededSlice(ctx, n, cfg.IDs, cfg.Opts, cfg.Opts.CrashRuns,
				sched.CrashSweepPolicies(n, cfg.Opts), cfg.body(),
				sched.CrashSweepCheck(n, cfg.Opts, cfg.check()),
				p.Crash, cfg.CheckpointEvery, nil)
			return payload{Crash: st}, done, err
		}
	}

	for {
		next, done, err := slice(p)
		if err != nil {
			// Engine errors (invalid options, exhausted MaxRuns) are
			// terminal, not resumable: the previous snapshot, if any,
			// stays on disk untouched.
			return Report{}, err
		}
		p = next
		h.Done = done
		h.Runs, h.Frontier = progress(p)
		var rep Report
		var verdict error
		if done {
			rep, verdict = finalize(ctx, cfg, p)
			rep.Checkpoints = checkpoints + 1
		}
		// Snapshot the registry into the checkpoint (and the final
		// report) before the timed write: the write's own latency lands
		// live on the endpoints and in the next checkpoint.
		snap := reg.Snapshot()
		p.Stats = &snap
		if done {
			rep.Stats = &snap
			h.Result = &rep
		}
		// Timeline sample BEFORE the snapshot write: a kill between the
		// two leaves a sample the snapshot doesn't know about, and the
		// resumed life's writer dedups it — the reverse order would lose
		// samples instead, breaking kill-resume ≡ uninterrupted.
		if tl != nil {
			if _, _, terr := tl.Append(cfg.Observer.sample(h, snap)); terr != nil {
				return Report{}, terr
			}
		}
		wstart := time.Now() //gsb:nondeterminism-ok feeds the checkpoint-latency histogram only, never a verdict or count
		nbytes, werr := writeSnapshot(cfg.Path, h, p)
		if werr != nil {
			return Report{}, werr
		}
		ckptSeconds.Observe(time.Since(wstart).Seconds()) //gsb:nondeterminism-ok observability histogram; not part of campaign state
		ckptWrites.Inc()
		ckptBytes.Set(int64(nbytes))
		checkpoints++
		if cfg.Observer != nil {
			cfg.Observer.checkpoint(h)
		}
		if cfg.OnCheckpoint != nil {
			cfg.OnCheckpoint(h)
		}
		if done {
			return rep, verdict
		}
		if cerr := ctx.Err(); cerr != nil {
			rep := provisionalReport(cfg, p)
			rep.Checkpoints = checkpoints
			rep.Stats = p.Stats
			return rep, fmt.Errorf("%w (snapshot %s, %d runs done): %v", ErrPaused, cfg.Path, h.Runs, cerr)
		}
	}
}

// progress extracts the header progress gauges from an engine state.
func progress(p payload) (runs int64, frontier int) {
	switch {
	case p.Explore != nil:
		return p.Explore.Completed, len(p.Explore.Frontier)
	case p.Sample != nil:
		return p.Sample.Pool.Completed, 0
	case p.Crash != nil:
		return p.Crash.Completed, 0
	}
	return 0, 0
}

// shardTotal is the shard-local run budget of the seeded modes (the
// SampleRuns/CrashRuns indices owned by cfg's shard) — the ETA
// denominator. 0 for the enumerating family, whose total is unknowable up
// front (no ETA).
func shardTotal(cfg *Config) int64 {
	total := 0
	switch ModeOf(cfg.Opts).family() {
	case "sample":
		total = cfg.Opts.SampleRuns
	case "crash":
		total = cfg.Opts.CrashRuns
	}
	if total <= cfg.Shard {
		return 0
	}
	return int64((total-cfg.Shard-1)/cfg.Of + 1)
}

// provisionalReport renders a paused or single-shard-incomplete state.
func provisionalReport(cfg *Config, p payload) Report {
	rep := Report{
		Mode: ModeOf(cfg.Opts), Protocol: cfg.Protocol, Task: cfg.Spec.String(),
		Shard: cfg.Shard, Of: cfg.Of, FailedRun: -1,
	}
	runs, _ := progress(p)
	rep.Schedules = int(runs)
	return rep
}

// finalize turns a completed shard state into its report and verdict.
// For a single-shard campaign this is the exact report of the
// uninterrupted mode; for one shard of many the counts are the shard's
// raw contribution and the verdict is the shard's own smallest failure
// (Merge settles the campaign-wide one).
func finalize(ctx context.Context, cfg *Config, p payload) (Report, error) {
	rep := provisionalReport(cfg, p)
	rep.Done = true
	n := cfg.Spec.N()
	if cfg.Of > 1 {
		// Provisional shard verdict: raw counts plus this shard's own
		// failure, loudly labeled by Shard/Of fields.
		switch {
		case p.Explore != nil:
			if f := p.Explore.Failure; f != nil {
				rep.Violation = f.Message
				return rep, f.Err()
			}
		case p.Sample != nil:
			rep.Depth = p.Sample.Depth
			rep.Classes = len(p.Sample.Classes)
			if p.Sample.FailedRun >= 0 {
				rep.FailedRun = p.Sample.FailedRun
				rep.FailedSeed = sched.DeriveRunSeed(cfg.Opts.Seed, p.Sample.FailedRun)
				rep.Violation = p.Sample.Pool.Failure.Message
				return rep, p.Sample.Pool.Failure.Err()
			}
		case p.Crash != nil:
			if f := p.Crash.Failure; f != nil {
				rep.FailedRun = f.Run
				rep.FailedSeed = sched.DeriveRunSeed(cfg.Opts.Seed, f.Run)
				rep.Violation = f.Message
				return rep, f.Err()
			}
		}
		return rep, nil
	}

	switch {
	case p.Explore != nil:
		r := &sched.ResumableExplorer{N: n, IDs: cfg.IDs, Opts: cfg.Opts, Build: cfg.body(), Check: cfg.check()}
		count, err := r.Finalize(ctx, p.Explore)
		rep.Schedules = count
		if err != nil {
			rep.Violation = err.Error()
		}
		return rep, err
	case p.Sample != nil:
		r := &sample.ResumableBatch{N: n, IDs: cfg.IDs, Opts: cfg.Opts, Build: cfg.body(), Check: cfg.check()}
		srep, err := r.Finalize(p.Sample)
		rep.Schedules, rep.Classes, rep.Coverage, rep.Depth = srep.Runs, srep.Classes, srep.Coverage(), srep.Depth
		rep.FailedRun, rep.FailedSeed = srep.FailedRun, srep.FailedSeed
		if err != nil {
			rep.Violation = err.Error()
		}
		return rep, err
	default:
		if f := p.Crash.Failure; f != nil {
			rep.Schedules = f.Run + 1
			rep.FailedRun = f.Run
			rep.FailedSeed = sched.DeriveRunSeed(cfg.Opts.Seed, f.Run)
			rep.Violation = f.Message
			return rep, f.Err()
		}
		rep.Schedules = cfg.Opts.CrashRuns
		return rep, nil
	}
}

// Status reads a snapshot's header: campaign identity, progress and — for
// completed campaigns — the final report, without parsing the payload.
func Status(path string) (Header, error) { return ReadHeader(path) }
