package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sample"
	"repro/internal/sched"
)

// statsCounters extracts the deterministic engine counters from a report:
// runs always; schedules for the explore family; classes for the sample
// family. Steals, prunes and the checkpoint metrics are inherently
// interleaving- or life-dependent and are never differential-tested.
func statsCounters(t *testing.T, label string, rep Report) map[string]int64 {
	t.Helper()
	if rep.Stats == nil {
		t.Fatalf("%s: report carries no stats snapshot", label)
	}
	out := map[string]int64{sched.MetricRuns: rep.Stats.Counter(sched.MetricRuns)}
	switch rep.Mode.family() {
	case "explore":
		out[sched.MetricSchedules] = rep.Stats.Counter(sched.MetricSchedules)
		out[sched.MetricAborts] = rep.Stats.Counter(sched.MetricAborts)
	case "sample":
		out[sample.MetricClasses] = rep.Stats.Counter(sample.MetricClasses)
	}
	return out
}

func diffCounters(t *testing.T, label string, got, want map[string]int64) {
	t.Helper()
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("%s: %s = %d, want %d (uninterrupted reference)", label, name, g, w)
		}
	}
}

// TestCampaignStatsKillResumeCumulative is the resume-preserves-counters
// differential: a campaign killed at random checkpoints and resumed until
// done must report exactly the cumulative counter totals of an
// uninterrupted run — not the last process life's. Clean (non-violating)
// protocols only: with a violation in flight, pruning races make the
// work-done counters legitimately nondeterministic.
func TestCampaignStatsKillResumeCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	killed := 0 // campaigns that died at least once across the matrix
	for _, tc := range campCases(t) {
		for _, mode := range campModes {
			opts := optsFor(mode, 2)
			label := fmt.Sprintf("%s %s", tc.name, mode)

			ref, err := Start(context.Background(), cfgFor(tc, opts, filepath.Join(t.TempDir(), "ref.ckpt")))
			if err != nil {
				t.Fatalf("%s: reference campaign: %v", label, err)
			}
			want := statsCounters(t, label, ref)

			cfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "c.ckpt"))
			cfg.CheckpointEvery = 50
			var rep Report
			lives := 0
			for attempt := 0; ; attempt++ {
				if attempt > 1000 {
					t.Fatalf("%s: campaign failed to finish after %d kills", label, attempt)
				}
				ctx, cancel := context.WithCancel(context.Background())
				killAt := 1 + rng.Intn(3)
				seen := 0
				cfg.OnCheckpoint = func(Header) {
					if seen++; seen == killAt {
						cancel()
					}
				}
				if attempt == 0 {
					rep, err = Start(ctx, cfg)
				} else {
					rep, err = Resume(ctx, cfg)
				}
				cancel()
				lives++
				if !errors.Is(err, ErrPaused) {
					break
				}
			}
			if err != nil {
				t.Fatalf("%s: resumed campaign: %v", label, err)
			}
			if lives >= 2 {
				killed++
				// The registry is snapshotted before each timed write, so
				// checkpoint N records N-1 writes: a multi-life campaign
				// must still have accumulated earlier lives' writes.
				if w := rep.Stats.Counter(MetricCheckpointWrites); w < 1 {
					t.Errorf("%s: %s = %d across %d lives", label, MetricCheckpointWrites, w, lives)
				}
			}
			diffCounters(t, label, statsCounters(t, label, rep), want)
		}
	}
	if killed == 0 {
		t.Fatal("no campaign in the matrix was ever killed; the differential tested nothing")
	}
}

// TestCampaignStatsMergeCumulative: the merged stats of a 3-way sharded
// campaign equal an unsharded run's — runs sum exactly, and the
// exact-count counters (schedules, classes) are recomputed by Merge.
func TestCampaignStatsMergeCumulative(t *testing.T) {
	for _, tc := range campCases(t) {
		for _, mode := range campModes {
			const shards = 3
			opts := optsFor(mode, 2)
			label := fmt.Sprintf("%s %s", tc.name, mode)

			ref, err := Start(context.Background(), cfgFor(tc, opts, filepath.Join(t.TempDir(), "ref.ckpt")))
			if err != nil {
				t.Fatalf("%s: reference campaign: %v", label, err)
			}
			want := statsCounters(t, label, ref)
			if mode == ModePORMemo {
				// Shards deduplicate trace classes only within themselves,
				// so summed aborts legitimately differ from an unsharded
				// run's; runs and the recomputed schedule count still match.
				delete(want, sched.MetricAborts)
			}

			dir := t.TempDir()
			paths := make([]string, shards)
			for s := 0; s < shards; s++ {
				paths[s] = filepath.Join(dir, fmt.Sprintf("shard-%d.ckpt", s))
				cfg := cfgFor(tc, opts, paths[s])
				cfg.Shard, cfg.Of = s, shards
				cfg.CheckpointEvery = 40
				if _, err := Start(context.Background(), cfg); err != nil {
					t.Fatalf("%s shard %d: %v", label, s, err)
				}
			}
			rep, err := Merge(context.Background(), cfgFor(tc, opts, paths[0]), paths)
			if err != nil {
				t.Fatalf("%s: merge: %v", label, err)
			}
			diffCounters(t, label, statsCounters(t, label, rep), want)
		}
	}
}

// TestObserverEndpoints runs a deterministic walk campaign to completion
// under an Observer and golden-checks the /metrics and /status endpoints
// against the final report.
func TestObserverEndpoints(t *testing.T) {
	tc := campCases(t)[0]
	opts := optsFor(ModeWalk, 2)
	obs := NewObserver()
	cfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "c.ckpt"))
	cfg.CheckpointEvery = 100
	cfg.Observer = obs
	rep, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	metrics := string(raw)
	for _, line := range []string{
		fmt.Sprintf("%s %d", sched.MetricRuns, opts.SampleRuns),
		fmt.Sprintf("%s %d", sample.MetricClasses, rep.Classes),
		fmt.Sprintf("%s %d", MetricCheckpointWrites, rep.Checkpoints),
		"# TYPE " + MetricCheckpointSeconds + " histogram",
	} {
		if !strings.Contains(metrics, line+"\n") {
			t.Errorf("/metrics missing line %q in:\n%s", line, metrics)
		}
	}

	res, err = srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusRecord
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.Schema != StatusSchema {
		t.Errorf("/status schema = %q, want %q", st.Schema, StatusSchema)
	}
	if !st.Done || st.Runs != int64(opts.SampleRuns) || st.Classes != int64(rep.Classes) {
		t.Errorf("/status = %+v, want done with runs=%d classes=%d", st, opts.SampleRuns, rep.Classes)
	}
	if st.Mode != ModeWalk || st.Protocol != tc.name || st.Of != 1 {
		t.Errorf("/status identity = %+v", st)
	}
	if st.TotalRuns != int64(opts.SampleRuns) || st.Checkpoints != int64(rep.Checkpoints) {
		t.Errorf("/status totals = %+v, want total_runs=%d checkpoints=%d", st, opts.SampleRuns, rep.Checkpoints)
	}
	if st.LastCheckpointAgeSec == nil || *st.LastCheckpointAgeSec < 0 {
		t.Errorf("/status last_checkpoint_age_sec = %v, want >= 0", st.LastCheckpointAgeSec)
	}

	prog := obs.Progress()
	if prog.Schema != ProgressSchema || prog.Time == "" {
		t.Errorf("progress record = %+v, want schema %q with a timestamp", prog, ProgressSchema)
	}
	if prog.Runs != int64(opts.SampleRuns) {
		t.Errorf("progress runs = %d, want %d", prog.Runs, opts.SampleRuns)
	}
}

// TestObserverAdversaryEventsEndpoint golden-checks the
// gsb_adversary_events_total exposition: a crash-sweep campaign under a
// non-default adversary serves the counter on /metrics, and the exposed
// figure equals the final report's checkpointed total.
func TestObserverAdversaryEventsEndpoint(t *testing.T) {
	tc := campCases(t)[0]
	opts := optsFor(ModeCrash, 2)
	opts.CrashProb = 0.15
	opts.Adversary = sched.AdversaryTResilient
	obs := NewObserver()
	cfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "c.ckpt"))
	cfg.Observer = obs
	rep, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	events := rep.Stats.Counter(sched.MetricAdversaryEvents)
	if events == 0 {
		t.Fatal("sweep injected no crashes at CrashProb 0.15; the golden is vacuous")
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	line := fmt.Sprintf("%s %d", sched.MetricAdversaryEvents, events)
	if !strings.Contains(string(raw), line+"\n") {
		t.Errorf("/metrics missing line %q in:\n%s", line, raw)
	}
}

// TestObserverRebaseAfterResume: a resumed campaign's runs/sec measures
// the current life while its run counters stay cumulative — the rate base
// must re-anchor past the restored totals, or a freshly resumed campaign
// would report an absurd instantaneous rate.
func TestObserverRebaseAfterResume(t *testing.T) {
	tc := campCases(t)[0]
	opts := optsFor(ModeWalk, 2)
	path := filepath.Join(t.TempDir(), "c.ckpt")
	cfg := cfgFor(tc, opts, path)
	cfg.CheckpointEvery = 50

	ctx, cancel := context.WithCancel(context.Background())
	cfg.OnCheckpoint = func(Header) { cancel() }
	_, err := Start(ctx, cfg)
	cancel()
	if !errors.Is(err, ErrPaused) {
		t.Fatalf("expected a paused campaign, got %v", err)
	}

	obs := NewObserver()
	cfg.OnCheckpoint = nil
	cfg.Observer = obs
	rep, err := Resume(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	st := obs.status()
	if st.Runs != int64(opts.SampleRuns) {
		t.Errorf("resumed status runs = %d, want cumulative %d", st.Runs, opts.SampleRuns)
	}
	// The restored 50 runs happened in the first life: this life's rate
	// base must exclude them, so rate * elapsed is bounded by the runs
	// this life actually executed.
	thisLife := float64(st.RunsPerSec) * st.ElapsedSec
	if thisLife > float64(opts.SampleRuns-50)+1 {
		t.Errorf("rate %f over %fs implies %f runs this life, more than the %d it ran",
			st.RunsPerSec, st.ElapsedSec, thisLife, opts.SampleRuns-50)
	}
	if rep.Stats.Counter(sched.MetricRuns) != int64(opts.SampleRuns) {
		t.Errorf("final stats runs = %d, want %d", rep.Stats.Counter(sched.MetricRuns), opts.SampleRuns)
	}
}

// TestEtaSec pins the eta_sec emission rule: 0 (the field is omitted
// from gsbstatus/v1 serialization) whenever no honest estimate exists.
func TestEtaSec(t *testing.T) {
	cases := []struct {
		name  string
		total int64
		runs  int64
		rate  float64
		done  bool
		want  float64
	}{
		{"unknown total (enumerating family)", 0, 500, 100, false, 0},
		{"no rate yet", 300, 100, 0, false, 0},
		{"done", 300, 300, 100, true, 0},
		{"runs at budget", 300, 300, 100, false, 0},
		{"runs past budget (probe overshoot)", 300, 450, 100, false, 0},
		{"mid-flight", 300, 100, 100, false, 2},
	}
	for _, c := range cases {
		if got := etaSec(c.total, c.runs, c.rate, c.done); got != c.want {
			t.Errorf("%s: etaSec(%d, %d, %g, %v) = %g, want %g",
				c.name, c.total, c.runs, c.rate, c.done, got, c.want)
		}
	}
}

// TestStatusOmitsETAForUnknownTotal is the gsbstatus/v1 golden
// regression for the enumerating family: a mid-flight exhaustive
// campaign has a positive rate but no knowable total, so the serialized
// status must carry neither eta_sec nor total_runs — never a bogus
// estimate.
func TestStatusOmitsETAForUnknownTotal(t *testing.T) {
	tc := campCases(t)[0]
	opts := optsFor(ModeExhaustive, 2)
	obs := NewObserver()
	cfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "c.ckpt"))
	cfg.CheckpointEvery = 50
	cfg.Observer = obs

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mid []byte
	cfg.OnCheckpoint = func(h Header) {
		if mid == nil && !h.Done {
			b, err := json.Marshal(obs.status())
			if err != nil {
				t.Errorf("marshal mid-flight status: %v", err)
			}
			mid = b
			cancel()
		}
	}
	_, err := Start(ctx, cfg)
	if err != nil && !errors.Is(err, ErrPaused) {
		t.Fatalf("campaign: %v", err)
	}
	if mid == nil {
		t.Fatal("campaign finished without a mid-flight checkpoint; shrink CheckpointEvery")
	}
	var st StatusRecord
	if jerr := json.Unmarshal(mid, &st); jerr != nil {
		t.Fatal(jerr)
	}
	if st.Done || st.Runs == 0 || st.RunsPerSec <= 0 {
		t.Fatalf("mid-flight status not usable for the regression: %s", mid)
	}
	for _, key := range []string{"eta_sec", "total_runs"} {
		if strings.Contains(string(mid), `"`+key+`"`) {
			t.Errorf("mid-flight exhaustive status serialized %q: %s", key, mid)
		}
	}
}

// TestStatusETAPresentForSeededTotal is the counterpart golden: a
// mid-flight walk campaign knows its budget, so eta_sec must be present
// and positive.
func TestStatusETAPresentForSeededTotal(t *testing.T) {
	tc := campCases(t)[0]
	opts := optsFor(ModeWalk, 2)
	obs := NewObserver()
	cfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "c.ckpt"))
	cfg.CheckpointEvery = 100
	cfg.Observer = obs

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mid []byte
	cfg.OnCheckpoint = func(h Header) {
		if mid == nil && !h.Done {
			mid, _ = json.Marshal(obs.status())
			cancel()
		}
	}
	_, err := Start(ctx, cfg)
	if err != nil && !errors.Is(err, ErrPaused) {
		t.Fatalf("campaign: %v", err)
	}
	if mid == nil {
		t.Fatal("campaign finished without a mid-flight checkpoint")
	}
	var st StatusRecord
	if jerr := json.Unmarshal(mid, &st); jerr != nil {
		t.Fatal(jerr)
	}
	if st.TotalRuns != int64(opts.SampleRuns) {
		t.Errorf("mid-flight walk total_runs = %d, want %d", st.TotalRuns, opts.SampleRuns)
	}
	if !strings.Contains(string(mid), `"eta_sec"`) || st.ETASec <= 0 {
		t.Errorf("mid-flight walk status carries no positive eta_sec: %s", mid)
	}
}
