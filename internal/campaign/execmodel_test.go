package campaign

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/sched"
)

// The execution model (opts.Model, opts.Adversary) is campaign identity:
// these tests pin the default-normalization contract — explicitly naming
// the defaults is byte-identical to not naming them, so pre-registry
// snapshots stay resumable — and the fail-loudly contract for changed
// models, plus the differential guarantees under non-default axes.

// withExecModel returns opts with the execution model set.
func withExecModel(opts sched.ExploreOptions, model, adversary string) sched.ExploreOptions {
	opts.Model = model
	opts.Adversary = adversary
	return opts
}

// TestCampaignExplicitDefaultsIdentical runs every mode at workers 1, 2
// and 8 twice — zero-valued model/adversary versus the explicitly named
// defaults — and requires identical reports, verdicts AND options hashes.
// Hash equality is what lets a snapshot written by the pre-registry
// engine resume under a binary that names its defaults.
func TestCampaignExplicitDefaultsIdentical(t *testing.T) {
	cases := append(campCases(t), racyCase())
	for _, tc := range cases {
		for _, mode := range campModes {
			for _, workers := range []int{1, 2, 8} {
				label := fmt.Sprintf("%s %s workers=%d", tc.name, mode, workers)
				opts := optsFor(mode, workers)
				dir := t.TempDir()

				zeroPath := filepath.Join(dir, "zero.ckpt")
				zeroRep, zeroErr := Start(context.Background(), cfgFor(tc, opts, zeroPath))

				named := withExecModel(opts, sched.ModelAtomic, sched.AdversaryUniformCrash)
				namedPath := filepath.Join(dir, "named.ckpt")
				namedRep, namedErr := Start(context.Background(), cfgFor(tc, named, namedPath))

				if namedRep.Schedules != zeroRep.Schedules || namedRep.Classes != zeroRep.Classes ||
					errText(namedErr) != errText(zeroErr) {
					t.Errorf("%s: named defaults (%d, %d, %q) differ from zero defaults (%d, %d, %q)",
						label, namedRep.Schedules, namedRep.Classes, errText(namedErr),
						zeroRep.Schedules, zeroRep.Classes, errText(zeroErr))
				}
				zh, err := Status(zeroPath)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				nh, err := Status(namedPath)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if zh.OptionsHash != nh.OptionsHash {
					t.Errorf("%s: options hash %s under zero defaults, %s under named defaults — old snapshots would not resume",
						label, zh.OptionsHash, nh.OptionsHash)
				}
				if nh.Options.Model != "" || nh.Options.Adversary != "" {
					t.Errorf("%s: header stores (%q, %q) for the named defaults, want normalized-empty",
						label, nh.Options.Model, nh.Options.Adversary)
				}
			}
		}
	}
}

// TestCampaignResumeRejectsChangedModel: a snapshot paused under one
// memory model (or adversary) must refuse to resume under another — the
// options hash covers the execution model.
func TestCampaignResumeRejectsChangedModel(t *testing.T) {
	tc := campCases(t)[0]
	opts := withExecModel(optsFor(ModePOR, 2), sched.ModelRegular, "")
	path := filepath.Join(t.TempDir(), "c.ckpt")
	cfg := cfgFor(tc, opts, path)
	cfg.CheckpointEvery = 20
	ctx, cancel := context.WithCancel(context.Background())
	cfg.OnCheckpoint = func(Header) { cancel() }
	if _, err := Start(ctx, cfg); !errors.Is(err, ErrPaused) {
		t.Fatalf("campaign did not pause: %v", err)
	}
	cancel()
	cfg.OnCheckpoint = nil

	changed := cfg
	changed.Opts = withExecModel(optsFor(ModePOR, 2), sched.ModelSafe, "")
	if _, err := Resume(context.Background(), changed); !errors.Is(err, ErrOptionsMismatch) {
		t.Errorf("resume under a changed model: %v, want ErrOptionsMismatch", err)
	}

	// Unchanged model resumes to completion.
	if rep, err := Resume(context.Background(), cfg); err != nil || !rep.Done {
		t.Errorf("resume under the original model: (%+v, %v)", rep, err)
	}

	// Same for the adversary axis, on a crash-sweep campaign.
	aOpts := withExecModel(optsFor(ModeCrash, 2), "", sched.AdversaryTResilient)
	aPath := filepath.Join(t.TempDir(), "a.ckpt")
	aCfg := cfgFor(tc, aOpts, aPath)
	aCfg.CheckpointEvery = 20
	aCtx, aCancel := context.WithCancel(context.Background())
	aCfg.OnCheckpoint = func(Header) { aCancel() }
	if _, err := Start(aCtx, aCfg); !errors.Is(err, ErrPaused) {
		t.Fatalf("crash campaign did not pause: %v", err)
	}
	aCancel()
	aCfg.OnCheckpoint = nil
	changedAdv := aCfg
	changedAdv.Opts = withExecModel(optsFor(ModeCrash, 2), "", sched.AdversaryAdaptive)
	if _, err := Resume(context.Background(), changedAdv); !errors.Is(err, ErrOptionsMismatch) {
		t.Errorf("resume under a changed adversary: %v, want ErrOptionsMismatch", err)
	}
}

// TestCampaignDifferentialsUnderNonDefaultModel: the kill/resume and
// 3-shard-merge differentials hold under a non-default memory model AND a
// non-default adversary — the campaign machinery is model-agnostic.
func TestCampaignDifferentialsUnderNonDefaultModel(t *testing.T) {
	cases := append(campCases(t), racyCase())
	for _, tc := range cases {
		for _, mode := range campModes {
			opts := optsFor(mode, 2)
			opts.Model = sched.ModelRegular
			if mode == ModeCrash {
				opts.Adversary = sched.AdversaryAdaptive
			}
			label := fmt.Sprintf("%s %s model=regular", tc.name, mode)
			dir := t.TempDir()

			// Kill at the first checkpoint, resume to completion.
			cfg := cfgFor(tc, opts, filepath.Join(dir, "kr.ckpt"))
			cfg.CheckpointEvery = 50
			ctx, cancel := context.WithCancel(context.Background())
			cfg.OnCheckpoint = func(Header) { cancel() }
			rep, err := Start(ctx, cfg)
			cancel()
			for attempt := 0; errors.Is(err, ErrPaused); attempt++ {
				if attempt > 1000 {
					t.Fatalf("%s: campaign failed to finish", label)
				}
				cfg.OnCheckpoint = nil
				rep, err = Resume(context.Background(), cfg)
			}
			checkAgainstReference(t, label+" kill/resume", tc, opts, rep, err)

			// 3-shard split, merged.
			const shards = 3
			paths := make([]string, shards)
			for s := 0; s < shards; s++ {
				paths[s] = filepath.Join(dir, fmt.Sprintf("shard-%d.ckpt", s))
				scfg := cfgFor(tc, opts, paths[s])
				scfg.Shard, scfg.Of = s, shards
				if _, serr := Start(context.Background(), scfg); serr != nil && !isCampaignVerdict(serr) {
					t.Fatalf("%s shard %d: %v", label, s, serr)
				}
			}
			merged, merr := Merge(context.Background(), cfgFor(tc, opts, paths[0]), paths)
			checkAgainstReference(t, label+" merge", tc, opts, merged, merr)
		}
	}
}

// isCampaignVerdict distinguishes a property-violation verdict (expected
// for the racy case) from an operational campaign error.
func isCampaignVerdict(err error) bool {
	return err != nil && !errors.Is(err, ErrPaused) && !errors.Is(err, ErrOptionsMismatch)
}

// TestAdversaryEventsCumulativeAcrossLives: the gsb_adversary_events_total
// counter is checkpointed with the engine state, so a kill/resume chain
// reports exactly the uninterrupted sweep's total, and a shard merge
// reports the sum of its shards — injected faults are never lost or
// double-counted across lives.
func TestAdversaryEventsCumulativeAcrossLives(t *testing.T) {
	tc := campCases(t)[0]
	opts := withExecModel(optsFor(ModeCrash, 2), "", sched.AdversaryTResilient)
	opts.CrashProb = 0.15

	events := func(rep Report) int64 {
		if rep.Stats == nil {
			t.Fatal("campaign report has no stats snapshot")
		}
		return rep.Stats.Counters[sched.MetricAdversaryEvents]
	}

	// Uninterrupted reference.
	refRep, err := Start(context.Background(), cfgFor(tc, opts, filepath.Join(t.TempDir(), "ref.ckpt")))
	if err != nil {
		t.Fatal(err)
	}
	want := events(refRep)
	if want == 0 {
		t.Fatal("reference sweep injected no crashes at CrashProb 0.15")
	}

	// Kill/resume chain.
	cfg := cfgFor(tc, opts, filepath.Join(t.TempDir(), "kr.ckpt"))
	cfg.CheckpointEvery = 50
	ctx, cancel := context.WithCancel(context.Background())
	cfg.OnCheckpoint = func(Header) { cancel() }
	rep, rerr := Start(ctx, cfg)
	cancel()
	resumes := 0
	for errors.Is(rerr, ErrPaused) {
		if resumes++; resumes > 1000 {
			t.Fatal("campaign failed to finish")
		}
		cfg.OnCheckpoint = nil
		rep, rerr = Resume(context.Background(), cfg)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	if resumes == 0 {
		t.Fatal("campaign was never interrupted (the test is vacuous)")
	}
	if got := events(rep); got != want {
		t.Errorf("kill/resume chain reports %d adversary events, uninterrupted sweep %d", got, want)
	}

	// 3-shard merge: the merged total is the sum over the disjoint shards,
	// which for a seeded sweep is exactly the uninterrupted total.
	const shards = 3
	dir := t.TempDir()
	paths := make([]string, shards)
	for s := 0; s < shards; s++ {
		paths[s] = filepath.Join(dir, fmt.Sprintf("shard-%d.ckpt", s))
		scfg := cfgFor(tc, opts, paths[s])
		scfg.Shard, scfg.Of = s, shards
		if _, serr := Start(context.Background(), scfg); serr != nil {
			t.Fatalf("shard %d: %v", s, serr)
		}
	}
	merged, merr := Merge(context.Background(), cfgFor(tc, opts, paths[0]), paths)
	if merr != nil {
		t.Fatal(merr)
	}
	if got := events(merged); got != want {
		t.Errorf("3-shard merge reports %d adversary events, uninterrupted sweep %d", got, want)
	}
}
