package mem

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/gsb"
	"repro/internal/sched"
)

// TaskBox is an oracle object solving a GSB task T, used to realize the
// enriched model ASM_{n,t}[T] of Section 5. Its behavior is the most
// adversarial one allowed by the specification: before the run it draws a
// legal output multiset (uniformly over the task's counting vectors, with
// a seeded generator) and hands its elements out in invocation order.
// Because a GSB task maps every input vector to the same output-vector
// set, and any prefix of a legal assignment extends to a legal vector,
// this is a correct implementation of "any object solving T".
type TaskBox struct {
	name       string
	spec       gsb.Spec
	assignment []int
	next       int
	invoked    []bool
}

// boxDraws memoizes drawn assignments. The draw is a pure function of
// (spec, seed) — Spec.String renders n and the full bound vectors, so it
// is a faithful key — and the exploration engines construct the same box
// once per re-executed run, millions of times: without the memo the
// math/rand seeding alone dominated the whole exploration hot path. A
// sync.Map fits the read-mostly pattern (millions of lock-free hits from
// concurrent workers, a handful of inserts); the cached slice is shared
// read-only between box instances (Invoke only reads it) and the cache is
// capped as a safety valve for callers that sweep unboundedly many seeds.
var (
	boxDraws     sync.Map // boxDrawKey -> []int
	boxDrawCount atomic.Int64
)

type boxDrawKey struct {
	spec string
	seed int64
}

const boxDrawCacheMax = 1 << 14

// drawAssignment picks the box's legal output multiset and hand-out order:
// uniformly over the task's counting vectors, then a seeded shuffle.
func drawAssignment(spec gsb.Spec, seed int64) []int {
	key := boxDrawKey{spec: spec.String(), seed: seed}
	if v, ok := boxDraws.Load(key); ok {
		return v.([]int)
	}
	rng := rand.New(rand.NewSource(seed))
	counting := spec.CountingVectors()
	cv := counting[rng.Intn(len(counting))]
	assignment := make([]int, 0, spec.N())
	for v, c := range cv {
		for k := 0; k < c; k++ {
			assignment = append(assignment, v+1)
		}
	}
	rng.Shuffle(len(assignment), func(i, j int) {
		assignment[i], assignment[j] = assignment[j], assignment[i]
	})
	if v, loaded := boxDraws.LoadOrStore(key, assignment); loaded {
		return v.([]int) // another worker drew it first; share one slice
	}
	if boxDrawCount.Add(1) > boxDrawCacheMax {
		// Over capacity: evict an arbitrary other entry rather than
		// refusing inserts — a refused hot key (one box constructed per
		// re-executed run) would re-seed and re-draw forever, while an
		// evicted hot key is simply re-inserted on its next run.
		boxDraws.Range(func(k, _ any) bool {
			if k == key {
				return true
			}
			// Only the goroutine that actually removed the entry may
			// decrement, or racing evictors of one victim would
			// undercount the map and erode the cap.
			if _, removed := boxDraws.LoadAndDelete(k); removed {
				boxDrawCount.Add(-1)
			}
			return false
		})
	}
	return assignment
}

// NewTaskBox allocates an oracle for spec. The seed selects the legal
// output multiset and its hand-out order.
func NewTaskBox(name string, spec gsb.Spec, seed int64) *TaskBox {
	if !spec.Feasible() {
		panic(fmt.Sprintf("mem: task box for infeasible spec %v", spec))
	}
	return &TaskBox{
		name:       name,
		spec:       spec,
		assignment: drawAssignment(spec, seed),
		invoked:    make([]bool, spec.N()),
	}
}

// Spec returns the task specification the box solves.
func (b *TaskBox) Spec() gsb.Spec { return b.spec }

// Invoke returns the caller's output for the boxed task (one step). Each
// process may invoke at most once; a second invocation panics, as the
// boxed tasks are one-shot.
func (b *TaskBox) Invoke(p *sched.Proc) int {
	return p.Exec(b.name+".invoke", func() any {
		validateIndex(p.Index(), len(b.invoked), "task box")
		if b.invoked[p.Index()] {
			panic(fmt.Sprintf("mem: process %d invoked task box %q twice", p.Index(), b.name))
		}
		b.invoked[p.Index()] = true
		v := b.assignment[b.next]
		b.next++
		return v
	}).(int)
}

// PerfectRenamingBox returns an oracle for the <n,n,1,1>-GSB task; the
// universality construction of Theorem 8 is built on top of it.
func PerfectRenamingBox(name string, n int, seed int64) *TaskBox {
	return NewTaskBox(name, gsb.PerfectRenaming(n), seed)
}

// SlotBox returns an oracle for the <n,k,1,n>-GSB k-slot task, the KS
// object of Section 6.
func SlotBox(name string, n, k int, seed int64) *TaskBox {
	return NewTaskBox(name, gsb.KSlot(n, k), seed)
}

// WSBBox returns an oracle for weak symmetry breaking, used by the
// WSB -> (2n-2)-renaming reduction.
func WSBBox(name string, n int, seed int64) *TaskBox {
	return NewTaskBox(name, gsb.WSB(n), seed)
}
