package mem

import (
	"fmt"
	"math/rand"

	"repro/internal/gsb"
	"repro/internal/sched"
)

// TaskBox is an oracle object solving a GSB task T, used to realize the
// enriched model ASM_{n,t}[T] of Section 5. Its behavior is the most
// adversarial one allowed by the specification: before the run it draws a
// legal output multiset (uniformly over the task's counting vectors, with
// a seeded generator) and hands its elements out in invocation order.
// Because a GSB task maps every input vector to the same output-vector
// set, and any prefix of a legal assignment extends to a legal vector,
// this is a correct implementation of "any object solving T".
type TaskBox struct {
	name       string
	spec       gsb.Spec
	assignment []int
	next       int
	invoked    []bool
}

// NewTaskBox allocates an oracle for spec. The seed selects the legal
// output multiset and its hand-out order.
func NewTaskBox(name string, spec gsb.Spec, seed int64) *TaskBox {
	if !spec.Feasible() {
		panic(fmt.Sprintf("mem: task box for infeasible spec %v", spec))
	}
	rng := rand.New(rand.NewSource(seed))
	counting := spec.CountingVectors()
	cv := counting[rng.Intn(len(counting))]
	assignment := make([]int, 0, spec.N())
	for v, c := range cv {
		for k := 0; k < c; k++ {
			assignment = append(assignment, v+1)
		}
	}
	rng.Shuffle(len(assignment), func(i, j int) {
		assignment[i], assignment[j] = assignment[j], assignment[i]
	})
	return &TaskBox{
		name:       name,
		spec:       spec,
		assignment: assignment,
		invoked:    make([]bool, spec.N()),
	}
}

// Spec returns the task specification the box solves.
func (b *TaskBox) Spec() gsb.Spec { return b.spec }

// Invoke returns the caller's output for the boxed task (one step). Each
// process may invoke at most once; a second invocation panics, as the
// boxed tasks are one-shot.
func (b *TaskBox) Invoke(p *sched.Proc) int {
	return p.Exec(b.name+".invoke", func() any {
		validateIndex(p.Index(), len(b.invoked), "task box")
		if b.invoked[p.Index()] {
			panic(fmt.Sprintf("mem: process %d invoked task box %q twice", p.Index(), b.name))
		}
		b.invoked[p.Index()] = true
		v := b.assignment[b.next]
		b.next++
		return v
	}).(int)
}

// PerfectRenamingBox returns an oracle for the <n,n,1,1>-GSB task; the
// universality construction of Theorem 8 is built on top of it.
func PerfectRenamingBox(name string, n int, seed int64) *TaskBox {
	return NewTaskBox(name, gsb.PerfectRenaming(n), seed)
}

// SlotBox returns an oracle for the <n,k,1,n>-GSB k-slot task, the KS
// object of Section 6.
func SlotBox(name string, n, k int, seed int64) *TaskBox {
	return NewTaskBox(name, gsb.KSlot(n, k), seed)
}

// WSBBox returns an oracle for weak symmetry breaking, used by the
// WSB -> (2n-2)-renaming reduction.
func WSBBox(name string, n int, seed int64) *TaskBox {
	return NewTaskBox(name, gsb.WSB(n), seed)
}
