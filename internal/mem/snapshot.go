package mem

import (
	"repro/internal/sched"
)

// SnapshotObject is the wait-free atomic snapshot construction of Afek,
// Attiya, Dolev, Gafni, Merritt and Shavit (JACM 1993) built from 1WnR
// registers only: every Update and Scan consists of single-register read
// and write steps. It exists in this repository as a substrate proof that
// the native one-step Array.Snapshot is implementable in the paper's base
// model; the two are tested to be observationally equivalent.
type SnapshotObject[T any] struct {
	regs *Array[snapCell[T]]
}

type snapCell[T any] struct {
	val  T
	seq  int // per-writer sequence number; 0 means never written
	help []T // embedded scan taken during the Update
	ok   []bool
}

// NewSnapshotObject allocates a snapshot object over n writers.
func NewSnapshotObject[T any](name string, n int) *SnapshotObject[T] {
	return &SnapshotObject[T]{regs: NewArray[snapCell[T]](name, n)}
}

// Len returns the number of components.
func (s *SnapshotObject[T]) Len() int { return s.regs.Len() }

// Update sets the caller's component to v. Per the construction, the
// writer first performs an embedded Scan and publishes it alongside the
// value, enabling helping.
func (s *SnapshotObject[T]) Update(p *sched.Proc, v T) {
	help, ok := s.Scan(p)
	cur, _ := s.regs.Read(p, p.Index())
	s.regs.Write(p, snapCell[T]{val: v, seq: cur.seq + 1, help: help, ok: ok})
}

// Scan returns an atomic snapshot of all components: either a direct
// double collect that observed no movement, or a snapshot borrowed from a
// writer that moved twice during the scan (whose embedded scan is then
// entirely contained in this scan's interval).
func (s *SnapshotObject[T]) Scan(p *sched.Proc) ([]T, []bool) {
	n := s.regs.Len()
	moved := make([]int, n)
	prev, _ := s.regs.Collect(p)
	for {
		cur, _ := s.regs.Collect(p)
		clean := true
		for j := 0; j < n; j++ {
			if prev[j].seq != cur[j].seq {
				clean = false
				moved[j]++
				if moved[j] >= 2 {
					// j completed an Update that started after our Scan
					// began; its embedded scan is linearizable here.
					help := make([]T, n)
					ok := make([]bool, n)
					copy(help, cur[j].help)
					copy(ok, cur[j].ok)
					return help, ok
				}
			}
		}
		if clean {
			vals := make([]T, n)
			ok := make([]bool, n)
			for j := 0; j < n; j++ {
				vals[j] = cur[j].val
				ok[j] = cur[j].seq > 0
			}
			return vals, ok
		}
		prev = cur
	}
}

// ConstructedMWMR is a multi-writer/multi-reader register built from 1WnR
// registers with (timestamp, writer) ordering: a Write collects all slots,
// picks a timestamp larger than any observed, and publishes into the
// writer's own slot; a Read collects and returns the value with the
// largest (timestamp, writer) pair. It demonstrates that the Reg objects
// used by auxiliary protocols do not extend the paper's base model.
type ConstructedMWMR[T any] struct {
	slots *Array[mwmrSlot[T]]
}

type mwmrSlot[T any] struct {
	ts  int
	val T
}

// NewConstructedMWMR allocates the register for n potential writers.
func NewConstructedMWMR[T any](name string, n int) *ConstructedMWMR[T] {
	return &ConstructedMWMR[T]{slots: NewArray[mwmrSlot[T]](name, n)}
}

// Write publishes v with a timestamp exceeding every observed one.
func (r *ConstructedMWMR[T]) Write(p *sched.Proc, v T) {
	vals, _ := r.slots.Collect(p)
	maxTS := 0
	for _, s := range vals {
		if s.ts > maxTS {
			maxTS = s.ts
		}
	}
	r.slots.Write(p, mwmrSlot[T]{ts: maxTS + 1, val: v})
}

// Read returns the value with the largest (timestamp, writer index) and
// whether any write has completed or is in progress.
func (r *ConstructedMWMR[T]) Read(p *sched.Proc) (T, bool) {
	vals, oks := r.slots.Collect(p)
	best := -1
	for j := range vals {
		if !oks[j] || vals[j].ts == 0 {
			continue
		}
		if best == -1 || vals[j].ts > vals[best].ts || (vals[j].ts == vals[best].ts && j > best) {
			best = j
		}
	}
	if best == -1 {
		var zero T
		return zero, false
	}
	return vals[best].val, true
}
