package mem

import (
	"strings"
	"testing"

	"repro/internal/gsb"
	"repro/internal/sched"
)

func TestArrayReadWrite(t *testing.T) {
	arr := NewArray[int]("A", 3)
	r := sched.NewRunner(3, sched.DefaultIDs(3), sched.NewRoundRobin())
	_, err := r.Run(func(p *sched.Proc) {
		if _, ok := arr.Read(p, p.Index()); ok {
			t.Error("register reported written before any write")
		}
		arr.Write(p, 10+p.Index())
		v, ok := arr.Read(p, p.Index())
		if !ok || v != 10+p.Index() {
			t.Errorf("read own register = (%d,%v)", v, ok)
		}
		p.Decide(1)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestArrayCollectSeesAllAfterBarrier(t *testing.T) {
	arr := NewArray[int]("A", 4)
	done := NewArray[bool]("done", 4)
	r := sched.NewRunner(4, sched.DefaultIDs(4), sched.NewRandom(5))
	_, err := r.Run(func(p *sched.Proc) {
		arr.Write(p, p.ID()*100)
		done.Write(p, true)
		// Spin until all processes have written (every process writes, so
		// under any fair schedule this terminates; the budget guards it).
		for {
			_, oks := done.Collect(p)
			all := true
			for _, ok := range oks {
				if !ok {
					all = false
				}
			}
			if all {
				break
			}
		}
		vals, oks := arr.Collect(p)
		for j, ok := range oks {
			if !ok || vals[j] != (j+1)*100 {
				t.Errorf("collect entry %d = (%d,%v)", j, vals[j], ok)
			}
		}
		p.Decide(1)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

// scanRecord is one observed snapshot: per-writer version numbers
// (0 = unwritten).
type scanRecord struct {
	proc     int
	versions []int
}

func comparable_(a, b []int) bool {
	le, ge := true, true
	for i := range a {
		if a[i] > b[i] {
			le = false
		}
		if a[i] < b[i] {
			ge = false
		}
	}
	return le || ge
}

type verVal struct {
	k int // version, 1-based
}

// checkScansAtomic verifies the classic snapshot atomicity witness: all
// observed version vectors are pairwise comparable (totally ordered), and
// each process's own component is self-included (>= its latest update).
func checkScansAtomic(t *testing.T, scans []scanRecord) {
	t.Helper()
	for i := 0; i < len(scans); i++ {
		for j := i + 1; j < len(scans); j++ {
			if !comparable_(scans[i].versions, scans[j].versions) {
				t.Fatalf("incomparable snapshots %v and %v: not linearizable",
					scans[i].versions, scans[j].versions)
			}
		}
	}
}

func TestSnapshotObjectAtomicity(t *testing.T) {
	const n, rounds = 4, 3
	for seed := int64(0); seed < 30; seed++ {
		snap := NewSnapshotObject[verVal]("S", n)
		var mu []scanRecord
		r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed),
			sched.WithMaxSteps(1<<20))
		_, err := r.Run(func(p *sched.Proc) {
			for k := 1; k <= rounds; k++ {
				snap.Update(p, verVal{k: k})
				vals, oks := snap.Scan(p)
				versions := make([]int, n)
				for j := range vals {
					if oks[j] {
						versions[j] = vals[j].k
					}
				}
				if versions[p.Index()] < k {
					t.Errorf("seed %d: scan by %d missed own update %d: %v",
						seed, p.Index(), k, versions)
				}
				p.Exec("record", func() any {
					mu = append(mu, scanRecord{proc: p.Index(), versions: versions})
					return nil
				})
			}
			p.Decide(1)
		})
		if err != nil {
			t.Fatalf("seed %d: run failed: %v", seed, err)
		}
		checkScansAtomic(t, mu)
	}
}

func TestSnapshotObjectWithCrashes(t *testing.T) {
	const n = 4
	for seed := int64(0); seed < 20; seed++ {
		snap := NewSnapshotObject[verVal]("S", n)
		var mu []scanRecord
		policy := sched.NewRandomCrash(seed, 0.02, n-1)
		r := sched.NewRunner(n, sched.DefaultIDs(n), policy, sched.WithMaxSteps(1<<20))
		_, err := r.Run(func(p *sched.Proc) {
			for k := 1; k <= 2; k++ {
				snap.Update(p, verVal{k: k})
				vals, oks := snap.Scan(p)
				versions := make([]int, n)
				for j := range vals {
					if oks[j] {
						versions[j] = vals[j].k
					}
				}
				p.Exec("record", func() any {
					mu = append(mu, scanRecord{proc: p.Index(), versions: versions})
					return nil
				})
			}
			p.Decide(1)
		})
		if err != nil {
			t.Fatalf("seed %d: run failed: %v", seed, err)
		}
		checkScansAtomic(t, mu)
	}
}

func TestNativeSnapshotMatchesConstructionObservationally(t *testing.T) {
	// The native one-step snapshot must satisfy the same atomicity witness
	// as the Afek et al. construction.
	const n, rounds = 4, 3
	for seed := int64(0); seed < 30; seed++ {
		arr := NewArray[verVal]("A", n)
		var mu []scanRecord
		r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed))
		_, err := r.Run(func(p *sched.Proc) {
			for k := 1; k <= rounds; k++ {
				arr.Write(p, verVal{k: k})
				vals, oks := arr.Snapshot(p)
				versions := make([]int, n)
				for j := range vals {
					if oks[j] {
						versions[j] = vals[j].k
					}
				}
				if versions[p.Index()] < k {
					t.Errorf("native snapshot missed own write")
				}
				p.Exec("record", func() any {
					mu = append(mu, scanRecord{proc: p.Index(), versions: versions})
					return nil
				})
			}
			p.Decide(1)
		})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		checkScansAtomic(t, mu)
	}
}

func TestRegSequential(t *testing.T) {
	reg := NewReg[string]("R")
	r := sched.NewRunner(1, sched.DefaultIDs(1), sched.NewRoundRobin())
	_, err := r.Run(func(p *sched.Proc) {
		if _, ok := reg.Read(p); ok {
			t.Error("unwritten register reads as written")
		}
		reg.Write(p, "x")
		v, ok := reg.Read(p)
		if !ok || v != "x" {
			t.Errorf("read = (%q,%v)", v, ok)
		}
		p.Decide(1)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestConstructedMWMRQuiescentAgreement(t *testing.T) {
	// After all writes complete, every reader must return the same value.
	const n = 4
	for seed := int64(0); seed < 25; seed++ {
		reg := NewConstructedMWMR[int]("M", n)
		phase := NewArray[bool]("phase", n)
		results := make([]int, n)
		r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed),
			sched.WithMaxSteps(1<<20))
		_, err := r.Run(func(p *sched.Proc) {
			reg.Write(p, 100+p.Index())
			phase.Write(p, true)
			for {
				_, oks := phase.Collect(p)
				all := true
				for _, ok := range oks {
					all = all && ok
				}
				if all {
					break
				}
			}
			v, ok := reg.Read(p)
			if !ok {
				t.Errorf("seed %d: read after writes reported unwritten", seed)
			}
			p.Exec("record", func() any { results[p.Index()] = v; return nil })
			p.Decide(1)
		})
		if err != nil {
			t.Fatalf("seed %d: run failed: %v", seed, err)
		}
		for i := 1; i < n; i++ {
			if results[i] != results[0] {
				t.Fatalf("seed %d: quiescent reads disagree: %v", seed, results)
			}
		}
	}
}

func TestConstructedMWMRReadsNeverGoBackwards(t *testing.T) {
	// Per-reader monotonicity: successive reads never observe an older
	// value from the same writer after a newer one (versions per writer
	// increase).
	const n = 3
	for seed := int64(0); seed < 25; seed++ {
		reg := NewConstructedMWMR[[2]int]("M", n) // value = (writer, version)
		r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed),
			sched.WithMaxSteps(1<<20))
		_, err := r.Run(func(p *sched.Proc) {
			lastSeen := map[int]int{}
			for k := 1; k <= 3; k++ {
				reg.Write(p, [2]int{p.Index(), k})
				v, ok := reg.Read(p)
				if ok {
					if v[1] < lastSeen[v[0]] {
						t.Errorf("seed %d: reader %d saw writer %d regress to version %d after %d",
							seed, p.Index(), v[0], v[1], lastSeen[v[0]])
					}
					lastSeen[v[0]] = v[1]
				}
				if me := lastSeen[p.Index()]; ok && v[0] == p.Index() && v[1] < k {
					_ = me // own writes must not regress either (covered above)
				}
			}
			p.Decide(1)
		})
		if err != nil {
			t.Fatalf("seed %d: run failed: %v", seed, err)
		}
	}
}

func TestTASSingleWinner(t *testing.T) {
	const n = 5
	for seed := int64(0); seed < 20; seed++ {
		tas := NewTAS("T")
		winners := 0
		r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed))
		_, err := r.Run(func(p *sched.Proc) {
			if tas.TestAndSet(p) {
				p.Exec("count", func() any { winners++; return nil })
			}
			p.Decide(1)
		})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if winners != 1 {
			t.Fatalf("seed %d: %d winners, want exactly 1", seed, winners)
		}
	}
}

func TestFetchIncDistinct(t *testing.T) {
	const n = 6
	fi := NewFetchInc("C")
	got := make([]int, n)
	r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(3))
	_, err := r.Run(func(p *sched.Proc) {
		v := fi.FetchInc(p)
		p.Exec("record", func() any { got[p.Index()] = v; return nil })
		p.Decide(v + 1)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("fetch&inc results not a permutation of 0..%d: %v", n-1, got)
		}
		seen[v] = true
	}
}

func TestTaskBoxProducesLegalVectors(t *testing.T) {
	specs := []gsb.Spec{
		gsb.PerfectRenaming(5),
		gsb.WSB(5),
		gsb.KSlot(5, 3),
		gsb.Election(5),
		gsb.NewSym(5, 3, 1, 3),
	}
	for _, spec := range specs {
		for seed := int64(0); seed < 10; seed++ {
			box := NewTaskBox("box", spec, seed)
			r := sched.NewRunner(spec.N(), sched.DefaultIDs(spec.N()), sched.NewRandom(seed))
			res, err := r.Run(func(p *sched.Proc) {
				p.Decide(box.Invoke(p))
			})
			if err != nil {
				t.Fatalf("%v seed %d: run failed: %v", spec, seed, err)
			}
			out, err := res.DecidedVector()
			if err != nil {
				t.Fatalf("%v seed %d: %v", spec, seed, err)
			}
			if err := spec.Verify(out); err != nil {
				t.Fatalf("%v seed %d: task box output invalid: %v", spec, seed, err)
			}
		}
	}
}

func TestTaskBoxPrefixCompletableUnderCrashes(t *testing.T) {
	// When some processes crash before invoking, the handed-out prefix must
	// still be completable to a legal vector (it is, by construction, a
	// prefix of one).
	spec := gsb.KSlot(5, 4)
	for seed := int64(0); seed < 10; seed++ {
		box := NewTaskBox("box", spec, seed)
		policy := &sched.CrashAt{Inner: sched.NewRandom(seed), Proc: 2, StepsBeforeCrash: 0}
		r := sched.NewRunner(5, sched.DefaultIDs(5), policy)
		res, err := r.Run(func(p *sched.Proc) {
			p.Decide(box.Invoke(p))
		})
		if err != nil {
			t.Fatalf("seed %d: run failed: %v", seed, err)
		}
		// Count decided values; each must not exceed its upper bound.
		counts := make([]int, spec.M())
		for i, d := range res.Decided {
			if d {
				counts[res.Outputs[i]-1]++
			}
		}
		remaining := 0
		for i := range res.Decided {
			if !res.Decided[i] {
				remaining++
			}
		}
		need := 0
		for v := 0; v < spec.M(); v++ {
			if counts[v] > spec.Upper(v+1) {
				t.Fatalf("seed %d: value %d over-assigned", seed, v+1)
			}
			if d := spec.Lower(v+1) - counts[v]; d > 0 {
				need += d
			}
		}
		if need > remaining {
			t.Fatalf("seed %d: prefix not completable: need %d, remaining %d", seed, need, remaining)
		}
	}
}

func TestTaskBoxDoubleInvokePanics(t *testing.T) {
	box := NewTaskBox("box", gsb.WSB(2), 1)
	r := sched.NewRunner(2, sched.DefaultIDs(2), sched.NewRoundRobin())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double invoke")
		}
	}()
	_, _ = r.Run(func(p *sched.Proc) {
		box.Invoke(p)
		box.Invoke(p)
		p.Decide(1)
	})
}

func TestTaskBoxInfeasiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for infeasible spec")
		}
	}()
	NewTaskBox("bad", gsb.NewSym(5, 2, 0, 1), 1) // 2 < 5: infeasible
}

func TestTaskBoxHelpers(t *testing.T) {
	if got := PerfectRenamingBox("p", 4, 1).Spec(); !got.SameParams(gsb.PerfectRenaming(4)) {
		t.Error("PerfectRenamingBox wrong spec")
	}
	if got := SlotBox("s", 5, 3, 1).Spec(); !got.SameParams(gsb.KSlot(5, 3)) {
		t.Error("SlotBox wrong spec")
	}
	if got := WSBBox("w", 5, 1).Spec(); !got.SameParams(gsb.WSB(5)) {
		t.Error("WSBBox wrong spec")
	}
}

func TestValidateIndex(t *testing.T) {
	defer func() {
		rec := recover()
		if rec == nil || !strings.Contains(rec.(string), "outside") {
			t.Fatalf("expected index panic, got %v", rec)
		}
	}()
	validateIndex(5, 3, "test")
}
