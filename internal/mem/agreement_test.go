package mem

import (
	"strings"
	"testing"

	"repro/internal/gsb"
	"repro/internal/sched"
)

func TestConsensusAgreementAndValidity(t *testing.T) {
	n := 5
	for seed := int64(0); seed < 20; seed++ {
		cons := NewConsensus("C")
		proposals := make([]int, n)
		r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed))
		res, err := r.Run(func(p *sched.Proc) {
			v := p.ID() * 10
			p.Exec("record", func() any { proposals[p.Index()] = v; return nil })
			p.Decide(cons.Propose(p, v))
		})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		out, err := res.DecidedVector()
		if err != nil {
			t.Fatal(err)
		}
		proposed := map[int]bool{}
		for _, v := range proposals {
			proposed[v] = true
		}
		for i := 1; i < n; i++ {
			if out[i] != out[0] {
				t.Fatalf("seed=%d: agreement violated: %v", seed, out)
			}
		}
		if !proposed[out[0]] {
			t.Fatalf("seed=%d: decided %d was never proposed", seed, out[0])
		}
	}
}

func TestKSetAgreementBounds(t *testing.T) {
	n := 6
	for k := 1; k <= 3; k++ {
		for seed := int64(0); seed < 20; seed++ {
			ksa := NewKSetAgreement("S", k)
			r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed))
			res, err := r.Run(func(p *sched.Proc) {
				p.Decide(ksa.Propose(p, p.ID()*10))
			})
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			out, err := res.DecidedVector()
			if err != nil {
				t.Fatal(err)
			}
			distinct := map[int]bool{}
			for i, v := range out {
				if v%10 != 0 || v < 10 || v > n*10 {
					t.Fatalf("k=%d seed=%d: process %d decided unproposed %d", k, seed, i, v)
				}
				distinct[v] = true
			}
			if len(distinct) > k {
				t.Fatalf("k=%d seed=%d: %d distinct decisions", k, seed, len(distinct))
			}
		}
	}
}

func TestKSetAgreementValidation(t *testing.T) {
	defer func() {
		rec := recover()
		if rec == nil || !strings.Contains(rec.(string), "k >= 1") {
			t.Fatalf("recover = %v", rec)
		}
	}()
	NewKSetAgreement("x", 0)
}

// TestAgreementTasksAreNotGSB makes Section 3.2's observation executable:
// consensus outputs depend on inputs, so no single GSB spec describes
// consensus across input assignments. Concretely, with proposals all
// equal to x, the only legal consensus output vector is all-x; a GSB task
// <n,m,l,u> with m > 1 that accepted all-x for every x would need u >= n
// for every value AND to reject nothing else — but consensus also rejects
// mixed vectors, which every GSB spec accepting the constant vectors
// accepts.
func TestAgreementTasksAreNotGSB(t *testing.T) {
	n := 3
	// Suppose some GSB spec captured binary consensus outputs. It must
	// accept [1,1,1] and [2,2,2] (valid consensus outcomes for matching
	// proposal vectors).
	for _, mv := range []int{2, 3} {
		for l := 0; l <= n; l++ {
			for u := l; u <= n; u++ {
				if l == 0 && u == 0 {
					continue
				}
				spec := gsb.NewSym(n, mv, l, u)
				allOnes := []int{1, 1, 1}
				allTwos := []int{2, 2, 2}
				mixed := []int{1, 2, 1} // never a consensus output
				if spec.Verify(allOnes) == nil && spec.Verify(allTwos) == nil {
					if spec.Verify(mixed) != nil {
						t.Fatalf("%v accepts both constants but rejects the mixed vector; GSB counting bounds cannot do that", spec)
					}
				}
			}
		}
	}
}
