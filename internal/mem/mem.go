// Package mem provides the shared-memory objects of the paper's model:
// arrays of single-writer/multi-reader (1WnR) atomic registers, atomic
// snapshots (both as a native one-step object, justified by Afek et al.
// [1], and as a wait-free construction from 1WnR registers), multi-writer
// registers, and the oracle objects used by enriched models ASM_{n,t}[T]
// (test-and-set, fetch&increment, GSB task boxes).
//
// Every operation is linearized through sched.Proc.Exec, so an operation
// is exactly one "step" of the paper's runs. Values stored in registers
// must be treated as immutable by protocol code: registers copy the value
// header only (Go assignment), so mutating a stored slice after writing it
// would break atomicity.
//
// Register and snapshot semantics are model-mediated (sched.MemModel,
// docs/models.md): under the default atomic model every operation is the
// one step described above, bit-identical to the pre-registry behavior.
// The weak models add scheduler-visible decision points instead of hidden
// nondeterminism — a run stays a pure function of (model, schedule):
//
//   - TwoPhaseWrites (regular, safe): Write executes as a
//     "<name>.write-start" step opening a write window followed by a
//     "<name>.write-commit" step installing the value. A read scheduled
//     between the two sees the old committed value (regular semantics).
//     A writer crashed between start and commit leaves the window open
//     forever — a torn write.
//   - SafeReads (safe): a Read whose step lands inside an open write
//     window returns the arbitrary value of Lamport's safe registers,
//     represented deterministically as the unwritten zero value.
//   - StaleSnapshots: Array.Snapshot degrades to Collect — n individual
//     read steps instead of one atomic step — so two snapshots need not
//     be mutually comparable.
//
// Snapshots under the two-phase models read committed values only (the
// write weakening and the snapshot weakening are orthogonal axes).
package mem

import (
	"fmt"

	"repro/internal/sched"
)

// Array is an array of n single-writer/multi-reader atomic registers.
// Entry i may be written only by the process with index i.
type Array[T any] struct {
	name    string
	vals    []T
	written []bool
	// open counts open write windows per register under the two-phase
	// models (see the package comment); nil until the first two-phase
	// write, so the atomic hot path allocates nothing extra.
	open []int
}

// NewArray allocates an array of n 1WnR registers holding zero values.
func NewArray[T any](name string, n int) *Array[T] {
	return &Array[T]{name: name, vals: make([]T, n), written: make([]bool, n)}
}

// Len returns the number of registers.
func (a *Array[T]) Len() int { return len(a.vals) }

// Write stores v in the caller's register: one step under the atomic
// model, a write-start/write-commit step pair under the two-phase models.
func (a *Array[T]) Write(p *sched.Proc, v T) {
	if p.Model().TwoPhaseWrites() {
		i := p.Index()
		p.Exec(a.name+".write-start", func() any {
			if a.open == nil {
				a.open = make([]int, len(a.vals))
			}
			a.open[i]++
			return nil
		})
		p.Exec(a.name+".write-commit", func() any {
			a.vals[i] = v
			a.written[i] = true
			a.open[i]--
			return nil
		})
		return
	}
	p.Exec(a.name+".write", func() any {
		a.vals[p.Index()] = v
		a.written[p.Index()] = true
		return nil
	})
}

// Read returns the value of register j (one step) and whether it has ever
// been written. Under the safe model a read overlapping an open write
// window returns the unwritten zero value.
func (a *Array[T]) Read(p *sched.Proc, j int) (T, bool) {
	if p.Model().SafeReads() {
		res := p.Exec(a.name+".read", func() any {
			if a.open != nil && a.open[j] > 0 {
				return readResult[T]{}
			}
			return readResult[T]{val: a.vals[j], ok: a.written[j]}
		}).(readResult[T])
		return res.val, res.ok
	}
	res := p.Exec(a.name+".read", func() any {
		return readResult[T]{val: a.vals[j], ok: a.written[j]}
	}).(readResult[T])
	return res.val, res.ok
}

type readResult[T any] struct {
	val T
	ok  bool
}

// Collect reads all n registers one by one (n steps). Entry j of the
// returned slices is register j's value and written-flag. A collect is
// not atomic: values may come from different points in time.
func (a *Array[T]) Collect(p *sched.Proc) ([]T, []bool) {
	vals := make([]T, len(a.vals))
	oks := make([]bool, len(a.vals))
	for j := range a.vals {
		vals[j], oks[j] = a.Read(p, j)
	}
	return vals, oks
}

// Snapshot returns an atomic snapshot of the array in one step. The paper
// assumes snapshots are available without loss of generality because they
// are wait-free implementable from 1WnR registers (Afek et al.); package
// mem also provides that construction (SnapshotObject) and tests that the
// two agree observationally.
func (a *Array[T]) Snapshot(p *sched.Proc) ([]T, []bool) {
	if p.Model().StaleSnapshots() {
		// The stale-snapshot model degrades the one-step snapshot into a
		// per-register collect: n read steps, so the values need not be
		// mutually consistent.
		return a.Collect(p)
	}
	res := p.Exec(a.name+".snapshot", func() any {
		vals := make([]T, len(a.vals))
		oks := make([]bool, len(a.vals))
		copy(vals, a.vals)
		copy(oks, a.written)
		return snapResult[T]{vals: vals, oks: oks}
	}).(snapResult[T])
	return res.vals, res.oks
}

type snapResult[T any] struct {
	vals []T
	oks  []bool
}

// Reg is a multi-writer/multi-reader atomic register (one step per
// operation). The paper's base model uses only 1WnR registers; Reg models
// the standard hardware register used by auxiliary constructions such as
// splitters, and ConstructedMWMR shows how to build it from 1WnR.
type Reg[T any] struct {
	name    string
	val     T
	written bool
	// open counts open write windows under the two-phase models.
	open int
}

// NewReg allocates a multi-writer register holding the zero value.
func NewReg[T any](name string) *Reg[T] { return &Reg[T]{name: name} }

// Write stores v: one step under the atomic model, a write-start/
// write-commit step pair under the two-phase models.
func (r *Reg[T]) Write(p *sched.Proc, v T) {
	if p.Model().TwoPhaseWrites() {
		p.Exec(r.name+".write-start", func() any {
			r.open++
			return nil
		})
		p.Exec(r.name+".write-commit", func() any {
			r.val = v
			r.written = true
			r.open--
			return nil
		})
		return
	}
	p.Exec(r.name+".write", func() any {
		r.val = v
		r.written = true
		return nil
	})
}

// Read returns the current value (one step). Under the safe model a read
// overlapping an open write window returns the unwritten zero value.
func (r *Reg[T]) Read(p *sched.Proc) (T, bool) {
	res := p.Exec(r.name+".read", func() any {
		if r.open > 0 && p.Model().SafeReads() {
			return readResult[T]{}
		}
		return readResult[T]{val: r.val, ok: r.written}
	}).(readResult[T])
	return res.val, res.ok
}

// TAS is a one-shot test-and-set object: the first invoker wins. It is an
// oracle object (not wait-free implementable from registers); the paper
// uses such objects to define enriched models ASM_{n,t}[T].
type TAS struct {
	name string
	set  bool
}

// NewTAS allocates a test-and-set object.
func NewTAS(name string) *TAS { return &TAS{name: name} }

// TestAndSet returns true iff the caller is the first invoker (one step).
func (t *TAS) TestAndSet(p *sched.Proc) bool {
	return p.Exec(t.name+".tas", func() any {
		if t.set {
			return false
		}
		t.set = true
		return true
	}).(bool)
}

// FetchInc is a fetch&increment counter oracle object.
type FetchInc struct {
	name string
	next int
}

// NewFetchInc allocates a counter whose first FetchInc returns 0.
func NewFetchInc(name string) *FetchInc { return &FetchInc{name: name} }

// FetchInc atomically returns the current count and increments it.
func (f *FetchInc) FetchInc(p *sched.Proc) int {
	return p.Exec(f.name+".fetchinc", func() any {
		v := f.next
		f.next++
		return v
	}).(int)
}

// Validate panics unless 0 <= idx < n; used by objects that key state by
// process index.
func validateIndex(idx, n int, what string) {
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("mem: %s index %d outside [0..%d)", what, idx, n))
	}
}
