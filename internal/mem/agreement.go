package mem

import (
	"fmt"

	"repro/internal/sched"
)

// Agreement-task oracle objects. The paper contrasts GSB tasks with
// agreement tasks (Section 1): agreement outputs must relate to inputs
// (consensus decides a proposed value), whereas GSB tasks are inputless —
// their output-vector set is the same for every input vector. These
// oracles make the contrast executable and give the tests concrete
// colorless tasks that provably are not GSB tasks (Section 3.2).

// Consensus is a one-shot consensus object: every invoker decides the
// same value, and that value is some process's proposal (here: the first
// proposal the object receives — the strongest adversary cannot do
// otherwise for validity).
type Consensus struct {
	name    string
	decided bool
	value   int
}

// NewConsensus allocates a consensus object.
func NewConsensus(name string) *Consensus { return &Consensus{name: name} }

// Propose submits v and returns the decided value (one step).
func (c *Consensus) Propose(p *sched.Proc, v int) int {
	return p.Exec(c.name+".propose", func() any {
		if !c.decided {
			c.decided = true
			c.value = v
		}
		return c.value
	}).(int)
}

// KSetAgreement is a k-set agreement object: every invoker decides a
// proposed value and at most k distinct values are decided. The oracle
// keeps the first k distinct proposals as the decidable set and routes
// every caller to one of them (its own proposal when possible).
type KSetAgreement struct {
	name   string
	k      int
	chosen []int
}

// NewKSetAgreement allocates a k-set agreement object.
func NewKSetAgreement(name string, k int) *KSetAgreement {
	if k < 1 {
		panic(fmt.Sprintf("mem: k-set agreement needs k >= 1, got %d", k))
	}
	return &KSetAgreement{name: name, k: k}
}

// Propose submits v and returns a decided value (one step).
func (s *KSetAgreement) Propose(p *sched.Proc, v int) int {
	return p.Exec(s.name+".propose", func() any {
		for _, c := range s.chosen {
			if c == v {
				return v
			}
		}
		if len(s.chosen) < s.k {
			s.chosen = append(s.chosen, v)
			return v
		}
		return s.chosen[0]
	}).(int)
}
