package mem

import (
	"strings"
	"testing"

	"repro/internal/gsb"
	"repro/internal/sched"
)

func TestKTASBounds(t *testing.T) {
	// Among p participants, at least 1 and at most k obtain 1 — for every
	// participation level (adaptivity).
	n := 6
	for k := 1; k <= 3; k++ {
		for p := 1; p <= n; p++ {
			for seed := int64(0); seed < 10; seed++ {
				ktas := NewKTAS("T", k)
				var policy sched.Policy = sched.NewRandom(seed)
				for i := p; i < n; i++ {
					policy = &sched.CrashAt{Inner: policy, Proc: i, StepsBeforeCrash: 0}
				}
				winners := 0
				r := sched.NewRunner(n, sched.DefaultIDs(n), policy)
				res, err := r.Run(func(pr *sched.Proc) {
					v := ktas.Invoke(pr)
					pr.Exec("count", func() any {
						if v == 1 {
							winners++
						}
						return nil
					})
					pr.Decide(v + 1)
				})
				if err != nil {
					t.Fatalf("k=%d p=%d seed=%d: %v", k, p, seed, err)
				}
				_ = res
				if winners < 1 || winners > k {
					t.Fatalf("k=%d p=%d seed=%d: %d winners", k, p, seed, winners)
				}
			}
		}
	}
}

func TestKLeaderElectionDecidesParticipants(t *testing.T) {
	// Every decided identity belongs to a participant, and at most k
	// distinct identities are decided — even under partial participation.
	n := 5
	for k := 1; k <= 3; k++ {
		for p := 1; p <= n; p++ {
			for seed := int64(0); seed < 10; seed++ {
				el := NewKLeaderElection("L", k)
				var policy sched.Policy = sched.NewRandom(seed)
				for i := p; i < n; i++ {
					policy = &sched.CrashAt{Inner: policy, Proc: i, StepsBeforeCrash: 0}
				}
				r := sched.NewRunner(n, sched.DefaultIDs(n), policy)
				res, err := r.Run(func(pr *sched.Proc) {
					pr.Decide(el.Invoke(pr, pr.ID()))
				})
				if err != nil {
					t.Fatalf("k=%d p=%d seed=%d: %v", k, p, seed, err)
				}
				distinct := map[int]bool{}
				for i := 0; i < n; i++ {
					if !res.Decided[i] {
						continue
					}
					leader := res.Outputs[i]
					if leader < 1 || leader > p {
						t.Fatalf("k=%d p=%d seed=%d: leader %d is not a participant (ids 1..%d participate)",
							k, p, seed, leader, p)
					}
					distinct[leader] = true
				}
				if len(distinct) > k {
					t.Fatalf("k=%d p=%d seed=%d: %d distinct leaders", k, p, seed, len(distinct))
				}
			}
		}
	}
}

// TestAdaptiveVersusGSBElection demonstrates the paper's Section 1
// distinction: election GSB is a NON-adaptive form of test&set. A GSB
// election box may elect a process that never participates (legal: GSB
// bounds constrain complete vectors only), whereas test&set's winner is
// always a participant.
func TestAdaptiveVersusGSBElection(t *testing.T) {
	n := 4
	// Find a seed whose election box assigns value 1 to a process that we
	// then crash before participation; the surviving processes all decide
	// 2 — a legal GSB prefix with no leader among participants.
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		box := NewTaskBox("el", gsb.Election(n), seed)
		policy := &sched.CrashAt{Inner: sched.NewRoundRobin(), Proc: 0, StepsBeforeCrash: 0}
		r := sched.NewRunner(n, sched.DefaultIDs(n), policy)
		res, err := r.Run(func(p *sched.Proc) {
			p.Decide(box.Invoke(p))
		})
		if err != nil {
			t.Fatal(err)
		}
		leaderAmongSurvivors := false
		for i := 1; i < n; i++ {
			if res.Outputs[i] == 1 {
				leaderAmongSurvivors = true
			}
		}
		if !leaderAmongSurvivors {
			found = true
		}
	}
	if !found {
		t.Fatal("no run left the participants leaderless; election GSB should permit this")
	}
	// Test&set (1-TAS), in contrast, always crowns a participant.
	for seed := int64(0); seed < 50; seed++ {
		ktas := NewKTAS("T", 1)
		policy := &sched.CrashAt{Inner: sched.NewRandom(seed), Proc: 0, StepsBeforeCrash: 0}
		winners := 0
		r := sched.NewRunner(n, sched.DefaultIDs(n), policy)
		_, err := r.Run(func(p *sched.Proc) {
			if ktas.Invoke(p) == 1 {
				p.Exec("count", func() any { winners++; return nil })
			}
			p.Decide(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		if winners != 1 {
			t.Fatalf("seed=%d: test&set crowned %d participants", seed, winners)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewKTAS("x", 0) },
		func() { NewKLeaderElection("x", 0) },
	} {
		func() {
			defer func() {
				rec := recover()
				if rec == nil || !strings.Contains(rec.(string), "k >= 1") {
					t.Fatalf("recover = %v", rec)
				}
			}()
			fn()
		}()
	}
}
