package mem

import (
	"fmt"

	"repro/internal/sched"
)

// This file provides the *adaptive* oracle objects that the paper
// contrasts with GSB tasks (Section 1 and related work): test&set,
// k-test&set and k-leader election are specified in terms of the
// participating set, so their guarantees hold even when fewer than n
// processes show up — unlike GSB tasks, whose bounds quantify over
// complete n-process output vectors only. The tests use these objects to
// demonstrate the paper's distinction between election (a non-adaptive
// GSB task) and test&set (its adaptive sibling).

// KTAS is a k-test&set object: among the processes that invoke, at least
// one and at most k obtain 1 (the rest obtain 0). With k = 1 it is the
// classic test&set, whose winner is always a participant — the property
// election GSB does not guarantee.
type KTAS struct {
	name    string
	k       int
	winners int
}

// NewKTAS allocates a k-test&set oracle.
func NewKTAS(name string, k int) *KTAS {
	if k < 1 {
		panic(fmt.Sprintf("mem: k-test&set needs k >= 1, got %d", k))
	}
	return &KTAS{name: name, k: k}
}

// Invoke returns 1 for up to the first k invokers and 0 afterwards. The
// "at least one" bound holds because the first invoker always wins.
func (t *KTAS) Invoke(p *sched.Proc) int {
	return p.Exec(t.name+".ktas", func() any {
		if t.winners < t.k {
			t.winners++
			return 1
		}
		return 0
	}).(int)
}

// KLeaderElection is a k-leader election object: every participant
// decides the identity of a participant, and at most k distinct
// identities are decided. This oracle implements the strongest adversary
// consistent with that specification for k = 1..n: it elects the first
// invoker's identity (k=1 semantics) and, for k > 1, rotates among the
// first k invokers' identities.
type KLeaderElection struct {
	name    string
	k       int
	leaders []int
	calls   int
}

// NewKLeaderElection allocates a k-leader-election oracle.
func NewKLeaderElection(name string, k int) *KLeaderElection {
	if k < 1 {
		panic(fmt.Sprintf("mem: k-leader election needs k >= 1, got %d", k))
	}
	return &KLeaderElection{name: name, k: k}
}

// Invoke records the caller as a potential leader while fewer than k are
// known, and returns one of the recorded participant identities.
func (e *KLeaderElection) Invoke(p *sched.Proc, id int) int {
	return p.Exec(e.name+".kleader", func() any {
		if len(e.leaders) < e.k {
			e.leaders = append(e.leaders, id)
		}
		leader := e.leaders[e.calls%len(e.leaders)]
		e.calls++
		return leader
	}).(int)
}
