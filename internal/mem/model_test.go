package mem

import (
	"context"
	"testing"

	"repro/internal/sched"
)

// These tests pin the weak-model semantics of the package comment with
// scripted schedules: exactly which value a read returns relative to a
// write window is the model's observable contract.

func modelByName(t *testing.T, name string) sched.MemModel {
	t.Helper()
	m, err := sched.MemModelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTwoPhaseWriteWindow: under the regular model a read scheduled
// inside the write window returns the old committed value; under the safe
// model it returns the unwritten zero value. After the commit both see
// the new value.
func TestTwoPhaseWriteWindow(t *testing.T) {
	cases := []struct {
		model  string
		midVal int
		midOk  bool
	}{
		{sched.ModelRegular, 1, true}, // regular: committed value
		{sched.ModelSafe, 0, false},   // safe: arbitrary = unwritten zero
	}
	for _, tc := range cases {
		reg := NewReg[int]("R")
		// p0: Write(1); Write(2).  p1: Read; Read.
		// Schedule: both steps of Write(1), write-start of Write(2), p1's
		// mid-window read, write-commit, p1's second read.
		script := sched.NewScript([]sched.Decision{
			{Proc: 0}, {Proc: 0}, // write-start + write-commit of 1
			{Proc: 0}, // write-start of 2: window opens
			{Proc: 1}, // read inside the window
			{Proc: 0}, // write-commit of 2
			{Proc: 1}, // read after the window
		})
		var midV, endV int
		var midOk, endOk bool
		r := sched.NewRunner(2, sched.DefaultIDs(2), script, sched.WithModel(modelByName(t, tc.model)))
		_, err := r.Run(func(p *sched.Proc) {
			if p.Index() == 0 {
				reg.Write(p, 1)
				reg.Write(p, 2)
			} else {
				midV, midOk = reg.Read(p)
				endV, endOk = reg.Read(p)
			}
			p.Decide(p.Index())
		})
		if err != nil {
			t.Fatalf("%s: run failed: %v", tc.model, err)
		}
		if midV != tc.midVal || midOk != tc.midOk {
			t.Errorf("%s: mid-window read = (%d, %v), want (%d, %v)", tc.model, midV, midOk, tc.midVal, tc.midOk)
		}
		if endV != 2 || !endOk {
			t.Errorf("%s: post-commit read = (%d, %v), want (2, true)", tc.model, endV, endOk)
		}
	}
}

// TestTornWriteCrash: a writer crashed between write-start and
// write-commit leaves the window open forever. Regular readers keep the
// last committed value; safe readers see the torn (zero) value from then
// on.
func TestTornWriteCrash(t *testing.T) {
	cases := []struct {
		model   string
		wantVal int
		wantOk  bool
	}{
		{sched.ModelRegular, 7, true},
		{sched.ModelSafe, 0, false},
	}
	for _, tc := range cases {
		reg := NewReg[int]("R")
		// p1: Write(7); Read.  p0: Write(9), crashed mid-window.
		script := sched.NewScript([]sched.Decision{
			{Proc: 1}, {Proc: 1}, // p1 commits 7
			{Proc: 0},              // p0 write-start of 9: window opens
			{Proc: 0, Crash: true}, // p0 dies mid-write: torn write
			{Proc: 1},              // p1 reads under the open window
		})
		var v int
		var ok bool
		r := sched.NewRunner(2, sched.DefaultIDs(2), script, sched.WithModel(modelByName(t, tc.model)))
		res, err := r.Run(func(p *sched.Proc) {
			if p.Index() == 0 {
				reg.Write(p, 9)
			} else {
				reg.Write(p, 7)
				v, ok = reg.Read(p)
			}
			p.Decide(p.Index())
		})
		if err != nil {
			t.Fatalf("%s: run failed: %v", tc.model, err)
		}
		if !res.Crashed[0] {
			t.Fatalf("%s: p0 was not crashed mid-write (schedule %v)", tc.model, res.Schedule)
		}
		if v != tc.wantVal || ok != tc.wantOk {
			t.Errorf("%s: read under a torn write = (%d, %v), want (%d, %v)", tc.model, v, ok, tc.wantVal, tc.wantOk)
		}
	}
}

// TestModelStepDecomposition: the weak models weaken semantics purely by
// adding scheduler-visible steps — two-phase writes appear as
// write-start/write-commit ops, stale snapshots as per-register reads —
// while the atomic schedule is bit-identical to the pre-registry one.
func TestModelStepDecomposition(t *testing.T) {
	run := func(model string) []sched.Step {
		arr := NewArray[int]("A", 2)
		r := sched.NewRunner(2, sched.DefaultIDs(2), sched.NewRoundRobin(), sched.WithModel(modelByName(t, model)))
		res, err := r.Run(func(p *sched.Proc) {
			arr.Write(p, p.Index()+1)
			arr.Snapshot(p)
			p.Decide(p.Index())
		})
		if err != nil {
			t.Fatalf("%s: run failed: %v", model, err)
		}
		return res.Schedule
	}
	countOps := func(sch []sched.Step) map[string]int {
		ops := map[string]int{}
		for _, s := range sch {
			ops[s.Op]++
		}
		return ops
	}

	atomic := countOps(run(sched.ModelAtomic))
	if atomic["A.write"] != 2 || atomic["A.snapshot"] != 2 || atomic["A.write-start"] != 0 {
		t.Errorf("atomic ops = %v, want one-step writes and snapshots", atomic)
	}
	regular := countOps(run(sched.ModelRegular))
	if regular["A.write-start"] != 2 || regular["A.write-commit"] != 2 || regular["A.write"] != 0 || regular["A.snapshot"] != 2 {
		t.Errorf("regular ops = %v, want write-start/write-commit pairs and atomic snapshots", regular)
	}
	stale := countOps(run(sched.ModelStaleSnapshot))
	if stale["A.snapshot"] != 0 || stale["A.read"] != 4 || stale["A.write"] != 2 {
		t.Errorf("stale-snapshot ops = %v, want per-register collects (2 reads per snapshot) and one-step writes", stale)
	}
}

// TestSnapshotReadsCommittedValues: the write weakening and the snapshot
// weakening are orthogonal — under the two-phase models a one-step
// snapshot taken inside a write window returns the committed values, not
// the torn ones.
func TestSnapshotReadsCommittedValues(t *testing.T) {
	for _, model := range []string{sched.ModelRegular, sched.ModelSafe} {
		arr := NewArray[int]("A", 2)
		script := sched.NewScript([]sched.Decision{
			{Proc: 0}, {Proc: 0}, // p0 commits 5
			{Proc: 0}, // p0 write-start of 6: window opens
			{Proc: 1}, // p1 snapshots inside the window
			{Proc: 0}, // p0 commits 6
		})
		var snapVal int
		var snapOk bool
		r := sched.NewRunner(2, sched.DefaultIDs(2), script, sched.WithModel(modelByName(t, model)))
		_, err := r.Run(func(p *sched.Proc) {
			if p.Index() == 0 {
				arr.Write(p, 5)
				arr.Write(p, 6)
			} else {
				vals, oks := arr.Snapshot(p)
				snapVal, snapOk = vals[0], oks[0]
			}
			p.Decide(p.Index())
		})
		if err != nil {
			t.Fatalf("%s: run failed: %v", model, err)
		}
		if snapVal != 5 || !snapOk {
			t.Errorf("%s: snapshot inside a write window saw (%d, %v), want the committed (5, true)", model, snapVal, snapOk)
		}
	}
}

// TestModelAxisChangesClassCounts: the model axis demonstrably changes
// the explored state space — two-phase writes add interleaving points, so
// the POR trace-class count of a register protocol strictly grows from
// atomic to regular, while a model weakening only snapshots leaves a
// snapshot-free protocol's count unchanged.
func TestModelAxisChangesClassCounts(t *testing.T) {
	build := func() sched.Body {
		reg := NewReg[int]("R")
		return func(p *sched.Proc) {
			reg.Write(p, p.Index()+1)
			v, _ := reg.Read(p)
			p.Decide(v)
		}
	}
	count := func(model string) int {
		opts := sched.ExploreOptions{Workers: 2, Reduction: sched.ReductionSleepMemo, MaxSteps: 1000, Model: model}
		n, err := sched.Explore(context.Background(), 2, sched.DefaultIDs(2), opts,
			func() sched.Body { return build() }, func(*sched.Result) error { return nil })
		if err != nil {
			t.Fatalf("model=%s: %v", model, err)
		}
		return n
	}
	atomic, regular, stale := count(sched.ModelAtomic), count(sched.ModelRegular), count(sched.ModelStaleSnapshot)
	if regular <= atomic {
		t.Errorf("regular classes %d <= atomic classes %d; two-phase writes must add interleavings", regular, atomic)
	}
	if stale != atomic {
		t.Errorf("stale-snapshot classes %d != atomic %d on a snapshot-free protocol", stale, atomic)
	}
}
