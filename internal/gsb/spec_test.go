package gsb

import (
	"strings"
	"testing"

	"repro/internal/vecmath"
)

func TestNewSymValidation(t *testing.T) {
	tests := []struct {
		name       string
		n, m, l, u int
	}{
		{"n zero", 0, 2, 0, 1},
		{"m zero", 3, 0, 0, 1},
		{"negative l", 3, 2, -1, 1},
		{"u below l", 3, 2, 2, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSym(%d,%d,%d,%d) did not panic", tc.n, tc.m, tc.l, tc.u)
				}
			}()
			NewSym(tc.n, tc.m, tc.l, tc.u)
		})
	}
}

func TestNewAsymValidation(t *testing.T) {
	tests := []struct {
		name string
		n    int
		l, u []int
	}{
		{"empty bounds", 3, nil, nil},
		{"length mismatch", 3, []int{1}, []int{1, 2}},
		{"negative lower", 3, []int{-1, 0}, []int{1, 3}},
		{"upper below lower", 3, []int{2, 0}, []int{1, 3}},
		{"n zero", 0, []int{0}, []int{1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("NewAsym did not panic")
				}
			}()
			NewAsym(tc.n, tc.l, tc.u)
		})
	}
}

func TestNewAsymCopiesBounds(t *testing.T) {
	l := []int{1, 1}
	u := []int{2, 2}
	s := NewAsym(4, l, u)
	l[0] = 99
	u[0] = 99
	if s.Lower(1) != 1 || s.Upper(1) != 2 {
		t.Fatal("NewAsym aliases caller slices")
	}
}

func TestFeasibility(t *testing.T) {
	// Lemma 2: feasible iff m*l <= n <= m*u.
	for n := 1; n <= 10; n++ {
		for m := 1; m <= 5; m++ {
			for l := 0; l <= 4; l++ {
				for u := l; u <= 6; u++ {
					if l == 0 && u == 0 {
						continue
					}
					s := NewSym(n, m, l, u)
					want := m*l <= n && n <= m*u
					if got := s.Feasible(); got != want {
						t.Fatalf("%v Feasible() = %v, want %v", s, got, want)
					}
					// Cross-check against actual output existence for tiny sizes.
					if n <= 5 && m <= 3 {
						hasOutput := len(s.OutputVectors()) > 0
						if hasOutput != want {
							t.Fatalf("%v: OutputVectors emptiness disagrees with Lemma 2", s)
						}
					}
				}
			}
		}
	}
}

func TestFeasibilityAsymmetric(t *testing.T) {
	// Lemma 1: feasible iff sum(l) <= n <= sum(u).
	s := Election(5)
	if !s.Feasible() {
		t.Errorf("%v should be feasible", s)
	}
	bad := NewAsym(5, []int{3, 3}, []int{3, 3})
	if bad.Feasible() {
		t.Errorf("%v should be infeasible (sum of lower bounds 6 > 5)", bad)
	}
	bad2 := NewAsym(5, []int{0, 0}, []int{2, 2})
	if bad2.Feasible() {
		t.Errorf("%v should be infeasible (sum of upper bounds 4 < 5)", bad2)
	}
}

func TestStringNotation(t *testing.T) {
	if got := NewSym(6, 3, 1, 4).String(); got != "<6,3,1,4>-GSB" {
		t.Errorf("String = %q", got)
	}
	if got := Election(4).String(); got != "<4,[1,3],[1,3]>-GSB" {
		t.Errorf("String = %q", got)
	}
}

func TestVerify(t *testing.T) {
	s := NewSym(4, 2, 1, 3) // WSB for n=4
	tests := []struct {
		name    string
		outputs []int
		wantErr string
	}{
		{"valid balanced", []int{1, 2, 1, 2}, ""},
		{"valid skewed", []int{1, 1, 1, 2}, ""},
		{"all same", []int{1, 1, 1, 1}, "above upper bound"},
		{"all same other", []int{2, 2, 2, 2}, "below lower bound"},
		{"out of range high", []int{1, 2, 3, 1}, "outside"},
		{"out of range low", []int{0, 2, 1, 1}, "outside"},
		{"wrong length", []int{1, 2}, "entries"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := s.Verify(tc.outputs)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Verify(%v) = %v, want nil", tc.outputs, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Verify(%v) = %v, want error containing %q", tc.outputs, err, tc.wantErr)
			}
		})
	}
}

func TestVerifyAgainstOutputVectors(t *testing.T) {
	// Verify must accept exactly the enumerated output vectors.
	specs := []Spec{
		NewSym(4, 2, 1, 3),
		NewSym(4, 4, 1, 1),
		NewSym(3, 5, 0, 1),
		Election(4),
		NewAsym(4, []int{0, 1}, []int{2, 4}),
	}
	for _, s := range specs {
		valid := map[string]bool{}
		for _, o := range s.OutputVectors() {
			valid[vecmath.Vec(o).Key()] = true
			if err := s.Verify(o); err != nil {
				t.Fatalf("%v: enumerated output %v rejected: %v", s, o, err)
			}
		}
		// Exhaustively check all m^n vectors.
		total := 1
		for i := 0; i < s.N(); i++ {
			total *= s.M()
		}
		cur := make([]int, s.N())
		for code := 0; code < total; code++ {
			c := code
			for i := range cur {
				cur[i] = c%s.M() + 1
				c /= s.M()
			}
			err := s.Verify(cur)
			if valid[vecmath.Vec(cur).Key()] != (err == nil) {
				t.Fatalf("%v: Verify(%v)=%v disagrees with enumeration", s, cur, err)
			}
		}
	}
}

func TestCountingVector(t *testing.T) {
	s := NewSym(6, 3, 0, 6)
	got := s.CountingVector([]int{1, 2, 1, 3, 1, 2})
	if !got.Equal(vecmath.Vec{3, 2, 1}) {
		t.Fatalf("CountingVector = %v, want [3,2,1]", got)
	}
}

func TestCountingVectorsMatchOutputEnumeration(t *testing.T) {
	// Definition 3: C(T) must be exactly the set of counting vectors of
	// the enumerated output vectors.
	specs := []Spec{
		NewSym(5, 2, 1, 4),
		NewSym(4, 3, 0, 2),
		NewSym(6, 3, 1, 4),
		Election(4),
	}
	for _, s := range specs {
		want := map[string]bool{}
		for _, o := range s.OutputVectors() {
			want[s.CountingVector(o).Key()] = true
		}
		got := s.CountingVectors()
		if len(got) != len(want) {
			t.Fatalf("%v: %d counting vectors, want %d", s, len(got), len(want))
		}
		for _, c := range got {
			if !want[c.Key()] {
				t.Fatalf("%v: unexpected counting vector %v", s, c)
			}
		}
	}
}

func TestKernelSetTable1(t *testing.T) {
	// The exact kernel sets from Table 1 of the paper (n=6, m=3).
	want := map[string][]string{
		"<6,3,0,6>-GSB": {"[6,0,0]", "[5,1,0]", "[4,2,0]", "[4,1,1]", "[3,3,0]", "[3,2,1]", "[2,2,2]"},
		"<6,3,1,6>-GSB": {"[4,1,1]", "[3,2,1]", "[2,2,2]"},
		"<6,3,0,5>-GSB": {"[5,1,0]", "[4,2,0]", "[4,1,1]", "[3,3,0]", "[3,2,1]", "[2,2,2]"},
		"<6,3,1,5>-GSB": {"[4,1,1]", "[3,2,1]", "[2,2,2]"},
		"<6,3,2,5>-GSB": {"[2,2,2]"},
		"<6,3,0,4>-GSB": {"[4,2,0]", "[4,1,1]", "[3,3,0]", "[3,2,1]", "[2,2,2]"},
		"<6,3,1,4>-GSB": {"[4,1,1]", "[3,2,1]", "[2,2,2]"},
		"<6,3,2,4>-GSB": {"[2,2,2]"},
		"<6,3,0,3>-GSB": {"[3,3,0]", "[3,2,1]", "[2,2,2]"},
		"<6,3,1,3>-GSB": {"[3,2,1]", "[2,2,2]"},
		"<6,3,2,3>-GSB": {"[2,2,2]"},
		"<6,3,0,2>-GSB": {"[2,2,2]"},
		"<6,3,1,2>-GSB": {"[2,2,2]"},
		"<6,3,2,2>-GSB": {"[2,2,2]"},
	}
	for _, s := range Family(6, 3) {
		name := s.String()
		wantKs, ok := want[name]
		if !ok {
			// <6,3,2,6> is feasible but omitted from the paper's table;
			// its kernel set must match its synonyms.
			if name != "<6,3,2,6>-GSB" {
				t.Fatalf("unexpected family member %v", s)
			}
			wantKs = []string{"[2,2,2]"}
		}
		ks := s.KernelSet()
		if len(ks) != len(wantKs) {
			t.Fatalf("%v: kernel set %v, want %v", s, ks, wantKs)
		}
		for i := range ks {
			if ks[i].String() != wantKs[i] {
				t.Errorf("%v: kernel[%d] = %v, want %v", s, i, ks[i], wantKs[i])
			}
		}
	}
}

func TestKernelSetLexOrdered(t *testing.T) {
	// Lemma 3: kernel sets are totally ordered lexicographically.
	for n := 1; n <= 9; n++ {
		for m := 1; m <= 4; m++ {
			for _, s := range Family(n, m) {
				if !s.KernelSetTotallyOrdered() {
					t.Fatalf("%v kernel set not totally ordered", s)
				}
			}
		}
	}
}

func TestBalancedKernelVector(t *testing.T) {
	tests := []struct {
		n, m int
		want vecmath.Vec
	}{
		{6, 3, vecmath.Vec{2, 2, 2}},
		{7, 3, vecmath.Vec{3, 2, 2}},
		{8, 3, vecmath.Vec{3, 3, 2}},
		{5, 1, vecmath.Vec{5}},
	}
	for _, tc := range tests {
		if got := BalancedKernelVector(tc.n, tc.m); !got.Equal(tc.want) {
			t.Errorf("BalancedKernelVector(%d,%d) = %v, want %v", tc.n, tc.m, got, tc.want)
		}
	}
}

func TestBalancedKernelVectorInEveryFeasibleTask(t *testing.T) {
	// Paper (Section 4.1): the balanced kernel vector belongs to all
	// feasible <n,m,-,-> tasks.
	for n := 1; n <= 9; n++ {
		for m := 1; m <= 4; m++ {
			bk := BalancedKernelVector(n, m).Key()
			for _, s := range Family(n, m) {
				found := false
				for _, k := range s.KernelSet() {
					if k.Key() == bk {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%v kernel set lacks balanced vector %s", s, bk)
				}
			}
		}
	}
}

func TestSynonymsFromPaper(t *testing.T) {
	// Section 4: <n,2,1,n-1>, <n,2,0,n-1> and <n,2,1,n> are synonyms.
	n := 6
	a := NewSym(n, 2, 1, n-1)
	b := NewSym(n, 2, 0, n-1)
	c := NewSym(n, 2, 1, n)
	if !a.Synonym(b) || !a.Synonym(c) || !b.Synonym(c) {
		t.Error("WSB synonym triple not detected")
	}
	// Section 4.1 examples: <6,3,2,5>, <6,3,2,4>, <6,3,2,3>, <6,3,0,2>,
	// <6,3,1,2> and <6,3,2,2> are synonyms.
	group := []Spec{
		NewSym(6, 3, 2, 5), NewSym(6, 3, 2, 4), NewSym(6, 3, 2, 3),
		NewSym(6, 3, 0, 2), NewSym(6, 3, 1, 2), NewSym(6, 3, 2, 2),
	}
	for i := range group {
		for j := range group {
			if !group[i].Synonym(group[j]) {
				t.Errorf("%v and %v should be synonyms", group[i], group[j])
			}
		}
	}
	// <6,3,1,6>, <6,3,1,5> and <6,3,1,4> are synonyms.
	group2 := []Spec{NewSym(6, 3, 1, 6), NewSym(6, 3, 1, 5), NewSym(6, 3, 1, 4)}
	for i := range group2 {
		for j := range group2 {
			if !group2[i].Synonym(group2[j]) {
				t.Errorf("%v and %v should be synonyms", group2[i], group2[j])
			}
		}
	}
	// Non-synonyms.
	if NewSym(6, 3, 1, 4).Synonym(NewSym(6, 3, 0, 3)) {
		t.Error("<6,3,1,4> and <6,3,0,3> are not synonyms")
	}
	// The k-slot synonym from Section 3.2: <n,k,1,n> == <n,k,1,n-k+1>.
	if !KSlot(7, 3).Synonym(NewSym(7, 3, 1, 5)) {
		t.Error("<7,3,1,7> and <7,3,1,5> should be synonyms")
	}
}

func TestSynonymDifferentShape(t *testing.T) {
	if NewSym(4, 2, 1, 3).Synonym(NewSym(5, 2, 1, 4)) {
		t.Error("different n cannot be synonyms")
	}
	if NewSym(4, 2, 1, 3).Synonym(NewSym(4, 3, 1, 3)) {
		t.Error("different m cannot be synonyms")
	}
}

func TestKSlotIsWSBFor2Slots(t *testing.T) {
	// Section 3.2: the WSB task is the 2-slot task.
	for n := 2; n <= 8; n++ {
		if !KSlot(n, 2).Synonym(WSB(n)) {
			t.Errorf("2-slot and WSB differ for n=%d", n)
		}
	}
}

func TestContainmentMonotonicity(t *testing.T) {
	// Lemma 4: S(<n,m,l,u>) ⊆ S(<n,m,l,u'>) for u' >= u.
	// Lemma 5: S(<n,m,l,u>) ⊆ S(<n,m,l',u>) for l' <= l.
	for n := 2; n <= 8; n++ {
		for m := 2; m <= 4; m++ {
			for _, s := range Family(n, m) {
				l, u := s.SymBounds()
				for up := u; up <= n; up++ {
					if !NewSym(n, m, l, up).Contains(s) {
						t.Fatalf("Lemma 4 fails: %v not contained in <%d,%d,%d,%d>", s, n, m, l, up)
					}
				}
				for lp := 0; lp <= l; lp++ {
					if !NewSym(n, m, lp, u).Contains(s) {
						t.Fatalf("Lemma 5 fails: %v not contained in <%d,%d,%d,%d>", s, n, m, lp, u)
					}
				}
			}
		}
	}
}

func TestHardest(t *testing.T) {
	// Theorem 5: <n,m,floor(n/m),ceil(n/m)> is contained in every feasible
	// <n,m,-,-> task.
	for n := 2; n <= 9; n++ {
		for m := 1; m <= 4; m++ {
			h := Hardest(n, m)
			if !h.Feasible() {
				t.Fatalf("hardest task %v infeasible", h)
			}
			for _, s := range Family(n, m) {
				if !s.Contains(h) {
					t.Fatalf("Theorem 5 fails: %v does not contain hardest %v", s, h)
				}
			}
		}
	}
	// Specific examples from the paper: <10,4,2,3> is the hardest of
	// <10,4,-,->; perfect renaming <n,n,1,1> is Hardest(n, n).
	if !Hardest(10, 4).SameParams(NewSym(10, 4, 2, 3)) {
		t.Error("Hardest(10,4) != <10,4,2,3>")
	}
	if !Hardest(5, 5).SameParams(PerfectRenaming(5)) {
		t.Error("Hardest(5,5) != perfect renaming")
	}
}

func TestTheorem6Containments(t *testing.T) {
	// Theorem 6: with l' = n-u(m-1) and u' = n-l(m-1):
	// (i)  l' >= l implies S(<n,m,l',u>) ⊆ S(<n,m,l,u>)
	// (ii) u' <= u implies S(<n,m,l,u'>) ⊆ S(<n,m,l,u>)
	for n := 2; n <= 9; n++ {
		for m := 2; m <= 4; m++ {
			for _, s := range Family(n, m) {
				l, u := s.SymBounds()
				lp := n - u*(m-1)
				up := n - l*(m-1)
				if lp >= l && lp >= 0 && lp <= u {
					t1 := NewSym(n, m, lp, u)
					if !s.Contains(t1) {
						t.Fatalf("Theorem 6(i) fails for %v (l'=%d)", s, lp)
					}
				}
				if up <= u && up >= l {
					t2 := NewSym(n, m, l, up)
					if !s.Contains(t2) {
						t.Fatalf("Theorem 6(ii) fails for %v (u'=%d)", s, up)
					}
				}
			}
		}
	}
}

func TestElectionContainedInWSB(t *testing.T) {
	// Section 5.3: the output vectors of election are contained in those
	// of WSB, so election trivially solves WSB.
	for n := 2; n <= 8; n++ {
		if !WSB(n).Contains(Election(n)) {
			t.Errorf("WSB(%d) does not contain Election(%d)", n, n)
		}
		if Election(n).Synonym(WSB(n)) == (n != 2) {
			// For n=2, exactly-one-1 equals not-all-same; for n>2 they differ.
			t.Errorf("Election/WSB synonymy wrong for n=%d", n)
		}
	}
}

func TestColorlessVectorNotGSB(t *testing.T) {
	// Section 3.2: in a GSB task an output vector where all entries equal
	// the same value v requires m=1 or u >= n; e.g. consensus-like vectors
	// are excluded from WSB.
	s := WSB(5)
	if err := s.Verify([]int{1, 1, 1, 1, 1}); err == nil {
		t.Error("WSB accepted an all-same vector")
	}
}

func TestSymBoundsPanicsOnAsymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Election(3).SymBounds()
}

func TestKernelSetPanicsOnAsymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Election(3).KernelSet()
}
