// Package gsb implements the family of generalized symmetry breaking (GSB)
// tasks introduced by Imbs, Rajsbaum and Raynal in "The Universe of
// Symmetry Breaking Tasks" (PI-1965, 2011).
//
// A GSB task for n processes is specified by a set of m possible output
// values and, for each value v in [1..m], a lower bound l_v and an upper
// bound u_v on the number of processes that must decide v. The task is
// "inputless": the relation Delta maps every input vector (an assignment
// of distinct identities) to the same set O of legal output vectors.
//
// The package provides the combinatorial structure of the family: counting
// vectors, kernel vectors and kernel sets (Definitions 3 and 4), synonym
// detection, l/u/(l,u)-anchoring (Definition 5), canonical representatives
// (Theorem 7), the containment partial order (Lemmas 4 and 5), the hardest
// task of a sub-family (Theorem 5), and the communication-free solvability
// characterization (Theorem 9).
package gsb

import (
	"fmt"

	"repro/internal/vecmath"
)

// Spec describes an <n,m,l,u>-GSB task (possibly asymmetric, in which case
// per-value bound vectors are used). The zero value is not a valid Spec;
// use NewSym or NewAsym.
type Spec struct {
	n int
	l vecmath.Vec // per-value lower bounds, length m
	u vecmath.Vec // per-value upper bounds, length m
}

// NewSym returns the symmetric <n,m,l,u>-GSB task specification.
// It panics if the parameters are structurally invalid (n < 1, m < 1,
// l < 0 or u < l); feasibility (Lemma 2) is a separate, non-panicking
// query because the paper studies infeasible parameter choices too.
func NewSym(n, m, l, u int) Spec {
	if n < 1 {
		panic(fmt.Sprintf("gsb: n must be >= 1, got %d", n))
	}
	if m < 1 {
		panic(fmt.Sprintf("gsb: m must be >= 1, got %d", m))
	}
	if l < 0 || u < l {
		panic(fmt.Sprintf("gsb: bounds must satisfy 0 <= l <= u, got l=%d u=%d", l, u))
	}
	lv := make(vecmath.Vec, m)
	uv := make(vecmath.Vec, m)
	for v := 0; v < m; v++ {
		lv[v] = l
		uv[v] = u
	}
	return Spec{n: n, l: lv, u: uv}
}

// NewAsym returns the asymmetric <n,m,l⃗,u⃗>-GSB task specification, where
// l[v] and u[v] bound the number of processes deciding value v+1.
// The bound slices are copied.
func NewAsym(n int, l, u []int) Spec {
	if n < 1 {
		panic(fmt.Sprintf("gsb: n must be >= 1, got %d", n))
	}
	if len(l) != len(u) || len(l) == 0 {
		panic("gsb: bound vectors must be non-empty and of equal length")
	}
	for v := range l {
		if l[v] < 0 || u[v] < l[v] {
			panic(fmt.Sprintf("gsb: bounds for value %d must satisfy 0 <= l <= u, got l=%d u=%d",
				v+1, l[v], u[v]))
		}
	}
	return Spec{n: n, l: vecmath.Vec(l).Clone(), u: vecmath.Vec(u).Clone()}
}

// N returns the number of processes.
func (s Spec) N() int { return s.n }

// M returns the number of possible output values.
func (s Spec) M() int { return len(s.l) }

// Lower returns the lower bound for value v (1-based).
func (s Spec) Lower(v int) int { return s.l[v-1] }

// Upper returns the upper bound for value v (1-based).
func (s Spec) Upper(v int) int { return s.u[v-1] }

// LowerVec returns a copy of the per-value lower-bound vector.
func (s Spec) LowerVec() vecmath.Vec { return s.l.Clone() }

// UpperVec returns a copy of the per-value upper-bound vector.
func (s Spec) UpperVec() vecmath.Vec { return s.u.Clone() }

// Symmetric reports whether all lower bounds are equal and all upper
// bounds are equal (the symmetric agreement case of the paper).
func (s Spec) Symmetric() bool {
	for v := 1; v < s.M(); v++ {
		if s.l[v] != s.l[0] || s.u[v] != s.u[0] {
			return false
		}
	}
	return true
}

// SymBounds returns (l, u) for a symmetric spec. It panics when the spec
// is asymmetric.
func (s Spec) SymBounds() (l, u int) {
	if !s.Symmetric() {
		panic("gsb: SymBounds on asymmetric spec")
	}
	return s.l[0], s.u[0]
}

// Feasible reports whether the task has at least one legal output vector
// (Lemma 1: sum of lower bounds <= n <= sum of upper bounds).
func (s Spec) Feasible() bool {
	return s.l.Sum() <= s.n && s.n <= s.u.Sum()
}

// String renders the spec in the paper's notation, e.g. "<6,3,1,4>-GSB"
// for symmetric specs or "<4,[1,0],[1,3]>-GSB" for asymmetric ones.
func (s Spec) String() string {
	if s.Symmetric() {
		l, u := s.SymBounds()
		return fmt.Sprintf("<%d,%d,%d,%d>-GSB", s.n, s.M(), l, u)
	}
	return fmt.Sprintf("<%d,%s,%s>-GSB", s.n, s.l, s.u)
}

// SameParams reports whether two specs have identical parameters (not
// merely the same output-vector set; for that, see Synonym).
func (s Spec) SameParams(t Spec) bool {
	return s.n == t.n && s.l.Equal(t.l) && s.u.Equal(t.u)
}

// Verify checks an output vector (one decided value per process, 1-based)
// against the specification. A nil error means the vector is legal.
func (s Spec) Verify(outputs []int) error {
	if len(outputs) != s.n {
		return fmt.Errorf("gsb: output vector has %d entries, want n=%d", len(outputs), s.n)
	}
	counts := make([]int, s.M())
	for i, v := range outputs {
		if v < 1 || v > s.M() {
			return fmt.Errorf("gsb: process %d decided %d, outside [1..%d]", i, v, s.M())
		}
		counts[v-1]++
	}
	for v := 0; v < s.M(); v++ {
		if counts[v] < s.l[v] {
			return fmt.Errorf("gsb: value %d decided %d times, below lower bound %d",
				v+1, counts[v], s.l[v])
		}
		if counts[v] > s.u[v] {
			return fmt.Errorf("gsb: value %d decided %d times, above upper bound %d",
				v+1, counts[v], s.u[v])
		}
	}
	return nil
}

// VerifyPartial checks the outputs of a run in which some processes may
// have crashed undecided: decided[i] reports whether outputs[i] is
// meaningful. The partial assignment is legal when no upper bound is
// exceeded and the undecided processes suffice to cover the remaining
// lower bounds (i.e. the prefix extends to a legal vector, which is what
// Definition 1's validity requires of crashed runs).
func (s Spec) VerifyPartial(outputs []int, decided []bool) error {
	if len(outputs) != s.n || len(decided) != s.n {
		return fmt.Errorf("gsb: partial output vectors have lengths %d/%d, want n=%d",
			len(outputs), len(decided), s.n)
	}
	counts := make([]int, s.M())
	undecided := 0
	for i := range outputs {
		if !decided[i] {
			undecided++
			continue
		}
		v := outputs[i]
		if v < 1 || v > s.M() {
			return fmt.Errorf("gsb: process %d decided %d, outside [1..%d]", i, v, s.M())
		}
		counts[v-1]++
	}
	need := 0
	for v := 0; v < s.M(); v++ {
		if counts[v] > s.u[v] {
			return fmt.Errorf("gsb: value %d decided %d times, above upper bound %d",
				v+1, counts[v], s.u[v])
		}
		if d := s.l[v] - counts[v]; d > 0 {
			need += d
		}
	}
	if need > undecided {
		return fmt.Errorf("gsb: partial outputs not completable: %d lower-bound slots remain but only %d processes undecided",
			need, undecided)
	}
	return nil
}

// CountingVector returns the counting vector of an output vector
// (Definition 3): entry v-1 is the number of processes that decided v.
// It panics if the vector is not a legal [1..m]^n vector of length n.
func (s Spec) CountingVector(outputs []int) vecmath.Vec {
	if len(outputs) != s.n {
		panic(fmt.Sprintf("gsb: output vector has %d entries, want %d", len(outputs), s.n))
	}
	counts := make(vecmath.Vec, s.M())
	for _, v := range outputs {
		if v < 1 || v > s.M() {
			panic(fmt.Sprintf("gsb: output value %d outside [1..%d]", v, s.M()))
		}
		counts[v-1]++
	}
	return counts
}

// CountingVectors enumerates C(T), the set of all counting vectors of the
// task (Definition 3), in descending lexicographic order.
func (s Spec) CountingVectors() []vecmath.Vec {
	return vecmath.BoundedCompositions(s.n, s.l, s.u)
}

// KernelSet returns the kernel set of a symmetric task (Definition 4):
// the non-increasing representatives of the counting vectors, in the
// descending lexicographic order used by the paper's Table 1.
// It panics for asymmetric specs, whose counting-vector classes are not
// closed under permutation.
func (s Spec) KernelSet() []vecmath.Vec {
	if !s.Symmetric() {
		panic("gsb: KernelSet on asymmetric spec")
	}
	l, u := s.SymBounds()
	return vecmath.BoundedPartitions(s.n, s.M(), l, u)
}

// BalancedKernelVector returns the balanced kernel vector of the
// <n,m,-,-> family (Definition 4): [ceil(n/m) x (n mod m), floor(n/m) ...].
func BalancedKernelVector(n, m int) vecmath.Vec {
	k := make(vecmath.Vec, m)
	q, r := n/m, n%m
	for i := 0; i < m; i++ {
		if i < r {
			k[i] = q + 1
		} else {
			k[i] = q
		}
	}
	return k
}

// Synonym reports whether s and t denote the same task, i.e. have the same
// set of output vectors (the paper writes G1 ≡ G2). Both specs must have
// the same n and m for the output sets to be comparable at all.
func (s Spec) Synonym(t Spec) bool {
	if s.n != t.n || s.M() != t.M() {
		return false
	}
	return countingSetEqual(s.CountingVectors(), t.CountingVectors())
}

// Contains reports whether every output vector of t is an output vector
// of s (S(t) ⊆ S(s)); in the paper's ordering this makes t at least as
// hard as s (any algorithm solving t also solves s).
func (s Spec) Contains(t Spec) bool {
	if s.n != t.n || s.M() != t.M() {
		return false
	}
	mine := countingKeySet(s.CountingVectors())
	for _, c := range t.CountingVectors() {
		if !mine[c.Key()] {
			return false
		}
	}
	return true
}

// StrictlyContains reports S(t) ⊂ S(s).
func (s Spec) StrictlyContains(t Spec) bool {
	return s.Contains(t) && !s.Synonym(t)
}

func countingKeySet(cs []vecmath.Vec) map[string]bool {
	set := make(map[string]bool, len(cs))
	for _, c := range cs {
		set[c.Key()] = true
	}
	return set
}

func countingSetEqual(a, b []vecmath.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	// Both enumerations are in descending lexicographic order, so compare
	// pointwise.
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// OutputVectors enumerates the full set O of legal output vectors (size
// m^n in the worst case — intended for small n only, as a cross-check of
// the counting-vector abstraction).
func (s Spec) OutputVectors() [][]int {
	var out [][]int
	cur := make([]int, s.n)
	counts := make([]int, s.M())
	var rec func(i int)
	rec = func(i int) {
		if i == s.n {
			for v := 0; v < s.M(); v++ {
				if counts[v] < s.l[v] {
					return
				}
			}
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 1; v <= s.M(); v++ {
			if counts[v-1] >= s.u[v-1] {
				continue
			}
			// Prune: remaining slots must be able to satisfy lower bounds.
			counts[v-1]++
			need := 0
			for w := 0; w < s.M(); w++ {
				if d := s.l[w] - counts[w]; d > 0 {
					need += d
				}
			}
			if need <= s.n-i-1 {
				cur[i] = v
				rec(i + 1)
			}
			counts[v-1]--
		}
	}
	rec(0)
	return out
}
