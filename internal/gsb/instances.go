package gsb

import "fmt"

// Named task instances from Section 3.2 of the paper.

// Election returns the election asymmetric GSB task: exactly one process
// outputs 1 and exactly n-1 processes output 2.
func Election(n int) Spec {
	if n < 2 {
		panic(fmt.Sprintf("gsb: election needs n >= 2, got %d", n))
	}
	return NewAsym(n, []int{1, n - 1}, []int{1, n - 1})
}

// WSB returns the weak symmetry breaking task <n,2,1,n-1>-GSB: binary
// outputs, not all processes decide the same value.
func WSB(n int) Spec {
	if n < 2 {
		panic(fmt.Sprintf("gsb: WSB needs n >= 2, got %d", n))
	}
	return NewSym(n, 2, 1, n-1)
}

// KWSB returns the k-weak symmetry breaking task <n,2,k,n-k>-GSB
// (requires k <= n/2 for feasibility; 1-WSB is WSB).
func KWSB(n, k int) Spec {
	if k < 1 {
		panic(fmt.Sprintf("gsb: k-WSB needs k >= 1, got %d", k))
	}
	return NewSym(n, 2, k, n-k)
}

// Renaming returns the (non-adaptive) m-renaming task <n,m,0,1>-GSB:
// processes decide distinct names in [1..m].
func Renaming(n, m int) Spec {
	if m < n {
		// Still a valid (infeasible) spec; the paper only considers m >= n.
		// We allow constructing it so that feasibility tests can exercise it.
		return NewSym(n, m, 0, 1)
	}
	return NewSym(n, m, 0, 1)
}

// PerfectRenaming returns the perfect renaming task <n,n,1,1>-GSB, the
// universal GSB task (Theorem 8).
func PerfectRenaming(n int) Spec {
	return NewSym(n, n, 1, 1)
}

// KSlot returns the k-slot task <n,k,1,n>-GSB: each process decides a
// value in [1..k] and every value is decided at least once. The paper
// notes <n,k,1,n>-GSB and <n,k,1,n-k+1>-GSB are synonyms; this returns
// the former.
func KSlot(n, k int) Spec {
	if k < 1 || k > n {
		panic(fmt.Sprintf("gsb: k-slot needs 1 <= k <= n, got k=%d n=%d", k, n))
	}
	return NewSym(n, k, 1, n)
}

// BoundedHomonymous returns the x-bounded homonymous renaming task
// <n, ceil((2n-1)/x), 0, x>-GSB (Corollary 2): at most x processes share
// any name.
func BoundedHomonymous(n, x int) Spec {
	if x < 1 {
		panic(fmt.Sprintf("gsb: bounded homonymous renaming needs x >= 1, got %d", x))
	}
	m := (2*n - 1 + x - 1) / x
	return NewSym(n, m, 0, x)
}
