package gsb

import "repro/internal/vecmath"

// This file implements Definition 5 (anchoring), Theorems 3 and 4 (the
// arithmetic characterization of anchoring), and Theorem 7 (canonical
// representatives as fixed points of f(l,u)).

// LAnchored reports whether the symmetric task is l-anchored
// (Definition 5): increasing the upper bound to min(n, u+1) does not
// change the task. Panics on asymmetric specs.
func (s Spec) LAnchored() bool {
	l, u := s.SymBounds()
	up := vecmath.Min(s.n, u+1)
	if up == u {
		return true
	}
	return s.Synonym(NewSym(s.n, s.M(), l, up))
}

// UAnchored reports whether the symmetric task is u-anchored
// (Definition 5): decreasing the lower bound to max(0, l-1) does not
// change the task. Panics on asymmetric specs.
func (s Spec) UAnchored() bool {
	l, u := s.SymBounds()
	lo := vecmath.Max(0, l-1)
	if lo == l {
		return true
	}
	return s.Synonym(NewSym(s.n, s.M(), lo, u))
}

// LUAnchored reports whether the task is both l-anchored and u-anchored.
func (s Spec) LUAnchored() bool { return s.LAnchored() && s.UAnchored() }

// LAnchoredFormula evaluates the Theorem 3 characterization for a feasible
// symmetric task: l-anchored iff u >= n - l(m-1).
func (s Spec) LAnchoredFormula() bool {
	l, u := s.SymBounds()
	return u >= s.n-l*(s.M()-1)
}

// UAnchoredFormula evaluates the Theorem 4 characterization for a feasible
// symmetric task: u-anchored iff l <= n - u(m-1). The paper's statement
// implicitly assumes l >= 1; tasks with l = 0 are trivially u-anchored
// (Section 4.2), and for u(m-1) > n the l=0 case would otherwise be
// misclassified (found by the exhaustive test against Definition 5; see
// EXPERIMENTS.md).
func (s Spec) UAnchoredFormula() bool {
	l, u := s.SymBounds()
	return l == 0 || l <= s.n-u*(s.M()-1)
}

// CanonicalStep applies one application of the Theorem 7 map
// f(l,u) = (max(l, n-u(m-1)), min(u, n-l(m-1))).
func (s Spec) CanonicalStep() Spec {
	l, u := s.SymBounds()
	m := s.M()
	lp := vecmath.Max(l, s.n-u*(m-1))
	up := vecmath.Min(u, s.n-l*(m-1))
	return NewSym(s.n, m, lp, up)
}

// Canonical returns the canonical representative of a feasible symmetric
// task: the fixed point of f(l,u) (Theorem 7). The result is a synonym of
// s with the tightest equivalent bounds. Panics on asymmetric or
// infeasible specs, for which the fixed point is not defined.
func (s Spec) Canonical() Spec {
	if !s.Feasible() {
		panic("gsb: Canonical on infeasible spec")
	}
	cur := s
	for {
		next := cur.CanonicalStep()
		if next.SameParams(cur) {
			return cur
		}
		cur = next
	}
}

// IsCanonical reports whether a feasible symmetric task is its own
// canonical representative.
func (s Spec) IsCanonical() bool {
	return s.Canonical().SameParams(s)
}

// Hardest returns the hardest task of the feasible <n,m,-,-> family
// (Theorem 5): <n, m, floor(n/m), ceil(n/m)>-GSB.
func Hardest(n, m int) Spec {
	return NewSym(n, m, vecmath.FloorDiv(n, m), vecmath.CeilDiv(n, m))
}
