package gsb

import (
	"fmt"
	"testing"
)

func TestFamilyTable1Rows(t *testing.T) {
	// Family(6,3) must produce all 15 feasible <6,3,l,u> specs with u <= 6
	// in Table 1 order (the paper's table lists 14, omitting the feasible
	// <6,3,2,6>; see EXPERIMENTS.md).
	want := []string{
		"<6,3,0,6>-GSB", "<6,3,1,6>-GSB", "<6,3,2,6>-GSB",
		"<6,3,0,5>-GSB", "<6,3,1,5>-GSB", "<6,3,2,5>-GSB",
		"<6,3,0,4>-GSB", "<6,3,1,4>-GSB", "<6,3,2,4>-GSB",
		"<6,3,0,3>-GSB", "<6,3,1,3>-GSB", "<6,3,2,3>-GSB",
		"<6,3,0,2>-GSB", "<6,3,1,2>-GSB", "<6,3,2,2>-GSB",
	}
	got := Family(6, 3)
	if len(got) != len(want) {
		t.Fatalf("Family(6,3) has %d members, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("Family(6,3)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFamilyAllFeasible(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for m := 1; m <= 5; m++ {
			members := map[string]bool{}
			for _, s := range Family(n, m) {
				if !s.Feasible() {
					t.Fatalf("Family(%d,%d) contains infeasible %v", n, m, s)
				}
				members[s.String()] = true
			}
			// Completeness: every feasible (l,u) pair with u <= n appears.
			for l := 0; l <= n; l++ {
				for u := l; u <= n; u++ {
					if l == 0 && u == 0 {
						continue
					}
					s := NewSym(n, m, l, u)
					if s.Feasible() && !members[s.String()] {
						t.Fatalf("Family(%d,%d) missing feasible %v", n, m, s)
					}
				}
			}
		}
	}
}

func TestFamilyWithMaxU(t *testing.T) {
	got := Family(6, 3, WithMaxU(3))
	want := []string{
		"<6,3,0,3>-GSB", "<6,3,1,3>-GSB", "<6,3,2,3>-GSB",
		"<6,3,0,2>-GSB", "<6,3,1,2>-GSB", "<6,3,2,2>-GSB",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSynonymClassesTable1(t *testing.T) {
	// For n=6, m=3 there are 7 distinct tasks (Table 1 / Figure 1).
	classes := SynonymClasses(Family(6, 3))
	if len(classes) != 7 {
		t.Fatalf("got %d synonym classes, want 7", len(classes))
	}
	// The {[2,2,2]} class has 7 members (incl. the omitted <6,3,2,6>).
	var biggest int
	for _, c := range classes {
		if len(c) > biggest {
			biggest = len(c)
		}
		// All members of a class are mutual synonyms.
		for i := range c {
			for j := range c {
				if !c[i].Synonym(c[j]) {
					t.Fatalf("class members %v and %v not synonyms", c[i], c[j])
				}
			}
		}
	}
	if biggest != 7 {
		t.Errorf("largest synonym class has %d members, want 7", biggest)
	}
}

func TestCanonicalFamilyFigure1(t *testing.T) {
	// Figure 1: exactly seven canonical <6,3,-,-> tasks.
	want := []string{
		"<6,3,0,6>-GSB", "<6,3,0,5>-GSB", "<6,3,0,4>-GSB",
		"<6,3,1,4>-GSB", "<6,3,0,3>-GSB", // both have 3-element kernels
		"<6,3,1,3>-GSB", "<6,3,2,2>-GSB",
	}
	got := CanonicalFamily(6, 3)
	if len(got) != len(want) {
		t.Fatalf("CanonicalFamily(6,3) = %v, want 7 members", got)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("CanonicalFamily[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, s := range got {
		if !s.IsCanonical() {
			t.Errorf("%v in CanonicalFamily but not canonical", s)
		}
	}
}

func TestHasseFigure1(t *testing.T) {
	// Figure 1's edges ("A -> B" means S(B) ⊂ S(A)):
	//   <6,3,0,6> -> <6,3,0,5> -> <6,3,0,4>,
	//   <6,3,0,4> -> <6,3,1,4> and <6,3,0,4> -> <6,3,0,3>,
	//   <6,3,1,4> -> <6,3,1,3>, <6,3,0,3> -> <6,3,1,3>,
	//   <6,3,1,3> -> <6,3,2,2>.
	want := map[string]bool{
		"<6,3,0,6>-GSB-><6,3,0,5>-GSB": true,
		"<6,3,0,5>-GSB-><6,3,0,4>-GSB": true,
		"<6,3,0,4>-GSB-><6,3,1,4>-GSB": true,
		"<6,3,0,4>-GSB-><6,3,0,3>-GSB": true,
		"<6,3,1,4>-GSB-><6,3,1,3>-GSB": true,
		"<6,3,0,3>-GSB-><6,3,1,3>-GSB": true,
		"<6,3,1,3>-GSB-><6,3,2,2>-GSB": true,
	}
	edges := Hasse(CanonicalFamily(6, 3))
	if len(edges) != len(want) {
		t.Fatalf("got %d Hasse edges, want %d: %v", len(edges), len(want), edges)
	}
	for _, e := range edges {
		key := e.From.String() + "->" + e.To.String()
		if !want[key] {
			t.Errorf("unexpected Hasse edge %s", key)
		}
	}
}

func TestFigure1Incomparability(t *testing.T) {
	// Section 4.1: <6,3,1,4> and <6,3,0,3> are incomparable.
	a := NewSym(6, 3, 1, 4)
	b := NewSym(6, 3, 0, 3)
	if a.Contains(b) || b.Contains(a) {
		t.Error("<6,3,1,4> and <6,3,0,3> should be incomparable")
	}
}

func TestHasseIsTransitiveReduction(t *testing.T) {
	// Property: for every pair (i, j) with strict containment, there must
	// be a directed path in the Hasse diagram; and no edge is implied by
	// two others.
	for n := 4; n <= 8; n++ {
		for m := 2; m <= 3; m++ {
			reps := CanonicalFamily(n, m)
			edges := Hasse(reps)
			adj := map[string][]string{}
			for _, e := range edges {
				adj[e.From.String()] = append(adj[e.From.String()], e.To.String())
			}
			var reachable func(from, to string, seen map[string]bool) bool
			reachable = func(from, to string, seen map[string]bool) bool {
				if from == to {
					return true
				}
				if seen[from] {
					return false
				}
				seen[from] = true
				for _, nxt := range adj[from] {
					if reachable(nxt, to, seen) {
						return true
					}
				}
				return false
			}
			for i := range reps {
				for j := range reps {
					if i == j {
						continue
					}
					want := reps[i].StrictlyContains(reps[j])
					got := reachable(reps[i].String(), reps[j].String(), map[string]bool{})
					if want != got {
						t.Fatalf("n=%d m=%d: reachability(%v -> %v) = %v, want %v",
							n, m, reps[i], reps[j], got, want)
					}
				}
			}
		}
	}
}

func TestKernelVectorSetsDoNotAlwaysFormTasks(t *testing.T) {
	// Section 4.1 remark: the set {[5,1,0],[4,2,1]} is not the kernel set
	// of any <6,3,l,u>-GSB task.
	target := map[string]bool{"5,1,0": true, "4,2,1": true}
	for _, s := range Family(6, 3) {
		ks := s.KernelSet()
		if len(ks) != len(target) {
			continue
		}
		all := true
		for _, k := range ks {
			if !target[k.Key()] {
				all = false
				break
			}
		}
		if all {
			t.Fatalf("%v has kernel set {[5,1,0],[4,2,1]}, contradicting the paper's remark", s)
		}
	}
}

func ExampleCanonicalFamily() {
	for _, s := range CanonicalFamily(6, 3) {
		fmt.Println(s)
	}
	// Output:
	// <6,3,0,6>-GSB
	// <6,3,0,5>-GSB
	// <6,3,0,4>-GSB
	// <6,3,1,4>-GSB
	// <6,3,0,3>-GSB
	// <6,3,1,3>-GSB
	// <6,3,2,2>-GSB
}
