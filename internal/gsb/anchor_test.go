package gsb

import (
	"testing"

	"repro/internal/vecmath"
)

func TestAnchoringExamplesFromPaper(t *testing.T) {
	// Section 4.2: in the <20,4,-,-> family, <20,4,4,8> is l-anchored,
	// <20,4,2,6> is u-anchored, <20,4,5,5> is (l,u)-anchored and
	// <20,4,4,6> is neither.
	tests := []struct {
		spec       Spec
		lAnchored  bool
		uAnchored  bool
		luAnchored bool
	}{
		{NewSym(20, 4, 4, 8), true, false, false},
		{NewSym(20, 4, 2, 6), false, true, false},
		{NewSym(20, 4, 5, 5), true, true, true},
		{NewSym(20, 4, 4, 6), false, false, false},
	}
	for _, tc := range tests {
		if got := tc.spec.LAnchored(); got != tc.lAnchored {
			t.Errorf("%v LAnchored = %v, want %v", tc.spec, got, tc.lAnchored)
		}
		if got := tc.spec.UAnchored(); got != tc.uAnchored {
			t.Errorf("%v UAnchored = %v, want %v", tc.spec, got, tc.uAnchored)
		}
		if got := tc.spec.LUAnchored(); got != tc.luAnchored {
			t.Errorf("%v LUAnchored = %v, want %v", tc.spec, got, tc.luAnchored)
		}
	}
}

func TestTriviallyAnchored(t *testing.T) {
	// Section 4.2: all <n,m,l,n> tasks are l-anchored and all <n,m,0,u>
	// tasks are u-anchored.
	for n := 2; n <= 8; n++ {
		for m := 1; m <= 4; m++ {
			for l := 0; l*m <= n; l++ {
				s := NewSym(n, m, l, n)
				if !s.LAnchored() {
					t.Errorf("%v should be trivially l-anchored", s)
				}
			}
			for u := vecmath.CeilDiv(n, m); u <= n; u++ {
				s := NewSym(n, m, 0, u)
				if !s.UAnchored() {
					t.Errorf("%v should be trivially u-anchored", s)
				}
			}
		}
	}
}

func TestAnchoringFormulaMatchesDefinition(t *testing.T) {
	// Theorems 3 and 4: the arithmetic characterizations must agree with
	// the synonym-based Definition 5 on every feasible task, exhaustively
	// for n <= 12.
	for n := 1; n <= 12; n++ {
		for m := 1; m <= 5; m++ {
			for _, s := range Family(n, m) {
				if def, formula := s.LAnchored(), s.LAnchoredFormula(); def != formula {
					t.Fatalf("Theorem 3 mismatch for %v: definition=%v formula=%v", s, def, formula)
				}
				if def, formula := s.UAnchored(), s.UAnchoredFormula(); def != formula {
					t.Fatalf("Theorem 4 mismatch for %v: definition=%v formula=%v", s, def, formula)
				}
			}
		}
	}
}

func TestCorollary1(t *testing.T) {
	// Corollary 1: for l <= n/m <= u, <n,m,l,max(l, n-l(m-1))> is
	// l-anchored and <n,m,max(0,n-u(m-1)),u> is u-anchored.
	for n := 1; n <= 10; n++ {
		for m := 1; m <= 4; m++ {
			for l := 0; l*m <= n; l++ {
				u := vecmath.Max(l, n-l*(m-1))
				s := NewSym(n, m, l, u)
				if s.Feasible() && !s.LAnchored() {
					t.Errorf("Corollary 1 fails: %v not l-anchored", s)
				}
			}
			for u := vecmath.CeilDiv(n, m); u <= n; u++ {
				l := vecmath.Max(0, n-u*(m-1))
				s := NewSym(n, m, l, u)
				if s.Feasible() && !s.UAnchored() {
					t.Errorf("Corollary 1 fails: %v not u-anchored", s)
				}
			}
		}
	}
}

func TestCanonicalTable1(t *testing.T) {
	// Table 1 marks exactly these seven tasks as canonical 4-tuples.
	canonical := map[string]bool{
		"<6,3,0,6>-GSB": true,
		"<6,3,0,5>-GSB": true,
		"<6,3,0,4>-GSB": true,
		"<6,3,1,4>-GSB": true,
		"<6,3,0,3>-GSB": true,
		"<6,3,1,3>-GSB": true,
		"<6,3,2,2>-GSB": true,
	}
	for _, s := range Family(6, 3) {
		if got := s.IsCanonical(); got != canonical[s.String()] {
			t.Errorf("%v IsCanonical = %v, want %v", s, got, canonical[s.String()])
		}
	}
}

func TestCanonicalExamplesFromPaper(t *testing.T) {
	// Section 4.2: <6,3,2,2> represents the four tasks with kernel {[2,2,2]}
	// listed in Table 1; <6,3,1,4> represents <6,3,1,6>, <6,3,1,5>,
	// <6,3,1,4>; <6,3,1,3> is its own representative.
	tests := []struct {
		spec Spec
		want Spec
	}{
		{NewSym(6, 3, 0, 2), NewSym(6, 3, 2, 2)},
		{NewSym(6, 3, 1, 2), NewSym(6, 3, 2, 2)},
		{NewSym(6, 3, 2, 3), NewSym(6, 3, 2, 2)},
		{NewSym(6, 3, 2, 4), NewSym(6, 3, 2, 2)},
		{NewSym(6, 3, 2, 5), NewSym(6, 3, 2, 2)},
		{NewSym(6, 3, 2, 6), NewSym(6, 3, 2, 2)},
		{NewSym(6, 3, 1, 6), NewSym(6, 3, 1, 4)},
		{NewSym(6, 3, 1, 5), NewSym(6, 3, 1, 4)},
		{NewSym(6, 3, 1, 4), NewSym(6, 3, 1, 4)},
		{NewSym(6, 3, 1, 3), NewSym(6, 3, 1, 3)},
	}
	for _, tc := range tests {
		if got := tc.spec.Canonical(); !got.SameParams(tc.want) {
			t.Errorf("%v Canonical = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestCanonicalIsSynonymAndFixedPoint(t *testing.T) {
	// Theorem 7: the canonical representative is a synonym of the task and
	// a fixed point of f; exhaustively for n <= 12.
	for n := 1; n <= 12; n++ {
		for m := 1; m <= 5; m++ {
			for _, s := range Family(n, m) {
				c := s.Canonical()
				if !c.Synonym(s) {
					t.Fatalf("%v canonical %v is not a synonym", s, c)
				}
				if !c.CanonicalStep().SameParams(c) {
					t.Fatalf("%v canonical %v is not a fixed point", s, c)
				}
				// Tightest bounds: shrinking further changes the task.
				l, u := c.SymBounds()
				if l < s.N() && m > 1 {
					if NewSym(s.N(), m, l+1, vecmath.Max(l+1, u)).Synonym(s) && l+1 <= u {
						t.Fatalf("%v canonical %v lower bound not tight", s, c)
					}
				}
				if u > l {
					if NewSym(s.N(), m, l, u-1).Feasible() && NewSym(s.N(), m, l, u-1).Synonym(s) {
						t.Fatalf("%v canonical %v upper bound not tight", s, c)
					}
				}
			}
		}
	}
}

func TestCanonicalBruteForceAgreement(t *testing.T) {
	// Two specs have the same canonical representative iff they are
	// synonyms — exhaustively within each family for n <= 10.
	for n := 2; n <= 10; n++ {
		for m := 2; m <= 4; m++ {
			family := Family(n, m)
			for i := range family {
				for j := range family {
					sameCanon := family[i].Canonical().SameParams(family[j].Canonical())
					if sameCanon != family[i].Synonym(family[j]) {
						t.Fatalf("canonical/synonym disagreement: %v vs %v", family[i], family[j])
					}
				}
			}
		}
	}
}

func TestCanonicalPanicsOnInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSym(5, 2, 0, 1).Canonical() // 2*1 < 5: infeasible
}

func TestHardestNotAlwaysAnchored(t *testing.T) {
	// Section 4.4: <10,4,2,3> is neither l- nor u-anchored, while
	// <10,5,2,2> is (l,u)-anchored.
	s := NewSym(10, 4, 2, 3)
	if s.LAnchored() || s.UAnchored() {
		t.Errorf("%v should be neither l- nor u-anchored", s)
	}
	s2 := NewSym(10, 5, 2, 2)
	if !s2.LUAnchored() {
		t.Errorf("%v should be (l,u)-anchored", s2)
	}
}
