package gsb

import (
	"sort"

	"repro/internal/vecmath"
)

// This file enumerates the <n,m,-,-> sub-family of symmetric GSB tasks and
// its structure: synonym classes, canonical representatives and the
// strict-inclusion partial order rendered in the paper's Figure 1.

// FamilyOption configures Family enumeration.
type FamilyOption func(*familyConfig)

type familyConfig struct {
	maxU int // inclusive cap on u; 0 means n
}

// WithMaxU caps the enumerated upper bounds at maxU (the paper's Table 1
// uses u <= n).
func WithMaxU(maxU int) FamilyOption {
	return func(c *familyConfig) { c.maxU = maxU }
}

// Family enumerates all feasible symmetric <n,m,l,u>-GSB specs with
// 0 <= l <= u <= n (Lemma 2: m*l <= n <= m*u), ordered as in the paper's
// Table 1: by decreasing u, then increasing l.
func Family(n, m int, opts ...FamilyOption) []Spec {
	cfg := familyConfig{maxU: n}
	for _, opt := range opts {
		opt(&cfg)
	}
	var specs []Spec
	for u := cfg.maxU; u >= 1; u-- {
		if m*u < n {
			break // smaller u is infeasible too
		}
		for l := 0; l <= u; l++ {
			if m*l > n {
				break
			}
			specs = append(specs, NewSym(n, m, l, u))
		}
	}
	return specs
}

// SynonymClasses groups specs into synonym classes (same output-vector
// set). Classes are returned in the order their first member appears in
// the input; members keep input order.
func SynonymClasses(specs []Spec) [][]Spec {
	var classes [][]Spec
	keys := make([]string, 0, len(specs))
	index := map[string]int{}
	for _, s := range specs {
		key := kernelKey(s)
		if i, ok := index[key]; ok {
			classes[i] = append(classes[i], s)
			continue
		}
		index[key] = len(classes)
		keys = append(keys, key)
		classes = append(classes, []Spec{s})
	}
	_ = keys
	return classes
}

func kernelKey(s Spec) string {
	ks := s.CountingVectors()
	key := ""
	for _, k := range ks {
		key += k.Key() + ";"
	}
	return key
}

// CanonicalFamily returns the distinct canonical representatives of the
// feasible <n,m,-,-> family, one per synonym class, ordered by decreasing
// kernel-set size then Table-1 order (matching the left-to-right layout
// of the paper's Figure 1 for n=6, m=3).
func CanonicalFamily(n, m int) []Spec {
	classes := SynonymClasses(Family(n, m))
	reps := make([]Spec, 0, len(classes))
	for _, class := range classes {
		reps = append(reps, class[0].Canonical())
	}
	sort.SliceStable(reps, func(i, j int) bool {
		ki, kj := reps[i].KernelSet(), reps[j].KernelSet()
		if len(ki) != len(kj) {
			return len(ki) > len(kj)
		}
		// Tie-break deterministically on bounds.
		li, ui := reps[i].SymBounds()
		lj, uj := reps[j].SymBounds()
		if ui != uj {
			return ui > uj
		}
		return li < lj
	})
	return reps
}

// HasseEdge is a directed edge of the strict-inclusion Hasse diagram:
// S(To) is strictly contained in S(From) with no intermediate task
// (the paper's Figure 1 draws "From -> To" for "From strictly includes
// To").
type HasseEdge struct {
	From, To Spec
}

// Hasse computes the Hasse diagram (transitive reduction of strict
// inclusion) over the given specs, which must be pairwise non-synonymous.
func Hasse(specs []Spec) []HasseEdge {
	nSpecs := len(specs)
	contains := make([][]bool, nSpecs)
	for i := range specs {
		contains[i] = make([]bool, nSpecs)
		for j := range specs {
			if i != j {
				contains[i][j] = specs[i].StrictlyContains(specs[j])
			}
		}
	}
	var edges []HasseEdge
	for i := 0; i < nSpecs; i++ {
		for j := 0; j < nSpecs; j++ {
			if !contains[i][j] {
				continue
			}
			covered := false
			for k := 0; k < nSpecs && !covered; k++ {
				if contains[i][k] && contains[k][j] {
					covered = true
				}
			}
			if !covered {
				edges = append(edges, HasseEdge{From: specs[i], To: specs[j]})
			}
		}
	}
	return edges
}

// KernelSetTotallyOrdered verifies Lemma 3 for a symmetric spec: the
// kernel set is totally ordered lexicographically. The enumeration
// already produces descending order, so this re-checks strictness.
func (s Spec) KernelSetTotallyOrdered() bool {
	ks := s.KernelSet()
	for i := 1; i < len(ks); i++ {
		if vecmath.CompareLex(ks[i-1], ks[i]) <= 0 {
			return false
		}
	}
	return true
}
