package gsb

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vecmath"
)

// randSpec draws a feasible symmetric spec with small parameters.
type randSpec struct {
	S Spec
}

// Generate implements quick.Generator.
func (randSpec) Generate(rng *rand.Rand, _ int) reflect.Value {
	for {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(6)
		l := rng.Intn(n/m + 1)
		maxU := n
		minU := vecmath.Max(l, vecmath.CeilDiv(n, m))
		if minU > maxU {
			continue
		}
		u := minU + rng.Intn(maxU-minU+1)
		return reflect.ValueOf(randSpec{S: NewSym(n, m, l, u)})
	}
}

func TestQuickCanonicalIsSynonym(t *testing.T) {
	f := func(r randSpec) bool {
		c := r.S.Canonical()
		return c.Synonym(r.S) && c.IsCanonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickKernelSetSortedAndBounded(t *testing.T) {
	f := func(r randSpec) bool {
		l, u := r.S.SymBounds()
		ks := r.S.KernelSet()
		for i, k := range ks {
			if !k.NonIncreasing() || k.Sum() != r.S.N() {
				return false
			}
			for _, x := range k {
				if x < l || x > u {
					return false
				}
			}
			if i > 0 && vecmath.CompareLex(ks[i-1], k) <= 0 {
				return false
			}
		}
		return len(ks) > 0 // feasible specs have non-empty kernel sets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickHardestContained(t *testing.T) {
	f := func(r randSpec) bool {
		return r.S.Contains(Hardest(r.S.N(), r.S.M()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAnchoringFormulas(t *testing.T) {
	f := func(r randSpec) bool {
		return r.S.LAnchored() == r.S.LAnchoredFormula() &&
			r.S.UAnchored() == r.S.UAnchoredFormula()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSynonymIsEquivalence(t *testing.T) {
	// Reflexive + symmetric on random pairs from the same family.
	f := func(r randSpec, seed int64) bool {
		family := Family(r.S.N(), r.S.M())
		rng := rand.New(rand.NewSource(seed))
		a := family[rng.Intn(len(family))]
		b := family[rng.Intn(len(family))]
		if !a.Synonym(a) {
			return false
		}
		return a.Synonym(b) == b.Synonym(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainmentPartialOrder(t *testing.T) {
	// Antisymmetry up to synonymy and transitivity on random triples.
	f := func(r randSpec, seed int64) bool {
		family := Family(r.S.N(), r.S.M())
		rng := rand.New(rand.NewSource(seed))
		a := family[rng.Intn(len(family))]
		b := family[rng.Intn(len(family))]
		c := family[rng.Intn(len(family))]
		if a.Contains(b) && b.Contains(a) && !a.Synonym(b) {
			return false
		}
		if a.Contains(b) && b.Contains(c) && !a.Contains(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickVerifyAcceptsKernelExpansion(t *testing.T) {
	// Expanding any kernel vector into an output vector must verify.
	f := func(r randSpec, seed int64) bool {
		ks := r.S.KernelSet()
		rng := rand.New(rand.NewSource(seed))
		k := ks[rng.Intn(len(ks))]
		out := make([]int, 0, r.S.N())
		for v, count := range k {
			for i := 0; i < count; i++ {
				out = append(out, v+1)
			}
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return r.S.Verify(out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
