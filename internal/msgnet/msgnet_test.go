package msgnet

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGraphConstruction(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("Degree misbehaves")
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestGraphValidation(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
		want string
	}{
		{"self loop", func() { NewGraph(2).AddEdge(1, 1) }, "self-loop"},
		{"out of range", func() { NewGraph(2).AddEdge(0, 5) }, "outside"},
		{"duplicate", func() {
			g := NewGraph(3)
			g.AddEdge(0, 1)
			g.AddEdge(0, 1)
		}, "duplicate"},
		{"n zero", func() { NewGraph(0) }, "n >= 1"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				rec := recover()
				if rec == nil || !strings.Contains(rec.(string), tc.want) {
					t.Fatalf("recover = %v, want %q", rec, tc.want)
				}
			}()
			tc.fn()
		})
	}
}

func TestRing(t *testing.T) {
	for n := 1; n <= 6; n++ {
		g := Ring(n)
		switch {
		case n == 1:
			if g.MaxDegree() != 0 {
				t.Error("Ring(1) should have no edges")
			}
		case n == 2:
			if g.Degree(0) != 1 || g.Degree(1) != 1 {
				t.Error("Ring(2) should be a single edge")
			}
		default:
			for v := 0; v < n; v++ {
				if g.Degree(v) != 2 {
					t.Errorf("Ring(%d): degree(%d) = %d", n, v, g.Degree(v))
				}
			}
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("K5 degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNP(20, 0.5, rng.Float64)
	edges := 0
	for v := 0; v < g.N; v++ {
		edges += g.Degree(v)
	}
	edges /= 2
	if edges < 50 || edges > 140 {
		t.Errorf("GNP(20, 0.5) has %d edges; suspicious", edges)
	}
	empty := GNP(10, 0, rng.Float64)
	if empty.MaxDegree() != 0 {
		t.Error("GNP(_, 0) should have no edges")
	}
}

// echoProto gathers the ids of neighbors for k rounds, then halts.
type echoProto struct {
	k     int
	heard map[int]bool
}

func (e *echoProto) Step(node Node, recv map[int]any) (map[int]any, bool) {
	for from := range recv {
		e.heard[from] = true
	}
	if node.Round >= e.k {
		return nil, true
	}
	out := map[int]any{}
	for _, nb := range node.Neighbors {
		out[nb] = node.ID
	}
	return out, false
}

func TestRunDeliversToAllNeighbors(t *testing.T) {
	g := Ring(5)
	protos := make([]Proto, g.N)
	heard := make([]map[int]bool, g.N)
	for v := range protos {
		heard[v] = map[int]bool{}
		protos[v] = &echoProto{k: 2, heard: heard[v]}
	}
	res, err := Run(g, protos, 100)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Rounds < 2 {
		t.Errorf("Rounds = %d, want >= 2", res.Rounds)
	}
	for v := 0; v < g.N; v++ {
		for _, nb := range g.Neighbors(v) {
			if !heard[v][nb] {
				t.Errorf("vertex %d never heard neighbor %d", v, nb)
			}
		}
		if len(heard[v]) != g.Degree(v) {
			t.Errorf("vertex %d heard non-neighbors: %v", v, heard[v])
		}
	}
}

func TestRunMaxRounds(t *testing.T) {
	g := Ring(3)
	protos := make([]Proto, g.N)
	for v := range protos {
		protos[v] = &echoProto{k: 1 << 30, heard: map[int]bool{}}
	}
	_, err := Run(g, protos, 5)
	if err == nil || !strings.Contains(err.Error(), "still active") {
		t.Fatalf("err = %v, want still-active error", err)
	}
}

func TestRunProtoCountMismatch(t *testing.T) {
	g := Ring(3)
	_, err := Run(g, make([]Proto, 2), 5)
	if err == nil {
		t.Fatal("expected error for wrong protocol count")
	}
}

// lateHaltProto halts at a round depending on its id, exercising partial
// activity.
type lateHaltProto struct{ until int }

func (l *lateHaltProto) Step(node Node, recv map[int]any) (map[int]any, bool) {
	if node.Round >= l.until {
		return nil, true
	}
	out := map[int]any{}
	for _, nb := range node.Neighbors {
		out[nb] = node.Round
	}
	return out, false
}

func TestRunStaggeredHalting(t *testing.T) {
	g := Complete(4)
	protos := make([]Proto, g.N)
	for v := range protos {
		protos[v] = &lateHaltProto{until: v + 1}
	}
	res, err := Run(g, protos, 100)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	// The latest process halts at round 4, so rounds 0..4 execute.
	if res.Rounds != 5 {
		t.Errorf("Rounds = %d, want 5", res.Rounds)
	}
}
