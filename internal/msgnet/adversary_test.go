package msgnet

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/stats"
)

// TestMetricNameMatchesSched pins the cross-substrate metric contract:
// the message adversary and the shared-memory crash adversaries publish
// the same counter, so one gsb_adversary_events_total totals all
// adversary-injected faults.
func TestMetricNameMatchesSched(t *testing.T) {
	if MetricAdversaryEvents != sched.MetricAdversaryEvents {
		t.Fatalf("msgnet metric %q != sched metric %q", MetricAdversaryEvents, sched.MetricAdversaryEvents)
	}
}

func TestNetAdversaryValidate(t *testing.T) {
	ok := []NetAdversary{
		{},
		{LossProb: 1, DelayProb: 1, ReorderProb: 1},
		{LossProb: 0.5},
	}
	for _, a := range ok {
		if err := a.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", a, err)
		}
	}
	bad := []NetAdversary{
		{LossProb: -0.1},
		{DelayProb: 1.5},
		{ReorderProb: math.NaN()},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%+v: invalid probabilities accepted", a)
		}
	}
}

// oneEdgeSent builds a sent matrix for a 2-vertex graph with one message
// from vertex 1 to vertex 0.
func oneEdgeSent(msg any) []map[int]any {
	return []map[int]any{{1: msg}, {}}
}

func TestNetFaultsLoss(t *testing.T) {
	reg := stats.New()
	f := newNetFaults(2, &NetAdversary{Seed: 1, LossProb: 1, Stats: reg})
	out := f.deliver(oneEdgeSent("m"))
	if len(out[0]) != 0 {
		t.Fatalf("loss=1 delivered %v", out[0])
	}
	// The message was destroyed, not queued: a later fault-free round has
	// nothing to deliver and draws no fault.
	out = f.deliver([]map[int]any{{}, {}})
	if len(out[0]) != 0 {
		t.Fatalf("destroyed message re-delivered: %v", out[0])
	}
	if got := reg.Snapshot().Counter(MetricAdversaryEvents); got != 1 {
		t.Errorf("loss events = %d, want 1", got)
	}
}

func TestNetFaultsDelayPreservesMessages(t *testing.T) {
	reg := stats.New()
	f := newNetFaults(2, &NetAdversary{Seed: 1, DelayProb: 1, Stats: reg})
	for round := 0; round < 3; round++ {
		var sent []map[int]any
		if round == 0 {
			sent = oneEdgeSent("m")
		} else {
			sent = []map[int]any{{}, {}}
		}
		if out := f.deliver(sent); len(out[0]) != 0 {
			t.Fatalf("round %d: delay=1 delivered %v", round, out[0])
		}
	}
	if got := len(f.queues[0][1]); got != 1 {
		t.Fatalf("delayed queue holds %d messages, want 1 (delay never destroys)", got)
	}
	if got := reg.Snapshot().Counter(MetricAdversaryEvents); got != 3 {
		t.Errorf("delay events = %d, want one per withheld round", got)
	}
}

func TestNetFaultsReorderDeliversNewest(t *testing.T) {
	f := newNetFaults(2, &NetAdversary{Seed: 1, ReorderProb: 1})
	f.queues[0][1] = []any{"old", "new"}
	out := f.deliver([]map[int]any{{}, {}})
	if out[0][1] != "new" {
		t.Fatalf("reorder=1 delivered %v, want the newest", out[0][1])
	}
	if len(f.queues[0][1]) != 1 || f.queues[0][1][0] != "old" {
		t.Fatalf("queue after reorder = %v, want [old]", f.queues[0][1])
	}
	// A single-message queue has nothing to overtake: delivered in order.
	out = f.deliver([]map[int]any{{}, {}})
	if out[0][1] != "old" {
		t.Fatalf("singleton queue delivered %v, want old", out[0][1])
	}
}

// TestNetFaultsDeterministic: the fault stream is a pure function of the
// seed — two adversaries with the same seed transform identical send
// sequences identically.
func TestNetFaultsDeterministic(t *testing.T) {
	mk := func() *netFaults {
		return newNetFaults(3, &NetAdversary{Seed: 42, LossProb: 0.3, DelayProb: 0.3, ReorderProb: 0.3})
	}
	a, b := mk(), mk()
	for round := 0; round < 50; round++ {
		sent := make([]map[int]any, 3)
		for to := range sent {
			sent[to] = map[int]any{}
			for from := range sent {
				if from != to {
					sent[to][from] = [2]int{from, round}
				}
			}
		}
		outA, outB := a.deliver(sent), b.deliver(sent)
		if !reflect.DeepEqual(outA, outB) {
			t.Fatalf("round %d: same seed diverged:\n%v\n%v", round, outA, outB)
		}
	}
}

// flood is a trivial protocol: send the round number to every neighbor
// for k rounds, then halt. It tolerates missing messages, so it runs on
// the raw adversarial substrate without a synchronizer.
type flood struct{ k int }

func (f *flood) Step(node Node, recv map[int]any) (map[int]any, bool) {
	send := map[int]any{}
	for _, nb := range node.Neighbors {
		send[nb] = node.Round
	}
	return send, node.Round >= f.k-1
}

// TestRunAdversarialNilAndZero: a nil adversary is the reliable Run, and
// a zero-probability adversary behaves identically.
func TestRunAdversarialNilAndZero(t *testing.T) {
	g := Complete(4)
	mk := func() []Proto {
		ps := make([]Proto, g.N)
		for v := range ps {
			ps[v] = &flood{k: 5}
		}
		return ps
	}
	ref, err := Run(g, mk(), 100)
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := RunAdversarial(g, mk(), 100, nil)
	if err != nil || viaNil.Rounds != ref.Rounds {
		t.Errorf("nil adversary: (%+v, %v), want %+v", viaNil, err, ref)
	}
	viaZero, err := RunAdversarial(g, mk(), 100, &NetAdversary{Seed: 9})
	if err != nil || viaZero.Rounds != ref.Rounds {
		t.Errorf("zero adversary: (%+v, %v), want %+v", viaZero, err, ref)
	}
}

func TestRunAdversarialRejectsInvalid(t *testing.T) {
	g := Ring(3)
	ps := []Proto{&flood{k: 1}, &flood{k: 1}, &flood{k: 1}}
	if _, err := RunAdversarial(g, ps, 10, &NetAdversary{LossProb: 2}); err == nil {
		t.Fatal("invalid adversary accepted")
	}
}

// TestSynchronizeRepairsLoss: a protocol that panics on a missing message
// (strict lockstep, like Cole-Vishkin) survives heavy faults when wrapped
// with Synchronize, and the execution is deterministic per seed.
func TestSynchronizeRepairsLoss(t *testing.T) {
	g := Ring(5)
	adv := func() *NetAdversary {
		return &NetAdversary{Seed: 13, LossProb: 0.3, DelayProb: 0.2, ReorderProb: 0.2}
	}
	mk := func() ([]Proto, []int) {
		heard := make([]int, g.N)
		ps := make([]Proto, g.N)
		for v := range ps {
			ps[v] = &strictCounter{k: 4, heard: &heard[v]}
		}
		return ps, heard
	}

	ps, heard := mk()
	res, err := RunAdversarial(g, Synchronize(ps, 8), 5000, adv())
	if err != nil {
		t.Fatal(err)
	}
	for v, h := range heard {
		// 4 inner rounds, 2 neighbors, messages from rounds 0..2 arrive in
		// rounds 1..3: every strict message must have been repaired.
		if h != 6 {
			t.Errorf("vertex %d heard %d messages, want 6", v, h)
		}
	}

	ps2, _ := mk()
	res2, err := RunAdversarial(g, Synchronize(ps2, 8), 5000, adv())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds != res.Rounds {
		t.Errorf("same seed: %d rounds vs %d — adversarial executions must be deterministic", res2.Rounds, res.Rounds)
	}
}

// strictCounter requires, after round 0, a message from every neighbor
// each round (panicking otherwise, like cvProto) and counts them.
type strictCounter struct {
	k     int
	heard *int
}

func (s *strictCounter) Step(node Node, recv map[int]any) (map[int]any, bool) {
	if node.Round > 0 {
		for _, nb := range node.Neighbors {
			if _, ok := recv[nb]; !ok {
				panic("strictCounter: missing neighbor message")
			}
			*s.heard++
		}
	}
	send := map[int]any{}
	for _, nb := range node.Neighbors {
		send[nb] = node.Round
	}
	return send, node.Round >= s.k-1
}
