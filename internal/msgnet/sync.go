package msgnet

// This file is the synchronizer: a per-vertex wrapper that simulates the
// reliable lockstep substrate on top of an adversarial one, so protocols
// written for Run (which assume every message arrives exactly one round
// after it was sent — cvProto panics otherwise) also execute under
// RunAdversarial. Each wrapper tracks a simulated inner round, buffers the
// inner protocol's sends, and exchanges envelopes carrying (a) every
// not-yet-acknowledged inner payload, (b) a cumulative ack of the rounds
// it has fully received, and (c) progress/halt flags. Loss is repaired by
// retransmitting the unacked window every real round; delay and reorder
// are absorbed by the per-round buffers. An inner round executes only
// when the sends of every neighbor's previous inner round are known
// (either received, or implied by the neighbor having halted earlier),
// so the inner protocol observes exactly the reliable-substrate
// semantics — neighbors' simulated clocks may drift, but each vertex's
// view is indistinguishable from a fault-free execution.
//
// Termination is probabilistic under message loss: a wrapper halts only
// after its inner protocol halted, every neighbor holds all of its
// payloads, and a grace period of further envelope rounds has passed to
// settle the neighbors' final acknowledgments. With a fixed adversary
// seed the execution is deterministic, so a passing (seed, grace,
// maxRounds) configuration always passes.

// syncPayload is one inner-round send inside an envelope: Has is false
// when the inner protocol sent nothing to this neighbor that round
// (silence is information too — the receiver must know the round is
// complete to advance past it).
type syncPayload struct {
	Has bool
	Msg any
}

// syncEnv is the synchronizer's wire format: the sender's progress, its
// cumulative ack of the receiver's rounds, and the receiver-bound inner
// payloads for rounds [From, From+len(Msgs)).
type syncEnv struct {
	Exec   int // inner rounds the sender has executed
	Halted bool
	Ack    int // sender knows the receiver's inner sends for all rounds < Ack
	From   int
	Msgs   []syncPayload
}

// nbState is what a wrapper knows about one neighbor.
type nbState struct {
	exec   int  // inner rounds the neighbor reported executing
	halted bool // neighbor's inner protocol halted (after exec rounds)
	ack    int  // neighbor's cumulative ack of our sends
	known  []bool
	msgs   []syncPayload
	prefix int // contiguous-known prefix: rounds < prefix all recorded
}

func (st *nbState) record(s int, p syncPayload) {
	for len(st.known) <= s {
		st.known = append(st.known, false)
		st.msgs = append(st.msgs, syncPayload{})
	}
	st.known[s] = true
	st.msgs[s] = p
}

// knows reports whether the neighbor's inner round-s send is settled:
// recorded, or implied absent because the neighbor halted before s.
func (st *nbState) knows(s int) bool {
	if s < len(st.known) && st.known[s] {
		return true
	}
	return st.halted && st.exec <= s
}

// ackRound returns (and caches) the contiguous-known prefix.
func (st *nbState) ackRound() int {
	for st.prefix < len(st.known) && st.known[st.prefix] {
		st.prefix++
	}
	return st.prefix
}

// syncProto wraps one inner protocol (see the file comment).
type syncProto struct {
	inner Proto
	grace int

	sim       int // inner rounds executed
	innerDone bool
	sent      []map[int]any // sent[s]: the inner round-s sends, kept for retransmission
	nb        map[int]*nbState
	settled   int // consecutive rounds the halt condition has held
}

// Synchronize wraps each protocol for execution under a message
// adversary (RunAdversarial). grace is the number of extra envelope
// rounds a wrapper lingers after everything is settled, so neighbors can
// collect its final acknowledgments; a handful suffices for moderate
// fault rates. The wrapped protocols simulate more slowly (one inner
// round needs at least one fault-free exchange), so callers should scale
// maxRounds accordingly.
func Synchronize(protos []Proto, grace int) []Proto {
	if grace < 0 {
		grace = 0
	}
	out := make([]Proto, len(protos))
	for i, p := range protos {
		out[i] = &syncProto{inner: p, grace: grace}
	}
	return out
}

func (w *syncProto) Step(node Node, recv map[int]any) (map[int]any, bool) {
	if w.nb == nil {
		w.nb = make(map[int]*nbState, len(node.Neighbors))
		for _, n := range node.Neighbors {
			w.nb[n] = &nbState{}
		}
	}
	// Absorb envelopes in sorted neighbor order (never map order), so the
	// wrapper's behavior is a pure function of what arrived.
	for _, from := range node.Neighbors {
		raw, ok := recv[from]
		if !ok {
			continue
		}
		env := raw.(syncEnv)
		st := w.nb[from]
		if env.Exec > st.exec {
			st.exec = env.Exec
		}
		if env.Halted {
			st.halted = true
		}
		if env.Ack > st.ack {
			st.ack = env.Ack
		}
		for i, p := range env.Msgs {
			st.record(env.From+i, p)
		}
	}

	// Advance the inner protocol as far as the received rounds allow
	// (possibly several inner rounds, when delayed envelopes arrive in a
	// burst; the unacked-window retransmission keeps skipped-over rounds
	// recoverable by slower neighbors).
	for !w.innerDone && w.canExec(node) {
		var innerRecv map[int]any
		if w.sim > 0 {
			innerRecv = map[int]any{}
			for _, n := range node.Neighbors {
				st := w.nb[n]
				if s := w.sim - 1; s < len(st.known) && st.known[s] && st.msgs[s].Has {
					innerRecv[n] = st.msgs[s].Msg
				}
			}
		}
		send, done := w.inner.Step(Node{ID: node.ID, Neighbors: node.Neighbors, Round: w.sim}, innerRecv)
		w.sent = append(w.sent, send)
		w.sim++
		if done {
			w.innerDone = true
		}
	}

	// Envelope per neighbor: the full unacked window of inner payloads.
	out := make(map[int]any, len(node.Neighbors))
	for _, n := range node.Neighbors {
		st := w.nb[n]
		from := st.ack
		if from > w.sim {
			from = w.sim
		}
		var msgs []syncPayload
		for s := from; s < w.sim; s++ {
			m, has := w.sent[s][n]
			msgs = append(msgs, syncPayload{Has: has, Msg: m})
		}
		out[n] = syncEnv{Exec: w.sim, Halted: w.innerDone, Ack: st.ackRound(), From: from, Msgs: msgs}
	}

	// Halt once the inner protocol is done, every neighbor holds all our
	// payloads, we hold all theirs, and the grace period has run down
	// (the linger rounds keep broadcasting the final acks above).
	if w.innerDone && w.allSettled(node) {
		w.settled++
		if w.settled > w.grace {
			return out, true
		}
	}
	return out, false
}

// canExec reports whether inner round w.sim can execute: every
// neighbor's round w.sim-1 send is settled (round 0 needs nothing).
func (w *syncProto) canExec(node Node) bool {
	if w.sim == 0 {
		return true
	}
	for _, n := range node.Neighbors {
		if !w.nb[n].knows(w.sim - 1) {
			return false
		}
	}
	return true
}

func (w *syncProto) allSettled(node Node) bool {
	for _, n := range node.Neighbors {
		st := w.nb[n]
		if !st.halted || st.ack < w.sim || st.ackRound() < st.exec {
			return false
		}
	}
	return true
}
