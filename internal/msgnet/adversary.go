package msgnet

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
)

// This file is the message adversary: a seeded fault injector between the
// senders and the mailboxes of Run. Faults are drawn once per directed
// edge per round, single-threaded, in ascending (to, from) order, so an
// adversarial execution is a pure function of (graph, protocols, seed) —
// the same determinism contract the shared-memory engine's crash
// adversaries obey (docs/models.md).

// MetricAdversaryEvents is the adversary-events counter name. It is the
// same metric the shared-memory crash adversaries publish
// (sched.MetricAdversaryEvents; a test pins the equality), so one counter
// totals all adversary-injected faults regardless of substrate.
const MetricAdversaryEvents = "gsb_adversary_events_total"

// NetAdversary drops, delays and reorders messages between synchronous
// rounds. Each directed edge has a FIFO queue of undelivered messages;
// once per round per non-empty queue the adversary draws, in order:
// with probability LossProb the oldest message is destroyed; otherwise
// with probability DelayProb nothing is delivered this round; otherwise
// one message is delivered — the newest instead of the oldest with
// probability ReorderProb (when the queue holds more than one).
// Delay and reorder preserve messages; only loss destroys them.
//
// The zero value injects no faults. Protocols written for the fault-free
// substrate generally assume every message arrives on time (cvProto
// panics otherwise); wrap them with Synchronize to run them under an
// adversary.
type NetAdversary struct {
	// Seed seeds the fault stream; executions are reproducible per seed.
	Seed int64
	// LossProb, DelayProb and ReorderProb are fault probabilities in
	// [0, 1]; Validate rejects anything else.
	LossProb    float64
	DelayProb   float64
	ReorderProb float64
	// Stats, when non-nil, receives MetricAdversaryEvents increments
	// (one per loss, delay or reorder).
	Stats *stats.Registry
}

// Validate reports whether the fault probabilities are well-formed.
func (a *NetAdversary) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"loss", a.LossProb}, {"delay", a.DelayProb}, {"reorder", a.ReorderProb}} {
		if !(p.v >= 0 && p.v <= 1) { // negated to catch NaN
			return fmt.Errorf("msgnet: %s probability %v outside [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// netFaults is the per-execution adversary state: one queue per directed
// edge and one seeded generator, applied single-threaded between rounds.
type netFaults struct {
	queues [][][]any // queues[to][from]
	rng    *rand.Rand
	adv    *NetAdversary
	events *stats.Counter
}

func newNetFaults(n int, adv *NetAdversary) *netFaults {
	queues := make([][][]any, n)
	for to := range queues {
		queues[to] = make([][]any, n)
	}
	f := &netFaults{
		queues: queues,
		rng:    rand.New(rand.NewSource(adv.Seed)),
		adv:    adv,
	}
	if adv.Stats != nil {
		f.events = adv.Stats.Counter(MetricAdversaryEvents,
			"Adversary-injected fault events: crashes (crash adversaries) and message drops/delays/reorders (message adversary).")
	}
	return f
}

//gsb:hotpath
func (f *netFaults) event() {
	if f.events != nil {
		f.events.Inc()
	}
}

// deliver moves this round's sends through the fault queues into the
// mailboxes for the next round. sent[to] maps sender to message; the
// result has the same shape. Iteration is by ascending (to, from) index —
// never map order — so the generator's draw sequence is deterministic.
func (f *netFaults) deliver(sent []map[int]any) []map[int]any {
	n := len(sent)
	out := make([]map[int]any, n)
	for to := 0; to < n; to++ {
		out[to] = map[int]any{}
		for from := 0; from < n; from++ {
			if msg, ok := sent[to][from]; ok {
				f.queues[to][from] = append(f.queues[to][from], msg)
			}
			q := f.queues[to][from]
			if len(q) == 0 {
				continue
			}
			switch {
			case f.rng.Float64() < f.adv.LossProb:
				f.queues[to][from] = q[1:] // destroy the oldest
				f.event()
			case f.rng.Float64() < f.adv.DelayProb:
				f.event() // deliver nothing this round
			default:
				i := 0
				if len(q) > 1 && f.rng.Float64() < f.adv.ReorderProb {
					i = len(q) - 1 // newest overtakes
					f.event()
				}
				out[to][from] = q[i]
				f.queues[to][from] = append(q[:i:i], q[i+1:]...)
			}
		}
	}
	return out
}

// RunAdversarial executes the protocol like Run, with adv injecting
// message faults between rounds. A nil adversary is the fault-free Run.
func RunAdversarial(g *Graph, protos []Proto, maxRounds int, adv *NetAdversary) (*Result, error) {
	if adv == nil {
		return Run(g, protos, maxRounds)
	}
	if err := adv.Validate(); err != nil {
		return nil, err
	}
	return run(g, protos, maxRounds, newNetFaults(g.N, adv))
}
