// Package msgnet provides a synchronous message-passing substrate: n
// processes on the vertices of an undirected graph proceed in lockstep
// rounds, each round sending one message per incident edge and receiving
// the messages of its neighbors. Goroutines map one-to-one onto processes
// and a barrier separates rounds.
//
// The paper situates GSB tasks against the classic distributed
// symmetry-breaking literature (leader election, renaming); this substrate
// hosts the baseline message-passing symmetry-breaking algorithms of
// package luby (maximal independent set, coloring) that the benchmarks
// compare against.
package msgnet

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an undirected graph on vertices 0..N-1.
type Graph struct {
	N   int
	adj [][]int
}

// NewGraph creates an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 1 {
		panic("msgnet: need n >= 1")
	}
	return &Graph{N: n, adj: make([][]int, n)}
}

// AddEdge inserts the undirected edge {a, b}. Self-loops and duplicate
// edges panic.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		panic(fmt.Sprintf("msgnet: self-loop at %d", a))
	}
	if a < 0 || a >= g.N || b < 0 || b >= g.N {
		panic(fmt.Sprintf("msgnet: edge (%d,%d) outside [0..%d)", a, b, g.N))
	}
	for _, x := range g.adj[a] {
		if x == b {
			panic(fmt.Sprintf("msgnet: duplicate edge (%d,%d)", a, b))
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	out := append([]int(nil), g.adj[v]...)
	sort.Ints(out)
	return out
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree of the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Ring returns the n-cycle (or a single edge for n=2, a vertex for n=1).
func Ring(n int) *Graph {
	g := NewGraph(n)
	if n == 2 {
		g.AddEdge(0, 1)
		return g
	}
	for v := 0; n >= 3 && v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := NewGraph(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			g.AddEdge(a, b)
		}
	}
	return g
}

// GNP returns an Erdos-Renyi random graph: each edge present with
// probability p, decided by the caller-provided coin (seeded upstream).
func GNP(n int, p float64, coin func() float64) *Graph {
	g := NewGraph(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if coin() < p {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

// Node is the per-process handle available during a round.
type Node struct {
	ID        int   // vertex id (also the process identity here)
	Neighbors []int // sorted neighbor ids
	Round     int   // current round number, starting at 0
}

// Proto is a synchronous-rounds protocol: at each round every active
// process computes the messages to send (one per neighbor, keyed by
// neighbor id) from its state and the messages received in the previous
// round (nil in round 0); it returns done=true when it has halted.
// Messages must be treated as immutable after sending.
type Proto interface {
	// Step runs one round. recv maps neighbor id to its message from the
	// previous round (only neighbors that sent are present). It returns
	// the messages to send this round and whether the process halts after
	// sending them.
	Step(node Node, recv map[int]any) (send map[int]any, done bool)
}

// Result reports a protocol execution.
type Result struct {
	Rounds int // rounds executed until all processes halted
}

// Run executes the protocol on the graph until every process has halted
// or maxRounds is reached (returning an error in the latter case).
// Each process runs in its own goroutine; rounds are separated by a
// barrier, and message delivery is synchronous and reliable (see
// RunAdversarial for execution under message faults).
func Run(g *Graph, protos []Proto, maxRounds int) (*Result, error) {
	return run(g, protos, maxRounds, nil)
}

// run is the shared round loop: faults == nil is the reliable substrate,
// otherwise every round's sends pass through the adversary's queues.
func run(g *Graph, protos []Proto, maxRounds int, faults *netFaults) (*Result, error) {
	if len(protos) != g.N {
		return nil, fmt.Errorf("msgnet: %d protocols for %d vertices", len(protos), g.N)
	}
	type mailbox struct {
		mu   sync.Mutex
		msgs map[int]any
	}
	curr := make([]mailbox, g.N) // messages delivered this round
	next := make([]mailbox, g.N) // messages being sent for next round
	for v := range curr {
		curr[v].msgs = map[int]any{}
		next[v].msgs = map[int]any{}
	}

	active := make([]bool, g.N)
	for v := range active {
		active[v] = true
	}

	round := 0
	for ; round < maxRounds; round++ {
		anyActive := false
		var wg sync.WaitGroup
		var mu sync.Mutex
		halted := make([]bool, g.N)
		for v := 0; v < g.N; v++ {
			if !active[v] {
				continue
			}
			anyActive = true
			wg.Add(1)
			go func(v int) {
				defer wg.Done()
				node := Node{ID: v, Neighbors: g.Neighbors(v), Round: round}
				send, done := protos[v].Step(node, curr[v].msgs)
				for to, msg := range send {
					next[to].mu.Lock()
					next[to].msgs[v] = msg
					next[to].mu.Unlock()
				}
				if done {
					mu.Lock()
					halted[v] = true
					mu.Unlock()
				}
			}(v)
		}
		if !anyActive {
			break
		}
		wg.Wait()
		for v := range halted {
			if halted[v] {
				active[v] = false
			}
		}
		// Rotate mailboxes, routing this round's sends through the
		// adversary's fault queues when one is attached.
		if faults != nil {
			sent := make([]map[int]any, g.N)
			for v := range next {
				sent[v] = next[v].msgs
			}
			delivered := faults.deliver(sent)
			for v := range curr {
				curr[v].msgs = delivered[v]
				next[v].msgs = map[int]any{}
			}
		} else {
			for v := range curr {
				curr[v].msgs = next[v].msgs
				next[v].msgs = map[int]any{}
			}
		}
	}
	for v := range active {
		if active[v] {
			return nil, fmt.Errorf("msgnet: process %d still active after %d rounds", v, maxRounds)
		}
	}
	return &Result{Rounds: round}, nil
}
