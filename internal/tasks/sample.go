package tasks

import (
	"context"

	"repro/internal/gsb"
	"repro/internal/sample"
	"repro/internal/sched"
)

// SampleVerified statistically samples a protocol against its task
// specification: it executes opts.SampleRuns failure-free schedules drawn
// by the opts.SampleMode sampler (uniform random walk, or PCT with the
// opts.Depth bug-depth knob) on the seeded-run worker pool, verifies each
// run's outputs against spec, and reports distinct-trace-class coverage.
// This is the mode for instances whose schedule tree is beyond even the
// partial-order-reduced exhaustive walk: no enumeration guarantee, but a
// measured fraction of the schedule space and, with PCT, the per-run
// 1/(n*k^(Depth-1)) bug-detection guarantee.
//
// The batch is deterministic given opts.Seed (same schedules at any
// worker count); a violation reports the smallest failing run index with
// a derived seed that replays it. build is called once per run and must
// allocate fresh shared objects, exactly as for ExploreVerified.
func SampleVerified(ctx context.Context, spec gsb.Spec, ids []int, opts sched.ExploreOptions, build func(n int) Solver) (sample.Report, error) {
	n := spec.N()
	return sample.Explore(ctx, n, ids, opts,
		func() sched.Body { return Body(build(n)) },
		func(res *sched.Result) error { return verifyResult(spec, res) })
}
