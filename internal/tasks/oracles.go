package tasks

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sched"
)

// This file implements perfect renaming — the <n,n,1,1>-GSB task that
// Theorem 8 proves universal — in enriched models ASM_{n,n-1}[T]:
// from a fetch&increment object and from a row of test-and-set objects.
// Perfect renaming is not wait-free solvable from registers alone
// (Corollary 5), so some oracle object is necessary.

// FetchIncRenaming solves perfect renaming in ASM[fetch&inc]: the k-th
// invoker gets name k.
type FetchIncRenaming struct {
	counter *mem.FetchInc
	n       int
}

// NewFetchIncRenaming allocates the protocol for n processes.
func NewFetchIncRenaming(name string, n int) *FetchIncRenaming {
	return &FetchIncRenaming{counter: mem.NewFetchInc(name), n: n}
}

// Solve implements Solver; the identity is unused (the object itself
// breaks the symmetry).
func (f *FetchIncRenaming) Solve(p *sched.Proc, _ int) int {
	name := f.counter.FetchInc(p) + 1
	if name > f.n {
		panic(fmt.Sprintf("tasks: fetch&inc issued name %d beyond n=%d", name, f.n))
	}
	return name
}

// TASRenaming solves perfect renaming in ASM[test&set]: a row of n
// one-shot test-and-set objects; a process claims the first object it
// wins. A process loses object k only to the unique winner of k, and
// there are at most n-1 other processes, so everyone wins some object in
// [1..n].
type TASRenaming struct {
	row []*mem.TAS
}

// NewTASRenaming allocates the row of n test-and-set objects.
func NewTASRenaming(name string, n int) *TASRenaming {
	row := make([]*mem.TAS, n)
	for k := range row {
		row[k] = mem.NewTAS(fmt.Sprintf("%s[%d]", name, k+1))
	}
	return &TASRenaming{row: row}
}

// Solve implements Solver.
func (t *TASRenaming) Solve(p *sched.Proc, _ int) int {
	for k, tas := range t.row {
		if tas.TestAndSet(p) {
			return k + 1
		}
	}
	panic("tasks: process lost all n test-and-set objects; impossible with n processes")
}

// BoxSolver adapts a GSB task box oracle to the Solver interface.
type BoxSolver struct {
	box *mem.TaskBox
}

// NewBoxSolver wraps an oracle box.
func NewBoxSolver(box *mem.TaskBox) *BoxSolver { return &BoxSolver{box: box} }

// Solve implements Solver.
func (b *BoxSolver) Solve(p *sched.Proc, _ int) int { return b.box.Invoke(p) }

// ElectionFromPerfectRenaming solves the election asymmetric GSB task
// (exactly one process decides 1, the rest decide 2) from any perfect
// renaming solver: the process named 1 is the leader. This is the
// universality construction of Theorem 8 specialized to election.
type ElectionFromPerfectRenaming struct {
	renamer Solver
}

// NewElectionFromPerfectRenaming wraps a perfect renaming solver.
func NewElectionFromPerfectRenaming(renamer Solver) *ElectionFromPerfectRenaming {
	return &ElectionFromPerfectRenaming{renamer: renamer}
}

// Solve implements Solver.
func (e *ElectionFromPerfectRenaming) Solve(p *sched.Proc, id int) int {
	if e.renamer.Solve(p, id) == 1 {
		return 1
	}
	return 2
}
