package tasks

import (
	"strings"
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/sched"
)

func buildSlotRenaming(seed int64) func(n int) Solver {
	return func(n int) Solver {
		return NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, seed))
	}
}

func TestSlotRenamingSolvesNPlus1Renaming(t *testing.T) {
	// Theorem 12: the Figure 2 algorithm solves (n+1)-renaming, i.e. the
	// <n,n+1,0,1>-GSB task, from any (n-1)-slot object.
	for n := 2; n <= 8; n++ {
		spec := gsb.Renaming(n, n+1)
		for seed := int64(0); seed < 30; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				buildSlotRenaming(seed))
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestSlotRenamingAdversarialSchedules(t *testing.T) {
	// Sequential, reverse-sequential and lockstep schedules for n=5.
	n := 5
	spec := gsb.Renaming(n, n+1)
	mkSeq := func(order []int) sched.Policy {
		var script []sched.Decision
		for _, i := range order {
			for k := 0; k < 64; k++ {
				script = append(script, sched.Decision{Proc: i})
			}
		}
		return sched.NewScript(script)
	}
	policies := map[string]func() sched.Policy{
		"sequential":  func() sched.Policy { return mkSeq([]int{0, 1, 2, 3, 4}) },
		"reverse":     func() sched.Policy { return mkSeq([]int{4, 3, 2, 1, 0}) },
		"round robin": func() sched.Policy { return sched.NewRoundRobin() },
	}
	for name, mk := range policies {
		for seed := int64(0); seed < 10; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), mk(), buildSlotRenaming(seed))
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
		}
	}
}

func TestSlotRenamingWithCrashes(t *testing.T) {
	n := 6
	spec := gsb.Renaming(n, n+1)
	for seed := int64(0); seed < 40; seed++ {
		_, err := RunVerified(spec, sched.DefaultIDs(n),
			sched.NewRandomCrash(seed, 0.04, n-1), buildSlotRenaming(seed))
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestSlotRenamingSparseIDs(t *testing.T) {
	// The conflict resolution orders by identity values; any distinct ids
	// must work.
	ids := []int{1000, 5, 62, 9, 77}
	spec := gsb.Renaming(5, 6)
	for seed := int64(0); seed < 20; seed++ {
		_, err := RunVerified(spec, ids, sched.NewRandom(seed), buildSlotRenaming(seed))
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestSlotRenamingConflictResolution(t *testing.T) {
	// Drive the exact scenario of the Theorem 12 proof: both rivals see
	// each other and must take names n and n+1 ordered by identity.
	// With a lockstep schedule, both conflicting processes snapshot after
	// both writes.
	n := 3
	// Find a seed whose slot box gives processes 0 and 1 the same slot.
	for seed := int64(0); seed < 200; seed++ {
		box := mem.SlotBox("KS", n, n-1, seed)
		// Peek at the assignment by simulating invocation order 0,1,2 with
		// a sequential schedule; slots are handed out in invocation order.
		sr := NewSlotRenaming("F2", n, box)
		var script []sched.Decision
		for round := 0; round < 16; round++ {
			for i := 0; i < n; i++ {
				script = append(script, sched.Decision{Proc: i})
			}
		}
		res, err := Run(n, sched.DefaultIDs(n), sched.NewScript(script),
			func(int) Solver { return sr })
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		out, err := res.DecidedVector()
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := gsb.Renaming(n, n+1).Verify(out); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		// Under lockstep both rivals see each other, so whenever names n
		// and n+1 are both used, the smaller-id rival holds n.
		holderN, holderN1 := -1, -1
		for i, v := range out {
			if v == n {
				holderN = i
			}
			if v == n+1 {
				holderN1 = i
			}
		}
		if holderN != -1 && holderN1 != -1 && holderN > holderN1 {
			t.Fatalf("seed=%d: rivals misordered: outputs %v (ids are 1..n)", seed, out)
		}
	}
}

func TestSlotRenamingValidatesKSObject(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
		want string
	}{
		{"wrong k", func() {
			NewSlotRenaming("F2", 5, mem.SlotBox("KS", 5, 3, 1))
		}, "want the (n-1)-slot task"},
		{"wrong n", func() {
			NewSlotRenaming("F2", 5, mem.SlotBox("KS", 4, 3, 1))
		}, "want the (n-1)-slot task"},
		{"n too small", func() {
			NewSlotRenaming("F2", 1, mem.SlotBox("KS", 1, 1, 1))
		}, "n >= 2"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				rec := recover()
				if rec == nil || !strings.Contains(rec.(string), tc.want) {
					t.Fatalf("recover = %v, want %q", rec, tc.want)
				}
			}()
			tc.fn()
		})
	}
}

func TestSlotRenamingFromUniversalSlotObject(t *testing.T) {
	// Compose Theorem 8 with Theorem 12: build the (n-1)-slot object from
	// perfect renaming (universality), then run Figure 2 on top of a
	// *protocol* (not an oracle box) — end-to-end pipeline.
	// The slot stage is provided by a TaskBox here because SlotRenaming
	// takes the KS object; the pipeline with a protocol-based slot stage
	// is exercised in the universal package tests.
	n := 6
	spec := gsb.Renaming(n, n+1)
	for seed := int64(0); seed < 10; seed++ {
		_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
			buildSlotRenaming(seed))
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}
