package tasks

import (
	"testing"

	"repro/internal/gsb"
	"repro/internal/sched"
)

func TestSnapshotRenamingSolves2NMinus1Renaming(t *testing.T) {
	// Full participation: distinct names in [1..2n-1] (the <n,2n-1,0,1>-GSB
	// task), across sizes and schedules.
	for n := 1; n <= 6; n++ {
		spec := gsb.Renaming(n, 2*n-1)
		for seed := int64(0); seed < 25; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver { return NewSnapshotRenaming("R", n) })
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestSnapshotRenamingWithSparseIDs(t *testing.T) {
	// Identities from a larger space [1..N]; names must still land in
	// [1..2n-1] (the protocol is comparison-based, not value-based).
	ids := []int{97, 3, 41, 15}
	spec := gsb.Renaming(4, 7)
	for seed := int64(0); seed < 20; seed++ {
		_, err := RunVerified(spec, ids, sched.NewRandom(seed),
			func(n int) Solver { return NewSnapshotRenaming("R", n) })
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestSnapshotRenamingAdaptive(t *testing.T) {
	// Adaptivity: with p participants (the rest crashed before any step),
	// every decided name is at most 2p-1.
	n := 6
	for p := 1; p <= n; p++ {
		for seed := int64(0); seed < 15; seed++ {
			var policy sched.Policy = sched.NewRandom(seed)
			for i := p; i < n; i++ {
				policy = &sched.CrashAt{Inner: policy, Proc: i, StepsBeforeCrash: 0}
			}
			res, err := Run(n, sched.DefaultIDs(n), policy,
				func(n int) Solver { return NewSnapshotRenaming("R", n) })
			if err != nil {
				t.Fatalf("p=%d seed=%d: %v", p, seed, err)
			}
			seen := map[int]bool{}
			for i := 0; i < p; i++ {
				if !res.Decided[i] {
					t.Fatalf("p=%d seed=%d: participant %d undecided", p, seed, i)
				}
				name := res.Outputs[i]
				if name < 1 || name > 2*p-1 {
					t.Fatalf("p=%d seed=%d: name %d outside adaptive bound [1..%d]",
						p, seed, name, 2*p-1)
				}
				if seen[name] {
					t.Fatalf("p=%d seed=%d: duplicate name %d", p, seed, name)
				}
				seen[name] = true
			}
		}
	}
}

func TestSnapshotRenamingComparisonBasedAndIndexIndependent(t *testing.T) {
	// The sched package checkers re-run a single Body, which would share
	// one shared-memory instance across runs; instead perform the checks
	// manually, allocating a fresh protocol instance per run.
	ids := []int{9, 2, 14}
	base, err := Run(3, ids, sched.NewRandom(4),
		func(n int) Solver { return NewSnapshotRenaming("R", n) })
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	// Comparison-based: replay same schedule with order-isomorphic ids.
	for _, alt := range [][]int{sched.OrderIsomorphicIDs(ids, 50), sched.OrderIsomorphicIDs(ids, 1)} {
		replay, err := Run(3, alt, sched.ScriptFromSchedule(base.Schedule),
			func(n int) Solver { return NewSnapshotRenaming("R", n) })
		if err != nil {
			t.Fatalf("replay run: %v", err)
		}
		for i := range base.Outputs {
			if base.Outputs[i] != replay.Outputs[i] {
				t.Fatalf("not comparison-based: outputs %v vs %v with ids %v",
					base.Outputs, replay.Outputs, alt)
			}
		}
	}
	// Index-independence: permute indexes, permute the schedule, compare.
	perm := []int{2, 0, 1}
	permIDs := make([]int, 3)
	for i, pi := range perm {
		permIDs[pi] = ids[i]
	}
	permuted, err := Run(3, permIDs,
		sched.NewScript(decisionsOf(sched.PermutedSchedule(base.Schedule, perm))),
		func(n int) Solver { return NewSnapshotRenaming("R", n) })
	if err != nil {
		t.Fatalf("permuted run: %v", err)
	}
	for i := range base.Outputs {
		if base.Outputs[i] != permuted.Outputs[perm[i]] {
			t.Fatalf("index dependence: %v vs %v under perm %v",
				base.Outputs, permuted.Outputs, perm)
		}
	}
}

func decisionsOf(steps []sched.Step) []sched.Decision {
	out := make([]sched.Decision, len(steps))
	for i, s := range steps {
		out[i] = sched.Decision{Proc: s.Proc, Crash: s.Crash}
	}
	return out
}

func TestGridRenamingUniqueInRange(t *testing.T) {
	for n := 1; n <= 6; n++ {
		spec := gsb.Renaming(n, n*(n+1)/2)
		for seed := int64(0); seed < 25; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver { return NewGridRenaming("G", n) })
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestGridRenamingWithCrashes(t *testing.T) {
	n := 5
	spec := gsb.Renaming(n, n*(n+1)/2)
	for seed := int64(0); seed < 25; seed++ {
		_, err := RunVerified(spec, sched.DefaultIDs(n),
			sched.NewRandomCrash(seed, 0.03, n-1),
			func(n int) Solver { return NewGridRenaming("G", n) })
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestGridNameSpace(t *testing.T) {
	if got := NewGridRenaming("G", 4).NameSpace(); got != 10 {
		t.Errorf("NameSpace = %d, want 10", got)
	}
}

func TestSplitterSolo(t *testing.T) {
	sp := NewSplitter("S")
	r := sched.NewRunner(1, []int{7}, sched.NewRoundRobin())
	_, err := r.Run(func(p *sched.Proc) {
		if d := sp.Split(p, p.ID()); d != Stop {
			t.Errorf("solo splitter returned %v, want stop", d)
		}
		p.Decide(1)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestSplitterProperties(t *testing.T) {
	// At most one process stops; if k enter, not all go right and not all
	// go down.
	for n := 2; n <= 5; n++ {
		for seed := int64(0); seed < 40; seed++ {
			sp := NewSplitter("S")
			dirs := make([]Direction, n)
			r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(seed))
			_, err := r.Run(func(p *sched.Proc) {
				d := sp.Split(p, p.ID())
				p.Exec("record", func() any { dirs[p.Index()] = d; return nil })
				p.Decide(1)
			})
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			stops, rights, downs := 0, 0, 0
			for _, d := range dirs {
				switch d {
				case Stop:
					stops++
				case Right:
					rights++
				case Down:
					downs++
				}
			}
			if stops > 1 {
				t.Fatalf("n=%d seed=%d: %d processes stopped", n, seed, stops)
			}
			if rights == n {
				t.Fatalf("n=%d seed=%d: all processes went right", n, seed)
			}
			if downs == n {
				t.Fatalf("n=%d seed=%d: all processes went down", n, seed)
			}
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Stop.String() != "stop" || Right.String() != "right" || Down.String() != "down" {
		t.Error("Direction.String misbehaves")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction renders empty")
	}
}
