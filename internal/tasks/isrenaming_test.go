package tasks

import (
	"testing"

	"repro/internal/gsb"
	"repro/internal/sched"
)

func TestISRenamingUniqueInRange(t *testing.T) {
	for n := 1; n <= 6; n++ {
		spec := gsb.Renaming(n, n*(n+1)/2)
		for seed := int64(0); seed < 25; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver { return NewISRenaming("IS", n) })
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestISRenamingAdaptive(t *testing.T) {
	// With p participants, names are bounded by p(p+1)/2, not n(n+1)/2.
	n := 6
	for p := 1; p <= n; p++ {
		for seed := int64(0); seed < 10; seed++ {
			var policy sched.Policy = sched.NewRandom(seed)
			for i := p; i < n; i++ {
				policy = &sched.CrashAt{Inner: policy, Proc: i, StepsBeforeCrash: 0}
			}
			res, err := Run(n, sched.DefaultIDs(n), policy,
				func(n int) Solver { return NewISRenaming("IS", n) })
			if err != nil {
				t.Fatalf("p=%d seed=%d: %v", p, seed, err)
			}
			seen := map[int]bool{}
			for i := 0; i < p; i++ {
				if !res.Decided[i] {
					t.Fatalf("p=%d seed=%d: participant %d undecided", p, seed, i)
				}
				name := res.Outputs[i]
				if name < 1 || name > p*(p+1)/2 {
					t.Fatalf("p=%d seed=%d: name %d outside adaptive bound [1..%d]",
						p, seed, name, p*(p+1)/2)
				}
				if seen[name] {
					t.Fatalf("p=%d seed=%d: duplicate name %d", p, seed, name)
				}
				seen[name] = true
			}
		}
	}
}

func TestISRenamingExhaustiveN3(t *testing.T) {
	// All failure-free schedules at n=3: names distinct in [1..6].
	n := 3
	spec := gsb.Renaming(n, n*(n+1)/2)
	_, err := sched.ExploreAll(n, sched.DefaultIDs(n), 500000, 10000,
		func() sched.Body { return Body(NewISRenaming("IS", n)) },
		checkAgainst(spec))
	if err != nil {
		t.Fatal(err)
	}
}

func TestISRenamingMatchesSizeRankClasses(t *testing.T) {
	// The protocol's name depends only on (view size, rank) — the
	// canonical comparison-based class of the one-round IIS vertex. Check
	// comparison-basedness by schedule replay with order-isomorphic ids.
	n := 4
	ids := []int{10, 3, 77, 42}
	base, err := Run(n, ids, sched.NewRandom(5),
		func(n int) Solver { return NewISRenaming("IS", n) })
	if err != nil {
		t.Fatal(err)
	}
	alt := sched.OrderIsomorphicIDs(ids, 1)
	replay, err := Run(n, alt, sched.ScriptFromSchedule(base.Schedule),
		func(n int) Solver { return NewISRenaming("IS", n) })
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Outputs {
		if base.Outputs[i] != replay.Outputs[i] {
			t.Fatalf("not comparison-based: %v vs %v", base.Outputs, replay.Outputs)
		}
	}
}
