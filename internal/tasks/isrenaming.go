package tasks

import (
	"sort"

	"repro/internal/iis"
	"repro/internal/sched"
)

// ISRenaming is the one-shot immediate-snapshot renaming protocol
// (Borowsky-Gafni PODC 1993 style): a process invokes one immediate
// snapshot and derives its name from the size s of its view and the rank
// r of its identity within the view:
//
//	name = s(s-1)/2 + r.
//
// The containment and immediacy properties make names unique, and with p
// participants every view has size at most p, so names lie in
// [1..p(p+1)/2] — adaptive, like the splitter grid, but in a single
// snapshot round. It is also the executable counterpart of the one-round
// positive controls of the topology package (the decision map depends
// only on (size, rank), a canonical comparison-based class).
type ISRenaming struct {
	is *iis.ImmediateSnapshot[int]
}

// NewISRenaming allocates the protocol for n processes.
func NewISRenaming(name string, n int) *ISRenaming {
	return &ISRenaming{is: iis.New[int](name, n)}
}

// Solve implements Solver.
func (r *ISRenaming) Solve(p *sched.Proc, id int) int {
	view := r.is.Invoke(p, id)
	var ids []int
	for j, present := range view.Present {
		if present {
			ids = append(ids, view.Vals[j])
		}
	}
	sort.Ints(ids)
	s := len(ids)
	rank := 0
	for k, v := range ids {
		if v == id {
			rank = k + 1
			break
		}
	}
	return s*(s-1)/2 + rank
}
