package tasks

import (
	"context"
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/sched"
)

// TestSampleVerifiedConvergesToPORClassCount is the differential
// acceptance test for the coverage metric: on the <4,2> family member
// (WSB(4) from a renaming oracle box) the sampler's distinct-trace-class
// count must converge to the exact class count established by the
// partial-order-reduced exhaustive engine — for both the uniform walk
// and PCT. The batch is seeded, so the test is deterministic.
func TestSampleVerifiedConvergesToPORClassCount(t *testing.T) {
	tc := exploreCases(t)[0] // wsb-4-2
	n := tc.spec.N()
	want, err := ExploreVerified(context.Background(), tc.spec, sched.DefaultIDs(n),
		sched.ExploreOptions{Workers: 2, Reduction: sched.ReductionSleepSets}, tc.build)
	if err != nil {
		t.Fatalf("POR ground truth: %v", err)
	}
	if want < 2 {
		t.Fatalf("only %d classes; test is vacuous", want)
	}
	for _, mode := range []sched.SampleMode{sched.SampleWalk, sched.SamplePCT} {
		rep, err := SampleVerified(context.Background(), tc.spec, sched.DefaultIDs(n),
			sched.ExploreOptions{Workers: 4, SampleRuns: 2500, SampleMode: mode, Seed: 1}, tc.build)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rep.Classes != want {
			t.Errorf("%v: sampled %d distinct classes over %d runs, POR counts %d", mode, rep.Classes, rep.Runs, want)
		}
	}
}

// TestSampleVerifiedReproducibleAcrossWorkers: the task-level entry point
// preserves the engine's determinism contract — identical reports at 1,
// 2 and 8 workers for both samplers.
func TestSampleVerifiedReproducibleAcrossWorkers(t *testing.T) {
	spec := gsb.Renaming(3, 4)
	build := func(n int) Solver {
		return NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, 1))
	}
	for _, mode := range []sched.SampleMode{sched.SampleWalk, sched.SamplePCT} {
		opts := sched.ExploreOptions{SampleRuns: 150, SampleMode: mode, Depth: 3, Seed: 4}
		opts.Workers = 1
		want, err := SampleVerified(context.Background(), spec, sched.DefaultIDs(3), opts, build)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if want.Classes < 2 {
			t.Fatalf("%v: only %d classes; test is vacuous", mode, want.Classes)
		}
		for _, workers := range []int{2, 8} {
			opts.Workers = workers
			got, err := SampleVerified(context.Background(), spec, sched.DefaultIDs(3), opts, build)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			if got != want {
				t.Errorf("%v workers=%d: report %+v, want %+v", mode, workers, got, want)
			}
		}
	}
}

// TestExploreVerifiedDispatchesSampling: ExploreOptions.SampleRuns routes
// the existing model-checking entry point to the sampling engine.
func TestExploreVerifiedDispatchesSampling(t *testing.T) {
	tc := exploreCases(t)[0]
	n := tc.spec.N()
	count, err := ExploreVerified(context.Background(), tc.spec, sched.DefaultIDs(n),
		sched.ExploreOptions{Workers: 2, SampleRuns: 80, Seed: 2}, tc.build)
	if err != nil {
		t.Fatal(err)
	}
	if count != 80 {
		t.Errorf("count = %d, want the 80 sampled runs", count)
	}
}
