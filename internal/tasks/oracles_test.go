package tasks

import (
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/sched"
)

func TestFetchIncRenamingSolvesPerfectRenaming(t *testing.T) {
	for n := 1; n <= 7; n++ {
		spec := gsb.PerfectRenaming(n)
		for seed := int64(0); seed < 15; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver { return NewFetchIncRenaming("FI", n) })
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestTASRenamingSolvesPerfectRenaming(t *testing.T) {
	for n := 1; n <= 7; n++ {
		spec := gsb.PerfectRenaming(n)
		for seed := int64(0); seed < 15; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver { return NewTASRenaming("TAS", n) })
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestTASRenamingWithCrashes(t *testing.T) {
	// Names remain distinct and in [1..n] even when processes crash
	// mid-protocol (partial vectors must be completable).
	n := 6
	spec := gsb.PerfectRenaming(n)
	for seed := int64(0); seed < 30; seed++ {
		_, err := RunVerified(spec, sched.DefaultIDs(n),
			sched.NewRandomCrash(seed, 0.05, n-1),
			func(n int) Solver { return NewTASRenaming("TAS", n) })
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestElectionFromPerfectRenaming(t *testing.T) {
	// Election (asymmetric GSB): exactly one leader.
	for n := 2; n <= 7; n++ {
		spec := gsb.Election(n)
		for seed := int64(0); seed < 15; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver {
					return NewElectionFromPerfectRenaming(NewTASRenaming("TAS", n))
				})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestElectionFromRenamingBox(t *testing.T) {
	// Same construction on top of the oracle box (adversarial perfect
	// renaming assignment).
	n := 5
	spec := gsb.Election(n)
	for seed := int64(0); seed < 20; seed++ {
		_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
			func(n int) Solver {
				box := mem.PerfectRenamingBox("PR", n, seed)
				return NewElectionFromPerfectRenaming(NewBoxSolver(box))
			})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestBoxSolverPassesThrough(t *testing.T) {
	n := 4
	box := mem.PerfectRenamingBox("PR", n, 3)
	res, err := Run(n, sched.DefaultIDs(n), sched.NewRoundRobin(),
		func(n int) Solver { return NewBoxSolver(box) })
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	out, err := res.DecidedVector()
	if err != nil {
		t.Fatal(err)
	}
	if err := gsb.PerfectRenaming(n).Verify(out); err != nil {
		t.Fatal(err)
	}
}
