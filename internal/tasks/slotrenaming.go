package tasks

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sched"
)

// SlotRenaming is the algorithm of Figure 2: it solves the
// (n+1)-renaming task (<n,n+1,0,1>-GSB) in ASM_{n,n-1}[<n,n-1,1,n>-GSB],
// i.e. wait-free shared memory enriched with an object KS solving the
// (n-1)-slot task.
//
// Each process first acquires a slot in [1..n-1] from KS. By the slot
// task's pigeonhole structure, exactly two processes share one slot and
// the other n-2 slots are exclusive. A process that sees no rival in its
// snapshot keeps its slot as its name; the two rivals order themselves by
// identity and take the reserve names n and n+1.
type SlotRenaming struct {
	n     int
	ks    *mem.TaskBox
	state *mem.Array[slotCell]
}

type slotCell struct {
	slot int
	id   int
}

// NewSlotRenaming allocates the protocol: ks must solve the (n-1)-slot
// task <n,n-1,1,n>-GSB for the same n.
func NewSlotRenaming(name string, n int, ks *mem.TaskBox) *SlotRenaming {
	if n < 2 {
		panic(fmt.Sprintf("tasks: slot renaming needs n >= 2, got %d", n))
	}
	spec := ks.Spec()
	if spec.N() != n || spec.M() != n-1 {
		panic(fmt.Sprintf("tasks: KS object solves %v, want the (n-1)-slot task for n=%d", spec, n))
	}
	return &SlotRenaming{n: n, ks: ks, state: mem.NewArray[slotCell](name, n)}
}

// Solve implements Solver, following Figure 2 line by line.
func (s *SlotRenaming) Solve(p *sched.Proc, id int) int {
	// (01) acquire a slot from the KS object.
	mySlot := s.ks.Invoke(p)
	// (02) publish (slot, id) and take an atomic snapshot.
	s.state.Write(p, slotCell{slot: mySlot, id: id})
	cells, oks := s.state.Snapshot(p)
	// (03-04) exclusive slot: keep it as the new name.
	rival := -1
	for j := range cells {
		if j != p.Index() && oks[j] && cells[j].slot == mySlot {
			rival = j
			break
		}
	}
	if rival == -1 {
		return mySlot
	}
	// (05-06) conflict: order by identity; smaller takes n, larger n+1.
	if id < cells[rival].id {
		return s.n
	}
	return s.n + 1
}
