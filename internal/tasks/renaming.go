package tasks

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sched"
)

// SnapshotRenaming is the classic snapshot-based renaming protocol of
// Attiya, Bar-Noy, Dolev, Peleg and Reischuk (JACM 1990), in its
// shared-memory snapshot formulation: a process repeatedly publishes a
// name proposal, takes a snapshot, and on conflict re-proposes the r-th
// smallest free name, where r is the rank of its identity among the
// participants it sees.
//
// The protocol is wait-free and *adaptive*: with p participants, decided
// names lie in [1..2p-1] (rank r <= p, at most p-1 names occupied by
// others, so the r-th free name is at most (p-1)+p = 2p-1). With all n
// processes participating it solves (2n-1)-renaming, i.e. the
// <n,2n-1,0,1>-GSB task; it is also the adaptive building block of the
// WSB -> (2n-2)-renaming reduction.
type SnapshotRenaming struct {
	state *mem.Array[renameCell]
}

type renameCell struct {
	id   int
	prop int // current name proposal; 0 = none yet
}

// NewSnapshotRenaming allocates the protocol's shared state for n
// processes.
func NewSnapshotRenaming(name string, n int) *SnapshotRenaming {
	return &SnapshotRenaming{state: mem.NewArray[renameCell](name, n)}
}

// Solve implements Solver. It returns a name distinct from every other
// participant's, in [1..2p-1] where p is the number of participants.
func (r *SnapshotRenaming) Solve(p *sched.Proc, id int) int {
	prop := 1
	for {
		r.state.Write(p, renameCell{id: id, prop: prop})
		cells, oks := r.state.Snapshot(p)

		conflict := false
		for j := range cells {
			if j != p.Index() && oks[j] && cells[j].prop == prop {
				conflict = true
				break
			}
		}
		if !conflict {
			return prop
		}

		// Rank of my identity among all participants seen (1-based).
		var ids []int
		taken := map[int]bool{}
		for j := range cells {
			if !oks[j] {
				continue
			}
			ids = append(ids, cells[j].id)
			if j != p.Index() && cells[j].prop > 0 {
				taken[cells[j].prop] = true
			}
		}
		sort.Ints(ids)
		rank := 0
		for k, v := range ids {
			if v == id {
				rank = k + 1
				break
			}
		}
		// r-th smallest positive integer not proposed by anyone else.
		free := 0
		for name := 1; ; name++ {
			if !taken[name] {
				free++
				if free == rank {
					prop = name
					break
				}
			}
		}
	}
}

// Direction is a splitter outcome.
type Direction int

// Splitter outcomes: at most one process stops at a splitter, and if k
// processes enter, at most k-1 go right and at most k-1 go down.
const (
	Stop Direction = iota
	Right
	Down
)

// String renders the direction.
func (d Direction) String() string {
	switch d {
	case Stop:
		return "stop"
	case Right:
		return "right"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Splitter is the Moir-Anderson wait-free splitter built from two
// multi-writer registers.
type Splitter struct {
	x *mem.Reg[int]
	y *mem.Reg[bool]
}

// NewSplitter allocates a splitter.
func NewSplitter(name string) *Splitter {
	return &Splitter{x: mem.NewReg[int](name + ".x"), y: mem.NewReg[bool](name + ".y")}
}

// Split runs the splitter for the calling process, identified by id
// (ids must be distinct and non-zero).
func (s *Splitter) Split(p *sched.Proc, id int) Direction {
	s.x.Write(p, id)
	if closed, _ := s.y.Read(p); closed {
		return Right
	}
	s.y.Write(p, true)
	if x, _ := s.x.Read(p); x == id {
		return Stop
	}
	return Down
}

// GridRenaming is the Moir-Anderson renaming grid: an (n x n) triangular
// grid of splitters. A process starts at (0,0), moves right or down per
// splitter outcome, and decides the grid position's name when it stops.
// At most n-1 moves can occur, so every process stops within the triangle
// r+c <= n-1, yielding unique names in [1..n(n+1)/2]. It is the baseline
// renaming algorithm against which the 2n-1 snapshot protocol is compared
// in the benchmarks.
type GridRenaming struct {
	n         int
	splitters map[[2]int]*Splitter
}

// NewGridRenaming allocates the triangular splitter grid for n processes.
func NewGridRenaming(name string, n int) *GridRenaming {
	g := &GridRenaming{n: n, splitters: map[[2]int]*Splitter{}}
	for r := 0; r < n; r++ {
		for c := 0; r+c < n; c++ {
			g.splitters[[2]int{r, c}] = NewSplitter(fmt.Sprintf("%s[%d,%d]", name, r, c))
		}
	}
	return g
}

// NameSpace returns the size of the grid's name space, n(n+1)/2.
func (g *GridRenaming) NameSpace() int { return g.n * (g.n + 1) / 2 }

// Solve implements Solver: it returns the diagonal index of the splitter
// at which the process stopped (names in [1..n(n+1)/2]).
func (g *GridRenaming) Solve(p *sched.Proc, id int) int {
	r, c := 0, 0
	for {
		sp, ok := g.splitters[[2]int{r, c}]
		if !ok {
			panic(fmt.Sprintf("tasks: grid walk escaped the triangle at (%d,%d): more than %d processes?", r, c, g.n))
		}
		switch sp.Split(p, id) {
		case Stop:
			d := r + c
			return d*(d+1)/2 + c + 1
		case Right:
			c++
		case Down:
			r++
		}
	}
}
