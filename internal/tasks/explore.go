package tasks

import (
	"context"
	"fmt"

	"repro/internal/gsb"
	"repro/internal/sched"
)

// ExploreVerified model-checks a protocol against its task specification:
// it runs build under every failure-free schedule (or, when
// opts.CrashRuns > 0, under a randomized crash-injection sweep; or, when
// opts.SampleRuns > 0, under a statistical sampling batch — see
// SampleVerified, to which it dispatches) using the parallel exploration
// engine, and verifies each run's outputs against spec — complete runs
// must produce a legal output vector, runs with crashes a legal
// completable prefix. It returns the number of schedules explored (for a
// sampling batch: runs executed; use SampleVerified directly for the
// coverage report).
//
// build is called once per run and must allocate fresh shared objects;
// with opts.Workers != 1 runs execute concurrently, which every protocol
// constructor in this repository supports (none share state across
// instances). A nil ctx means context.Background().
func ExploreVerified(ctx context.Context, spec gsb.Spec, ids []int, opts sched.ExploreOptions, build func(n int) Solver) (int, error) {
	if opts.SampleRuns > 0 {
		rep, err := SampleVerified(ctx, spec, ids, opts, build)
		return rep.Runs, err
	}
	n := spec.N()
	return sched.Explore(ctx, n, ids, opts,
		func() sched.Body { return Body(build(n)) },
		func(res *sched.Result) error { return verifyResult(spec, res) })
}

// VerifyResult applies the RunVerified acceptance rule to one recorded
// run: spec.Verify on the full output vector of crash-free runs,
// spec.VerifyPartial on the decided prefix otherwise. It is the per-run
// check every verification mode in this repository shares — exploration,
// sampling, crash sweeps, and the campaign subsystem's resumable forms
// of all three.
func VerifyResult(spec gsb.Spec, res *sched.Result) error { return verifyResult(spec, res) }

// verifyResult is the unexported form VerifyResult wraps.
func verifyResult(spec gsb.Spec, res *sched.Result) error {
	crashed := false
	for _, c := range res.Crashed {
		crashed = crashed || c
	}
	if !crashed {
		out, derr := res.DecidedVector()
		if derr != nil {
			return fmt.Errorf("tasks: %w", derr)
		}
		if verr := spec.Verify(out); verr != nil {
			return fmt.Errorf("tasks: output %v violates %v: %w", out, spec, verr)
		}
		return nil
	}
	if verr := spec.VerifyPartial(res.Outputs, res.Decided); verr != nil {
		return fmt.Errorf("tasks: partial outputs violate %v: %w", spec, verr)
	}
	return nil
}
