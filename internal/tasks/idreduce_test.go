package tasks

import (
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/sched"
)

func TestIDReducerTheorem1(t *testing.T) {
	// Theorem 1: a protocol for identities in [1..2n-1] solves the task
	// for identities from any larger space [1..N] after the renaming
	// stage. Run Figure 2 (whose conflict resolution compares identities)
	// behind the reducer with huge sparse identities.
	n := 5
	spec := gsb.Renaming(n, n+1)
	ids := []int{100000, 7, 999, 35000, 123}
	for seed := int64(0); seed < 25; seed++ {
		_, err := RunVerified(spec, ids, sched.NewRandom(seed),
			func(n int) Solver {
				inner := NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, seed))
				return NewIDReducer("T1", n, inner)
			})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestIDReducerIntermediateIDsInRange(t *testing.T) {
	// The intermediate identities handed to the inner protocol must be
	// distinct and within [1..2n-1].
	n := 4
	ids := []int{500, 2, 77, 31}
	for seed := int64(0); seed < 20; seed++ {
		var got []int
		_, err := Run(n, ids, sched.NewRandom(seed), func(n int) Solver {
			probe := SolverFunc(func(p *sched.Proc, id int) int {
				p.Exec("probe", func() any { got = append(got, id); return nil })
				return 1 // decide anything legal for <n,1,...>; unused
			})
			return NewIDReducer("T1", n, probe)
		})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if len(got) != n {
			t.Fatalf("seed=%d: %d intermediate ids, want %d", seed, len(got), n)
		}
		seen := map[int]bool{}
		for _, id := range got {
			if id < 1 || id > 2*n-1 {
				t.Fatalf("seed=%d: intermediate id %d outside [1..%d]", seed, id, 2*n-1)
			}
			if seen[id] {
				t.Fatalf("seed=%d: duplicate intermediate id %d", seed, id)
			}
			seen[id] = true
		}
	}
}

func TestIDReducerPreservesComparisonOrder(t *testing.T) {
	// The renaming stage is order-preserving in the following weak sense
	// required by Theorem 2: replaying the same schedule with
	// order-isomorphic identities yields identical outputs.
	n := 4
	ids := []int{40, 11, 93, 27}
	base, err := Run(n, ids, sched.NewRandom(9), func(n int) Solver {
		inner := NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, 9))
		return NewIDReducer("T2", n, inner)
	})
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	alt := sched.OrderIsomorphicIDs(ids, 1000)
	replay, err := Run(n, alt, sched.ScriptFromSchedule(base.Schedule), func(n int) Solver {
		inner := NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, 9))
		return NewIDReducer("T2", n, inner)
	})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	for i := range base.Outputs {
		if base.Outputs[i] != replay.Outputs[i] {
			t.Fatalf("outputs differ under order-isomorphic ids: %v vs %v",
				base.Outputs, replay.Outputs)
		}
	}
}
