package tasks

import (
	"fmt"
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/sched"
)

// These tests verify protocols over EVERY failure-free schedule at small
// n using the sched.ExploreAll model checker, not just sampled ones.

func checkAgainst(spec gsb.Spec) func(*sched.Result) error {
	return func(res *sched.Result) error {
		out, err := res.DecidedVector()
		if err != nil {
			return err
		}
		return spec.Verify(out)
	}
}

func TestSlotRenamingExhaustiveSchedules(t *testing.T) {
	// Theorem 12 over the complete schedule space at n=3 (each process
	// takes 4 steps: slot request, write, snapshot, decide — 34650
	// interleavings), for several slot-box assignments.
	n := 3
	spec := gsb.Renaming(n, n+1)
	for seed := int64(0); seed < 6; seed++ {
		runs, err := sched.ExploreAll(n, sched.DefaultIDs(n), 50000, 1000,
			func() sched.Body {
				return Body(NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, seed)))
			},
			checkAgainst(spec))
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if runs != 34650 { // multinomial(12; 4,4,4)
			t.Fatalf("seed=%d: explored %d schedules, want 34650", seed, runs)
		}
	}
}

func TestSlotRenamingExhaustiveN2(t *testing.T) {
	// n=2 uses the 1-slot task: both processes share slot 1 and must
	// resolve to names 2 and 3 whenever they see each other.
	n := 2
	spec := gsb.Renaming(n, n+1)
	runs, err := sched.ExploreAll(n, sched.DefaultIDs(n), 10000, 1000,
		func() sched.Body {
			return Body(NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, 1)))
		},
		checkAgainst(spec))
	if err != nil {
		t.Fatal(err)
	}
	if runs != 70 { // C(8,4)
		t.Fatalf("explored %d schedules, want 70", runs)
	}
}

func TestTASRenamingExhaustiveSchedules(t *testing.T) {
	n := 3
	spec := gsb.PerfectRenaming(n)
	runs, err := sched.ExploreAll(n, sched.DefaultIDs(n), 200000, 1000,
		func() sched.Body { return Body(NewTASRenaming("TAS", n)) },
		checkAgainst(spec))
	if err != nil {
		t.Fatal(err)
	}
	if runs < 90 {
		t.Fatalf("suspiciously few schedules: %d", runs)
	}
}

func TestElectionExhaustiveSchedules(t *testing.T) {
	n := 3
	spec := gsb.Election(n)
	_, err := sched.ExploreAll(n, sched.DefaultIDs(n), 200000, 1000,
		func() sched.Body {
			return Body(NewElectionFromPerfectRenaming(NewTASRenaming("TAS", n)))
		},
		checkAgainst(spec))
	if err != nil {
		t.Fatal(err)
	}
}

func TestWSBFromSlotExhaustiveSchedules(t *testing.T) {
	n := 3
	spec := gsb.WSB(n)
	for seed := int64(0); seed < 4; seed++ {
		_, err := sched.ExploreAll(n, sched.DefaultIDs(n), 50000, 1000,
			func() sched.Body {
				box := mem.NewTaskBox("slot", gsb.KSlot(n, 2), seed)
				return Body(NewWSBFromSlotTask(2, NewBoxSolver(box)))
			},
			checkAgainst(spec))
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestSnapshotRenamingExhaustiveN2(t *testing.T) {
	// The adaptive renaming protocol explored over every 2-process
	// schedule: names distinct and within [1..3].
	n := 2
	spec := gsb.Renaming(n, 2*n-1)
	runs, err := sched.ExploreAll(n, sched.DefaultIDs(n), 100000, 10000,
		func() sched.Body { return Body(NewSnapshotRenaming("R", n)) },
		checkAgainst(spec))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("snapshot renaming n=2: %d schedules", runs)
}

func TestGridRenamingExhaustiveN2(t *testing.T) {
	n := 2
	spec := gsb.Renaming(n, n*(n+1)/2)
	_, err := sched.ExploreAll(n, sched.DefaultIDs(n), 100000, 10000,
		func() sched.Body { return Body(NewGridRenaming("G", n)) },
		checkAgainst(spec))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRenamingFromWSBExhaustiveN2(t *testing.T) {
	n := 2
	spec := gsb.Renaming(n, 2*n-2) // = perfect renaming for n=2
	for seed := int64(0); seed < 4; seed++ {
		_, err := sched.ExploreAll(n, sched.DefaultIDs(n), 200000, 10000,
			func() sched.Body {
				return Body(NewRenamingFromWSB("RW", n, mem.WSBBox("WSB", n, seed)))
			},
			checkAgainst(spec))
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func ExampleNewSlotRenaming() {
	n := 4
	spec := gsb.Renaming(n, n+1)
	res, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRoundRobin(),
		func(n int) Solver {
			return NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, 7))
		})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(res.Outputs), "processes decided distinct names in [1..5]")
	// Output: 4 processes decided distinct names in [1..5]
}
