// Package tasks contains executable wait-free protocols for the GSB tasks
// studied in the paper: snapshot-based adaptive renaming, splitter-grid
// renaming, perfect renaming from oracle objects, the Figure 2 algorithm
// solving (n+1)-renaming from the (n-1)-slot task, the WSB/(2n-2)-renaming
// equivalence reductions, and the identity-space reduction of Theorems 1
// and 2.
//
// Protocols are per-run instances: a constructor allocates the shared
// objects, and Solve(p, id) runs the local algorithm of one process and
// returns its decision. Solve takes the identity explicitly so that
// protocols compose (e.g. a protocol can be run with intermediate
// identities produced by a renaming stage, as in Theorem 1).
package tasks

import (
	"repro/internal/gsb"
	"repro/internal/sched"
)

// Solver is a one-shot distributed task protocol: Solve returns the value
// decided by the calling process. Implementations must be wait-free,
// index-independent and comparison-based unless documented otherwise.
type Solver interface {
	Solve(p *sched.Proc, id int) int
}

// SolverFunc adapts a function to the Solver interface.
type SolverFunc func(p *sched.Proc, id int) int

// Solve implements Solver.
func (f SolverFunc) Solve(p *sched.Proc, id int) int { return f(p, id) }

// Body adapts a Solver to a sched.Body that decides the solver's output,
// using the process's own identity as input.
func Body(s Solver) sched.Body {
	return func(p *sched.Proc) {
		p.Decide(s.Solve(p, p.ID()))
	}
}

// DefaultRunMaxSteps is the generous per-run step budget Run applies (and
// run loops that build their own reusable runner, e.g. the harness seed
// sweeps, should apply) to single verified runs.
const DefaultRunMaxSteps = 1 << 21

// Run executes build(n) once under the given identities and policy with a
// generous step budget, and returns the recorded result.
func Run(n int, ids []int, policy sched.Policy, build func(n int) Solver) (*sched.Result, error) {
	runner := sched.NewRunner(n, ids, policy, sched.WithMaxSteps(DefaultRunMaxSteps))
	return runner.Run(Body(build(n)))
}

// RunOn executes build(n) on a caller-owned runner after re-arming it
// with policy (sched.Runner.Reset). With a reusable runner (NewRunner
// with sched.WithReuse) this is the zero-allocation form of Run for loops
// that execute many runs: the runner's buffers, Result and process
// goroutines are reused across calls, so the returned Result is only
// valid until the runner's next run.
func RunOn(runner *sched.Runner, policy sched.Policy, build func(n int) Solver) (*sched.Result, error) {
	runner.Reset(policy)
	return runner.Run(Body(build(runner.N())))
}

// RunUnder is Run under a named memory model (sched.MemModels): the
// shared objects execute with that model's register/snapshot semantics.
// An empty name is the default atomic model; unknown names error.
func RunUnder(model string, n int, ids []int, policy sched.Policy, build func(n int) Solver) (*sched.Result, error) {
	m, err := sched.MemModelByName(model)
	if err != nil {
		return nil, err
	}
	runner := sched.NewRunner(n, ids, policy, sched.WithMaxSteps(DefaultRunMaxSteps), sched.WithModel(m))
	return runner.Run(Body(build(n)))
}

// RunVerified runs the protocol and checks its outputs against spec:
// complete runs must produce a legal output vector; runs with crashes must
// produce a legal completable prefix.
func RunVerified(spec gsb.Spec, ids []int, policy sched.Policy, build func(n int) Solver) (*sched.Result, error) {
	res, err := Run(spec.N(), ids, policy, build)
	if err != nil {
		return res, err
	}
	return res, verifyResult(spec, res)
}

// RunVerifiedUnder is RunVerified under a named memory model: run via
// RunUnder, then check the outputs against spec.
func RunVerifiedUnder(model string, spec gsb.Spec, ids []int, policy sched.Policy, build func(n int) Solver) (*sched.Result, error) {
	res, err := RunUnder(model, spec.N(), ids, policy, build)
	if err != nil {
		return res, err
	}
	return res, verifyResult(spec, res)
}

// RunVerifiedOn is RunVerified on a caller-owned (typically reusable)
// runner: run the protocol via RunOn, then check the outputs against
// spec. The Result-lifetime caveat of RunOn applies.
func RunVerifiedOn(spec gsb.Spec, runner *sched.Runner, policy sched.Policy, build func(n int) Solver) (*sched.Result, error) {
	res, err := RunOn(runner, policy, build)
	if err != nil {
		return res, err
	}
	return res, verifyResult(spec, res)
}
