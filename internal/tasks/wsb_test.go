package tasks

import (
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/sched"
)

func TestWSBFromRenamingBox(t *testing.T) {
	// WSB from a (2n-2)-renaming oracle: pigeonhole guarantees both
	// binary values are decided.
	for n := 2; n <= 8; n++ {
		spec := gsb.WSB(n)
		for seed := int64(0); seed < 20; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver {
					box := mem.NewTaskBox("R2n2", gsb.Renaming(n, 2*n-2), seed)
					return NewWSBFromRenaming(n, NewBoxSolver(box))
				})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestRenamingFromWSB(t *testing.T) {
	// (2n-2)-renaming in ASM[WSB]: split via the WSB box, then mirrored
	// adaptive renaming per group.
	for n := 2; n <= 7; n++ {
		spec := gsb.Renaming(n, 2*n-2)
		for seed := int64(0); seed < 30; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver {
					return NewRenamingFromWSB("RW", n, mem.WSBBox("WSB", n, seed))
				})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestRenamingFromWSBWithCrashes(t *testing.T) {
	n := 6
	spec := gsb.Renaming(n, 2*n-2)
	for seed := int64(0); seed < 40; seed++ {
		_, err := RunVerified(spec, sched.DefaultIDs(n),
			sched.NewRandomCrash(seed, 0.03, n-1),
			func(n int) Solver {
				return NewRenamingFromWSB("RW", n, mem.WSBBox("WSB", n, seed))
			})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestWSBRenamingEquivalenceRoundTrip(t *testing.T) {
	// Compose the two reductions: WSB box -> (2n-2)-renaming protocol ->
	// WSB again; the final outputs must satisfy WSB.
	for n := 3; n <= 6; n++ {
		spec := gsb.WSB(n)
		for seed := int64(0); seed < 20; seed++ {
			_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
				func(n int) Solver {
					ren := NewRenamingFromWSB("RW", n, mem.WSBBox("WSB", n, seed))
					return NewWSBFromRenaming(n, ren)
				})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestKWSBFromRenaming(t *testing.T) {
	// Corollary 4: k-WSB from 2(n-k)-renaming with no communication.
	for n := 4; n <= 9; n++ {
		for k := 1; 2*k <= n; k++ {
			spec := gsb.KWSB(n, k)
			for seed := int64(0); seed < 10; seed++ {
				_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
					func(n int) Solver {
						box := mem.NewTaskBox("R", gsb.Renaming(n, 2*(n-k)), seed)
						return NewKWSBFromRenaming(n, k, NewBoxSolver(box))
					})
				if err != nil {
					t.Fatalf("n=%d k=%d seed=%d: %v", n, k, seed, err)
				}
			}
		}
	}
}

func TestKWSBValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n/2")
		}
	}()
	NewKWSBFromRenaming(5, 3, nil)
}

func TestWSBFromSlotTask(t *testing.T) {
	// Theorem 10's reduction: any <n,m,1,u>-GSB solver yields WSB by
	// reducing the decided value modulo 2.
	for n := 2; n <= 7; n++ {
		for m := 2; m <= n; m++ {
			spec := gsb.WSB(n)
			for seed := int64(0); seed < 10; seed++ {
				_, err := RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
					func(n int) Solver {
						box := mem.NewTaskBox("slot", gsb.KSlot(n, m), seed)
						return NewWSBFromSlotTask(m, NewBoxSolver(box))
					})
				if err != nil {
					t.Fatalf("n=%d m=%d seed=%d: %v", n, m, seed, err)
				}
			}
		}
	}
}

func TestWSBFromSlotTaskValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m < 2")
		}
	}()
	NewWSBFromSlotTask(1, nil)
}

func TestWSBFromRenamingRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range name")
		}
	}()
	bad := SolverFunc(func(*sched.Proc, int) int { return 99 })
	w := NewWSBFromRenaming(3, bad)
	r := sched.NewRunner(1, []int{1}, sched.NewRoundRobin())
	_, _ = r.Run(func(p *sched.Proc) { p.Decide(w.Solve(p, p.ID())) })
}
