package tasks

import "repro/internal/sched"

// IDReducer implements the constructions of Theorems 1 and 2: before
// running an inner protocol, processes acquire intermediate identities in
// [1..2n-1] using an index-independent, comparison-based (2n-1)-renaming
// algorithm (the snapshot renaming of this package). The inner protocol
// then runs with the intermediate identities.
//
//   - Theorem 1: a protocol designed for identities in [1..2n-1] thereby
//     solves the same GSB task for any identity space [1..N], N >= 2n-1.
//   - Theorem 2: because the renaming stage is comparison-based, the
//     composed protocol is comparison-based whenever the inner protocol
//     only uses its (intermediate) identity through comparisons — and the
//     intermediate identities depend on the original ones only through
//     their relative order.
type IDReducer struct {
	stage *SnapshotRenaming
	inner Solver
}

// NewIDReducer composes a (2n-1)-renaming stage with an inner solver.
func NewIDReducer(name string, n int, inner Solver) *IDReducer {
	return &IDReducer{stage: NewSnapshotRenaming(name+".reduce", n), inner: inner}
}

// Solve implements Solver: it renames first, then runs the inner protocol
// with the intermediate identity.
func (r *IDReducer) Solve(p *sched.Proc, id int) int {
	intermediate := r.stage.Solve(p, id)
	return r.inner.Solve(p, intermediate)
}
