package tasks

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sched"
)

// This file implements the reductions around weak symmetry breaking
// discussed in Sections 5 and 6 of the paper:
//
//   - WSB from (2n-2)-renaming (one direction of the known equivalence);
//   - (2n-2)-renaming from WSB (the other direction, via a WSB split and
//     two mirrored *adaptive* renaming instances);
//   - k-WSB from 2(n-k)-renaming without further communication
//     (Corollary 4);
//   - WSB from any <n,m,1,u>-GSB task by reducing the output modulo 2
//     (the reduction used in the proof of Theorem 10).

// WSBFromRenaming solves WSB (<n,2,1,n-1>-GSB) given any solver for
// (2n-2)-renaming: decide 1 if the new name is at most n-1, else 2.
// Pigeonhole on distinct names in [1..2n-2] guarantees both values are
// decided: n distinct names cannot all lie in [1..n-1] (only n-1 names)
// nor all in [n..2n-2] (only n-1 names).
type WSBFromRenaming struct {
	n       int
	renamer Solver
}

// NewWSBFromRenaming wraps a (2n-2)-renaming solver.
func NewWSBFromRenaming(n int, renamer Solver) *WSBFromRenaming {
	return &WSBFromRenaming{n: n, renamer: renamer}
}

// Solve implements Solver.
func (w *WSBFromRenaming) Solve(p *sched.Proc, id int) int {
	name := w.renamer.Solve(p, id)
	if name < 1 || name > 2*w.n-2 {
		panic(fmt.Sprintf("tasks: renamer produced %d outside [1..%d]", name, 2*w.n-2))
	}
	if name <= w.n-1 {
		return 1
	}
	return 2
}

// RenamingFromWSB solves (2n-2)-renaming (<n,2n-2,0,1>-GSB) in
// ASM_{n,n-1}[WSB]: processes first split into two groups with a WSB
// object (so each group has between 1 and n-1 members), then each group
// runs its own adaptive snapshot renaming. The 1-group takes names from
// the bottom of [1..2n-2] upward; the 2-group takes names from the top
// downward (name 2n-1-a for adaptive name a). With p1 and p2 = p - p1
// participants per group, bottom names reach at most 2*p1-1 and top names
// reach down to 2n-2*p2 > 2*p1-1, so the ranges never collide.
type RenamingFromWSB struct {
	n      int
	wsb    *mem.TaskBox
	bottom *SnapshotRenaming
	top    *SnapshotRenaming
}

// NewRenamingFromWSB allocates the reduction; wsb must solve WSB for the
// same n.
func NewRenamingFromWSB(name string, n int, wsb *mem.TaskBox) *RenamingFromWSB {
	spec := wsb.Spec()
	if spec.N() != n || spec.M() != 2 {
		panic(fmt.Sprintf("tasks: WSB object solves %v, want WSB for n=%d", spec, n))
	}
	return &RenamingFromWSB{
		n:      n,
		wsb:    wsb,
		bottom: NewSnapshotRenaming(name+".bottom", n),
		top:    NewSnapshotRenaming(name+".top", n),
	}
}

// Solve implements Solver.
func (r *RenamingFromWSB) Solve(p *sched.Proc, id int) int {
	if r.wsb.Invoke(p) == 1 {
		return r.bottom.Solve(p, id)
	}
	return 2*r.n - 1 - r.top.Solve(p, id)
}

// KWSBFromRenaming solves k-WSB (<n,2,k,n-k>-GSB) from a 2(n-k)-renaming
// solver with no additional communication (Corollary 4): decide 1 iff the
// new name is at most n-k. Distinct names in [1..2(n-k)] force at least k
// and at most n-k processes on each side.
type KWSBFromRenaming struct {
	n, k    int
	renamer Solver
}

// NewKWSBFromRenaming wraps a 2(n-k)-renaming solver; requires k <= n/2.
func NewKWSBFromRenaming(n, k int, renamer Solver) *KWSBFromRenaming {
	if k < 1 || 2*k > n {
		panic(fmt.Sprintf("tasks: k-WSB needs 1 <= k <= n/2, got k=%d n=%d", k, n))
	}
	return &KWSBFromRenaming{n: n, k: k, renamer: renamer}
}

// Solve implements Solver.
func (w *KWSBFromRenaming) Solve(p *sched.Proc, id int) int {
	name := w.renamer.Solve(p, id)
	if name < 1 || name > 2*(w.n-w.k) {
		panic(fmt.Sprintf("tasks: renamer produced %d outside [1..%d]", name, 2*(w.n-w.k)))
	}
	if name <= w.n-w.k {
		return 1
	}
	return 2
}

// WSBFromSlotTask solves WSB from any <n,m,1,u>-GSB solver by reducing
// the decided value modulo 2 (the reduction in the proof of Theorem 10).
// Because every value in [1..m] is decided at least once and m >= 2, both
// parities occur, hence not all processes decide the same binary value.
type WSBFromSlotTask struct {
	inner Solver
	m     int
}

// NewWSBFromSlotTask wraps an <n,m,1,u>-GSB solver with m >= 2. The
// reduction is sound because values 1 and 2 are each decided at least
// once and have different parities, so both binary outputs occur.
func NewWSBFromSlotTask(m int, inner Solver) *WSBFromSlotTask {
	if m < 2 {
		panic(fmt.Sprintf("tasks: WSB-from-slot reduction needs m >= 2, got %d", m))
	}
	return &WSBFromSlotTask{inner: inner, m: m}
}

// Solve implements Solver.
func (w *WSBFromSlotTask) Solve(p *sched.Proc, id int) int {
	return (w.inner.Solve(p, id) % 2) + 1
}
