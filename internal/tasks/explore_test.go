package tasks

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gsb"
	"repro/internal/mem"
	"repro/internal/nocomm"
	"repro/internal/sched"
)

// exploreCase is a task plus a solver whose full failure-free schedule
// tree is small enough to enumerate exhaustively.
type exploreCase struct {
	name  string
	spec  gsb.Spec
	build func(n int) Solver
}

func exploreCases(t *testing.T) []exploreCase {
	// <4,2,-,-> family member: WSB(4) = <4,2,1,3>-GSB solved from a
	// (2n-2)-renaming oracle box (2 scheduled steps per process).
	wsb := exploreCase{
		name: "wsb-4-2",
		spec: gsb.WSB(4),
		build: func(n int) Solver {
			return NewWSBFromRenaming(n, NewBoxSolver(mem.NewTaskBox("R", gsb.Renaming(4, 6), 1)))
		},
	}
	// <5,3,-,-> family member: <5,3,0,3>-GSB (3-bounded homonymous
	// renaming) solved communication-free via Theorem 9 (1 step per
	// process).
	spec53 := gsb.BoundedHomonymous(5, 3)
	delta, ok := nocomm.Build(spec53)
	if !ok {
		t.Fatalf("%v unexpectedly not solvable without communication", spec53)
	}
	bh := exploreCase{
		name: "bounded-homonymous-5-3",
		spec: spec53,
		build: func(n int) Solver {
			return SolverFunc(func(p *sched.Proc, id int) int { return delta[id-1] })
		},
	}
	return []exploreCase{wsb, bh}
}

// TestExploreVerifiedMatchesSequential asserts the parallel engine visits
// exactly the same number of schedules as the sequential baseline on real
// GSB tasks, at 1, 2 and 8 workers.
func TestExploreVerifiedMatchesSequential(t *testing.T) {
	for _, tc := range exploreCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.spec.N()
			want, err := sched.ExploreSequential(n, sched.DefaultIDs(n), 1<<20, 4096*n,
				func() sched.Body { return Body(tc.build(n)) },
				func(res *sched.Result) error { return verifyResult(tc.spec, res) })
			if err != nil {
				t.Fatalf("sequential baseline: %v", err)
			}
			if want < 2 {
				t.Fatalf("sequential baseline found only %d schedules; test is vacuous", want)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := ExploreVerified(context.Background(), tc.spec, sched.DefaultIDs(n),
					sched.ExploreOptions{Workers: workers}, tc.build)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != want {
					t.Errorf("workers=%d: visited %d schedules, sequential baseline visited %d", workers, got, want)
				}
			}
		})
	}
}

// TestExploreVerifiedPORDifferential asserts that partial-order-reduced
// exploration reaches the same verdict as the sequential exhaustive
// baseline on the <4,2> and <5,3> family members while executing
// strictly fewer runs, and that the reduced count is identical at every
// worker count (the reduced tree is a fixed object, like the full one).
func TestExploreVerifiedPORDifferential(t *testing.T) {
	for _, tc := range exploreCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.spec.N()
			want, err := sched.ExploreSequential(n, sched.DefaultIDs(n), 1<<20, 4096*n,
				func() sched.Body { return Body(tc.build(n)) },
				func(res *sched.Result) error { return verifyResult(tc.spec, res) })
			if err != nil {
				t.Fatalf("sequential baseline: %v", err)
			}
			var reduced int
			for i, workers := range []int{1, 2, 8} {
				got, err := ExploreVerified(context.Background(), tc.spec, sched.DefaultIDs(n),
					sched.ExploreOptions{Workers: workers, Reduction: sched.ReductionSleepSets}, tc.build)
				if err != nil {
					t.Fatalf("workers=%d: same verdict expected, got %v", workers, err)
				}
				if got >= want {
					t.Errorf("workers=%d: reduction executed %d schedules, want strictly fewer than the %d exhaustive ones", workers, got, want)
				}
				if i == 0 {
					reduced = got
				} else if got != reduced {
					t.Errorf("workers=%d: reduced count %d differs from single-worker count %d", workers, got, reduced)
				}
			}
			t.Logf("%s: %d schedules exhaustively, %d trace classes under reduction (factor %.1f)",
				tc.name, want, reduced, float64(want)/float64(reduced))
		})
	}
}

// TestExploreVerifiedPORSeededBug plants a schedule-dependent bug — a
// WSB solver deciding off a racy shared counter, so lost updates on some
// (not all) interleavings yield an illegal output vector — and asserts
// the reduced exploration reports exactly the same lexicographically
// smallest violating schedule as the exhaustive engine: the lex-min
// violating run is the minimal member of its trace class, which sleep
// sets always explore.
func TestExploreVerifiedPORSeededBug(t *testing.T) {
	spec := gsb.WSB(3)
	n := spec.N()
	// Non-atomic read-increment on a shared register: under a schedule
	// where every process reads before anyone writes, all three decide
	// 1, leaving value 2 undecided — below WSB's lower bound of 1.
	build := func(n int) Solver {
		c := mem.NewReg[int]("C")
		return SolverFunc(func(p *sched.Proc, id int) int {
			v, _ := c.Read(p)
			c.Write(p, v+1)
			return 1 + v%2
		})
	}
	exhaust := func(workers int, red sched.Reduction) (int, error) {
		return ExploreVerified(context.Background(), spec, sched.DefaultIDs(n),
			sched.ExploreOptions{Workers: workers, Reduction: red}, build)
	}
	okCount, okErr := exhaust(1, sched.ReductionNone)
	if okErr == nil {
		t.Fatalf("exhaustive exploration missed the seeded bug after %d schedules", okCount)
	}
	for _, workers := range []int{1, 4} {
		_, err := exhaust(workers, sched.ReductionSleepSets)
		if err == nil {
			t.Fatalf("workers=%d: reduced exploration missed the seeded bug", workers)
		}
		if err.Error() != okErr.Error() {
			t.Errorf("workers=%d: violation\n  %v\nwant the exhaustive engine's lex-min report\n  %v", workers, err, okErr)
		}
	}
}

// TestExploreVerifiedBudget asserts budget exhaustion surfaces as
// ErrExplorationBudget with the exact budget as the count, under
// concurrency.
func TestExploreVerifiedBudget(t *testing.T) {
	tc := exploreCases(t)[0]
	n := tc.spec.N()
	for _, workers := range []int{2, 8} {
		count, err := ExploreVerified(context.Background(), tc.spec, sched.DefaultIDs(n),
			sched.ExploreOptions{Workers: workers, MaxRuns: 25}, tc.build)
		if !errors.Is(err, sched.ErrExplorationBudget) {
			t.Fatalf("workers=%d: err = %v, want budget error", workers, err)
		}
		if count != 25 {
			t.Errorf("workers=%d: count = %d, want exactly the budget 25", workers, count)
		}
	}
}

// TestExploreVerifiedCrashSweep drives the crash-injection sweep through
// the task-level API: outputs of crashed runs must still verify as legal
// completable prefixes.
func TestExploreVerifiedCrashSweep(t *testing.T) {
	tc := exploreCases(t)[0]
	n := tc.spec.N()
	count, err := ExploreVerified(context.Background(), tc.spec, sched.DefaultIDs(n),
		sched.ExploreOptions{Workers: 4, CrashRuns: 250, CrashProb: 0.1, Seed: 3}, tc.build)
	if err != nil {
		t.Fatal(err)
	}
	if count != 250 {
		t.Errorf("count = %d, want 250", count)
	}
}
