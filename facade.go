package repro

import (
	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/gsb"
	"repro/internal/harness"
	"repro/internal/luby"
	"repro/internal/mem"
	"repro/internal/msgnet"
	"repro/internal/nocomm"
	"repro/internal/profdiff"
	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/solvability"
	"repro/internal/stats"
	"repro/internal/tasks"
	"repro/internal/timeline"
	"repro/internal/topology"
	"repro/internal/universal"
	"repro/internal/vecmath"
)

// Task algebra (internal/gsb).
type (
	// Spec describes an <n,m,l,u>-GSB task (possibly asymmetric).
	Spec = gsb.Spec
	// Vec is an integer vector (counting and kernel vectors).
	Vec = vecmath.Vec
	// HasseEdge is an edge of the strict-inclusion diagram (Figure 1).
	HasseEdge = gsb.HasseEdge
)

// Spec constructors and named instances (Section 3).
var (
	NewSym               = gsb.NewSym
	NewAsym              = gsb.NewAsym
	Election             = gsb.Election
	WSB                  = gsb.WSB
	KWSB                 = gsb.KWSB
	Renaming             = gsb.Renaming
	PerfectRenaming      = gsb.PerfectRenaming
	KSlot                = gsb.KSlot
	BoundedHomonymous    = gsb.BoundedHomonymous
	Hardest              = gsb.Hardest
	BalancedKernelVector = gsb.BalancedKernelVector
)

// Family structure (Section 4).
var (
	Family          = gsb.Family
	SynonymClasses  = gsb.SynonymClasses
	CanonicalFamily = gsb.CanonicalFamily
	Hasse           = gsb.Hasse
)

// Execution engine (internal/sched): the asynchronous wait-free
// shared-memory model with a pluggable adversary.
type (
	// Proc is the per-process handle inside a run.
	Proc = sched.Proc
	// Policy schedules steps and injects crashes.
	Policy = sched.Policy
	// RunResult records outputs, crashes and the schedule of a run.
	RunResult = sched.Result
	// ExploreOptions configures the parallel exploration engine: worker
	// count, run/step budgets, the crash-injection sweep mode, and the
	// partial-order reduction.
	ExploreOptions = sched.ExploreOptions
	// Reduction selects the partial-order reduction applied to
	// exhaustive exploration (ReductionNone, ReductionSleepSets,
	// ReductionSleepMemo).
	Reduction = sched.Reduction
	// SampleMode selects the statistical sampler executed when
	// ExploreOptions.SampleRuns > 0 (SampleWalk, SamplePCT).
	SampleMode = sched.SampleMode
	// SampleReport is the outcome of a statistical sampling batch:
	// runs executed, distinct-trace-class coverage, and the replayable
	// smallest failing run (index + derived seed).
	SampleReport = sample.Report
	// ProcessPanics is the panic value Run re-raises when protocol code
	// panicked: one ProcessPanic per panicking process, in index order,
	// each carrying the original panic value verbatim.
	ProcessPanics = sched.ProcessPanics
	ProcessPanic  = sched.ProcessPanic
)

// Partial-order reduction levels (ExploreOptions.Reduction).
const (
	ReductionNone      = sched.ReductionNone
	ReductionSleepSets = sched.ReductionSleepSets
	ReductionSleepMemo = sched.ReductionSleepMemo
)

// Memory models (ExploreOptions.Model; docs/models.md): register and
// snapshot semantics as a named, first-class execution axis. The default
// atomic model is bit-identical to the pre-registry engine; the weak
// models express their weakness as extra scheduler-visible decision
// points, so runs stay pure functions of (model, schedule).
const (
	ModelAtomic        = sched.ModelAtomic
	ModelRegular       = sched.ModelRegular
	ModelSafe          = sched.ModelSafe
	ModelStaleSnapshot = sched.ModelStaleSnapshot
)

// Crash adversaries (ExploreOptions.Adversary; docs/models.md): the
// strategy generating per-run crash policies in seeded sweeps.
const (
	AdversaryUniformCrash = sched.AdversaryUniformCrash
	AdversaryTResilient   = sched.AdversaryTResilient
	AdversaryAdaptive     = sched.AdversaryAdaptive
)

var (
	// MemModels and Adversaries list the registered names (default
	// first); MemModelByName and AdversaryByName resolve a name, with an
	// error naming the registered set on an unknown one.
	MemModels       = sched.MemModels
	MemModelByName  = sched.MemModelByName
	Adversaries     = sched.Adversaries
	AdversaryByName = sched.AdversaryByName
	// WithModel runs a runner's shared objects under a resolved memory
	// model; RunUnder / RunVerifiedUnder are the name-resolving one-shot
	// forms.
	WithModel = sched.WithModel
)

// Statistical samplers (ExploreOptions.SampleMode): the uniform random
// walk over the pending set, and probabilistic concurrency testing
// (random priorities plus Depth-1 seeded priority-change points, with the
// classic 1/(n*k^(Depth-1)) bug-depth detection guarantee).
const (
	SampleWalk = sched.SampleWalk
	SamplePCT  = sched.SamplePCT
)

var (
	NewRunner = sched.NewRunner
	// WithMaxSteps overrides a runner's per-run step budget; WithReuse
	// keeps its process coroutines parked between runs (Reset re-arms it
	// per run; the caller must Close), which is the zero-allocation path
	// the exploration engines use.
	WithMaxSteps         = sched.WithMaxSteps
	WithReuse            = sched.WithReuse
	DefaultIDs           = sched.DefaultIDs
	NewRoundRobinPolicy  = sched.NewRoundRobin
	NewRandomPolicy      = sched.NewRandom
	NewRandomCrashPolicy = sched.NewRandomCrash
	NewScriptPolicy      = sched.NewScript
	ScriptFromSchedule   = sched.ScriptFromSchedule
	// Explore model-checks a protocol over every failure-free schedule
	// (or a randomized crash sweep) with a work-stealing worker pool;
	// ExploreAll is its single-worker form, ExploreSequential the
	// historical depth-first baseline it is differentially tested against.
	Explore           = sched.Explore
	ExploreAll        = sched.ExploreAll
	ExploreCrashes    = sched.ExploreCrashes
	ExploreSequential = sched.ExploreSequential
	// SampleExplore executes a statistical sampling batch (see
	// ExploreOptions.SampleRuns/SampleMode/Depth) and reports
	// distinct-trace-class coverage; SampleVerified is its task-level
	// form. ExploreSeeded is the underlying seeded-run worker pool the
	// crash sweep and the samplers share, and DeriveRunSeed the single
	// definition of per-run seed derivation (seed→schedule
	// reproducibility), which makes any reported failing run replayable.
	SampleExplore = sample.Explore
	ExploreSeeded = sched.ExploreSeeded
	DeriveRunSeed = sched.DeriveRunSeed
	// NewPCTPolicy builds the standalone PCT scheduling policy (random
	// priorities + depth-1 seeded change points), e.g. to replay a
	// failing PCT run from its derived seed.
	NewPCTPolicy = sample.NewPCT
	// CanonicalTraceHash hashes a schedule's Foata normal form under an
	// independence relation: equal hashes identify the Mazurkiewicz
	// trace class. The sampling subsystem counts coverage with it.
	CanonicalTraceHash = sched.CanonicalTraceHash
	// ErrExplorationBudget reports a schedule tree larger than MaxRuns.
	ErrExplorationBudget = sched.ErrExplorationBudget
	// ErrInvalidExploreOptions reports semantically unusable
	// ExploreOptions (e.g. a crash probability outside [0,1]).
	ErrInvalidExploreOptions = sched.ErrInvalidOptions
	// ErrScheduleDiverged reports a prefix replay that found the
	// protocol behaving non-deterministically; exploration surfaces it
	// as a per-run failure instead of a panic.
	ErrScheduleDiverged = sched.ErrScheduleDiverged
	// OpIndependent is the commutation relation partial-order reduction
	// derives from the "<object>.<kind>" op-naming contract.
	OpIndependent = sched.OpIndependent
	// Timeline and ScheduleSummary render recorded schedules for humans.
	Timeline        = sched.Timeline
	ScheduleSummary = sched.Summary
)

// Durable verification campaigns (internal/campaign): long explorations,
// sampling batches and crash sweeps that checkpoint their entire engine
// state to a versioned snapshot file, resume exactly after a kill, split
// deterministically across shards, and merge shard snapshots into the
// report an uninterrupted single process produces. cmd/gsbcampaign is the
// CLI form (start/resume/status/merge, checkpoint-on-signal).
type (
	// CampaignConfig describes one campaign (or one shard of one):
	// task, solver, options, shard index/count, checkpoint interval and
	// snapshot path.
	CampaignConfig = campaign.Config
	// CampaignReport is a campaign outcome (final for a single shard,
	// provisional per shard until MergeCampaigns combines the set).
	CampaignReport = campaign.Report
	// CampaignHeader is the self-describing first line of a snapshot
	// file: identity, options hash, progress, and the result once done.
	CampaignHeader = campaign.Header
	// CampaignMode names a campaign's verification mode.
	CampaignMode = campaign.Mode
	// CampaignObserver is the live observability endpoint of a running
	// campaign shard: it owns the StatsRegistry the engines publish into
	// and renders it as Prometheus /metrics, a JSON /status endpoint and
	// gsbprogress/v1 NDJSON records (cmd/gsbcampaign's -metrics and
	// -progress flags; docs/metrics.md).
	CampaignObserver = campaign.Observer
	// CampaignStatusRecord is one live progress observation — the /status
	// response body (schema gsbstatus/v1) and the NDJSON progress record
	// (schema gsbprogress/v1).
	CampaignStatusRecord = campaign.StatusRecord
	// StatsRegistry is the engine observability registry
	// (internal/stats): named atomic counters/gauges/histograms with
	// zero-allocation publishing, Prometheus rendering, and serializable
	// snapshots that campaigns checkpoint and merge. Attach one via
	// ExploreOptions.Stats (or use a CampaignObserver's).
	StatsRegistry = stats.Registry
	// StatsSnapshot is a serializable point-in-time copy of a registry:
	// carried in campaign checkpoints and final reports.
	StatsSnapshot = stats.Snapshot
	// TimelineRecord is one gsbtimeline/v1 coverage-timeline sample: a
	// snapshot of the cumulative campaign counters taken at each
	// checkpoint write and appended to the snapshot's NDJSON timeline
	// sidecar (<snapshot>.timeline). Kill/resume extends one continuous
	// series; MergeTimelines interleaves finished shard sidecars.
	TimelineRecord = timeline.Record
)

// Campaign modes (derived from ExploreOptions by CampaignModeOf).
const (
	CampaignExhaustive = campaign.ModeExhaustive
	CampaignPOR        = campaign.ModePOR
	CampaignPORMemo    = campaign.ModePORMemo
	CampaignWalk       = campaign.ModeWalk
	CampaignPCT        = campaign.ModePCT
	CampaignCrash      = campaign.ModeCrash
)

var (
	// RunCampaign starts a fresh campaign shard and drives it through
	// checkpointed slices to completion (or to a checkpoint-on-cancel
	// pause: ErrCampaignPaused). ResumeCampaign continues from the
	// snapshot, failing loudly (ErrCampaignOptionsMismatch) if the
	// campaign-defining options changed. MergeCampaigns combines the
	// finished shard snapshots into the single-process report, and
	// CampaignStatus reads a snapshot's header without its payload.
	RunCampaign    = campaign.Start
	ResumeCampaign = campaign.Resume
	MergeCampaigns = campaign.Merge
	CampaignStatus = campaign.Status
	CampaignModeOf = campaign.ModeOf
	// NewStatsRegistry creates an empty observability registry;
	// NewCampaignObserver an observer with its own registry.
	NewStatsRegistry    = stats.New
	NewCampaignObserver = campaign.NewObserver
	// ErrCampaignPaused marks an interrupted-but-checkpointed campaign;
	// ErrCampaignOptionsMismatch a resume/merge whose options do not
	// match the snapshot's.
	ErrCampaignPaused          = campaign.ErrPaused
	ErrCampaignOptionsMismatch = campaign.ErrOptionsMismatch
	// VerifyResult is the per-run acceptance rule every verification
	// mode shares (complete runs: legal output vector; crashed runs:
	// legal completable prefix).
	VerifyResult = tasks.VerifyResult
	// SelectProtocol maps a CLI protocol name to its task spec and
	// solver constructor — the registry cmd/gsbrun and cmd/gsbcampaign
	// share.
	SelectProtocol = harness.SelectProtocol
	// Timeline sidecar access (internal/timeline): TimelineSidecarPath
	// maps a snapshot path to its NDJSON timeline file, ReadTimeline
	// loads a sidecar (tolerating a torn tail), MergeTimelines
	// interleaves shard series by (sample index, shard), and
	// WriteTimeline atomically writes a merged series — what
	// `gsbcampaign merge` uses to emit one campaign-wide timeline.
	TimelineSidecarPath = timeline.SidecarPath
	ReadTimeline        = timeline.Read
	MergeTimelines      = timeline.Merge
	WriteTimeline       = timeline.WriteFile
)

// Verification fleet (internal/fleet): the distributed form of a
// sharded campaign. A coordinator accepts submissions over the
// gsbfleet/v1 HTTP/JSON API, deals shards to registered workers,
// collects checkpoint snapshot uploads, re-deals the shard of a dead or
// stale worker (the replacement resumes from the last uploaded
// checkpoint), and auto-merges the finished shard set into a report
// equal to an uninterrupted single-process run. cmd/gsbfleet is the CLI;
// docs/fleet.md the guide.
type (
	// FleetSubmission is the body of POST /v1/campaigns — a campaign
	// plus its shard count.
	FleetSubmission = fleet.Submission
	// FleetCoordinatorConfig/FleetWorkerConfig configure the two halves.
	FleetCoordinatorConfig = fleet.CoordinatorConfig
	FleetWorkerConfig      = fleet.WorkerConfig
	// FleetCoordinator is the control plane (an http.Handler);
	// FleetWorker a campaign-running agent.
	FleetCoordinator = fleet.Coordinator
	FleetWorker      = fleet.Worker
	// FleetCampaignStatus / FleetStatus are the live status views.
	FleetCampaignStatus = fleet.CampaignStatus
	FleetStatus         = fleet.FleetStatus
)

var (
	NewFleetCoordinator = fleet.NewCoordinator
	NewFleetWorker      = fleet.NewWorker
)

// FleetSchema tags every gsbfleet/v1 API body; FleetStatusSchema the
// fleet-level /status response.
const (
	FleetSchema       = fleet.Schema
	FleetStatusSchema = fleet.FleetStatusSchema
)

// Profile-diff regression explanations (internal/profdiff): a minimal
// stdlib-only pprof profile.proto reader and per-function flat-time
// differ, so the gsbbench -compare gate can explain a regression by
// naming the hot-path functions whose flat share moved.
type (
	// PprofProfile is the flat-value view of one parsed pprof profile.
	PprofProfile = profdiff.Profile
	// ProfileDelta is one function's flat-share change between two
	// profiles (positive Diff: the function grew).
	ProfileDelta = profdiff.Delta
)

var (
	// ParseProfile reads a pprof CPU profile (gzipped or bare proto);
	// DiffProfiles compares per-function flat shares largest-move-first;
	// FormatProfileDiff renders the top-n deltas as an aligned table; and
	// ExplainProfileDiff is the one-call file-to-table form gsbbench
	// prints under a failed regression gate.
	ParseProfile       = profdiff.ParseFile
	DiffProfiles       = profdiff.Diff
	FormatProfileDiff  = profdiff.Format
	ExplainProfileDiff = profdiff.Explain
)

// Shared-memory objects (internal/mem).
var (
	NewTaskBox         = mem.NewTaskBox
	PerfectRenamingBox = mem.PerfectRenamingBox
	SlotBox            = mem.SlotBox
	WSBBox             = mem.WSBBox
	// Adaptive oracle objects contrasted with GSB tasks in Section 1.
	NewKTAS            = mem.NewKTAS
	NewKLeaderElection = mem.NewKLeaderElection
	// Agreement-task oracles (the non-GSB foil: outputs relate to inputs).
	NewConsensus     = mem.NewConsensus
	NewKSetAgreement = mem.NewKSetAgreement
)

// Protocols (internal/tasks).
type (
	// Solver is a one-shot task protocol.
	Solver = tasks.Solver
	// SolverFunc adapts a function to Solver.
	SolverFunc = tasks.SolverFunc
)

var (
	Run = tasks.Run
	// RunOn / RunVerifiedOn execute on a caller-owned (typically
	// reusable) runner re-armed per call — the zero-allocation form of
	// Run / RunVerified for seed sweeps and other many-run loops.
	RunOn                          = tasks.RunOn
	RunVerifiedOn                  = tasks.RunVerifiedOn
	RunVerified                    = tasks.RunVerified
	RunUnder                       = tasks.RunUnder
	RunVerifiedUnder               = tasks.RunVerifiedUnder
	ExploreVerified                = tasks.ExploreVerified
	SampleVerified                 = tasks.SampleVerified
	SolverBody                     = tasks.Body
	NewSnapshotRenaming            = tasks.NewSnapshotRenaming
	NewGridRenaming                = tasks.NewGridRenaming
	NewISRenaming                  = tasks.NewISRenaming
	NewFetchIncRenaming            = tasks.NewFetchIncRenaming
	NewTASRenaming                 = tasks.NewTASRenaming
	NewBoxSolver                   = tasks.NewBoxSolver
	NewElectionFromPerfectRenaming = tasks.NewElectionFromPerfectRenaming
	NewSlotRenaming                = tasks.NewSlotRenaming
	NewWSBFromRenaming             = tasks.NewWSBFromRenaming
	NewRenamingFromWSB             = tasks.NewRenamingFromWSB
	NewKWSBFromRenaming            = tasks.NewKWSBFromRenaming
	NewWSBFromSlotTask             = tasks.NewWSBFromSlotTask
	NewIDReducer                   = tasks.NewIDReducer
	NewUniversalConstruction       = universal.New
)

// Solvability analysis (Theorems 9-11).
type (
	// SolvabilityReport classifies one task.
	SolvabilityReport = solvability.Report
	// SolvabilityStatus is the classification outcome.
	SolvabilityStatus = solvability.Status
	// DecisionFunc is a communication-free algorithm (Theorem 9).
	DecisionFunc = nocomm.DecisionFunc
)

// Solvability statuses.
const (
	StatusInfeasible  = solvability.StatusInfeasible
	StatusTrivial     = solvability.StatusTrivial
	StatusSolvable    = solvability.StatusSolvable
	StatusNotSolvable = solvability.StatusNotSolvable
	StatusUnknown     = solvability.StatusUnknown
)

var (
	Classify            = solvability.Classify
	FamilyReport        = solvability.FamilyReport
	BinomialGCD         = solvability.BinomialGCD
	BinomialsPrime      = solvability.BinomialsPrime
	GCDTable            = solvability.GCDTable
	NoCommSolvable      = nocomm.Solvable
	NoCommBuild         = nocomm.Build
	NoCommVerify        = nocomm.Verify
	IdentityRenamingMap = nocomm.IdentityRenaming
)

// Topology certificates (Theorem 11).
type (
	// IISComplex is the iterated-immediate-snapshot protocol complex.
	IISComplex = topology.Complex
)

var (
	BuildIIS           = topology.BuildIIS
	BoundedRoundsCheck = topology.Solvable
	// BoundedRoundsCheckSAT is the CDCL-backed variant: it exhausts
	// instances (e.g. WSB) whose constraints defeat plain backtracking.
	BoundedRoundsCheckSAT = topology.SolvableSAT
)

// Paper artifacts (Table 1, Figure 1, Figure 2) and the exhaustive
// exploration experiment.
var (
	Table1             = harness.Table1
	Figure1Text        = harness.Figure1Text
	Figure1DOT         = harness.Figure1DOT
	Figure2Experiment  = harness.Figure2Experiment
	Figure2Text        = harness.Figure2Text
	ExploreExperiment  = harness.ExploreExperiment
	ExploreText        = harness.ExploreText
	SampleExperiment   = harness.SampleExperiment
	SampleText         = harness.SampleText
	CampaignExperiment = harness.CampaignExperiment
	CampaignText       = harness.CampaignText
	SolvabilityText    = harness.SolvabilityText
	GCDTableText       = harness.GCDTableText
	// ModelMatrixExperiment diffs GSB solvability across the registered
	// memory models and adversaries (docs/models.md).
	ModelMatrixExperiment = harness.ModelMatrixExperiment
	ModelMatrixText       = harness.ModelMatrixText
)

// Message-passing baselines (internal/msgnet, internal/luby).
type (
	// Graph is an undirected message-passing topology.
	Graph = msgnet.Graph
	// NetAdversary is the seeded message adversary: per-directed-edge
	// loss, delay and reordering between synchronous rounds
	// (docs/models.md). Executions are deterministic per seed.
	NetAdversary = msgnet.NetAdversary
)

var (
	NewGraph       = msgnet.NewGraph
	Ring           = msgnet.Ring
	Complete       = msgnet.Complete
	GNP            = msgnet.GNP
	LubyMIS        = luby.MIS
	VerifyMIS      = luby.VerifyMIS
	LubyColoring   = luby.Coloring
	VerifyColoring = luby.VerifyColoring
	RingThreeColor = luby.RingThreeColor
	// RunAdversarial executes a msgnet protocol under a message
	// adversary; Synchronize wraps fault-free protocols so they tolerate
	// it (retransmission repairs loss; buffering absorbs delay and
	// reordering). The *Under variants are the baselines composed with
	// both: the symmetry-breaking algorithms running under faults.
	RunAdversarial      = msgnet.RunAdversarial
	Synchronize         = msgnet.Synchronize
	LubyMISUnder        = luby.MISUnder
	LubyColoringUnder   = luby.ColoringUnder
	RingThreeColorUnder = luby.RingThreeColorUnder
)
