// Package repro is a complete Go implementation of the framework of
// "The Universe of Symmetry Breaking Tasks" (Imbs, Rajsbaum, Raynal,
// PI-1965 / PODC 2011): generalized symmetry breaking (GSB) tasks, the
// wait-free shared-memory model they live in, executable protocols for
// every construction in the paper, and machine-checked validations of its
// theorems.
//
// This root package is the public facade: it re-exports the task algebra,
// the execution engine, the protocols and the analysis tools from the
// internal packages. Examples under examples/ and the command-line tools
// under cmd/ are written exclusively against this facade.
//
// # Quick start
//
//	spec := repro.WSB(6) // weak symmetry breaking for 6 processes
//	res, err := repro.RunVerified(spec, repro.DefaultIDs(6), repro.NewRandomPolicy(1),
//	    func(n int) repro.Solver {
//	        return repro.NewWSBFromRenaming(n, repro.NewBoxSolver(
//	            repro.NewTaskBox("r", repro.Renaming(n, 2*n-2), 1)))
//	    })
//
// To model-check a protocol instead of sampling one schedule, explore the
// complete failure-free schedule tree (or a randomized crash sweep) on a
// parallel worker pool, configured by ExploreOptions:
//
//	count, err := repro.ExploreVerified(ctx, spec, repro.DefaultIDs(n),
//	    repro.ExploreOptions{Workers: 8, MaxRuns: 1 << 20}, build)
//
// See README.md for the architecture overview and the exploration-engine
// tuning guide, and EXPERIMENTS.md for the paper-versus-measured record
// of every table, figure and theorem.
package repro
