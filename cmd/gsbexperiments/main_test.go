package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("GSB_CLI_UNDER_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GSB_CLI_UNDER_TEST=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	var ee *exec.ExitError
	switch {
	case err == nil:
	case errors.As(err, &ee):
		code = ee.ExitCode()
	default:
		t.Fatalf("exec: %v", err)
	}
	return out.String(), errb.String(), code
}

// TestGsbexperimentsInvalidFlags: bad flags exit with a usage diagnostic
// before any experiment runs (the suite itself takes seconds; an invalid
// invocation must not start it).
func TestGsbexperimentsInvalidFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"undefined-flag", []string{"-bogus"}, "flag provided but not defined"},
		{"malformed-workers", []string{"-workers", "x"}, "invalid value"},
		{"malformed-bool", []string{"-full=maybe"}, "invalid boolean value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runSelf(t, tc.args...)
			if code != 2 {
				t.Errorf("args %v: exit %d, want 2\nstdout: %s\nstderr: %s", tc.args, code, stdout, stderr)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Errorf("args %v: stderr %q does not mention %q", tc.args, stderr, tc.wantMsg)
			}
			if !strings.Contains(stderr, "Usage") {
				t.Errorf("args %v: stderr lacks a usage message:\n%s", tc.args, stderr)
			}
		})
	}
}
