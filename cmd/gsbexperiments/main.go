// Command gsbexperiments runs the full reproduction suite — every table,
// figure and theorem validation recorded in EXPERIMENTS.md — and prints a
// consolidated report. It is the one-shot regeneration entry point:
//
//	go run ./cmd/gsbexperiments            # quick profile
//	go run ./cmd/gsbexperiments -full      # larger sweeps (slower)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	full := flag.Bool("full", false, "run the larger, slower sweeps")
	workers := flag.Int("workers", 0, "exploration worker goroutines (0 = GOMAXPROCS)")
	por := flag.Bool("por", false, "partial-order reduction for the exhaustive exploration experiment (one schedule per commuting-step class)")
	model := flag.String("model", "", "restrict the model-matrix experiment to one memory model (empty = all registered; see docs/models.md)")
	adversary := flag.String("adversary", "", "restrict the model-matrix experiment to one crash adversary (empty = all registered)")
	flag.Parse()

	if _, err := repro.MemModelByName(*model); err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(2)
	}
	if _, err := repro.AdversaryByName(*adversary); err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(2)
	}
	var matrixModels, matrixAdvs []string
	if *model != "" {
		matrixModels = []string{*model}
	}
	if *adversary != "" {
		matrixAdvs = []string{*adversary}
	}

	fmt.Println("== Table 1: kernels of the <6,3,-,-> family ==")
	fmt.Print(repro.Table1(6, 3))

	fmt.Println("\n== Figure 1: canonical tasks and strict inclusion ==")
	fmt.Print(repro.Figure1Text(6, 3))

	fmt.Println("\n== Figure 2 / Theorem 12: (n+1)-renaming from the (n-1)-slot task ==")
	ns := []int{3, 5, 8}
	runs := 200
	if *full {
		ns = []int{3, 4, 5, 6, 8, 10, 12}
		runs = 1000
	}
	rows, err := repro.Figure2Experiment(ns, runs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(repro.Figure2Text(rows))

	fmt.Println("\n== Exhaustive exploration: Figure 2 under every failure-free schedule ==")
	exploreNs := []int{2, 3}
	crashRuns := 200
	if *full {
		crashRuns = 2000
	}
	reduction := repro.ReductionNone
	if *por {
		reduction = repro.ReductionSleepSets
		exploreNs = append(exploreNs, 4) // reachable only with reduction
	}
	exploreRows, err := repro.ExploreExperiment(exploreNs, *workers, crashRuns, reduction)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(repro.ExploreText(exploreRows))

	fmt.Println("\n== Statistical sampling: Figure 2 beyond the exhaustive/POR ceiling ==")
	// Slot renaming at n >= 5 is out of reach for every enumerating mode
	// (the n=5 tree has ~10^12 interleavings and >10^8 trace classes);
	// seeded sampling turns those sizes into measurable rows: all runs
	// verified, with distinct-trace-class coverage per batch.
	sampleNs := []int{5, 8}
	sampleRuns := 300
	if *full {
		sampleNs = []int{5, 6, 7, 8}
		sampleRuns = 2000
	}
	walkRows, err := repro.SampleExperiment(sampleNs, *workers, sampleRuns, repro.SampleWalk, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(1)
	}
	pctRows, err := repro.SampleExperiment(sampleNs, *workers, sampleRuns, repro.SamplePCT, 3)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(repro.SampleText(append(walkRows, pctRows...)))

	fmt.Println("\n== Durable campaigns: kill/resume and 3-shard merge resilience ==")
	campaignRuns := 300
	if *full {
		campaignRuns = 2000
	}
	campRows, err := repro.CampaignExperiment(3, *workers, campaignRuns, "", "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(repro.CampaignText(campRows))

	// The same differentials under a non-default execution model: weak
	// registers (regular) everywhere and a biased crash adversary
	// (t-resilient) for the sweep. Kill/resume and shard-merge must be as
	// invisible here as under the defaults.
	fmt.Println("  (again with model=regular, adversary=t-resilient)")
	campRows, err = repro.CampaignExperiment(3, *workers, campaignRuns, repro.ModelRegular, repro.AdversaryTResilient)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(repro.CampaignText(campRows))

	fmt.Println("\n== Model matrix: memory models x adversaries as an experimental axis ==")
	matrixSample, matrixCrash := 8000, 60
	if *full {
		matrixSample, matrixCrash = 20000, 200
	}
	matrix, err := repro.ModelMatrixExperiment(*workers, matrixSample, matrixCrash, matrixModels, matrixAdvs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(repro.ModelMatrixText(matrix))

	fmt.Println("\n== Theorem 8: universality of perfect renaming ==")
	nMax := 6
	if *full {
		nMax = 8
	}
	total, failures := 0, 0
	for n := 2; n <= nMax; n++ {
		for m := 1; m <= n; m++ {
			for _, spec := range repro.Family(n, m) {
				spec := spec
				total++
				_, err := repro.RunVerified(spec, repro.DefaultIDs(n), repro.NewRandomPolicy(int64(total)),
					func(n int) repro.Solver {
						return repro.NewUniversalConstruction(spec, repro.NewTASRenaming("TAS", n))
					})
				if err != nil {
					failures++
					fmt.Printf("  FAIL %v: %v\n", spec, err)
				}
			}
		}
	}
	fmt.Printf("  %d feasible symmetric specs solved from perfect renaming, %d failures\n", total, failures)

	fmt.Println("\n== Theorem 9: communication-free solvability ==")
	agree := 0
	disagree := 0
	for n := 2; n <= 8; n++ {
		for m := 1; m <= 2*n-1; m++ {
			for _, spec := range repro.Family(n, m) {
				if spec.Symmetric() {
					solvable := repro.NoCommSolvable(spec)
					if delta, ok := repro.NoCommBuild(spec); ok != solvable {
						disagree++
					} else if ok {
						if err := repro.NoCommVerify(spec, delta); err != nil {
							disagree++
							continue
						}
						agree++
					} else {
						agree++
					}
				}
			}
		}
	}
	fmt.Printf("  characterization vs constructive solver: %d agree, %d disagree\n", agree, disagree)

	fmt.Println("\n== Theorem 10: binomial gcd classification ==")
	maxN := 16
	if *full {
		maxN = 48
	}
	fmt.Print(repro.GCDTableText(maxN))

	fmt.Println("\n== Theorem 11: bounded-round impossibility certificates ==")
	certs := []struct {
		name   string
		spec   repro.Spec
		rounds int
	}{
		{"election n=2", repro.Election(2), 3},
		{"election n=3", repro.Election(3), 2},
		{"election n=4", repro.Election(4), 1},
		{"perfect renaming n=3", repro.PerfectRenaming(3), 2},
		{"WSB n=3", repro.WSB(3), 1},
		{"WSB n=4", repro.WSB(4), 1},
	}
	for _, c := range certs {
		for r := 0; r <= c.rounds; r++ {
			if repro.BoundedRoundsCheck(c.spec, r) {
				fmt.Printf("  UNEXPECTED: %s solvable at %d rounds\n", c.name, r)
			}
		}
		fmt.Printf("  %-22s: no comparison-based protocol in <= %d IIS rounds\n", c.name, c.rounds)
	}
	fmt.Println("  positive controls:")
	for _, c := range []struct {
		name   string
		spec   repro.Spec
		rounds int
	}{
		{"3-renaming n=2", repro.Renaming(2, 3), 1},
		{"6-renaming n=3", repro.Renaming(3, 6), 1},
	} {
		if !repro.BoundedRoundsCheck(c.spec, c.rounds) {
			fmt.Printf("  UNEXPECTED: %s NOT solvable at %d rounds\n", c.name, c.rounds)
		} else {
			fmt.Printf("  %-22s: decision map found at %d round(s)\n", c.name, c.rounds)
		}
	}

	fmt.Println("\n== Solvability census of the <n,m,-,-> universe ==")
	fmt.Print(repro.SolvabilityText(6, 3))

	fmt.Println("\n== Baselines: message-passing symmetry breaking ==")
	for _, n := range []int{64, 4096} {
		res, err := repro.RingThreeColor(n, 1000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  Cole-Vishkin ring %d: 3-colored in %d rounds\n", n, res.Rounds)
	}
	// The same deterministic baseline under the message adversary: the
	// synchronizer repairs loss/delay/reordering by retransmission, so the
	// coloring is unchanged and only the round count grows.
	netAdv := &repro.NetAdversary{Seed: 7, LossProb: 0.15, DelayProb: 0.1, ReorderProb: 0.1}
	advRes, err := repro.RingThreeColorUnder(64, 4000, netAdv)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbexperiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  Cole-Vishkin ring 64 under loss=%.2f delay=%.2f reorder=%.2f: 3-colored in %d rounds\n",
		netAdv.LossProb, netAdv.DelayProb, netAdv.ReorderProb, advRes.Rounds)
	if failures > 0 || disagree > 0 {
		os.Exit(1)
	}
}
